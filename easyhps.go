// Package easyhps is a Go reproduction of EasyHPS, the multilevel hybrid
// parallel runtime system for dynamic programming of Du et al. (IPPS
// 2013).
//
// A dynamic-programming algorithm is described to the runtime as a Kernel:
// a DAG Pattern Model (which cells exist and how blocks of cells depend on
// each other), a boundary function, and the per-cell recurrence. The
// runtime partitions the DP matrix twice — processor-level blocks
// scheduled over slave nodes by the master worker pool, and thread-level
// sub-blocks scheduled over compute goroutines by each slave worker pool —
// and drives both levels with the DAG Data Driven Model: a sub-task
// becomes computable when all its precursor blocks are complete, and idle
// workers pull computable sub-tasks dynamically. Timeout-based fault
// tolerance redistributes lost sub-tasks at the processor level and
// re-pushes them at the thread level.
//
// Quick start:
//
//	s := easyhps.NewSWGG(seqA, seqB)
//	res, err := easyhps.Run(s.Problem(), easyhps.Config{
//		Slaves:          4,
//		Threads:         4,
//		ProcPartition:   easyhps.Square(200),
//		ThreadPartition: easyhps.Square(10),
//	})
//	score, i, j := easyhps.BestLocal(res.Matrix())
//
// The package is a thin facade over the implementation packages:
// internal/dag (DAG Data Driven Model), internal/comm (message passing),
// internal/sched (worker pools), internal/core (the runtime) and
// internal/dp (DP applications).
package easyhps

import (
	"context"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/matrix"
	"repro/internal/trace"
)

// Re-exported geometry types.
type (
	// Pos is a block-grid position.
	Pos = dag.Pos
	// Size is a rows-by-columns extent.
	Size = dag.Size
	// Rect is a half-open cell region.
	Rect = dag.Rect
	// Geometry is one level of partitioning.
	Geometry = dag.Geometry
	// Pattern is a DAG Pattern Model.
	Pattern = dag.Pattern
	// CustomPattern is a user-defined DAG Pattern Model.
	CustomPattern = dag.Custom
)

// Square returns an n-by-n Size.
func Square(n int) Size { return dag.Square(n) }

// NewGeometry partitions a cell region into blocks.
func NewGeometry(region Rect, block Size) Geometry { return dag.NewGeometry(region, block) }

// MatrixGeometry partitions a full n-sized matrix into blocks.
func MatrixGeometry(n, block Size) Geometry { return dag.MatrixGeometry(n, block) }

// Library patterns.
var (
	// PatternWavefront is the 2D/0D pattern (edit distance, LCS,
	// Needleman-Wunsch).
	PatternWavefront Pattern = dag.Wavefront{}
	// PatternRowColumn is the 2D/1D pattern of SWGG.
	PatternRowColumn Pattern = dag.RowColumn{}
	// PatternTriangular is the 2D/1D upper-triangular pattern of
	// Nussinov and matrix-chain recurrences.
	PatternTriangular Pattern = dag.Triangular{}
	// PatternDominance is the 2D/2D pattern of Algorithm 4.3.
	PatternDominance Pattern = dag.Dominance{}
	// PatternRowOnly is the previous-row pattern (knapsack).
	PatternRowOnly Pattern = dag.RowOnly{}
)

// LookupPattern retrieves a pattern from the DAG Pattern Model library.
func LookupPattern(name string) (Pattern, bool) { return dag.Lookup(name) }

// RegisterPattern adds a user-defined pattern to the library.
func RegisterPattern(p Pattern) { dag.Register(p) }

// ValidatePattern checks the model invariants of a (custom) pattern over a
// concrete geometry: acyclicity, data-dependency coverage and cell-order
// completeness.
func ValidatePattern(p Pattern, g Geometry) error {
	if err := dag.ValidateAcyclic(p, g); err != nil {
		return err
	}
	if err := dag.ValidateTopology(p, g); err != nil {
		return err
	}
	return dag.ValidateCellOrder(p, g)
}

// Runtime types.
type (
	// Config describes a deployment (nodes, threads, partition sizes,
	// scheduling policy, timeouts, latency model, fault injection).
	Config = core.Config
	// Policy selects dynamic (EasyHPS) or static (BCW) scheduling.
	Policy = core.Policy
	// FaultPlan injects failures for fault-tolerance testing.
	FaultPlan = core.FaultPlan
	// SubTaskID identifies a thread-level sub-sub-task.
	SubTaskID = core.SubTaskID
	// Stats aggregates run statistics.
	Stats = core.Stats
	// LatencyModel emulates interconnect cost on the in-process
	// transport.
	LatencyModel = comm.LatencyModel
	// Transport is a message-passing endpoint (for multi-process runs).
	Transport = comm.Transport
	// TraceRecorder records scheduling events for load-balance analysis.
	TraceRecorder = trace.Recorder
)

// Scheduling policies.
const (
	// PolicyDynamic is the EasyHPS dynamic worker pool.
	PolicyDynamic = core.PolicyDynamic
	// PolicyBlockCyclic is the static block-cyclic wavefront baseline.
	PolicyBlockCyclic = core.PolicyBlockCyclic
	// PolicyAffinity is the locality-aware dynamic pool (implies delta
	// shipping).
	PolicyAffinity = core.PolicyAffinity
)

// DefaultClusterLatency approximates a commodity interconnect for the
// scaled-down benchmark workloads.
var DefaultClusterLatency = comm.DefaultClusterLatency

// NewTrace creates a scheduling-event recorder to put into Config.Trace.
func NewTrace() *TraceRecorder { return trace.New() }

// Problem and kernel plumbing for int32 cells, the common case. Other
// cell types can use the internal packages directly through the same
// generic API.
type (
	// Kernel32 is a DP kernel over int32 cells.
	Kernel32 = core.Kernel[int32]
	// Problem32 is a runnable DP problem over int32 cells.
	Problem32 = core.Problem[int32]
	// Result32 is the outcome of running a Problem32.
	Result32 = core.Result[int32]
	// View32 is the cell-access window passed to Kernel32.Cell.
	View32 = matrix.View[int32]
)

// Run executes a problem on an in-process emulated cluster.
func Run(p Problem32, cfg Config) (*Result32, error) { return core.Run(p, cfg) }

// RunContext is Run with cancellation: cancelling ctx stops the master
// from scheduling further sub-tasks and returns ctx's error once the
// in-flight sub-tasks drain.
func RunContext(ctx context.Context, p Problem32, cfg Config) (*Result32, error) {
	return core.RunContext(ctx, p, cfg)
}

// RunMaster runs only the master part over an external transport (see
// ListenMaster), for real multi-process deployments.
func RunMaster(p Problem32, cfg Config, tr Transport) (*Result32, error) {
	return core.RunMaster(p, cfg, tr)
}

// RunSlave runs only the slave part over an external transport (see
// DialWorker).
func RunSlave(p Problem32, cfg Config, tr Transport) error {
	return core.RunSlave(p, cfg, tr)
}

// NewProblem32 assembles a Problem32 from a kernel.
func NewProblem32(name string, size Size, k Kernel32) Problem32 {
	return core.Problem[int32]{Name: name, Size: size, Kernel: k, Codec: matrix.BinaryCodec[int32]{}}
}

// DP applications.
type (
	// SWGG is Smith-Waterman with general gap penalties.
	SWGG = dp.SWGG
	// Nussinov is RNA secondary-structure prediction.
	Nussinov = dp.Nussinov
	// EditDistance is Levenshtein distance.
	EditDistance = dp.EditDistance
	// NeedlemanWunsch is global alignment with linear gaps.
	NeedlemanWunsch = dp.NeedlemanWunsch
	// LCS is longest common subsequence.
	LCS = dp.LCS
	// MatrixChain is optimal matrix-chain parenthesization.
	MatrixChain = dp.MatrixChain
	// Knapsack is 0/1 knapsack.
	Knapsack = dp.Knapsack
	// Alignment is a gapped alignment recovered by traceback.
	Alignment = dp.Alignment
)

// Application constructors and helpers, re-exported.
var (
	NewSWGG         = dp.NewSWGG
	NewNussinov     = dp.NewNussinov
	NewEditDistance = dp.NewEditDistance
	NewNW           = dp.NewNeedlemanWunsch
	NewLCS          = dp.NewLCS
	NewMatrixChain  = dp.NewMatrixChain
	NewKnapsack     = dp.NewKnapsack
	BestLocal       = dp.BestLocal
	PairCount       = dp.PairCount
	RandomDNA       = dp.RandomDNA
	RandomRNA       = dp.RandomRNA
	RandomSeq       = dp.RandomSeq
	MutateSeq       = dp.MutateSeq
)

// ListenMaster starts the TCP master endpoint for a real multi-process
// cluster; workers join with DialWorker.
var ListenMaster = comm.ListenMaster

// DialWorker connects a worker process to a TCP master.
var DialWorker = comm.DialWorker
