package easyhps_test

import (
	"fmt"

	easyhps "repro"
)

// The smallest possible program: run edit distance on an emulated
// 2-slave cluster.
func Example() {
	a := []byte("kitten")
	b := []byte("sitting")
	e := easyhps.NewEditDistance(a, b)
	res, err := easyhps.Run(e.Problem(), easyhps.Config{
		Slaves:          2,
		Threads:         2,
		ProcPartition:   easyhps.Square(3),
		ThreadPartition: easyhps.Square(2),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(e.Distance(res.Matrix()))
	// Output: 3
}

// Folding an RNA hairpin with Nussinov.
func Example_nussinov() {
	nu := easyhps.NewNussinov([]byte("GGGGAAAACCCC"))
	nu.WobblePairs = false
	res, err := easyhps.Run(nu.Problem(), easyhps.Config{
		Slaves:          2,
		Threads:         2,
		ProcPartition:   easyhps.Square(4),
		ThreadPartition: easyhps.Square(2),
	})
	if err != nil {
		panic(err)
	}
	m := res.Matrix()
	fmt.Println(m[0][11], nu.Structure(m))
	// Output: 4 ((((....))))
}

// Validating a user-defined DAG pattern before running it.
func ExampleValidatePattern() {
	// A "pattern" whose data dependencies are not covered by its
	// topological order is rejected.
	bad := easyhps.CustomPattern{
		PatternName: "example-bad",
		DataDepsFunc: func(g easyhps.Geometry, p easyhps.Pos, buf []easyhps.Pos) []easyhps.Pos {
			if p.Row > 0 {
				buf = append(buf, easyhps.Pos{Row: p.Row - 1, Col: p.Col})
			}
			return buf
		},
	}
	err := easyhps.ValidatePattern(bad, easyhps.MatrixGeometry(easyhps.Square(4), easyhps.Square(2)))
	fmt.Println(err != nil)
	// Output: true
}

// Looking up a library pattern by name.
func ExampleLookupPattern() {
	p, ok := easyhps.LookupPattern("triangular")
	fmt.Println(ok, p.Name(), p.Class())
	// Output: true triangular 2D/1D
}
