#!/usr/bin/env bash
# Standalone runner for the project-specific static-analysis suite
# (internal/lint, docs/ANALYSIS.md). Arguments are passed through to
# easyhps-vet, so `scripts/lint.sh -rules ctx-select -json ./internal/core`
# works; with no arguments the whole repository is checked, exactly as
# scripts/ci.sh does.
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/easyhps-vet "$@"
