#!/usr/bin/env bash
# Standalone runner for the project-specific static-analysis suite
# (internal/lint, docs/ANALYSIS.md). Arguments are passed through to
# easyhps-vet, so `scripts/lint.sh -rules lock-hierarchy ./internal/fleet`
# or `scripts/lint.sh -sarif` (machine-readable SARIF 2.1.0 for CI
# annotation) work; with no arguments the whole repository is checked,
# exactly as scripts/ci.sh does.
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/easyhps-vet "$@"
