#!/usr/bin/env bash
# The canonical check for this repository: formatting, vet, build, and the
# full test suite under the race detector (the job service multiplexes
# concurrent jobs onto one shared cluster — exactly where -race earns its
# keep). CI and pre-push hooks should run this script and nothing else.
#
# Flags:
#   -soak   additionally run the batched-dispatch fault soak (build tag
#           "soak": 200 randomized kill/partition/leave runs, ~1 min).
#   -sim    additionally replay the scenario regression suite at extra
#           fixed seeds (the default seeds already run under go test).
set -euo pipefail
cd "$(dirname "$0")/.."

soak=0
sim=0
for arg in "$@"; do
    case "$arg" in
    -soak) soak=1 ;;
    -sim) sim=1 ;;
    *)
        echo "usage: scripts/ci.sh [-soak] [-sim]" >&2
        exit 2
        ;;
    esac
done

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

# Scheduling tests are event-driven: FakeClock advances plus notifier
# hooks (onWait/onTick/OnDeath/noteProgress), never wall-clock polling.
# A time.Sleep in these test files reintroduces the flaky, slow waits
# this repo spent several PRs removing — and the sim package promises
# virtual-time determinism outright. Fail fast on any new one.
sleeps=$(grep -rn 'time\.Sleep' \
    internal/sched internal/cluster internal/fleet internal/sim \
    --include='*_test.go' 2>/dev/null || true)
if [ -n "$sleeps" ]; then
    echo "time.Sleep in scheduling test files (use FakeClock advances and event hooks instead):" >&2
    echo "$sleeps" >&2
    exit 1
fi

go vet ./...
# Project-specific invariants go vet cannot see (cancellable channel ops,
# timer hygiene, locks across blocking ops, gob registration, detached
# contexts, the declared lock hierarchy and no-blocking-under-lock
# discipline checked through the call graph, comm.Kind switch
# exhaustiveness, sync/atomic consistency) — see docs/ANALYSIS.md and
# lint/lockorder.conf. Any finding fails the build; deliberate exceptions
# must carry an audited //lint:ignore directive with a reason.
go run ./cmd/easyhps-vet ./...
go build ./...
go test -race ./...
# The elastic-cluster integration tests (kill/partition/join/restart over
# real sockets) and the straggler-mitigation suite (fake-clock timeout and
# speculation arbitration, duplicate-result idempotence, speculative rescue
# and backlog stealing) are the most schedule-sensitive code in the repo;
# run them a second time under -race with caching off so a lucky first pass
# cannot hide a flaky membership, lease, or attempt-arbitration race.
go test -race -count=1 -run 'TestElastic|TestMasterRestart|TestPartitioned|TestClusterRejects|TestClusterOvertimeFakeClock|TestSpeculationFakeClock|TestDuplicateResultIdempotent|TestSpeculationRescues|TestStealRebalances|TestAutoTunesOverTCP' ./internal/cluster/
# The shared-fleet multi-job suite (concurrent DAGs with a mid-run worker
# kill, fake-clock poisoned-job isolation, stealing/speculation scoped per
# job, and the end-to-end fleet-mode job service) interleaves several
# jobs' lease and attempt namespaces over one pool — rerun it uncached for
# the same reason.
go test -race -count=1 -run 'TestFleetConcurrentJobsWorkerKill|TestFleetPoisonedJobIsolationFakeClock|TestFleetSpeculationFakeClock|TestFleetStealFeedsHungryMember|TestFleetCheckpointResume|TestFleetAutoTunesOverTCP' ./internal/fleet/
go test -race -count=1 -run 'TestFleetService' ./internal/server/

# Coverage ratchet for the task hot path (dispatch, wire codec, runtime).
# The minimums sit just under the measured numbers at the time each was
# set; raise them when coverage improves, never lower them.
check_cover() {
    pkg=$1 min=$2
    pct=$(go test -short -cover "./$pkg/" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage: could not measure $pkg" >&2
        exit 1
    fi
    if ! awk -v p="$pct" -v m="$min" 'BEGIN { exit !(p >= m) }'; then
        echo "coverage: $pkg at ${pct}% — below the ${min}% ratchet" >&2
        exit 1
    fi
    echo "coverage: $pkg ${pct}% (>= ${min}%)"
}
check_cover internal/sched 92
check_cover internal/comm 82
check_cover internal/core 86
check_cover internal/cluster 75
check_cover internal/fleet 80
check_cover internal/cas 80
check_cover internal/sim 80
check_cover internal/tune 80
# The analyzer itself: the fixture suites for every rule keep the
# short-mode number here; the repo-wide gates only run un-short.
check_cover internal/lint 76

# Smoke the wire-codec fuzzer: ten seconds of random frames must neither
# crash the decoder nor break the encode/decode round trip.
go test -run '^$' -fuzz '^FuzzWireCodec$' -fuzztime 10s ./internal/comm/

if [ "$soak" = 1 ]; then
    go test -race -count=1 -tags soak -run TestSoakBatchedFaults -timeout 600s ./internal/cluster/
fi

if [ "$sim" = 1 ]; then
    # Replay every scenario at extra fixed seeds: determinism-per-seed
    # and bit-identical DP results must hold at any seed, not just the
    # tuned one. This includes the self-tuning (auto) scenarios — the
    # controller's decisions are pure functions of the schedule, so they
    # must replay deterministically too. The timeout is the stage's
    # wall-time budget — virtual time makes even the 1000-worker
    # scenarios run in seconds.
    EASYHPS_SIM_SEEDS="1009,2003" \
        go test -race -count=1 -run TestScenariosReseeded -timeout 120s ./internal/sim/
fi
