#!/usr/bin/env bash
# The canonical check for this repository: formatting, vet, build, and the
# full test suite under the race detector (the job service multiplexes
# concurrent jobs onto one shared cluster — exactly where -race earns its
# keep). CI and pre-push hooks should run this script and nothing else.
#
# Flags:
#   -soak   additionally run the batched-dispatch fault soak (build tag
#           "soak": 200 randomized kill/partition/leave runs, ~1 min).
set -euo pipefail
cd "$(dirname "$0")/.."

soak=0
for arg in "$@"; do
    case "$arg" in
    -soak) soak=1 ;;
    *)
        echo "usage: scripts/ci.sh [-soak]" >&2
        exit 2
        ;;
    esac
done

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# Project-specific invariants go vet cannot see (cancellable channel ops,
# timer hygiene, locks across blocking ops, gob registration, detached
# contexts, the declared lock hierarchy and no-blocking-under-lock
# discipline checked through the call graph, comm.Kind switch
# exhaustiveness, sync/atomic consistency) — see docs/ANALYSIS.md and
# lint/lockorder.conf. Any finding fails the build; deliberate exceptions
# must carry an audited //lint:ignore directive with a reason.
go run ./cmd/easyhps-vet ./...
go build ./...
go test -race ./...
# The elastic-cluster integration tests (kill/partition/join/restart over
# real sockets) and the straggler-mitigation suite (fake-clock timeout and
# speculation arbitration, duplicate-result idempotence, speculative rescue
# and backlog stealing) are the most schedule-sensitive code in the repo;
# run them a second time under -race with caching off so a lucky first pass
# cannot hide a flaky membership, lease, or attempt-arbitration race.
go test -race -count=1 -run 'TestElastic|TestMasterRestart|TestPartitioned|TestClusterRejects|TestClusterOvertimeFakeClock|TestSpeculationFakeClock|TestDuplicateResultIdempotent|TestSpeculationRescues|TestStealRebalances' ./internal/cluster/
# The shared-fleet multi-job suite (concurrent DAGs with a mid-run worker
# kill, fake-clock poisoned-job isolation, stealing/speculation scoped per
# job, and the end-to-end fleet-mode job service) interleaves several
# jobs' lease and attempt namespaces over one pool — rerun it uncached for
# the same reason.
go test -race -count=1 -run 'TestFleetConcurrentJobsWorkerKill|TestFleetPoisonedJobIsolationFakeClock|TestFleetSpeculationFakeClock|TestFleetStealFeedsHungryMember|TestFleetCheckpointResume' ./internal/fleet/
go test -race -count=1 -run 'TestFleetService' ./internal/server/

# Coverage ratchet for the task hot path (dispatch, wire codec, runtime).
# The minimums sit just under the measured numbers at the time each was
# set; raise them when coverage improves, never lower them.
check_cover() {
    pkg=$1 min=$2
    pct=$(go test -short -cover "./$pkg/" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage: could not measure $pkg" >&2
        exit 1
    fi
    if ! awk -v p="$pct" -v m="$min" 'BEGIN { exit !(p >= m) }'; then
        echo "coverage: $pkg at ${pct}% — below the ${min}% ratchet" >&2
        exit 1
    fi
    echo "coverage: $pkg ${pct}% (>= ${min}%)"
}
check_cover internal/sched 92
check_cover internal/comm 82
check_cover internal/core 86
check_cover internal/cluster 75
check_cover internal/fleet 80
check_cover internal/cas 80
# The analyzer itself: the fixture suites for every rule keep the
# short-mode number here; the repo-wide gates only run un-short.
check_cover internal/lint 76

# Smoke the wire-codec fuzzer: ten seconds of random frames must neither
# crash the decoder nor break the encode/decode round trip.
go test -run '^$' -fuzz '^FuzzWireCodec$' -fuzztime 10s ./internal/comm/

if [ "$soak" = 1 ]; then
    go test -race -count=1 -tags soak -run TestSoakBatchedFaults -timeout 600s ./internal/cluster/
fi
