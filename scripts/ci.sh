#!/usr/bin/env bash
# The canonical check for this repository: formatting, vet, build, and the
# full test suite under the race detector (the job service multiplexes
# concurrent jobs onto one shared cluster — exactly where -race earns its
# keep). CI and pre-push hooks should run this script and nothing else.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
