#!/usr/bin/env bash
# The canonical check for this repository: formatting, vet, build, and the
# full test suite under the race detector (the job service multiplexes
# concurrent jobs onto one shared cluster — exactly where -race earns its
# keep). CI and pre-push hooks should run this script and nothing else.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
# Project-specific invariants go vet cannot see (cancellable channel ops,
# timer hygiene, locks across blocking ops, gob registration, detached
# contexts) — see docs/ANALYSIS.md.
go run ./cmd/easyhps-vet ./...
go build ./...
go test -race ./...
# The elastic-cluster integration tests (kill/partition/join/restart over
# real sockets) are the most schedule-sensitive code in the repo; run them
# a second time under -race with caching off so a lucky first pass cannot
# hide a flaky membership or lease race.
go test -race -count=1 -run 'TestElastic|TestMasterRestart|TestPartitioned|TestClusterRejects' ./internal/cluster/
