#!/bin/sh
# Recording session for EXPERIMENTS.md. Run from the repo root with the
# machine otherwise idle; takes ~40 minutes.
set -e
cd "$(dirname "$0")/.."
go build -o /tmp/ehbench ./cmd/easyhps-bench

/tmp/ehbench -verify                      > results/verify.txt 2>&1
/tmp/ehbench -fig 13 -points 4            > results/fig13.txt 2>&1
/tmp/ehbench -fig 14 -points 4            > results/fig14.txt 2>&1
/tmp/ehbench -fig 15 -reps 2              > results/fig15.txt 2>&1
/tmp/ehbench -fig 16 -reps 2              > results/fig16.txt 2>&1
/tmp/ehbench -fig 17 -points 2 -reps 3    > results/fig17.txt 2>&1
/tmp/ehbench -ablate all                  > results/ablations.txt 2>&1
# Paper-scale thread grid (20x20 like the paper's 200/10) for the Fig. 16
# headline speedups.
/tmp/ehbench -fig 16 -swgg 320 -nussinov 320 -tgrid 20 > results/fig16_paperscale.txt 2>&1
echo recorded
