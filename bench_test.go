package easyhps

// One testing.B benchmark per figure of the paper's evaluation, at a scale
// suitable for `go test -bench=.` on a laptop, plus microbenchmarks of the
// substrates. The full-scale sweeps (closer to the paper's parameters)
// live in cmd/easyhps-bench; EXPERIMENTS.md records their output.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/server"
)

// benchOpts is a reduced profile: 6x6 processor grid, 4x4 thread grid,
// 16-cell sub-sub-tasks of ~4.8ms emulated work.
func benchOpts() bench.Options {
	return bench.Options{
		SWGGLen:        96,
		NussinovLen:    96,
		GridSide:       6,
		ThreadGridSide: 4,
		WorkDelay:      300 * time.Microsecond,
	}.WithDefaults()
}

func runFigure(b *testing.B, app bench.App, policy core.Policy, points int) {
	o := benchOpts()
	for x := 2; x <= 5; x++ {
		for _, y := range o.CoreCounts(x, points) {
			b.Run(fmt.Sprintf("nodes=%d/cores=%d", x, y), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pt, err := o.Run(app, x, y, policy)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(pt.Elapsed.Seconds(), "run-sec")
				}
			})
		}
	}
}

// BenchmarkFig13SWGG regenerates the Fig. 13 rows: SWGG elapsed time over
// node/core deployments (dynamic pool).
func BenchmarkFig13SWGG(b *testing.B) {
	runFigure(b, benchOpts().SWGGApp(), core.PolicyDynamic, 2)
}

// BenchmarkFig14Nussinov regenerates the Fig. 14 rows for Nussinov.
func BenchmarkFig14Nussinov(b *testing.B) {
	runFigure(b, benchOpts().NussinovApp(), core.PolicyDynamic, 2)
}

// BenchmarkFig15Crossover regenerates the Fig. 15 rows: equal core counts
// on different node counts.
func BenchmarkFig15Crossover(b *testing.B) {
	o := benchOpts()
	app := o.SWGGApp()
	for _, y := range []int{13, 25} {
		for x := 2; x <= 5; x++ {
			if _, err := o.Config(app, x, y, core.PolicyDynamic); err != nil {
				continue
			}
			b.Run(fmt.Sprintf("cores=%d/nodes=%d", y, x), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pt, err := o.Run(app, x, y, core.PolicyDynamic)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(pt.Elapsed.Seconds(), "run-sec")
				}
			})
		}
	}
}

// BenchmarkFig16Speedup regenerates the Fig. 16 rows: best deployment per
// core count, reporting speedup over the sequential baseline.
func BenchmarkFig16Speedup(b *testing.B) {
	o := benchOpts()
	for _, app := range o.Apps() {
		seq := o.SequentialBaseline(app)
		for _, y := range []int{13, 25} {
			b.Run(fmt.Sprintf("%s/cores=%d", app.Name, y), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					best := time.Duration(1 << 62)
					for x := 2; x <= 5; x++ {
						if _, err := o.Config(app, x, y, core.PolicyDynamic); err != nil {
							continue
						}
						pt, err := o.Run(app, x, y, core.PolicyDynamic)
						if err != nil {
							b.Fatal(err)
						}
						if pt.Elapsed < best {
							best = pt.Elapsed
						}
					}
					b.ReportMetric(float64(seq)/float64(best), "speedup-x")
				}
			})
		}
	}
}

// BenchmarkFig17BCWRate regenerates the Fig. 17 rows: the BCW/EasyHPS
// runtime ratio (above 1 means the dynamic pool wins).
func BenchmarkFig17BCWRate(b *testing.B) {
	o := benchOpts()
	app := o.SWGGApp()
	for x := 2; x <= 5; x++ {
		y := o.CoreCounts(x, 2)[1] // the larger of two core counts
		b.Run(fmt.Sprintf("nodes=%d/cores=%d", x, y), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dyn, err := o.Run(app, x, y, core.PolicyDynamic)
				if err != nil {
					b.Fatal(err)
				}
				bcw, err := o.Run(app, x, y, core.PolicyBlockCyclic)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(bcw.Elapsed)/float64(dyn.Elapsed), "bcw-rate")
			}
		})
	}
}

// --- substrate microbenchmarks ---

func BenchmarkDAGBuildWavefront(b *testing.B) {
	g := dag.MatrixGeometry(dag.Square(2500), dag.Square(50)) // 50x50 grid
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dag.Build(dag.Wavefront{}, g)
	}
}

func BenchmarkDAGParseDrain(b *testing.B) {
	g := dag.MatrixGeometry(dag.Square(2500), dag.Square(50))
	gr := dag.Build(dag.Wavefront{}, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := dag.NewParser(gr)
		queue := p.InitialReady()
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			queue = append(queue, p.Complete(id)...)
		}
		if !p.Finished() {
			b.Fatal("drain incomplete")
		}
	}
}

func BenchmarkCodecBinaryBlock(b *testing.B) {
	blk := matrix.NewBlock[int32](dag.Rect{Rows: 200, Cols: 200})
	codec := matrix.BinaryCodec[int32]{}
	blocks := []*matrix.Block[int32]{blk}
	b.SetBytes(int64(len(blk.Cells) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := matrix.EncodeBlocks[int32](codec, blocks)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := matrix.DecodeBlocks[int32](codec, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChanTransportRoundTrip(b *testing.B) {
	nw := comm.NewChanNetwork(2, comm.LatencyModel{})
	defer nw.Close()
	m0, s1 := nw.Endpoint(0), nw.Endpoint(1)
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m0.Send(1, comm.Message{Kind: comm.KindTask, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := s1.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatcherDynamic(b *testing.B) {
	d := sched.NewDynamic()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Ready(int32(i))
		if _, ok := d.Next(0); !ok {
			b.Fatal("no vertex")
		}
	}
}

func BenchmarkSWGGCellKernel(b *testing.B) {
	// Raw per-cell cost of the O(n) SWGG recurrence at row/col 256.
	a := dp.RandomDNA(512, 1)
	s := dp.NewSWGG(a, dp.RandomDNA(512, 2))
	out := matrix.NewBlock[int32](dag.Rect{Row0: 256, Col0: 256, Rows: 1, Cols: 1})
	full := matrix.NewBlock[int32](dag.Rect{Rows: 512, Cols: 512})
	v := matrix.NewView(out, []*matrix.Block[int32]{full},
		func(i, j int) bool { return i >= 0 && j >= 0 }, s.Boundary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Set(256, 256, s.Cell(v, 256, 256))
	}
}

func BenchmarkRunEndToEndNoEmulation(b *testing.B) {
	// Raw runtime overhead: a real (non-emulated) edit-distance run on
	// 3 slaves x 4 threads, no injected latency or work.
	e := dp.NewEditDistance(dp.RandomDNA(512, 1), dp.RandomDNA(512, 2))
	cfg := core.Config{
		Slaves: 3, Threads: 4,
		ProcPartition:   dag.Square(64),
		ThreadPartition: dag.Square(16),
		RunTimeout:      5 * time.Minute,
	}
	prob := e.Problem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(prob, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput is the first service-level datapoint: N small
// edit-distance jobs pushed through the job service's HTTP API
// concurrently, against the same jobs run back-to-back through Run. The
// jobs/sec metric shows what multiplexing concurrent jobs onto the shared
// deployment buys over serial batch execution.
func BenchmarkServerThroughput(b *testing.B) {
	const jobs = 8
	runCfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(16),
		ThreadPartition: dag.Square(8),
		RunTimeout:      5 * time.Minute,
	}
	specs := make([]server.JobSpec, jobs)
	for i := range specs {
		specs[i] = server.JobSpec{Kernel: "editdist", N: 64, Seed: int64(i + 1)}
	}

	b.Run("server-concurrent", func(b *testing.B) {
		mgr := server.NewManager(server.ManagerConfig{
			Run:           runCfg,
			MaxConcurrent: 4,
			QueueDepth:    jobs,
		}, nil)
		ts := httptest.NewServer(server.NewHandler(mgr))
		defer ts.Close()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = mgr.Shutdown(ctx)
		}()
		c := client.New(ts.URL, ts.Client())
		ctx := context.Background()

		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for _, spec := range specs {
				wg.Add(1)
				go func(spec server.JobSpec) {
					defer wg.Done()
					st, err := c.Submit(ctx, spec)
					if err != nil {
						b.Error(err)
						return
					}
					final, err := c.Wait(ctx, st.ID, 2*time.Millisecond)
					if err != nil {
						b.Error(err)
						return
					}
					if final.State != server.StateDone {
						b.Errorf("job finished %s: %s", final.State, final.Error)
					}
				}(spec)
			}
			wg.Wait()
		}
		b.ReportMetric(float64(jobs*b.N)/time.Since(start).Seconds(), "jobs/sec")
	})

	b.Run("direct-serial", func(b *testing.B) {
		problems := make([]core.Problem[int32], jobs)
		for i := range problems {
			a := dp.RandomDNA(64, int64(i+1))
			bb := dp.MutateSeq(a, dp.DNAAlphabet, 0.15, int64(i+2))
			problems[i] = dp.NewEditDistance(a, bb).Problem()
		}
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, prob := range problems {
				if _, err := core.Run(prob, runCfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(jobs*b.N)/time.Since(start).Seconds(), "jobs/sec")
	})
}
