// Checkpoint and resume: the first run records every completed sub-task
// to a checkpoint file and is "killed" partway (simulated by truncating
// the file mid-record); the second run restores the surviving prefix and
// finishes the matrix, computing only what was lost. Memory reclamation
// is enabled too, so the master's peak block storage stays far below the
// full matrix — the paper's stated space-complexity limitation.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	easyhps "repro"
)

func main() {
	a := easyhps.RandomDNA(400, 31)
	b := easyhps.MutateSeq(a, "ACGT", 0.1, 32)
	e := easyhps.NewEditDistance(a, b)

	base := easyhps.Config{
		Slaves:          3,
		Threads:         4,
		ProcPartition:   easyhps.Square(40), // 10x10 grid, 100 sub-tasks
		ThreadPartition: easyhps.Square(10),
	}

	// First run: record a checkpoint.
	var ck bytes.Buffer
	cfg := base
	cfg.Checkpoint = &ck
	res1, err := easyhps.Run(e.Problem(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1: %d sub-tasks computed, checkpoint %d bytes\n",
		res1.Stats.Tasks, ck.Len())

	// Simulate a crash: only 40%% of the checkpoint survives, torn
	// mid-record. The CRC framing discards the torn tail.
	surviving := ck.Bytes()[:ck.Len()*2/5]
	fmt.Printf("crash! %d bytes of checkpoint survive\n", len(surviving))

	// Second run: resume, with memory reclamation on.
	cfg = base
	cfg.Restore = bytes.NewReader(surviving)
	cfg.ReclaimBlocks = true
	res2, err := easyhps.Run(e.Problem(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2: restored %d sub-tasks, computed only %d, reclaimed %d blocks (peak storage %d of 100)\n",
		res2.Stats.Restored, res2.Stats.Tasks, res2.Stats.BlocksReclaimed, res2.Stats.PeakBlocks)

	// Despite the crash, the final distance matches the reference.
	got := res2.Store.Cell(399, 399)
	want := e.Sequential()[399][399]
	fmt.Printf("edit distance: %d (sequential reference %d)\n", got, want)
	if got != want || res2.Stats.Restored == 0 || res2.Stats.Tasks >= 100 {
		log.Fatal("resume did not behave as expected")
	}
}
