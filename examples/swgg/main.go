// Local alignment with Smith-Waterman General Gap — the paper's first
// evaluation workload. Aligns a DNA read against a mutated reference on
// the emulated cluster and prints the traceback.
//
// Run with: go run ./examples/swgg
package main

import (
	"fmt"
	"log"

	easyhps "repro"
)

func main() {
	ref := easyhps.RandomDNA(600, 42)
	read := easyhps.MutateSeq(ref[100:400], "ACGT", 0.08, 43)

	s := easyhps.NewSWGG(ref, read)
	// General gap penalty w(k) = GapOpen + GapExt*k: raise the opening
	// cost so scattered gaps consolidate.
	s.GapOpen, s.GapExt = 4, 1

	res, err := easyhps.Run(s.Problem(), easyhps.Config{
		Slaves:          4,
		Threads:         3,
		ProcPartition:   easyhps.Square(75),
		ThreadPartition: easyhps.Square(15),
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Matrix()
	score, bi, bj := easyhps.BestLocal(m)
	fmt.Printf("best local score %d at ref[%d], read[%d]  (%v, %d sub-tasks)\n",
		score, bi, bj, res.Stats.Elapsed, res.Stats.Tasks)

	al := s.Traceback(m)
	fmt.Printf("alignment starts at ref[%d], read[%d]:\n", al.StartA, al.StartB)
	for off := 0; off < len(al.RowA); off += 72 {
		end := off + 72
		if end > len(al.RowA) {
			end = len(al.RowA)
		}
		fmt.Printf("  ref  %s\n  read %s\n\n", al.RowA[off:end], al.RowB[off:end])
	}
}
