// User-defined DAG Pattern Model: the paper's user API lets a programmer
// describe a recurrence the library patterns do not cover. This example
// implements the "maximum-weight staircase path" recurrence
//
//	S[i,j] = W[i,j] + max(S[i-1,j], S[i,j-1], S[i-2,j-1], S[i-1,j-2])
//
// whose knight-move reads reach beyond the wavefront pattern's data
// region, defines a Custom pattern for it, validates the pattern against
// the model invariants, and runs it on the emulated cluster.
//
// Run with: go run ./examples/customdag
package main

import (
	"fmt"
	"log"
	"math/rand"

	easyhps "repro"
)

// staircase is the kernel: a Custom pattern plus the recurrence.
type staircase struct {
	n int
	w [][]int32
}

func (s *staircase) Pattern() easyhps.Pattern {
	return easyhps.CustomPattern{
		PatternName: "staircase",
		// Block (r,c) reads blocks west, north — and, through the
		// knight moves, the north-west band two blocks away; declaring
		// the full row/column prefix keeps the data region simple and
		// provably covered (ValidatePattern checks it).
		PrecursorsFunc: func(g easyhps.Geometry, p easyhps.Pos, buf []easyhps.Pos) []easyhps.Pos {
			if p.Row > 0 {
				buf = append(buf, easyhps.Pos{Row: p.Row - 1, Col: p.Col})
			}
			if p.Col > 0 {
				buf = append(buf, easyhps.Pos{Row: p.Row, Col: p.Col - 1})
			}
			return buf
		},
		DataDepsFunc: func(g easyhps.Geometry, p easyhps.Pos, buf []easyhps.Pos) []easyhps.Pos {
			for r := p.Row - 2; r <= p.Row; r++ {
				for c := p.Col - 2; c <= p.Col; c++ {
					if r < 0 || c < 0 || (r == p.Row && c == p.Col) {
						continue
					}
					buf = append(buf, easyhps.Pos{Row: r, Col: c})
				}
			}
			return buf
		},
	}
}

func (s *staircase) Boundary(i, j int) int32 { return 0 }

func (s *staircase) Cell(v *easyhps.View32, i, j int) int32 {
	best := v.Get(i-1, j)
	for _, d := range [][2]int{{0, -1}, {-2, -1}, {-1, -2}} {
		if c := v.Get(i+d[0], j+d[1]); c > best {
			best = c
		}
	}
	return s.w[i][j] + best
}

func (s *staircase) sequential() [][]int32 {
	out := make([][]int32, s.n)
	for i := range out {
		out[i] = make([]int32, s.n)
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return out[i][j]
	}
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			best := get(i-1, j)
			for _, d := range [][2]int{{0, -1}, {-2, -1}, {-1, -2}} {
				if c := get(i+d[0], j+d[1]); c > best {
					best = c
				}
			}
			out[i][j] = s.w[i][j] + best
		}
	}
	return out
}

func main() {
	const n = 240
	rng := rand.New(rand.NewSource(99))
	s := &staircase{n: n, w: make([][]int32, n)}
	for i := range s.w {
		s.w[i] = make([]int32, n)
		for j := range s.w[i] {
			s.w[i][j] = int32(rng.Intn(100))
		}
	}

	// Validate the custom pattern against the model invariants on the
	// deployment geometry before trusting it.
	geom := easyhps.MatrixGeometry(easyhps.Square(n), easyhps.Square(30))
	if err := easyhps.ValidatePattern(s.Pattern(), geom); err != nil {
		log.Fatal("pattern invalid: ", err)
	}

	res, err := easyhps.Run(
		easyhps.NewProblem32("staircase", easyhps.Square(n), s),
		easyhps.Config{
			Slaves:          3,
			Threads:         4,
			ProcPartition:   easyhps.Square(30),
			ThreadPartition: easyhps.Square(6),
		})
	if err != nil {
		log.Fatal(err)
	}

	got := res.Matrix()
	want := s.sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				log.Fatalf("mismatch at (%d,%d): %d != %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	fmt.Printf("staircase path weight %d; parallel == sequential on all %d cells (%v)\n",
		got[n-1][n-1], n*n, res.Stats.Elapsed)
}
