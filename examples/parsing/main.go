// Context-free grammar recognition with CYK — one of the paper's
// motivating applications. Parses balanced-parenthesis strings with a CNF
// grammar whose nonterminal sets live in uint64 bitmask cells, runs the
// triangular DAG on the emulated cluster, and cross-checks a direct
// stack-based recognizer.
//
// Run with: go run ./examples/parsing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

func main() {
	g := dp.ParenGrammar()
	inputs := []string{
		"(()(()))((()))()(())",
		"((((((((()))))))))",
		"(()(()))((())()(())", // unbalanced: one '(' too many
		"()()()()()()()()))((",
	}
	cfg := core.Config{
		Slaves:          3,
		Threads:         2,
		ProcPartition:   dag.Square(5),
		ThreadPartition: dag.Square(2),
	}
	for _, in := range inputs {
		c := dp.NewCYK(g, []byte(in))
		res, err := core.Run(c.Problem(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		accepted := c.Accepts(res.Matrix())
		fmt.Printf("%-24s -> accepted=%-5v (%d sub-tasks, %v)\n",
			in, accepted, res.Stats.Tasks, res.Stats.Elapsed)
		if accepted != balanced(in) {
			log.Fatalf("CYK disagrees with the direct recognizer on %q", in)
		}
	}
	fmt.Println("CYK agrees with the direct recognizer on all inputs")
}

func balanced(s string) bool {
	depth := 0
	for _, c := range s {
		if c == '(' {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			return false
		}
	}
	return depth == 0 && len(s) > 0
}
