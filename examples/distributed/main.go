// Real multi-process deployment over TCP: this example forks itself into
// one master and two worker roles connected by the gob-over-TCP transport
// (the repo's MPI substitute), aligns two sequences across the three
// processes, and verifies the result against the sequential reference.
//
// Run with: go run ./examples/distributed
//
// The same transport powers the standalone cmd/easyhps-launch and
// cmd/easyhps-worker tools for deployments across real machines.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	easyhps "repro"
)

const (
	addr    = "127.0.0.1:39401"
	workers = 2
	n       = 160
	seed    = 11
)

func buildProblem() (*easyhps.SWGG, easyhps.Problem32) {
	a := easyhps.RandomDNA(n, seed)
	b := easyhps.MutateSeq(a, "ACGT", 0.2, seed+1)
	s := easyhps.NewSWGG(a, b)
	return s, s.Problem()
}

func config() easyhps.Config {
	return easyhps.Config{
		Threads:         2,
		ProcPartition:   easyhps.Square(40),
		ThreadPartition: easyhps.Square(10),
		RunTimeout:      2 * time.Minute,
	}
}

func main() {
	if len(os.Args) > 1 {
		// Worker role: os.Args[1] is the rank.
		rank := 0
		fmt.Sscanf(os.Args[1], "%d", &rank)
		runWorker(rank)
		return
	}

	// Master role: fork two workers, then schedule.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	for r := 1; r <= workers; r++ {
		cmd := exec.Command(self, fmt.Sprint(r))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		defer cmd.Wait()
	}

	tr, err := easyhps.ListenMaster(addr, workers, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	s, prob := buildProblem()
	res, err := easyhps.RunMaster(prob, config(), tr)
	if err != nil {
		log.Fatal(err)
	}

	score, _, _ := easyhps.BestLocal(res.Matrix())
	wantScore, _, _ := easyhps.BestLocal(s.Sequential())
	fmt.Printf("master: best local score %d (sequential reference %d) across %d worker processes in %v\n",
		score, wantScore, workers, res.Stats.Elapsed.Round(time.Millisecond))
	if score != wantScore {
		log.Fatal("distributed result diverged from the sequential reference")
	}
}

func runWorker(rank int) {
	tr, err := easyhps.DialWorker(addr, rank, workers, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	_, prob := buildProblem()
	if err := easyhps.RunSlave(prob, config(), tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker %d: done\n", rank)
}
