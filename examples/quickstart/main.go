// Quickstart: compute the edit distance between two DNA sequences on an
// in-process EasyHPS cluster and check it against the sequential
// reference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	easyhps "repro"
)

func main() {
	// Two related sequences: b is a mutated copy of a.
	a := easyhps.RandomDNA(500, 7)
	b := easyhps.MutateSeq(a, "ACGT", 0.15, 8)

	// The kernel bundles the recurrence, its boundary values and its
	// DAG pattern (wavefront for edit distance).
	e := easyhps.NewEditDistance(a, b)

	// Deploy: 3 slave nodes x 4 compute threads, 64x64-cell
	// processor-level blocks re-partitioned into 16x16 thread-level
	// blocks.
	res, err := easyhps.Run(e.Problem(), easyhps.Config{
		Slaves:          3,
		Threads:         4,
		ProcPartition:   easyhps.Square(64),
		ThreadPartition: easyhps.Square(16),
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Matrix()
	fmt.Printf("edit distance (parallel):   %d\n", e.Distance(m))
	fmt.Printf("edit distance (sequential): %d\n", e.Distance(e.Sequential()))
	fmt.Printf("runtime: %v  (%d sub-tasks, %d sub-sub-tasks, %d messages)\n",
		res.Stats.Elapsed, res.Stats.Tasks, res.Stats.SubTasks, res.Stats.Messages)
}
