// RNA secondary-structure prediction with the Nussinov algorithm — the
// paper's second evaluation workload and the canonical triangular
// (2D/1D) DAG pattern. Folds a random RNA on the emulated cluster and
// prints the dot-bracket structure.
//
// Run with: go run ./examples/nussinov
package main

import (
	"fmt"
	"log"

	easyhps "repro"
)

func main() {
	rna := easyhps.RandomRNA(300, 2024)
	nu := easyhps.NewNussinov(rna)
	nu.MinLoop = 3 // no sharp hairpins

	res, err := easyhps.Run(nu.Problem(), easyhps.Config{
		Slaves:          3,
		Threads:         4,
		ProcPartition:   easyhps.Square(50),
		ThreadPartition: easyhps.Square(10),
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Matrix()
	structure := nu.Structure(m)
	pairs := easyhps.PairCount(structure)
	fmt.Printf("folded %d bases into %d pairs (matrix says %d) in %v\n",
		len(rna), pairs, m[0][len(rna)-1], res.Stats.Elapsed)
	for off := 0; off < len(rna); off += 72 {
		end := off + 72
		if end > len(rna) {
			end = len(rna)
		}
		fmt.Printf("  %s\n  %s\n\n", rna[off:end], structure[off:end])
	}
	if pairs != int(m[0][len(rna)-1]) {
		log.Fatal("structure inconsistent with matrix")
	}
}
