// Hierarchical fault tolerance in action: a slave node crashes mid-run, a
// second slave answers too late, and a compute goroutine panics — yet the
// run completes with a correct matrix. The run statistics show each
// recovery path firing (§V of the paper).
//
// Run with: go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"time"

	easyhps "repro"
)

func main() {
	a := easyhps.RandomDNA(240, 1)
	b := easyhps.MutateSeq(a, "ACGT", 0.2, 2)
	e := easyhps.NewEditDistance(a, b)

	cfg := easyhps.Config{
		Slaves:          4,
		Threads:         3,
		ProcPartition:   easyhps.Square(30),
		ThreadPartition: easyhps.Square(10),
		TaskTimeout:     200 * time.Millisecond,
		SubTaskTimeout:  200 * time.Millisecond,
		CheckInterval:   25 * time.Millisecond,
		RunTimeout:      2 * time.Minute,
		// Emulated per-cell work keeps the run alive long enough for
		// the stalled slave's stale answer to arrive mid-run.
		WorkDelayPerCell: 20 * time.Microsecond,
		Faults: easyhps.FaultPlan{
			// Slave 2 dies silently when it receives its 3rd task.
			CrashOnTask: map[int]int{2: 3},
			// The first attempt of sub-task 0 stalls past the
			// timeout; its late answer must be dropped as stale.
			StallFirstAttempt: map[int32]time.Duration{0: 450 * time.Millisecond},
			// One sub-sub-task panics once; the worker pool recovers.
			PanicSubTask: map[easyhps.SubTaskID]bool{{Proc: 5, Sub: 1}: true},
		},
	}

	res, err := easyhps.Run(e.Problem(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The matrix is still correct despite the injected carnage.
	want := e.Distance(e.Sequential())
	got := e.Distance(res.Matrix())
	fmt.Printf("edit distance: %d (sequential reference: %d)\n", got, want)
	if got != want {
		log.Fatal("fault recovery produced a wrong result")
	}

	s := res.Stats
	fmt.Printf("run survived: elapsed=%v\n", s.Elapsed.Round(time.Millisecond))
	fmt.Printf("  processor-level redistributions: %d (crashed node + stalled task)\n", s.Redistributions)
	fmt.Printf("  stale results dropped:           %d\n", s.StaleResults)
	fmt.Printf("  compute-goroutine restarts:      %d\n", s.WorkerRestarts)
	fmt.Printf("  dispatches=%d for %d sub-tasks\n", s.Dispatches, s.Tasks)
	if s.Redistributions == 0 || s.WorkerRestarts == 0 {
		log.Fatal("expected both recovery paths to fire")
	}
}
