package lint

import "testing"

func TestNakedBackgroundInLibrary(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "context"

func start() context.Context {
	return context.Background()
}

func later() context.Context {
	return context.TODO()
}
`, NewNakedBackground())
	wantFindings(t, got,
		"5: naked-background: context.Background() in library code",
		"9: naked-background: context.TODO() in library code",
	)
}

func TestNakedBackgroundMainPackageExempt(t *testing.T) {
	got := checkFixture(t, "repro/cmd/easyhps-x", `package main
import "context"

func main() {
	_ = context.Background()
}
`, NewNakedBackground())
	wantFindings(t, got)
}

func TestNakedBackgroundNonInternalExempt(t *testing.T) {
	// The facade package at the module root is a public compatibility
	// surface, not internal library code.
	got := checkFixture(t, "repro", `package easyhps
import "context"

func run() context.Context {
	return context.Background()
}
`, NewNakedBackground())
	wantFindings(t, got)
}
