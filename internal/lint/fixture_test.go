package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sync"
	"testing"
)

// The fixture checker compiles small source snippets in memory (go/parser
// + go/types) and runs selected rules over them, so every rule's positive
// and negative cases are asserted against exact findings. One shared
// FileSet and source importer keep the stdlib type-checking cost paid
// once across the whole test run.
var (
	fixMu   sync.Mutex
	fixFset *token.FileSet
	fixImp  types.ImporterFrom
	fixSeq  int
)

// checkFixture type-checks src as a single-file package with the given
// import path and returns the findings of the given rules formatted as
// "line: rule: message".
func checkFixture(t *testing.T, importPath, src string, rules ...Rule) []string {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if fixFset == nil {
		build.Default.CgoEnabled = false
		fixFset = token.NewFileSet()
		fixImp = importer.ForCompiler(fixFset, "source", nil).(types.ImporterFrom)
	}
	fixSeq++
	name := fmt.Sprintf("fix%d.go", fixSeq)
	f, err := parser.ParseFile(fixFset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := NewInfo()
	conf := types.Config{Importer: fixImp}
	tpkg, err := conf.Check(importPath, fixFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	p := &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Fset:  fixFset,
		Files: []*ast.File{f},
		Pkg:   tpkg,
		Info:  info,
	}
	var out []string
	for _, fd := range NewRunner(fixFset, rules...).Run([]*Package{p}) {
		out = append(out, fmt.Sprintf("%d: %s: %s", fd.Pos.Line, fd.Rule, fd.Msg))
	}
	return out
}

// wantFindings asserts that got matches want: same length, and each got
// finding starts with the corresponding "line: rule" prefix.
func wantFindings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i, w := range want {
		if len(got[i]) < len(w) || got[i][:len(w)] != w {
			t.Errorf("finding %d = %q, want prefix %q", i, got[i], w)
		}
	}
}
