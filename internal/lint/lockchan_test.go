package lint

import "testing"

func TestLockAcrossSend(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "11: lock-across-channel: blocking send on s.ch while s.mu is held (Lock at line 10)")
}

func TestLockReleasedBeforeSendClean(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	n  int
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
}
`, NewLockAcrossChannel())
	wantFindings(t, got)
}

func TestDeferredUnlockAcrossReceive(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "12: lock-across-channel: blocking receive from s.ch while s.mu is held (Lock at line 10)")
}

func TestCondWaitExempt(t *testing.T) {
	// sync.Cond.Wait releases its locker — the dispatcher idiom
	// (sched.Dynamic.Next) must stay clean.
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []int
}

func (s *S) next() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.q) == 0 {
		s.cond.Wait()
	}
	v := s.q[0]
	s.q = s.q[1:]
	return v
}
`, NewLockAcrossChannel())
	wantFindings(t, got)
}

func TestWaitGroupWaitUnderLock(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

func (s *S) f() {
	s.mu.Lock()
	s.wg.Wait()
	s.mu.Unlock()
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "11: lock-across-channel: blocking sync.WaitGroup.Wait while s.mu is held (Lock at line 10)")
}

func TestSelectWithDefaultUnderLockClean(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}
`, NewLockAcrossChannel())
	wantFindings(t, got)
}

func TestBlockingSelectUnderLock(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	}
	s.mu.Unlock()
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "11: lock-across-channel: blocking select while s.mu is held (Lock at line 10)")
}

func TestRWMutexRLockAcrossReceive(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.RWMutex
	ch chan int
}

func (s *S) f() int {
	s.mu.RLock()
	v := <-s.ch
	s.mu.RUnlock()
	return v
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "11: lock-across-channel: blocking receive from s.ch while s.mu is held (Lock at line 10)")
}

func TestUnlockInBranchMergesOptimistically(t *testing.T) {
	// An unlock on one path is treated as releasing the lock after the
	// branch: the rule prefers silence over noise on merged paths.
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.ch <- 1
}
`, NewLockAcrossChannel())
	wantFindings(t, got)
}

func TestGoroutineBodyNotHeld(t *testing.T) {
	// A goroutine launched while the lock is held runs without it.
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	go func() {
		<-s.ch
	}()
	s.mu.Unlock()
}
`, NewLockAcrossChannel())
	wantFindings(t, got)
}

func TestRangeOverChannelUnderLock(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) f() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch {
		_ = v
	}
}
`, NewLockAcrossChannel())
	wantFindings(t, got, "12: lock-across-channel: blocking range over channel s.ch while s.mu is held (Lock at line 10)")
}
