package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GobRegister cross-checks gob registration over the whole program: every
// concrete type that can cross a gob-encoded message envelope through an
// interface field must have a matching gob.Register call somewhere, or
// the receiving side of comm.Transport panics at runtime — on the first
// fault-injected redistribution that happens to carry that payload, not
// in any unit test that forgot the path.
//
// An "envelope" is any type passed to (*gob.Encoder).Encode/EncodeValue
// or (*gob.Decoder).Decode/DecodeValue. For each envelope whose exported
// field graph reaches an interface type, the rule finds the concrete
// types assigned into those fields (composite literals and field
// assignments) and requires each to be registered. If such an envelope
// exists but the program contains no gob.Register call at all, the
// encode site itself is flagged.
type GobRegister struct{}

// NewGobRegister returns the rule.
func NewGobRegister() *GobRegister { return &GobRegister{} }

func (*GobRegister) Name() string { return "gob-register" }
func (*GobRegister) Doc() string {
	return "concrete types crossing gob-encoded transport envelopes need gob.Register"
}

// ifaceField identifies one interface-typed field reachable from an
// envelope: the struct type that declares it and the field name.
type ifaceField struct {
	owner types.Type // the struct's (possibly named) type
	name  string
	index int
}

// CheckProgram implements ProgramRule.
func (r *GobRegister) CheckProgram(pkgs []*Package, report Reporter) {
	registered := map[string]bool{}
	hasRegistration := false
	type envelope struct {
		t   types.Type
		pos token.Pos
	}
	var envelopes []envelope
	seenEnv := map[string]bool{}

	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				switch {
				case isPkgFunc(fn, "encoding/gob", "Register") && len(call.Args) == 1:
					hasRegistration = true
					recordRegistered(registered, p.Info.Types[call.Args[0]].Type)
				case isPkgFunc(fn, "encoding/gob", "RegisterName") && len(call.Args) == 2:
					hasRegistration = true
					recordRegistered(registered, p.Info.Types[call.Args[1]].Type)
				case (isMethodOf(fn, "encoding/gob", "Encoder", "Encode") ||
					isMethodOf(fn, "encoding/gob", "Decoder", "Decode")) && len(call.Args) == 1:
					t := p.Info.Types[call.Args[0]].Type
					for {
						if ptr, ok := t.(*types.Pointer); ok {
							t = ptr.Elem()
							continue
						}
						break
					}
					if t == nil {
						return true
					}
					if key := types.TypeString(t, nil); !seenEnv[key] {
						seenEnv[key] = true
						envelopes = append(envelopes, envelope{t: t, pos: call.Pos()})
					}
				}
				return true
			})
		}
	}

	// Collect the interface-bearing struct fields reachable from any
	// envelope.
	fields := map[string]ifaceField{}     // key: ownerTypeString + "." + name
	envWithIface := map[string][]string{} // envelope type string -> field keys
	for _, env := range envelopes {
		fs := ifaceFieldsOf(env.t)
		if len(fs) == 0 {
			continue
		}
		key := types.TypeString(env.t, nil)
		for _, fr := range fs {
			fk := types.TypeString(fr.owner, nil) + "." + fr.name
			fields[fk] = fr
			envWithIface[key] = append(envWithIface[key], fk)
		}
	}
	if len(fields) == 0 {
		return
	}

	// Find concrete values flowing into those fields and check each
	// against the registered set.
	assignChecked := map[string]bool{}
	checkValue := func(p *Package, fk string, value ast.Expr) {
		tv := p.Info.Types[value]
		if tv.IsNil() || tv.Type == nil {
			return
		}
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			return // dynamic type unknown; nothing to check statically
		}
		assignChecked[fk] = true
		if !isRegistered(registered, tv.Type) {
			report(value.Pos(), "concrete type %s reaches gob-encoded interface field %s without a gob.Register call",
				types.TypeString(tv.Type, nil), fk)
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					lt := p.Info.Types[n].Type
					if lt == nil {
						return true
					}
					if ptr, ok := lt.(*types.Pointer); ok {
						lt = ptr.Elem()
					}
					st, ok := lt.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					ltKey := types.TypeString(lt, nil)
					for i, elt := range n.Elts {
						var name string
						var value ast.Expr
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							id, ok := kv.Key.(*ast.Ident)
							if !ok {
								continue
							}
							name, value = id.Name, kv.Value
						} else if i < st.NumFields() {
							name, value = st.Field(i).Name(), elt
						} else {
							continue
						}
						fk := ltKey + "." + name
						if _, ok := fields[fk]; ok {
							checkValue(p, fk, value)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						selInfo, ok := p.Info.Selections[sel]
						if !ok || selInfo.Kind() != types.FieldVal {
							continue
						}
						recvT := selInfo.Recv()
						if ptr, ok := recvT.(*types.Pointer); ok {
							recvT = ptr.Elem()
						}
						fk := types.TypeString(recvT, nil) + "." + sel.Sel.Name
						if _, ok := fields[fk]; ok {
							checkValue(p, fk, n.Rhs[i])
						}
					}
				}
				return true
			})
		}
	}

	// Envelopes whose interface fields are fed from somewhere the walk
	// cannot see: without a single gob.Register in the program they are
	// certainly broken.
	if !hasRegistration {
		var keys []string
		for k := range envWithIface {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			allUnseen := true
			for _, fk := range envWithIface[k] {
				if assignChecked[fk] {
					allUnseen = false
				}
			}
			if !allUnseen {
				continue // per-assignment findings already cover it
			}
			for _, env := range envelopes {
				if types.TypeString(env.t, nil) == k {
					report(env.pos, "gob-encoded envelope %s reaches interface field(s) %s but the program never calls gob.Register",
						k, strings.Join(envWithIface[k], ", "))
					break
				}
			}
		}
	}
}

// recordRegistered notes t (and its pointer-elem spelling) as registered.
func recordRegistered(registered map[string]bool, t types.Type) {
	if t == nil {
		return
	}
	registered[types.TypeString(t, nil)] = true
	if ptr, ok := t.(*types.Pointer); ok {
		registered[types.TypeString(ptr.Elem(), nil)] = true
	}
}

// isRegistered accepts a concrete type registered directly or through
// its pointer/value counterpart (gob resolves either spelling for
// transmission).
func isRegistered(registered map[string]bool, t types.Type) bool {
	ts := types.TypeString(t, nil)
	if registered[ts] || registered["*"+ts] {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return registered[types.TypeString(ptr.Elem(), nil)]
	}
	return false
}

// ifaceFieldsOf walks t's exported field graph (structs, slices, arrays,
// maps, pointers) and returns the interface-typed fields gob would have
// to resolve with a registration. Type parameters are opaque and
// skipped.
func ifaceFieldsOf(t types.Type) []ifaceField {
	var out []ifaceField
	seen := map[types.Type]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() {
					continue // gob never encodes unexported fields
				}
				if _, ok := f.Type().Underlying().(*types.Interface); ok {
					out = append(out, ifaceField{owner: t, name: f.Name(), index: i})
					continue
				}
				walk(f.Type())
			}
		case *types.Slice:
			walk(u.Elem())
		case *types.Array:
			walk(u.Elem())
		case *types.Map:
			walk(u.Key())
			walk(u.Elem())
		case *types.Pointer:
			walk(u.Elem())
		}
	}
	walk(t)
	return out
}
