package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// KindExhaustive requires every switch over the wire protocol's
// comm.Kind to either handle all Kind* constants or carry an explicit
// non-empty default: the protocol grows (v1 added heartbeats, v2
// batches, v3 job frames), and a receive loop that silently falls
// through an unknown kind drops frames instead of failing loudly —
// exactly how a version-skewed peer corrupts a run undetected.
type KindExhaustive struct{}

// NewKindExhaustive returns the rule.
func NewKindExhaustive() *KindExhaustive { return &KindExhaustive{} }

func (*KindExhaustive) Name() string { return "kind-exhaustive" }
func (*KindExhaustive) Doc() string {
	return "a switch over comm.Kind must handle every Kind* constant or reject unknowns in a default"
}

// CheckPackage implements PackageRule.
func (r *KindExhaustive) CheckPackage(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := kindType(p.Info.Types[sw.Tag].Type)
			if named == nil {
				return true
			}
			r.check(p, sw, named, report)
			return true
		})
	}
}

// kindType returns the named type when t is a "Kind" declared in a
// package named "comm" (the real wire protocol, or a fixture's stand-in).
func kindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "comm" {
		return nil
	}
	return named
}

func (r *KindExhaustive) check(p *Package, sw *ast.SwitchStmt, named *types.Named, report Reporter) {
	// The universe: every Kind*-prefixed constant of this type in the
	// type's own package.
	consts := map[string]string{} // constant value -> name
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Kind") || !types.Identical(c.Type(), named) {
			continue
		}
		consts[c.Val().ExactString()] = name
	}
	if len(consts) == 0 {
		return
	}

	hasDefault, emptyDefault := false, false
	var defaultPos = sw.Pos()
	covered := map[string]bool{}
	for _, cl := range sw.Body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			emptyDefault = len(cc.Body) == 0
			defaultPos = cc.Pos()
			continue
		}
		for _, e := range cc.List {
			tv := p.Info.Types[e]
			if tv.Value == nil || tv.Value.Kind() != constant.Int {
				// A non-constant case defeats static coverage analysis;
				// err toward silence for this switch.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	if hasDefault {
		if emptyDefault {
			report(defaultPos, "empty default in a switch over comm.Kind silently drops unknown frames: return an error, tear the peer down, or at least count the drop")
		}
		return
	}
	var missing []string
	for val, name := range consts {
		if !covered[val] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	report(sw.Pos(), "switch over comm.Kind does not handle %s and has no default: unknown frames fall through silently; add the cases or a rejecting default",
		strings.Join(missing, ", "))
}
