package lint

import (
	"strings"
	"testing"
)

// The fixtures declare their own comm.Kind stand-in: the rule keys on a
// named type "Kind" in a package named "comm", so a three-constant
// miniature protocol exercises the same paths as the real twelve-kind
// wire enum.
const kindFixturePrelude = `
package comm

type Kind uint8

const (
	KindIdle Kind = iota
	KindTask
	KindEnd
)
`

func TestKindExhaustiveMissingCase(t *testing.T) {
	got := checkFixture(t, "fixtures/kindmissing", kindFixturePrelude+`
func handle(k Kind) int {
	switch k {
	case KindIdle:
		return 0
	case KindTask:
		return 1
	}
	return -1
}
`, NewKindExhaustive())
	wantFindings(t, got, "13: kind-exhaustive")
	if !strings.Contains(got[0], "does not handle KindEnd") {
		t.Errorf("finding %q does not name the missing constant", got[0])
	}
}

func TestKindExhaustiveCovered(t *testing.T) {
	got := checkFixture(t, "fixtures/kindfull", kindFixturePrelude+`
func handle(k Kind) int {
	switch k {
	case KindIdle:
		return 0
	case KindTask, KindEnd:
		return 1
	}
	return -1
}

func rejecting(k Kind) int {
	switch k {
	case KindIdle:
		return 0
	default:
		panic("unknown kind")
	}
}
`, NewKindExhaustive())
	wantFindings(t, got)
}

func TestKindExhaustiveEmptyDefault(t *testing.T) {
	got := checkFixture(t, "fixtures/kindempty", kindFixturePrelude+`
func handle(k Kind) int {
	switch k {
	case KindIdle:
		return 0
	default:
	}
	return -1
}
`, NewKindExhaustive())
	wantFindings(t, got, "16: kind-exhaustive")
	if !strings.Contains(got[0], "empty default") {
		t.Errorf("finding %q should call out the empty default", got[0])
	}
}

// TestKindExhaustiveForeignKind pins the scope: a Kind enum outside a
// package named comm is not the wire protocol and stays unchecked.
func TestKindExhaustiveForeignKind(t *testing.T) {
	got := checkFixture(t, "fixtures/kindforeign", `
package other

type Kind uint8

const (
	KindA Kind = iota
	KindB
)

func handle(k Kind) int {
	switch k {
	case KindA:
		return 0
	}
	return -1
}
`, NewKindExhaustive())
	wantFindings(t, got)
}

func TestKindExhaustiveSuppressed(t *testing.T) {
	got := checkFixture(t, "fixtures/kindsupp", kindFixturePrelude+`
func handle(k Kind) int {
	//lint:ignore kind-exhaustive the fixture audits this partial switch
	switch k {
	case KindIdle:
		return 0
	}
	return -1
}
`, NewKindExhaustive())
	wantFindings(t, got)
}
