package lint

import (
	"go/ast"
)

// TimerLeak flags the classic leak of the overtime/fault-tolerance path:
// time.After inside a for loop. Each iteration allocates a timer that is
// not collected until it fires, so a tight watch loop (the shape of the
// master and slave fault-tolerance threads) accumulates timers for the
// whole TaskTimeout. The fix is a reused time.NewTimer/time.NewTicker
// hoisted out of the loop, which is exactly how faultToleranceLoop and
// computeBlock are written today — this rule keeps them that way.
//
// time.Tick is flagged unconditionally: its ticker can never be stopped.
type TimerLeak struct{}

// NewTimerLeak returns the rule.
func NewTimerLeak() *TimerLeak { return &TimerLeak{} }

func (*TimerLeak) Name() string { return "timer-leak" }
func (*TimerLeak) Doc() string {
	return "time.After in a loop (and time.Tick anywhere) leaks timers; reuse a Timer/Ticker"
}

// CheckPackage implements PackageRule.
func (r *TimerLeak) CheckPackage(p *Package, report Reporter) {
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			switch {
			case isPkgFunc(fn, "time", "Tick"):
				report(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker and defer Stop")
			case isPkgFunc(fn, "time", "After"):
				if inLoop(stack) {
					report(call.Pos(), "time.After in a loop allocates an uncollectable timer per iteration; hoist a time.NewTimer/time.NewTicker out of the loop")
				}
			}
			return true
		})
	}
}

// inLoop reports whether the ancestor stack places the node inside a for
// or range statement without an intervening function literal (a literal
// body is a separate execution, typically a per-iteration goroutine that
// uses the timer exactly once).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
