package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLockOrder(t *testing.T) {
	o, err := ParseLockOrder(`
# outermost first
level fix.A.mu          # fleet-wide state
level fix.B.mu fix.C.mu

level fix.d
`, "test.conf")
	if err != nil {
		t.Fatalf("ParseLockOrder: %v", err)
	}
	for class, want := range map[lockClass]int{
		"fix.A.mu": 1, "fix.B.mu": 2, "fix.C.mu": 2, "fix.d": 3,
		"fix.unlisted": 0,
	} {
		if got := o.Tier(class); got != want {
			t.Errorf("Tier(%s) = %d, want %d", class, got, want)
		}
	}
	if got := (*LockOrder)(nil).Tier("fix.A.mu"); got != 0 {
		t.Errorf("nil order Tier = %d, want 0", got)
	}
}

func TestParseLockOrderErrors(t *testing.T) {
	for _, tc := range []struct {
		src, wantErr string
	}{
		{"lock fix.A.mu", `want "level <class> [<class>...]"`},
		{"level", `want "level <class> [<class>...]"`},
		{"level fix.A.mu\nlevel fix.A.mu", "listed twice"},
		{"level fix.A.mu fix.A.mu", "listed twice"},
	} {
		_, err := ParseLockOrder(tc.src, "test.conf")
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseLockOrder(%q) error = %v, want substring %q", tc.src, err, tc.wantErr)
		}
	}
}

// mustOrder builds a LockOrder for fixtures; lines are outermost first.
func mustOrder(t *testing.T, lines ...string) *LockOrder {
	t.Helper()
	o, err := ParseLockOrder(strings.Join(lines, "\n"), "fixture.conf")
	if err != nil {
		t.Fatalf("ParseLockOrder: %v", err)
	}
	return o
}

func TestLockHierarchyDirectInversion(t *testing.T) {
	lh, _ := NewConcRules(mustOrder(t, "level fix.A.mu", "level fix.B.mu"))
	got := checkFixture(t, "fixtures/hierdirect", `
package fix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func good(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func bad(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`, lh)
	wantFindings(t, got, "18: lock-hierarchy")
	if !strings.Contains(got[0], "inverts the order declared in fixture.conf") {
		t.Errorf("finding %q does not name the inversion and conf", got[0])
	}
}

func TestLockHierarchyThroughCall(t *testing.T) {
	lh, _ := NewConcRules(mustOrder(t, "level fix.A.mu", "level fix.B.mu"))
	got := checkFixture(t, "fixtures/hiercall", `
package fix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func withA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

func helper(a *A) {
	withA(a)
}

func bad(a *A, b *B) {
	b.mu.Lock()
	helper(a)
	b.mu.Unlock()
}
`, lh)
	wantFindings(t, got, "20: lock-hierarchy")
	if !strings.Contains(got[0], "call to helper via withA") {
		t.Errorf("finding %q does not attribute the acquisition path", got[0])
	}
}

func TestLockHierarchySameLevelAndSelfDeadlock(t *testing.T) {
	lh, _ := NewConcRules(mustOrder(t, "level fix.A.mu fix.B.mu"))
	got := checkFixture(t, "fixtures/hierpeer", `
package fix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func withA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

func peers(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func again(a *A) {
	a.mu.Lock()
	withA(a)
	a.mu.Unlock()
}
`, lh)
	wantFindings(t, got, "16: lock-hierarchy", "23: lock-hierarchy")
	if !strings.Contains(got[0], "no nesting order is declared") {
		t.Errorf("finding %q should call out the undeclared peer order", got[0])
	}
	if !strings.Contains(got[1], "self-deadlock") {
		t.Errorf("finding %q should call out the self-deadlock", got[1])
	}
}

func TestLockHierarchySuppressed(t *testing.T) {
	lh, _ := NewConcRules(mustOrder(t, "level fix.A.mu", "level fix.B.mu"))
	got := checkFixture(t, "fixtures/hiersupp", `
package fix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func audited(a *A, b *B) {
	b.mu.Lock()
	//lint:ignore lock-hierarchy the fixture audits this inversion
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`, lh)
	wantFindings(t, got)
}

func TestBlockingUnderLockDirect(t *testing.T) {
	_, bul := NewConcRules(mustOrder(t, "level fix.A.mu"))
	got := checkFixture(t, "fixtures/blockdirect", `
package fix

import "sync"

type A struct{ mu sync.Mutex }

func bad(a *A, ch chan int) {
	a.mu.Lock()
	ch <- 1
	a.mu.Unlock()
}

func poll(a *A, ch chan int) {
	a.mu.Lock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
	a.mu.Unlock()
}

func unlocked(a *A, ch chan int) {
	a.mu.Lock()
	a.mu.Unlock()
	ch <- 1
}
`, bul)
	wantFindings(t, got, "10: blocking-under-lock")
	if !strings.Contains(got[0], "send on ch while fix.A.mu is held") {
		t.Errorf("finding %q does not name the operation and the held class", got[0])
	}
}

func TestBlockingUnderLockThroughCall(t *testing.T) {
	_, bul := NewConcRules(mustOrder(t, "level fix.A.mu"))
	got := checkFixture(t, "fixtures/blockcall", `
package fix

import (
	"net"
	"sync"
)

type A struct{ mu sync.Mutex }

func write(c net.Conn) {
	_, _ = c.Write(nil)
}

func bad(a *A, c net.Conn) {
	a.mu.Lock()
	write(c)
	a.mu.Unlock()
}
`, bul)
	wantFindings(t, got, "17: blocking-under-lock")
	if !strings.Contains(got[0], "call to write may block (net.Conn.Write)") {
		t.Errorf("finding %q does not attribute the blocking path", got[0])
	}
}

// TestBlockingUnderLockGuardReturn pins the return-aware branch merge:
// the "unlock and bail" guard must not launder the held state of the
// path that falls through.
func TestBlockingUnderLockGuardReturn(t *testing.T) {
	_, bul := NewConcRules(mustOrder(t, "level fix.A.mu"))
	got := checkFixture(t, "fixtures/blockguard", `
package fix

import "sync"

type A struct {
	mu   sync.Mutex
	done bool
}

func guarded(a *A, ch chan int) {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	ch <- 1
	a.mu.Unlock()
}

func released(a *A, ch chan int) {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
	} else {
		a.mu.Unlock()
	}
	ch <- 1
}
`, bul)
	wantFindings(t, got, "17: blocking-under-lock")
}

func TestBlockingUnderLockCondWait(t *testing.T) {
	_, bul := NewConcRules(mustOrder(t, "level fix.A.mu", "level fix.Q.mu"))
	got := checkFixture(t, "fixtures/blockcond", `
package fix

import "sync"

type A struct{ mu sync.Mutex }

type Q struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func NewQ() *Q {
	q := &Q{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *Q) wait() {
	q.mu.Lock()
	q.cond.Wait()
	q.mu.Unlock()
}

func (q *Q) badWait(a *A) {
	a.mu.Lock()
	q.mu.Lock()
	q.cond.Wait()
	q.mu.Unlock()
	a.mu.Unlock()
}
`, bul)
	// Wait releases its own locker (fix.Q.mu, exempt) but not fix.A.mu.
	wantFindings(t, got, "28: blocking-under-lock")
	if !strings.Contains(got[0], "sync.Cond.Wait on q.cond while fix.A.mu is held") {
		t.Errorf("finding %q should flag only the foreign lock", got[0])
	}
}

func TestBlockingUnderLockSuppressed(t *testing.T) {
	_, bul := NewConcRules(mustOrder(t, "level fix.A.mu"))
	got := checkFixture(t, "fixtures/blocksupp", `
package fix

import "sync"

type A struct{ mu sync.Mutex }

func audited(a *A, ch chan int) {
	a.mu.Lock()
	//lint:ignore blocking-under-lock the fixture audits this send
	ch <- 1
	a.mu.Unlock()
}
`, bul)
	wantFindings(t, got)
}

// TestLockOrderMatchesFleetInversion pins the checked-in conf against
// the inversion PR 6's review hunted by hand: with the repository's own
// lint/lockorder.conf, taking Fleet.mu inside a member's attachMu must
// be a violation. If the conf's levels for these classes change, this
// test moves.
func TestLockOrderMatchesFleetInversion(t *testing.T) {
	ord, err := LoadLockOrder(filepath.Join(repoRoot(), "lint", "lockorder.conf"))
	if err != nil {
		t.Fatalf("LoadLockOrder: %v", err)
	}
	lh, _ := NewConcRules(ord)
	got := checkFixture(t, "fixtures/fleetinv", `
package fleet

import "sync"

type Fleet struct{ mu sync.Mutex }
type memberConn struct{ attachMu sync.Mutex }

func inverted(f *Fleet, mc *memberConn) {
	mc.attachMu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	mc.attachMu.Unlock()
}
`, lh)
	wantFindings(t, got, "11: lock-hierarchy")
	if !strings.Contains(got[0], "acquiring fleet.Fleet.mu") ||
		!strings.Contains(got[0], "holding fleet.memberConn.attachMu") {
		t.Errorf("finding %q should name the fleet classes from the checked-in conf", got[0])
	}
}
