package lint

import "testing"

// The import path places fixtures inside the rule's default scope.
const ctxScope = "repro/internal/core"

func TestCtxSelectNakedSend(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	ch <- 1
}
`, NewCtxSelect())
	wantFindings(t, got, "5: ctx-select: blocking send on ch")
}

func TestCtxSelectNakedReceive(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) int {
	return <-ch
}
`, NewCtxSelect())
	wantFindings(t, got, "5: ctx-select: blocking receive from ch")
}

func TestCtxSelectGuardedIsClean(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	case <-ctx.Done():
	}
	select {
	case v := <-ch:
		_ = v
	case <-ctx.Done():
	}
}
`, NewCtxSelect())
	wantFindings(t, got)
}

func TestCtxSelectDefaultIsClean(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}
`, NewCtxSelect())
	wantFindings(t, got)
}

func TestCtxSelectWithoutDoneFlagged(t *testing.T) {
	// A blocking select with ctx in scope but no Done/default case is
	// reported once, not per operation.
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
}
`, NewCtxSelect())
	wantFindings(t, got, "5: ctx-select: select blocks with ctx in scope but has no ctx.Done() or default case")
}

func TestCtxSelectDoneVariable(t *testing.T) {
	// A select on a local variable bound to ctx.Done() is recognized —
	// the master's cancellation watcher uses exactly this shape.
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	cancel := ctx.Done()
	select {
	case <-cancel:
	case <-ch:
	}
}
`, NewCtxSelect())
	wantFindings(t, got)
}

func TestCtxSelectDirectDoneReceiveClean(t *testing.T) {
	// Waiting on ctx.Done() itself is cancellation-aware by definition.
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
`, NewCtxSelect())
	wantFindings(t, got)
}

func TestCtxSelectFuncLitInheritsCtx(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	go func() {
		<-ch
	}()
}
`, NewCtxSelect())
	wantFindings(t, got, "6: ctx-select: blocking receive from ch")
}

func TestCtxSelectNoCtxInScope(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core

func f(ch chan int) int {
	ch <- 1
	return <-ch
}
`, NewCtxSelect())
	wantFindings(t, got)
}

func TestCtxSelectRangeOverChannel(t *testing.T) {
	got := checkFixture(t, ctxScope, `package core
import "context"

func f(ctx context.Context, ch chan int) {
	for v := range ch {
		_ = v
	}
}
`, NewCtxSelect())
	wantFindings(t, got, "5: ctx-select: range over channel ch")
}

func TestCtxSelectOutOfScopePackage(t *testing.T) {
	got := checkFixture(t, "repro/internal/seqio", `package seqio
import "context"

func f(ctx context.Context, ch chan int) {
	ch <- 1
}
`, NewCtxSelect())
	wantFindings(t, got)
}
