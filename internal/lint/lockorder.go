package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// LockOrder is the repository's declared mutex hierarchy: a sequence of
// levels, outermost first, read from lint/lockorder.conf. A mutex at
// level t may only be acquired while every held hierarchy mutex sits at
// a strictly lower (outer) level; acquiring at the same level — or the
// same class twice — is a violation too, since no order between peers
// is declared. Mutexes absent from the file are outside the hierarchy
// and invisible to the two rules built on it.
type LockOrder struct {
	Path string // conf file, for diagnostics
	tier map[lockClass]int
}

// Tier returns c's 1-based level, or 0 when c is not in the hierarchy.
func (o *LockOrder) Tier(c lockClass) int {
	if o == nil {
		return 0
	}
	return o.tier[c]
}

// ParseLockOrder parses the lockorder.conf format: '#' comments, blank
// lines, and "level <class> [<class>...]" lines ordered outermost
// first. Classes are "pkg.Type.field" for struct-field mutexes or
// "pkg.var" for package-level ones.
func ParseLockOrder(src, path string) (*LockOrder, error) {
	o := &LockOrder{Path: path, tier: map[lockClass]int{}}
	tier := 0
	for i, line := range strings.Split(src, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "level" || len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"level <class> [<class>...]\", got %q", path, i+1, strings.TrimSpace(line))
		}
		tier++
		for _, name := range fields[1:] {
			c := lockClass(name)
			if _, dup := o.tier[c]; dup {
				return nil, fmt.Errorf("%s:%d: class %s listed twice", path, i+1, name)
			}
			o.tier[c] = tier
		}
	}
	return o, nil
}

// LoadLockOrder reads and parses a lockorder.conf file.
func LoadLockOrder(path string) (*LockOrder, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseLockOrder(string(data), path)
}

// concAnalysis is the shared state behind the lock-hierarchy and
// blocking-under-lock rules: both are views over one engine build and
// one scan per loaded program, so the runner pays the interprocedural
// cost once.
type concAnalysis struct {
	ord      *LockOrder
	autoConf bool // locate <module>/lint/lockorder.conf from the program
	loaded   bool
	loadErr  error

	last  []*Package // program the cached results belong to
	hier  []rawFinding
	block []rawFinding
}

type rawFinding struct {
	pos token.Pos
	msg string
}

// NewConcRules builds the two interprocedural rules over ord. A nil ord
// means "locate lint/lockorder.conf at the analyzed module's root"; a
// missing file leaves both rules inert (the hierarchy is opt-in), while
// an unparseable one is itself reported as a finding.
func NewConcRules(ord *LockOrder) (*LockHierarchy, *BlockingUnderLock) {
	a := &concAnalysis{ord: ord, autoConf: ord == nil}
	return &LockHierarchy{a}, &BlockingUnderLock{a}
}

// LockHierarchy enforces the declared partial order over the repo's
// mutexes, transitively through calls: dispatch paths that take
// Fleet.mu, per-member attach mutexes and per-job tables in different
// orders on different goroutines are the deadlocks PR 6's review hunted
// by hand.
type LockHierarchy struct{ a *concAnalysis }

func (*LockHierarchy) Name() string { return "lock-hierarchy" }
func (*LockHierarchy) Doc() string {
	return "mutexes must be acquired in the order declared in lint/lockorder.conf, transitively through calls"
}

// CheckProgram implements ProgramRule.
func (r *LockHierarchy) CheckProgram(pkgs []*Package, report Reporter) {
	r.a.ensure(pkgs)
	if r.a.loadErr != nil {
		report(token.NoPos, "loading lock order: %v", r.a.loadErr)
	}
	for _, f := range r.a.hier {
		report(f.pos, "%s", f.msg)
	}
}

// BlockingUnderLock forbids operations that may block — channel ops,
// network/stream writes, WaitGroup or foreign Cond waits — while a
// hierarchy mutex is held, transitively through calls. Deliberate
// exceptions (the fleet's attach-serialized sends) carry audited
// //lint:ignore directives instead of being invisible.
type BlockingUnderLock struct{ a *concAnalysis }

func (*BlockingUnderLock) Name() string { return "blocking-under-lock" }
func (*BlockingUnderLock) Doc() string {
	return "no may-block call while holding a lint/lockorder.conf mutex, transitively through calls"
}

// CheckProgram implements ProgramRule.
func (r *BlockingUnderLock) CheckProgram(pkgs []*Package, report Reporter) {
	r.a.ensure(pkgs)
	for _, f := range r.a.block {
		report(f.pos, "%s", f.msg)
	}
}

// ensure builds the engine and runs the scan once per program; the two
// rules run back to back over the same package slice, so identity of
// the slice is the cache key.
func (a *concAnalysis) ensure(pkgs []*Package) {
	if a.sameProgram(pkgs) {
		return
	}
	a.last = pkgs
	a.hier, a.block = nil, nil
	if a.autoConf {
		a.ord, a.loadErr = a.locateConf(pkgs)
	}
	if a.ord == nil || len(a.ord.tier) == 0 {
		return
	}
	eng := newConcEngine(pkgs)
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					s := &classScan{a: a, p: p, eng: eng}
					s.stmts(body.List, classSet{})
				}
				return true // nested literals get their own scan
			})
		}
	}
}

func (a *concAnalysis) sameProgram(pkgs []*Package) bool {
	if a.last == nil || len(a.last) != len(pkgs) {
		return false
	}
	for i := range pkgs {
		if a.last[i] != pkgs[i] {
			return false
		}
	}
	return true
}

// locateConf finds <module root>/lint/lockorder.conf relative to the
// first analyzed file. Absence is not an error: the hierarchy is
// opt-in and the rules stay inert without it.
func (a *concAnalysis) locateConf(pkgs []*Package) (*LockOrder, error) {
	a.loaded = true
	for _, p := range pkgs {
		if len(p.Files) == 0 {
			continue
		}
		dir := filepath.Dir(p.Fset.Position(p.Files[0].Pos()).Filename)
		abs, err := filepath.Abs(dir)
		if err != nil {
			continue
		}
		root, _, err := findModule(abs)
		if err != nil {
			continue
		}
		path := filepath.Join(root, "lint", "lockorder.conf")
		if _, err := os.Stat(path); err != nil {
			return nil, nil
		}
		return LoadLockOrder(path)
	}
	return nil, nil
}

// classSet maps a held hierarchy mutex's class to its Lock position.
type classSet map[lockClass]token.Pos

func (s classSet) clone() classSet {
	c := make(classSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func classIntersect(x, y classSet) classSet {
	out := classSet{}
	for k, v := range x {
		if _, ok := y[k]; ok {
			out[k] = v
		}
	}
	return out
}

// classScan is the lexical walk that threads the held-class state
// through one function body, checking every lock acquisition and call
// site against the declared order and the call-graph summaries. Branch
// handling merges optimistically like lock-across-channel — a lock is
// considered released after a branch that unlocks it — but the merge
// is return-aware: a branch ending in return (the "unlock and bail"
// guard idiom) does not launder the held state of the path that falls
// through. A nil classSet marks a path that cannot fall through.
type classScan struct {
	a   *concAnalysis
	p   *Package
	eng *concEngine
}

// mergeBranches joins the fall-through states of alternative paths:
// terminated paths (nil) drop out, surviving paths intersect.
func mergeBranches(x, y classSet) classSet {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	return classIntersect(x, y)
}

func (s *classScan) stmts(list []ast.Stmt, held classSet) classSet {
	for _, st := range list {
		if held == nil {
			return nil // unreachable after a terminating statement
		}
		held = s.stmt(st, held)
	}
	return held
}

func (s *classScan) stmt(st ast.Stmt, held classSet) classSet {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch kind, c := classifyLockOp(s.p, call); kind {
			case opLock:
				if s.a.ord.Tier(c) > 0 {
					s.checkAcquire(call.Pos(), c, held)
					held[c] = call.Pos()
				}
				return held
			case opUnlock:
				delete(held, c)
				return held
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := s.p.Info.Uses[id].(*types.Builtin); isBuiltin {
					s.expr(st.X, held)
					return nil
				}
			}
		}
		s.expr(st.X, held)
	case *ast.SendStmt:
		s.flagBlock(st.Arrow, "send on "+exprString(s.p.Fset, st.Chan), held, "")
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
		return nil
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the class held to the end of the
		// body; other deferred calls are checked against the state at
		// the defer site (lexical approximation, like the rest of the
		// scan).
		if kind, _ := classifyLockOp(s.p, st.Call); kind == opNone {
			s.call(st.Call, held)
			for _, e := range st.Call.Args {
				s.expr(e, held)
			}
		}
	case *ast.GoStmt:
		// The goroutine runs without our locks.
		for _, e := range st.Call.Args {
			s.expr(e, held)
		}
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		return s.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
			if held == nil {
				return nil
			}
		}
		s.expr(st.Cond, held)
		after := s.stmts(st.Body.List, held.clone())
		alt := held
		if st.Else != nil {
			alt = s.stmt(st.Else, held.clone())
		}
		return mergeBranches(after, alt)
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.stmts(st.Body.List, held.clone())
		return held
	case *ast.RangeStmt:
		s.expr(st.X, held)
		if isChanType(s.p.Info.Types[st.X].Type) {
			s.flagBlock(st.For, "range over channel "+exprString(s.p.Fset, st.X), held, "")
		}
		s.stmts(st.Body.List, held.clone())
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
			if held == nil {
				return nil
			}
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		return s.caseBodies(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
			if held == nil {
				return nil
			}
		}
		return s.caseBodies(st.Body, held)
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			s.flagBlock(st.Select, "select", held, "")
		}
		var after classSet
		for _, cl := range st.Body.List {
			after = mergeBranches(after, s.stmts(cl.(*ast.CommClause).Body, held.clone()))
		}
		if len(st.Body.List) == 0 {
			after = held
		}
		return after
	}
	return held
}

// caseBodies merges the fall-through states of a switch's cases. When
// no default exists the switch itself may fall through with the entry
// state; case bodies ending in return drop out of the merge.
func (s *classScan) caseBodies(body *ast.BlockStmt, held classSet) classSet {
	var after classSet
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		after = mergeBranches(after, s.stmts(cc.Body, held.clone()))
	}
	if !hasDefault {
		after = mergeBranches(after, held)
	}
	return after
}

// expr scans an expression for blocking operations and checked calls.
// Function literals are skipped: they are scanned as their own roots.
func (s *classScan) expr(e ast.Expr, held classSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.flagBlock(n.OpPos, "receive from "+exprString(s.p.Fset, n.X), held, "")
			}
		case *ast.CallExpr:
			if kind, _ := classifyLockOp(s.p, n); kind != opNone {
				return true
			}
			s.call(n, held)
		}
		return true
	})
}

// call checks one call site: intrinsic blockers and cond waits first,
// then the callee's transitive acquire/block summaries.
func (s *classScan) call(call *ast.CallExpr, held classSet) {
	fn := fnKey(calleeFunc(s.p.Info, call))
	if isMethodOf(fn, "sync", "Cond", "Wait") {
		// Wait releases the cond's own locker while blocked — that is
		// the dispatcher idiom — but any other held hierarchy mutex
		// stays held across the wait.
		locker := s.eng.condLocker[classOfExpr(s.p, receiverOf(call))]
		s.flagBlock(call.Pos(), "sync.Cond.Wait on "+exprString(s.p.Fset, receiverOf(call)), held, locker)
		return
	}
	if what := intrinsicBlock(s.p, call); what != "" {
		s.flagBlock(call.Pos(), what, held, "")
		return
	}
	if fn == nil || len(held) == 0 {
		return
	}
	g := s.eng.funcs[fn]
	if g == nil {
		return
	}
	for c := range g.sumAcq {
		if s.a.ord.Tier(c) > 0 {
			s.checkCallAcquire(call.Pos(), fn, c, held)
		}
	}
	if g.sumBlock {
		for h, lockPos := range held {
			s.a.block = append(s.a.block, rawFinding{call.Pos(), fmt.Sprintf(
				"call to %s may block (%s) while %s is held (lock at line %d): unlock first, or audit with //lint:ignore blocking-under-lock <reason>",
				fn.Name(), s.eng.blockChain(fn, 0), h, s.line(lockPos))})
		}
	}
}

// checkAcquire reports direct acquisitions that invert the declared
// order relative to any held class.
func (s *classScan) checkAcquire(pos token.Pos, c lockClass, held classSet) {
	for h, lockPos := range held {
		s.checkOrder(pos, c, h, lockPos, "")
	}
}

// checkCallAcquire is checkAcquire for acquisitions reached through a
// call, naming the path for the diagnostic.
func (s *classScan) checkCallAcquire(pos token.Pos, fn *types.Func, c lockClass, held classSet) {
	for h, lockPos := range held {
		s.checkOrder(pos, c, h, lockPos, fmt.Sprintf(" (call to %s%s)", fn.Name(), s.eng.acqChain(fn, c, 0)))
	}
}

func (s *classScan) checkOrder(pos token.Pos, acq, heldC lockClass, lockPos token.Pos, via string) {
	ta, th := s.a.ord.Tier(acq), s.a.ord.Tier(heldC)
	switch {
	case acq == heldC:
		s.a.hier = append(s.a.hier, rawFinding{pos, fmt.Sprintf(
			"acquiring %s%s while it is already held (lock at line %d): self-deadlock",
			acq, via, s.line(lockPos))})
	case ta < th:
		s.a.hier = append(s.a.hier, rawFinding{pos, fmt.Sprintf(
			"acquiring %s (level %d)%s while holding %s (level %d, lock at line %d) inverts the order declared in %s",
			acq, ta, via, heldC, th, s.line(lockPos), s.a.ord.Path)})
	case ta == th:
		s.a.hier = append(s.a.hier, rawFinding{pos, fmt.Sprintf(
			"acquiring %s%s while holding %s (lock at line %d): both sit at level %d of %s, where no nesting order is declared",
			acq, via, heldC, s.line(lockPos), ta, s.a.ord.Path)})
	}
}

// flagBlock reports one direct blocking operation against every held
// class except exempt (a cond's own locker).
func (s *classScan) flagBlock(pos token.Pos, what string, held classSet, exempt lockClass) {
	for h, lockPos := range held {
		if exempt != "" && h == exempt {
			continue
		}
		s.a.block = append(s.a.block, rawFinding{pos, fmt.Sprintf(
			"%s while %s is held (lock at line %d): unlock first, or audit with //lint:ignore blocking-under-lock <reason>",
			what, h, s.line(lockPos))})
	}
}

func (s *classScan) line(pos token.Pos) int {
	return s.p.Fset.Position(pos).Line
}
