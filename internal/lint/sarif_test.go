package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	base := filepath.Join("/", "work", "repo")
	findings := []Finding{
		{
			Pos:  token.Position{Filename: filepath.Join(base, "internal", "fleet", "fleet.go"), Line: 42},
			Rule: "lock-hierarchy",
			Msg:  "acquiring fleet.Fleet.mu while holding fleet.memberConn.attachMu",
		},
		{
			Pos:  token.Position{Filename: filepath.Join("/", "elsewhere", "x.go"), Line: 7},
			Rule: "kind-exhaustive",
			Msg:  "switch over comm.Kind does not handle KindEnd",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, AllRules(), base); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Fatalf("version = %q, $schema = %q; want 2.1.0 and a schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "easyhps-vet" {
		t.Errorf("driver name = %q, want easyhps-vet", run.Tool.Driver.Name)
	}
	// Every active rule plus the lint-ignore pseudo-rule is declared.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}
	for _, r := range AllRules() {
		if !ruleIDs[r.Name()] {
			t.Errorf("driver rules missing %s", r.Name())
		}
	}
	if !ruleIDs[IgnoreRule] {
		t.Errorf("driver rules missing %s", IgnoreRule)
	}

	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "lock-hierarchy" || first.Level != "error" {
		t.Errorf("result 0 = %s/%s, want lock-hierarchy/error", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/fleet/fleet.go" {
		t.Errorf("uri = %q, want repo-relative forward-slash path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("startLine = %d, want 42", loc.Region.StartLine)
	}
	// A file outside base keeps its absolute path.
	out := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if out != "/elsewhere/x.go" {
		t.Errorf("outside-base uri = %q, want /elsewhere/x.go", out)
	}
}
