package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxSelect enforces the cancellation invariant of the runtime loops:
// inside the scheduling packages, a blocking channel operation in a
// function that has a context.Context in scope must sit in a select with
// a ctx.Done() case (or a default case, which makes it non-blocking).
//
// PR 1 threaded context cancellation through core.RunContext; the master
// and job-service loops now unwind through ctx. A naked send or receive
// in one of those functions is a hang waiting to happen: cancellation
// closes other channels, not this one.
type CtxSelect struct {
	// Scopes are import-path suffixes the rule applies to. The default
	// set is the packages whose loops carry the runtime's cancellation
	// protocol.
	Scopes []string
}

// NewCtxSelect returns the rule with the default package scope.
func NewCtxSelect() *CtxSelect {
	return &CtxSelect{Scopes: []string{
		"internal/core",
		"internal/sched",
		"internal/server",
		"internal/comm",
		"internal/cluster",
		"internal/fleet",
	}}
}

func (*CtxSelect) Name() string { return "ctx-select" }
func (*CtxSelect) Doc() string {
	return "blocking channel operations with a ctx in scope must select on ctx.Done()"
}

func (r *CtxSelect) applies(path string) bool {
	for _, s := range r.Scopes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// CheckPackage implements PackageRule.
func (r *CtxSelect) CheckPackage(p *Package, report Reporter) {
	if !r.applies(p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			r.checkFunc(p, fd, report)
		}
	}
}

func (r *CtxSelect) checkFunc(p *Package, fd *ast.FuncDecl, report Reporter) {
	done := doneChannels(p.Info, fd)
	if ctxLocal := declaresCtxLocal(p.Info, fd); !ctxLocal && !funcTypeHasCtx(p.Info, fd.Type) {
		// Fast path: no ctx parameter and no ctx local anywhere in the
		// declaration — unless a nested function literal introduces its
		// own ctx parameter, nothing here can violate the rule.
		if !anyLitHasCtx(p.Info, fd) {
			return
		}
	}

	reported := map[*ast.SelectStmt]bool{}
	inspectStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch op := n.(type) {
		case *ast.SendStmt:
			if !ctxInScope(p.Info, fd, stack) {
				return true
			}
			if sel, inComm := enclosingSelect(op, stack); inComm {
				r.checkSelect(p, sel, done, reported, report)
			} else {
				report(op.Arrow, "blocking send on %s with ctx in scope must be in a select with a ctx.Done() case",
					exprString(p.Fset, op.Chan))
			}
		case *ast.UnaryExpr:
			if op.Op.String() != "<-" {
				return true
			}
			if !ctxInScope(p.Info, fd, stack) {
				return true
			}
			if isCtxDoneExpr(p.Info, op.X, done) {
				// Receiving from ctx.Done() itself is cancellation-aware
				// by construction.
				return true
			}
			if sel, inComm := enclosingSelect(op, stack); inComm {
				r.checkSelect(p, sel, done, reported, report)
			} else {
				report(op.OpPos, "blocking receive from %s with ctx in scope must be in a select with a ctx.Done() case",
					exprString(p.Fset, op.X))
			}
		case *ast.RangeStmt:
			if op.X == nil || !isChanType(p.Info.Types[op.X].Type) {
				return true
			}
			if !ctxInScope(p.Info, fd, stack) {
				return true
			}
			report(op.For, "range over channel %s cannot observe ctx cancellation; receive in a select with a ctx.Done() case",
				exprString(p.Fset, op.X))
		}
		return true
	})
}

// checkSelect validates one select statement whose comm clauses contain
// channel operations: it must be non-blocking (default case) or carry a
// ctx.Done() case. Reported once per select.
func (r *CtxSelect) checkSelect(p *Package, sel *ast.SelectStmt, done map[types.Object]bool, reported map[*ast.SelectStmt]bool, report Reporter) {
	if reported[sel] {
		return
	}
	hasDefault := false
	hasDone := false
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if recv := commRecvOperand(cc.Comm); recv != nil && isCtxDoneExpr(p.Info, recv, done) {
			hasDone = true
		}
	}
	if !hasDefault && !hasDone {
		reported[sel] = true
		report(sel.Select, "select blocks with ctx in scope but has no ctx.Done() or default case")
	}
}

// enclosingSelect reports whether op sits in the comm position of a
// select clause, returning that select.
func enclosingSelect(op ast.Node, stack []ast.Node) (*ast.SelectStmt, bool) {
	for i := len(stack) - 1; i >= 2; i-- {
		cc, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		child := op
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		// The walk order is SelectStmt -> BlockStmt -> CommClause.
		sel, ok := stack[i-2].(*ast.SelectStmt)
		if !ok {
			return nil, false
		}
		if stmt, ok := child.(ast.Stmt); ok && stmt == cc.Comm {
			return sel, true
		}
		return nil, false
	}
	return nil, false
}

// commRecvOperand extracts the received-from expression of a select comm
// statement ("case <-ch:", "case v := <-ch:"), or nil for sends.
func commRecvOperand(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
		return u.X
	}
	return nil
}

// isCtxDoneExpr reports whether e is ctx.Done() for a context-typed ctx,
// or a local variable previously assigned from one.
func isCtxDoneExpr(info *types.Info, e ast.Expr, done map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return false
		}
		return isContextType(info.Types[sel.X].Type)
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return done[obj]
		}
	}
	return false
}

// doneChannels collects local variables assigned from ctx.Done() inside
// fd (e.g. "cancel := ctx.Done()").
func doneChannels(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	done := map[types.Object]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCtxDoneExpr(info, rhs, nil) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				done[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				done[obj] = true
			}
		}
		return true
	})
	return done
}

// funcTypeHasCtx reports whether the function type has a
// context.Context parameter.
func funcTypeHasCtx(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if isContextType(info.Types[fld.Type].Type) {
			return true
		}
	}
	return false
}

// declaresCtxLocal reports whether any local variable of type
// context.Context is declared inside fd.
func declaresCtxLocal(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Defs[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

func anyLitHasCtx(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && funcTypeHasCtx(info, lit.Type) {
			found = true
		}
		return true
	})
	return found
}

// ctxInScope reports whether the enclosing function chain of the node
// whose ancestor stack is given makes a caller context available: the
// innermost or any enclosing function (within this declaration) has a
// context.Context parameter, or the declaration binds a context local.
func ctxInScope(info *types.Info, fd *ast.FuncDecl, stack []ast.Node) bool {
	if funcTypeHasCtx(info, fd.Type) || declaresCtxLocal(info, fd) {
		return true
	}
	for _, n := range stack {
		if lit, ok := n.(*ast.FuncLit); ok && funcTypeHasCtx(info, lit.Type) {
			return true
		}
	}
	return false
}
