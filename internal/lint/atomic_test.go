package lint

import (
	"strings"
	"testing"
)

func TestAtomicConsistencyMixedAccess(t *testing.T) {
	got := checkFixture(t, "fixtures/atomicmixed", `
package fix

import "sync/atomic"

type stats struct {
	n int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.n, 1)
}

func (s *stats) read() int64 {
	return s.n
}
`, NewAtomicConsistency())
	wantFindings(t, got, "15: atomic-consistency")
	if !strings.Contains(got[0], "n is accessed via sync/atomic") {
		t.Errorf("finding %q does not name the variable and the atomic site", got[0])
	}
}

func TestAtomicConsistencyAllAtomic(t *testing.T) {
	got := checkFixture(t, "fixtures/atomicclean", `
package fix

import "sync/atomic"

type stats struct {
	n int64
	m int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.n, 1)
}

func (s *stats) read() int64 {
	return atomic.LoadInt64(&s.n)
}

// m is never touched atomically, so plain access is fine.
func (s *stats) plain() int64 {
	s.m++
	return s.m
}
`, NewAtomicConsistency())
	wantFindings(t, got)
}

func TestAtomicConsistencySuppressed(t *testing.T) {
	got := checkFixture(t, "fixtures/atomicsupp", `
package fix

import "sync/atomic"

type stats struct {
	n int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.n, 1)
}

func (s *stats) readRacy() int64 {
	//lint:ignore atomic-consistency the fixture audits this racy read
	return s.n
}
`, NewAtomicConsistency())
	wantFindings(t, got)
}
