package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicConsistency flags mixed access to a variable that is touched
// through the function-style sync/atomic API anywhere in the program: a
// counter incremented with atomic.AddInt64 in one goroutine and read
// with a plain load in another is a data race the race detector only
// catches when the schedule cooperates. The repo's own counters use the
// typed atomic.Int64/atomic.Bool wrappers, which make mixing
// impossible by construction — this rule keeps any future
// function-style use honest.
type AtomicConsistency struct{}

// NewAtomicConsistency returns the rule.
func NewAtomicConsistency() *AtomicConsistency { return &AtomicConsistency{} }

func (*AtomicConsistency) Name() string { return "atomic-consistency" }
func (*AtomicConsistency) Doc() string {
	return "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere"
}

// CheckProgram implements ProgramRule: the atomic-use set is collected
// across the whole program first, because the atomic write and the
// plain read typically live in different files or packages.
func (r *AtomicConsistency) CheckProgram(pkgs []*Package, report Reporter) {
	// Pass 1: every variable whose address is passed to a sync/atomic
	// function, with one sample site for the diagnostic.
	atomicAt := map[*types.Var]token.Position{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isAtomicFunc(calleeFunc(p.Info, call)) {
					return true
				}
				if v := addressedVar(p, call.Args[0]); v != nil {
					if _, seen := atomicAt[v]; !seen {
						atomicAt[v] = p.Fset.Position(call.Pos())
					}
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other use of those variables must itself be an
	// address passed to a sync/atomic call. (The runner sorts findings
	// by position.)
	for _, p := range pkgs {
		for _, f := range p.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				site, tracked := atomicAt[v]
				if !tracked || isAtomicContext(p, id, stack) {
					return true
				}
				report(id.Pos(), "%s is accessed via sync/atomic (%s:%d) but plainly here: every access must be atomic, or use the typed atomic.Int64/Bool wrappers",
					v.Name(), filepath.Base(site.Filename), site.Line)
				return true
			})
		}
	}
}

// isAtomicFunc matches the pointer-taking function-style sync/atomic
// API (AddT, LoadT, StoreT, SwapT, CompareAndSwapT).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // typed-wrapper methods enforce atomicity themselves
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressedVar resolves &x or &s.f to the variable it addresses.
func addressedVar(p *Package, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.Ident:
		v, _ := p.Info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		v, _ := p.Info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.IndexExpr:
		return nil // element identity is per-index; out of scope
	}
	return nil
}

// isAtomicContext reports whether the identifier's use site is the
// address argument of a sync/atomic call: climbing the ancestor stack
// past its selector, the use must sit under &... inside such a call.
func isAtomicContext(p *Package, id *ast.Ident, stack []ast.Node) bool {
	i := len(stack) - 1
	// Step over the selector the ident is the .Sel of (field access).
	if i >= 0 {
		if sel, ok := stack[i].(*ast.SelectorExpr); ok && sel.Sel == id {
			i--
		}
	}
	// Unwrap parens.
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 1 {
		return false
	}
	u, ok := stack[i].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	i--
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicFunc(calleeFunc(p.Info, call))
}
