package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// inspectStack walks the tree rooted at n, calling f for every node with
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false from f prunes the subtree.
func inspectStack(n ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the called function or method of a call expression
// through the package's type info (nil for calls of function-typed
// variables, conversions and builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (e.g. "time".After).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isMethodOf reports whether fn is a method named name on the (possibly
// pointer-wrapped) named type pkgPath.typeName.
func isMethodOf(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// exprString renders an expression compactly for messages ("m.mu").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// receiverOf returns the receiver expression of a method call
// ("m.mu.Lock()" -> "m.mu"), or nil if the call is not through a
// selector.
func receiverOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}
