package lint

import (
	"strings"
	"testing"
)

func TestGobRegisterMissing(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Env struct {
	Kind int
	Body any
}

type Payload struct{ N int }

func send() error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(Env{Kind: 1, Body: Payload{N: 2}})
}
`, NewGobRegister())
	wantFindings(t, got, "16: gob-register: concrete type repro/internal/x.Payload reaches gob-encoded interface field repro/internal/x.Env.Body")
}

func TestGobRegisterPresentClean(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Env struct {
	Body any
}

type Payload struct{ N int }

func init() { gob.Register(Payload{}) }

func send() error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(Env{Body: Payload{N: 2}})
}
`, NewGobRegister())
	wantFindings(t, got)
}

func TestGobRegisterFieldAssignment(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Env struct {
	Body any
}

type Payload struct{ N int }

func send() error {
	var e Env
	e.Body = Payload{N: 2}
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(e)
}
`, NewGobRegister())
	wantFindings(t, got, "15: gob-register: concrete type repro/internal/x.Payload reaches gob-encoded interface field repro/internal/x.Env.Body")
}

func TestGobRegisterPointerSpellingAccepted(t *testing.T) {
	// gob resolves either the value or pointer spelling of a registered
	// type for transmission; the check accepts both.
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Env struct {
	Body any
}

type Payload struct{ N int }

func init() { gob.Register(&Payload{}) }

func send() error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(Env{Body: Payload{N: 2}})
}
`, NewGobRegister())
	wantFindings(t, got)
}

func TestGobConcreteEnvelopeClean(t *testing.T) {
	// Envelopes without interface fields (the runtime's comm.Message)
	// need no registration.
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Msg struct {
	From, To int
	Payload  []byte
}

func send() error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Msg{From: 1}); err != nil {
		return err
	}
	var m Msg
	return gob.NewDecoder(&buf).Decode(&m)
}
`, NewGobRegister())
	wantFindings(t, got)
}

func TestGobNoRegistrationAnywhere(t *testing.T) {
	// Interface-bearing envelope whose values come from outside the
	// analyzed code: with zero gob.Register calls in the program the
	// encode site itself is certainly broken.
	got := checkFixture(t, "repro/internal/x", `package x
import (
	"bytes"
	"encoding/gob"
)

type Env struct {
	Body any
}

func send(e Env) error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(e)
}
`, NewGobRegister())
	wantFindings(t, got, "13: gob-register: gob-encoded envelope repro/internal/x.Env reaches interface field(s) repro/internal/x.Env.Body but the program never calls gob.Register")
}

// TestGobRegisterRealCommMessageSet is the cross-package check against
// the real transport: every type gob-encoded over comm.Transport
// (comm.Message, the TCP hello frame, the matrix codecs feeding
// Message.Payload) must survive the rule as deployed in CI.
func TestGobRegisterRealCommMessageSet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks half the repository; skipped in -short mode")
	}
	prog := loadRepo(t)
	var pkgs []*Package
	for _, p := range prog.Pkgs {
		if strings.HasSuffix(p.Path, "internal/comm") ||
			strings.HasSuffix(p.Path, "internal/matrix") ||
			strings.HasSuffix(p.Path, "internal/core") ||
			strings.HasSuffix(p.Path, "internal/checkpoint") {
			pkgs = append(pkgs, p)
		}
	}
	if len(pkgs) < 3 {
		t.Fatalf("expected to load comm, matrix and core; got %d packages", len(pkgs))
	}
	findings := NewRunner(prog.Fset, NewGobRegister()).Run(pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
