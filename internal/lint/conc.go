package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the call-graph layer shared by the lock-hierarchy and
// blocking-under-lock rules: a conservative call graph over the loaded
// packages plus per-function *may-acquire* (which lock classes any path
// through the function can take) and *may-block* (channel ops, network
// writes, WaitGroup/Cond waits, ...) summaries, propagated to a fixed
// point. The per-function scan then walks each body lexically — the
// same optimistic branch-merging walk as lock-across-channel — and
// consults the summaries at every call site, so a violation three
// helpers deep is reported at the call that commits it.

// lockClass names a mutex by role rather than by instance:
// "pkg.Type.field" for a struct-field mutex (the package name, not the
// import path, so fixtures and the repo read the same), "pkg.var" for a
// package-level one. Function-local mutexes have no class and are
// invisible to the interprocedural rules.
type lockClass string

// classOfExpr classifies the expression denoting a mutex (or cond): a
// field selection yields pkg.Type.field keyed by the field's declaring
// struct, a package-level variable yields pkg.var. Anything else —
// locals, map/slice elements — has no stable cross-function identity
// and classifies as "".
func classOfExpr(p *Package, e ast.Expr) lockClass {
	switch x := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return classOfExpr(p, x.X)
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockClass(v.Pkg().Name() + "." + v.Name())
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			for {
				ptr, ok := t.(*types.Pointer)
				if !ok {
					break
				}
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockClass(named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Obj().Name())
			}
			return ""
		}
		// Qualified package-level variable (pkg.Var).
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockClass(v.Pkg().Name() + "." + v.Name())
		}
	}
	return ""
}

// classifyLockOp classifies call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex/RWMutex and returns the receiver's lock class ("" for an
// unclassifiable receiver).
func classifyLockOp(p *Package, call *ast.CallExpr) (lockOpKind, lockClass) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, ""
	}
	if !isMethodOf(fn, "sync", "Mutex", fn.Name()) && !isMethodOf(fn, "sync", "RWMutex", fn.Name()) {
		return opNone, ""
	}
	recv := receiverOf(call)
	if recv == nil {
		return opNone, ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock, classOfExpr(p, recv)
	case "Unlock", "RUnlock":
		return opUnlock, classOfExpr(p, recv)
	}
	return opNone, ""
}

// intrinsicBlock reports the blocking nature of a call that the call
// graph cannot see through: stdlib waits, network and buffered-stream
// I/O, gob codec calls, and the comm.Transport interface. Channel
// operations are handled at the AST level, sync.Cond.Wait separately
// (its locker is exempt).
func intrinsicBlock(p *Package, call *ast.CallExpr) string {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return ""
	}
	switch {
	case isMethodOf(fn, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait"
	case isPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep"
	case isPkgFunc(fn, "io", "ReadFull"), isPkgFunc(fn, "io", "Copy"), isPkgFunc(fn, "io", "ReadAll"):
		return "io." + fn.Name()
	case isMethodOf(fn, "net", "Conn", "Read"), isMethodOf(fn, "net", "Conn", "Write"),
		isMethodOf(fn, "net", "TCPConn", "Read"), isMethodOf(fn, "net", "TCPConn", "Write"):
		return "net.Conn." + fn.Name()
	case isMethodOf(fn, "bufio", "Reader", "Read"), isMethodOf(fn, "bufio", "Reader", "ReadByte"),
		isMethodOf(fn, "bufio", "Reader", "Peek"):
		return "bufio.Reader." + fn.Name()
	case isMethodOf(fn, "encoding/gob", "Encoder", "Encode"), isMethodOf(fn, "encoding/gob", "Decoder", "Decode"):
		return "gob." + fn.Name()
	case isTransportCall(fn):
		return "comm.Transport." + fn.Name()
	}
	return ""
}

// isTransportCall matches Send/Recv through the comm.Transport
// interface, whose implementations (channel network, TCP) all block.
func isTransportCall(fn *types.Func) bool {
	if fn.Name() != "Send" && fn.Name() != "Recv" {
		return false
	}
	return fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/comm") &&
		isMethodOf(fn, fn.Pkg().Path(), "Transport", fn.Name())
}

// fnKey normalizes a called *types.Func to its generic origin so method
// calls on instantiated types (job[T], master[T]) resolve to the same
// node the declaration defined.
func fnKey(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// funcFacts is one function's node in the call graph: the facts read
// directly off its body, plus the transitive summaries. Goroutine
// bodies and non-inline function literals are excluded from the direct
// facts — they do not run under the caller's locks — while
// immediately-invoked literals, sync.Once.Do bodies and deferred
// literals do (same goroutine, same critical section).
type funcFacts struct {
	pkg      *Package
	acquires map[lockClass]token.Pos // direct lock/RLock sites
	blocks   []blockSite             // direct may-block operations
	calls    []*types.Func           // statically resolvable callees

	sumAcq   map[lockClass]bool // transitive may-acquire
	sumBlock bool               // transitive may-block
}

type blockSite struct {
	what string
	pos  token.Pos
}

// concEngine holds the interprocedural facts for one loaded program.
type concEngine struct {
	fset  *token.FileSet
	funcs map[*types.Func]*funcFacts
	// condLocker maps a sync.Cond's class to the class of the mutex it
	// was constructed over (sync.NewCond(&x.mu)): Wait releases that
	// mutex, so holding it across Wait is the correct idiom.
	condLocker map[lockClass]lockClass
}

func newConcEngine(pkgs []*Package) *concEngine {
	e := &concEngine{
		funcs:      map[*types.Func]*funcFacts{},
		condLocker: map[lockClass]lockClass{},
	}
	for _, p := range pkgs {
		if e.fset == nil {
			e.fset = p.Fset
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				e.funcs[fnKey(fn)] = e.collect(p, fd.Body)
			}
			e.collectCondLockers(p, f)
		}
	}
	e.solve()
	return e
}

// collectCondLockers records every sync.NewCond(&x) construction,
// mapping the cond's class to the locker's.
func (e *concEngine) collectCondLockers(p *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || !isPkgFunc(calleeFunc(p.Info, call), "sync", "NewCond") {
				continue
			}
			cond := classOfExpr(p, as.Lhs[i])
			locker := classOfExpr(p, call.Args[0])
			if cond != "" && locker != "" {
				e.condLocker[cond] = locker
			}
		}
		return true
	})
}

// collect reads one function body's direct facts.
func (e *concEngine) collect(p *Package, body *ast.BlockStmt) *funcFacts {
	ff := &funcFacts{pkg: p, acquires: map[lockClass]token.Pos{}}
	inline := inlineLits(body)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return inline[n]
			case *ast.GoStmt:
				// The goroutine runs without our locks; only the call's
				// arguments are evaluated here.
				for _, a := range n.Call.Args {
					walk(a)
				}
				return false
			case *ast.SendStmt:
				ff.blocks = append(ff.blocks, blockSite{"send on " + exprString(p.Fset, n.Chan), n.Arrow})
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					ff.blocks = append(ff.blocks, blockSite{"receive from " + exprString(p.Fset, n.X), n.OpPos})
				}
			case *ast.RangeStmt:
				if isChanType(p.Info.Types[n.X].Type) {
					ff.blocks = append(ff.blocks, blockSite{"range over channel " + exprString(p.Fset, n.X), n.For})
				}
			case *ast.SelectStmt:
				// The select is the blocking operation (when it has no
				// default); its comm clauses are not blocking ops of
				// their own — a select with a default is the
				// non-blocking poll idiom (jb.finished, mc.stopped).
				if !selectHasDefault(n) {
					ff.blocks = append(ff.blocks, blockSite{"select", n.Select})
				}
				for _, cl := range n.Body.List {
					for _, st := range cl.(*ast.CommClause).Body {
						walk(st)
					}
				}
				return false
			case *ast.CallExpr:
				if kind, c := classifyLockOp(p, n); kind != opNone {
					if kind == opLock && c != "" {
						ff.acquires[c] = n.Pos()
					}
					return true
				}
				fn := fnKey(calleeFunc(p.Info, n))
				if isMethodOf(fn, "sync", "Cond", "Wait") {
					// Wait blocks regardless of whose locker it releases;
					// only the direct scan can exempt a held locker.
					ff.blocks = append(ff.blocks, blockSite{"sync.Cond.Wait on " + exprString(p.Fset, receiverOf(n)), n.Pos()})
					return true
				}
				if what := intrinsicBlock(p, n); what != "" {
					ff.blocks = append(ff.blocks, blockSite{what, n.Pos()})
					return true
				}
				if fn != nil {
					ff.calls = append(ff.calls, fn)
				}
			}
			return true
		})
	}
	walk(body)
	return ff
}

// inlineLits marks the function literals that execute on the caller's
// goroutine within the caller's critical sections: immediately-invoked
// literals, sync.Once.Do bodies and deferred literals. Everything else
// (callbacks stored or passed onward, goroutine bodies) is analyzed as
// its own root instead.
func inlineLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	inline := map[*ast.FuncLit]bool{}
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if len(stack) > 0 {
			if _, isGo := stack[len(stack)-1].(*ast.GoStmt); isGo {
				return true
			}
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			inline[lit] = true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Do" && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.FuncLit); ok {
				inline[lit] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				inline[lit] = true
			}
		}
		return true
	})
	return inline
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, cl := range st.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// solve propagates acquire and block facts over the call graph to a
// fixed point (monotone set union, so iteration order is irrelevant and
// cycles converge).
func (e *concEngine) solve() {
	for _, f := range e.funcs {
		f.sumAcq = map[lockClass]bool{}
		for c := range f.acquires {
			f.sumAcq[c] = true
		}
		f.sumBlock = len(f.blocks) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, f := range e.funcs {
			for _, callee := range f.calls {
				g := e.funcs[callee]
				if g == nil {
					continue
				}
				for c := range g.sumAcq {
					if !f.sumAcq[c] {
						f.sumAcq[c] = true
						changed = true
					}
				}
				if g.sumBlock && !f.sumBlock {
					f.sumBlock = true
					changed = true
				}
			}
		}
	}
}

// blockChain renders why fn may block, following one call-graph path
// for the diagnostic ("Send: net.Conn.Write").
func (e *concEngine) blockChain(fn *types.Func, depth int) string {
	f := e.funcs[fn]
	if f == nil || depth > 6 {
		return "may block"
	}
	if len(f.blocks) > 0 {
		return f.blocks[0].what
	}
	for _, callee := range f.calls {
		if g := e.funcs[callee]; g != nil && g.sumBlock {
			return callee.Name() + ": " + e.blockChain(callee, depth+1)
		}
	}
	return "may block"
}

// acqChain renders how fn comes to acquire class c ("" when fn takes it
// directly, " via noteAttemptGone" through one call hop).
func (e *concEngine) acqChain(fn *types.Func, c lockClass, depth int) string {
	f := e.funcs[fn]
	if f == nil || depth > 6 {
		return ""
	}
	if _, ok := f.acquires[c]; ok {
		return ""
	}
	for _, callee := range f.calls {
		if g := e.funcs[callee]; g != nil && g.sumAcq[c] {
			return fmt.Sprintf(" via %s%s", callee.Name(), e.acqChain(callee, c, depth+1))
		}
	}
	return ""
}
