package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a loaded, type-checked set of packages sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Package returns the loaded package with the given import path, or nil.
func (pr *Program) Package(path string) *Package {
	for _, p := range pr.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// Load parses and type-checks the packages selected by patterns,
// resolved relative to dir. Patterns are directory paths ("./internal/comm")
// or recursive globs ("./...", "./internal/..."). Test files (_test.go)
// and testdata/vendor directories are skipped: the rules target runtime
// code, and tests legitimately use context.Background and friends.
//
// Loading uses only the standard toolchain: repo packages are
// type-checked from source with a module-aware importer, and standard
// library dependencies resolve through the go/importer source importer.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root, modPath)
	dirs, err := expandPatterns(abs, patterns)
	if err != nil {
		return nil, err
	}
	pr := &Program{Fset: ld.fset}
	for _, d := range dirs {
		p, err := ld.loadDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pr.Pkgs = append(pr.Pkgs, p)
		}
	}
	sort.Slice(pr.Pkgs, func(i, j int) bool { return pr.Pkgs[i].Path < pr.Pkgs[j].Path })
	return pr, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves patterns to the list of directories that hold
// at least one non-test .go file.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(base, d)
		}
		info, err := os.Stat(d)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(d)
			continue
		}
		err = filepath.WalkDir(d, func(path string, de os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !de.IsDir() {
				return nil
			}
			name := de.Name()
			if path != d && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loader type-checks module packages from source, memoized by import
// path, delegating standard-library imports to the toolchain's source
// importer.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string
	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool // import-cycle guard
}

func newLoader(root, modPath string) *loader {
	// The source importer type-checks stdlib dependencies from GOROOT
	// source. With cgo disabled the pure-Go variants of net, os/user
	// etc. are selected, which is all the analysis needs (we only read
	// type structure, never build).
	build.Default.CgoEnabled = false
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		cache:   map[string]*Package{},
		loading: map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil).(types.ImporterFrom)
	return ld
}

// Import implements types.Importer for the type-checker's use.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.root, 0)
}

// ImportFrom routes module-internal import paths to the source loader
// and everything else to the stdlib importer.
func (ld *loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.loadDir(ld.dirOf(path))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: import %q resolves to a directory with no Go files", path)
		}
		return p.Pkg, nil
	}
	return ld.std.ImportFrom(path, dir, 0)
}

func (ld *loader) dirOf(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ld.modPath), "/")
	return filepath.Join(ld.root, rel)
}

func (ld *loader) pathOf(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir. It returns (nil,
// nil) for directories without non-test Go files.
func (ld *loader) loadDir(dir string) (*Package, error) {
	importPath, err := ld.pathOf(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := ld.cache[importPath]; ok {
		return p, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		ld.cache[importPath] = nil
		return nil, nil
	}

	info := NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:  importPath,
		Name:  tpkg.Name(),
		Fset:  ld.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	ld.cache[importPath] = p
	return p, nil
}

// NewInfo allocates the types.Info maps the rules rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
