// Package lint is the project-specific static-analysis suite of EasyHPS.
//
// The runtime's correctness rests on invariants the Go compiler cannot
// see: every blocking channel operation in the master/slave loops must be
// cancellable, the timeout-based fault-tolerance path must not leak
// timers, no mutex may be held across a blocking operation, every
// concrete type crossing a gob-encoded comm.Transport envelope must be
// registered, and library code must not mint detached contexts. On top
// of those per-function checks sits an interprocedural layer (conc.go):
// a conservative call graph with per-function may-acquire/may-block
// summaries enforces the mutex hierarchy declared in
// lint/lockorder.conf and the no-blocking-under-lock discipline
// transitively through calls, switches over the wire protocol's
// comm.Kind must reject unknown frames, and sync/atomic-touched
// variables must be atomic everywhere. This package encodes those
// invariants as mechanical checks over go/ast + go/types (stdlib only,
// no external analysis framework) so they stay true as the runtime
// grows.
//
// Rules implement PackageRule (checked one package at a time) or
// ProgramRule (checked once over the whole loaded package set, for
// cross-package invariants such as gob registration). Findings are
// reported as "file:line: rule: message" and can be suppressed with a
//
//	//lint:ignore <rule> <reason>
//
// comment on the flagged line or the line directly above it. An ignore
// directive with an empty reason is itself a finding: suppressions must
// be auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical "file:line: rule: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one type-checked package under analysis.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Name is the package name ("core", "main").
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// IsMain reports whether p is a command, not a library.
func (p *Package) IsMain() bool { return p.Name == "main" }

// Rule is a named invariant check.
type Rule interface {
	// Name is the rule identifier used in findings and ignore
	// directives ("ctx-select").
	Name() string
	// Doc is a one-line description of the invariant the rule protects.
	Doc() string
}

// Reporter records one finding of the running rule.
type Reporter func(pos token.Pos, format string, args ...any)

// PackageRule checks one package at a time.
type PackageRule interface {
	Rule
	CheckPackage(p *Package, report Reporter)
}

// ProgramRule checks the whole loaded package set at once (cross-package
// invariants).
type ProgramRule interface {
	Rule
	CheckProgram(pkgs []*Package, report Reporter)
}

// IgnoreRule is the pseudo-rule name under which malformed or unknown
// //lint:ignore directives are reported. It is always active and cannot
// be filtered out: a broken suppression must never silently suppress.
const IgnoreRule = "lint-ignore"

// AllRules returns the full rule set in stable order. The two
// interprocedural rules share one call-graph build and read the lock
// hierarchy from lint/lockorder.conf at the analyzed module's root
// (inert when the file is absent).
func AllRules() []Rule {
	lh, bul := NewConcRules(nil)
	return []Rule{
		NewCtxSelect(),
		NewTimerLeak(),
		NewLockAcrossChannel(),
		NewGobRegister(),
		NewNakedBackground(),
		lh,
		bul,
		NewKindExhaustive(),
		NewAtomicConsistency(),
	}
}

// Runner applies a rule set to a loaded program and filters the findings
// through //lint:ignore directives.
type Runner struct {
	Fset  *token.FileSet
	Rules []Rule
}

// NewRunner builds a runner over fset with the given rules (AllRules()
// when none are given).
func NewRunner(fset *token.FileSet, rules ...Rule) *Runner {
	if len(rules) == 0 {
		rules = AllRules()
	}
	return &Runner{Fset: fset, Rules: rules}
}

// Run checks every package and returns the surviving findings sorted by
// position. Findings suppressed by a well-formed //lint:ignore directive
// are dropped; malformed directives are reported under IgnoreRule.
func (r *Runner) Run(pkgs []*Package) []Finding {
	var raw []Finding
	for _, rule := range r.Rules {
		report := r.reporter(rule.Name(), &raw)
		if pr, ok := rule.(PackageRule); ok {
			for _, p := range pkgs {
				pr.CheckPackage(p, report)
			}
		}
		if xr, ok := rule.(ProgramRule); ok {
			xr.CheckProgram(pkgs, report)
		}
	}

	// Directive rule names are validated against the full rule universe,
	// not just the rules selected for this run: filtering with -rules
	// must not turn every other rule's suppressions into findings.
	dirs := collectDirectives(r.Fset, pkgs)
	known := map[string]bool{IgnoreRule: true}
	for _, rule := range AllRules() {
		known[rule.Name()] = true
	}
	for _, rule := range r.Rules {
		known[rule.Name()] = true
	}

	var out []Finding
	for _, d := range dirs {
		if d.reason == "" {
			out = append(out, Finding{
				Pos:  d.pos,
				Rule: IgnoreRule,
				Msg:  "ignore directive needs a reason: //lint:ignore <rule> <reason>",
			})
			continue
		}
		for _, name := range d.rules {
			if !known[name] {
				out = append(out, Finding{
					Pos:  d.pos,
					Rule: IgnoreRule,
					Msg:  fmt.Sprintf("ignore directive names unknown rule %q", name),
				})
			}
		}
	}
	for _, f := range raw {
		if suppressed(dirs, f) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

func (r *Runner) reporter(rule string, sink *[]Finding) Reporter {
	return func(pos token.Pos, format string, args ...any) {
		*sink = append(*sink, Finding{
			Pos:  r.Fset.Position(pos),
			Rule: rule,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	rules  []string // comma-separated rule list after "lint:ignore"
	reason string
}

// collectDirectives parses every //lint:ignore comment in the loaded
// files. A malformed directive (no rule at all) is represented with an
// empty rules list and empty reason so validation reports it.
func collectDirectives(fset *token.FileSet, pkgs []*Package) []directive {
	var out []directive
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
					d := directive{pos: fset.Position(c.Pos())}
					if rest != "" {
						parts := strings.SplitN(rest, " ", 2)
						for _, name := range strings.Split(parts[0], ",") {
							if name = strings.TrimSpace(name); name != "" {
								d.rules = append(d.rules, name)
							}
						}
						if len(parts) == 2 {
							d.reason = strings.TrimSpace(parts[1])
						}
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// suppressed reports whether a well-formed directive on the finding's
// line or the line directly above names the finding's rule.
func suppressed(dirs []directive, f Finding) bool {
	for _, d := range dirs {
		if d.reason == "" || d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.pos.Line != f.Pos.Line && d.pos.Line != f.Pos.Line-1 {
			continue
		}
		for _, name := range d.rules {
			if name == f.Rule {
				return true
			}
		}
	}
	return false
}
