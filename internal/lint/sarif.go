package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF (Static Analysis Results Interchange Format 2.1.0) is the
// interchange schema CI forges consume to render findings as inline
// code annotations. WriteSARIF emits the minimal valid subset: one run,
// the driver's rule metadata, and one result per finding with a
// physical location. File paths are made relative to base (forward
// slashes, per the spec) when they live under it.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

// WriteSARIF encodes findings as a SARIF 2.1.0 log. rules is the rule
// set that ran (its metadata goes into the driver section); every
// finding is emitted at level "error" — the suite is a merge gate, not
// a style advisor.
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule, base string) error {
	sr := make([]sarifRule, 0, len(rules)+1)
	for _, r := range rules {
		sr = append(sr, sarifRule{ID: r.Name(), ShortDescription: sarifMessage{r.Doc()}})
	}
	sr = append(sr, sarifRule{ID: IgnoreRule, ShortDescription: sarifMessage{"malformed or unknown //lint:ignore directive"}})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifMessage{f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: sarifURI(base, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line},
			}}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "easyhps-vet", Rules: sr}},
			Results: results,
		}},
	})
}

// sarifURI renders file relative to base with forward slashes when
// possible, falling back to the absolute path.
func sarifURI(base, file string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
