package lint

import "testing"

// BenchmarkLintRepo measures the analyzer's wall-time over the full
// repository — load (parse + type-check, including stdlib dependencies
// from source) plus all rules — so the cost of the CI gate stays visible
// in the benchmark trajectory as the rule set and the codebase grow.
func BenchmarkLintRepo(b *testing.B) {
	root := repoRoot()
	for i := 0; i < b.N; i++ {
		prog, err := Load(root, "./...")
		if err != nil {
			b.Fatalf("Load: %v", err)
		}
		findings := NewRunner(prog.Fset).Run(prog.Pkgs)
		if len(findings) != 0 {
			b.Fatalf("repository not clean: %v", findings[0])
		}
	}
}

// BenchmarkLintRules isolates the rule passes from loading: the program
// is type-checked once and the rules run per iteration.
func BenchmarkLintRules(b *testing.B) {
	prog, err := Load(repoRoot(), "./...")
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := NewRunner(prog.Fset).Run(prog.Pkgs); len(findings) != 0 {
			b.Fatalf("repository not clean: %v", findings[0])
		}
	}
}

// BenchmarkLintCallGraph isolates the interprocedural layer: call-graph
// construction, the summary fixpoint and the held-set scan behind
// lock-hierarchy and blocking-under-lock, over the pre-loaded program.
// Fresh rules per iteration defeat the shared-analysis memoization that
// normally lets the two rules split one build.
func BenchmarkLintCallGraph(b *testing.B) {
	prog, err := Load(repoRoot(), "./...")
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lh, bul := NewConcRules(nil)
		if findings := NewRunner(prog.Fset, lh, bul).Run(prog.Pkgs); len(findings) != 0 {
			b.Fatalf("repository not clean: %v", findings[0])
		}
	}
}
