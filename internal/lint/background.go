package lint

import (
	"go/ast"
	"strings"
)

// NakedBackground flags context.Background() and context.TODO() in
// library packages (everything under internal/ that is not a main
// package; test files are never loaded). A detached context in library
// code severs the caller's cancellation chain: work started under it
// outlives the request, the job, or the shutdown deadline that should
// have bounded it — exactly the bug class PR 1's context plumbing was
// added to prevent.
//
// Legitimate detachment points (context-free compatibility entry points,
// a manager-lifetime root context) must carry a
// //lint:ignore naked-background <reason> so the exception is explicit
// and auditable.
type NakedBackground struct{}

// NewNakedBackground returns the rule.
func NewNakedBackground() *NakedBackground { return &NakedBackground{} }

func (*NakedBackground) Name() string { return "naked-background" }
func (*NakedBackground) Doc() string {
	return "context.Background()/TODO() in library code severs the caller's cancellation chain"
}

// CheckPackage implements PackageRule.
func (r *NakedBackground) CheckPackage(p *Package, report Reporter) {
	if p.IsMain() || !isLibraryPath(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			switch {
			case isPkgFunc(fn, "context", "Background"):
				report(call.Pos(), "context.Background() in library code: accept a caller context instead (or justify with //lint:ignore naked-background <reason>)")
			case isPkgFunc(fn, "context", "TODO"):
				report(call.Pos(), "context.TODO() in library code: accept a caller context instead (or justify with //lint:ignore naked-background <reason>)")
			}
			return true
		})
	}
}

// isLibraryPath reports whether the import path denotes library code
// subject to the rule.
func isLibraryPath(path string) bool {
	return strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}
