package lint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// loadRepo loads the whole repository once per test process and shares
// the result: type-checking the module plus its stdlib dependencies from
// source costs a few seconds, and several tests want the same program.
var (
	repoOnce sync.Once
	repoProg *Program
	repoErr  error
)

func loadRepo(t *testing.T) *Program {
	t.Helper()
	repoOnce.Do(func() {
		repoProg, repoErr = Load(repoRoot(), "./...")
	})
	if repoErr != nil {
		t.Fatalf("loading repository: %v", repoErr)
	}
	return repoProg
}

func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

func TestLoadSinglePackage(t *testing.T) {
	prog, err := Load(repoRoot(), "./internal/sched")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(prog.Pkgs))
	}
	p := prog.Pkgs[0]
	if p.Path != "repro/internal/sched" || p.Name != "sched" {
		t.Fatalf("loaded %q (%s), want repro/internal/sched (sched)", p.Path, p.Name)
	}
	if p.Pkg == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatal("package missing type information or files")
	}
	if len(p.Pkg.Scope().Names()) == 0 {
		t.Fatal("type-checked package has an empty scope")
	}
}

func TestLoadRecursivePattern(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	prog := loadRepo(t)
	want := []string{
		"repro",
		"repro/cmd/easyhps-vet",
		"repro/internal/comm",
		"repro/internal/core",
		"repro/internal/lint",
		"repro/internal/server",
	}
	for _, w := range want {
		if prog.Package(w) == nil {
			t.Errorf("pattern ./... did not load %s", w)
		}
	}
}

// TestRepositoryIsClean is the merge gate mirrored as a test: the full
// rule set over the full repository must report nothing, exactly like
// `easyhps-vet ./...` in scripts/ci.sh.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	prog := loadRepo(t)
	findings := NewRunner(prog.Fset).Run(prog.Pkgs)
	for _, f := range findings {
		t.Errorf("repository violation: %s", f)
	}
}

// TestKnownRuntimeViolationsAreSuppressed pins the audited escape
// hatches: the bounded joins in runMaster and Manager.Shutdown, the
// context-free compatibility entry points, and the fleet's
// attach-serialized sends under attachMu all carry //lint:ignore
// directives with reasons — if someone deletes the code, the directive,
// or the reason, either this test or TestRepositoryIsClean moves.
func TestKnownRuntimeViolationsAreSuppressed(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	prog := loadRepo(t)
	var audited []*Package
	for _, p := range prog.Pkgs {
		switch p.Path {
		case "repro/internal/core", "repro/internal/server", "repro/internal/fleet":
			audited = append(audited, p)
		}
	}
	// Run the raw rules without suppression by checking the directives
	// exist where the violations are.
	dirs := collectDirectives(prog.Fset, audited)
	wantRules := map[string]int{"ctx-select": 2, "naked-background": 3, "blocking-under-lock": 3}
	gotRules := map[string]int{}
	for _, d := range dirs {
		if d.reason == "" {
			t.Errorf("directive at %s has no reason", d.pos)
		}
		for _, r := range d.rules {
			gotRules[r]++
		}
	}
	for rule, want := range wantRules {
		if gotRules[rule] < want {
			t.Errorf("expected at least %d //lint:ignore %s directives in core+server+fleet, found %d", want, rule, gotRules[rule])
		}
	}
}

// TestConcurrencyRulesRepositoryClean is the merge gate for the four
// interprocedural/protocol rules alone: with the checked-in
// lint/lockorder.conf, the lock hierarchy, the no-blocking-under-lock
// discipline (modulo the audited fleet sends), kind exhaustiveness and
// atomic consistency all hold over the whole repository.
func TestConcurrencyRulesRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository; skipped in -short mode")
	}
	prog := loadRepo(t)
	lh, bul := NewConcRules(nil)
	rules := []Rule{lh, bul, NewKindExhaustive(), NewAtomicConsistency()}
	for _, f := range NewRunner(prog.Fset, rules...).Run(prog.Pkgs) {
		t.Errorf("concurrency-rule violation: %s", f)
	}
}
