package lint

import (
	"strings"
	"testing"
)

func TestIgnoreOnPrecedingLine(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(xs []int) {
	for range xs {
		//lint:ignore timer-leak one-shot per call in tests, bounded by len(xs)
		<-time.After(time.Millisecond)
	}
}
`, NewTimerLeak())
	wantFindings(t, got)
}

func TestIgnoreOnSameLine(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(xs []int) {
	for range xs {
		<-time.After(time.Millisecond) //lint:ignore timer-leak bounded by len(xs)
	}
}
`, NewTimerLeak())
	wantFindings(t, got)
}

func TestIgnoreWrongRuleDoesNotSuppress(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(xs []int) {
	for range xs {
		//lint:ignore ctx-select not the right rule
		<-time.After(time.Millisecond)
	}
}
`, NewTimerLeak(), NewCtxSelect())
	wantFindings(t, got, "7: timer-leak: time.After in a loop")
}

func TestIgnoreEmptyReasonRejected(t *testing.T) {
	// A reasonless ignore is itself a finding AND does not suppress:
	// suppressions must be auditable.
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(xs []int) {
	for range xs {
		//lint:ignore timer-leak
		<-time.After(time.Millisecond)
	}
}
`, NewTimerLeak())
	wantFindings(t, got,
		"6: lint-ignore: ignore directive needs a reason",
		"7: timer-leak: time.After in a loop",
	)
}

func TestIgnoreUnknownRuleFlagged(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x

func f() {
	//lint:ignore no-such-rule some reason
	_ = 1
}
`)
	wantFindings(t, got, `4: lint-ignore: ignore directive names unknown rule "no-such-rule"`)
}

func TestIgnoreMultipleRules(t *testing.T) {
	// A comma-separated rule list suppresses each named rule.
	got := checkFixture(t, "repro/internal/core", `package core
import (
	"context"
	"time"
)

func f(ctx context.Context, ch chan int) {
	for {
		//lint:ignore timer-leak,ctx-select fixture exercising multi-rule suppression
		<-time.After(time.Millisecond)
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}
}
`, NewTimerLeak(), NewCtxSelect())
	if len(got) != 0 {
		t.Fatalf("expected no findings, got %v", got)
	}
}

func TestFindingStringFormat(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f() <-chan time.Time {
	return time.Tick(time.Second)
}
`, NewTimerLeak())
	if len(got) != 1 || !strings.Contains(got[0], "timer-leak: time.Tick") {
		t.Fatalf("unexpected findings %v", got)
	}
}
