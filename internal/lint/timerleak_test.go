package lint

import "testing"

func TestTimerLeakAfterInLoop(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second):
		}
	}
}
`, NewTimerLeak())
	wantFindings(t, got, "9: timer-leak: time.After in a loop")
}

func TestTimerLeakAfterInRangeLoop(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(xs []int) {
	for range xs {
		<-time.After(time.Millisecond)
	}
}
`, NewTimerLeak())
	wantFindings(t, got, "6: timer-leak: time.After in a loop")
}

func TestTimerLeakAfterOutsideLoopClean(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}
`, NewTimerLeak())
	wantFindings(t, got)
}

func TestTimerLeakTickerInLoopClean(t *testing.T) {
	// The repaired shape — a ticker hoisted out of the loop — is clean,
	// as is a per-iteration goroutine that consumes one timer.
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f(done chan struct{}) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
	}
}

func g(work []func()) {
	for range work {
		go func() {
			<-time.After(time.Second)
		}()
	}
}
`, NewTimerLeak())
	wantFindings(t, got)
}

func TestTimerLeakTickAnywhere(t *testing.T) {
	got := checkFixture(t, "repro/internal/x", `package x
import "time"

func f() <-chan time.Time {
	return time.Tick(time.Second)
}
`, NewTimerLeak())
	wantFindings(t, got, "5: timer-leak: time.Tick leaks its ticker")
}
