package lint

import (
	"go/ast"
	"go/token"
)

// LockAcrossChannel flags a sync.Mutex/RWMutex held across a blocking
// operation: a channel send or receive, a blocking select, a range over
// a channel, or a sync.WaitGroup.Wait. In the master/slave loops every
// mutex is a short critical section around shared tables (register
// table, known-set, job map); blocking under one of them stalls every
// other worker touching the table and, when the unblocking party needs
// the same mutex, deadlocks the run.
//
// sync.Cond.Wait is deliberately exempt: it releases its locker while
// waiting, which is the dispatcher's (sched.Dynamic/BlockCyclic) correct
// idiom. close() is exempt too — it never blocks.
//
// The analysis is a conservative lexical walk, not a full CFG: a lock is
// considered released after a statement (if/switch branch) in which any
// path unlocks it, so the rule errs toward silence rather than noise.
type LockAcrossChannel struct{}

// NewLockAcrossChannel returns the rule.
func NewLockAcrossChannel() *LockAcrossChannel { return &LockAcrossChannel{} }

func (*LockAcrossChannel) Name() string { return "lock-across-channel" }
func (*LockAcrossChannel) Doc() string {
	return "a held sync.Mutex/RWMutex across a channel op or WaitGroup.Wait is a deadlock hazard"
}

// CheckPackage implements PackageRule.
func (r *LockAcrossChannel) CheckPackage(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				s := &lockScan{p: p, report: report}
				s.stmts(body.List, lockSet{})
			}
			return true // literals nested inside get their own scan
		})
	}
}

// lockSet maps a lock's receiver expression ("m.mu") to the position of
// the Lock call that acquired it.
type lockSet map[string]token.Pos

func (l lockSet) clone() lockSet {
	c := make(lockSet, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held in both states (optimistic merge after
// branching control flow).
func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockScan struct {
	p      *Package
	report Reporter
}

// stmts scans a statement list, threading the held-lock state through,
// and returns the state after the list.
func (s *lockScan) stmts(list []ast.Stmt, held lockSet) lockSet {
	for _, st := range list {
		held = s.stmt(st, held)
	}
	return held
}

func (s *lockScan) stmt(st ast.Stmt, held lockSet) lockSet {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch kind, key, pos := s.lockOp(call); kind {
			case opLock:
				held[key] = pos
				return held
			case opUnlock:
				delete(held, key)
				return held
			}
		}
		s.expr(st.X, held)
	case *ast.SendStmt:
		s.flag(st.Arrow, "send on "+exprString(s.p.Fset, st.Chan), held)
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.expr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remainder of
		// the body — the hazard we are looking for — so it does not
		// clear the state. Other deferred calls only have their
		// arguments evaluated now.
		if kind, _, _ := s.lockOp(st.Call); kind == opNone {
			for _, e := range st.Call.Args {
				s.expr(e, held)
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs without our locks; only the call
		// arguments are evaluated here.
		for _, e := range st.Call.Args {
			s.expr(e, held)
		}
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	case *ast.BlockStmt:
		return s.stmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		after := s.stmts(st.Body.List, held.clone())
		alt := held
		if st.Else != nil {
			alt = s.stmt(st.Else, held.clone())
		}
		return intersect(after, alt)
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		// The body is scanned for hazards with the current state; lock
		// state changes inside a loop body are not propagated past it
		// (a Lock/Unlock pair per iteration leaves the state unchanged).
		s.stmts(st.Body.List, held.clone())
		return held
	case *ast.RangeStmt:
		s.expr(st.X, held)
		if isChanType(s.p.Info.Types[st.X].Type) {
			s.flag(st.For, "range over channel "+exprString(s.p.Fset, st.X), held)
		}
		s.stmts(st.Body.List, held.clone())
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return s.switchStmt(st, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range st.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			s.flag(st.Select, "select", held)
		}
		for _, cl := range st.Body.List {
			s.stmts(cl.(*ast.CommClause).Body, held.clone())
		}
		return held
	}
	return held
}

// switchStmt handles switch and type-switch: each case body is scanned
// with a copy of the state; afterwards a lock is considered held only if
// every case kept it held.
func (s *lockScan) switchStmt(st ast.Stmt, held lockSet) lockSet {
	var body *ast.BlockStmt
	switch st := st.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		body = st.Body
	}
	after := held
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		after = intersect(after, s.stmts(cc.Body, held.clone()))
	}
	return after
}

// expr scans an expression for blocking operations performed while locks
// are held. Function literals are skipped: they are scanned separately
// with an empty state.
func (s *lockScan) expr(e ast.Expr, held lockSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.flag(n.OpPos, "receive from "+exprString(s.p.Fset, n.X), held)
			}
		case *ast.CallExpr:
			fn := calleeFunc(s.p.Info, n)
			if isMethodOf(fn, "sync", "WaitGroup", "Wait") {
				s.flag(n.Pos(), "sync.WaitGroup.Wait", held)
			}
		}
		return true
	})
}

func (s *lockScan) flag(pos token.Pos, what string, held lockSet) {
	for key, lockPos := range held {
		s.report(pos, "blocking %s while %s is held (Lock at line %d): unlock before blocking, or the goroutine that would unblock this may be stuck on the same mutex",
			what, key, s.p.Fset.Position(lockPos).Line)
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (including ones promoted through
// embedding), returning the receiver expression as the lock's identity.
func (s *lockScan) lockOp(call *ast.CallExpr) (lockOpKind, string, token.Pos) {
	fn := calleeFunc(s.p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, "", token.NoPos
	}
	if !isMethodOf(fn, "sync", "Mutex", fn.Name()) && !isMethodOf(fn, "sync", "RWMutex", fn.Name()) {
		return opNone, "", token.NoPos
	}
	recv := receiverOf(call)
	if recv == nil {
		return opNone, "", token.NoPos
	}
	key := exprString(s.p.Fset, recv)
	switch fn.Name() {
	case "Lock", "RLock":
		return opLock, key, call.Pos()
	case "Unlock", "RUnlock":
		return opUnlock, key, call.Pos()
	}
	return opNone, "", token.NoPos
}
