package sched

import (
	"sort"
	"sync"
	"time"
)

// Lease binds one dispatched attempt of a DAG vertex to one worker. It is
// the unit of work-loss accounting: when the worker dies or leaves, every
// lease it holds is revoked and the uncovered vertices go back on the
// ready stack. Timeout expiry (the overtime queue) and result acceptance
// (the register table) release leases individually.
//
// A vertex may carry several concurrent leases — the original attempt and
// a speculative backup — distinguished by Attempt. Seq is the global
// grant sequence: higher means dispatched later, which is what the
// work-stealing path uses to steal from the tail of a loaded worker's
// backlog (the head entry is the one it is probably executing now).
type Lease struct {
	Vertex  int32
	Worker  int
	Attempt int32
	Seq     int
	Granted time.Time
}

// LeaseTable indexes live leases by vertex and by worker. All methods are
// safe for concurrent use. Time is passed in explicitly so one injectable
// clock (the caller's) governs grant stamps and age queries.
type LeaseTable struct {
	mu       sync.Mutex
	seq      int
	byVertex map[int32][]Lease
	byWorker map[int]map[int32]struct{}
}

// NewLeaseTable creates an empty table.
func NewLeaseTable() *LeaseTable {
	return &LeaseTable{
		byVertex: make(map[int32][]Lease),
		byWorker: make(map[int]map[int32]struct{}),
	}
}

// Grant records a lease for vertex v held by worker with the given
// attempt, superseding every prior lease on v (a redistribution).
func (t *LeaseTable) Grant(v int32, worker int, attempt int32, now time.Time) Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.byVertex[v]
	delete(t.byVertex, v)
	for _, l := range old {
		t.unindex(l)
	}
	return t.add(v, worker, attempt, now)
}

// Add records an additional concurrent lease on v (a speculative backup)
// without superseding the existing one(s).
func (t *LeaseTable) Add(v int32, worker int, attempt int32, now time.Time) Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.add(v, worker, attempt, now)
}

// add appends a lease; callers hold t.mu.
func (t *LeaseTable) add(v int32, worker int, attempt int32, now time.Time) Lease {
	t.seq++
	l := Lease{Vertex: v, Worker: worker, Attempt: attempt, Seq: t.seq, Granted: now}
	t.byVertex[v] = append(t.byVertex[v], l)
	set := t.byWorker[worker]
	if set == nil {
		set = make(map[int32]struct{})
		t.byWorker[worker] = set
	}
	set[v] = struct{}{}
	return l
}

// Release drops every lease on vertex v (result accepted — the winner and
// any speculative losers retire together) and returns them.
func (t *LeaseTable) Release(v int32) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.byVertex[v]
	if len(ls) == 0 {
		return nil
	}
	delete(t.byVertex, v)
	for _, l := range ls {
		t.unindex(l)
	}
	return ls
}

// ReleaseAttempt drops the single lease (v, attempt) — an individual
// overtime expiry or a stolen backlog entry — leaving concurrent leases
// on v intact. It returns the dropped lease and whether it existed.
func (t *LeaseTable) ReleaseAttempt(v int32, attempt int32) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.byVertex[v]
	for i, l := range ls {
		if l.Attempt != attempt {
			continue
		}
		ls = append(ls[:i], ls[i+1:]...)
		if len(ls) == 0 {
			delete(t.byVertex, v)
		} else {
			t.byVertex[v] = ls
		}
		t.unindex(l)
		return l, true
	}
	return Lease{}, false
}

// RevokeWorker drops every lease held by worker and returns them — the
// attempts the master must cancel (and requeue where no concurrent
// attempt survives).
func (t *LeaseTable) RevokeWorker(worker int) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.byWorker[worker]
	delete(t.byWorker, worker)
	if len(set) == 0 {
		return nil
	}
	out := make([]Lease, 0, len(set))
	for v := range set {
		ls := t.byVertex[v]
		kept := ls[:0]
		for _, l := range ls {
			if l.Worker == worker {
				out = append(out, l)
			} else {
				kept = append(kept, l)
			}
		}
		if len(kept) == 0 {
			delete(t.byVertex, v)
		} else {
			t.byVertex[v] = kept
		}
	}
	return out
}

// Holders returns a copy of the live leases on vertex v.
func (t *LeaseTable) Holders(v int32) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.byVertex[v]) == 0 {
		return nil
	}
	return append([]Lease(nil), t.byVertex[v]...)
}

// Find returns the lease (v, attempt), if live.
func (t *LeaseTable) Find(v int32, attempt int32) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.byVertex[v] {
		if l.Attempt == attempt {
			return l, true
		}
	}
	return Lease{}, false
}

// Len returns the number of live leases.
func (t *LeaseTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ls := range t.byVertex {
		n += len(ls)
	}
	return n
}

// OlderThan returns every lease granted before cutoff — the speculation
// candidates — ordered oldest first, ties broken by grant sequence so
// the order is a deterministic function of the table's history (leases
// granted in the same fake-clock instant would otherwise surface in map
// order, which the deterministic simulator cannot tolerate).
func (t *LeaseTable) OlderThan(cutoff time.Time) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Lease
	for _, ls := range t.byVertex {
		for _, l := range ls {
			if l.Granted.Before(cutoff) {
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Granted.Equal(out[j].Granted) {
			return out[i].Granted.Before(out[j].Granted)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Load returns the number of leases held by worker.
func (t *LeaseTable) Load(worker int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byWorker[worker])
}

// Loads returns the per-worker lease counts for every worker holding at
// least one lease.
func (t *LeaseTable) Loads() map[int]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]int, len(t.byWorker))
	for w, set := range t.byWorker {
		if len(set) > 0 {
			out[w] = len(set)
		}
	}
	return out
}

// WorkerLeases returns a copy of worker's leases ordered by grant
// sequence, oldest first — the steal path takes from the tail.
func (t *LeaseTable) WorkerLeases(worker int) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.byWorker[worker]
	if len(set) == 0 {
		return nil
	}
	out := make([]Lease, 0, len(set))
	for v := range set {
		for _, l := range t.byVertex[v] {
			if l.Worker == worker {
				out = append(out, l)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// unindex removes l's worker-side index entry if no other lease of the
// same worker covers the vertex; callers hold t.mu.
func (t *LeaseTable) unindex(l Lease) {
	for _, other := range t.byVertex[l.Vertex] {
		if other.Worker == l.Worker && other.Attempt != l.Attempt {
			return // worker still holds another attempt on this vertex
		}
	}
	if set := t.byWorker[l.Worker]; set != nil {
		delete(set, l.Vertex)
		if len(set) == 0 {
			delete(t.byWorker, l.Worker)
		}
	}
}
