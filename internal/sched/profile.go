package sched

import (
	"sort"
	"sync"
	"time"
)

// RuntimeProfile tracks recent sub-task runtimes for one kernel in a
// fixed-size ring, supporting quantile queries. The speculation policy
// compares each in-flight attempt's age against a high quantile of the
// profile — "this vertex has already run longer than 95% of its peers" —
// which adapts to the kernel's real cost instead of the fixed overtime
// deadline (the paper's only straggler defence).
type RuntimeProfile struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

// DefaultProfileWindow is the ring capacity used by NewRuntimeProfile
// callers that have no reason to choose: large enough to smooth jitter,
// small enough to track phase changes across DAG waves.
const DefaultProfileWindow = 256

// NewRuntimeProfile creates a profile remembering the last window
// observations (DefaultProfileWindow when window <= 0).
func NewRuntimeProfile(window int) *RuntimeProfile {
	if window <= 0 {
		window = DefaultProfileWindow
	}
	return &RuntimeProfile{buf: make([]time.Duration, window)}
}

// Observe records one completed sub-task runtime.
func (p *RuntimeProfile) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.mu.Lock()
	p.buf[p.next] = d
	p.next++
	if p.next == len(p.buf) {
		p.next = 0
		p.full = true
	}
	p.mu.Unlock()
}

// Samples returns the number of observations currently held.
func (p *RuntimeProfile) Samples() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples()
}

func (p *RuntimeProfile) samples() int {
	if p.full {
		return len(p.buf)
	}
	return p.next
}

// Quantile returns the q-quantile (0 <= q <= 1) of the held observations
// and true, or false when the profile is empty.
func (p *RuntimeProfile) Quantile(q float64) (time.Duration, bool) {
	p.mu.Lock()
	n := p.samples()
	if n == 0 {
		p.mu.Unlock()
		return 0, false
	}
	s := make([]time.Duration, n)
	copy(s, p.buf[:n])
	p.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(n-1))
	return s[idx], true
}

// Threshold returns the speculation age threshold — multiplier times the
// q-quantile, floored at floor — and true once at least minSamples
// observations exist. Before that it returns false: speculating off a
// cold profile would back up half the first wave.
func (p *RuntimeProfile) Threshold(q, multiplier float64, floor time.Duration, minSamples int) (time.Duration, bool) {
	if p.Samples() < minSamples {
		return 0, false
	}
	base, ok := p.Quantile(q)
	if !ok {
		return 0, false
	}
	th := time.Duration(float64(base) * multiplier)
	if th < floor {
		th = floor
	}
	return th, true
}
