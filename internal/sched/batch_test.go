package sched

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
)

// buildGraph is a test helper returning a built DAG for a named pattern.
func buildGraph(t *testing.T, pattern string, n, block int) *dag.Graph {
	t.Helper()
	pat, ok := dag.Lookup(pattern)
	if !ok {
		t.Fatalf("pattern %q not registered", pattern)
	}
	g := dag.MatrixGeometry(dag.Square(n), dag.Square(block))
	return dag.Build(pat, g)
}

// predecessors builds the reverse adjacency of the graph: for every vertex,
// the ids of its direct topological precursors. The Vertex struct stores
// only successor lists, so the invariant check reconstructs the other
// direction independently.
func predecessors(gr *dag.Graph) map[int32][]int32 {
	pre := make(map[int32][]int32)
	for _, id := range gr.Existing() {
		for _, s := range gr.Vertex(id).Post {
			pre[s] = append(pre[s], id)
		}
	}
	return pre
}

// TestNextBatchOrderingInvariant drives a seeded single-worker run through
// the batch path and asserts the core safety property of batched dispatch:
// at the moment a batch is formed, every vertex in it already has all of
// its DAG predecessors completed and applied. Completions are applied only
// after the whole batch has been drained, so a violation cannot hide
// behind timing — if NextBatch ever handed out a vertex whose predecessor
// was still in flight (e.g. in the same batch), the check fails
// deterministically.
func TestNextBatchOrderingInvariant(t *testing.T) {
	for _, pattern := range []string{dag.NameWavefront, dag.NameTriangular} {
		for _, batch := range []int{1, 2, 3, 7, 64} {
			gr := buildGraph(t, pattern, 24, 4)
			pre := predecessors(gr)
			parser := dag.NewParser(gr)
			d := NewDynamic()
			rng := rand.New(rand.NewSource(int64(42 + batch)))

			// Inject new ready vertices in a seeded random order to
			// simulate results arriving in arbitrary interleavings.
			inject := func(ids []int32) {
				rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
				d.Ready(ids...)
			}
			inject(parser.InitialReady())

			completed := make(map[int32]bool)
			delivered := 0
			for delivered < gr.N {
				ids, ok := d.NextBatch(0, batch)
				if !ok {
					t.Fatalf("%s batch=%d: dispatcher closed with %d/%d delivered", pattern, batch, delivered, gr.N)
				}
				if len(ids) == 0 || len(ids) > batch {
					t.Fatalf("%s batch=%d: NextBatch returned %d vertices", pattern, batch, len(ids))
				}
				// The invariant: every vertex in the batch was computable
				// at formation time — all predecessors completed before
				// the batch was formed, none of them inside this batch.
				for _, id := range ids {
					for _, p := range pre[id] {
						if !completed[p] {
							t.Fatalf("%s batch=%d: vertex %d delivered before predecessor %d completed (batch %v)",
								pattern, batch, id, p, ids)
						}
					}
					if completed[id] {
						t.Fatalf("%s batch=%d: vertex %d delivered twice", pattern, batch, id)
					}
				}
				// Apply completions only after the whole batch is formed.
				for _, id := range ids {
					completed[id] = true
					inject(parser.Complete(id))
					delivered++
				}
			}
			if !parser.Finished() {
				t.Fatalf("%s batch=%d: parser not finished after %d deliveries", pattern, batch, delivered)
			}
		}
	}
}

// TestNextBatchMatchesNextAtOne pins the compatibility contract the core
// runtime relies on: with max == 1 the batch path must produce exactly the
// vertex sequence the per-vertex path produces for the same seeded run.
func TestNextBatchMatchesNextAtOne(t *testing.T) {
	trace := func(useBatch bool) []int32 {
		gr := buildGraph(t, dag.NameWavefront, 16, 4)
		parser := dag.NewParser(gr)
		d := NewDynamic()
		rng := rand.New(rand.NewSource(7))
		inject := func(ids []int32) {
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			d.Ready(ids...)
		}
		inject(parser.InitialReady())
		var order []int32
		for len(order) < gr.N {
			var id int32
			if useBatch {
				ids, ok := d.NextBatch(0, 1)
				if !ok || len(ids) != 1 {
					t.Fatalf("NextBatch(0,1) = %v, %v", ids, ok)
				}
				id = ids[0]
			} else {
				var ok bool
				id, ok = d.Next(0)
				if !ok {
					t.Fatal("Next returned !ok mid-run")
				}
			}
			order = append(order, id)
			inject(parser.Complete(id))
		}
		return order
	}

	a, b := trace(false), trace(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch order diverges at %d: Next gave %d, NextBatch(·,1) gave %d", i, a[i], b[i])
		}
	}
}

// TestNextBatchFlushOnIdle checks the no-stall rule: NextBatch takes what
// is ready now and never waits for the batch to fill.
func TestNextBatchFlushOnIdle(t *testing.T) {
	d := NewDynamic()
	d.Ready(1, 2, 3)
	ids, ok := d.NextBatch(0, 100)
	if !ok || len(ids) != 3 {
		t.Fatalf("NextBatch = %v, %v; want all 3 ready vertices without blocking", ids, ok)
	}
	// max < 1 behaves as 1.
	d.Ready(4, 5)
	ids, ok = d.NextBatch(0, 0)
	if !ok || len(ids) != 1 {
		t.Fatalf("NextBatch(0,0) = %v, %v; want exactly one vertex", ids, ok)
	}
	d.Close()
	if ids, ok := d.NextBatch(0, 4); ok && len(ids) != 1 {
		t.Fatalf("NextBatch after close = %v, %v", ids, ok)
	}
}

// TestBlockCyclicNextBatch checks that the static policy only batches
// consecutive ready heads of a worker's own queue: a non-ready head fences
// everything behind it, preserving the per-worker wavefront order.
func TestBlockCyclicNextBatch(t *testing.T) {
	gr := buildGraph(t, dag.NameWavefront, 16, 4) // 4x4 grid
	b := NewBlockCyclic(gr, 2, 1)
	parser := dag.NewParser(gr)
	b.Ready(parser.InitialReady()...)

	// Worker 0 owns even columns. Only vertex 0 (block 0,0) is a root, so
	// the first batch must be exactly {0} even with a large max.
	ids, ok := b.NextBatch(0, 8)
	if !ok || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("first batch = %v, %v; want [0]", ids, ok)
	}
	b.Ready(parser.Complete(0)...)

	// Completing 0 readies (0,1) for worker 1 and (1,0) for worker 0; the
	// next worker-0 batch holds only (1,0) because (2,0) is fenced.
	ids, ok = b.NextBatch(0, 8)
	if !ok || len(ids) != 1 {
		t.Fatalf("second batch = %v, %v; want one fenced vertex", ids, ok)
	}
	if got := gr.Vertex(ids[0]).Pos; got != (dag.Pos{Row: 1, Col: 0}) {
		t.Fatalf("second batch delivered %v", got)
	}
	b.Close()
	if _, ok := b.NextBatch(0, 4); ok {
		t.Fatal("NextBatch after close returned ok")
	}
}
