package sched

import "sync"

// RegisterTable is the sub-task register table of the master worker pool:
// every dispatched sub-task is registered before being sent; results are
// accepted only when they match a currently registered attempt, which
// makes acceptance idempotent in the presence of timeout redistributions
// (a slow slave's late result for a superseded attempt is dropped, §V.B
// steps g-h).
//
// A vertex may carry several live attempts at once: Register issues the
// primary attempt (superseding any earlier ones — a redistribution), and
// RegisterBackup adds a concurrent speculative attempt. Whichever live
// attempt's result arrives first wins; Accept then retires every other
// attempt so the losers are discarded by stamp.
type RegisterTable struct {
	mu       sync.Mutex
	live     map[int32]map[int32]struct{} // vertex id -> set of live attempts
	finished map[int32]bool
	attempts map[int32]int32 // vertex id -> last attempt number issued
}

// NewRegisterTable creates an empty table.
func NewRegisterTable() *RegisterTable {
	return &RegisterTable{
		live:     make(map[int32]map[int32]struct{}),
		finished: make(map[int32]bool),
		attempts: make(map[int32]int32),
	}
}

// Register records a new dispatch attempt for vertex id and returns its
// attempt number (1 for the first dispatch). Any earlier live attempts
// are superseded — this is the timeout-redistribution path, where the old
// attempt must no longer be accepted. It reports ok == false when the
// vertex already finished — this happens when a result races its own
// timeout redistribution, in which case the caller must not dispatch.
func (t *RegisterTable) Register(id int32) (attempt int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished[id] {
		return 0, false
	}
	t.attempts[id]++
	a := t.attempts[id]
	t.live[id] = map[int32]struct{}{a: {}}
	return a, true
}

// RegisterBackup records a speculative attempt for vertex id alongside
// the already-live one(s) and returns its attempt number. Unlike
// Register it does not supersede: both the original and the backup may
// deliver, and Accept takes whichever lands first. It reports ok == false
// when the vertex already finished or has no live attempt to back up.
func (t *RegisterTable) RegisterBackup(id int32) (attempt int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished[id] || len(t.live[id]) == 0 {
		return 0, false
	}
	t.attempts[id]++
	a := t.attempts[id]
	t.live[id][a] = struct{}{}
	return a, true
}

// Cancel removes every registration of vertex id (timeout redistribution,
// §V.B step g). It is a no-op for unregistered or finished vertices.
func (t *RegisterTable) Cancel(id int32) {
	t.mu.Lock()
	delete(t.live, id)
	t.mu.Unlock()
}

// CancelAttempt retires one live attempt of vertex id (its worker died or
// its individual deadline fired) and returns how many live attempts
// remain. Only when the count drops to zero must the caller requeue the
// vertex — a surviving concurrent attempt still covers it.
func (t *RegisterTable) CancelAttempt(id, attempt int32) (remaining int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.live[id]
	delete(set, attempt)
	if len(set) == 0 {
		delete(t.live, id)
	}
	return len(set)
}

// Accept reports whether a result for (id, attempt) should be applied:
// the attempt must be live and the vertex must not have finished. On
// success the vertex is marked finished and every other live attempt is
// retired, so the losing duplicate of a speculative race is dropped.
func (t *RegisterTable) Accept(id, attempt int32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished[id] {
		return false
	}
	if _, ok := t.live[id][attempt]; !ok {
		return false
	}
	delete(t.live, id)
	t.finished[id] = true
	return true
}

// Outstanding returns the number of vertices with at least one live
// (executing) attempt.
func (t *RegisterTable) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// LiveAttempts returns the number of live attempts for vertex id.
func (t *RegisterTable) LiveAttempts(id int32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live[id])
}

// Finished returns the number of accepted sub-tasks.
func (t *RegisterTable) Finished() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}

// Attempts returns the total number of dispatch attempts issued for vertex
// id (1 means it never timed out or was speculated).
func (t *RegisterTable) Attempts(id int32) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts[id]
}
