package sched

import "sync"

// RegisterTable is the sub-task register table of the master worker pool:
// every dispatched sub-task is registered before being sent; results are
// accepted only when they match the currently registered attempt, which
// makes acceptance idempotent in the presence of timeout redistributions
// (a slow slave's late result for a superseded attempt is dropped, §V.B
// steps g-h).
type RegisterTable struct {
	mu       sync.Mutex
	current  map[int32]int32 // vertex id -> registered attempt
	finished map[int32]bool
	attempts map[int32]int32 // vertex id -> last attempt number issued
}

// NewRegisterTable creates an empty table.
func NewRegisterTable() *RegisterTable {
	return &RegisterTable{
		current:  make(map[int32]int32),
		finished: make(map[int32]bool),
		attempts: make(map[int32]int32),
	}
}

// Register records a new dispatch attempt for vertex id and returns its
// attempt number (1 for the first dispatch). It reports ok == false when
// the vertex already finished — this happens when a result races its own
// timeout redistribution, in which case the caller must not dispatch.
func (t *RegisterTable) Register(id int32) (attempt int32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished[id] {
		return 0, false
	}
	t.attempts[id]++
	a := t.attempts[id]
	t.current[id] = a
	return a, true
}

// Cancel removes the registration of vertex id (timeout redistribution,
// §V.B step g). It is a no-op for unregistered or finished vertices.
func (t *RegisterTable) Cancel(id int32) {
	t.mu.Lock()
	delete(t.current, id)
	t.mu.Unlock()
}

// Accept reports whether a result for (id, attempt) should be applied: the
// attempt must be the currently registered one and the vertex must not
// have finished. On success the vertex is marked finished.
func (t *RegisterTable) Accept(id, attempt int32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished[id] {
		return false
	}
	cur, ok := t.current[id]
	if !ok || cur != attempt {
		return false
	}
	delete(t.current, id)
	t.finished[id] = true
	return true
}

// Outstanding returns the number of currently registered (executing)
// sub-tasks.
func (t *RegisterTable) Outstanding() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.current)
}

// Finished returns the number of accepted sub-tasks.
func (t *RegisterTable) Finished() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}

// Attempts returns the total number of dispatch attempts issued for vertex
// id (1 means it never timed out).
func (t *RegisterTable) Attempts(id int32) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts[id]
}
