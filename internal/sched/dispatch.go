package sched

import (
	"sort"
	"sync"

	"repro/internal/dag"
)

// Dispatcher hands computable DAG vertices to workers. It is the policy
// point that distinguishes EasyHPS's dynamic worker pool from the static
// block-cyclic wavefront baseline: both receive the same stream of
// computable vertices from the DAG parser, but differ in which worker may
// execute which vertex.
type Dispatcher interface {
	// Ready injects vertices that have become computable.
	Ready(ids ...int32)
	// Next blocks until a vertex is available for worker w; ok is false
	// when the dispatcher has been closed.
	Next(w int) (id int32, ok bool)
	// NextBatch blocks like Next, then drains up to max vertices that
	// are computable for worker w *right now* into one batch. It never
	// waits for the batch to fill: whatever is ready when the first
	// vertex becomes available is taken, so the DAG frontier cannot
	// stall behind a partial batch (flush-on-idle). max < 1 is treated
	// as 1. ok is false when the dispatcher has been closed.
	NextBatch(w, max int) (ids []int32, ok bool)
	// Requeue returns a dispatched vertex to the pool after a timeout so
	// it can be executed again.
	Requeue(id int32)
	// ReadyCount returns the number of computable vertices currently
	// waiting for a worker.
	ReadyCount() int
	// Close wakes all blocked Next calls; they return ok == false.
	Close()
}

// Dynamic is the EasyHPS policy: a shared computable sub-task stack from
// which any idle worker takes the next sub-task (dynamic worker pool,
// §V.B/§V.C).
type Dynamic struct {
	mu     sync.Mutex
	cond   *sync.Cond
	stack  []int32
	closed bool
	// onWait, when non-nil, runs (with mu held) each time a Next or
	// NextBatch call is about to block. Close contends on mu, so anyone
	// signalled from here observes the caller already parked when Close
	// proceeds — the deterministic ordering hook the close-unblocks
	// tests need instead of sleeping.
	onWait func()
}

// NewDynamic creates a dynamic dispatcher.
func NewDynamic() *Dynamic {
	d := &Dynamic{}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *Dynamic) Ready(ids ...int32) {
	if len(ids) == 0 {
		return
	}
	d.mu.Lock()
	d.stack = append(d.stack, ids...)
	d.mu.Unlock()
	d.cond.Broadcast()
}

func (d *Dynamic) Next(w int) (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.stack) == 0 && !d.closed {
		if d.onWait != nil {
			d.onWait()
		}
		d.cond.Wait()
	}
	if len(d.stack) == 0 {
		return 0, false
	}
	id := d.stack[len(d.stack)-1]
	d.stack = d.stack[:len(d.stack)-1]
	return id, true
}

func (d *Dynamic) NextBatch(w, max int) ([]int32, bool) {
	if max < 1 {
		max = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.stack) == 0 && !d.closed {
		if d.onWait != nil {
			d.onWait()
		}
		d.cond.Wait()
	}
	if len(d.stack) == 0 {
		return nil, false
	}
	n := len(d.stack)
	if n > max {
		n = max
	}
	// Pop from the stack top, preserving LIFO order within the batch so
	// batch == per-vertex dispatch order for a single worker.
	ids := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, d.stack[len(d.stack)-1])
		d.stack = d.stack[:len(d.stack)-1]
	}
	return ids, true
}

func (d *Dynamic) Requeue(id int32) { d.Ready(id) }

func (d *Dynamic) ReadyCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.stack)
}

func (d *Dynamic) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// BlockCyclic is the static baseline (BCW): every vertex is pre-assigned
// to a worker by a block-cyclic function over its grid column, and each
// worker executes exactly its own vertices in wavefront order. A worker
// whose next vertex is not yet computable waits even if other computable
// vertices exist — the "computable DAG nodes alongside idle threads"
// situation the paper identifies as BCW's fatal weakness.
type BlockCyclic struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]int32 // per-worker vertex queues in wavefront order
	ready  map[int32]bool
	closed bool
}

// Owner returns the block-cyclic owner of grid position p: contiguous runs
// of blockCols columns rotate over the workers. blockCols == ceil(gridCols
// / workers) degenerates to the column-based wavefront (CW) method.
func Owner(p dag.Pos, blockCols, workers int) int {
	return (p.Col / blockCols) % workers
}

// ColumnWavefrontBlockCols returns the block_col value that makes the
// block-cyclic assignment equal to the column-based wavefront (CW) method
// of the paper: each worker owns one contiguous run of grid columns.
func ColumnWavefrontBlockCols(gridCols, workers int) int {
	if workers < 1 {
		return gridCols
	}
	bc := (gridCols + workers - 1) / workers
	if bc < 1 {
		bc = 1
	}
	return bc
}

// NewBlockCyclic builds the static schedule for the existing vertices of
// gr over the given number of workers. Each worker's queue is ordered by
// DAG depth level (longest distance from a root), which is the generic
// wavefront order: for the wavefront pattern it equals the anti-diagonal
// sweep, for the triangular pattern the span sweep.
func NewBlockCyclic(gr *dag.Graph, workers, blockCols int) *BlockCyclic {
	if workers < 1 {
		panic("sched: BlockCyclic needs at least one worker")
	}
	if blockCols < 1 {
		blockCols = 1
	}
	b := &BlockCyclic{
		queues: make([][]int32, workers),
		ready:  make(map[int32]bool),
	}
	b.cond = sync.NewCond(&b.mu)

	level := depthLevels(gr)
	// Stable wavefront order: by level, then row-major id.
	ordered := gr.Existing()
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	})
	for _, id := range ordered {
		w := Owner(gr.Vertex(id).Pos, blockCols, workers)
		b.queues[w] = append(b.queues[w], id)
	}
	return b
}

// depthLevels computes, for every vertex, its longest-path distance from
// the roots.
func depthLevels(gr *dag.Graph) []int32 {
	level := make([]int32, len(gr.Verts))
	remaining := make([]int32, len(gr.Verts))
	for id := range gr.Verts {
		remaining[id] = gr.Verts[id].PreCnt
	}
	queue := gr.Roots()
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, s := range gr.Vertex(id).Post {
			if l := level[id] + 1; l > level[s] {
				level[s] = l
			}
			remaining[s]--
			if remaining[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return level
}

func (b *BlockCyclic) Ready(ids ...int32) {
	if len(ids) == 0 {
		return
	}
	b.mu.Lock()
	for _, id := range ids {
		b.ready[id] = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *BlockCyclic) Next(w int) (int32, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed || len(b.queues[w]) == 0 {
			return 0, false
		}
		head := b.queues[w][0]
		if b.ready[head] {
			delete(b.ready, head)
			b.queues[w] = b.queues[w][1:]
			return head, true
		}
		b.cond.Wait()
	}
}

// NextBatch drains the longest ready prefix of worker w's static queue, up
// to max vertices. Only consecutive ready heads may travel together: the
// static wavefront order is the dependency order within one worker, so a
// non-ready head fences everything behind it.
func (b *BlockCyclic) NextBatch(w, max int) ([]int32, bool) {
	if max < 1 {
		max = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed || len(b.queues[w]) == 0 {
			return nil, false
		}
		if b.ready[b.queues[w][0]] {
			var ids []int32
			for len(ids) < max && len(b.queues[w]) > 0 && b.ready[b.queues[w][0]] {
				head := b.queues[w][0]
				delete(b.ready, head)
				b.queues[w] = b.queues[w][1:]
				ids = append(ids, head)
			}
			return ids, true
		}
		b.cond.Wait()
	}
}

// Requeue puts a timed-out vertex back at the head of its owner's queue.
// The owner is recovered from the queues themselves: under the static
// policy a vertex may only ever run on its owner.
func (b *BlockCyclic) Requeue(id int32) {
	b.mu.Lock()
	// The vertex was popped from some worker's queue; without the graph
	// we cannot recompute ownership, so requeue to the worker with the
	// emptiest queue is wrong — instead remember nothing and prepend to
	// the queue it came from is impossible. Static schedules have no
	// recovery story (the paper evaluates fault tolerance only for the
	// dynamic pool); requeue to worker 0 keeps liveness for tests.
	b.queues[0] = append([]int32{id}, b.queues[0]...)
	b.ready[id] = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *BlockCyclic) ReadyCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ready)
}

func (b *BlockCyclic) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
