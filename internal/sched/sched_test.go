package sched

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dag"
)

func TestStackLIFO(t *testing.T) {
	var s Stack
	s.Push(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, want := range []int32{3, 2, 1} {
		got, ok := s.TryPop()
		if !ok || got != want {
			t.Fatalf("TryPop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := s.TryPop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestStackDrain(t *testing.T) {
	var s Stack
	s.Push(1)
	s.Push(2, 3)
	got := s.Drain()
	if len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("Drain = %v", got)
	}
	if s.Len() != 0 {
		t.Fatal("stack not empty after drain")
	}
}

// Property: a sequence of pushes then pops behaves LIFO.
func TestStackProperty(t *testing.T) {
	f := func(vals []int32) bool {
		var s Stack
		s.Push(vals...)
		for k := len(vals) - 1; k >= 0; k-- {
			got, ok := s.TryPop()
			if !ok || got != vals[k] {
				return false
			}
		}
		_, ok := s.TryPop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOvertimeQueueExpiry(t *testing.T) {
	q := NewOvertimeQueue()
	t0 := time.Now()
	q.Add(1, 1, t0.Add(10*time.Millisecond))
	q.Add(2, 1, t0.Add(30*time.Millisecond))
	q.Add(3, 1, t0.Add(50*time.Millisecond))
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}

	exp := q.ExpireBefore(t0.Add(35 * time.Millisecond))
	if len(exp) != 2 || exp[0].ID != 1 || exp[1].ID != 2 {
		t.Fatalf("expired %v", exp)
	}
	if q.Len() != 1 {
		t.Fatalf("Len after expiry = %d", q.Len())
	}
}

func TestOvertimeQueueRemoveBeforeExpiry(t *testing.T) {
	q := NewOvertimeQueue()
	t0 := time.Now()
	q.Add(1, 1, t0)
	q.Remove(1)
	if exp := q.ExpireBefore(t0.Add(time.Second)); len(exp) != 0 {
		t.Fatalf("removed entry expired: %v", exp)
	}
}

func TestOvertimeQueueSupersededAttempt(t *testing.T) {
	q := NewOvertimeQueue()
	t0 := time.Now()
	q.Add(7, 1, t0.Add(10*time.Millisecond))
	q.Add(7, 2, t0.Add(500*time.Millisecond)) // redistribution supersedes
	exp := q.ExpireBefore(t0.Add(20 * time.Millisecond))
	if len(exp) != 0 {
		t.Fatalf("superseded attempt expired: %v", exp)
	}
	exp = q.ExpireBefore(t0.Add(time.Second))
	if len(exp) != 1 || exp[0].Attempt != 2 {
		t.Fatalf("want attempt 2 to expire, got %v", exp)
	}
}

func TestOvertimeQueueNextDeadline(t *testing.T) {
	q := NewOvertimeQueue()
	if _, ok := q.NextDeadline(); ok {
		t.Fatal("empty queue has a deadline")
	}
	t0 := time.Now()
	q.Add(1, 1, t0.Add(time.Hour))
	q.Add(2, 1, t0.Add(time.Minute))
	dl, ok := q.NextDeadline()
	if !ok || !dl.Equal(t0.Add(time.Minute)) {
		t.Fatalf("NextDeadline = %v,%v", dl, ok)
	}
	q.Remove(2)
	dl, ok = q.NextDeadline()
	if !ok || !dl.Equal(t0.Add(time.Hour)) {
		t.Fatalf("NextDeadline after remove = %v,%v", dl, ok)
	}
}

func TestRegisterTableLifecycle(t *testing.T) {
	rt := NewRegisterTable()
	a, ok := rt.Register(5)
	if !ok || a != 1 {
		t.Fatalf("first attempt = %d, ok=%v", a, ok)
	}
	if rt.Outstanding() != 1 {
		t.Fatal("Outstanding != 1")
	}
	if !rt.Accept(5, a) {
		t.Fatal("current attempt rejected")
	}
	if rt.Accept(5, a) {
		t.Fatal("duplicate result accepted")
	}
	if rt.Finished() != 1 {
		t.Fatal("Finished != 1")
	}
}

func TestRegisterTableRedistribution(t *testing.T) {
	rt := NewRegisterTable()
	a1, _ := rt.Register(9)
	rt.Cancel(9) // timeout
	a2, ok := rt.Register(9)
	if !ok || a2 != 2 {
		t.Fatalf("second attempt = %d, ok=%v", a2, ok)
	}
	if rt.Accept(9, a1) {
		t.Fatal("stale attempt accepted")
	}
	if !rt.Accept(9, a2) {
		t.Fatal("live attempt rejected")
	}
	if rt.Attempts(9) != 2 {
		t.Fatalf("Attempts = %d", rt.Attempts(9))
	}
}

func TestRegisterTableUnregisteredRejected(t *testing.T) {
	rt := NewRegisterTable()
	if rt.Accept(1, 1) {
		t.Fatal("unregistered result accepted")
	}
}

func TestRegisterTableRegisterFinishedRefused(t *testing.T) {
	rt := NewRegisterTable()
	a, _ := rt.Register(3)
	rt.Accept(3, a)
	if _, ok := rt.Register(3); ok {
		t.Fatal("register of finished sub-task succeeded")
	}
}

// drainDispatcher runs the full DAG through a dispatcher with the given
// number of workers, returning per-worker executed vertex lists.
func drainDispatcher(t *testing.T, gr *dag.Graph, d Dispatcher, workers int) [][]int32 {
	t.Helper()
	parser := dag.NewParser(gr)
	d.Ready(parser.InitialReady()...)
	execed := make([][]int32, workers)
	var mu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				id, ok := d.Next(w)
				if !ok {
					return
				}
				execed[w] = append(execed[w], id)
				newly := parser.Complete(id)
				mu.Lock()
				completed++
				isLast := completed == gr.N
				mu.Unlock()
				d.Ready(newly...)
				if isLast {
					d.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	if !parser.Finished() {
		t.Fatalf("DAG not drained: %d vertices remain", parser.Remaining())
	}
	return execed
}

func TestDynamicDrainsDAG(t *testing.T) {
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(24), dag.Square(2)))
	d := NewDynamic()
	execed := drainDispatcher(t, gr, d, 4)
	total := 0
	for _, e := range execed {
		total += len(e)
	}
	if total != gr.N {
		t.Fatalf("executed %d of %d vertices", total, gr.N)
	}
}

func TestBlockCyclicDrainsDAG(t *testing.T) {
	for _, pat := range []dag.Pattern{dag.Wavefront{}, dag.RowColumn{}, dag.Triangular{}} {
		gr := dag.Build(pat, dag.MatrixGeometry(dag.Square(24), dag.Square(3)))
		d := NewBlockCyclic(gr, 3, 2)
		execed := drainDispatcher(t, gr, d, 3)
		total := 0
		for w, e := range execed {
			total += len(e)
			// Static ownership: every executed vertex belongs to its worker.
			for _, id := range e {
				if own := Owner(gr.Vertex(id).Pos, 2, 3); own != w {
					t.Errorf("%s: worker %d executed vertex of worker %d", pat.Name(), w, own)
				}
			}
		}
		if total != gr.N {
			t.Fatalf("%s: executed %d of %d vertices", pat.Name(), total, gr.N)
		}
	}
}

func TestBlockCyclicOwner(t *testing.T) {
	// 3 workers, runs of 2 columns: cols 0,1 -> w0; 2,3 -> w1; 4,5 -> w2; 6,7 -> w0.
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 0, 7: 0, 8: 1}
	for col, want := range cases {
		if got := Owner(dag.Pos{Row: 5, Col: col}, 2, 3); got != want {
			t.Errorf("Owner(col=%d) = %d, want %d", col, got, want)
		}
	}
}

func TestBlockCyclicIdleWhileComputable(t *testing.T) {
	// Two workers, wavefront 4x4 grid, column runs of 1:
	// worker 0 owns even columns, worker 1 odd columns. After (0,0)
	// completes, (0,1) is computable but only worker 1 may take it: with
	// worker 1 absent the vertex waits even though worker 0 idles. We
	// assert the dispatcher does NOT give (0,1) to worker 0.
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(4), dag.Square(1)))
	d := NewBlockCyclic(gr, 2, 1)
	parser := dag.NewParser(gr)
	d.Ready(parser.InitialReady()...)

	id, ok := d.Next(0) // (0,0)
	if !ok || gr.Vertex(id).Pos != (dag.Pos{Row: 0, Col: 0}) {
		t.Fatalf("worker 0 first vertex = %v", gr.Vertex(id).Pos)
	}
	d.Ready(parser.Complete(id)...) // (0,1) and (1,0) computable

	got := make(chan int32, 1)
	go func() {
		id, ok := d.Next(0)
		if ok {
			got <- id
		}
	}()
	select {
	case id := <-got:
		if gr.Vertex(id).Pos.Col%2 != 0 {
			t.Fatalf("worker 0 stole vertex %v owned by worker 1", gr.Vertex(id).Pos)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("worker 0 should immediately receive its own computable vertex (1,0)")
	}
	d.Close()
}

func TestDynamicNeverIdlesWhileComputable(t *testing.T) {
	// In the same situation, the dynamic pool gives worker 0 whatever is
	// computable.
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(4), dag.Square(1)))
	d := NewDynamic()
	parser := dag.NewParser(gr)
	d.Ready(parser.InitialReady()...)
	id, _ := d.Next(0)
	d.Ready(parser.Complete(id)...)
	// Worker 0 can take both computable vertices back-to-back.
	if _, ok := d.Next(0); !ok {
		t.Fatal("no vertex")
	}
	if _, ok := d.Next(0); !ok {
		t.Fatal("no second vertex")
	}
	if d.ReadyCount() != 0 {
		t.Fatalf("ReadyCount = %d", d.ReadyCount())
	}
	d.Close()
}

func TestDynamicCloseUnblocksWorkers(t *testing.T) {
	d := NewDynamic()
	// The onWait hook fires with d.mu held right before a caller parks;
	// Close must take d.mu to set closed, so once both tokens arrive the
	// workers are provably blocked in Wait when Close broadcasts.
	blocked := make(chan struct{}, 2)
	d.onWait = func() { blocked <- struct{}{} }
	done := make(chan bool, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			_, ok := d.Next(w)
			done <- ok
		}(w)
	}
	for k := 0; k < 2; k++ {
		select {
		case <-blocked:
		case <-time.After(time.Second):
			t.Fatal("worker never blocked in Next")
		}
	}
	d.Close()
	for k := 0; k < 2; k++ {
		select {
		case ok := <-done:
			if ok {
				t.Fatal("Next returned a vertex after Close")
			}
		case <-time.After(time.Second):
			t.Fatal("worker did not unblock")
		}
	}
}

func TestDynamicRequeue(t *testing.T) {
	d := NewDynamic()
	d.Ready(4)
	id, _ := d.Next(0)
	d.Requeue(id)
	id2, ok := d.Next(1)
	if !ok || id2 != 4 {
		t.Fatalf("requeued vertex not redelivered: %d,%v", id2, ok)
	}
	d.Close()
}

func TestBlockCyclicWorkerFinishes(t *testing.T) {
	// A worker whose queue is exhausted gets ok == false even before
	// global completion.
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(2), dag.Square(1)))
	d := NewBlockCyclic(gr, 4, 1) // workers 2,3 own nothing (grid has 2 cols)
	if _, ok := d.Next(3); ok {
		t.Fatal("worker with empty queue got work")
	}
}

func TestDepthLevelsWavefront(t *testing.T) {
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(3), dag.Square(1)))
	level := depthLevels(gr)
	g := gr.Geom
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got := level[g.ID(dag.Pos{Row: r, Col: c})]; got != int32(r+c) {
				t.Errorf("level(%d,%d) = %d, want %d", r, c, got, r+c)
			}
		}
	}
}

func TestColumnWavefrontBlockCols(t *testing.T) {
	// 10 grid columns over 3 workers: runs of 4 columns -> workers own
	// cols 0-3, 4-7, 8-9; every worker owns at most one contiguous run.
	bc := ColumnWavefrontBlockCols(10, 3)
	if bc != 4 {
		t.Fatalf("blockCols = %d, want 4", bc)
	}
	owners := make(map[int]map[int]bool)
	for c := 0; c < 10; c++ {
		w := Owner(dag.Pos{Col: c}, bc, 3)
		if owners[w] == nil {
			owners[w] = make(map[int]bool)
		}
		owners[w][c] = true
	}
	for w, cols := range owners {
		min, max := 99, -1
		for c := range cols {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min+1 != len(cols) {
			t.Fatalf("worker %d owns non-contiguous columns %v", w, cols)
		}
	}
	if ColumnWavefrontBlockCols(5, 0) != 5 {
		t.Fatal("zero workers guard")
	}
	if ColumnWavefrontBlockCols(2, 8) != 1 {
		t.Fatal("more workers than columns should give runs of 1")
	}
}
