package sched

import (
	"testing"
	"time"
)

// --- FakeClock ---

func TestFakeClockAdvanceFiresTickers(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	tk := clock.NewTicker(100 * time.Millisecond)
	defer tk.Stop()

	select {
	case <-tk.C():
		t.Fatal("ticker fired before Advance")
	default:
	}
	clock.Advance(99 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("ticker fired before its period elapsed")
	default:
	}
	clock.Advance(time.Millisecond)
	select {
	case ts := <-tk.C():
		if got := ts.Sub(time.Unix(0, 0)); got != 100*time.Millisecond {
			t.Fatalf("tick stamped at +%v, want +100ms", got)
		}
	default:
		t.Fatal("ticker did not fire at its period")
	}

	// A large Advance delivers at most one buffered tick (time.Ticker
	// drop semantics), and a stopped ticker never fires again.
	clock.Advance(time.Second)
	<-tk.C()
	tk.Stop()
	clock.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestFakeClockOrdersInterleavedTickers(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	fast := clock.NewTicker(30 * time.Millisecond)
	slow := clock.NewTicker(70 * time.Millisecond)
	defer fast.Stop()
	defer slow.Stop()

	clock.Advance(70 * time.Millisecond)
	// fast fired at 30 and 60 (second tick dropped: capacity 1); slow at 70.
	if ts := <-fast.C(); ts.Sub(time.Unix(0, 0)) != 30*time.Millisecond {
		t.Fatalf("fast tick at +%v, want +30ms", ts.Sub(time.Unix(0, 0)))
	}
	if ts := <-slow.C(); ts.Sub(time.Unix(0, 0)) != 70*time.Millisecond {
		t.Fatalf("slow tick at +%v, want +70ms", ts.Sub(time.Unix(0, 0)))
	}
	if got := clock.Now().Sub(time.Unix(0, 0)); got != 70*time.Millisecond {
		t.Fatalf("clock at +%v after Advance, want +70ms", got)
	}
}

// --- OvertimeQueue: concurrent attempts + stale-entry hygiene ---

// TestOvertimeQueueStaleAttemptNeverFires is the regression test for the
// re-dispatch staleness bug: entries whose attempt was superseded by a
// newer Add must not fire when their (earlier) deadline passes, and must
// not shadow the live entry in NextDeadline.
func TestOvertimeQueueStaleAttemptNeverFires(t *testing.T) {
	base := time.Unix(1000, 0)
	q := NewOvertimeQueue()
	q.Add(7, 1, base.Add(10*time.Millisecond))
	q.Add(7, 2, base.Add(50*time.Millisecond)) // redistribution supersedes attempt 1

	if exp := q.ExpireBefore(base.Add(20 * time.Millisecond)); len(exp) != 0 {
		t.Fatalf("superseded attempt fired: %+v", exp)
	}
	if dl, ok := q.NextDeadline(); !ok || !dl.Equal(base.Add(50*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v, %v; want live attempt's 50ms deadline", dl, ok)
	}
	exp := q.ExpireBefore(base.Add(time.Second))
	if len(exp) != 1 || exp[0].Attempt != 2 {
		t.Fatalf("expired = %+v, want exactly attempt 2", exp)
	}
}

func TestOvertimeQueueConcurrentAttempts(t *testing.T) {
	base := time.Unix(1000, 0)
	q := NewOvertimeQueue()
	q.Add(3, 1, base.Add(100*time.Millisecond))
	q.AddConcurrent(3, 2, base.Add(40*time.Millisecond)) // speculative backup

	// The backup's deadline fires first; the original stays watched.
	exp := q.ExpireBefore(base.Add(50 * time.Millisecond))
	if len(exp) != 1 || exp[0].Attempt != 2 {
		t.Fatalf("expired = %+v, want backup attempt 2", exp)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after backup expiry, want 1 (original still watched)", q.Len())
	}

	// RemoveAttempt retires one of two concurrent watches.
	q.AddConcurrent(3, 4, base.Add(200*time.Millisecond))
	q.RemoveAttempt(3, 1)
	exp = q.ExpireBefore(base.Add(time.Second))
	if len(exp) != 1 || exp[0].Attempt != 4 {
		t.Fatalf("expired = %+v, want only attempt 4", exp)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d at end, want 0", q.Len())
	}
}

// TestOvertimeQueueHeapCompaction drives heavy re-dispatch churn and
// checks the heap does not retain the superseded entries.
func TestOvertimeQueueHeapCompaction(t *testing.T) {
	base := time.Unix(1000, 0)
	q := NewOvertimeQueue()
	for i := 0; i < 10_000; i++ {
		q.Add(int32(i%8), int32(i+1), base.Add(time.Duration(i)*time.Millisecond))
	}
	q.mu.Lock()
	heapLen := len(q.h)
	q.mu.Unlock()
	if heapLen > 64 {
		t.Fatalf("heap holds %d entries for 8 live watches — stale entries not compacted", heapLen)
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d, want 8", q.Len())
	}
}

func TestOvertimeQueueClockExpire(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	q := NewOvertimeQueueClock(clock)
	q.AddIn(1, 1, 30*time.Millisecond)
	if exp := q.Expire(); len(exp) != 0 {
		t.Fatalf("expired %+v before deadline", exp)
	}
	clock.Advance(30 * time.Millisecond)
	if exp := q.Expire(); len(exp) != 1 || exp[0].ID != 1 {
		t.Fatalf("Expire after Advance = %+v, want vertex 1", exp)
	}
}

// --- RegisterTable: speculative backups ---

func TestRegisterTableBackupEitherOrderWins(t *testing.T) {
	for _, backupFirst := range []bool{false, true} {
		rt := NewRegisterTable()
		orig, ok := rt.Register(5)
		if !ok {
			t.Fatal("Register refused fresh vertex")
		}
		backup, ok := rt.RegisterBackup(5)
		if !ok {
			t.Fatal("RegisterBackup refused vertex with live attempt")
		}
		if backup == orig {
			t.Fatal("backup attempt reused the original stamp")
		}
		if rt.LiveAttempts(5) != 2 {
			t.Fatalf("LiveAttempts = %d, want 2", rt.LiveAttempts(5))
		}
		first, second := orig, backup
		if backupFirst {
			first, second = backup, first
		}
		if !rt.Accept(5, first) {
			t.Fatalf("winner (attempt %d) rejected", first)
		}
		if rt.Accept(5, second) {
			t.Fatalf("loser (attempt %d) accepted — double apply", second)
		}
		if rt.Accept(5, first) {
			t.Fatal("duplicate of the winner accepted — double apply")
		}
		if rt.Finished() != 1 || rt.Outstanding() != 0 {
			t.Fatalf("finished=%d outstanding=%d, want 1/0", rt.Finished(), rt.Outstanding())
		}
	}
}

func TestRegisterTableBackupRefusals(t *testing.T) {
	rt := NewRegisterTable()
	if _, ok := rt.RegisterBackup(9); ok {
		t.Fatal("backup granted for a vertex with no live attempt")
	}
	a, _ := rt.Register(9)
	rt.Accept(9, a)
	if _, ok := rt.RegisterBackup(9); ok {
		t.Fatal("backup granted for a finished vertex")
	}
}

func TestRegisterTableCancelAttempt(t *testing.T) {
	rt := NewRegisterTable()
	orig, _ := rt.Register(2)
	backup, _ := rt.RegisterBackup(2)

	if rem := rt.CancelAttempt(2, backup); rem != 1 {
		t.Fatalf("remaining after cancelling backup = %d, want 1", rem)
	}
	if rt.Accept(2, backup) {
		t.Fatal("cancelled backup accepted")
	}
	if !rt.Accept(2, orig) {
		t.Fatal("surviving original rejected")
	}

	rt2 := NewRegisterTable()
	a, _ := rt2.Register(3)
	if rem := rt2.CancelAttempt(3, a); rem != 0 {
		t.Fatalf("remaining after cancelling sole attempt = %d, want 0", rem)
	}
	if rt2.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", rt2.Outstanding())
	}
}

// --- LeaseTable ---

func TestLeaseTableConcurrentAttempts(t *testing.T) {
	base := time.Unix(0, 0)
	lt := NewLeaseTable()
	lt.Grant(1, 10, 1, base)
	lt.Add(1, 11, 2, base.Add(time.Millisecond))

	if n := len(lt.Holders(1)); n != 2 {
		t.Fatalf("Holders = %d, want 2", n)
	}
	if lt.Load(10) != 1 || lt.Load(11) != 1 {
		t.Fatalf("loads = %d/%d, want 1/1", lt.Load(10), lt.Load(11))
	}
	// Releasing one attempt keeps the other.
	if _, ok := lt.ReleaseAttempt(1, 2); !ok {
		t.Fatal("ReleaseAttempt missed a live lease")
	}
	if lt.Load(11) != 0 {
		t.Fatalf("worker 11 still loaded after release: %d", lt.Load(11))
	}
	// Release retires everything.
	lt.Add(1, 11, 3, base)
	if got := len(lt.Release(1)); got != 2 {
		t.Fatalf("Release returned %d leases, want 2", got)
	}
	if lt.Len() != 0 {
		t.Fatalf("Len = %d, want 0", lt.Len())
	}
}

func TestLeaseTableGrantSupersedes(t *testing.T) {
	base := time.Unix(0, 0)
	lt := NewLeaseTable()
	lt.Grant(4, 1, 1, base)
	lt.Add(4, 2, 2, base)
	lt.Grant(4, 3, 3, base) // redistribution replaces both

	hs := lt.Holders(4)
	if len(hs) != 1 || hs[0].Worker != 3 || hs[0].Attempt != 3 {
		t.Fatalf("Holders after Grant = %+v, want single worker-3 lease", hs)
	}
	if lt.Load(1) != 0 || lt.Load(2) != 0 {
		t.Fatal("superseded workers still indexed")
	}
}

func TestLeaseTableRevokeWorkerLeavesPeers(t *testing.T) {
	base := time.Unix(0, 0)
	lt := NewLeaseTable()
	lt.Grant(1, 10, 1, base)
	lt.Add(1, 11, 2, base) // backup on another worker
	lt.Grant(2, 10, 3, base)

	revoked := lt.RevokeWorker(10)
	if len(revoked) != 2 {
		t.Fatalf("revoked %d leases, want 2", len(revoked))
	}
	hs := lt.Holders(1)
	if len(hs) != 1 || hs[0].Worker != 11 {
		t.Fatalf("vertex 1 holders after revoke = %+v, want worker 11's backup", hs)
	}
	if len(lt.Holders(2)) != 0 {
		t.Fatal("vertex 2 still leased after its only holder was revoked")
	}
}

func TestLeaseTableStealOrdering(t *testing.T) {
	base := time.Unix(0, 0)
	lt := NewLeaseTable()
	for v := int32(1); v <= 4; v++ {
		lt.Grant(v, 7, v, base.Add(time.Duration(v)))
	}
	ls := lt.WorkerLeases(7)
	if len(ls) != 4 {
		t.Fatalf("WorkerLeases = %d, want 4", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].Seq <= ls[i-1].Seq {
			t.Fatalf("WorkerLeases not in grant order: %+v", ls)
		}
	}
	old := lt.OlderThan(base.Add(3))
	if len(old) != 2 || !old[0].Granted.Before(old[1].Granted) {
		t.Fatalf("OlderThan = %+v, want the two oldest leases oldest-first", old)
	}
}

// --- RuntimeProfile ---

func TestRuntimeProfileQuantile(t *testing.T) {
	p := NewRuntimeProfile(100)
	if _, ok := p.Quantile(0.95); ok {
		t.Fatal("empty profile reported a quantile")
	}
	for i := 1; i <= 100; i++ {
		p.Observe(time.Duration(i) * time.Millisecond)
	}
	if got, _ := p.Quantile(0); got != time.Millisecond {
		t.Fatalf("q0 = %v, want 1ms", got)
	}
	if got, _ := p.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("q1 = %v, want 100ms", got)
	}
	if got, _ := p.Quantile(0.5); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("median = %v, want ~50ms", got)
	}
}

func TestRuntimeProfileRingEviction(t *testing.T) {
	p := NewRuntimeProfile(8)
	for i := 0; i < 8; i++ {
		p.Observe(time.Hour) // old, slow phase
	}
	for i := 0; i < 8; i++ {
		p.Observe(time.Millisecond) // new, fast phase overwrites the ring
	}
	if got, _ := p.Quantile(1); got != time.Millisecond {
		t.Fatalf("max after eviction = %v, want 1ms (old phase forgotten)", got)
	}
	if p.Samples() != 8 {
		t.Fatalf("Samples = %d, want ring capacity 8", p.Samples())
	}
}

func TestRuntimeProfileThreshold(t *testing.T) {
	p := NewRuntimeProfile(64)
	if _, ok := p.Threshold(0.95, 2, time.Millisecond, 8); ok {
		t.Fatal("cold profile produced a threshold")
	}
	for i := 0; i < 16; i++ {
		p.Observe(10 * time.Millisecond)
	}
	th, ok := p.Threshold(0.95, 2, time.Millisecond, 8)
	if !ok || th != 20*time.Millisecond {
		t.Fatalf("threshold = %v, %v; want 20ms", th, ok)
	}
	th, _ = p.Threshold(0.95, 2, time.Second, 8)
	if th != time.Second {
		t.Fatalf("floored threshold = %v, want 1s", th)
	}
}

// Quantile edge cases: every q of an empty ring refuses, every q of a
// single sample or of identical samples is that sample, out-of-range q
// clamps instead of panicking, and a negative observation clamps to 0.
func TestRuntimeProfileQuantileEdges(t *testing.T) {
	empty := NewRuntimeProfile(4)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if d, ok := empty.Quantile(q); ok || d != 0 {
			t.Fatalf("empty ring q=%v = (%v, %v), want (0, false)", q, d, ok)
		}
	}

	single := NewRuntimeProfile(4)
	single.Observe(7 * time.Millisecond)
	if single.Samples() != 1 {
		t.Fatalf("Samples after one Observe = %d, want 1", single.Samples())
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if d, ok := single.Quantile(q); !ok || d != 7*time.Millisecond {
			t.Fatalf("single sample q=%v = (%v, %v), want (7ms, true)", q, d, ok)
		}
	}

	same := NewRuntimeProfile(8)
	for i := 0; i < 20; i++ { // wraps the ring with one value
		same.Observe(3 * time.Millisecond)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if d, ok := same.Quantile(q); !ok || d != 3*time.Millisecond {
			t.Fatalf("identical samples q=%v = (%v, %v), want (3ms, true)", q, d, ok)
		}
	}

	neg := NewRuntimeProfile(2)
	neg.Observe(-time.Second)
	if d, ok := neg.Quantile(1); !ok || d != 0 {
		t.Fatalf("negative observation q=1 = (%v, %v), want (0, true)", d, ok)
	}
}

// Threshold edge cases around the minSamples gate and the floor: the
// gate is >=, a zero floor passes the raw multiplied quantile through,
// and identical samples give an exactly scaled threshold at any q.
func TestRuntimeProfileThresholdEdges(t *testing.T) {
	p := NewRuntimeProfile(16)
	for i := 0; i < 3; i++ {
		p.Observe(4 * time.Millisecond)
	}
	if _, ok := p.Threshold(0.5, 2, 0, 4); ok {
		t.Fatal("threshold below minSamples must refuse")
	}
	p.Observe(4 * time.Millisecond)
	th, ok := p.Threshold(0.5, 2, 0, 4) // exactly at the gate
	if !ok || th != 8*time.Millisecond {
		t.Fatalf("threshold at minSamples = (%v, %v), want (8ms, true)", th, ok)
	}
	if th, _ := p.Threshold(0, 1, 0, 1); th != 4*time.Millisecond {
		t.Fatalf("q=0 multiplier=1 threshold = %v, want the sample itself", th)
	}
	if _, ok := NewRuntimeProfile(4).Threshold(0.95, 2, time.Hour, 0); ok {
		t.Fatal("empty profile with minSamples=0 must still refuse (no quantile)")
	}
}
