package sched

import (
	"testing"
	"time"

	"repro/internal/dag"
)

// The wall clock is the production time source; its ticker must deliver
// real ticks and stop cleanly.
func TestWallClockTicker(t *testing.T) {
	before := time.Now()
	now := Wall.Now()
	if now.Before(before.Add(-time.Second)) || now.After(before.Add(time.Minute)) {
		t.Fatalf("Wall.Now() = %v, not near time.Now() = %v", now, before)
	}
	tk := Wall.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall ticker delivered no tick within 5s")
	}
	tk.Stop()
}

func TestFakeClockRejectsNonPositivePeriod(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	c.NewTicker(0)
}

func TestFakeClockBlockUntilTickers(t *testing.T) {
	c := NewFakeClock(time.Unix(0, 0))
	c.BlockUntilTickers(0) // trivially satisfied, must not block
	done := make(chan struct{})
	go func() {
		c.BlockUntilTickers(1)
		close(done)
	}()
	tk := c.NewTicker(time.Second)
	defer tk.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BlockUntilTickers(1) did not observe the new ticker")
	}
}

func TestDynamicNextBatchClampsMax(t *testing.T) {
	d := NewDynamic()
	d.Ready(1, 2)
	ids, ok := d.NextBatch(0, 0) // max < 1 treated as 1
	if !ok || len(ids) != 1 {
		t.Fatalf("NextBatch(0, 0) = %v, %v; want one vertex", ids, ok)
	}
	d.Close()
	// Drain the remaining vertex, then the closed dispatcher must return
	// ok == false.
	if ids, ok := d.NextBatch(0, 4); !ok || len(ids) != 1 {
		t.Fatalf("NextBatch after Close with stock = %v, %v; want the leftover vertex", ids, ok)
	}
	if ids, ok := d.NextBatch(0, 4); ok || ids != nil {
		t.Fatalf("NextBatch on drained closed dispatcher = %v, %v; want nil, false", ids, ok)
	}
}

func TestColumnWavefrontBlockColsEdges(t *testing.T) {
	if got := ColumnWavefrontBlockCols(8, 0); got != 8 {
		t.Fatalf("workers < 1: got %d, want gridCols (8)", got)
	}
	if got := ColumnWavefrontBlockCols(0, 3); got != 1 {
		t.Fatalf("gridCols 0: got %d, want clamp to 1", got)
	}
	if got := ColumnWavefrontBlockCols(7, 3); got != 3 {
		t.Fatalf("ceil(7/3): got %d, want 3", got)
	}
}

func TestNewBlockCyclicEdges(t *testing.T) {
	gr := dag.Build(dag.Wavefront{}, dag.MatrixGeometry(dag.Square(4), dag.Square(1)))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewBlockCyclic with 0 workers did not panic")
			}
		}()
		NewBlockCyclic(gr, 0, 1)
	}()
	// blockCols < 1 is clamped to 1: columns then rotate one by one over
	// the workers, so column c belongs to worker c % 2.
	b := NewBlockCyclic(gr, 2, 0)
	for _, id := range gr.Existing() {
		p := gr.Vertex(id).Pos
		want := p.Col % 2
		found := false
		for _, q := range b.queues[want] {
			if q == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("vertex %d at %v not in queue of worker %d", id, p, want)
		}
	}
}

func TestBlockCyclicRequeueAndReadyCount(t *testing.T) {
	geom := dag.MatrixGeometry(dag.Square(4), dag.Square(1))
	gr := dag.Build(dag.Wavefront{}, geom)
	b := NewBlockCyclic(gr, 2, 2)
	if got := b.ReadyCount(); got != 0 {
		t.Fatalf("fresh ReadyCount = %d, want 0", got)
	}
	root := geom.ID(dag.Pos{Row: 0, Col: 0})
	b.Ready(root)
	if got := b.ReadyCount(); got != 1 {
		t.Fatalf("ReadyCount = %d, want 1", got)
	}
	id, ok := b.Next(0)
	if !ok || id != root {
		t.Fatalf("Next(0) = %d, %v; want root %d", id, ok, root)
	}
	if got := b.ReadyCount(); got != 0 {
		t.Fatalf("ReadyCount after Next = %d, want 0", got)
	}
	// A timed-out vertex goes back ready at the head of queue 0.
	b.Requeue(root)
	if got := b.ReadyCount(); got != 1 {
		t.Fatalf("ReadyCount after Requeue = %d, want 1", got)
	}
	if id, ok := b.Next(0); !ok || id != root {
		t.Fatalf("Next after Requeue = %d, %v; want root %d at queue head", id, ok, root)
	}
}

func TestBlockCyclicNextBatchFencesOnNonReadyHead(t *testing.T) {
	geom := dag.MatrixGeometry(dag.Square(4), dag.Square(1))
	gr := dag.Build(dag.Wavefront{}, geom)
	// One worker owns everything; wavefront order puts (0,0) first, then
	// (0,1) and (1,0) in id order.
	b := NewBlockCyclic(gr, 1, 4)
	v00 := geom.ID(dag.Pos{Row: 0, Col: 0})
	v01 := geom.ID(dag.Pos{Row: 0, Col: 1})
	v10 := geom.ID(dag.Pos{Row: 1, Col: 0})
	// Mark the head and its level-1 successors ready, but leave the second
	// level-1 vertex out: the batch must stop at the fence even though a
	// later queue entry is ready.
	b.Ready(v00, v01)
	ids, ok := b.NextBatch(0, 8)
	if !ok || len(ids) != 2 || ids[0] != v00 || ids[1] != v01 {
		t.Fatalf("NextBatch = %v, %v; want ready prefix [%d %d]", ids, ok, v00, v01)
	}
	b.Ready(v10)
	if ids, ok := b.NextBatch(0, 8); !ok || len(ids) != 1 || ids[0] != v10 {
		t.Fatalf("NextBatch after fence lifted = %v, %v; want [%d]", ids, ok, v10)
	}
	b.Close()
	if ids, ok := b.NextBatch(0, 8); ok || ids != nil {
		t.Fatalf("NextBatch on closed dispatcher = %v, %v; want nil, false", ids, ok)
	}
	if id, ok := b.Next(0); ok {
		t.Fatalf("Next on closed dispatcher = %d, %v; want false", id, ok)
	}
}

func TestLeaseTableLookupsAndLoads(t *testing.T) {
	lt := NewLeaseTable()
	now := time.Unix(0, 0)
	if ls := lt.Release(7); ls != nil {
		t.Fatalf("Release on empty table = %v, want nil", ls)
	}
	if _, ok := lt.ReleaseAttempt(7, 1); ok {
		t.Fatal("ReleaseAttempt on empty table reported a lease")
	}
	if _, ok := lt.Find(7, 1); ok {
		t.Fatal("Find on empty table reported a lease")
	}
	lt.Grant(7, 1, 1, now)
	lt.Add(7, 2, 2, now) // speculative backup on another worker
	lt.Grant(8, 1, 3, now)
	if l, ok := lt.Find(7, 2); !ok || l.Worker != 2 {
		t.Fatalf("Find(7, 2) = %+v, %v; want backup lease on worker 2", l, ok)
	}
	if _, ok := lt.Find(7, 9); ok {
		t.Fatal("Find with dead attempt reported a lease")
	}
	if got := lt.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	loads := lt.Loads()
	if loads[1] != 2 || loads[2] != 1 || len(loads) != 2 {
		t.Fatalf("Loads = %v, want worker 1 -> 2, worker 2 -> 1", loads)
	}
	// Dropping the backup leaves the original watched and the empty-worker
	// index entry pruned.
	if l, ok := lt.ReleaseAttempt(7, 2); !ok || l.Attempt != 2 {
		t.Fatalf("ReleaseAttempt(7, 2) = %+v, %v", l, ok)
	}
	if loads := lt.Loads(); len(loads) != 1 || loads[1] != 2 {
		t.Fatalf("Loads after backup release = %v, want only worker 1 -> 2", loads)
	}
	// Releasing the last attempt on a vertex deletes the vertex entry.
	if l, ok := lt.ReleaseAttempt(7, 1); !ok || l.Worker != 1 {
		t.Fatalf("ReleaseAttempt(7, 1) = %+v, %v", l, ok)
	}
	if hs := lt.Holders(7); hs != nil {
		t.Fatalf("Holders(7) after full release = %v, want nil", hs)
	}
	if got := lt.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

// A worker holding two attempts on the same vertex (it re-drew its own
// timed-out vertex) keeps its worker-index entry until the last one goes.
func TestLeaseTableUnindexKeepsSharedWorkerEntry(t *testing.T) {
	lt := NewLeaseTable()
	now := time.Unix(0, 0)
	lt.Add(5, 1, 1, now)
	lt.Add(5, 1, 2, now)
	if _, ok := lt.ReleaseAttempt(5, 1); !ok {
		t.Fatal("ReleaseAttempt(5, 1) missed")
	}
	if got := lt.Load(1); got != 1 {
		t.Fatalf("Load(1) = %d, want 1 (second attempt still live)", got)
	}
	if _, ok := lt.ReleaseAttempt(5, 2); !ok {
		t.Fatal("ReleaseAttempt(5, 2) missed")
	}
	if got := lt.Load(1); got != 0 {
		t.Fatalf("Load(1) = %d, want 0 after both attempts released", got)
	}
}

func TestOvertimeAddConcurrentAndRemoveAttempt(t *testing.T) {
	q := NewOvertimeQueue()
	deadline := time.Unix(100, 0)
	// AddConcurrent on a fresh vertex creates the watch set; on a watched
	// vertex it extends it.
	q.AddConcurrent(3, 1, deadline)
	q.AddConcurrent(3, 2, deadline.Add(time.Second))
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1 vertex watched", got)
	}
	// Removing an unwatched attempt or vertex is a no-op.
	q.RemoveAttempt(3, 9)
	q.RemoveAttempt(99, 1)
	q.RemoveAttempt(3, 1)
	if got := q.Len(); got != 1 {
		t.Fatalf("Len after removing one of two attempts = %d, want 1", got)
	}
	exp := q.ExpireBefore(deadline.Add(time.Minute))
	if len(exp) != 1 || exp[0].Attempt != 2 {
		t.Fatalf("ExpireBefore = %v, want only the surviving attempt 2", exp)
	}
	// Removing the last attempt drops the vertex entirely.
	q.AddConcurrent(4, 1, deadline)
	q.RemoveAttempt(4, 1)
	if got := q.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestRuntimeProfileEdges(t *testing.T) {
	p := NewRuntimeProfile(0)
	if got := len(p.buf); got != DefaultProfileWindow {
		t.Fatalf("default window = %d, want %d", got, DefaultProfileWindow)
	}
	if _, ok := p.Quantile(0.5); ok {
		t.Fatal("Quantile on empty profile reported a value")
	}
	// minSamples 0 on an empty profile passes the sample gate but finds no
	// quantile.
	if _, ok := p.Threshold(0.95, 2, 0, 0); ok {
		t.Fatal("Threshold on empty profile reported a value")
	}
	p.Observe(-time.Second) // clamped to 0
	p.Observe(10 * time.Millisecond)
	if d, ok := p.Quantile(-1); !ok || d != 0 {
		t.Fatalf("Quantile(-1) = %v, %v; want clamped minimum 0", d, ok)
	}
	if d, ok := p.Quantile(2); !ok || d != 10*time.Millisecond {
		t.Fatalf("Quantile(2) = %v, %v; want clamped maximum", d, ok)
	}
	if _, ok := p.Threshold(0.95, 2, 0, 8); ok {
		t.Fatal("Threshold below minSamples reported a value")
	}
	if d, ok := p.Threshold(1, 2, time.Minute, 2); !ok || d != time.Minute {
		t.Fatalf("Threshold floor = %v, %v; want the 1m floor", d, ok)
	}
	// A small ring wraps: only the window latest observations survive.
	small := NewRuntimeProfile(2)
	small.Observe(time.Second)
	small.Observe(2 * time.Second)
	small.Observe(3 * time.Second)
	if got := small.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want window size 2", got)
	}
	if d, ok := small.Quantile(1); !ok || d != 3*time.Second {
		t.Fatalf("Quantile(1) after wrap = %v, %v; want newest 3s", d, ok)
	}
}
