package sched

import (
	"container/heap"
	"sync"
	"time"
)

// OvertimeEntry records one executing sub-task attempt: the vertex id, the
// dispatch attempt number and the deadline by which a result must arrive.
type OvertimeEntry struct {
	ID       int32
	Attempt  int32
	Deadline time.Time
}

// OvertimeQueue is the timeout-detection structure of the worker pools:
// when a computable sub-task starts executing, its id and start time enter
// the queue; the fault-tolerance thread periodically expires entries whose
// deadline has passed (§V of the paper). Removal on completion is lazy: a
// heap entry whose (id, attempt) is no longer live — superseded by a
// redistribution, retired by Accept, or cancelled individually — is
// discarded when it surfaces, never expired. The heap is compacted when
// stale entries dominate so fine partitions with frequent re-dispatch do
// not grow it without bound.
type OvertimeQueue struct {
	mu       sync.Mutex
	clock    Clock
	h        overtimeHeap
	live     map[int32]map[int32]struct{} // vertex id -> watched attempts
	liveSize int                          // total watched attempts, for compaction
}

// NewOvertimeQueue creates an empty queue on the wall clock.
func NewOvertimeQueue() *OvertimeQueue { return NewOvertimeQueueClock(Wall) }

// NewOvertimeQueueClock creates an empty queue reading time from clock.
func NewOvertimeQueueClock(clock Clock) *OvertimeQueue {
	return &OvertimeQueue{clock: clock, live: make(map[int32]map[int32]struct{})}
}

// Add starts watching an attempt of vertex id with the given deadline. A
// later Add for the same vertex (a redistribution) supersedes every
// earlier watch.
func (q *OvertimeQueue) Add(id, attempt int32, deadline time.Time) {
	q.mu.Lock()
	q.liveSize -= len(q.live[id])
	q.live[id] = map[int32]struct{}{attempt: {}}
	q.liveSize++
	q.push(OvertimeEntry{ID: id, Attempt: attempt, Deadline: deadline})
	q.mu.Unlock()
}

// AddConcurrent starts watching an additional attempt of vertex id
// without superseding the existing watch — the speculative-backup path,
// where the original and the backup each keep their own deadline.
func (q *OvertimeQueue) AddConcurrent(id, attempt int32, deadline time.Time) {
	q.mu.Lock()
	set := q.live[id]
	if set == nil {
		set = make(map[int32]struct{})
		q.live[id] = set
	}
	set[attempt] = struct{}{}
	q.liveSize++
	q.push(OvertimeEntry{ID: id, Attempt: attempt, Deadline: deadline})
	q.mu.Unlock()
}

// AddIn is Add with a deadline of now+d on the queue's clock.
func (q *OvertimeQueue) AddIn(id, attempt int32, d time.Duration) {
	q.Add(id, attempt, q.clock.Now().Add(d))
}

// Remove stops watching vertex id entirely (its result arrived).
func (q *OvertimeQueue) Remove(id int32) {
	q.mu.Lock()
	q.liveSize -= len(q.live[id])
	delete(q.live, id)
	q.mu.Unlock()
}

// RemoveAttempt stops watching one attempt of vertex id, leaving any
// concurrent attempts watched.
func (q *OvertimeQueue) RemoveAttempt(id, attempt int32) {
	q.mu.Lock()
	if set, ok := q.live[id]; ok {
		if _, watched := set[attempt]; watched {
			delete(set, attempt)
			q.liveSize--
			if len(set) == 0 {
				delete(q.live, id)
			}
		}
	}
	q.mu.Unlock()
}

// Expire removes and returns every watched entry due at the queue's
// clock's current time.
func (q *OvertimeQueue) Expire() []OvertimeEntry {
	return q.ExpireBefore(q.clock.Now())
}

// ExpireBefore removes and returns every watched entry whose deadline is
// not after now. Entries superseded by a newer attempt or removed on
// completion are discarded silently.
func (q *OvertimeQueue) ExpireBefore(now time.Time) []OvertimeEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []OvertimeEntry
	for q.h.Len() > 0 {
		top := q.h[0]
		if top.Deadline.After(now) {
			break
		}
		heap.Pop(&q.h)
		if q.watched(top) {
			set := q.live[top.ID]
			delete(set, top.Attempt)
			q.liveSize--
			if len(set) == 0 {
				delete(q.live, top.ID)
			}
			expired = append(expired, top)
		}
	}
	return expired
}

// Len returns the number of vertices currently watched.
func (q *OvertimeQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.live)
}

// NextDeadline returns the earliest live deadline and true, or false when
// nothing is watched.
func (q *OvertimeQueue) NextDeadline() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.h.Len() > 0 {
		top := q.h[0]
		if q.watched(top) {
			return top.Deadline, true
		}
		heap.Pop(&q.h) // stale entry
	}
	return time.Time{}, false
}

// watched reports whether e still corresponds to a live attempt. Callers
// hold q.mu.
func (q *OvertimeQueue) watched(e OvertimeEntry) bool {
	_, ok := q.live[e.ID][e.Attempt]
	return ok
}

// push inserts an entry and compacts the heap when stale entries (watches
// already superseded or completed) outnumber live ones 4:1 — the lazy
// removals above otherwise let re-dispatch churn grow the heap without
// bound. Callers hold q.mu.
func (q *OvertimeQueue) push(e OvertimeEntry) {
	heap.Push(&q.h, e)
	if len(q.h) >= 64 && len(q.h) > 4*q.liveSize {
		kept := q.h[:0]
		for _, ent := range q.h {
			if q.watched(ent) {
				kept = append(kept, ent)
			}
		}
		q.h = kept
		heap.Init(&q.h)
	}
}

type overtimeHeap []OvertimeEntry

func (h overtimeHeap) Len() int            { return len(h) }
func (h overtimeHeap) Less(i, j int) bool  { return h[i].Deadline.Before(h[j].Deadline) }
func (h overtimeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *overtimeHeap) Push(x interface{}) { *h = append(*h, x.(OvertimeEntry)) }
func (h *overtimeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
