package sched

import (
	"container/heap"
	"sync"
	"time"
)

// OvertimeEntry records one executing sub-task attempt: the vertex id, the
// dispatch attempt number and the deadline by which a result must arrive.
type OvertimeEntry struct {
	ID       int32
	Attempt  int32
	Deadline time.Time
}

// OvertimeQueue is the timeout-detection structure of the worker pools:
// when a computable sub-task starts executing, its id and start time enter
// the queue; the fault-tolerance thread periodically expires entries whose
// deadline has passed (§V of the paper). Removal on completion is lazy.
type OvertimeQueue struct {
	mu   sync.Mutex
	h    overtimeHeap
	live map[int32]int32 // vertex id -> attempt currently being watched
}

// NewOvertimeQueue creates an empty queue.
func NewOvertimeQueue() *OvertimeQueue {
	return &OvertimeQueue{live: make(map[int32]int32)}
}

// Add starts watching an attempt of vertex id with the given deadline. A
// later Add for the same vertex (a redistribution) supersedes the earlier
// watch.
func (q *OvertimeQueue) Add(id, attempt int32, deadline time.Time) {
	q.mu.Lock()
	q.live[id] = attempt
	heap.Push(&q.h, OvertimeEntry{ID: id, Attempt: attempt, Deadline: deadline})
	q.mu.Unlock()
}

// Remove stops watching vertex id (its result arrived).
func (q *OvertimeQueue) Remove(id int32) {
	q.mu.Lock()
	delete(q.live, id)
	q.mu.Unlock()
}

// ExpireBefore removes and returns every watched entry whose deadline is
// not after now. Entries superseded by a newer attempt or removed on
// completion are discarded silently.
func (q *OvertimeQueue) ExpireBefore(now time.Time) []OvertimeEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	var expired []OvertimeEntry
	for q.h.Len() > 0 {
		top := q.h[0]
		if top.Deadline.After(now) {
			break
		}
		heap.Pop(&q.h)
		if att, ok := q.live[top.ID]; ok && att == top.Attempt {
			delete(q.live, top.ID)
			expired = append(expired, top)
		}
	}
	return expired
}

// Len returns the number of vertices currently watched.
func (q *OvertimeQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.live)
}

// NextDeadline returns the earliest live deadline and true, or false when
// nothing is watched.
func (q *OvertimeQueue) NextDeadline() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.h.Len() > 0 {
		top := q.h[0]
		if att, ok := q.live[top.ID]; ok && att == top.Attempt {
			return top.Deadline, true
		}
		heap.Pop(&q.h) // stale entry
	}
	return time.Time{}, false
}

type overtimeHeap []OvertimeEntry

func (h overtimeHeap) Len() int            { return len(h) }
func (h overtimeHeap) Less(i, j int) bool  { return h[i].Deadline.Before(h[j].Deadline) }
func (h overtimeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *overtimeHeap) Push(x interface{}) { *h = append(*h, x.(OvertimeEntry)) }
func (h *overtimeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
