package sched

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the time source of the deadline machinery (overtime
// queue, lease table, membership registry, speculation thresholds) so the
// timeout paths can be driven deterministically in tests. Production code
// uses Wall; tests inject a FakeClock and call Advance instead of
// sleeping.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTicker returns a ticker firing every d. Callers must Stop it.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the clock-agnostic subset of time.Ticker used by the periodic
// control loops.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Wall is the production clock: real time.Now and real time.Ticker.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{time.NewTicker(d)}
}

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }

// FakeClock is a manually advanced Clock for deterministic timeout tests.
// Advance moves the current time forward and fires every ticker whose
// next tick falls within the advanced window, delivering one tick per
// elapsed period (capacity permitting, like time.Ticker a slow receiver
// drops ticks rather than buffering them).
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*fakeTicker
}

// NewFakeClock returns a FakeClock frozen at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTicker returns a ticker driven by Advance.
func (c *FakeClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("sched: non-positive FakeClock ticker period")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTicker{
		clock:  c,
		period: d,
		next:   c.now.Add(d),
		ch:     make(chan time.Time, 1),
	}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d and synchronously delivers any due
// ticks. It never blocks: a ticker whose channel is full drops the tick,
// matching time.Ticker semantics.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	// Deliver ticks in global time order so interleaved tickers observe a
	// consistent schedule.
	for {
		var due *fakeTicker
		for _, t := range c.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if due == nil || t.next.Before(due.next) {
				due = t
			}
		}
		if due == nil {
			break
		}
		c.now = due.next
		due.next = due.next.Add(due.period)
		select {
		case due.ch <- c.now:
		default:
		}
	}
	c.now = target
	c.mu.Unlock()
}

// BlockUntilTickers waits until n tickers have been created on this clock
// — used by tests to sequence Advance after the code under test has armed
// its control loop. It polls rather than blocks so a missing ticker fails
// fast via the caller's timeout.
func (c *FakeClock) BlockUntilTickers(n int) {
	for {
		c.mu.Lock()
		live := 0
		for _, t := range c.tickers {
			if !t.stopped {
				live++
			}
		}
		c.mu.Unlock()
		if live >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

type fakeTicker struct {
	clock   *FakeClock
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.ch }

func (t *fakeTicker) Stop() {
	t.clock.mu.Lock()
	t.stopped = true
	ts := t.clock.tickers
	sort.SliceStable(ts, func(i, j int) bool { return !ts[i].stopped && ts[j].stopped })
	for len(ts) > 0 && ts[len(ts)-1].stopped {
		ts = ts[:len(ts)-1]
	}
	t.clock.tickers = ts
	t.clock.mu.Unlock()
}
