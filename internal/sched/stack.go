// Package sched implements the worker-pool components of EasyHPS (§V.A of
// the paper): the computable sub-task stack, the finished sub-task stack,
// the overtime queue used for timeout-based fault detection, and the
// sub-task register table that makes result acceptance idempotent. It also
// provides the two task-allocation policies compared in the evaluation:
// the dynamic worker pool of EasyHPS and the static block-cyclic wavefront
// (BCW) assignment.
package sched

import "sync"

// Stack is a synchronized LIFO of DAG vertex ids. The paper implements
// both the computable sub-task stack and the finished sub-task stack as
// linked lists used LIFO; a slice-backed stack has identical semantics.
type Stack struct {
	mu    sync.Mutex
	items []int32
}

// Push adds ids to the top of the stack.
func (s *Stack) Push(ids ...int32) {
	s.mu.Lock()
	s.items = append(s.items, ids...)
	s.mu.Unlock()
}

// TryPop removes and returns the top id; ok is false when the stack is
// empty.
func (s *Stack) TryPop() (id int32, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) == 0 {
		return 0, false
	}
	id = s.items[len(s.items)-1]
	s.items = s.items[:len(s.items)-1]
	return id, true
}

// Drain removes and returns all ids, most recently pushed first.
func (s *Stack) Drain() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int32, len(s.items))
	for k := range s.items {
		out[k] = s.items[len(s.items)-1-k]
	}
	s.items = s.items[:0]
	return out
}

// Len returns the number of ids on the stack.
func (s *Stack) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
