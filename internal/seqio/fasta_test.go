package seqio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `>seq1 first test sequence
ACGTACGT
ACGT
>seq2
uuuagc

>seq3 with  spaced   description
ACGT ACGT
`

func TestReadBasic(t *testing.T) {
	recs, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Desc != "first test sequence" {
		t.Fatalf("rec0 header = %q/%q", recs[0].ID, recs[0].Desc)
	}
	if string(recs[0].Seq) != "ACGTACGTACGT" {
		t.Fatalf("rec0 seq = %s", recs[0].Seq)
	}
	if string(recs[1].Seq) != "UUUAGC" {
		t.Fatalf("lowercase not uppercased: %s", recs[1].Seq)
	}
	if string(recs[2].Seq) != "ACGTACGT" {
		t.Fatalf("inline spaces not stripped: %s", recs[2].Seq)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := Read(strings.NewReader(">\nACGT\n")); err == nil {
		t.Error("empty header accepted")
	}
	if _, err := Read(strings.NewReader(">x\nAC1GT\n")); err == nil {
		t.Error("digit in sequence accepted")
	}
}

func TestReadEmpty(t *testing.T) {
	recs, err := Read(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("Read(empty) = %v, %v", recs, err)
	}
}

func TestWriteWrapsLines(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, []Record{{ID: "x", Seq: bytes.Repeat([]byte("A"), 130)}}, 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 60 + 60 + 10
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if len(lines[1]) != 60 || len(lines[3]) != 10 {
		t.Fatalf("wrap widths wrong: %d/%d", len(lines[1]), len(lines[3]))
	}
}

func TestWriteRejectsAnonymous(t *testing.T) {
	if err := Write(&bytes.Buffer{}, []Record{{Seq: []byte("ACGT")}}, 0); err == nil {
		t.Error("record without ID accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	letters := []byte("ACDEFGHIKLMNPQRSTVWY")
	f := func(raw []byte, w uint8) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = letters[int(b)%len(letters)]
		}
		recs := []Record{{ID: "r1", Desc: "d", Seq: seq}, {ID: "r2", Seq: seq}}
		var buf bytes.Buffer
		if err := Write(&buf, recs, int(w%80)); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 2 {
			return false
		}
		return bytes.Equal(got[0].Seq, seq) && got[0].ID == "r1" && got[0].Desc == "d" &&
			bytes.Equal(got[1].Seq, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.fa")
	recs := []Record{{ID: "chr1", Desc: "toy", Seq: []byte("ACGTACGTAC")}}
	if err := WriteFile(path, recs, 4); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Seq) != "ACGTACGTAC" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.fa")); err == nil {
		t.Error("missing file read succeeded")
	}
}
