// Package seqio reads and writes FASTA files, the input format of the
// paper's bioinformatics workloads (sequence alignment, RNA folding).
package seqio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	// ID is the first whitespace-delimited token of the header line.
	ID string
	// Desc is the rest of the header line.
	Desc string
	// Seq is the sequence with whitespace removed, uppercased.
	Seq []byte
}

// Read parses all FASTA records from r.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		recs []Record
		cur  *Record
		line int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			header := strings.TrimSpace(text[1:])
			if header == "" {
				return nil, fmt.Errorf("seqio: empty FASTA header at line %d", line)
			}
			id, desc, _ := strings.Cut(header, " ")
			recs = append(recs, Record{ID: id, Desc: strings.TrimSpace(desc)})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seqio: sequence data before any header at line %d", line)
		}
		for _, c := range []byte(strings.ToUpper(text)) {
			if c == ' ' || c == '\t' {
				continue
			}
			if (c < 'A' || c > 'Z') && c != '*' && c != '-' {
				return nil, fmt.Errorf("seqio: invalid sequence character %q at line %d", c, line)
			}
			cur.Seq = append(cur.Seq, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqio: %w", err)
	}
	return recs, nil
}

// ReadFile parses a FASTA file from disk.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits records in FASTA format with lines wrapped at width
// characters (60 when width <= 0).
func Write(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if rec.ID == "" {
			return fmt.Errorf("seqio: record without ID")
		}
		header := ">" + rec.ID
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintln(bw, header); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += width {
			end := off + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes records to a FASTA file.
func WriteFile(path string, recs []Record, width int) error {
	var buf bytes.Buffer
	if err := Write(&buf, recs, width); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
