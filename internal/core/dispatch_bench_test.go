package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// BenchmarkDispatchBatch measures end-to-end run time over the real TCP
// transport at a deliberately fine processor partition — the regime where
// per-message overhead (syscalls, gob envelopes, scheduler round trips)
// dominates and batching pays. One iteration is a full DP run: the
// reported metric is runs/sec, plus vertices/sec and the realized mean
// batch size as custom metrics.
//
// Sub-benchmarks differ only in Config.Batch; batch=1 is the classic
// one-task-per-message protocol.
func BenchmarkDispatchBatch(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchmarkDispatchTCP(b, batch)
		})
	}
}

func benchmarkDispatchTCP(b *testing.B, batch int) {
	const workers = 2
	const n = 96
	e := dp.NewEditDistance(dp.RandomDNA(n, 1), dp.RandomDNA(n, 2))
	prob := e.Problem()
	cfg := core.Config{
		Threads:         2,
		ProcPartition:   dag.Square(4), // 24x24 grid: 576 small tasks
		ThreadPartition: dag.Square(4),
		Batch:           batch,
		RunTimeout:      time.Minute,
	}
	vertices := 24 * 24

	b.ReportAllocs()
	totalBatchMsgs, totalDispatches := int64(0), int64(0)
	for i := 0; i < b.N; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", 39700+batch)
		var wg sync.WaitGroup
		for r := 1; r <= workers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := comm.DialWorker(addr, r, workers, 10*time.Second)
				if err != nil {
					b.Errorf("worker %d dial: %v", r, err)
					return
				}
				defer tr.Close()
				if err := core.RunSlave(prob, cfg, tr); err != nil {
					b.Errorf("worker %d: %v", r, err)
				}
			}(r)
		}
		tr, err := comm.ListenMaster(addr, workers, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunMaster(prob, cfg, tr)
		tr.Close()
		wg.Wait()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Tasks != int64(vertices) {
			b.Fatalf("tasks = %d, want %d", res.Stats.Tasks, vertices)
		}
		totalBatchMsgs += res.Stats.BatchMessages
		totalDispatches += res.Stats.Dispatches
	}
	b.ReportMetric(float64(vertices)*float64(b.N)/b.Elapsed().Seconds(), "vertices/sec")
	if totalBatchMsgs > 0 {
		b.ReportMetric(float64(totalDispatches)/float64(totalBatchMsgs), "vertices/batch-msg")
	}
}
