package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// stragglerConfig keeps the timeout path far out of reach so any rescue
// observed in these tests comes from speculation or stealing, not from an
// overtime redistribution.
func stragglerConfig() core.Config {
	return core.Config{
		Slaves:           3,
		Threads:          2,
		ProcPartition:    dag.Square(6), // 8x8 grid on n=48
		ThreadPartition:  dag.Square(3),
		TaskTimeout:      10 * time.Second,
		SubTaskTimeout:   10 * time.Second,
		CheckInterval:    10 * time.Millisecond,
		RunTimeout:       120 * time.Second,
		WorkDelayPerCell: 100 * time.Microsecond,
	}
}

// A mid-DAG vertex stalls far past the runtime profile's threshold while
// the task timeout stays out of reach. The speculative path must dispatch
// a backup that wins the race, so the run finishes without a single
// redistribution and every vertex counts exactly once.
func TestSpeculationRescuesStall(t *testing.T) {
	a := dp.RandomDNA(48, 44)
	b := dp.RandomDNA(48, 45)
	e := dp.NewEditDistance(a, b)
	cfg := stragglerConfig()
	cfg.Speculate = true
	// Vertex 20 (row 2, col 4) has 14 ancestors, enough completions to
	// warm the runtime profile before the stall begins.
	cfg.Faults = core.FaultPlan{StallFirstAttempt: map[int32]time.Duration{20: 400 * time.Millisecond}}

	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-speculate", res.Matrix(), e.Sequential())
	if res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64 (each vertex exactly once)", res.Stats.Tasks)
	}
	if res.Stats.Speculated == 0 {
		t.Fatalf("stall did not trigger a speculative backup: %v", res.Stats)
	}
	if res.Stats.SpecWon == 0 {
		t.Fatalf("no backup beat the 400ms stall: %v", res.Stats)
	}
	if res.Stats.Redistributions != 0 {
		t.Fatalf("redistributions = %d, want 0 (speculation must beat the timeout path)", res.Stats.Redistributions)
	}
}

// Batched dispatch lets a slave stalled on a batch head pile up queued
// entries behind it. Once the other slave drains the ready stack and
// blocks in its dispatcher draw, the master must steal the stalled
// slave's backlog tail toward it.
func TestStealRebalancesBatchBacklog(t *testing.T) {
	a := dp.RandomDNA(48, 46)
	b := dp.RandomDNA(48, 47)
	e := dp.NewEditDistance(a, b)
	cfg := stragglerConfig()
	cfg.Slaves = 2
	cfg.Batch = 8
	cfg.Steal = true
	// Three stalls down one column give the steal path three separate
	// chances to observe a starved slave next to a deep backlog.
	cfg.Faults = core.FaultPlan{StallFirstAttempt: map[int32]time.Duration{
		27: 250 * time.Millisecond,
		35: 250 * time.Millisecond,
		43: 250 * time.Millisecond,
	}}

	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-steal", res.Matrix(), e.Sequential())
	if res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64 (each vertex exactly once)", res.Stats.Tasks)
	}
	if res.Stats.Steals == 0 {
		t.Fatalf("no backlog stolen toward the starved slave: %v", res.Stats)
	}
	if res.Stats.Redistributions != 0 {
		t.Fatalf("redistributions = %d, want 0 (stealing must not trip timeouts)", res.Stats.Redistributions)
	}
}

// BlockCyclic ownership is static: there is no idle slave a backup or a
// stolen vertex could go to, so straggler mitigation must stay inert
// under the BCW policy even when enabled.
func TestMitigationInertUnderBlockCyclic(t *testing.T) {
	a := dp.RandomDNA(48, 48)
	b := dp.RandomDNA(48, 49)
	e := dp.NewEditDistance(a, b)
	cfg := stragglerConfig()
	cfg.Policy = core.PolicyBlockCyclic
	cfg.Speculate = true
	cfg.Steal = true
	cfg.Faults = core.FaultPlan{StallFirstAttempt: map[int32]time.Duration{20: 100 * time.Millisecond}}

	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-bcw", res.Matrix(), e.Sequential())
	if res.Stats.Speculated != 0 || res.Stats.Steals != 0 {
		t.Fatalf("straggler mitigation fired under BlockCyclic: %v", res.Stats)
	}
}
