package core

import "sync"

// affinityDispatcher is the locality-aware variant of the dynamic worker
// pool: like Dynamic, any idle worker takes a computable sub-task, but
// instead of the newest one it takes the sub-task whose data region
// overlaps most with the blocks that worker's slave already holds
// (the delta-shipping known-set). This trades a small scheduling scan for
// large traffic savings on patterns with wide data regions.
//
// It preserves the dynamic pool's central property — no worker idles while
// any sub-task is computable — so the paper's load-balance behaviour is
// unchanged; only tie-breaking among computable sub-tasks differs.
type affinityDispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  []int32
	closed bool
	// score rates how much of vertex v's data region worker w already
	// holds; higher is better.
	score func(worker int, v int32) int
}

func newAffinityDispatcher(score func(worker int, v int32) int) *affinityDispatcher {
	d := &affinityDispatcher{score: score}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *affinityDispatcher) Ready(ids ...int32) {
	if len(ids) == 0 {
		return
	}
	d.mu.Lock()
	d.ready = append(d.ready, ids...)
	d.mu.Unlock()
	d.cond.Broadcast()
}

func (d *affinityDispatcher) Next(w int) (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.ready) == 0 && !d.closed {
		d.cond.Wait()
	}
	if len(d.ready) == 0 {
		return 0, false
	}
	best, bestScore := 0, -1
	for k, v := range d.ready {
		if s := d.score(w, v); s > bestScore {
			best, bestScore = k, s
		}
	}
	id := d.ready[best]
	d.ready[best] = d.ready[len(d.ready)-1]
	d.ready = d.ready[:len(d.ready)-1]
	return id, true
}

// NextBatch drains up to max of the currently ready vertices for worker w,
// best-affinity first. Like Dynamic, it takes whatever is computable the
// moment the first vertex appears — never waiting for the batch to fill.
func (d *affinityDispatcher) NextBatch(w, max int) ([]int32, bool) {
	if max < 1 {
		max = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.ready) == 0 && !d.closed {
		d.cond.Wait()
	}
	if len(d.ready) == 0 {
		return nil, false
	}
	n := len(d.ready)
	if n > max {
		n = max
	}
	ids := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		best, bestScore := 0, -1
		for k, v := range d.ready {
			if s := d.score(w, v); s > bestScore {
				best, bestScore = k, s
			}
		}
		ids = append(ids, d.ready[best])
		d.ready[best] = d.ready[len(d.ready)-1]
		d.ready = d.ready[:len(d.ready)-1]
	}
	return ids, true
}

func (d *affinityDispatcher) Requeue(id int32) { d.Ready(id) }

func (d *affinityDispatcher) ReadyCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.ready)
}

func (d *affinityDispatcher) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
}

// affinityScore builds the score function for the master: the number of
// blocks of v's data region that slave (worker+1) already holds.
func (m *master[T]) affinityScore(worker int, v int32) int {
	s := worker + 1
	m.knownMu.Lock()
	defer m.knownMu.Unlock()
	if s < 1 || s >= len(m.known) {
		return 0
	}
	held := m.known[s]
	n := 0
	for _, d := range m.graph.Vertex(v).DataPre {
		if held[d] {
			n++
		}
	}
	return n
}
