package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cas"
	"repro/internal/comm"
	"repro/internal/dag"
	"repro/internal/trace"
)

// Policy selects the task-allocation strategy at both parallelization
// levels.
type Policy uint8

const (
	// PolicyDynamic is the EasyHPS dynamic worker pool: any idle
	// node/thread takes the next computable sub-task.
	PolicyDynamic Policy = iota
	// PolicyBlockCyclic is the static block-cyclic wavefront baseline
	// (BCW): sub-tasks are pre-assigned block-cyclically by grid column
	// and may only run on their owner.
	PolicyBlockCyclic
	// PolicyAffinity is the locality-aware dynamic pool: any idle slave
	// takes a computable sub-task, preferring the one whose data region
	// it already holds the most blocks of. It implies DeltaShipping
	// (the known-sets drive both) and falls back to plain dynamic
	// scheduling at the thread level, where memory is shared anyway.
	PolicyAffinity
)

func (p Policy) String() string {
	switch p {
	case PolicyDynamic:
		return "dynamic"
	case PolicyBlockCyclic:
		return "bcw"
	case PolicyAffinity:
		return "affinity"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Config describes a deployment of the runtime, mirroring the paper's
// experiment setup: a master rank plus Slaves computing nodes, each
// running Threads compute goroutines, with separate partition sizes for
// the two levels.
type Config struct {
	// Slaves is the number of slave computing nodes.
	Slaves int
	// Threads is the number of compute goroutines per slave (ct in the
	// paper's core accounting).
	Threads int
	// ProcPartition is process_partition_size: the block size of
	// processor-level sub-tasks.
	ProcPartition dag.Size
	// ThreadPartition is thread_partition_size: the block size of
	// thread-level sub-sub-tasks within one processor-level block.
	ThreadPartition dag.Size
	// Policy selects dynamic (EasyHPS) or static (BCW) scheduling.
	Policy Policy
	// BCWBlockCols is the block-cyclic column run length of the static
	// policy (block_col in the paper); ignored under PolicyDynamic.
	// Zero means 1.
	BCWBlockCols int
	// Batch bounds how many computable sub-tasks one dispatch message may
	// carry to a slave. At 1 (the default) the runtime sends the classic
	// one-task-per-message protocol unchanged. Above 1 the master drains
	// up to Batch currently-ready vertices into a single task-batch
	// message — never waiting for the batch to fill, so the DAG frontier
	// cannot stall — and the slave flushes results back in groups of up
	// to Batch. Batching amortizes per-message overhead when blocks are
	// small and the frontier is wide; the fault-tolerance machinery
	// (register table, overtime queue, redistribution) still operates on
	// individual vertices.
	Batch int
	// TaskTimeout is the processor-level fault-detection timeout: a
	// sub-task not finished within it is redistributed.
	TaskTimeout time.Duration
	// SubTaskTimeout is the thread-level fault-detection timeout.
	SubTaskTimeout time.Duration
	// CheckInterval is how often the fault-tolerance threads inspect
	// their overtime queues; defaults to a quarter of the timeout.
	CheckInterval time.Duration
	// RunTimeout aborts the whole run when exceeded (0 disables). It is
	// a guard for tests and for deployments where every node could die.
	RunTimeout time.Duration
	// MaxAttempts bounds how many times one sub-task (or sub-sub-task)
	// may be dispatched: exceeding it aborts the run with an error at
	// the processor level, or surfaces the underlying panic at the
	// thread level, so that deterministic kernel bugs fail loudly
	// instead of looping through fault recovery forever. Default 4.
	MaxAttempts int
	// Speculate enables speculative re-execution: when an in-flight
	// sub-task runs longer than twice the 95th percentile of observed
	// runtimes (tracked in a per-run sched.RuntimeProfile), a backup
	// attempt is dispatched to an idle slave and whichever result
	// arrives first wins; the loser is dropped by attempt stamp. Not
	// applied under PolicyBlockCyclic, whose static ownership leaves no
	// idle slave eligible to run a backup.
	Speculate bool
	// Steal enables idle work stealing: when a slave's sender is
	// starved (no computable work) while another slave has a backlog of
	// queued-but-undispatched batch entries, the master cancels the
	// tail of that backlog and requeues it for the starved slave. Not
	// applied under PolicyBlockCyclic.
	Steal bool
	// Auto runs the self-tuning controller (internal/tune) on the
	// fault-tolerance tick: Batch and the speculation thresholds become
	// starting points that adapt to observed dispatch amortization,
	// starvation and speculation outcomes, an unset ProcPartition comes
	// from the cost-model advisor instead of the n/8 rule, and
	// Speculate and Steal are enabled — auto means the system owns the
	// schedule. Controller decisions land in Trace as "tune" events.
	Auto bool
	// Latency is the emulated interconnect cost of the in-process
	// transport.
	Latency comm.LatencyModel
	// WorkDelayPerCell emulates computation weight: every thread-level
	// sub-sub-task additionally sleeps cells*WorkDelayPerCell after its
	// real computation (weighted by the kernel's CostModel when it has
	// one). Because sleeping goroutines overlap perfectly, this lets
	// deployments with more simulated cores than physical cores exhibit
	// the scaling behaviour of a real cluster — the benchmark harness
	// relies on it (see DESIGN.md). Zero disables it.
	WorkDelayPerCell time.Duration
	// WorkJitter adds reproducible per-sub-sub-task variance to the
	// emulated work: the sleep is scaled by a factor drawn
	// deterministically from [1-WorkJitter, 1+WorkJitter]. Real nodes
	// never execute identical work in identical time (OS jitter, cache
	// and NUMA effects); a zero-variance emulation overstates how well
	// static schedules do. Typical value 0.3; zero disables it.
	WorkJitter float64
	// DeltaShipping makes the master track which blocks each slave has
	// already received or computed and ship only the missing part of a
	// sub-task's data region. Slaves keep every block they have seen for
	// the duration of the run (blocks are immutable once computed), so
	// repeated row/column reads of the 2D/1D patterns stop being resent.
	DeltaShipping bool
	// SpillDir, when non-empty, switches the master's block store to the
	// out-of-core SpillStore: at most SpillBudget blocks stay in memory
	// and the rest are spilled to files under SpillDir and reloaded on
	// demand — the out-of-core operating mode for matrices larger than
	// memory (the paper's space-complexity future work).
	SpillDir string
	// SpillBudget is the in-memory block cap for SpillDir mode
	// (default 16).
	SpillBudget int
	// ReclaimBlocks enables master-side memory reclamation: a completed
	// block is dropped from the store as soon as every sub-task that
	// reads it has finished. This directly addresses the space-complexity
	// limitation the paper lists as future work. The final Result then
	// contains only blocks that no other block consumed (e.g. the
	// bottom-right corner of a wavefront), so leave it off when the full
	// matrix is needed for traceback.
	ReclaimBlocks bool
	// Cache, when non-nil, is the cross-job content-addressed result
	// store (internal/cas): before dispatching a computable sub-task the
	// master probes it by content key, a hit applying the stored block
	// without drawing a lease, and every completed block is written
	// through. When DeltaShipping is also on, the per-slave known-sets
	// generalize to content keys issued by the same store, so its
	// wire-layer counters see every skipped reship. Requires CacheKey.
	Cache *cas.Store
	// CacheKey is the content digest of the problem spec (kernel plus
	// inputs, scheduling knobs excluded) that scopes this run's entries
	// in Cache. Empty disables caching even when Cache is set: without a
	// spec identity, per-vertex keys would collide across problems.
	CacheKey string
	// Checkpoint, when non-nil, receives a checkpoint record for every
	// completed processor-level sub-task (see internal/checkpoint).
	Checkpoint io.Writer
	// Restore, when non-nil, is replayed before scheduling: sub-tasks
	// recorded there are restored instead of recomputed, resuming an
	// interrupted run.
	Restore io.Reader
	// Faults optionally injects failures for testing fault tolerance.
	Faults FaultPlan
	// Trace optionally records processor-level scheduling events.
	Trace *trace.Recorder
	// Progress, when non-nil, is called by the master after restore and
	// after every completed processor-level sub-task with the number of
	// completed and total sub-tasks of the run. It runs on the master's
	// receive loop, so it must be fast and must not block.
	Progress func(completed, total int)
}

// withDefaults validates cfg against the problem size and fills defaults.
func (c Config) withDefaults(n dag.Size) (Config, error) {
	if !n.Valid() {
		return c, fmt.Errorf("core: invalid problem size %v", n)
	}
	if c.Slaves < 1 {
		return c, fmt.Errorf("core: need at least 1 slave, got %d", c.Slaves)
	}
	if c.Threads < 1 {
		return c, fmt.Errorf("core: need at least 1 thread per slave, got %d", c.Threads)
	}
	if c.Auto {
		c.Speculate = true
		c.Steal = true
	}
	if !c.ProcPartition.Valid() {
		// Under Auto, prepare() already consulted the partition advisor
		// (it needs the kernel's cost model, which Config cannot see).
		c.ProcPartition = dag.Size{Rows: (n.Rows + 7) / 8, Cols: (n.Cols + 7) / 8}
	}
	if !c.ThreadPartition.Valid() {
		c.ThreadPartition = dag.Size{
			Rows: (c.ProcPartition.Rows + 3) / 4,
			Cols: (c.ProcPartition.Cols + 3) / 4,
		}
	}
	if c.BCWBlockCols < 1 {
		c.BCWBlockCols = 1
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 4
	}
	if c.SpillDir != "" && c.SpillBudget < 1 {
		c.SpillBudget = 16
	}
	if c.Policy == PolicyAffinity {
		// Affinity scheduling scores against the delta-shipping
		// known-sets; without them every score is zero.
		c.DeltaShipping = true
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 30 * time.Second
	}
	if c.SubTaskTimeout <= 0 {
		c.SubTaskTimeout = 10 * time.Second
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = c.TaskTimeout / 4
		if sub := c.SubTaskTimeout / 4; sub < c.CheckInterval {
			c.CheckInterval = sub
		}
		if c.CheckInterval < time.Millisecond {
			c.CheckInterval = time.Millisecond
		}
	}
	return c, nil
}

// Cores returns the paper's core accounting for this deployment on
// X = Slaves+1 nodes: one processor-level scheduling core per node
// (master plus slave receive loops), one thread-level scheduling core per
// computing node, and Threads compute cores per computing node:
// N + (N-1) + ct*(N-1) with N = Slaves+1.
func (c Config) Cores() int {
	n := c.Slaves + 1
	return n + c.Slaves + c.Threads*c.Slaves
}

// ConfigForCores builds a Config that uses exactly y cores on x nodes in
// the paper's Experiment_X_Y accounting: y-2x+1 compute threads spread
// over x-1 computing nodes. It returns an error when y is too small for
// the architecture (the paper's minimum is y = 3x-2, one compute thread
// per computing node).
func ConfigForCores(x, y int) (Config, error) {
	if x < 2 {
		return Config{}, fmt.Errorf("core: Experiment_X_Y needs at least 2 nodes, got %d", x)
	}
	compute := y - 2*x + 1
	if compute < x-1 {
		return Config{}, fmt.Errorf("core: %d cores on %d nodes leaves %d compute cores for %d computing nodes", y, x, compute, x-1)
	}
	if compute%(x-1) != 0 {
		return Config{}, fmt.Errorf("core: %d compute cores do not divide evenly over %d computing nodes", compute, x-1)
	}
	return Config{Slaves: x - 1, Threads: compute / (x - 1)}, nil
}

// SubTaskID identifies one thread-level sub-sub-task: the processor-level
// vertex it belongs to and the vertex id inside the slave DAG.
type SubTaskID struct {
	Proc int32
	Sub  int32
}

// FaultPlan injects failures for fault-tolerance testing. The zero value
// injects nothing.
type FaultPlan struct {
	// CrashOnTask makes a slave rank die silently upon receiving its
	// k-th task (1-based): the task and every later dispatch to that
	// rank are lost, emulating a node failure.
	CrashOnTask map[int]int
	// StallFirstAttempt delays the first execution attempt of a
	// processor-level vertex by the given duration, long enough to trip
	// the master's timeout and force a redistribution; the stalled slave
	// eventually answers with a stale attempt that must be dropped.
	StallFirstAttempt map[int32]time.Duration
	// PanicSubTask makes the first execution of a thread-level
	// sub-sub-task panic, exercising the slave-side worker restart.
	PanicSubTask map[SubTaskID]bool
	// StallSubTask delays the first execution of a thread-level
	// sub-sub-task, tripping the slave's overtime queue.
	StallSubTask map[SubTaskID]time.Duration
}

// empty reports whether the plan injects nothing.
func (f FaultPlan) empty() bool {
	return len(f.CrashOnTask) == 0 && len(f.StallFirstAttempt) == 0 &&
		len(f.PanicSubTask) == 0 && len(f.StallSubTask) == 0
}
