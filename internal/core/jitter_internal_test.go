package core

import (
	"math"
	"testing"
)

func TestJitterFactorDeterministicAndBounded(t *testing.T) {
	const amp = 0.3
	var sum float64
	for proc := int32(0); proc < 512; proc++ {
		f1 := jitterFactor(proc, 0, amp)
		f2 := jitterFactor(proc, 99, amp)
		if f1 != f2 {
			t.Fatalf("jitter differs across sub-tasks of one task: %v vs %v", f1, f2)
		}
		if f1 < 1-amp || f1 >= 1+amp {
			t.Fatalf("factor %v outside [%v, %v)", f1, 1-amp, 1+amp)
		}
		sum += f1
	}
	// The mean over many tasks should be close to 1 (unbiased total work).
	if mean := sum / 512; math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean factor %v deviates from 1", mean)
	}
	// Distinct tasks should not all share a factor.
	if jitterFactor(1, 0, amp) == jitterFactor(2, 0, amp) &&
		jitterFactor(2, 0, amp) == jitterFactor(3, 0, amp) {
		t.Fatal("jitter factors look constant across tasks")
	}
}

func TestJitterFactorDisabled(t *testing.T) {
	if jitterFactor(5, 0, 0) != 1 || jitterFactor(5, 0, -1) != 1 {
		t.Fatal("amp <= 0 must disable jitter")
	}
}
