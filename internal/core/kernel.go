// Package core implements the EasyHPS runtime: the master part that
// schedules processor-level sub-tasks over slave nodes, the slave part that
// re-partitions each sub-task over compute threads, the dynamic worker
// pools at both levels, and the hierarchical timeout-based fault tolerance
// described in §V of the paper.
package core

import (
	"repro/internal/dag"
	"repro/internal/matrix"
)

// Kernel is what a user implements to run a DP algorithm on EasyHPS — the
// counterpart of the paper's user APIs (Table I): the DAG Pattern Model of
// the recurrence, the boundary values, and the per-cell recurrence itself.
//
// Cell must be deterministic and must read, through the view, only cells
// that the pattern declares reachable: within the current block (already
// computed in CellOrder order), in blocks listed by the pattern's
// DataDeps, or outside the computed region (resolved by Boundary). Reads
// outside that contract panic, which is how the tests detect
// under-declared data regions.
type Kernel[T any] interface {
	// Pattern returns the DAG Pattern Model of the recurrence, either
	// from the library or user defined.
	Pattern() dag.Pattern
	// Boundary supplies the value of a cell outside the computed region
	// (negative indices, beyond the matrix, or pattern holes such as the
	// lower triangle of a triangular pattern).
	Boundary(i, j int) T
	// Cell computes the recurrence at (i, j).
	Cell(v *matrix.View[T], i, j int) T
}

// CostModel is an optional Kernel extension reporting the relative cost of
// computing one cell. Most DP recurrences are not uniform — an SWGG cell
// scans its whole row and column prefix, O(i+j); a Nussinov cell scans its
// span, O(j-i) — and the runtime's emulated-work mode
// (Config.WorkDelayPerCell) uses this weight so that block costs vary the
// way the real recurrence's do. Implementations should normalize the mean
// weight over the matrix to about 1 so the total emulated work stays
// cells x WorkDelayPerCell. Kernels without a CostModel are weighted
// uniformly.
type CostModel interface {
	CellCost(i, j int) float64
}

// Problem bundles everything the runtime needs to execute one DP
// application.
type Problem[T any] struct {
	// Name identifies the problem in logs and stats.
	Name string
	// Size is the DP matrix extent.
	Size dag.Size
	// Kernel is the user recurrence.
	Kernel Kernel[T]
	// Codec serializes cells on the wire.
	Codec matrix.Codec[T]
}

// Result of a run: the completed blocked matrix plus runtime statistics.
type Result[T any] struct {
	// Store holds every computed block at processor-level granularity
	// (an in-memory Store, or a SpillStore in out-of-core mode).
	Store matrix.BlockStore[T]
	// Stats aggregates the scheduling statistics of the run.
	Stats Stats
}

// Matrix assembles the result into a dense matrix. Cells outside the
// computed region (e.g. the lower triangle of a triangular pattern) are
// zero values.
func (r *Result[T]) Matrix() [][]T { return r.Store.Assemble() }
