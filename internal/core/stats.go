package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stats aggregates what happened during a run.
type Stats struct {
	// Tasks is the number of processor-level sub-tasks completed.
	Tasks int64
	// Dispatches counts task messages sent to slaves (>= Tasks when
	// redistributions happen).
	Dispatches int64
	// Redistributions counts processor-level timeout recoveries.
	Redistributions int64
	// StaleResults counts late results dropped by the register table.
	StaleResults int64
	// SubTasks counts thread-level sub-sub-task executions across all
	// slaves (duplicates included).
	SubTasks int64
	// SubRequeues counts thread-level timeout re-pushes.
	SubRequeues int64
	// WorkerRestarts counts compute-goroutine panic recoveries.
	WorkerRestarts int64
	// BlocksReclaimed counts blocks released by memory reclamation
	// (Config.ReclaimBlocks).
	BlocksReclaimed int64
	// PeakBlocks is the maximum number of blocks the master held at
	// once.
	PeakBlocks int64
	// Restored counts sub-tasks recovered from a checkpoint instead of
	// computed.
	Restored int64
	// BlocksShipped and BlocksSkipped count data-region blocks sent to
	// slaves and blocks skipped because the slave already held them
	// (delta shipping).
	BlocksShipped, BlocksSkipped int64
	// BatchMessages counts multi-vertex task-batch messages sent to
	// slaves (zero when Config.Batch <= 1); Dispatches keeps counting
	// individual vertices, so Dispatches/BatchMessages is the realized
	// mean batch size of the batched portion of the dispatch stream.
	BatchMessages int64
	// Speculated counts backup attempts dispatched (Config.Speculate);
	// SpecWon of those, how many beat the original; SpecWasted, how
	// many lost the race or were cancelled.
	Speculated, SpecWon, SpecWasted int64
	// Steals counts queued-but-undispatched sub-tasks reclaimed from a
	// loaded slave's backlog for a starved one (Config.Steal).
	Steals int64
	// TaskBytes is the total payload bytes of task messages sent to
	// slaves (both per-vertex and batched), before transport framing.
	TaskBytes int64
	// CacheHits counts processor-level sub-tasks served from the
	// cross-job result cache instead of dispatched; CacheMisses counts
	// cache probes that fell through to computation (Config.Cache).
	CacheHits, CacheMisses int64
	// Spills and SpillLoads count blocks written to and reloaded from
	// the out-of-core spill store (Config.SpillDir).
	Spills, SpillLoads int64
	// Messages and PayloadBytes are the transport traffic totals
	// (in-process runs only).
	Messages, PayloadBytes int64
	// Elapsed is the wall-clock makespan of the run.
	Elapsed time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("tasks=%d dispatches=%d redist=%d stale=%d subtasks=%d subrequeue=%d restarts=%d msgs=%d bytes=%d elapsed=%v",
		s.Tasks, s.Dispatches, s.Redistributions, s.StaleResults,
		s.SubTasks, s.SubRequeues, s.WorkerRestarts, s.Messages, s.PayloadBytes, s.Elapsed)
}

// counters is the live, concurrency-safe accumulator behind Stats.
type counters struct {
	tasks, dispatches, redistributions, staleResults atomic.Int64
	subTasks, subRequeues, workerRestarts            atomic.Int64
	blocksReclaimed, peakBlocks, restored            atomic.Int64
	blocksShipped, blocksSkipped                     atomic.Int64
	batchMessages, taskBytes                         atomic.Int64
	speculated, specWon, specWasted, steals          atomic.Int64
	cacheHits, cacheMisses                           atomic.Int64
	spills, spillLoads                               atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Tasks:           c.tasks.Load(),
		Dispatches:      c.dispatches.Load(),
		Redistributions: c.redistributions.Load(),
		StaleResults:    c.staleResults.Load(),
		SubTasks:        c.subTasks.Load(),
		SubRequeues:     c.subRequeues.Load(),
		WorkerRestarts:  c.workerRestarts.Load(),
		BlocksReclaimed: c.blocksReclaimed.Load(),
		PeakBlocks:      c.peakBlocks.Load(),
		Restored:        c.restored.Load(),
		BlocksShipped:   c.blocksShipped.Load(),
		BlocksSkipped:   c.blocksSkipped.Load(),
		BatchMessages:   c.batchMessages.Load(),
		TaskBytes:       c.taskBytes.Load(),
		Speculated:      c.speculated.Load(),
		SpecWon:         c.specWon.Load(),
		SpecWasted:      c.specWasted.Load(),
		Steals:          c.steals.Load(),
		CacheHits:       c.cacheHits.Load(),
		CacheMisses:     c.cacheMisses.Load(),
		Spills:          c.spills.Load(),
		SpillLoads:      c.spillLoads.Load(),
	}
}

// faultState tracks which injected faults have fired, so that "first
// attempt" and "once" semantics hold across the whole in-process cluster.
type faultState struct {
	plan FaultPlan

	mu       sync.Mutex
	received map[int]int // slave rank -> tasks received
	fired    map[string]bool
}

func newFaultState(plan FaultPlan) *faultState {
	if plan.empty() {
		return nil
	}
	return &faultState{
		plan:     plan,
		received: make(map[int]int),
		fired:    make(map[string]bool),
	}
}

// crashNow reports whether the slave with the given rank should die upon
// this task reception.
func (f *faultState) crashNow(rank int) bool {
	if f == nil || len(f.plan.CrashOnTask) == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.received[rank]++
	k, ok := f.plan.CrashOnTask[rank]
	return ok && f.received[rank] == k
}

// once returns true the first time key is seen.
func (f *faultState) once(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired[key] {
		return false
	}
	f.fired[key] = true
	return true
}

// stallTask returns the injected delay for a processor-level vertex, once.
func (f *faultState) stallTask(v int32) time.Duration {
	if f == nil {
		return 0
	}
	d, ok := f.plan.StallFirstAttempt[v]
	if !ok || !f.once(fmt.Sprintf("stall-task-%d", v)) {
		return 0
	}
	return d
}

// panicSubTask reports whether this sub-sub-task execution should panic,
// once.
func (f *faultState) panicSubTask(id SubTaskID) bool {
	if f == nil || !f.plan.PanicSubTask[id] {
		return false
	}
	return f.once(fmt.Sprintf("panic-sub-%d-%d", id.Proc, id.Sub))
}

// stallSubTask returns the injected delay for a sub-sub-task, once.
func (f *faultState) stallSubTask(id SubTaskID) time.Duration {
	if f == nil {
		return 0
	}
	d, ok := f.plan.StallSubTask[id]
	if !ok || !f.once(fmt.Sprintf("stall-sub-%d-%d", id.Proc, id.Sub)) {
		return 0
	}
	return d
}
