package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// runSlave executes the slave part (Figs. 11-12 of the paper) over
// transport tr: announce idleness, receive a processor-level sub-task,
// re-partition it with thread_partition_size into a slave DAG, execute the
// sub-sub-tasks on the slave worker pool, and return the computed block.
// It returns when the master sends the end signal or the transport closes.
func runSlave[T any](p Problem[T], cfg Config, tr comm.Transport, faults *faultState, ctrs *counters) error {
	geom := dag.MatrixGeometry(p.Size, cfg.ProcPartition)
	rank := tr.Rank()
	// cache holds every block this slave has received or computed when
	// delta shipping is enabled; blocks are immutable once complete, so
	// the cache never goes stale within a run.
	var cache []*matrix.Block[T]
	if err := tr.Send(0, comm.Message{Kind: comm.KindIdle}); err != nil {
		return err
	}
	for {
		msg, err := tr.Recv()
		if err != nil {
			return nil // transport closed: the run is over
		}
		switch msg.Kind {
		case comm.KindEnd:
			return nil
		default:
			// The master only ever sends tasks, batches and End on this
			// transport; anything else is corruption. Die loudly so the
			// timeout path reassigns this slave's work.
			return fmt.Errorf("core: slave %d received unexpected %v frame", rank, msg.Kind)
		case comm.KindTask:
			if faults.crashNow(rank) {
				// Injected node failure: die without a word.
				return nil
			}
			if d := faults.stallTask(msg.Vertex); d > 0 {
				time.Sleep(d)
			}
			inputs, err := matrix.DecodeBlocks(p.Codec, msg.Payload)
			if err != nil {
				return fmt.Errorf("core: slave %d decoding task %d: %w", rank, msg.Vertex, err)
			}
			if cfg.DeltaShipping {
				cache = append(cache, inputs...)
				inputs = cache
			}
			rect := geom.Rect(geom.PosOf(msg.Vertex))
			out := computeBlock(p, cfg, rect, inputs, faults, msg.Vertex, ctrs)
			if cfg.DeltaShipping {
				cache = append(cache, out)
			}
			payload, err := matrix.EncodeBlocks(p.Codec, []*matrix.Block[T]{out})
			if err != nil {
				return fmt.Errorf("core: slave %d encoding result %d: %w", rank, msg.Vertex, err)
			}
			if err := tr.Send(0, comm.Message{
				Kind: comm.KindResult, Vertex: msg.Vertex, Attempt: msg.Attempt, Payload: payload,
			}); err != nil {
				return nil
			}
		case comm.KindTaskBatch:
			// Entries are mutually independent (the master draws them all
			// from one ready set), so they execute sequentially through
			// the same per-vertex path, with results coalesced and
			// flushed every cfg.Batch entries. Non-final flushes carry
			// More so the master does not re-arm this slave's sender
			// while the batch is still executing.
			flushBound := cfg.Batch
			if flushBound < 1 {
				flushBound = 1
			}
			var results []comm.TaskEntry
			for idx, e := range msg.Batch {
				if faults.crashNow(rank) {
					// Injected node failure mid-batch: results not yet
					// flushed are lost with the node.
					return nil
				}
				if d := faults.stallTask(e.Vertex); d > 0 {
					time.Sleep(d)
				}
				inputs, err := matrix.DecodeBlocks(p.Codec, e.Payload)
				if err != nil {
					return fmt.Errorf("core: slave %d decoding task %d: %w", rank, e.Vertex, err)
				}
				if cfg.DeltaShipping {
					cache = append(cache, inputs...)
					inputs = cache
				}
				rect := geom.Rect(geom.PosOf(e.Vertex))
				out := computeBlock(p, cfg, rect, inputs, faults, e.Vertex, ctrs)
				if cfg.DeltaShipping {
					cache = append(cache, out)
				}
				payload, err := matrix.EncodeBlocks(p.Codec, []*matrix.Block[T]{out})
				if err != nil {
					return fmt.Errorf("core: slave %d encoding result %d: %w", rank, e.Vertex, err)
				}
				results = append(results, comm.TaskEntry{Vertex: e.Vertex, Attempt: e.Attempt, Payload: payload})
				if len(results) >= flushBound && idx < len(msg.Batch)-1 {
					if err := tr.Send(0, comm.Message{Kind: comm.KindResultBatch, Batch: results, More: true}); err != nil {
						return nil
					}
					results = nil
				}
			}
			var final comm.Message
			switch len(results) {
			case 0:
				// Nothing left to flush (an empty batch, which the master
				// never sends): announce idleness so the sender re-arms.
				final = comm.Message{Kind: comm.KindIdle}
			case 1:
				final = comm.Message{Kind: comm.KindResult, Vertex: results[0].Vertex, Attempt: results[0].Attempt, Payload: results[0].Payload}
			default:
				final = comm.Message{Kind: comm.KindResultBatch, Batch: results}
			}
			if err := tr.Send(0, final); err != nil {
				return nil
			}
		}
	}
}

// jitterFactor returns a deterministic multiplier in [1-amp, 1+amp) keyed
// by the processor-level task identity (splitmix64 finalizer). Keying at
// task granularity models content-dependent block cost — real DP blocks
// differ in branch behaviour, cache footprint and node background load —
// which is the variance a static schedule cannot adapt to. Runs remain
// reproducible.
func jitterFactor(proc, sub int32, amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	_ = sub // sub-task share the task's factor; see above
	h := uint64(uint32(proc)) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	u := float64(h%(1<<20))/float64(1<<19) - 1 // [-1, 1)
	return 1 + amp*u
}

// computeBlock is the thread-level parallelization of one processor-level
// sub-task: the block's cell region is partitioned again with
// thread_partition_size, the slave DAG Data Driven Model is built over the
// sub-blocks, and a pool of compute goroutines drains it. The slave
// fault-tolerance goroutine watches the slave overtime queue, re-pushing
// overdue sub-sub-tasks; panicking workers are recovered in place (the
// goroutine equivalent of restarting a dead compute thread).
func computeBlock[T any](p Problem[T], cfg Config, rect dag.Rect, inputs []*matrix.Block[T], faults *faultState, procID int32, ctrs *counters) *matrix.Block[T] {
	out := matrix.NewBlock[T](rect)
	pat := p.Kernel.Pattern()
	tgeom := dag.NewGeometry(rect, cfg.ThreadPartition)
	graph := dag.Build(pat, tgeom)
	parser := dag.NewParser(graph)

	var disp sched.Dispatcher
	switch cfg.Policy {
	case PolicyBlockCyclic:
		disp = sched.NewBlockCyclic(graph, cfg.Threads, cfg.BCWBlockCols)
	default:
		// PolicyAffinity degenerates to plain dynamic here: inside one
		// node memory is shared, so locality has nothing to optimize.
		disp = sched.NewDynamic()
	}
	disp.Ready(parser.InitialReady()...)

	n := p.Size
	exists := func(i, j int) bool {
		return i >= 0 && j >= 0 && i < n.Rows && j < n.Cols && pat.CellExists(i, j)
	}
	// Reads of region cells outside the current sub-block resolve against
	// the shared output block (its cells are complete by DAG order);
	// reads outside the region resolve against the shipped input blocks.
	readLayers := append([]*matrix.Block[T]{out}, inputs...)

	ot := sched.NewOvertimeQueue()
	done := make(chan struct{})
	var attemptCtr atomic.Int32

	var acceptMu sync.Mutex
	accepted := make([]bool, len(graph.Verts))
	panics := make([]int, len(graph.Verts))
	left := graph.N

	// accept commits a computed sub-block exactly once: the scratch cells
	// are copied into the shared output block, the slave DAG is updated,
	// and newly computable sub-sub-tasks are released. Duplicate
	// executions (after a timeout re-push) are discarded here.
	accept := func(sub int32, scratch *matrix.Block[T]) {
		acceptMu.Lock()
		if accepted[sub] {
			acceptMu.Unlock()
			return
		}
		accepted[sub] = true
		for i := scratch.Rect.Row0; i < scratch.Rect.Row0+scratch.Rect.Rows; i++ {
			for j := scratch.Rect.Col0; j < scratch.Rect.Col0+scratch.Rect.Cols; j++ {
				out.Set(i, j, scratch.At(i, j))
			}
		}
		left--
		finished := left == 0
		acceptMu.Unlock()

		ot.Remove(sub)
		disp.Ready(parser.Complete(sub)...)
		if finished {
			close(done)
			disp.Close()
		}
	}

	requeue := func(sub int32) {
		acceptMu.Lock()
		dup := accepted[sub]
		acceptMu.Unlock()
		if !dup {
			disp.Requeue(sub)
		}
	}

	// execute runs one sub-sub-task in a scratch block, recovering from
	// kernel panics (worker restart semantics). A sub-sub-task that
	// panics more than MaxAttempts times indicates a deterministic
	// kernel bug, not a transient fault: the panic is re-raised so the
	// defect surfaces instead of looping through recovery forever.
	execute := func(w int, sub int32) {
		defer func() {
			if r := recover(); r != nil {
				acceptMu.Lock()
				panics[sub]++
				giveUp := panics[sub] >= cfg.MaxAttempts
				acceptMu.Unlock()
				if giveUp {
					panic(fmt.Sprintf("core: sub-task %v panicked %d times (MaxAttempts): %v", SubTaskID{Proc: procID, Sub: sub}, cfg.MaxAttempts, r))
				}
				ctrs.workerRestarts.Add(1)
				requeue(sub)
			}
		}()
		subRect := tgeom.Rect(graph.Vertex(sub).Pos)
		scratch := matrix.NewBlock[T](subRect)
		view := matrix.NewView(scratch, readLayers, exists, p.Kernel.Boundary)
		ot.Add(sub, attemptCtr.Add(1), time.Now().Add(cfg.SubTaskTimeout))

		id := SubTaskID{Proc: procID, Sub: sub}
		if faults.panicSubTask(id) {
			panic(fmt.Sprintf("core: injected sub-task panic %v", id))
		}
		if d := faults.stallSubTask(id); d > 0 {
			time.Sleep(d)
		}

		kern := p.Kernel
		cost, _ := any(kern).(CostModel)
		units := 0.0
		pat.CellOrder(subRect, func(i, j int) {
			scratch.Set(i, j, kern.Cell(view, i, j))
			if cost != nil {
				units += cost.CellCost(i, j)
			} else {
				units++
			}
		})
		if cfg.WorkDelayPerCell > 0 {
			// Emulated computation weight; see Config.WorkDelayPerCell,
			// Config.WorkJitter and the CostModel interface.
			units *= jitterFactor(procID, sub, cfg.WorkJitter)
			time.Sleep(time.Duration(units * float64(cfg.WorkDelayPerCell)))
		}
		ctrs.subTasks.Add(1)
		accept(sub, scratch)
	}

	for w := 0; w < cfg.Threads; w++ {
		go func(w int) {
			for {
				sub, ok := disp.Next(w)
				if !ok {
					return
				}
				execute(w, sub)
			}
		}(w)
	}

	// Slave fault-tolerance thread: watch the slave overtime queue and
	// re-push overdue sub-sub-tasks.
	go func() {
		ticker := time.NewTicker(cfg.CheckInterval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-ticker.C:
				for _, e := range ot.ExpireBefore(now) {
					ctrs.subRequeues.Add(1)
					requeue(e.ID)
				}
			}
		}
	}()

	<-done
	return out
}
