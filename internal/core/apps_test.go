package core_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// The runtime is generic over the cell type; these tests cover every
// non-int32 path end to end: struct cells over the gob codec (Gotoh),
// int64 (optimal BST), uint64 bitmasks (CYK), float64 (Viterbi), plus the
// banded pattern whose block grid has holes.

func TestRunGotohStructCells(t *testing.T) {
	a := dp.RandomDNA(45, 61)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.25, 62)
	g := dp.NewGotoh(a, b)
	cfg := core.Config{
		Slaves: 2, Threads: 3,
		ProcPartition:   dag.Square(12),
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(g.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := g.Sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("gotoh cell (%d,%d) = %+v, want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if s := g.GlobalScore(got); s != g.GlobalScore(want) {
		t.Fatalf("global score %d != %d", s, g.GlobalScore(want))
	}
}

func TestRunOptimalBST(t *testing.T) {
	b := dp.NewOptimalBST(40, 50, 63)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(b.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Cost(res.Matrix()), b.Cost(b.Sequential()); got != want {
		t.Fatalf("optimal BST cost %d != %d", got, want)
	}
}

func TestRunCYKBitmaskCells(t *testing.T) {
	// A long balanced string plus random grammar stress.
	input := []byte("(()(()))((()))()(())")
	c := dp.NewCYK(dp.ParenGrammar(), input)
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(6),
		ThreadPartition: dag.Square(2),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(c.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := c.Sequential()
	for i := range want {
		for j := i; j < len(want[i]); j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("cyk cell (%d,%d) = %x, want %x", i, j, got[i][j], want[i][j])
			}
		}
	}
	if !c.Accepts(got) {
		t.Fatal("balanced string rejected")
	}
}

func TestRunCYKRandomGrammar(t *testing.T) {
	g := dp.RandomGrammar(12, 40, "ab", 64)
	input := dp.RandomSeq("ab", 30, 65)
	c := dp.NewCYK(g, input)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(8),
		ThreadPartition: dag.Square(3),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(c.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := c.Sequential()
	for i := range want {
		for j := i; j < len(want[i]); j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("cyk cell (%d,%d) = %x, want %x", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRunViterbiFloatCellsPrevRow(t *testing.T) {
	v := dp.NewViterbi(24, 6, 40, 66)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		// PrevRow requires one-row blocks.
		ProcPartition:   dag.Size{Rows: 1, Cols: 8},
		ThreadPartition: dag.Size{Rows: 1, Cols: 3},
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(v.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := v.Sequential()
	for i := range want {
		for j := range want[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("viterbi cell (%d,%d) = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// The decoded path must match the sequential decode.
	gp, wp := v.BestPath(got), v.BestPath(want)
	for k := range wp {
		if gp[k] != wp[k] {
			t.Fatalf("path diverges at step %d: %d != %d", k, gp[k], wp[k])
		}
	}
}

func TestRunViterbiMultiRowBlocksRejected(t *testing.T) {
	v := dp.NewViterbi(8, 4, 16, 67)
	cfg := core.Config{
		Slaves: 1, Threads: 1,
		ProcPartition:   dag.Square(4), // multi-row blocks: must be refused
		ThreadPartition: dag.Square(2),
		RunTimeout:      10 * time.Second,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PrevRow pattern accepted multi-row multi-column blocks")
		}
	}()
	_, _ = core.Run(v.Problem(), cfg)
}

func TestRunBandedEdit(t *testing.T) {
	a := dp.RandomDNA(80, 68)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.05, 69)
	e := dp.NewBandedEdit(a, b, 8)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(16),
		ThreadPartition: dag.Square(5),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := e.Sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("banded cell (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	full := dp.NewEditDistance(a, b)
	if bd, fd := e.Distance(got), full.Distance(full.Sequential()); bd != fd {
		t.Fatalf("banded distance %d != true distance %d", bd, fd)
	}
}

func TestRunBandedNarrowManyHoles(t *testing.T) {
	// Width much smaller than the block size: most of the grid is holes.
	a := dp.RandomDNA(100, 70)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.02, 71)
	e := dp.NewBandedEdit(a, b, 3)
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(20),
		ThreadPartition: dag.Square(7),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := e.Sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("banded cell (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRunNeedlemanWunsch(t *testing.T) {
	a := dp.RandomDNA(50, 72)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.25, 73)
	nw := dp.NewNeedlemanWunsch(a, b)
	cfg := core.Config{
		Slaves: 2, Threads: 3,
		ProcPartition:   dag.Square(13),
		ThreadPartition: dag.Square(5),
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(nw.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := nw.Sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("nw cell (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if al := nw.Traceback(got); al.Score != nw.GlobalScore(want) {
		t.Fatalf("traceback score %d != %d", al.Score, nw.GlobalScore(want))
	}
}
