package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// testConfig returns a small but genuinely multilevel deployment.
func testConfig() core.Config {
	return core.Config{
		Slaves:          3,
		Threads:         2,
		ProcPartition:   dag.Square(16),
		ThreadPartition: dag.Square(5),
		RunTimeout:      60 * time.Second,
	}
}

func equalMatrices(t *testing.T, name string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: cell (%d,%d) = %d, want %d", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRunEditDistanceMatchesSequential(t *testing.T) {
	a := dp.RandomDNA(61, 1)
	b := dp.RandomDNA(53, 2)
	e := dp.NewEditDistance(a, b)
	res, err := core.Run(e.Problem(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist", res.Matrix(), e.Sequential())
	if res.Stats.Tasks == 0 || res.Stats.SubTasks == 0 {
		t.Fatalf("implausible stats: %v", res.Stats)
	}
}

func TestRunSWGGMatchesSequential(t *testing.T) {
	a := dp.RandomDNA(48, 3)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, 4)
	s := dp.NewSWGG(a, b)
	res, err := core.Run(s.Problem(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "swgg", res.Matrix(), s.Sequential())
}

func TestRunNussinovMatchesSequential(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(50, 5))
	res, err := core.Run(nu.Problem(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "nussinov", res.Matrix(), nu.Sequential())
}

func TestRunKnapsackMatchesSequential(t *testing.T) {
	k := dp.NewKnapsack(24, 60, 6)
	cfg := testConfig()
	cfg.ProcPartition = dag.Size{Rows: 6, Cols: 20}
	cfg.ThreadPartition = dag.Size{Rows: 2, Cols: 7}
	res, err := core.Run(k.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "knapsack", res.Matrix(), k.Sequential())
}

func TestRunDominanceMatchesSequential(t *testing.T) {
	d := dp.NewDominance43(20, 7)
	cfg := testConfig()
	cfg.ProcPartition = dag.Square(6)
	cfg.ThreadPartition = dag.Square(2)
	res, err := core.Run(d.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "dominance", res.Matrix(), d.Sequential())
}

func TestRunMatrixChainMatchesSequential(t *testing.T) {
	m := dp.NewMatrixChain(40, 2, 40, 8)
	cfg := testConfig()
	cfg.ProcPartition = dag.Square(12)
	cfg.ThreadPartition = dag.Square(4)
	res, err := core.Run(m.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Matrix()
	want := m.Sequential()
	for i := range want {
		for j := i; j < len(want[i]); j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("matrixchain cell (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// The runtime must be correct for every geometry corner: partitions that
// do not divide the matrix, single-row/column grids, partitions larger
// than the matrix, one slave, one thread.
func TestRunGeometryCorners(t *testing.T) {
	a := dp.RandomDNA(23, 9)
	b := dp.RandomDNA(31, 10)
	e := dp.NewEditDistance(a, b)
	want := e.Sequential()
	configs := []core.Config{
		{Slaves: 1, Threads: 1, ProcPartition: dag.Square(23), ThreadPartition: dag.Square(23)}, // single block
		{Slaves: 2, Threads: 1, ProcPartition: dag.Size{Rows: 7, Cols: 9}, ThreadPartition: dag.Size{Rows: 3, Cols: 2}},
		{Slaves: 2, Threads: 3, ProcPartition: dag.Size{Rows: 23, Cols: 4}, ThreadPartition: dag.Size{Rows: 5, Cols: 4}}, // single block row
		{Slaves: 4, Threads: 2, ProcPartition: dag.Size{Rows: 1, Cols: 31}, ThreadPartition: dag.Size{Rows: 1, Cols: 1}}, // degenerate 1-row proc blocks
		{Slaves: 3, Threads: 2, ProcPartition: dag.Square(100), ThreadPartition: dag.Square(100)},                        // partitions larger than matrix
	}
	for k, cfg := range configs {
		cfg.RunTimeout = 60 * time.Second
		res, err := core.Run(e.Problem(), cfg)
		if err != nil {
			t.Fatalf("config %d: %v", k, err)
		}
		equalMatrices(t, "editdist", res.Matrix(), want)
	}
}

func TestRunTriangularGeometryCorners(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(37, 11))
	want := nu.Sequential()
	configs := []core.Config{
		{Slaves: 2, Threads: 2, ProcPartition: dag.Size{Rows: 5, Cols: 8}, ThreadPartition: dag.Size{Rows: 2, Cols: 3}}, // non-square blocks straddling diagonal
		{Slaves: 1, Threads: 4, ProcPartition: dag.Square(37), ThreadPartition: dag.Square(4)},                          // whole triangle on one slave
		{Slaves: 3, Threads: 1, ProcPartition: dag.Square(1), ThreadPartition: dag.Square(1)},                           // cell-granularity DAG
	}
	for k, cfg := range configs {
		cfg.RunTimeout = 120 * time.Second
		res, err := core.Run(nu.Problem(), cfg)
		if err != nil {
			t.Fatalf("config %d: %v", k, err)
		}
		equalMatrices(t, "nussinov", res.Matrix(), want)
	}
}

func TestRunBlockCyclicPolicyCorrect(t *testing.T) {
	a := dp.RandomDNA(40, 12)
	b := dp.RandomDNA(40, 13)
	s := dp.NewSWGG(a, b)
	want := s.Sequential()
	for _, blockCols := range []int{1, 2} {
		cfg := testConfig()
		cfg.Policy = core.PolicyBlockCyclic
		cfg.BCWBlockCols = blockCols
		res, err := core.Run(s.Problem(), cfg)
		if err != nil {
			t.Fatalf("blockCols=%d: %v", blockCols, err)
		}
		equalMatrices(t, "swgg-bcw", res.Matrix(), want)
	}
}

func TestRunBlockCyclicTriangular(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(33, 14))
	cfg := testConfig()
	cfg.Policy = core.PolicyBlockCyclic
	cfg.ProcPartition = dag.Square(8)
	cfg.ThreadPartition = dag.Square(3)
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "nussinov-bcw", res.Matrix(), nu.Sequential())
}

func TestRunValidation(t *testing.T) {
	e := dp.NewEditDistance([]byte("AC"), []byte("GT"))
	p := e.Problem()
	if _, err := core.Run(p, core.Config{Slaves: 0, Threads: 1}); err == nil {
		t.Error("zero slaves accepted")
	}
	if _, err := core.Run(p, core.Config{Slaves: 1, Threads: 0}); err == nil {
		t.Error("zero threads accepted")
	}
	bad := p
	bad.Kernel = nil
	if _, err := core.Run(bad, testConfig()); err == nil {
		t.Error("nil kernel accepted")
	}
	bad = p
	bad.Codec = nil
	if _, err := core.Run(bad, testConfig()); err == nil {
		t.Error("nil codec accepted")
	}
}

func TestConfigCores(t *testing.T) {
	// Paper accounting: N + (N-1) + ct*(N-1) with N = Slaves+1.
	cfg := core.Config{Slaves: 3, Threads: 5}
	if got := cfg.Cores(); got != 4+3+15 {
		t.Fatalf("Cores = %d, want 22", got)
	}
}

func TestConfigForCores(t *testing.T) {
	// Experiment_2_4: 2 nodes, 4 cores -> 1 compute thread on 1 node.
	cfg, err := core.ConfigForCores(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Slaves != 1 || cfg.Threads != 1 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Cores() != 4 {
		t.Fatalf("round trip cores = %d", cfg.Cores())
	}
	// Experiment_5_53: 5 nodes, 53 cores -> 44 compute threads over 4 nodes.
	cfg, err = core.ConfigForCores(5, 53)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Slaves != 4 || cfg.Threads != 11 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := core.ConfigForCores(2, 3); err == nil {
		t.Error("too few cores accepted")
	}
	if _, err := core.ConfigForCores(1, 10); err == nil {
		t.Error("single node accepted")
	}
	if _, err := core.ConfigForCores(3, 8); err == nil {
		t.Error("non-divisible compute cores accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if core.PolicyDynamic.String() != "dynamic" || core.PolicyBlockCyclic.String() != "bcw" {
		t.Fatal("policy names wrong")
	}
}

func TestStatsString(t *testing.T) {
	s := core.Stats{Tasks: 3, Elapsed: time.Second}
	if str := s.String(); str == "" {
		t.Fatal("empty stats string")
	}
}
