package core_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/matrix"
)

// With ReclaimBlocks the master must release consumed blocks and still
// produce a correct final corner; the peak block count stays well below
// the grid size.
func TestReclaimBlocksWavefront(t *testing.T) {
	a := dp.RandomDNA(120, 81)
	b := dp.RandomDNA(120, 82)
	e := dp.NewEditDistance(a, b)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(12), // 10x10 grid
		ThreadPartition: dag.Square(4),
		ReclaimBlocks:   true,
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksReclaimed == 0 {
		t.Fatalf("nothing reclaimed: %+v", res.Stats)
	}
	if res.Stats.PeakBlocks >= 100 {
		t.Fatalf("peak blocks %d not below grid size 100", res.Stats.PeakBlocks)
	}
	// The bottom-right block is consumed by nobody and must survive with
	// the correct distance.
	if got, want := res.Store.Cell(119, 119), e.Sequential()[119][119]; got != want {
		t.Fatalf("final cell %d != %d", got, want)
	}
	if res.Store.Len() >= 100 {
		t.Fatalf("store still holds %d blocks", res.Store.Len())
	}
}

// Reclamation must also be correct for patterns with wide data regions
// (triangular): blocks stay alive exactly as long as a consumer remains.
func TestReclaimBlocksTriangular(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(60, 83))
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		ReclaimBlocks:   true,
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Store.Cell(0, 59), nu.Sequential()[0][59]; got != want {
		t.Fatalf("final cell %d != %d", got, want)
	}
}

func TestCheckpointRestoreFullCycle(t *testing.T) {
	a := dp.RandomDNA(80, 84)
	b := dp.RandomDNA(80, 85)
	e := dp.NewEditDistance(a, b)
	base := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10), // 8x8 grid, 64 tasks
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}

	// First run: record a checkpoint.
	var ck bytes.Buffer
	cfg := base
	cfg.Checkpoint = &ck
	res1, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d", res1.Stats.Tasks)
	}
	full := ck.Bytes()

	// Simulate a crash partway: keep roughly half the checkpoint, torn
	// mid-record.
	cut := len(full) / 2
	partial := bytes.NewReader(full[:cut])

	cfg = base
	cfg.Restore = partial
	res2, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Restored == 0 {
		t.Fatal("nothing restored from checkpoint")
	}
	if res2.Stats.Restored+res2.Stats.Tasks != 64 {
		t.Fatalf("restored %d + computed %d != 64", res2.Stats.Restored, res2.Stats.Tasks)
	}
	if res2.Stats.Tasks >= 64 {
		t.Fatalf("restore saved no work: computed %d", res2.Stats.Tasks)
	}
	equalMatrices(t, "editdist-restore", res2.Matrix(), e.Sequential())
}

func TestRestoreCompleteCheckpointComputesNothing(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(40, 86))
	base := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(5),
		RunTimeout:      time.Minute,
	}
	var ck bytes.Buffer
	cfg := base
	cfg.Checkpoint = &ck
	if _, err := core.Run(nu.Problem(), cfg); err != nil {
		t.Fatal(err)
	}

	cfg = base
	cfg.Restore = bytes.NewReader(ck.Bytes())
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 0 {
		t.Fatalf("computed %d tasks despite complete checkpoint", res.Stats.Tasks)
	}
	equalMatrices(t, "nussinov-full-restore", res.Matrix(), nu.Sequential())
}

func TestCheckpointChaining(t *testing.T) {
	// A restored run with its own checkpoint must emit a self-contained
	// stream (restored records re-appended), so a second resume works.
	e := dp.NewEditDistance(dp.RandomDNA(60, 87), dp.RandomDNA(60, 88))
	base := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(5),
		RunTimeout:      time.Minute,
	}
	var ck1 bytes.Buffer
	cfg := base
	cfg.Checkpoint = &ck1
	if _, err := core.Run(e.Problem(), cfg); err != nil {
		t.Fatal(err)
	}
	half := ck1.Bytes()[:ck1.Len()/2]

	var ck2 bytes.Buffer
	cfg = base
	cfg.Restore = bytes.NewReader(half)
	cfg.Checkpoint = &ck2
	if _, err := core.Run(e.Problem(), cfg); err != nil {
		t.Fatal(err)
	}

	// Resume again from the second (complete) stream: zero computation.
	cfg = base
	cfg.Restore = bytes.NewReader(ck2.Bytes())
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 0 {
		t.Fatalf("computed %d tasks after chained checkpoint", res.Stats.Tasks)
	}
	equalMatrices(t, "editdist-chained", res.Matrix(), e.Sequential())
}

func TestRestoreRejectsForeignCheckpoint(t *testing.T) {
	// A checkpoint from a different problem geometry must be rejected,
	// not silently applied.
	e1 := dp.NewEditDistance(dp.RandomDNA(60, 89), dp.RandomDNA(60, 90))
	var ck bytes.Buffer
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(5),
		Checkpoint:      &ck,
		RunTimeout:      time.Minute,
	}
	if _, err := core.Run(e1.Problem(), cfg); err != nil {
		t.Fatal(err)
	}

	e2 := dp.NewEditDistance(dp.RandomDNA(30, 91), dp.RandomDNA(30, 92))
	cfg2 := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10), // 3x3 grid: vertex ids out of range
		ThreadPartition: dag.Square(5),
		Restore:         bytes.NewReader(ck.Bytes()),
		RunTimeout:      time.Minute,
	}
	if _, err := core.Run(e2.Problem(), cfg2); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

func TestReclaimWithCheckpointAndFaults(t *testing.T) {
	// All three mechanisms together: reclamation, checkpointing and a
	// crashed slave.
	e := dp.NewEditDistance(dp.RandomDNA(60, 93), dp.RandomDNA(60, 94))
	var ck bytes.Buffer
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		ReclaimBlocks:   true,
		Checkpoint:      &ck,
		TaskTimeout:     150 * time.Millisecond,
		CheckInterval:   20 * time.Millisecond,
		RunTimeout:      time.Minute,
		Faults:          core.FaultPlan{CrashOnTask: map[int]int{1: 2}},
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Store.Cell(59, 59), e.Sequential()[59][59]; got != want {
		t.Fatalf("final cell %d != %d", got, want)
	}
	if res.Stats.BlocksReclaimed == 0 || res.Stats.Redistributions == 0 {
		t.Fatalf("expected reclamation and redistribution: %+v", res.Stats)
	}
}

// Out-of-core mode: the master keeps only SpillBudget blocks in memory,
// spilling the rest to disk, and still produces a correct matrix.
func TestSpillStoreRun(t *testing.T) {
	a := dp.RandomDNA(100, 95)
	b := dp.RandomDNA(100, 96)
	e := dp.NewEditDistance(a, b)
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10), // 10x10 grid = 100 blocks
		ThreadPartition: dag.Square(5),
		SpillDir:        t.TempDir(),
		SpillBudget:     8,
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-spill", res.Matrix(), e.Sequential())
	ss, ok := res.Store.(*matrix.SpillStore[int32])
	if !ok {
		t.Fatalf("store is %T, want SpillStore", res.Store)
	}
	if ss.InMemory() > 8 {
		t.Fatalf("in-memory blocks %d exceed budget", ss.InMemory())
	}
	spills, loads := ss.IO()
	if spills == 0 || loads == 0 {
		t.Fatalf("expected spill traffic, got %d/%d", spills, loads)
	}
}

// Spill mode combined with a triangular pattern (wide gathers reload many
// spilled blocks) and reclamation.
func TestSpillStoreNussinovWithReclaim(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(60, 97))
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		SpillDir:        t.TempDir(),
		SpillBudget:     4,
		ReclaimBlocks:   true,
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Store.Cell(0, 59), nu.Sequential()[0][59]; got != want {
		t.Fatalf("final cell %d != %d", got, want)
	}
}
