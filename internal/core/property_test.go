package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/testseed"
)

// Property: for ANY geometry (matrix size, partition sizes, slave and
// thread counts), the parallel edit-distance matrix equals the sequential
// one. This is the runtime's central contract.
func TestRunMatchesSequentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64, n, pr, pc, tr, tc, slaves, threads uint8) bool {
		size := int(n%40) + 8
		a := dp.RandomDNA(size, seed)
		b := dp.RandomDNA(size, seed+1)
		e := dp.NewEditDistance(a, b)
		cfg := core.Config{
			Slaves:          int(slaves%4) + 1,
			Threads:         int(threads%4) + 1,
			ProcPartition:   dag.Size{Rows: int(pr%16) + 1, Cols: int(pc%16) + 1},
			ThreadPartition: dag.Size{Rows: int(tr%8) + 1, Cols: int(tc%8) + 1},
			RunTimeout:      2 * time.Minute,
		}
		res, err := core.Run(e.Problem(), cfg)
		if err != nil {
			t.Logf("size=%d cfg=%+v: %v", size, cfg, err)
			return false
		}
		got := res.Matrix()
		want := e.Sequential()
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Logf("size=%d cfg=%+v: cell (%d,%d) %d != %d", size, cfg, i, j, got[i][j], want[i][j])
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		// Seeded (instead of quick's wall-clock default) so a failing
		// geometry replays with the seed the failure log prints.
		Rand: rand.New(rand.NewSource(testseed.Seed(t, 1))),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The same property for the triangular pattern, whose block existence and
// data regions are the most intricate.
func TestNussinovMatchesSequentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64, n, pr, pc, tb uint8) bool {
		size := int(n%30) + 8
		nu := dp.NewNussinov(dp.RandomRNA(size, seed))
		cfg := core.Config{
			Slaves:          2,
			Threads:         2,
			ProcPartition:   dag.Size{Rows: int(pr%10) + 1, Cols: int(pc%10) + 1},
			ThreadPartition: dag.Size{Rows: int(tb%5) + 1, Cols: int(tb%4) + 1},
			RunTimeout:      2 * time.Minute,
		}
		res, err := core.Run(nu.Problem(), cfg)
		if err != nil {
			return false
		}
		got := res.Matrix()
		want := nu.Sequential()
		for i := range want {
			for j := i; j < len(want[i]); j++ {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 20,
		Rand:     rand.New(rand.NewSource(testseed.Seed(t, 2))),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Independent runs must not share state: several clusters in one process,
// concurrently.
func TestConcurrentIndependentRuns(t *testing.T) {
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			a := dp.RandomDNA(40, int64(100+k))
			b := dp.RandomDNA(40, int64(200+k))
			e := dp.NewEditDistance(a, b)
			cfg := core.Config{
				Slaves: 2, Threads: 2,
				ProcPartition:   dag.Square(10),
				ThreadPartition: dag.Square(4),
				RunTimeout:      2 * time.Minute,
			}
			res, err := core.Run(e.Problem(), cfg)
			if err != nil {
				errs <- err
				return
			}
			want := e.Sequential()
			got := res.Matrix()
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						errs <- err
						return
					}
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Determinism: the same problem and config produce the same matrix, no
// matter how scheduling interleaves.
func TestRunDeterministicAcrossSchedules(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(40, 300))
	cfg := core.Config{
		Slaves: 3, Threads: 3,
		ProcPartition:   dag.Square(7),
		ThreadPartition: dag.Square(3),
		RunTimeout:      time.Minute,
	}
	var first [][]int32
	for round := 0; round < 3; round++ {
		res, err := core.Run(nu.Problem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := res.Matrix()
		if first == nil {
			first = m
			continue
		}
		for i := range first {
			for j := range first[i] {
				if m[i][j] != first[i][j] {
					t.Fatalf("round %d: cell (%d,%d) differs", round, i, j)
				}
			}
		}
	}
}

// Dispatch accounting: without faults, dispatches == tasks == number of
// existing vertices, and no redistribution or stale results occur.
func TestStatsAccountingCleanRun(t *testing.T) {
	e := dp.NewEditDistance(dp.RandomDNA(48, 301), dp.RandomDNA(48, 302))
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(8), // 6x6 grid
		ThreadPartition: dag.Square(4), // 2x2 sub-grid per task
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Tasks != 36 || s.Dispatches != 36 {
		t.Fatalf("tasks/dispatches = %d/%d, want 36/36", s.Tasks, s.Dispatches)
	}
	if s.Redistributions != 0 || s.StaleResults != 0 || s.WorkerRestarts != 0 || s.SubRequeues != 0 {
		t.Fatalf("clean run shows recovery activity: %v", s)
	}
	if s.SubTasks != 36*4 {
		t.Fatalf("subtasks = %d, want 144", s.SubTasks)
	}
	if s.Messages == 0 || s.PayloadBytes == 0 || s.Elapsed <= 0 {
		t.Fatalf("traffic/elapsed not recorded: %v", s)
	}
}

// The static BCW policy must be exactly as correct as the dynamic one on
// arbitrary geometry (only performance differs).
func TestBlockCyclicMatchesSequentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64, n, pr, bc, slaves uint8) bool {
		size := int(n%32) + 8
		a := dp.RandomDNA(size, seed)
		b := dp.RandomDNA(size, seed+1)
		e := dp.NewEditDistance(a, b)
		cfg := core.Config{
			Slaves:          int(slaves%3) + 1,
			Threads:         2,
			ProcPartition:   dag.Size{Rows: int(pr%12) + 1, Cols: int(pr%9) + 2},
			ThreadPartition: dag.Size{Rows: 3, Cols: 3},
			Policy:          core.PolicyBlockCyclic,
			BCWBlockCols:    int(bc%3) + 1,
			RunTimeout:      2 * time.Minute,
		}
		res, err := core.Run(e.Problem(), cfg)
		if err != nil {
			return false
		}
		got := res.Matrix()
		want := e.Sequential()
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
