package core_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// End-to-end over the real TCP transport: master and slaves as separate
// goroutines connected by actual sockets (the multi-process deployment's
// wire path, minus process isolation).
func TestRunOverTCP(t *testing.T) {
	const addr = "127.0.0.1:39301"
	const workers = 2

	a := dp.RandomDNA(60, 51)
	b := dp.RandomDNA(60, 52)
	e := dp.NewEditDistance(a, b)
	prob := e.Problem()
	cfg := core.Config{
		Threads:         2,
		ProcPartition:   dag.Square(15),
		ThreadPartition: dag.Square(5),
		RunTimeout:      time.Minute,
	}

	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := comm.DialWorker(addr, r, workers, 10*time.Second)
			if err != nil {
				t.Errorf("worker %d dial: %v", r, err)
				return
			}
			defer tr.Close()
			if err := core.RunSlave(prob, cfg, tr); err != nil {
				t.Errorf("worker %d: %v", r, err)
			}
		}(r)
	}

	tr, err := comm.ListenMaster(addr, workers, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	res, err := core.RunMaster(prob, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	equalMatrices(t, "editdist-tcp", res.Matrix(), e.Sequential())
	if res.Stats.Tasks != 16 {
		t.Fatalf("tasks = %d, want 16", res.Stats.Tasks)
	}
}

// The triangular pattern ships larger, irregular data regions; exercise it
// over TCP too.
func TestNussinovOverTCP(t *testing.T) {
	const addr = "127.0.0.1:39302"
	const workers = 3

	nu := dp.NewNussinov(dp.RandomRNA(48, 53))
	prob := nu.Problem()
	cfg := core.Config{
		Threads:         2,
		ProcPartition:   dag.Square(12),
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}

	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := comm.DialWorker(addr, r, workers, 10*time.Second)
			if err != nil {
				t.Errorf("worker %d dial: %v", r, err)
				return
			}
			defer tr.Close()
			if err := core.RunSlave(prob, cfg, tr); err != nil {
				t.Errorf("worker %d: %v", r, err)
			}
		}(r)
	}

	tr, err := comm.ListenMaster(addr, workers, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	res, err := core.RunMaster(prob, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	equalMatrices(t, "nussinov-tcp", res.Matrix(), nu.Sequential())
}
