package core

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/matrix"
)

// TaskRunner executes single processor-level sub-tasks outside a full
// slave loop: decode the shipped data region, run the thread-level worker
// pool over the block (computeBlock, with its slave DAG, overtime queue
// and panic recovery), and encode the result. It is the compute engine of
// the elastic cluster worker (internal/cluster), which owns its own
// message protocol but must produce bit-identical blocks to a fixed-mode
// slave.
type TaskRunner[T any] struct {
	p    Problem[T]
	cfg  Config
	geom dag.Geometry
	ctrs *counters
}

// NewTaskRunner validates the problem and configuration (defaults
// applied as in a full run; Slaves is irrelevant here and forced valid)
// and prepares the processor-level geometry.
func NewTaskRunner[T any](p Problem[T], cfg Config) (*TaskRunner[T], error) {
	if cfg.Slaves < 1 {
		cfg.Slaves = 1
	}
	cfg, err := prepare(p, cfg)
	if err != nil {
		return nil, err
	}
	return &TaskRunner[T]{
		p:    p,
		cfg:  cfg,
		geom: dag.MatrixGeometry(p.Size, cfg.ProcPartition),
		ctrs: &counters{},
	}, nil
}

// NumTasks returns how many processor-level sub-tasks the partitioned
// problem has (grid cells, holes included).
func (r *TaskRunner[T]) NumTasks() int { return r.geom.Grid.Cells() }

// Run executes vertex with the given encoded data region and returns the
// encoded output block.
func (r *TaskRunner[T]) Run(vertex int32, payload []byte) ([]byte, error) {
	if vertex < 0 || int(vertex) >= r.NumTasks() {
		return nil, fmt.Errorf("core: task vertex %d outside grid %v", vertex, r.geom.Grid)
	}
	inputs, err := matrix.DecodeBlocks(r.p.Codec, payload)
	if err != nil {
		return nil, fmt.Errorf("core: decoding data region of vertex %d: %w", vertex, err)
	}
	rect := r.geom.Rect(r.geom.PosOf(vertex))
	out := computeBlock(r.p, r.cfg, rect, inputs, nil, vertex, r.ctrs)
	return matrix.EncodeBlocks(r.p.Codec, []*matrix.Block[T]{out})
}

// SubTasks returns the number of thread-level sub-sub-tasks executed so
// far (duplicates from timeout re-pushes included).
func (r *TaskRunner[T]) SubTasks() int64 { return r.ctrs.subTasks.Load() }
