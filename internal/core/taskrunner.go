package core

import (
	"fmt"

	"repro/internal/cas"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// TaskRunner executes single processor-level sub-tasks outside a full
// slave loop: decode the shipped data region, run the thread-level worker
// pool over the block (computeBlock, with its slave DAG, overtime queue
// and panic recovery), and encode the result. It is the compute engine of
// the elastic cluster worker (internal/cluster), which owns its own
// message protocol but must produce bit-identical blocks to a fixed-mode
// slave.
type TaskRunner[T any] struct {
	p    Problem[T]
	cfg  Config
	geom dag.Geometry
	ctrs *counters

	// seen, when set, is the worker's content-addressed block cache for
	// the keyed wire format: shipped blocks and computed outputs are
	// recorded under their content keys, and reference records resolve
	// against it. Shared across a process's runners and only touched
	// from the goroutine that calls Run, so it needs no lock.
	seen map[[32]byte]*matrix.Block[T]
}

// NewTaskRunner validates the problem and configuration (defaults
// applied as in a full run; Slaves is irrelevant here and forced valid)
// and prepares the processor-level geometry.
func NewTaskRunner[T any](p Problem[T], cfg Config) (*TaskRunner[T], error) {
	if cfg.Slaves < 1 {
		cfg.Slaves = 1
	}
	cfg, err := prepare(p, cfg)
	if err != nil {
		return nil, err
	}
	return &TaskRunner[T]{
		p:    p,
		cfg:  cfg,
		geom: dag.MatrixGeometry(p.Size, cfg.ProcPartition),
		ctrs: &counters{},
	}, nil
}

// NumTasks returns how many processor-level sub-tasks the partitioned
// problem has (grid cells, holes included).
func (r *TaskRunner[T]) NumTasks() int { return r.geom.Grid.Cells() }

// SetBlockCache hands the runner a content-addressed block map, shared
// with the process's other runners, enabling the keyed wire format: a
// task payload in that format records its shipped blocks and resolves
// its reference records against the map, and the computed output is
// recorded under its content key so the master can send a reference the
// next time any job needs an identical block. The caller owns the map's
// lifetime and must confine it to the goroutine calling Run.
func (r *TaskRunner[T]) SetBlockCache(seen map[[32]byte]*matrix.Block[T]) {
	r.seen = seen
}

// Run executes vertex with the given encoded data region and returns the
// encoded output block.
func (r *TaskRunner[T]) Run(vertex int32, payload []byte) ([]byte, error) {
	if vertex < 0 || int(vertex) >= r.NumTasks() {
		return nil, fmt.Errorf("core: task vertex %d outside grid %v", vertex, r.geom.Grid)
	}
	var resolve func([32]byte) (*matrix.Block[T], bool)
	var record func([32]byte, *matrix.Block[T])
	if r.seen != nil {
		resolve = func(k [32]byte) (*matrix.Block[T], bool) {
			b, ok := r.seen[k]
			return b, ok
		}
		record = func(k [32]byte, b *matrix.Block[T]) {
			r.seen[k] = b
		}
	}
	inputs, keyed, err := matrix.DecodeBlocksAny(r.p.Codec, payload, resolve, record)
	if err != nil {
		return nil, fmt.Errorf("core: decoding data region of vertex %d: %w", vertex, err)
	}
	rect := r.geom.Rect(r.geom.PosOf(vertex))
	out := computeBlock(r.p, r.cfg, rect, inputs, nil, vertex, r.ctrs)
	encoded, err := matrix.EncodeBlocks(r.p.Codec, []*matrix.Block[T]{out})
	if err == nil && keyed && r.seen != nil {
		// A keyed task means the master tracks this worker's holdings by
		// content key; mirror its bookkeeping by recording the output.
		r.seen[[32]byte(cas.PayloadKey(encoded))] = out
	}
	return encoded, err
}

// SubTasks returns the number of thread-level sub-sub-tasks executed so
// far (duplicates from timeout re-pushes included).
func (r *TaskRunner[T]) SubTasks() int64 { return r.ctrs.subTasks.Load() }
