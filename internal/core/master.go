package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tune"
)

// master is the master part of the runtime (Figs. 9-10 of the paper): it
// owns the master DAG Data Driven Model, the master worker pool with one
// worker goroutine per slave node, the sub-task register table, the master
// overtime queue and the fault-tolerance goroutine.
type master[T any] struct {
	p   Problem[T]
	cfg Config
	tr  comm.Transport

	geom    dag.Geometry
	graph   *dag.Graph
	parser  *dag.Parser
	disp    sched.Dispatcher
	store   matrix.BlockStore[T]
	reg     *sched.RegisterTable
	ot      *sched.OvertimeQueue
	ctrs    *counters
	leases  *sched.LeaseTable
	profile *sched.RuntimeProfile

	idle []chan struct{} // indexed by slave rank (1..Slaves)

	// waiting[s] is set while slave s's sender is blocked in the
	// dispatcher: the slave is idle with nothing computable — the
	// starvation signal the work-stealing path reacts to.
	waiting []atomic.Bool

	// Speculation bookkeeping, mirroring the elastic master: specPending
	// marks vertices flagged for a backup dispatch; backupOf remembers
	// the live backup attempt per vertex for won/wasted classification.
	specMu      sync.Mutex
	specPending map[int32]bool
	backupOf    map[int32]int32

	// uses[v] counts the not-yet-finished sub-tasks whose data region
	// includes block v; when ReclaimBlocks is set and the count drops to
	// zero the block is released (only touched from the recv loop and
	// the restore replay, so unsynchronized).
	uses []int32
	ckpt *checkpoint.Writer

	// known[s][v] records that slave s holds block v (delta shipping):
	// either it was shipped there or the slave computed it. Guarded by
	// knownMu (senders and the recv loop both touch it).
	knownMu sync.Mutex
	known   [][]bool

	// Cross-job memoization (Config.Cache). resultKey[v] is the content
	// key of v's committed payload; entries are written by the recv loop
	// (and the restore replay) before the dispatcher publishes v's
	// successors, so senders reading a completed dependency's key are
	// ordered behind the write by the dispatcher's own lock. peers[s],
	// present when DeltaShipping is also on, is slave s's known-set
	// generalized to content keys — issued by the store so wire-layer
	// hits and misses land in its metrics.
	cache     *cas.Store
	cacheSpec string
	resultKey []cas.Key
	peers     []*cas.PeerSet

	// tuner is the self-tuning controller, non-nil iff Config.Auto.
	// hungers accumulates starved-sender observations per control tick;
	// only the fault-tolerance loop touches it.
	tuner   *tune.Controller
	hungers int64

	done     chan struct{}
	doneOnce sync.Once
	errMu    sync.Mutex
	err      error
}

// Speculation tuning shared with the elastic master's defaults: an attempt
// is a straggler when it has been running longer than specMultiplier times
// the specQuantile of observed runtimes, judged only once specMinSamples
// completions have warmed the profile.
const (
	specQuantile   = 0.95
	specMultiplier = 2
	specMinSamples = 8
)

// runMaster executes the master part over transport tr and returns the
// completed matrix store. cfg must already have defaults applied.
// Cancelling ctx finishes the run with ctx's error.
func runMaster[T any](ctx context.Context, p Problem[T], cfg Config, tr comm.Transport, ctrs *counters) (*Result[T], error) {
	geom := dag.MatrixGeometry(p.Size, cfg.ProcPartition)
	graph := dag.Build(p.Kernel.Pattern(), geom)
	var store matrix.BlockStore[T] = matrix.NewStore[T](geom)
	if cfg.SpillDir != "" {
		ss, err := matrix.NewSpillStore(geom, p.Codec, cfg.SpillDir, cfg.SpillBudget)
		if err != nil {
			return nil, err
		}
		store = ss
	}
	m := &master[T]{
		p:           p,
		cfg:         cfg,
		tr:          tr,
		geom:        geom,
		graph:       graph,
		parser:      dag.NewParser(graph),
		store:       store,
		reg:         sched.NewRegisterTable(),
		ot:          sched.NewOvertimeQueue(),
		ctrs:        ctrs,
		leases:      sched.NewLeaseTable(),
		profile:     sched.NewRuntimeProfile(0),
		specPending: make(map[int32]bool),
		backupOf:    make(map[int32]int32),
		idle:        make([]chan struct{}, cfg.Slaves+1),
		waiting:     make([]atomic.Bool, cfg.Slaves+1),
		done:        make(chan struct{}),
	}
	if cfg.Auto {
		m.tuner = tune.New(tune.DefaultLimits(), cfg.Batch, specQuantile, specMultiplier, specMinSamples)
	}
	switch cfg.Policy {
	case PolicyBlockCyclic:
		m.disp = sched.NewBlockCyclic(graph, cfg.Slaves, cfg.BCWBlockCols)
	case PolicyAffinity:
		m.disp = newAffinityDispatcher(m.affinityScore)
	default:
		m.disp = sched.NewDynamic()
	}
	for s := 1; s <= cfg.Slaves; s++ {
		m.idle[s] = make(chan struct{}, 4)
	}
	if cfg.ReclaimBlocks {
		m.uses = make([]int32, len(graph.Verts))
		for _, id := range graph.Existing() {
			for _, d := range graph.Vertex(id).DataPre {
				m.uses[d]++
			}
		}
	}
	if cfg.Checkpoint != nil {
		m.ckpt = checkpoint.NewWriter(cfg.Checkpoint)
	}
	if cfg.DeltaShipping {
		m.known = make([][]bool, cfg.Slaves+1)
		for s := 1; s <= cfg.Slaves; s++ {
			m.known[s] = make([]bool, len(graph.Verts))
		}
	}
	if cfg.Cache != nil && cfg.CacheKey != "" {
		m.cache = cfg.Cache
		m.cacheSpec = cfg.CacheKey
		m.resultKey = make([]cas.Key, len(graph.Verts))
		if m.known != nil {
			m.peers = make([]*cas.PeerSet, cfg.Slaves+1)
			for s := 1; s <= cfg.Slaves; s++ {
				m.peers[s] = m.cache.NewPeerSet()
			}
		}
	}
	if err := m.restore(); err != nil {
		return nil, err
	}

	if cfg.RunTimeout > 0 {
		timer := time.AfterFunc(cfg.RunTimeout, func() {
			m.finish(fmt.Errorf("core: run exceeded RunTimeout %v with %d sub-tasks remaining", cfg.RunTimeout, m.parser.Remaining()))
		})
		defer timer.Stop()
	}

	// Cancellation watch: the master loop's select lives in the sender and
	// receive goroutines, so cancellation is injected through finish, which
	// closes m.done and the dispatcher — every sender then drains with an
	// End signal and the run unwinds.
	if cancel := ctx.Done(); cancel != nil {
		go func() {
			select {
			case <-cancel:
				m.finish(ctx.Err())
			case <-m.done:
			}
		}()
	}

	var ftWG sync.WaitGroup
	ftWG.Add(1)
	go func() {
		defer ftWG.Done()
		m.faultToleranceLoop()
	}()

	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		m.recvLoop()
	}()

	var senders sync.WaitGroup
	for s := 1; s <= cfg.Slaves; s++ {
		senders.Add(1)
		go func(s int) {
			defer senders.Done()
			m.senderLoop(s)
		}(s)
	}
	senders.Wait()

	// All End signals sent; shut the endpoint to unblock the receive
	// loop, then collect the helpers.
	m.tr.Close()
	//lint:ignore ctx-select bounded join: tr.Close() above forces recvLoop's Recv to error out, and cancellation already flowed through finish — selecting on ctx here would leak the loop
	<-recvDone
	ftWG.Wait()

	if ss, ok := m.store.(*matrix.SpillStore[T]); ok {
		spills, loads := ss.IO()
		ctrs.spills.Store(spills)
		ctrs.spillLoads.Store(loads)
	}

	m.errMu.Lock()
	err := m.err
	m.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	return &Result[T]{Store: m.store}, nil
}

// finish ends the run exactly once, recording err (nil for success).
func (m *master[T]) finish(err error) {
	m.doneOnce.Do(func() {
		m.errMu.Lock()
		m.err = err
		m.errMu.Unlock()
		close(m.done)
		m.disp.Close()
	})
}

// senderLoop is one worker thread of the master worker pool: it waits for
// its slave to be idle, takes a computable sub-task from the dispatcher,
// registers it, ships the data region, and arms the overtime watch
// (§V.B steps d-e).
func (m *master[T]) senderLoop(s int) {
	worker := s - 1
	for {
		select {
		case <-m.idle[s]:
		case <-m.done:
			m.sendEnd(s)
			return
		}
		for {
			// The cap is re-read per draw: under Auto the controller
			// moves it while the run is in flight.
			if cap := m.batchCap(); cap > 1 {
				m.waiting[s].Store(true)
				ids, ok := m.disp.NextBatch(worker, cap)
				m.waiting[s].Store(false)
				if !ok {
					m.sendEnd(s)
					return
				}
				if m.dispatchBatch(s, worker, ids) {
					break
				}
			} else {
				m.waiting[s].Store(true)
				v, ok := m.disp.Next(worker)
				m.waiting[s].Store(false)
				if !ok {
					m.sendEnd(s)
					return
				}
				if m.dispatch(s, worker, v) {
					break
				}
			}
			// Every drawn vertex finished while queued for
			// redistribution (its result raced the timeout); take the
			// next one without consuming another idle token.
		}
	}
}

func (m *master[T]) sendEnd(s int) {
	_ = m.tr.Send(s, comm.Message{Kind: comm.KindEnd})
}

// prepareEntry registers vertex v for slave s and builds its wire entry:
// attempt stamp plus the encoded missing part of the data region. ok is
// false when the vertex finished while queued for redistribution (its
// result raced the timeout) or when encoding failed — the latter also
// aborts the run through finish, so the caller's dispatcher drains.
//
// A vertex flagged by the speculation pass is dispatched as a backup: a
// concurrent attempt that does not supersede the original, so whichever
// result lands first wins and the loser is dropped by stamp.
func (m *master[T]) prepareEntry(s, worker int, v int32, deadline time.Time) (comm.TaskEntry, bool) {
	// Register first: if the vertex finished while queued for
	// redistribution we must bail out before touching the known-set,
	// or unsent blocks would be recorded as held by the slave.
	attempt, ok, backup := m.register(s, v)
	if !ok {
		return comm.TaskEntry{}, false
	}
	deps := m.graph.Vertex(v).DataPre
	if m.known != nil {
		deps = m.filterKnown(s, deps)
	}
	positions := make([]dag.Pos, len(deps))
	for k, d := range deps {
		positions[k] = m.geom.PosOf(d)
	}
	blocks := m.store.Gather(positions)
	m.ctrs.blocksShipped.Add(int64(len(blocks)))
	payload, err := matrix.EncodeBlocks(m.p.Codec, blocks)
	if err != nil {
		m.finish(fmt.Errorf("core: encoding data region of vertex %d: %w", v, err))
		return comm.TaskEntry{}, false
	}
	if backup {
		m.leases.Add(v, s, attempt, time.Now())
		m.ot.AddConcurrent(v, attempt, deadline)
		m.ctrs.speculated.Add(1)
		m.cfg.Trace.Speculate(worker, v)
	} else {
		m.leases.Grant(v, s, attempt, time.Now())
		m.ot.Add(v, attempt, deadline)
	}
	m.cfg.Trace.TaskStart(worker, v)
	m.ctrs.dispatches.Add(1)
	return comm.TaskEntry{Vertex: v, Attempt: attempt, Payload: payload}, true
}

// register claims an attempt of v for slave s. For an ordinary draw it is
// reg.Register; for a vertex flagged by the speculation pass it issues a
// concurrent backup attempt instead — unless the drawing slave already
// holds a lease on v (it would be backing itself up), in which case the
// flag is dropped and the fault-tolerance loop may re-flag the vertex on
// its next tick.
func (m *master[T]) register(s int, v int32) (attempt int32, ok, backup bool) {
	m.specMu.Lock()
	pending := m.specPending[v]
	delete(m.specPending, v)
	m.specMu.Unlock()
	if !pending {
		a, ok := m.reg.Register(v)
		return a, ok, false
	}
	for _, l := range m.leases.Holders(v) {
		if l.Worker == s {
			return 0, false, false
		}
	}
	a, ok := m.reg.RegisterBackup(v)
	if !ok {
		// The original finished, or was cancelled, while the flag waited
		// in the ready queue; an uncovered unfinished vertex is always
		// re-dispatched through the normal requeue path, so nothing is
		// lost by skipping.
		return 0, false, false
	}
	m.specMu.Lock()
	m.backupOf[v] = a
	m.specMu.Unlock()
	return a, true, true
}

// dispatch sends vertex v to slave s. It returns false when the vertex
// turned out to be already finished (a redistribution raced its result).
func (m *master[T]) dispatch(s, worker int, v int32) bool {
	entry, ok := m.prepareEntry(s, worker, v, time.Now().Add(m.cfg.TaskTimeout))
	if !ok {
		return false
	}
	m.ctrs.taskBytes.Add(int64(len(entry.Payload)))
	m.cfg.Trace.Dispatch(worker, 1, len(entry.Payload))
	if err := m.tr.Send(s, comm.Message{
		Kind: comm.KindTask, Vertex: entry.Vertex, Attempt: entry.Attempt, Payload: entry.Payload,
	}); err != nil && !errors.Is(err, comm.ErrClosed) {
		m.finish(fmt.Errorf("core: sending task %d to slave %d: %w", v, s, err))
	}
	return true
}

// dispatchBatch ships the drained vertices to slave s in one message. It
// returns false when every vertex turned out to be already finished, so
// the caller draws again without consuming another idle token.
func (m *master[T]) dispatchBatch(s, worker int, ids []int32) bool {
	now := time.Now()
	entries := make([]comm.TaskEntry, 0, len(ids))
	for _, v := range ids {
		// The slave executes batch entries sequentially, so entry i may
		// legitimately wait i task-times before starting: its overtime
		// deadline scales with its position in the batch, or every deep
		// entry of a healthy batch would be spuriously redistributed.
		deadline := now.Add(m.cfg.TaskTimeout * time.Duration(len(entries)+1))
		entry, ok := m.prepareEntry(s, worker, v, deadline)
		if !ok {
			continue
		}
		entries = append(entries, entry)
	}
	if len(entries) == 0 {
		return false
	}
	bytes := 0
	for _, e := range entries {
		bytes += len(e.Payload)
	}
	m.ctrs.taskBytes.Add(int64(bytes))
	m.cfg.Trace.Dispatch(worker, len(entries), bytes)
	var msg comm.Message
	if len(entries) == 1 {
		// A batch of one is the classic protocol message, byte for byte.
		msg = comm.Message{Kind: comm.KindTask, Vertex: entries[0].Vertex, Attempt: entries[0].Attempt, Payload: entries[0].Payload}
	} else {
		m.ctrs.batchMessages.Add(1)
		msg = comm.Message{Kind: comm.KindTaskBatch, Batch: entries}
	}
	if err := m.tr.Send(s, msg); err != nil && !errors.Is(err, comm.ErrClosed) {
		m.finish(fmt.Errorf("core: sending %d-task batch to slave %d: %w", len(entries), s, err))
	}
	return true
}

// recvLoop is the message-handling side of the master worker pool: idle
// announcements re-arm the per-slave senders; results update the register
// table, the store, and the DAG parser (§V.B steps f-h).
func (m *master[T]) recvLoop() {
	for {
		msg, err := m.tr.Recv()
		if err != nil {
			return
		}
		switch msg.Kind {
		case comm.KindIdle:
			m.signalIdle(msg.From)
		case comm.KindResult:
			m.applyResult(msg.From, msg.Vertex, msg.Attempt, msg.Payload)
			// More marks a partial flush of a still-executing batch:
			// re-arming the sender now would over-commit the slave.
			if !msg.More {
				m.signalIdle(msg.From)
			}
		case comm.KindResultBatch:
			for _, e := range msg.Batch {
				m.applyResult(msg.From, e.Vertex, e.Attempt, e.Payload)
			}
			if !msg.More {
				m.signalIdle(msg.From)
			}
		default:
			// A kind the thread-level protocol never sends means a
			// corrupted transport; fail the run rather than dropping
			// frames silently.
			m.finish(fmt.Errorf("core: master received unexpected %v frame from slave %d", msg.Kind, msg.From))
		}
	}
}

func (m *master[T]) signalIdle(s int) {
	if s < 1 || s >= len(m.idle) {
		return
	}
	select {
	case m.idle[s] <- struct{}{}:
	default:
	}
}

// filterKnown drops blocks slave s already holds and marks the remainder
// as held once this dispatch ships them. In cache mode the test runs
// against the slave's content-keyed PeerSet — the same decision keyed by
// content instead of vertex id, routed through the store so the skip
// shows up in the wire-layer metrics. m.known stays updated in both
// modes: the affinity policy scores against it.
func (m *master[T]) filterKnown(s int, deps []int32) []int32 {
	m.knownMu.Lock()
	defer m.knownMu.Unlock()
	out := make([]int32, 0, len(deps))
	for _, d := range deps {
		if m.peers != nil {
			if m.peers[s].Knows(m.resultKey[d]) {
				m.ctrs.blocksSkipped.Add(1)
				m.known[s][d] = true
				continue
			}
			m.peers[s].Note(m.resultKey[d])
			m.known[s][d] = true
			out = append(out, d)
			continue
		}
		if m.known[s][d] {
			m.ctrs.blocksSkipped.Add(1)
			continue
		}
		m.known[s][d] = true
		out = append(out, d)
	}
	return out
}

// blockKey derives vertex v's cross-job cache key: the run's spec digest,
// the block's cell rectangle, and the content keys of its predecessors'
// committed payloads. Only called once every predecessor has committed.
func (m *master[T]) blockKey(v int32) cas.Key {
	deps := m.graph.Vertex(v).DataPre
	preds := make([]cas.Key, len(deps))
	for i, d := range deps {
		preds[i] = m.resultKey[d]
	}
	r := m.geom.Rect(m.geom.PosOf(v))
	return cas.BlockKey(m.cacheSpec, r.Row0, r.Col0, r.Rows, r.Cols, preds)
}

// commit is the single write path for a completed block: store insert,
// content-key recording, cross-job cache write-through, and checkpoint
// append all happen here, so recovery log and cache can never diverge.
// Only called from the recv loop and the restore replay.
func (m *master[T]) commit(v int32, payload []byte, b *matrix.Block[T]) error {
	m.store.Put(m.geom.PosOf(v), b)
	if m.cache != nil {
		m.resultKey[v] = cas.PayloadKey(payload)
		m.cache.PutBlock(m.blockKey(v), payload)
	}
	if m.ckpt != nil {
		return m.ckpt.Append(v, payload)
	}
	return nil
}

// absorbCached drains the cross-job cache across newly computable
// vertices: a hit commits the stored block as if its result had just
// arrived — no lease drawn, no dispatch — and cascades into whatever it
// unlocks. The vertices that missed are returned for normal dispatch.
// Only called from the recv loop and restore, which own parser and store
// mutation.
func (m *master[T]) absorbCached(ids []int32) []int32 {
	if m.cache == nil {
		return ids
	}
	var miss []int32
	work := append([]int32(nil), ids...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		payload, ok := m.cache.GetBlock(m.blockKey(v), cas.LayerMaster)
		var b *matrix.Block[T]
		if ok {
			if blocks, err := matrix.DecodeBlocks(m.p.Codec, payload); err == nil && len(blocks) == 1 {
				b = blocks[0]
			}
		}
		if b == nil {
			// Miss — or a corrupt entry, which must degrade to recompute.
			m.ctrs.cacheMisses.Add(1)
			miss = append(miss, v)
			continue
		}
		m.ctrs.cacheHits.Add(1)
		if err := m.commit(v, payload, b); err != nil {
			m.finish(err)
			return miss
		}
		newly := m.parser.Complete(v)
		m.afterComplete(v)
		work = append(work, newly...)
	}
	return miss
}

// applyResult commits one computed vertex: register-table acceptance,
// store update, checkpoint append, DAG completion. It is the per-vertex
// core of result handling, shared by the single-result and batched paths.
func (m *master[T]) applyResult(from int, v, attempt int32, payload []byte) {
	if !m.reg.Accept(v, attempt) {
		// A late answer for a superseded attempt (§V.B step g): the
		// registration was cancelled on timeout, or a concurrent attempt
		// already won the speculative race, so the result is dropped.
		m.ctrs.staleResults.Add(1)
		return
	}
	m.ot.Remove(v)
	if l, ok := m.leases.Find(v, attempt); ok {
		m.profile.Observe(time.Since(l.Granted))
	}
	m.leases.Release(v)
	m.specMu.Lock()
	if backup, ok := m.backupOf[v]; ok {
		delete(m.backupOf, v)
		delete(m.specPending, v)
		if backup == attempt {
			m.ctrs.specWon.Add(1)
		} else {
			m.ctrs.specWasted.Add(1)
		}
	}
	m.specMu.Unlock()
	blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
	if err != nil || len(blocks) != 1 {
		m.finish(fmt.Errorf("core: bad result payload for vertex %d from slave %d: %v", v, from, err))
		return
	}
	if err := m.commit(v, payload, blocks[0]); err != nil {
		m.finish(err)
		return
	}
	if m.known != nil && from >= 1 && from < len(m.known) {
		// The computing slave now holds its own output block.
		m.knownMu.Lock()
		m.known[from][v] = true
		if m.peers != nil {
			m.peers[from].Note(m.resultKey[v])
		}
		m.knownMu.Unlock()
	}
	m.cfg.Trace.TaskEnd(from-1, v)
	m.ctrs.tasks.Add(1)
	newly := m.parser.Complete(v)
	m.afterComplete(v)
	newly = m.absorbCached(newly)
	m.reportProgress()
	m.disp.Ready(newly...)
	m.cfg.Trace.Ready(m.disp.ReadyCount())
	if m.parser.Finished() {
		m.finish(nil)
	}
}

// reportProgress surfaces completed/total processor-level sub-tasks to
// Config.Progress.
func (m *master[T]) reportProgress() {
	if m.cfg.Progress == nil {
		return
	}
	m.cfg.Progress(m.graph.N-m.parser.Remaining(), m.graph.N)
}

// afterComplete runs the memory-reclamation accounting for a finished
// vertex and updates the peak-storage statistic.
func (m *master[T]) afterComplete(v int32) {
	if n := int64(m.store.Len()); n > m.ctrs.peakBlocks.Load() {
		m.ctrs.peakBlocks.Store(n)
	}
	if m.uses == nil {
		return
	}
	for _, d := range m.graph.Vertex(v).DataPre {
		m.uses[d]--
		if m.uses[d] == 0 {
			m.store.Drop(m.geom.PosOf(d))
			m.ctrs.blocksReclaimed.Add(1)
		}
	}
}

// restore replays a checkpoint stream (Config.Restore): recorded sub-tasks
// are completed in file order — which is a valid execution order, see
// internal/checkpoint — and the remaining computable frontier is handed to
// the dispatcher. Without a restore stream the frontier is simply the DAG
// roots.
func (m *master[T]) restore() error {
	ready := make(map[int32]bool)
	for _, id := range m.parser.InitialReady() {
		ready[id] = true
	}
	if m.cfg.Restore != nil {
		n, err := checkpoint.Replay(m.cfg.Restore, func(v int32, payload []byte) error {
			if int(v) < 0 || int(v) >= len(m.graph.Verts) || !m.graph.Vertex(v).Exists {
				return fmt.Errorf("core: checkpoint names unknown vertex %d", v)
			}
			if !ready[v] {
				return fmt.Errorf("core: checkpoint record for vertex %d out of order", v)
			}
			blocks, err := matrix.DecodeBlocks(m.p.Codec, payload)
			if err != nil || len(blocks) != 1 {
				return fmt.Errorf("core: checkpoint payload for vertex %d: %v", v, err)
			}
			// commit re-records restored work so the new checkpoint
			// stream stays self-contained, and writes it through to the
			// cross-job cache — a restored run warms the cache exactly
			// like a computed one.
			if err := m.commit(v, payload, blocks[0]); err != nil {
				return err
			}
			delete(ready, v)
			for _, nv := range m.parser.Complete(v) {
				ready[nv] = true
			}
			m.afterComplete(v)
			return nil
		})
		if err != nil {
			return err
		}
		m.ctrs.restored.Add(int64(n))
	}
	frontier := make([]int32, 0, len(ready))
	for id := range ready {
		frontier = append(frontier, id)
	}
	frontier = m.absorbCached(frontier)
	m.reportProgress()
	m.disp.Ready(frontier...)
	if m.parser.Finished() {
		m.finish(nil)
	}
	return nil
}

// faultToleranceLoop is the master fault-tolerance thread: it expires
// overdue sub-tasks, cancels their registration and redistributes them
// (Fig. 10). When enabled it also runs the straggler-mitigation passes:
// flagging overlong attempts for speculative backups and rebalancing
// queued-but-undispatched backlog toward starved slaves. Neither pass
// applies under PolicyBlockCyclic, whose static ownership leaves no idle
// slave eligible to take another slave's work.
func (m *master[T]) faultToleranceLoop() {
	ticker := time.NewTicker(m.cfg.CheckInterval)
	defer ticker.Stop()
	mitigate := m.cfg.Policy != PolicyBlockCyclic
	// timeouts counts overtime expiries per vertex: the MaxAttempts guard
	// for poisoned tasks. Speculative backups bump the register table's
	// attempt stamp without indicting the task, so the stamp is no longer
	// the right measure.
	timeouts := make(map[int32]int)
	for {
		select {
		case <-m.done:
			return
		case now := <-ticker.C:
			for _, e := range m.ot.ExpireBefore(now) {
				m.leases.ReleaseAttempt(e.ID, e.Attempt)
				m.noteAttemptGone(e.ID, e.Attempt)
				timeouts[e.ID]++
				if timeouts[e.ID] >= m.cfg.MaxAttempts {
					m.finish(fmt.Errorf("core: sub-task %d timed out %d times (MaxAttempts); giving up", e.ID, timeouts[e.ID]))
					return
				}
				// Requeue only when no concurrent attempt still covers the
				// vertex: if one side of a speculative race expired, the
				// other still runs.
				if m.reg.CancelAttempt(e.ID, e.Attempt) == 0 {
					m.ctrs.redistributions.Add(1)
					m.disp.Requeue(e.ID)
				}
			}
			if m.cfg.Speculate && mitigate {
				m.maybeSpeculate()
			}
			if m.cfg.Steal && mitigate {
				m.maybeSteal()
			}
			if m.tuner != nil {
				m.tuneTick()
			}
		}
	}
}

// batchCap is the dispatch batch bound in effect right now: the
// controller's recommendation under Auto, the configured constant
// otherwise. Lock-free — senders read it on every draw.
func (m *master[T]) batchCap() int {
	if m.tuner != nil {
		return m.tuner.BatchCap()
	}
	return m.cfg.Batch
}

// specParams are the speculation thresholds in effect right now.
func (m *master[T]) specParams() (quantile, multiplier float64) {
	if m.tuner != nil {
		return m.tuner.SpecParams()
	}
	return specQuantile, specMultiplier
}

// tuneTick feeds the controller one observation of the run's counters
// and profile; recommendation changes land in the trace. Called from
// the fault-tolerance loop only.
func (m *master[T]) tuneTick() {
	for s := 1; s <= m.cfg.Slaves; s++ {
		if m.waiting[s].Load() && m.leases.Load(s) == 0 {
			m.hungers++
		}
	}
	sample := tune.Sample{
		Dispatches: m.ctrs.dispatches.Load(),
		TaskBytes:  m.ctrs.taskBytes.Load(),
		Hungers:    m.hungers,
		Steals:     m.ctrs.steals.Load(),
		SpecWon:    m.ctrs.specWon.Load(),
		SpecWasted: m.ctrs.specWasted.Load(),
	}
	if n := m.profile.Samples(); n > 0 {
		p50, _ := m.profile.Quantile(0.5)
		p95, _ := m.profile.Quantile(0.95)
		sample.ProfileP50, sample.ProfileP95, sample.ProfileSamples = p50, p95, n
	}
	if d := m.tuner.Tick(sample); d.Changed {
		m.cfg.Trace.Tune(d.BatchCap, d.Reason)
	}
}

// noteAttemptGone records the speculation-accounting consequence of one
// attempt of v dying (overtime expiry or a steal): a dead backup was
// wasted; a dead original turns its backup into the sole attempt, no
// longer a race to classify.
func (m *master[T]) noteAttemptGone(v, attempt int32) {
	m.specMu.Lock()
	if backup, ok := m.backupOf[v]; ok {
		delete(m.backupOf, v)
		if backup == attempt {
			m.ctrs.specWasted.Add(1)
		}
	}
	m.specMu.Unlock()
}

// maybeSpeculate flags in-flight attempts whose age exceeds the runtime
// profile's threshold for backup dispatch. Flagged vertices are pushed
// onto the ready stack; a starved sender draws them and register() turns
// the draw into a concurrent backup attempt. Speculation only fires when
// the ready queue is empty — while real work is queued, idle capacity
// should take that first.
func (m *master[T]) maybeSpeculate() {
	if m.disp.ReadyCount() > 0 {
		return
	}
	q, mult := m.specParams()
	threshold, ok := m.profile.Threshold(q, mult, m.cfg.CheckInterval, specMinSamples)
	if !ok {
		return // cold profile: not enough completions to judge stragglers
	}
	// At most one new backup per slave per tick keeps a burst of
	// stragglers from flooding the queue with speculative work.
	budget := m.cfg.Slaves
	var flagged []int32
	for _, l := range m.leases.OlderThan(time.Now().Add(-threshold)) {
		if budget == 0 {
			break
		}
		if m.reg.LiveAttempts(l.Vertex) != 1 {
			continue // already racing a backup
		}
		m.specMu.Lock()
		skip := m.specPending[l.Vertex]
		if !skip {
			m.specPending[l.Vertex] = true
		}
		m.specMu.Unlock()
		if skip {
			continue
		}
		flagged = append(flagged, l.Vertex)
		budget--
	}
	if len(flagged) > 0 {
		m.disp.Ready(flagged...)
	}
}

// maybeSteal rebalances queued-but-undispatched backlog toward a starved
// slave: one whose sender is blocked in the dispatcher while it holds no
// leases. The tail of the most loaded slave's lease backlog — batch
// entries it has not reached yet — is revoked, cancelled and requeued,
// where the starved sender picks it up. The lease/attempt machinery makes
// the hand-off exact: the victim's later results for stolen entries carry
// retired stamps and are dropped as stale.
func (m *master[T]) maybeSteal() {
	if m.disp.ReadyCount() > 0 {
		// There is queued work already; the starved sender will draw it
		// without help.
		return
	}
	for s := 1; s <= m.cfg.Slaves; s++ {
		if !m.waiting[s].Load() || m.leases.Load(s) > 0 {
			continue
		}
		// Victim: the slave with the deepest backlog, at least two leases
		// deep (the head entry is the one it is executing right now).
		victim, deepest := 0, 1
		for w, n := range m.leases.Loads() {
			if w != s && n > deepest {
				victim, deepest = w, n
			}
		}
		if victim == 0 {
			return
		}
		backlog := m.leases.WorkerLeases(victim)
		if len(backlog) < 2 {
			return
		}
		// Steal the newer half of the backlog (tail by grant sequence),
		// leaving the head — and anything involved in a speculative race —
		// with the victim.
		stolen := 0
		for _, l := range backlog[(len(backlog)+1)/2:] {
			if m.reg.LiveAttempts(l.Vertex) != 1 {
				continue
			}
			m.leases.ReleaseAttempt(l.Vertex, l.Attempt)
			m.ot.RemoveAttempt(l.Vertex, l.Attempt)
			if m.reg.CancelAttempt(l.Vertex, l.Attempt) == 0 {
				m.disp.Requeue(l.Vertex)
				stolen++
			}
		}
		if stolen > 0 {
			m.ctrs.steals.Add(int64(stolen))
			m.cfg.Trace.Steal(s-1, stolen)
			m.cfg.Trace.Ready(m.disp.ReadyCount())
			return // at most one steal per tick
		}
	}
}
