package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// Delta shipping must preserve correctness for the pattern with the widest
// data regions (RowColumn: whole row + column per task) and actually skip
// repeated blocks.
func TestDeltaShippingSWGG(t *testing.T) {
	a := dp.RandomDNA(64, 101)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, 102)
	s := dp.NewSWGG(a, b)
	want := s.Sequential()

	run := func(delta bool) *core.Result[int32] {
		cfg := core.Config{
			Slaves: 3, Threads: 2,
			ProcPartition:   dag.Square(8), // 8x8 grid
			ThreadPartition: dag.Square(4),
			DeltaShipping:   delta,
			RunTimeout:      time.Minute,
		}
		res, err := core.Run(s.Problem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		equalMatrices(t, "swgg-delta", res.Matrix(), want)
		return res
	}

	full := run(false)
	delta := run(true)
	if delta.Stats.BlocksSkipped == 0 {
		t.Fatalf("delta shipping skipped nothing: %+v", delta.Stats)
	}
	if delta.Stats.PayloadBytes >= full.Stats.PayloadBytes {
		t.Fatalf("delta payload %d not below full payload %d",
			delta.Stats.PayloadBytes, full.Stats.PayloadBytes)
	}
	if full.Stats.BlocksSkipped != 0 {
		t.Fatalf("full shipping reported skips: %+v", full.Stats)
	}
}

// Triangular pattern with delta shipping, plus every other pattern class
// via the geometry-corner apps.
func TestDeltaShippingAcrossPatterns(t *testing.T) {
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		DeltaShipping:   true,
		RunTimeout:      time.Minute,
	}

	nu := dp.NewNussinov(dp.RandomRNA(50, 103))
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "nussinov-delta", res.Matrix(), nu.Sequential())

	k := dp.NewKnapsack(20, 50, 104)
	cfgK := cfg
	cfgK.ProcPartition = dag.Size{Rows: 5, Cols: 13}
	cfgK.ThreadPartition = dag.Size{Rows: 2, Cols: 5}
	resK, err := core.Run(k.Problem(), cfgK)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "knapsack-delta", resK.Matrix(), k.Sequential())

	d := dp.NewDominance43(16, 105)
	cfgD := cfg
	cfgD.ProcPartition = dag.Square(4)
	cfgD.ThreadPartition = dag.Square(2)
	resD, err := core.Run(d.Problem(), cfgD)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "dominance-delta", resD.Matrix(), d.Sequential())
}

// Redistribution under delta shipping: the replacement slave has a
// different cache, so the master must ship it the full missing region.
func TestDeltaShippingWithCrash(t *testing.T) {
	a := dp.RandomDNA(60, 106)
	b := dp.RandomDNA(60, 107)
	e := dp.NewEditDistance(a, b)
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		DeltaShipping:   true,
		TaskTimeout:     150 * time.Millisecond,
		CheckInterval:   20 * time.Millisecond,
		RunTimeout:      time.Minute,
		Faults:          core.FaultPlan{CrashOnTask: map[int]int{2: 2}},
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-delta-crash", res.Matrix(), e.Sequential())
	if res.Stats.Redistributions == 0 {
		t.Fatalf("no redistribution: %+v", res.Stats)
	}
}

// Delta shipping together with reclamation and checkpointing.
func TestDeltaShippingWithReclaim(t *testing.T) {
	s := dp.NewSWGG(dp.RandomDNA(48, 108), dp.RandomDNA(48, 109))
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(8),
		ThreadPartition: dag.Square(4),
		DeltaShipping:   true,
		ReclaimBlocks:   true,
		RunTimeout:      time.Minute,
	}
	res, err := core.Run(s.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Sequential()
	if got := res.Store.Cell(47, 47); got != want[47][47] {
		t.Fatalf("corner %d != %d", got, want[47][47])
	}
	if res.Stats.BlocksSkipped == 0 || res.Stats.BlocksReclaimed == 0 {
		t.Fatalf("expected both skips and reclaims: %+v", res.Stats)
	}
}

// PolicyAffinity must stay correct while skipping even more traffic than
// plain delta shipping (it steers tasks toward slaves that hold the data).
func TestAffinityPolicy(t *testing.T) {
	a := dp.RandomDNA(64, 110)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, 111)
	s := dp.NewSWGG(a, b)
	want := s.Sequential()

	run := func(policy core.Policy, delta bool) core.Stats {
		cfg := core.Config{
			Slaves: 3, Threads: 2,
			ProcPartition:   dag.Square(8),
			ThreadPartition: dag.Square(4),
			Policy:          policy,
			DeltaShipping:   delta,
			RunTimeout:      time.Minute,
		}
		res, err := core.Run(s.Problem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		equalMatrices(t, "swgg-affinity", res.Matrix(), want)
		return res.Stats
	}

	deltaStats := run(core.PolicyDynamic, true)
	affStats := run(core.PolicyAffinity, false) // affinity implies delta
	if affStats.BlocksSkipped == 0 {
		t.Fatalf("affinity did not engage delta shipping: %+v", affStats)
	}
	// Affinity should ship at most as much as blind dynamic+delta
	// typically; we only assert it is in a sane band (scheduling is
	// nondeterministic, so exact comparisons would flake).
	if affStats.BlocksShipped > deltaStats.BlocksShipped*2 {
		t.Fatalf("affinity shipped wildly more than delta: %d vs %d",
			affStats.BlocksShipped, deltaStats.BlocksShipped)
	}
}

func TestAffinityWithFaults(t *testing.T) {
	e := dp.NewEditDistance(dp.RandomDNA(60, 112), dp.RandomDNA(60, 113))
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		ProcPartition:   dag.Square(10),
		ThreadPartition: dag.Square(4),
		Policy:          core.PolicyAffinity,
		TaskTimeout:     150 * time.Millisecond,
		CheckInterval:   20 * time.Millisecond,
		RunTimeout:      time.Minute,
		Faults:          core.FaultPlan{CrashOnTask: map[int]int{1: 3}},
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-affinity-crash", res.Matrix(), e.Sequential())
	if res.Stats.Redistributions == 0 {
		t.Fatalf("no redistribution: %+v", res.Stats)
	}
}
