package core_test

import (
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// cacheKernel is one DP application under cache test: the problem, its
// sequential reference matrix, and any partition override it needs.
type cacheKernel struct {
	name string
	prob core.Problem[int32]
	want [][]int32
	cfg  func(*core.Config)
}

func cacheKernels() []cacheKernel {
	a := dp.RandomDNA(61, 1)
	b := dp.RandomDNA(53, 2)
	e := dp.NewEditDistance(a, b)
	l := dp.NewLCS(a, b)
	nw := dp.NewNeedlemanWunsch(a, b)
	s := dp.NewSWGG(dp.RandomDNA(48, 3), dp.MutateSeq(dp.RandomDNA(48, 3), dp.DNAAlphabet, 0.2, 4))
	nu := dp.NewNussinov(dp.RandomRNA(50, 5))
	k := dp.NewKnapsack(24, 60, 6)
	return []cacheKernel{
		{name: "editdist", prob: e.Problem(), want: e.Sequential()},
		{name: "lcs", prob: l.Problem(), want: l.Sequential()},
		{name: "nw", prob: nw.Problem(), want: nw.Sequential()},
		{name: "swgg", prob: s.Problem(), want: s.Sequential()},
		{name: "nussinov", prob: nu.Problem(), want: nu.Sequential()},
		{name: "knapsack", prob: k.Problem(), want: k.Sequential(), cfg: func(c *core.Config) {
			c.ProcPartition = dag.Size{Rows: 6, Cols: 20}
			c.ThreadPartition = dag.Size{Rows: 2, Cols: 7}
		}},
	}
}

// TestCachedMatchesRecomputed is the cache's correctness contract: for
// every kernel, an uncached run, a cold cached run (filling the store)
// and a warm cached run (served entirely from it) all produce the exact
// matrix of the sequential reference. The warm run must not dispatch a
// single task.
func TestCachedMatchesRecomputed(t *testing.T) {
	for _, kn := range cacheKernels() {
		kn := kn
		t.Run(kn.name, func(t *testing.T) {
			t.Parallel()
			base := testConfig()
			if kn.cfg != nil {
				kn.cfg(&base)
			}

			plain, err := core.Run(kn.prob, base)
			if err != nil {
				t.Fatal(err)
			}
			equalMatrices(t, kn.name+"/uncached", plain.Matrix(), kn.want)

			store, err := cas.NewStore(cas.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cached := base
			cached.Cache = store
			cached.CacheKey = "cache-test:" + kn.name

			cold, err := core.Run(kn.prob, cached)
			if err != nil {
				t.Fatal(err)
			}
			equalMatrices(t, kn.name+"/cold", cold.Matrix(), kn.want)
			if cold.Stats.CacheHits != 0 {
				t.Fatalf("cold run hit a fresh store: %+v", cold.Stats)
			}
			if cold.Stats.CacheMisses == 0 {
				t.Fatalf("cold run never probed the cache: %+v", cold.Stats)
			}

			warm, err := core.Run(kn.prob, cached)
			if err != nil {
				t.Fatal(err)
			}
			equalMatrices(t, kn.name+"/warm", warm.Matrix(), kn.want)
			if warm.Stats.Tasks != 0 || warm.Stats.Dispatches != 0 {
				t.Fatalf("warm run dispatched work: %+v", warm.Stats)
			}
			if warm.Stats.CacheHits != cold.Stats.Tasks {
				t.Fatalf("warm hits %d != cold tasks %d", warm.Stats.CacheHits, cold.Stats.Tasks)
			}
		})
	}
}

// TestCacheKeyIsolation: two different problems sharing one store under
// different keys never observe each other's blocks; the same problem
// under a different key recomputes from scratch.
func TestCacheKeyIsolation(t *testing.T) {
	a := dp.RandomDNA(61, 1)
	b := dp.RandomDNA(53, 2)
	e := dp.NewEditDistance(a, b)
	l := dp.NewLCS(a, b)

	store, err := cas.NewStore(cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Cache = store
	cfg.CacheKey = "iso:editdist"
	if _, err := core.Run(e.Problem(), cfg); err != nil {
		t.Fatal(err)
	}

	// Same store, different problem and key: full recompute, exact result.
	cfg.CacheKey = "iso:lcs"
	res, err := core.Run(l.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "lcs-under-shared-store", res.Matrix(), l.Sequential())
	if res.Stats.CacheHits != 0 {
		t.Fatalf("lcs run hit editdist entries: %+v", res.Stats)
	}

	// Same problem, different key: also a full recompute.
	cfg.CacheKey = "iso:editdist-v2"
	res, err = core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 {
		t.Fatalf("re-keyed run reused old entries: %+v", res.Stats)
	}
}

// TestCacheEvictionDegradesToRecompute: a store too small to hold the
// whole job evicts mid-run. The warm rerun gets partial (possibly zero)
// hits, recomputes the rest, stays inside the byte budget throughout,
// and still produces the exact sequential matrix — eviction is a
// performance event, never a correctness one.
func TestCacheEvictionDegradesToRecompute(t *testing.T) {
	const budget = 2 << 10
	e := dp.NewEditDistance(dp.RandomDNA(61, 1), dp.RandomDNA(53, 2))

	store, err := cas.NewStore(cas.Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Cache = store
	cfg.CacheKey = "evict:editdist"

	for i := 0; i < 2; i++ {
		res, err := core.Run(e.Problem(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		equalMatrices(t, "evicting-run", res.Matrix(), e.Sequential())
		st := store.Snapshot()
		if st.Bytes > budget {
			t.Fatalf("run %d: resident bytes %d exceed budget %d", i, st.Bytes, budget)
		}
	}
	if st := store.Snapshot(); st.BlockEvictions == 0 {
		t.Fatalf("a %dB budget never evicted: %+v", budget, st)
	}
}

// benchCacheJob runs one editdist job; when warm is true the store has
// been pre-filled so the run completes from cache alone.
func benchCacheJob(b *testing.B, warm bool) {
	e := dp.NewEditDistance(dp.RandomDNA(200, 1), dp.RandomDNA(200, 2))
	cfg := testConfig()
	cfg.ProcPartition = dag.Square(25)
	cfg.ThreadPartition = dag.Square(13)
	// Make compute genuinely expensive so the benchmark measures the
	// recompute-vs-reuse gap, not runtime overhead.
	cfg.WorkDelayPerCell = 500 * time.Nanosecond

	store, err := cas.NewStore(cas.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Cache = store
	cfg.CacheKey = "bench:editdist"
	if warm {
		if _, err := core.Run(e.Problem(), cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			store, err := cas.NewStore(cas.Options{})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Cache = store
		}
		res, err := core.Run(e.Problem(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if warm && res.Stats.Tasks != 0 {
			b.Fatalf("warm run dispatched work: %+v", res.Stats)
		}
	}
}

func BenchmarkCacheColdJob(b *testing.B) { benchCacheJob(b, false) }
func BenchmarkCacheWarmJob(b *testing.B) { benchCacheJob(b, true) }
