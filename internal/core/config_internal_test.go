package core

import (
	"testing"

	"repro/internal/dag"
)

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Slaves: 2, Threads: 2}.withDefaults(dag.Square(64))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.ProcPartition.Valid() || !cfg.ThreadPartition.Valid() {
		t.Fatal("partitions not defaulted")
	}
	if cfg.TaskTimeout <= 0 || cfg.SubTaskTimeout <= 0 || cfg.CheckInterval <= 0 {
		t.Fatal("timeouts not defaulted")
	}
	if cfg.BCWBlockCols != 1 {
		t.Fatal("BCWBlockCols not defaulted")
	}
}

func TestConfigDefaultsExtensions(t *testing.T) {
	cfg, err := Config{Slaves: 1, Threads: 1, SpillDir: "/tmp/x"}.withDefaults(dag.Square(16))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SpillBudget != 16 {
		t.Fatalf("SpillBudget default = %d", cfg.SpillBudget)
	}
	if cfg.MaxAttempts != 4 {
		t.Fatalf("MaxAttempts default = %d", cfg.MaxAttempts)
	}
	cfg, err = Config{Slaves: 1, Threads: 1, Policy: PolicyAffinity}.withDefaults(dag.Square(16))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.DeltaShipping {
		t.Fatal("PolicyAffinity must imply DeltaShipping")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyAffinity.String() != "affinity" || Policy(99).String() == "" {
		t.Fatal("policy strings wrong")
	}
}

func TestFaultPlanEmpty(t *testing.T) {
	if !(FaultPlan{}).empty() {
		t.Fatal("zero plan should be empty")
	}
	if (FaultPlan{CrashOnTask: map[int]int{1: 1}}).empty() {
		t.Fatal("crash plan reported empty")
	}
	if newFaultState(FaultPlan{}) != nil {
		t.Fatal("empty plan should yield nil state")
	}
}
