package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/testseed"
)

// Property: for EVERY registered DP kernel, batched-parallel execution is
// bit-identical to unbatched-parallel and to serial execution of the same
// problem, across randomized sizes, seeds, partitions and batch bounds.
// Batching is a transport-level optimization; if it ever changed a single
// cell, the dependency ordering of some batch was wrong.
func TestBatchMatchesUnbatchedAllKernels(t *testing.T) {
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for appIdx, app := range cli.Apps {
		app := app
		rng := rand.New(rand.NewSource(testseed.Seed(t, int64(9000+appIdx))))
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			for round := 0; round < rounds; round++ {
				n := 24 + rng.Intn(32)
				seed := rng.Int63n(1 << 30)
				batch := 2 + rng.Intn(7)
				pp := 4 + rng.Intn(8)
				tp := 2 + rng.Intn(4)
				label := fmt.Sprintf("%s n=%d seed=%d pp=%d tp=%d batch=%d", app, n, seed, pp, tp, batch)

				run := func(slaves, threads, b int) [][]int32 {
					prob, _, err := cli.Build(app, n, seed)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					cfg := core.Config{
						Slaves:          slaves,
						Threads:         threads,
						ProcPartition:   dag.Square(pp),
						ThreadPartition: dag.Square(tp),
						Batch:           b,
						RunTimeout:      2 * time.Minute,
					}
					res, err := core.Run(prob, cfg)
					if err != nil {
						t.Fatalf("%s (slaves=%d batch=%d): %v", label, slaves, b, err)
					}
					return res.Matrix()
				}

				serial := run(1, 1, 1)
				unbatched := run(3, 2, 1)
				batched := run(3, 2, batch)
				equalMatrices(t, label+" [unbatched vs serial]", unbatched, serial)
				equalMatrices(t, label+" [batched vs serial]", batched, serial)
			}
		})
	}
}

// Accounting under batching: a clean batched run completes every vertex
// exactly once (Dispatches stays a per-vertex count), records at least one
// multi-vertex message, and counts task payload volume; the same run at
// Batch == 1 must not touch the batch counter at all.
func TestBatchStatsAccounting(t *testing.T) {
	prob, _, err := cli.Build("editdist", 48, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(8), // 6x6 grid
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}

	cfg.Batch = 4
	res, err := core.Run(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Tasks != 36 || s.Dispatches != 36 {
		t.Fatalf("batched run tasks/dispatches = %d/%d, want 36/36", s.Tasks, s.Dispatches)
	}
	if s.Redistributions != 0 || s.StaleResults != 0 {
		t.Fatalf("clean batched run shows recovery activity: %v", s)
	}
	if s.BatchMessages == 0 {
		t.Fatalf("batched run sent no batch messages: %v", s)
	}
	if s.TaskBytes == 0 {
		t.Fatalf("task bytes not accounted: %v", s)
	}

	cfg.Batch = 1
	res, err = core.Run(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BatchMessages != 0 {
		t.Fatalf("unbatched run recorded %d batch messages", res.Stats.BatchMessages)
	}
	if res.Stats.Tasks != 36 || res.Stats.Dispatches != 36 {
		t.Fatalf("unbatched run tasks/dispatches = %d/%d, want 36/36", res.Stats.Tasks, res.Stats.Dispatches)
	}
}

// Batching must compose with the paper's other master-side features, which
// all hook the same dispatch/result path: delta shipping (known-set
// filtering happens per entry), affinity scheduling and memory
// reclamation.
func TestBatchComposesWithDeltaShippingAndReclaim(t *testing.T) {
	prob, _, err := cli.Build("nussinov", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.Run(prob, core.Config{
		Slaves: 1, Threads: 1,
		ProcPartition:   dag.Square(8),
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []core.Config{
		{Slaves: 3, Threads: 2, Batch: 5, DeltaShipping: true},
		{Slaves: 3, Threads: 2, Batch: 5, Policy: core.PolicyAffinity},
		{Slaves: 2, Threads: 2, Batch: 3, Policy: core.PolicyBlockCyclic, BCWBlockCols: 2},
	} {
		cfg.ProcPartition = dag.Square(8)
		cfg.ThreadPartition = dag.Square(4)
		cfg.RunTimeout = time.Minute
		prob, _, err := cli.Build("nussinov", 40, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prob, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		equalMatrices(t, fmt.Sprintf("batch with policy=%v delta=%v", cfg.Policy, cfg.DeltaShipping),
			res.Matrix(), serial.Matrix())
	}
}
