package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// faultConfig uses short timeouts so recovery paths fire quickly.
func faultConfig() core.Config {
	return core.Config{
		Slaves:          3,
		Threads:         2,
		ProcPartition:   dag.Square(16),
		ThreadPartition: dag.Square(6),
		TaskTimeout:     150 * time.Millisecond,
		SubTaskTimeout:  150 * time.Millisecond,
		CheckInterval:   20 * time.Millisecond,
		RunTimeout:      120 * time.Second,
	}
}

// A slave that dies mid-run loses its in-flight task; the master must
// detect the timeout, redistribute to the surviving slaves, and still
// produce a correct matrix.
func TestSlaveCrashRecovered(t *testing.T) {
	a := dp.RandomDNA(60, 31)
	b := dp.RandomDNA(60, 32)
	e := dp.NewEditDistance(a, b)
	cfg := faultConfig()
	cfg.Faults = core.FaultPlan{CrashOnTask: map[int]int{2: 3}} // slave 2 dies on its 3rd task
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-crash", res.Matrix(), e.Sequential())
	if res.Stats.Redistributions == 0 {
		t.Fatalf("expected at least one redistribution, stats: %v", res.Stats)
	}
}

func TestTwoSlavesCrashRecovered(t *testing.T) {
	a := dp.RandomDNA(60, 33)
	b := dp.RandomDNA(60, 34)
	e := dp.NewEditDistance(a, b)
	cfg := faultConfig()
	cfg.Slaves = 4
	cfg.ProcPartition = dag.Square(10) // 6x6 grid: every slave sees several tasks
	cfg.ThreadPartition = dag.Square(4)
	cfg.Faults = core.FaultPlan{CrashOnTask: map[int]int{1: 2, 3: 3}}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-2crash", res.Matrix(), e.Sequential())
	if res.Stats.Redistributions < 2 {
		t.Fatalf("expected redistributions for both lost tasks, stats: %v", res.Stats)
	}
}

// A stalled slave answers after its task was redistributed; the stale
// result must be dropped by the register table, not double-applied.
func TestStaleResultDropped(t *testing.T) {
	a := dp.RandomDNA(48, 35)
	b := dp.RandomDNA(48, 36)
	e := dp.NewEditDistance(a, b)
	cfg := faultConfig()
	// Vertex 0 is the wavefront root: its first attempt stalls past the
	// timeout, so it is redistributed, and enough emulated work remains
	// behind it that the run is still going when the stalled slave
	// finally answers — the stale result must be dropped.
	cfg.ProcPartition = dag.Square(6) // 8x8 grid
	cfg.ThreadPartition = dag.Square(3)
	cfg.WorkDelayPerCell = 100 * time.Microsecond
	cfg.Faults = core.FaultPlan{StallFirstAttempt: map[int32]time.Duration{0: 250 * time.Millisecond}}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-stale", res.Matrix(), e.Sequential())
	if res.Stats.Redistributions == 0 {
		t.Fatalf("stall did not trigger redistribution: %v", res.Stats)
	}
	if res.Stats.StaleResults == 0 {
		t.Fatalf("late result was not dropped as stale: %v", res.Stats)
	}
}

// Thread-level fault tolerance: a compute goroutine panics on one
// sub-sub-task; the slave worker pool recovers (restart semantics) and the
// sub-task is re-pushed and completed.
func TestWorkerPanicRecovered(t *testing.T) {
	a := dp.RandomDNA(40, 37)
	b := dp.RandomDNA(40, 38)
	e := dp.NewEditDistance(a, b)
	cfg := faultConfig()
	cfg.Faults = core.FaultPlan{PanicSubTask: map[core.SubTaskID]bool{
		{Proc: 0, Sub: 0}: true,
		{Proc: 1, Sub: 2}: true,
	}}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-panic", res.Matrix(), e.Sequential())
	if res.Stats.WorkerRestarts < 2 {
		t.Fatalf("expected 2 worker restarts, stats: %v", res.Stats)
	}
}

// Thread-level timeout: a stalled sub-sub-task is re-pushed by the slave
// fault-tolerance thread and executed by another worker; the late
// duplicate is discarded at commit.
func TestSubTaskStallRecovered(t *testing.T) {
	a := dp.RandomDNA(40, 39)
	b := dp.RandomDNA(40, 40)
	e := dp.NewEditDistance(a, b)
	cfg := faultConfig()
	cfg.Threads = 3 // leave free workers for the duplicate execution
	cfg.Faults = core.FaultPlan{StallSubTask: map[core.SubTaskID]time.Duration{
		{Proc: 0, Sub: 0}: 500 * time.Millisecond,
	}}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "editdist-substall", res.Matrix(), e.Sequential())
	if res.Stats.SubRequeues == 0 {
		t.Fatalf("expected a thread-level requeue, stats: %v", res.Stats)
	}
}

// Faults during a triangular (Nussinov) run, where redistributed blocks
// carry larger data regions.
func TestNussinovWithFaults(t *testing.T) {
	nu := dp.NewNussinov(dp.RandomRNA(42, 41))
	cfg := faultConfig()
	cfg.ProcPartition = dag.Square(10)
	cfg.ThreadPartition = dag.Square(4)
	cfg.Faults = core.FaultPlan{
		CrashOnTask:       map[int]int{1: 2},
		PanicSubTask:      map[core.SubTaskID]bool{{Proc: 3, Sub: 1}: true},
		StallFirstAttempt: map[int32]time.Duration{5: 400 * time.Millisecond},
	}
	res, err := core.Run(nu.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "nussinov-faults", res.Matrix(), nu.Sequential())
}

// When every slave dies the run cannot finish; RunTimeout must turn the
// hang into an error instead of blocking forever.
func TestAllSlavesDeadAborts(t *testing.T) {
	e := dp.NewEditDistance(dp.RandomDNA(32, 42), dp.RandomDNA(32, 43))
	cfg := faultConfig()
	cfg.Slaves = 2
	cfg.RunTimeout = 2 * time.Second
	cfg.Faults = core.FaultPlan{CrashOnTask: map[int]int{1: 1, 2: 1}}
	_, err := core.Run(e.Problem(), cfg)
	if err == nil {
		t.Fatal("run with all slaves dead returned success")
	}
}
