package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/tune"
)

// Run executes problem p on an in-process emulated cluster: one master
// rank plus cfg.Slaves slave ranks connected by a channel transport with
// cfg.Latency, each slave running cfg.Threads compute goroutines. It
// blocks until the DP matrix is complete and returns the blocked result
// with run statistics.
func Run[T any](p Problem[T], cfg Config) (*Result[T], error) {
	//lint:ignore naked-background Run is the context-free compatibility entry point; no caller context exists to thread
	return RunContext(context.Background(), p, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the master stops scheduling, slaves finish the
// sub-tasks already in flight, and the run returns ctx's error. The
// cancellation latency is therefore bounded by one processor-level
// sub-task.
func RunContext[T any](ctx context.Context, p Problem[T], cfg Config) (*Result[T], error) {
	cfg, err := prepare(p, cfg)
	if err != nil {
		return nil, err
	}
	nw := comm.NewChanNetwork(cfg.Slaves+1, cfg.Latency)
	defer nw.Close()
	ctrs := &counters{}
	faults := newFaultState(cfg.Faults)

	var slaves sync.WaitGroup
	for s := 1; s <= cfg.Slaves; s++ {
		slaves.Add(1)
		go func(s int) {
			defer slaves.Done()
			// Slave errors surface as master-side timeouts; the
			// slave loop itself only fails on codec bugs, which the
			// master also detects.
			_ = runSlave(p, cfg, nw.Endpoint(s), faults, ctrs)
		}(s)
	}

	start := time.Now()
	res, err := runMaster(ctx, p, cfg, nw.Endpoint(0), ctrs)
	elapsed := time.Since(start)
	nw.Close()
	slaves.Wait()
	if err != nil {
		return nil, err
	}
	res.Stats = ctrs.snapshot()
	res.Stats.Elapsed = elapsed
	res.Stats.Messages, res.Stats.PayloadBytes = nw.Traffic()
	return res, nil
}

// RunMaster executes only the master part over an externally provided
// transport (e.g. comm.ListenMaster for a real multi-process TCP cluster).
// cfg.Slaves is taken from the transport size. Every worker process must
// run RunSlave with an identical Problem and Config.
func RunMaster[T any](p Problem[T], cfg Config, tr comm.Transport) (*Result[T], error) {
	//lint:ignore naked-background RunMaster is the context-free compatibility entry point; no caller context exists to thread
	return RunMasterContext(context.Background(), p, cfg, tr)
}

// RunMasterContext is RunMaster with cancellation, with the same
// semantics as RunContext.
func RunMasterContext[T any](ctx context.Context, p Problem[T], cfg Config, tr comm.Transport) (*Result[T], error) {
	cfg.Slaves = tr.Size() - 1
	cfg, err := prepare(p, cfg)
	if err != nil {
		return nil, err
	}
	ctrs := &counters{}
	start := time.Now()
	res, err := runMaster(ctx, p, cfg, tr, ctrs)
	if err != nil {
		return nil, err
	}
	res.Stats = ctrs.snapshot()
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// RunSlave executes only the slave part over an externally provided
// transport (e.g. comm.DialWorker). It returns when the master signals the
// end of scheduling.
func RunSlave[T any](p Problem[T], cfg Config, tr comm.Transport) error {
	cfg.Slaves = tr.Size() - 1
	cfg, err := prepare(p, cfg)
	if err != nil {
		return err
	}
	return runSlave(p, cfg, tr, newFaultState(cfg.Faults), &counters{})
}

func prepare[T any](p Problem[T], cfg Config) (Config, error) {
	if p.Kernel == nil {
		return cfg, fmt.Errorf("core: problem %q has no kernel", p.Name)
	}
	if p.Codec == nil {
		return cfg, fmt.Errorf("core: problem %q has no codec", p.Name)
	}
	if cfg.Auto && !cfg.ProcPartition.Valid() {
		// The advisor needs the kernel's cost model and the worker
		// count, neither of which Config.withDefaults can see. Master
		// and slaves run prepare with identical inputs, so both derive
		// the same partition.
		cm, _ := p.Kernel.(tune.CostModel)
		workers := cfg.Slaves
		if cfg.Threads > 1 {
			workers *= cfg.Threads
		}
		cfg.ProcPartition = tune.AdvisePartition(p.Size.Rows, p.Size.Cols, workers, cm)
	}
	return cfg.withDefaults(p.Size)
}
