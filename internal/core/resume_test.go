package core_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
)

// A crash can tear the checkpoint mid-record (the writer died inside an
// append). Replay must stop at the last intact record and the resumed
// run must recompute exactly the torn vertex — nothing more.
func TestRestoreTornFinalRecord(t *testing.T) {
	a := dp.RandomDNA(80, 86)
	b := dp.RandomDNA(80, 87)
	e := dp.NewEditDistance(a, b)
	base := core.Config{
		Slaves: 2, Threads: 2,
		ProcPartition:   dag.Square(10), // 8x8 grid, 64 tasks
		ThreadPartition: dag.Square(4),
		RunTimeout:      time.Minute,
	}

	var ck bytes.Buffer
	cfg := base
	cfg.Checkpoint = &ck
	res1, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64", res1.Stats.Tasks)
	}
	full := ck.Bytes()

	// Tear the final record: all 64 were appended, the last is missing
	// its trailing bytes (CRC and part of the payload).
	cfg = base
	cfg.Restore = bytes.NewReader(full[:len(full)-3])
	res2, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Restored != 63 {
		t.Fatalf("restored = %d, want 63 (all intact records)", res2.Stats.Restored)
	}
	if res2.Stats.Tasks != 1 {
		t.Fatalf("computed = %d, want exactly the torn vertex", res2.Stats.Tasks)
	}
	equalMatrices(t, "torn-final-record", res2.Matrix(), e.Sequential())
}
