package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dp"
)

// A fully hands-off in-process run: Auto on, no partition, batch or
// speculation knobs. The advisor picks the processor partition from the
// worker count, the tuner owns batch and speculation thresholds, and the
// result must still be bit-identical to the sequential reference.
func TestRunAutoMatchesSequential(t *testing.T) {
	e := dp.NewEditDistance(dp.RandomDNA(96, 71), dp.RandomDNA(96, 72))
	cfg := core.Config{
		Slaves: 3, Threads: 2,
		Auto:       true,
		RunTimeout: time.Minute,
	}
	res, err := core.Run(e.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Matrix(), e.Sequential()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("cell (%d,%d) = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Auto implies both mitigation mechanisms: the run must not have been
	// executed with them silently disabled. Their counters may legitimately
	// be zero on a healthy run; the partition is the observable effect —
	// the advisor targets about twice the worker count in blocks, far from
	// the (96+7)/8 = 12-cell default rule's 8x8 grid.
	if res.Stats.Tasks < 1 {
		t.Fatalf("tasks = %d", res.Stats.Tasks)
	}
}
