// Package checkpoint persists completed sub-task results so that an
// interrupted run can resume without recomputing them — the natural
// extension of the paper's fault-tolerance story from lost sub-tasks to a
// lost master.
//
// The format is a sequence of self-delimiting records, each protected by
// a CRC32 so that a torn final record (the typical crash artifact) is
// detected and ignored:
//
//	[magic u32][vertex int32][len u32][payload ...][crc32 u32]
//
// Because the master appends records in completion order and a vertex only
// completes after its precursors, any prefix of a checkpoint file is
// closed under the DAG's ancestor relation: replaying records in file
// order is always a valid (partial) execution.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const magic uint32 = 0xea57095c

// maxRecord bounds a record payload (64 MiB) so a corrupt length field
// cannot trigger a huge allocation.
const maxRecord = 64 << 20

// Writer appends checkpoint records. It is safe for concurrent use.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	n   int
	err error
}

// NewWriter creates a checkpoint writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append persists one completed vertex with its encoded result block.
// After the first error every Append returns it without writing further.
func (cw *Writer) Append(vertex int32, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("checkpoint: payload of vertex %d exceeds %d bytes", vertex, maxRecord)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(vertex))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())

	for _, chunk := range [][]byte{hdr[:], payload, tail[:]} {
		if _, err := cw.w.Write(chunk); err != nil {
			cw.err = fmt.Errorf("checkpoint: writing record %d: %w", cw.n, err)
			return cw.err
		}
	}
	cw.n++
	return nil
}

// Records returns how many records have been appended successfully.
func (cw *Writer) Records() int {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.n
}

// ErrCorrupt marks a record that failed its integrity checks; Replay stops
// there silently, treating the rest of the file as lost.
var ErrCorrupt = errors.New("checkpoint: corrupt record")

// Replay reads records in order, invoking fn for each intact one. It
// returns the number of replayed records. A clean EOF, a torn tail or a
// corrupt record all terminate the replay without error — resuming from a
// prefix is always safe; only fn's own errors propagate.
func Replay(r io.Reader, fn func(vertex int32, payload []byte) error) (int, error) {
	n, _, err := ReplayOffset(r, fn)
	return n, err
}

// ReplayOffset is Replay reporting, additionally, the byte offset of the
// end of the last intact record — the clean prefix length. A writer that
// wants to continue an interrupted stream in place must truncate the file
// there first: appending after a torn tail would leave the new records
// unreachable (every replay stops at the first corrupt record).
func ReplayOffset(r io.Reader, fn func(vertex int32, payload []byte) error) (int, int64, error) {
	n, off := 0, int64(0)
	for {
		vertex, payload, err := readRecord(r)
		if err != nil {
			return n, off, nil // EOF, torn tail, or corruption: stop here
		}
		if err := fn(vertex, payload); err != nil {
			return n, off, err
		}
		n++
		off += int64(12 + len(payload) + 4)
	}
}

// OpenAppend resumes the checkpoint stream at path for a restarted
// master: it replays the intact prefix through fn, truncates any torn or
// corrupt tail (the typical crash artifact), and returns a Writer that
// appends new records after the clean prefix. A missing file starts an
// empty stream. The caller owns closing the file.
func OpenAppend(path string, fn func(vertex int32, payload []byte) error) (*Writer, *os.File, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	n, clean, err := ReplayOffset(f, fn)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if err := f.Truncate(clean); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("checkpoint: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return NewWriter(f), f, n, nil
}

func readRecord(r io.Reader) (int32, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return 0, nil, ErrCorrupt
	}
	vertex := int32(binary.LittleEndian.Uint32(hdr[4:]))
	size := binary.LittleEndian.Uint32(hdr[8:])
	if size > maxRecord {
		return 0, nil, ErrCorrupt
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return 0, nil, ErrCorrupt
	}
	return vertex, payload, nil
}
