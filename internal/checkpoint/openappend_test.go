package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// OpenAppend must replay the intact prefix, truncate a torn tail, and
// leave the file appendable so new records join the same replayable
// stream — the master-restart sequence.
func TestOpenAppendTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for v := int32(0); v < 4; v++ {
		if err := w.Append(v, []byte(fmt.Sprintf("payload-%d", v))); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	// A crash mid-write leaves a torn final record: cut 3 bytes off.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed []int32
	cw, f, n, err := OpenAppend(path, func(v int32, p []byte) error {
		replayed = append(replayed, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(replayed) != 3 {
		t.Fatalf("replayed %d records (%v), want 3", n, replayed)
	}
	// Continue the stream past the truncation point.
	if err := cw.Append(3, []byte("payload-3")); err != nil {
		t.Fatal(err)
	}
	if err := cw.Append(4, []byte("payload-4")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The whole file must now replay as one clean 5-record stream.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var got []int32
	total, err := Replay(g, func(v int32, p []byte) error {
		if want := fmt.Sprintf("payload-%d", v); string(p) != want {
			t.Fatalf("payload for %d = %q, want %q", v, p, want)
		}
		got = append(got, v)
		return nil
	})
	if err != nil || total != 5 {
		t.Fatalf("Replay after append = %d, %v (%v)", total, err, got)
	}
	for k, v := range got {
		if v != int32(k) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

// A missing file is an empty stream, not an error.
func TestOpenAppendMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.ckpt")
	cw, f, n, err := OpenAppend(path, func(int32, []byte) error {
		t.Fatal("replay callback on empty stream")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("OpenAppend(missing) = %d, %v", n, err)
	}
	if err := cw.Append(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g, _ := os.Open(path)
	defer g.Close()
	total, err := Replay(g, func(int32, []byte) error { return nil })
	if err != nil || total != 1 {
		t.Fatalf("Replay = %d, %v", total, err)
	}
}

// ReplayOffset's clean offset must land exactly on record boundaries for
// every tear point.
func TestReplayOffsetBoundaries(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sizes := []int{0, 1, 100}
	bounds := []int64{0}
	for v, sz := range sizes {
		if err := w.Append(int32(v), bytes.Repeat([]byte{byte(v)}, sz)); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+int64(12+sz+4))
	}
	data := buf.Bytes()
	for cut := 0; cut <= len(data); cut++ {
		n, off, err := ReplayOffset(bytes.NewReader(data[:cut]), func(int32, []byte) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if off != bounds[n] {
			t.Fatalf("cut %d: %d records but offset %d, want %d", cut, n, off, bounds[n])
		}
		if off > int64(cut) {
			t.Fatalf("cut %d: clean offset %d beyond data", cut, off)
		}
	}
}
