package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for v := int32(0); v < 5; v++ {
		if err := w.Append(v, []byte(fmt.Sprintf("payload-%d", v))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != 5 {
		t.Fatalf("Records = %d", w.Records())
	}
	var got []int32
	n, err := Replay(&buf, func(v int32, p []byte) error {
		if string(p) != fmt.Sprintf("payload-%d", v) {
			t.Fatalf("payload mismatch for %d: %q", v, p)
		}
		got = append(got, v)
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	for k, v := range got {
		if v != int32(k) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestReplayEmpty(t *testing.T) {
	n, err := Replay(bytes.NewReader(nil), func(int32, []byte) error { return nil })
	if n != 0 || err != nil {
		t.Fatalf("Replay(empty) = %d, %v", n, err)
	}
}

func TestTornTailIgnored(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(1, []byte("first"))
	w.Append(2, []byte("second"))
	data := buf.Bytes()
	// Tear the last record at various cut points: replay must yield
	// exactly the first record, never an error.
	first := len(data) / 2
	for cut := first; cut < len(data); cut++ {
		n, err := Replay(bytes.NewReader(data[:cut]), func(int32, []byte) error { return nil })
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n > 2 {
			t.Fatalf("cut %d: replayed %d records", cut, n)
		}
	}
}

func TestCorruptionStopsReplay(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(1, []byte("first"))
	w.Append(2, []byte("second"))
	data := buf.Bytes()
	// Flip a byte inside the FIRST record's payload: nothing replays.
	data[14] ^= 0xff
	n, err := Replay(bytes.NewReader(data), func(int32, []byte) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("Replay after corruption = %d, %v", n, err)
	}
}

func TestFnErrorPropagates(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(1, []byte("x"))
	boom := errors.New("boom")
	_, err := Replay(&buf, func(int32, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWriterSticksOnError(t *testing.T) {
	w := NewWriter(&failWriter{after: 1})
	if err := w.Append(1, []byte("x")); err == nil {
		t.Fatal("write through failing writer succeeded")
	}
	if err := w.Append(2, []byte("y")); err == nil {
		t.Fatal("writer did not stick on error")
	}
	if w.Records() != 0 {
		t.Fatalf("Records = %d", w.Records())
	}
}

func TestWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				if err := w.Append(int32(g*100+k), []byte("p")); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	n, err := Replay(&buf, func(int32, []byte) error { return nil })
	if err != nil || n != 200 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
}

// Property: any payload content round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(v int32, payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Append(v, payload); err != nil {
			return false
		}
		ok := false
		n, err := Replay(&buf, func(gv int32, gp []byte) error {
			ok = gv == v && bytes.Equal(gp, payload)
			return nil
		})
		return err == nil && n == 1 && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
