package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/fleet"
	"repro/internal/server"
)

// startFleetService stands up the full fleet-mode stack: a shared fleet,
// a manager routing jobs onto it, and the HTTP API in front.
func startFleetService(t *testing.T, opts fleet.Options, cfg server.ManagerConfig) (*fleet.Fleet[int32], *server.Manager, *client.Client) {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	fl, err := fleet.New[int32](opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fleet = fl
	mgr := server.NewManager(cfg, nil)
	ts := httptest.NewServer(server.NewHandler(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
		fl.Close()
	})
	return fl, mgr, client.New(ts.URL, ts.Client())
}

// startFleetWorker joins one registry-driven worker to the fleet and
// tears it down with the test.
func startFleetWorker(t *testing.T, addr, name string, delay time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		opts := fleet.WorkerOptions{
			Addr:              addr,
			Name:              name,
			HeartbeatInterval: 50 * time.Millisecond,
			Run:               core.Config{Threads: 2, Batch: 2},
		}
		if delay > 0 {
			opts.TaskDelay = func() time.Duration { return delay }
		}
		_ = fleet.RunWorker(ctx, server.RegistryBuilder(server.NewRegistry()), opts)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// TestFleetServiceInterleavesJobs is the acceptance test of fleet mode:
// two jobs submitted to the service make interleaved progress on one
// shared worker pool (their dispatch spans overlap in the per-job
// traces), both return bit-identical answers to the sequential
// references, and /metrics carries the per-job labelled series plus the
// fleet autoscaling signals.
func TestFleetServiceInterleavesJobs(t *testing.T) {
	fl, _, c := startFleetService(t,
		fleet.Options{HeartbeatInterval: 50 * time.Millisecond, Batch: 2},
		server.ManagerConfig{
			Run: core.Config{
				ProcPartition:   dag.Square(8),
				ThreadPartition: dag.Square(8),
				RunTimeout:      time.Minute,
			},
			MaxConcurrent: 4,
			QueueDepth:    8,
		})
	ctx := context.Background()

	// References computed sequentially.
	a := dp.RandomDNA(48, 41)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.15, 42)
	edRef := dp.NewEditDistance(a, b)
	rna := dp.RandomRNA(48, 43)
	nuRef := dp.NewNussinov(rna)
	nuSeq := nuRef.Sequential()

	// Submit both jobs before any worker joins: each holds a run slot and
	// registers its DAG with the fleet, so when workers arrive the
	// fair-share policy must interleave the two dispatch streams.
	ed, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", SeqA: string(a), SeqB: string(b), Weight: 1})
	if err != nil {
		t.Fatalf("submit editdist: %v", err)
	}
	nu, err := c.Submit(ctx, server.JobSpec{Kernel: "nussinov", SeqA: string(rna), Weight: 2})
	if err != nil {
		t.Fatalf("submit nussinov: %v", err)
	}

	startFleetWorker(t, fl.Addr(), "w0", time.Millisecond)
	startFleetWorker(t, fl.Addr(), "w1", time.Millisecond)

	var wg sync.WaitGroup
	for _, id := range []string{ed.ID, nu.ID} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			defer cancel()
			final, err := c.Wait(wctx, id, 10*time.Millisecond)
			if err != nil {
				t.Errorf("wait %s: %v", id, err)
				return
			}
			if final.State != server.StateDone {
				t.Errorf("%s finished %s (%s), want done", id, final.State, final.Error)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Bit-identical answers per kernel.
	edRes, err := c.Result(ctx, ed.ID)
	if err != nil {
		t.Fatalf("editdist result: %v", err)
	}
	if want := int64(edRef.Distance(edRef.Sequential())); edRes.Value != want {
		t.Fatalf("edit distance %d, want %d", edRes.Value, want)
	}
	nuRes, err := c.Result(ctx, nu.ID)
	if err != nil {
		t.Fatalf("nussinov result: %v", err)
	}
	if want := int64(nuSeq[0][len(rna)-1]); nuRes.Value != want {
		t.Fatalf("nussinov pairs %d, want %d", nuRes.Value, want)
	}
	if edRes.Stats.Tasks == 0 || edRes.Stats.Dispatches == 0 {
		t.Fatalf("editdist run stats empty: %+v", edRes.Stats)
	}

	// No leaked leases or register entries in either job's ledger.
	for _, js := range fl.Snapshot().Jobs {
		if js.Stats.Leaked != 0 {
			t.Errorf("job %s leaked %d entries", js.Name, js.Stats.Leaked)
		}
	}

	// Interleaving: each job's dispatch span must overlap the other's.
	spans := make(map[string][2]int64)
	for _, id := range []string{ed.ID, nu.ID} {
		evs, err := c.Trace(ctx, id)
		if err != nil {
			t.Fatalf("trace %s: %v", id, err)
		}
		first, last := int64(-1), int64(-1)
		for _, e := range evs {
			if e.Kind != "dispatch" {
				continue
			}
			if first < 0 {
				first = e.TMicros
			}
			last = e.TMicros
		}
		if first < 0 {
			t.Fatalf("trace of %s has no dispatch events", id)
		}
		spans[id] = [2]int64{first, last}
	}
	if spans[ed.ID][0] > spans[nu.ID][1] || spans[nu.ID][0] > spans[ed.ID][1] {
		t.Errorf("dispatch spans do not overlap: %s %v vs %s %v — the fleet ran the jobs serially",
			ed.ID, spans[ed.ID], nu.ID, spans[nu.ID])
	}

	// Per-job metrics and autoscaling signals on /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"easyhps_fleet_jobs{state=\"done\"} 2",
		"easyhps_fleet_jobs{state=\"running\"} 0",
		"easyhps_fleet_queue_depth 0",
		"easyhps_fleet_hunger_total",
		fmt.Sprintf("easyhps_job_vertices_done{job=%q}", ed.ID),
		fmt.Sprintf("easyhps_job_vertices_total{job=%q}", nu.ID),
		fmt.Sprintf("easyhps_job_deficit{job=%q}", ed.ID),
		fmt.Sprintf("easyhps_job_speculated_total{job=%q} 0", ed.ID),
		fmt.Sprintf("easyhps_job_steals_total{job=%q} 0", nu.ID),
		"easyhps_cluster_members{state=\"active\"} 2",
		"easyhps_jobs_finished_total{state=\"done\"} 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Both jobs completed every vertex: the done gauge equals the total.
	for _, id := range []string{ed.ID, nu.ID} {
		done := gaugeValue(t, text, fmt.Sprintf("easyhps_job_vertices_done{job=%q}", id))
		total := gaugeValue(t, text, fmt.Sprintf("easyhps_job_vertices_total{job=%q}", id))
		if done <= 0 || done != total {
			t.Errorf("%s: vertices done %d of %d, want all", id, done, total)
		}
	}
}

// gaugeValue extracts one sample's integer value from the exposition.
func gaugeValue(t *testing.T, text, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v int64
			if _, err := fmt.Sscan(rest, &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metrics missing series %q", series)
	return 0
}

// TestFleetServiceTraceErrors pins the trace endpoint's error contract:
// 404 for unknown jobs, and 404 in non-fleet deployments where traces do
// not exist.
func TestFleetServiceTraceErrors(t *testing.T) {
	_, _, c := startFleetService(t,
		fleet.Options{},
		server.ManagerConfig{MaxConcurrent: 1, QueueDepth: 2})
	ctx := context.Background()
	if _, err := c.Trace(ctx, "job-404"); !client.IsNotFound(err) {
		t.Fatalf("trace of unknown job = %v, want 404", err)
	}

	// A classic (non-fleet) service answers 404 for traces of real jobs.
	_, cc := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 1, QueueDepth: 2})
	st, err := cc.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 16, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := cc.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if _, err := cc.Trace(ctx, st.ID); !client.IsNotFound(err) {
		t.Fatalf("trace without a fleet = %v, want 404", err)
	}
}
