package server_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/server"
)

// TestServerCacheHitResubmission: with a store attached, resubmitting a
// completed job's exact spec answers from the whole-job cache — the
// result is marked Cached, identical to the computed one, and the
// server-layer hit shows on /metrics.
func TestServerCacheHitResubmission(t *testing.T) {
	store, err := cas.NewStore(cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c := startService(t, server.ManagerConfig{
		Run: fastRun(), MaxConcurrent: 2, QueueDepth: 4, Cache: store,
	})
	ctx := context.Background()
	spec := server.JobSpec{Kernel: "editdist", N: 48, Seed: 7}

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	first, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if first.Cached {
		t.Fatalf("first run claims to be cached: %+v", first)
	}

	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.ID == st.ID {
		t.Fatalf("resubmission reused job id %s", st.ID)
	}
	fin, err := c.Wait(ctx, st2.ID, time.Millisecond)
	if err != nil {
		t.Fatalf("wait resubmission: %v", err)
	}
	if fin.State != server.StateDone {
		t.Fatalf("resubmission finished %s (%s), want done", fin.State, fin.Error)
	}
	second, err := c.Result(ctx, st2.ID)
	if err != nil {
		t.Fatalf("resubmission result: %v", err)
	}
	if !second.Cached {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if second.Value != first.Value {
		t.Fatalf("cached value %d != computed value %d", second.Value, first.Value)
	}

	// A different spec must not hit.
	st3, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 48, Seed: 8})
	if err != nil {
		t.Fatalf("submit different: %v", err)
	}
	if _, err := c.Wait(ctx, st3.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait different: %v", err)
	}
	third, err := c.Result(ctx, st3.ID)
	if err != nil {
		t.Fatalf("different result: %v", err)
	}
	if third.Cached {
		t.Fatalf("different seed was served from cache: %+v", third)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`easyhps_cache_hits_total{layer="server"} 1`,
		`easyhps_cache_misses_total{layer="server"} 2`,
		`easyhps_cache_entries{kind="job"} 2`,
		"easyhps_cache_bytes",
		"easyhps_cache_evictions_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServerCacheDisabledNoSeries: without a store, no easyhps_cache_
// series appear and resubmissions recompute.
func TestServerCacheDisabledNoSeries(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 2, QueueDepth: 4})
	ctx := context.Background()
	spec := server.JobSpec{Kernel: "lcs", N: 40, Seed: 3}
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		res, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Cached {
			t.Fatalf("run %d cached without a store: %+v", i, res)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if strings.Contains(text, "easyhps_cache_") {
		t.Fatalf("cache series exposed without a store:\n%s", text)
	}
}

// TestSingleFlightCoalescing: identical concurrent submissions collapse
// onto one computation even with the cache disabled. The followers get
// the leader's result marked Cached, and the coalesced counter counts
// them.
func TestSingleFlightCoalescing(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: slowRun(), MaxConcurrent: 1, QueueDepth: 8})
	ctx := context.Background()
	spec := server.JobSpec{Kernel: "swgg", N: 48, Seed: 5}

	leader, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	var followers []server.JobStatus
	for i := 0; i < 2; i++ {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit follower %d: %v", i, err)
		}
		followers = append(followers, st)
	}

	fin, err := c.Wait(ctx, leader.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait leader: %v", err)
	}
	if fin.State != server.StateDone {
		t.Fatalf("leader finished %s (%s)", fin.State, fin.Error)
	}
	lead, err := c.Result(ctx, leader.ID)
	if err != nil {
		t.Fatalf("leader result: %v", err)
	}
	if lead.Cached {
		t.Fatalf("leader marked cached: %+v", lead)
	}
	for i, f := range followers {
		fin, err := c.Wait(ctx, f.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait follower %d: %v", i, err)
		}
		if fin.State != server.StateDone {
			t.Fatalf("follower %d finished %s (%s)", i, fin.State, fin.Error)
		}
		res, err := c.Result(ctx, f.ID)
		if err != nil {
			t.Fatalf("follower %d result: %v", i, err)
		}
		if !res.Cached {
			t.Fatalf("follower %d not marked coalesced: %+v", i, res)
		}
		if res.Value != lead.Value {
			t.Fatalf("follower %d value %d != leader %d", i, res.Value, lead.Value)
		}
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(text, "easyhps_jobs_coalesced_total 2") {
		t.Errorf("metrics missing coalesced count:\n%s", text)
	}
}

// TestSingleFlightLeaderCancelPromotesFollower: cancelling the leader
// kills that job id only — a waiting follower is promoted to a fresh
// computation and still completes correctly.
func TestSingleFlightLeaderCancelPromotesFollower(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: slowRun(), MaxConcurrent: 1, QueueDepth: 8})
	ctx := context.Background()

	// Occupy the one run slot so the leader stays queued and is
	// cancellable before it runs.
	blocker, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 64, Seed: 99})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}

	spec := server.JobSpec{Kernel: "lcs", N: 48, Seed: 4}
	leader, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit leader: %v", err)
	}
	follower, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit follower: %v", err)
	}

	if _, err := c.Cancel(ctx, leader.ID); err != nil {
		t.Fatalf("cancel leader: %v", err)
	}
	fin, err := c.Wait(ctx, leader.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait leader: %v", err)
	}
	if fin.State != server.StateCancelled {
		t.Fatalf("leader finished %s, want cancelled", fin.State)
	}

	ffin, err := c.Wait(ctx, follower.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait follower: %v", err)
	}
	if ffin.State != server.StateDone {
		t.Fatalf("promoted follower finished %s (%s), want done", ffin.State, ffin.Error)
	}
	res, err := c.Result(ctx, follower.ID)
	if err != nil {
		t.Fatalf("follower result: %v", err)
	}
	if res.Cached {
		t.Fatalf("promoted follower claims a cached result: %+v", res)
	}

	if _, err := c.Wait(ctx, blocker.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait blocker: %v", err)
	}
}
