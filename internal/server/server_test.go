package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/server"
)

// fastRun is a small cluster deployment that finishes test-sized jobs
// quickly.
func fastRun() core.Config {
	return core.Config{
		Slaves:          2,
		Threads:         2,
		ProcPartition:   dag.Square(16),
		ThreadPartition: dag.Square(8),
		RunTimeout:      30 * time.Second,
	}
}

// slowRun emulates per-cell work so a job stays running long enough to be
// cancelled or to hold a run slot.
func slowRun() core.Config {
	cfg := fastRun()
	cfg.ProcPartition = dag.Square(8)
	cfg.ThreadPartition = dag.Square(8)
	cfg.WorkDelayPerCell = time.Millisecond
	return cfg
}

func startService(t *testing.T, cfg server.ManagerConfig) (*server.Manager, *client.Client) {
	t.Helper()
	mgr := server.NewManager(cfg, nil)
	ts := httptest.NewServer(server.NewHandler(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return mgr, client.New(ts.URL, ts.Client())
}

// TestJobLifecycle submits a job over HTTP, polls it to completion and
// checks the result against the sequential reference.
func TestJobLifecycle(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 2, QueueDepth: 4})
	ctx := context.Background()

	a := dp.RandomDNA(48, 7)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.2, 8)
	spec := server.JobSpec{Kernel: "editdist", SeqA: string(a), SeqB: string(b)}

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" || st.State != server.StateQueued {
		t.Fatalf("unexpected initial status %+v", st)
	}

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}
	if final.Progress.Total == 0 || final.Progress.Completed != final.Progress.Total {
		t.Fatalf("progress %+v, want completed == total > 0", final.Progress)
	}

	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	ref := dp.NewEditDistance(a, b)
	want := int64(ref.Distance(ref.Sequential()))
	if res.Value != want {
		t.Fatalf("edit distance %d, want %d", res.Value, want)
	}
	if res.Stats.Tasks == 0 || res.Stats.SubTasks == 0 {
		t.Fatalf("result stats empty: %+v", res.Stats)
	}
}

// TestConcurrentJobs runs several jobs of different kernels through the
// service at once; each must return its own correct answer.
func TestConcurrentJobs(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 3, QueueDepth: 8})
	ctx := context.Background()

	a := dp.RandomDNA(40, 3)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.15, 4)
	rna := dp.RandomRNA(40, 5)

	edRef := dp.NewEditDistance(a, b)
	lcsRef := dp.NewLCS(a, b)
	nuRef := dp.NewNussinov(rna)
	nuSeq := nuRef.Sequential()

	cases := []struct {
		spec server.JobSpec
		want int64
	}{
		{server.JobSpec{Kernel: "editdist", SeqA: string(a), SeqB: string(b)}, int64(edRef.Distance(edRef.Sequential()))},
		{server.JobSpec{Kernel: "lcs", SeqA: string(a), SeqB: string(b)}, int64(lcsRef.Sequential()[len(a)-1][len(b)-1])},
		{server.JobSpec{Kernel: "nussinov", SeqA: string(rna)}, int64(nuSeq[0][len(rna)-1])},
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(cases))
	for _, tc := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.Submit(ctx, tc.spec)
			if err != nil {
				errs <- err
				return
			}
			final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			if final.State != server.StateDone {
				errs <- errors.New(tc.spec.Kernel + " finished " + string(final.State) + ": " + final.Error)
				return
			}
			res, err := c.Result(ctx, st.ID)
			if err != nil {
				errs <- err
				return
			}
			if res.Value != tc.want {
				errs <- errors.New(tc.spec.Kernel + ": wrong value")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCancelMidRun cancels a running job via DELETE and expects it to
// reach the cancelled state well before it could have finished.
func TestCancelMidRun(t *testing.T) {
	// The chained Progress callback fires once the master is actually
	// executing — strictly after the manager flipped the job to running —
	// so waiting on it replaces polling Status.
	started := make(chan struct{}, 1)
	cfg := slowRun()
	cfg.Progress = func(completed, total int) {
		select {
		case started <- struct{}{}:
		default:
		}
	}
	_, c := startService(t, server.ManagerConfig{Run: cfg, MaxConcurrent: 1, QueueDepth: 2})
	ctx := context.Background()

	// 64x64 cells at 1ms emulated work each: several seconds of work.
	st, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 64, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for the job to actually start running.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started running")
	}
	if cur, err := c.Status(ctx, st.ID); err != nil || cur.State != server.StateRunning {
		t.Fatalf("status after start = (%+v, %v), want running", cur, err)
	}

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	final, err := c.Wait(waitCtx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after cancel: %v", err)
	}
	if final.State != server.StateCancelled {
		t.Fatalf("state after cancel %s, want cancelled", final.State)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("result of a cancelled job should error")
	}
	// Cancelling again reports the terminal state.
	if _, err := c.Cancel(ctx, st.ID); err == nil {
		t.Fatal("second cancel should report the job as finished")
	}
}

// TestAdmissionControl fills the single run slot and the bounded queue,
// expects 429 + Retry-After on the overflow submission, and then sees the
// backlog drain.
func TestAdmissionControl(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := slowRun()
	cfg.Progress = func(completed, total int) {
		select {
		case started <- struct{}{}:
		default:
		}
	}
	_, c := startService(t, server.ManagerConfig{
		Run:           cfg,
		MaxConcurrent: 1,
		QueueDepth:    1,
		RetryAfter:    2 * time.Second,
	})
	ctx := context.Background()

	// First slow job occupies the run slot...
	first, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 64, Seed: 1})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// ...wait until it is demonstrably executing (first Progress call),
	// so the next submission has the queue to itself.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first job never started")
	}
	// Second fills the queue.
	second, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 32, Seed: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// Third must be rejected with backpressure.
	_, err = c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 32, Seed: 3})
	var busy *client.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("overflow submit returned %v, want BusyError", err)
	}
	if busy.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v, want >= 1s", busy.RetryAfter)
	}

	// Cancel the running job; the backlog must drain and the queued job
	// complete.
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatalf("cancel first: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c.Wait(waitCtx, second.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait for queued job: %v", err)
	}
	if final.State != server.StateDone {
		t.Fatalf("queued job finished %s (%s), want done", final.State, final.Error)
	}
	// The service accepts submissions again.
	if _, err := c.Submit(ctx, server.JobSpec{Kernel: "lcs", N: 16, Seed: 4}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestUniqueJobIDs checks that ids come from a monotonic counter: a
// cancelled-then-resubmitted job never reuses an id, even across
// rejections.
func TestUniqueJobIDs(t *testing.T) {
	mgr, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 1, QueueDepth: 4})
	ctx := context.Background()

	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		st, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 16, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if seen[st.ID] {
			t.Fatalf("id %s reused", st.ID)
		}
		seen[st.ID] = true
		// Cancel some while queued/running, let others finish: ids must
		// stay unique regardless of lifecycle.
		if i%2 == 0 {
			_, _ = c.Cancel(ctx, st.ID)
		}
		if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if got := len(mgr.List()); got != 5 {
		t.Fatalf("job table has %d entries, want 5", got)
	}
}

// TestMetricsExposition checks the counters surface on /metrics after
// traffic.
func TestMetricsExposition(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 2, QueueDepth: 4})
	ctx := context.Background()

	st, err := c.Submit(ctx, server.JobSpec{Kernel: "swgg", N: 32, Seed: 9})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"easyhps_jobs_finished_total{state=\"done\"} 1",
		"easyhps_jobs_submitted_total 1",
		"easyhps_queue_depth 0",
		"easyhps_job_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Sub-task throughput counters must be non-zero after a completed run.
	if strings.Contains(text, "easyhps_subtasks_total 0\n") {
		t.Errorf("easyhps_subtasks_total still zero:\n%s", text)
	}
	if strings.Contains(text, "easyhps_tasks_total 0\n") {
		t.Errorf("easyhps_tasks_total still zero:\n%s", text)
	}
}

// TestClusterMetricsExposition checks that an attached elastic cluster's
// membership snapshot surfaces on /metrics — and that nothing
// cluster-related is emitted when no cluster is attached.
func TestClusterMetricsExposition(t *testing.T) {
	mgr, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxConcurrent: 1, QueueDepth: 2})
	ctx := context.Background()

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if strings.Contains(text, "easyhps_cluster_") {
		t.Fatalf("cluster metrics exposed without a cluster attached:\n%s", text)
	}

	mgr.SetClusterStats(func() cluster.Snapshot {
		return cluster.Snapshot{
			States:        map[string]int{"active": 3, "suspect": 1, "dead": 1},
			Joins:         5,
			Leaves:        1,
			Deaths:        1,
			LeasesRevoked: 2,
			Speculated:    4,
			SpecWon:       3,
			SpecWasted:    1,
			Steals:        6,
		}
	})
	text, err = c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"easyhps_cluster_members{state=\"active\"} 3",
		"easyhps_cluster_members{state=\"suspect\"} 1",
		"easyhps_cluster_members{state=\"dead\"} 1",
		"easyhps_cluster_members{state=\"left\"} 0",
		"easyhps_cluster_joins_total 5",
		"easyhps_cluster_leaves_total 1",
		"easyhps_cluster_deaths_total 1",
		"easyhps_cluster_leases_revoked_total 2",
		"easyhps_speculative_dispatched_total 4",
		"easyhps_speculative_won_total 3",
		"easyhps_speculative_wasted_total 1",
		"easyhps_steals_total 6",
		"easyhps_speculative_waste_ratio 0.250",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestGracefulShutdown drains a running job within the deadline.
func TestGracefulShutdown(t *testing.T) {
	mgr := server.NewManager(server.ManagerConfig{Run: fastRun(), MaxConcurrent: 1, QueueDepth: 2}, nil)
	ts := httptest.NewServer(server.NewHandler(mgr))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	st, err := c.Submit(ctx, server.JobSpec{Kernel: "editdist", N: 48, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	sctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := mgr.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// After the drain the job is terminal and new submissions are refused.
	final, err := mgr.Get(st.ID)
	if err != nil {
		t.Fatalf("get after shutdown: %v", err)
	}
	if s := final.Status().State; !s.Terminal() {
		t.Fatalf("job state after shutdown %s, want terminal", s)
	}
	if _, err := mgr.Submit(server.JobSpec{Kernel: "editdist", N: 16}); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("submit after shutdown returned %v, want ErrShuttingDown", err)
	}
}

// TestBadSpecs exercises the registry validation surface.
func TestBadSpecs(t *testing.T) {
	_, c := startService(t, server.ManagerConfig{Run: fastRun(), MaxCells: 1 << 12})
	ctx := context.Background()

	for name, spec := range map[string]server.JobSpec{
		"unknown kernel": {Kernel: "quicksort"},
		"missing inputs": {Kernel: "editdist"},
		"half a pair":    {Kernel: "lcs", SeqA: "ACGT"},
		"oversized":      {Kernel: "editdist", N: 1024},
	} {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("%s: submission accepted, want rejection", name)
		}
	}
	if _, err := c.Status(ctx, "job-999"); !client.IsNotFound(err) {
		t.Errorf("unknown job returned %v, want 404", err)
	}
}
