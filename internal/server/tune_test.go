package server_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/tune"
)

// TestMetricsTuneSeries: with a tuner snapshot source attached, /metrics
// exports the easyhps_tune_* gauges; when the source reports no active
// tuner (or is detached), the series disappear.
func TestMetricsTuneSeries(t *testing.T) {
	mgr := server.NewManager(server.ManagerConfig{Run: fastRun(), MaxConcurrent: 1, QueueDepth: 2}, nil)
	defer func() { _ = mgr.Shutdown(context.Background()) }()

	mgr.SetTuneStats(func() (tune.Snapshot, bool) {
		return tune.Snapshot{BatchCap: 6, SpecQuantile: 0.93, SpecMultiplier: 2.5, Adjustments: 17}, true
	})
	var b strings.Builder
	mgr.WriteMetrics(&b)
	text := b.String()
	for _, want := range []string{
		"easyhps_tune_batch_cap 6",
		"easyhps_tune_spec_quantile 0.930",
		"easyhps_tune_spec_multiplier 2.500",
		"easyhps_tune_adjustments_total 17",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	mgr.SetTuneStats(func() (tune.Snapshot, bool) { return tune.Snapshot{}, false })
	b.Reset()
	mgr.WriteMetrics(&b)
	if strings.Contains(b.String(), "easyhps_tune_") {
		t.Error("easyhps_tune_ series exported while no tuner is active")
	}

	mgr.SetTuneStats(nil)
	b.Reset()
	mgr.WriteMetrics(&b)
	if strings.Contains(b.String(), "easyhps_tune_") {
		t.Error("easyhps_tune_ series exported after the source was detached")
	}
}
