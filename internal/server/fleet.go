package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// ErrNoTrace means the job's scheduling trace was requested from a
// manager that is not running on a shared fleet (HTTP 404: the resource
// does not exist in this deployment mode).
var ErrNoTrace = errors.New("server: job traces require fleet mode")

// RegistryBuilder adapts the kernel registry as a fleet worker's job
// builder: the attach frame's spec is the JSON JobSpec the job was
// submitted with, so master and worker derive the same problem from the
// same bytes — and the attach digest catches a registry that drifted.
func RegistryBuilder(reg *Registry) fleet.Builder[int32] {
	return func(meta fleet.JobMeta) (core.Problem[int32], error) {
		var spec JobSpec
		if err := json.Unmarshal(meta.Spec, &spec); err != nil {
			return core.Problem[int32]{}, fmt.Errorf("server: decoding job %q spec: %w", meta.Name, err)
		}
		p, _, err := reg.Build(spec)
		return p, err
	}
}

// runFleet executes one job on the shared fleet instead of the in-process
// deployment. The run slot stays held for the duration, so MaxConcurrent
// acts purely as admission control on how many jobs the service feeds the
// fleet at once; the fleet's policy schedules among them.
func (m *Manager) runFleet(ctx context.Context, j *Job) (*core.Result[int32], error) {
	spec, err := json.Marshal(j.Spec)
	if err != nil {
		return nil, fmt.Errorf("server: encoding spec of %s: %w", j.ID, err)
	}
	req := fleet.JobRequest{
		Name:     j.ID,
		Spec:     spec,
		Proc:     m.cfg.Run.ProcPartition,
		Thread:   m.cfg.Run.ThreadPartition,
		Weight:   j.Spec.Weight,
		Priority: j.Spec.Priority,
		Timeout:  m.cfg.Run.RunTimeout,
		// The kernel+inputs digest scopes the fleet's per-block cache
		// keys; the fleet only uses it when it has a store attached.
		CacheKey: j.digest,
		OnProgress: func(completed, total int) {
			j.completed.Store(int64(completed))
			j.total.Store(int64(total))
		},
	}
	res, err := m.cfg.Fleet.Run(ctx, j.problem, req)
	if err != nil {
		return nil, err
	}
	return &core.Result[int32]{Store: res.Store, Stats: coreStats(res.Stats)}, nil
}

// Trace returns the scheduling trace of a fleet job as export-ready
// events. Unknown ids answer ErrNotFound; managers without a fleet answer
// ErrNoTrace. A job still queued (not yet handed to the fleet) has an
// empty trace.
func (m *Manager) Trace(id string) ([]trace.JSONEvent, error) {
	if _, err := m.Get(id); err != nil {
		return nil, err
	}
	if m.cfg.Fleet == nil {
		return nil, ErrNoTrace
	}
	return trace.ExportJSON(m.cfg.Fleet.TraceEvents(id)), nil
}

// coreStats projects a fleet job's ledger onto core.Stats so finishers
// and RunStats work unchanged. SubTasks and transport totals stay zero:
// thread-level execution happens on remote workers, outside the master's
// books.
func coreStats(s cluster.Stats) core.Stats {
	return core.Stats{
		Tasks:           s.Tasks,
		Dispatches:      s.Dispatches,
		Redistributions: s.Redistributions,
		StaleResults:    s.StaleResults,
		Restored:        s.Restored,
		BatchMessages:   s.BatchMessages,
		TaskBytes:       s.TaskBytes,
		Speculated:      s.Speculated,
		SpecWon:         s.SpecWon,
		SpecWasted:      s.SpecWasted,
		Steals:          s.Steals,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		Elapsed:         s.Elapsed,
	}
}
