package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// API is the HTTP front of a Manager. Routes:
//
//	POST   /v1/jobs           submit a JobSpec            -> 202 JobStatus
//	GET    /v1/jobs           list jobs                   -> 200 []JobStatus
//	GET    /v1/jobs/{id}      job state + progress        -> 200 JobStatus
//	GET    /v1/jobs/{id}/result                           -> 200 JobResult
//	GET    /v1/jobs/{id}/trace   scheduling trace (fleet) -> 200 []trace.JSONEvent
//	DELETE /v1/jobs/{id}      cancel                      -> 202 JobStatus
//	GET    /v1/kernels        registry listing            -> 200 []KernelEntry
//	GET    /metrics           text exposition             -> 200 text/plain
//	GET    /healthz           liveness                    -> 200
//
// Error mapping: bad spec 400, unknown job 404, result-not-ready or
// cancel-after-finish 409, queue full 429 (+ Retry-After seconds),
// shutting down 503.
type API struct {
	mgr *Manager
}

// NewHandler builds the HTTP handler over mgr.
func NewHandler(mgr *Manager) http.Handler {
	a := &API{mgr: mgr}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.trace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("GET /v1/kernels", a.kernels)
	mux.HandleFunc("GET /metrics", a.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429 rejections.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (a *API) writeError(w http.ResponseWriter, err error) {
	body := ErrorBody{Error: err.Error()}
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrBusy):
		code = http.StatusTooManyRequests
		secs := int(a.mgr.RetryAfter().Seconds())
		if secs < 1 {
			secs = 1
		}
		body.RetryAfterSeconds = secs
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoTrace):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotDone), errors.Is(err, ErrFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, body)
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		a.writeError(w, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	j, err := a.mgr.Submit(spec)
	if err != nil {
		a.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.mgr.List())
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	j, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		a.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (a *API) result(w http.ResponseWriter, r *http.Request) {
	j, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		a.writeError(w, err)
		return
	}
	res, err := j.Result()
	if err != nil {
		a.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *API) trace(w http.ResponseWriter, r *http.Request) {
	evs, err := a.mgr.Trace(r.PathValue("id"))
	if err != nil {
		a.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.mgr.Cancel(id); err != nil {
		a.writeError(w, err)
		return
	}
	j, err := a.mgr.Get(id)
	if err != nil {
		a.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (a *API) kernels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.mgr.Registry().Names())
}

func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	a.mgr.WriteMetrics(w)
}
