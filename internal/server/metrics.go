package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/tune"
)

// latencyBuckets are the upper bounds (seconds) of the per-job latency
// histogram, Prometheus-style with a +Inf catch-all.
var latencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// metrics is the service-level counter set behind GET /metrics. Job-state
// gauges are derived from the manager's live job table at exposition
// time; everything here is cumulative.
type metrics struct {
	submitted atomic.Int64 // jobs admitted into the queue
	rejected  atomic.Int64 // submissions refused with 429
	coalesced atomic.Int64 // submissions absorbed by an identical in-flight job

	// final[state] counts jobs that reached each terminal state.
	finalMu sync.Mutex
	final   map[State]int64

	// Run totals accumulated from completed runs' core.Stats.
	tasks      atomic.Int64
	subTasks   atomic.Int64
	redist     atomic.Int64
	messages   atomic.Int64
	payload    atomic.Int64
	dispatches atomic.Int64
	batchMsgs  atomic.Int64
	taskBytes  atomic.Int64
	speculated atomic.Int64
	specWon    atomic.Int64
	specWasted atomic.Int64
	steals     atomic.Int64
	spills     atomic.Int64
	spillLoads atomic.Int64

	// Per-job latency histogram over jobs that actually ran.
	histMu    sync.Mutex
	histCount [12]int64 // len(latencyBuckets)+1, last is +Inf
	histSum   float64
	histN     int64
}

func newMetrics() *metrics {
	return &metrics{final: make(map[State]int64)}
}

// observeFinal records a terminal transition. latency is zero for jobs
// cancelled before they ran; those count toward the state totals but not
// the latency histogram.
func (x *metrics) observeFinal(s State, latency time.Duration) {
	x.finalMu.Lock()
	x.final[s]++
	x.finalMu.Unlock()
	if latency <= 0 {
		return
	}
	sec := latency.Seconds()
	x.histMu.Lock()
	idx := sort.SearchFloat64s(latencyBuckets, sec)
	x.histCount[idx]++
	x.histSum += sec
	x.histN++
	x.histMu.Unlock()
}

// addRunStats folds one completed run's scheduling statistics into the
// service totals (sub-task throughput, traffic).
func (x *metrics) addRunStats(s core.Stats) {
	x.tasks.Add(s.Tasks)
	x.subTasks.Add(s.SubTasks)
	x.redist.Add(s.Redistributions)
	x.messages.Add(s.Messages)
	x.payload.Add(s.PayloadBytes)
	x.dispatches.Add(s.Dispatches)
	x.batchMsgs.Add(s.BatchMessages)
	x.taskBytes.Add(s.TaskBytes)
	x.speculated.Add(s.Speculated)
	x.specWon.Add(s.SpecWon)
	x.specWasted.Add(s.SpecWasted)
	x.steals.Add(s.Steals)
	x.spills.Add(s.Spills)
	x.spillLoads.Add(s.SpillLoads)
}

// SetClusterStats attaches an elastic-cluster snapshot source (typically
// the Registry.Metrics of a running cluster.Master) to the /metrics
// exposition. A nil fn detaches it. fn is called at exposition time and
// must be safe for concurrent use.
func (m *Manager) SetClusterStats(fn func() cluster.Snapshot) {
	m.clusterMu.Lock()
	m.clusterStats = fn
	m.clusterMu.Unlock()
}

// SetFleetStats attaches a shared-fleet snapshot source to the /metrics
// exposition (NewManager installs cfg.Fleet's automatically; tests may
// inject a synthetic one). A nil fn detaches it. fn is called at
// exposition time and must be safe for concurrent use.
func (m *Manager) SetFleetStats(fn func() fleet.Snapshot) {
	m.fleetMu.Lock()
	m.fleetStats = fn
	m.fleetMu.Unlock()
}

// SetTuneStats attaches a self-tuning controller snapshot source to the
// /metrics exposition (NewManager installs cfg.Fleet's automatically; a
// cluster-mode service wires its master's TuneSnapshot). The source
// returns ok=false while no tuner is active, which suppresses the
// easyhps_tune_* series. A nil fn detaches it. fn is called at
// exposition time and must be safe for concurrent use.
func (m *Manager) SetTuneStats(fn func() (tune.Snapshot, bool)) {
	m.tuneMu.Lock()
	m.tuneStats = fn
	m.tuneMu.Unlock()
}

// WriteMetrics writes the text exposition (Prometheus-compatible format)
// of the manager's metrics.
func (m *Manager) WriteMetrics(w io.Writer) {
	x := m.metrics

	m.mu.Lock()
	byState := make(map[State]int64)
	for _, j := range m.jobs {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP easyhps_jobs Current jobs by state.\n# TYPE easyhps_jobs gauge\n")
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "easyhps_jobs{state=%q} %d\n", s, byState[s])
	}

	x.finalMu.Lock()
	done, failed, cancelled := x.final[StateDone], x.final[StateFailed], x.final[StateCancelled]
	x.finalMu.Unlock()
	fmt.Fprintf(w, "# HELP easyhps_jobs_finished_total Jobs that reached a terminal state.\n# TYPE easyhps_jobs_finished_total counter\n")
	fmt.Fprintf(w, "easyhps_jobs_finished_total{state=\"done\"} %d\n", done)
	fmt.Fprintf(w, "easyhps_jobs_finished_total{state=\"failed\"} %d\n", failed)
	fmt.Fprintf(w, "easyhps_jobs_finished_total{state=\"cancelled\"} %d\n", cancelled)

	fmt.Fprintf(w, "# HELP easyhps_jobs_submitted_total Jobs admitted into the queue.\n# TYPE easyhps_jobs_submitted_total counter\neasyhps_jobs_submitted_total %d\n", x.submitted.Load())
	fmt.Fprintf(w, "# HELP easyhps_jobs_rejected_total Submissions refused by admission control.\n# TYPE easyhps_jobs_rejected_total counter\neasyhps_jobs_rejected_total %d\n", x.rejected.Load())
	fmt.Fprintf(w, "# HELP easyhps_jobs_coalesced_total Submissions absorbed by an identical in-flight job (single-flight).\n# TYPE easyhps_jobs_coalesced_total counter\neasyhps_jobs_coalesced_total %d\n", x.coalesced.Load())
	fmt.Fprintf(w, "# HELP easyhps_queue_depth Jobs waiting for a run slot.\n# TYPE easyhps_queue_depth gauge\neasyhps_queue_depth %d\n", m.QueueDepth())
	fmt.Fprintf(w, "# HELP easyhps_queue_capacity Size of the bounded submission queue.\n# TYPE easyhps_queue_capacity gauge\neasyhps_queue_capacity %d\n", m.cfg.QueueDepth)
	fmt.Fprintf(w, "# HELP easyhps_run_slots Maximum concurrently running jobs.\n# TYPE easyhps_run_slots gauge\neasyhps_run_slots %d\n", m.cfg.MaxConcurrent)

	fmt.Fprintf(w, "# HELP easyhps_tasks_total Processor-level sub-tasks completed across all runs.\n# TYPE easyhps_tasks_total counter\neasyhps_tasks_total %d\n", x.tasks.Load())
	fmt.Fprintf(w, "# HELP easyhps_subtasks_total Thread-level sub-sub-tasks executed across all runs.\n# TYPE easyhps_subtasks_total counter\neasyhps_subtasks_total %d\n", x.subTasks.Load())
	fmt.Fprintf(w, "# HELP easyhps_redistributions_total Processor-level timeout recoveries across all runs.\n# TYPE easyhps_redistributions_total counter\neasyhps_redistributions_total %d\n", x.redist.Load())
	fmt.Fprintf(w, "# HELP easyhps_messages_total Transport messages across all runs.\n# TYPE easyhps_messages_total counter\neasyhps_messages_total %d\n", x.messages.Load())
	fmt.Fprintf(w, "# HELP easyhps_payload_bytes_total Transport payload bytes across all runs.\n# TYPE easyhps_payload_bytes_total counter\neasyhps_payload_bytes_total %d\n", x.payload.Load())

	dispatches, batchMsgs, taskBytes := x.dispatches.Load(), x.batchMsgs.Load(), x.taskBytes.Load()
	fmt.Fprintf(w, "# HELP easyhps_dispatches_total Vertices dispatched to workers across all runs.\n# TYPE easyhps_dispatches_total counter\neasyhps_dispatches_total %d\n", dispatches)
	fmt.Fprintf(w, "# HELP easyhps_batch_messages_total Multi-vertex task-batch messages sent across all runs.\n# TYPE easyhps_batch_messages_total counter\neasyhps_batch_messages_total %d\n", batchMsgs)
	fmt.Fprintf(w, "# HELP easyhps_task_payload_bytes_total Task payload bytes shipped to workers across all runs.\n# TYPE easyhps_task_payload_bytes_total counter\neasyhps_task_payload_bytes_total %d\n", taskBytes)
	// Derived gauges for dashboards: an upper bound on the realized batch
	// size (vertices over batch messages; exact when every message is a
	// batch) and payload bytes per dispatched vertex.
	if batchMsgs > 0 {
		fmt.Fprintf(w, "# HELP easyhps_dispatch_batch_size Mean vertices per task-batch message across all runs.\n# TYPE easyhps_dispatch_batch_size gauge\neasyhps_dispatch_batch_size %.3f\n", float64(dispatches)/float64(batchMsgs))
	} else {
		fmt.Fprintf(w, "# HELP easyhps_dispatch_batch_size Mean vertices per task-batch message across all runs.\n# TYPE easyhps_dispatch_batch_size gauge\neasyhps_dispatch_batch_size 1\n")
	}
	if dispatches > 0 {
		fmt.Fprintf(w, "# HELP easyhps_dispatch_bytes_per_vertex Mean task payload bytes per dispatched vertex across all runs.\n# TYPE easyhps_dispatch_bytes_per_vertex gauge\neasyhps_dispatch_bytes_per_vertex %.1f\n", float64(taskBytes)/float64(dispatches))
	} else {
		fmt.Fprintf(w, "# HELP easyhps_dispatch_bytes_per_vertex Mean task payload bytes per dispatched vertex across all runs.\n# TYPE easyhps_dispatch_bytes_per_vertex gauge\neasyhps_dispatch_bytes_per_vertex 0\n")
	}

	// Straggler-mitigation totals: completed runs' stats, plus the live
	// elastic cluster's counters when a snapshot source is attached.
	speculated, specWon, specWasted := x.speculated.Load(), x.specWon.Load(), x.specWasted.Load()
	steals := x.steals.Load()

	m.clusterMu.Lock()
	clusterFn := m.clusterStats
	m.clusterMu.Unlock()
	if clusterFn != nil {
		s := clusterFn()
		speculated += s.Speculated
		specWon += s.SpecWon
		specWasted += s.SpecWasted
		steals += s.Steals
		writeMembership(w, s)
	}

	m.fleetMu.Lock()
	fleetFn := m.fleetStats
	m.fleetMu.Unlock()
	if fleetFn != nil {
		snap := fleetFn()
		speculated += snap.Aggregate.Speculated
		specWon += snap.Aggregate.SpecWon
		specWasted += snap.Aggregate.SpecWasted
		steals += snap.Aggregate.Steals
		if clusterFn == nil {
			// The fleet's membership registry plays the cluster role; reuse
			// the cluster series so dashboards work in either mode.
			writeMembership(w, snap.Members)
		}
		writeFleet(w, snap)
	}

	fmt.Fprintf(w, "# HELP easyhps_speculative_dispatched_total Speculative backup attempts dispatched.\n# TYPE easyhps_speculative_dispatched_total counter\neasyhps_speculative_dispatched_total %d\n", speculated)
	fmt.Fprintf(w, "# HELP easyhps_speculative_won_total Speculative backups whose result beat the original.\n# TYPE easyhps_speculative_won_total counter\neasyhps_speculative_won_total %d\n", specWon)
	fmt.Fprintf(w, "# HELP easyhps_speculative_wasted_total Speculative backups that lost the race or were cancelled.\n# TYPE easyhps_speculative_wasted_total counter\neasyhps_speculative_wasted_total %d\n", specWasted)
	fmt.Fprintf(w, "# HELP easyhps_steals_total Queued sub-tasks stolen from loaded workers for starved ones.\n# TYPE easyhps_steals_total counter\neasyhps_steals_total %d\n", steals)
	if speculated > 0 {
		fmt.Fprintf(w, "# HELP easyhps_speculative_waste_ratio Wasted fraction of dispatched speculative backups.\n# TYPE easyhps_speculative_waste_ratio gauge\neasyhps_speculative_waste_ratio %.3f\n", float64(specWasted)/float64(speculated))
	} else {
		fmt.Fprintf(w, "# HELP easyhps_speculative_waste_ratio Wasted fraction of dispatched speculative backups.\n# TYPE easyhps_speculative_waste_ratio gauge\neasyhps_speculative_waste_ratio 0\n")
	}

	m.tuneMu.Lock()
	tuneFn := m.tuneStats
	m.tuneMu.Unlock()
	if tuneFn != nil {
		if s, ok := tuneFn(); ok {
			writeTune(w, s)
		}
	}

	fmt.Fprintf(w, "# HELP easyhps_spill_total Blocks spilled to disk by memory-bounded stores across all runs.\n# TYPE easyhps_spill_total counter\neasyhps_spill_total %d\n", x.spills.Load())
	fmt.Fprintf(w, "# HELP easyhps_spill_load_total Spilled blocks loaded back from disk across all runs.\n# TYPE easyhps_spill_load_total counter\neasyhps_spill_load_total %d\n", x.spillLoads.Load())

	if m.cfg.Cache != nil {
		writeCache(w, m.cfg.Cache.Snapshot())
	}

	x.histMu.Lock()
	counts, sum, n := x.histCount, x.histSum, x.histN
	x.histMu.Unlock()
	writeLatencyHistogram(w, counts, sum, n)
}

// writeCache emits the content-addressed result store's series, labelled
// by consumer layer (server = whole-job memoization, master = per-block
// memoization, wire = content-keyed shipping suppression).
func writeCache(w io.Writer, s cas.Stats) {
	fmt.Fprintf(w, "# HELP easyhps_cache_hits_total Result-cache hits by consumer layer.\n# TYPE easyhps_cache_hits_total counter\n")
	for _, l := range []cas.Layer{cas.LayerServer, cas.LayerMaster, cas.LayerWire} {
		fmt.Fprintf(w, "easyhps_cache_hits_total{layer=%q} %d\n", l, s.Hits[l])
	}
	fmt.Fprintf(w, "# HELP easyhps_cache_misses_total Result-cache misses by consumer layer.\n# TYPE easyhps_cache_misses_total counter\n")
	for _, l := range []cas.Layer{cas.LayerServer, cas.LayerMaster, cas.LayerWire} {
		fmt.Fprintf(w, "easyhps_cache_misses_total{layer=%q} %d\n", l, s.Misses[l])
	}
	fmt.Fprintf(w, "# HELP easyhps_cache_evictions_total Result-cache entries dropped (blocks by the LRU byte budget, jobs by TTL).\n# TYPE easyhps_cache_evictions_total counter\n")
	fmt.Fprintf(w, "easyhps_cache_evictions_total{kind=\"block\"} %d\n", s.BlockEvictions)
	fmt.Fprintf(w, "easyhps_cache_evictions_total{kind=\"job\"} %d\n", s.JobEvictions)
	fmt.Fprintf(w, "# HELP easyhps_cache_bytes Resident result-cache payload bytes.\n# TYPE easyhps_cache_bytes gauge\neasyhps_cache_bytes %d\n", s.Bytes)
	fmt.Fprintf(w, "# HELP easyhps_cache_entries Resident result-cache entries by kind.\n# TYPE easyhps_cache_entries gauge\n")
	fmt.Fprintf(w, "easyhps_cache_entries{kind=\"block\"} %d\n", s.Blocks)
	fmt.Fprintf(w, "easyhps_cache_entries{kind=\"job\"} %d\n", s.Jobs)
}

// writeMembership emits the elastic-membership series shared by cluster
// and fleet mode.
func writeMembership(w io.Writer, s cluster.Snapshot) {
	fmt.Fprintf(w, "# HELP easyhps_cluster_members Elastic cluster members by state.\n# TYPE easyhps_cluster_members gauge\n")
	for _, state := range []string{"active", "suspect", "dead", "left"} {
		fmt.Fprintf(w, "easyhps_cluster_members{state=%q} %d\n", state, s.States[state])
	}
	fmt.Fprintf(w, "# HELP easyhps_cluster_joins_total Workers admitted into the elastic cluster.\n# TYPE easyhps_cluster_joins_total counter\neasyhps_cluster_joins_total %d\n", s.Joins)
	fmt.Fprintf(w, "# HELP easyhps_cluster_leaves_total Graceful departures from the elastic cluster.\n# TYPE easyhps_cluster_leaves_total counter\neasyhps_cluster_leaves_total %d\n", s.Leaves)
	fmt.Fprintf(w, "# HELP easyhps_cluster_deaths_total Members declared dead (heartbeat loss or connection failure).\n# TYPE easyhps_cluster_deaths_total counter\neasyhps_cluster_deaths_total %d\n", s.Deaths)
	fmt.Fprintf(w, "# HELP easyhps_cluster_leases_revoked_total Task leases revoked by member death or leave.\n# TYPE easyhps_cluster_leases_revoked_total counter\neasyhps_cluster_leases_revoked_total %d\n", s.LeasesRevoked)
}

// writeFleet emits the shared-fleet section: job-state counts, the
// autoscaling signals (aggregate queue depth, hunger beacons, per-job
// deficit), and per-job labelled progress and straggler counters.
func writeFleet(w io.Writer, snap fleet.Snapshot) {
	fmt.Fprintf(w, "# HELP easyhps_fleet_jobs Fleet jobs by state (finished states bounded by the retention window).\n# TYPE easyhps_fleet_jobs gauge\n")
	for _, state := range []string{"running", "done", "failed"} {
		fmt.Fprintf(w, "easyhps_fleet_jobs{state=%q} %d\n", state, snap.States[state])
	}
	fmt.Fprintf(w, "# HELP easyhps_fleet_queue_depth Computable vertices queued across running jobs — work the pool has not absorbed.\n# TYPE easyhps_fleet_queue_depth gauge\neasyhps_fleet_queue_depth %d\n", snap.QueueDepth)
	fmt.Fprintf(w, "# HELP easyhps_fleet_hunger_total Hunger beacons received from idle workers.\n# TYPE easyhps_fleet_hunger_total counter\neasyhps_fleet_hunger_total %d\n", snap.Hungers)

	if len(snap.Jobs) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP easyhps_job_vertices_done Completed DAG vertices per fleet job.\n# TYPE easyhps_job_vertices_done gauge\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_vertices_done{job=%q} %d\n", j.Name, j.Done)
	}
	fmt.Fprintf(w, "# HELP easyhps_job_vertices_total DAG size per fleet job.\n# TYPE easyhps_job_vertices_total gauge\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_vertices_total{job=%q} %d\n", j.Name, j.Total)
	}
	fmt.Fprintf(w, "# HELP easyhps_job_deficit Fair-share service debt per running fleet job (normalized dispatches behind the most-served job).\n# TYPE easyhps_job_deficit gauge\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_deficit{job=%q} %g\n", j.Name, j.Deficit)
	}
	fmt.Fprintf(w, "# HELP easyhps_job_speculated_total Speculative backup attempts dispatched per fleet job.\n# TYPE easyhps_job_speculated_total counter\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_speculated_total{job=%q} %d\n", j.Name, j.Stats.Speculated)
	}
	fmt.Fprintf(w, "# HELP easyhps_job_steals_total Vertices stolen toward hungry workers per fleet job.\n# TYPE easyhps_job_steals_total counter\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_steals_total{job=%q} %d\n", j.Name, j.Stats.Steals)
	}
	fmt.Fprintf(w, "# HELP easyhps_job_redistributions_total Overtime redistributions per fleet job.\n# TYPE easyhps_job_redistributions_total counter\n")
	for _, j := range snap.Jobs {
		fmt.Fprintf(w, "easyhps_job_redistributions_total{job=%q} %d\n", j.Name, j.Stats.Redistributions)
	}
}

// writeTune emits the self-tuning controller's current recommendations —
// the knobs the runtime is actually scheduling with right now.
func writeTune(w io.Writer, s tune.Snapshot) {
	fmt.Fprintf(w, "# HELP easyhps_tune_batch_cap Dispatch batch cap currently recommended by the self-tuner.\n# TYPE easyhps_tune_batch_cap gauge\neasyhps_tune_batch_cap %d\n", s.BatchCap)
	fmt.Fprintf(w, "# HELP easyhps_tune_spec_quantile Runtime-profile quantile currently used for speculation thresholds.\n# TYPE easyhps_tune_spec_quantile gauge\neasyhps_tune_spec_quantile %.3f\n", s.SpecQuantile)
	fmt.Fprintf(w, "# HELP easyhps_tune_spec_multiplier Multiplier currently applied to the speculation quantile.\n# TYPE easyhps_tune_spec_multiplier gauge\neasyhps_tune_spec_multiplier %.3f\n", s.SpecMultiplier)
	fmt.Fprintf(w, "# HELP easyhps_tune_adjustments_total Control ticks that changed a recommendation.\n# TYPE easyhps_tune_adjustments_total counter\neasyhps_tune_adjustments_total %d\n", s.Adjustments)
}

// writeLatencyHistogram emits the per-job latency histogram.
func writeLatencyHistogram(w io.Writer, counts [12]int64, sum float64, n int64) {
	fmt.Fprintf(w, "# HELP easyhps_job_latency_seconds Run latency of finished jobs.\n# TYPE easyhps_job_latency_seconds histogram\n")
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "easyhps_job_latency_seconds_bucket{le=\"%g\"} %d\n", le, cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "easyhps_job_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "easyhps_job_latency_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "easyhps_job_latency_seconds_count %d\n", n)
}
