// Package server is the multi-tenant DP job service over the EasyHPS
// runtime: a long-running job manager that owns one in-process cluster
// deployment (Slaves x Threads plus partition sizes) and multiplexes many
// concurrent DP jobs onto it, an HTTP API (submit / status / result /
// cancel) in front of it, and a text-exposition metrics endpoint. The
// manager applies admission control — a bounded submission queue behind a
// fixed number of run slots — so overload surfaces as an immediate "busy"
// answer instead of unbounded buffering.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dp"
)

// JobSpec is the wire description of one DP job: which kernel from the
// registry to run and its inputs. Sequence kernels take explicit SeqA/SeqB
// (SeqA alone for Nussinov) or generate reproducible random workloads of
// length N from Seed when the sequences are omitted.
type JobSpec struct {
	// Kernel is a registry name; see Registry.Names.
	Kernel string `json:"kernel"`
	// SeqA and SeqB are the explicit input sequences of the pairwise
	// kernels (editdist, lcs, needleman, swgg); Nussinov uses SeqA only.
	SeqA string `json:"seq_a,omitempty"`
	SeqB string `json:"seq_b,omitempty"`
	// N is the generated-workload size used when sequences are omitted:
	// sequence length for the alignment kernels, item count for knapsack.
	N int `json:"n,omitempty"`
	// Seed makes generated workloads reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Capacity is the knapsack capacity (defaults to 4*N).
	Capacity int `json:"capacity,omitempty"`
	// Weight and Priority are the fair-share scheduling knobs of fleet
	// mode: Weight skews this job's share of the pool (<= 0 means 1) and
	// a higher Priority class dispatches before lower ones entirely.
	// Ignored by the in-process deployment, which runs jobs on dedicated
	// slots.
	Weight   float64 `json:"weight,omitempty"`
	Priority int     `json:"priority,omitempty"`
}

// cacheDigest fingerprints the spec's kernel and inputs — the identity the
// whole-job cache and the single-flight table coalesce on. Scheduling
// knobs (Weight, Priority) are excluded: they change how a job runs, never
// what it answers. The %q quoting keeps adjacent fields from aliasing
// (e.g. seq_a="ab",seq_b="c" vs seq_a="a",seq_b="bc").
func (s JobSpec) cacheDigest() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("easyhps-job:1:%s:%q:%q:%d:%d:%d",
		s.Kernel, s.SeqA, s.SeqB, s.N, s.Seed, s.Capacity)))
	return hex.EncodeToString(h[:8])
}

// JobResult is the answer of a finished job: the kernel's headline scalar
// (edit distance, alignment score, pair count, ...) plus a human-readable
// description and the run's scheduling statistics.
type JobResult struct {
	Kernel string `json:"kernel"`
	// Value is the kernel-specific scalar extracted from the completed
	// matrix.
	Value int64 `json:"value"`
	// Detail says what Value means for this kernel.
	Detail string `json:"detail"`
	// Cells is the DP matrix size that was computed.
	Cells int64 `json:"cells"`
	// Cached marks a result served from the whole-job cache (or shared
	// from a coalesced in-flight computation) instead of computed for
	// this submission.
	Cached bool `json:"cached,omitempty"`
	// Stats summarizes the run.
	Stats RunStats `json:"stats"`
}

// RunStats is the JSON projection of core.Stats.
type RunStats struct {
	Tasks           int64   `json:"tasks"`
	Dispatches      int64   `json:"dispatches"`
	SubTasks        int64   `json:"sub_tasks"`
	Redistributions int64   `json:"redistributions"`
	Messages        int64   `json:"messages"`
	PayloadBytes    int64   `json:"payload_bytes"`
	BatchMessages   int64   `json:"batch_messages,omitempty"`
	TaskBytes       int64   `json:"task_bytes,omitempty"`
	CacheHits       int64   `json:"cache_hits,omitempty"`
	CacheMisses     int64   `json:"cache_misses,omitempty"`
	Spills          int64   `json:"spills,omitempty"`
	SpillLoads      int64   `json:"spill_loads,omitempty"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
}

func projectStats(s core.Stats) RunStats {
	return RunStats{
		Tasks:           s.Tasks,
		Dispatches:      s.Dispatches,
		SubTasks:        s.SubTasks,
		Redistributions: s.Redistributions,
		Messages:        s.Messages,
		PayloadBytes:    s.PayloadBytes,
		BatchMessages:   s.BatchMessages,
		TaskBytes:       s.TaskBytes,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		Spills:          s.Spills,
		SpillLoads:      s.SpillLoads,
		ElapsedSeconds:  s.Elapsed.Seconds(),
	}
}

// buildFunc validates a spec and assembles the runnable problem plus the
// finisher that extracts the kernel's answer from the completed run.
type buildFunc func(spec JobSpec) (core.Problem[int32], finishFunc, error)

type finishFunc func(res *core.Result[int32]) JobResult

// KernelEntry describes one registered kernel.
type KernelEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	build       buildFunc
}

// Registry maps kernel names to builders over the internal/dp
// applications. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]KernelEntry
}

// NewRegistry returns a registry populated with the built-in int32 DP
// kernels.
func NewRegistry() *Registry {
	r := &Registry{kernels: make(map[string]KernelEntry)}
	r.register(KernelEntry{
		Name:        "editdist",
		Description: "Levenshtein edit distance (wavefront)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			a, b, err := pairInputs(spec, dp.DNAAlphabet)
			if err != nil {
				return core.Problem[int32]{}, nil, err
			}
			k := dp.NewEditDistance(a, b)
			return k.Problem(), scalarFinish(spec.Kernel, "edit distance", func(m [][]int32) int64 {
				return int64(k.Distance(m))
			}), nil
		},
	})
	r.register(KernelEntry{
		Name:        "lcs",
		Description: "longest common subsequence length (wavefront)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			a, b, err := pairInputs(spec, dp.DNAAlphabet)
			if err != nil {
				return core.Problem[int32]{}, nil, err
			}
			k := dp.NewLCS(a, b)
			return k.Problem(), scalarFinish(spec.Kernel, "LCS length", func(m [][]int32) int64 {
				return int64(m[len(a)-1][len(b)-1])
			}), nil
		},
	})
	r.register(KernelEntry{
		Name:        "needleman",
		Description: "Needleman-Wunsch global alignment score (wavefront)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			a, b, err := pairInputs(spec, dp.DNAAlphabet)
			if err != nil {
				return core.Problem[int32]{}, nil, err
			}
			k := dp.NewNeedlemanWunsch(a, b)
			return k.Problem(), scalarFinish(spec.Kernel, "global alignment score", func(m [][]int32) int64 {
				return int64(k.GlobalScore(m))
			}), nil
		},
	})
	r.register(KernelEntry{
		Name:        "swgg",
		Description: "Smith-Waterman local alignment with general gaps (row/column)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			a, b, err := pairInputs(spec, dp.DNAAlphabet)
			if err != nil {
				return core.Problem[int32]{}, nil, err
			}
			k := dp.NewSWGG(a, b)
			return k.Problem(), scalarFinish(spec.Kernel, "best local alignment score", func(m [][]int32) int64 {
				score, _, _ := dp.BestLocal(m)
				return int64(score)
			}), nil
		},
	})
	r.register(KernelEntry{
		Name:        "nussinov",
		Description: "Nussinov RNA folding pair count (triangular)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			s := []byte(spec.SeqA)
			if len(s) == 0 {
				if spec.N <= 0 {
					return core.Problem[int32]{}, nil, fmt.Errorf("nussinov needs seq_a or n > 0")
				}
				s = dp.RandomRNA(spec.N, spec.Seed)
			}
			k := dp.NewNussinov(s)
			return k.Problem(), scalarFinish(spec.Kernel, "max base pairs", func(m [][]int32) int64 {
				return int64(m[0][len(s)-1])
			}), nil
		},
	})
	r.register(KernelEntry{
		Name:        "knapsack",
		Description: "0/1 knapsack best value (row-only)",
		build: func(spec JobSpec) (core.Problem[int32], finishFunc, error) {
			if spec.N <= 0 {
				return core.Problem[int32]{}, nil, fmt.Errorf("knapsack needs n > 0 items")
			}
			capacity := spec.Capacity
			if capacity <= 0 {
				capacity = 4 * spec.N
			}
			k := dp.NewKnapsack(spec.N, capacity, spec.Seed)
			return k.Problem(), scalarFinish(spec.Kernel, "best knapsack value", func(m [][]int32) int64 {
				return int64(k.Best(m))
			}), nil
		},
	})
	return r
}

func (r *Registry) register(e KernelEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kernels[e.Name] = e
}

// Names lists the registered kernels sorted by name.
func (r *Registry) Names() []KernelEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]KernelEntry, 0, len(r.kernels))
	for _, e := range r.kernels {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Build validates spec against the registry and returns the runnable
// problem plus its finisher.
func (r *Registry) Build(spec JobSpec) (core.Problem[int32], finishFunc, error) {
	r.mu.RLock()
	e, ok := r.kernels[spec.Kernel]
	r.mu.RUnlock()
	if !ok {
		return core.Problem[int32]{}, nil, fmt.Errorf("unknown kernel %q", spec.Kernel)
	}
	return e.build(spec)
}

// pairInputs resolves the two input sequences of a pairwise kernel:
// explicit seq_a/seq_b, or a reproducible random pair of length N (the
// second sequence a 15%-mutated copy of the first, so alignments have
// realistic structure).
func pairInputs(spec JobSpec, alphabet string) ([]byte, []byte, error) {
	if spec.SeqA != "" && spec.SeqB != "" {
		return []byte(spec.SeqA), []byte(spec.SeqB), nil
	}
	if spec.SeqA != "" || spec.SeqB != "" {
		return nil, nil, fmt.Errorf("%s needs both seq_a and seq_b (or neither plus n)", spec.Kernel)
	}
	if spec.N <= 0 {
		return nil, nil, fmt.Errorf("%s needs seq_a+seq_b or n > 0", spec.Kernel)
	}
	a := dp.RandomSeq(alphabet, spec.N, spec.Seed)
	b := dp.MutateSeq(a, alphabet, 0.15, spec.Seed+1)
	return a, b, nil
}

// scalarFinish builds a finisher that assembles the matrix and extracts
// one scalar from it.
func scalarFinish(kernel, detail string, extract func([][]int32) int64) finishFunc {
	return func(res *core.Result[int32]) JobResult {
		m := res.Matrix()
		return JobResult{
			Kernel: kernel,
			Value:  extract(m),
			Detail: detail,
			Cells:  int64(len(m)) * int64(len(m[0])),
			Stats:  projectStats(res.Stats),
		}
	}
}
