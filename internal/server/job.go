package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/tune"
)

// State is a job lifecycle state. The machine is
//
//	queued -> running -> done
//	                  -> failed
//	queued/running    -> cancelled
//
// and every terminal state is final.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Submission and lifecycle errors, mapped to HTTP statuses by the API
// layer.
var (
	// ErrBusy means the submission queue is full (backpressure; HTTP 429).
	ErrBusy = errors.New("server: submission queue full")
	// ErrShuttingDown means the manager no longer accepts jobs (HTTP 503).
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrNotFound means the job id is unknown (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrNotDone means the job has no result yet (HTTP 409).
	ErrNotDone = errors.New("server: job not finished")
	// ErrFinished means the job already reached a terminal state
	// (HTTP 409 on cancel).
	ErrFinished = errors.New("server: job already finished")
)

// Job is one submitted DP run. All mutable fields are guarded by mu
// except the progress counters, which the master's receive loop updates
// through atomics.
type Job struct {
	// ID is the globally unique job id, "job-<n>" with n drawn from the
	// manager's monotonic counter — never reused within a manager, so a
	// cancelled-then-resubmitted job can never collide with an in-flight
	// one.
	ID   string
	Spec JobSpec

	// digest is the spec's kernel+inputs fingerprint — the identity the
	// whole-job cache and the single-flight table key on.
	digest string

	problem core.Problem[int32]
	finish  finishFunc

	completed, total atomic.Int64

	mu        sync.Mutex
	state     State
	err       string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Kernel   string   `json:"kernel"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Progress counts completed and total processor-level sub-tasks, surfaced
// live from the master while the job runs.
type Progress struct {
	Completed int64 `json:"completed"`
	Total     int64 `json:"total"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Kernel: j.Spec.Kernel,
		State:  j.state,
		Progress: Progress{
			Completed: j.completed.Load(),
			Total:     j.total.Load(),
		},
		Error:       j.err,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished job's result, or ErrNotDone / the job's
// failure.
func (j *Job) Result() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		// Terminal without a result: wraps ErrFinished so the API layer
		// answers 409, not 400.
		return nil, fmt.Errorf("%w; job %s failed: %s", ErrFinished, j.ID, j.err)
	case StateCancelled:
		return nil, fmt.Errorf("%w; job %s was cancelled", ErrFinished, j.ID)
	default:
		return nil, ErrNotDone
	}
}

// ManagerConfig sizes the job service.
type ManagerConfig struct {
	// Run is the shared cluster deployment every job executes on:
	// Slaves x Threads with the configured partition sizes. The manager
	// owns this deployment for its whole lifetime; jobs never choose
	// their own. In fleet mode only the partition sizes and RunTimeout
	// apply (workers bring their own thread counts).
	Run core.Config
	// Fleet, when non-nil, routes every job onto this shared fleet
	// instead of the in-process deployment: elastic workers join the
	// fleet over TCP, the fleet's policy interleaves all admitted jobs
	// over the one pool, and the run slots become pure admission control
	// (a slot is held while its job is in flight on the fleet). The
	// manager does not own the fleet; the caller closes it.
	Fleet *fleet.Fleet[int32]
	// Cache, when non-nil, is the content-addressed result store. The
	// manager uses its whole-job tier: a submission whose spec digest has
	// a cached result answers immediately without holding a run slot, and
	// every computed result is written through. (The single-flight table
	// that coalesces concurrent identical submissions is independent of
	// the cache and always on.)
	Cache *cas.Store
	// MaxConcurrent is the number of run slots — jobs executing on the
	// cluster at once. Default 2.
	MaxConcurrent int
	// QueueDepth bounds the submission queue behind the run slots;
	// submissions beyond it are rejected with ErrBusy. Default 16.
	QueueDepth int
	// MaxCells rejects jobs whose DP matrix exceeds this size (admission
	// control against oversized tenants). 0 means 16M cells.
	MaxCells int64
	// RetryAfter is the backpressure hint returned with ErrBusy
	// rejections. Default 1s.
	RetryAfter time.Duration
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Run.Slaves < 1 {
		c.Run.Slaves = 2
	}
	if c.Run.Threads < 1 {
		c.Run.Threads = 2
	}
	return c
}

// Manager is the multi-tenant job service: it owns the persistent cluster
// deployment, admits jobs into a bounded queue, runs at most
// MaxConcurrent of them at a time, and tracks every job it has ever
// accepted by id.
type Manager struct {
	cfg ManagerConfig
	reg *Registry

	// rootCtx is the manager-lifetime context every job's run context
	// derives from. Shutdown's forced phase cancels it, which reaches
	// jobs that grab a run slot concurrently with the shutdown sweep —
	// a per-job cancel loop over m.running would miss a job whose
	// cancel func is registered after the loop snapshots the map.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	metrics *metrics

	// clusterMu guards clusterStats, the optional snapshot source of an
	// attached elastic cluster (see SetClusterStats).
	clusterMu    sync.Mutex
	clusterStats func() cluster.Snapshot

	// fleetMu guards fleetStats, the snapshot source of the attached
	// shared fleet (set automatically from cfg.Fleet; see SetFleetStats).
	fleetMu    sync.Mutex
	fleetStats func() fleet.Snapshot

	// tuneMu guards tuneStats, the snapshot source of a self-tuning
	// controller (set automatically from cfg.Fleet when it runs with
	// Auto; see SetTuneStats). ok=false means no tuner is active and
	// the easyhps_tune_* series are omitted.
	tuneMu    sync.Mutex
	tuneStats func() (tune.Snapshot, bool)

	mu       sync.Mutex
	seq      uint64
	jobs     map[string]*Job
	running  map[string]*Job
	flights  map[string]*flight
	draining bool
}

// flight is one live computation of a spec digest: the leader is the job
// actually enqueued; followers are identical submissions that arrived
// while the leader was in flight and share its outcome when it settles.
type flight struct {
	leader    *Job
	followers []*Job
}

// NewManager starts a manager with MaxConcurrent run slots.
func NewManager(cfg ManagerConfig, reg *Registry) *Manager {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = NewRegistry()
	}
	//lint:ignore naked-background manager-lifetime root context: jobs outlive any submit request by design; cancelled in Shutdown's forced phase
	rootCtx, rootCancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		reg:        reg,
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		quit:       make(chan struct{}),
		jobs:       make(map[string]*Job),
		running:    make(map[string]*Job),
		flights:    make(map[string]*flight),
		metrics:    newMetrics(),
	}
	if cfg.Fleet != nil {
		m.fleetStats = cfg.Fleet.Snapshot
		m.tuneStats = cfg.Fleet.TuneSnapshot
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the kernel registry jobs are validated against.
func (m *Manager) Registry() *Registry { return m.reg }

// RetryAfter is the backpressure hint for ErrBusy rejections.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Submit validates spec, assigns a globally unique id and enqueues the
// job. It returns ErrBusy when the bounded queue is full and
// ErrShuttingDown after Shutdown began. A spec whose result is already in
// the whole-job cache returns a finished job immediately; a spec identical
// to one already in flight is coalesced onto it (single-flight) and shares
// its outcome without consuming queue space or a run slot.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	problem, finish, err := m.reg.Build(spec)
	if err != nil {
		return nil, err
	}
	if cells := int64(problem.Size.Rows) * int64(problem.Size.Cols); cells > m.cfg.MaxCells {
		return nil, fmt.Errorf("server: job size %d cells exceeds limit %d", cells, m.cfg.MaxCells)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", m.seq),
		Spec:      spec,
		digest:    spec.cacheDigest(),
		problem:   problem,
		finish:    finish,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}

	// Whole-job memoization: an identical finished job answers from the
	// cache without touching the queue. A corrupt entry falls through to
	// recompute — the cache can degrade service to a miss, never corrupt
	// an answer.
	if m.cfg.Cache != nil {
		if payload, ok := m.cfg.Cache.GetJob(cas.JobKey(j.digest), cas.LayerServer); ok {
			var result JobResult
			if err := json.Unmarshal(payload, &result); err == nil {
				result.Cached = true
				j.state = StateDone
				j.result = &result
				j.finished = time.Now()
				close(j.done)
				m.jobs[j.ID] = j
				m.mu.Unlock()
				m.metrics.submitted.Add(1)
				m.metrics.observeFinal(StateDone, 0)
				return j, nil
			}
		}
	}

	// Single-flight: an identical submission already in flight absorbs
	// this one as a follower; the leader's settlement resolves it. This
	// dedup works with the cache disabled too.
	if fl := m.flights[j.digest]; fl != nil {
		fl.followers = append(fl.followers, j)
		m.jobs[j.ID] = j
		m.mu.Unlock()
		m.metrics.submitted.Add(1)
		m.metrics.coalesced.Add(1)
		return j, nil
	}

	// Reserve the queue spot before publishing the flight, all under one
	// lock hold, so a rejected submission can never have gathered
	// followers that would then be stranded.
	select {
	case m.queue <- j:
	default:
		// Backpressure: reject instead of buffering without bound. The
		// id is spent — the counter is monotonic, so rejected ids are
		// simply never visible.
		m.mu.Unlock()
		m.metrics.rejected.Add(1)
		return nil, ErrBusy
	}
	m.flights[j.digest] = &flight{leader: j}
	m.jobs[j.ID] = j
	m.mu.Unlock()
	m.metrics.submitted.Add(1)
	return j, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List snapshots every known job, newest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	sortStatuses(out)
	return out
}

// Cancel stops a job: a queued job is finalized immediately (the worker
// skips it when it surfaces from the queue), a running job has its run
// context cancelled — the master stops scheduling and the job finalizes
// once the in-flight sub-tasks drain. Cancelling a terminal job returns
// ErrFinished.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		m.metrics.observeFinal(StateCancelled, 0)
		// If j led a single-flight group, its followers must not die with
		// it — settlement promotes one of them to a fresh leader.
		m.settleFlight(j)
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return nil
	default:
		j.mu.Unlock()
		return ErrFinished
	}
}

// QueueDepth returns the number of jobs waiting for a run slot.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Shutdown drains the service: submissions are refused, queued jobs are
// cancelled, and running jobs are given until ctx's deadline to finish —
// after that their run contexts are cancelled and Shutdown waits for the
// unwind. It returns nil when every job finalized.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if already {
		return errors.New("server: shutdown already in progress")
	}
	close(m.quit)

	// Cancel jobs still waiting in the queue; workers are told to quit,
	// so nothing pops them anymore.
	for {
		select {
		case j := <-m.queue:
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StateCancelled
				j.finished = time.Now()
				close(j.done)
				m.metrics.observeFinal(StateCancelled, 0)
			}
			j.mu.Unlock()
			// Settlement sees draining and cancels any followers too.
			m.settleFlight(j)
			continue
		default:
		}
		break
	}

	workers := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workers)
	}()
	select {
	case <-workers:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed with jobs still running: cancel the manager root
	// context — every run context derives from it, including one a
	// worker starts this instant — and wait for the bounded unwind
	// (one processor-level sub-task per job).
	m.rootCancel()
	//lint:ignore ctx-select bounded join: rootCancel above stops every run within one in-flight sub-task; abandoning the workers would leak them
	<-workers
	return ctx.Err()
}

// worker is one run slot: it pulls admitted jobs off the queue and
// executes them on the shared cluster deployment until Shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		default:
		}
		select {
		case <-m.quit:
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job — through core.RunContext on the in-process
// deployment, or through Fleet.Run when a shared fleet is attached —
// translating the outcome into the job state machine.
func (m *Manager) run(j *Job) {
	ctx, cancel := context.WithCancel(m.rootCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	m.mu.Lock()
	m.running[j.ID] = j
	m.mu.Unlock()

	var res *core.Result[int32]
	var err error
	if m.cfg.Fleet != nil {
		res, err = m.runFleet(ctx, j)
	} else {
		cfg := m.cfg.Run
		// Chain rather than replace a Progress callback supplied with the
		// deployment config: the manager needs it for job status, but the
		// caller may be observing run liveness through it too.
		chained := cfg.Progress
		cfg.Progress = func(completed, total int) {
			j.completed.Store(int64(completed))
			j.total.Store(int64(total))
			if chained != nil {
				chained(completed, total)
			}
		}
		res, err = core.RunContext(ctx, j.problem, cfg)
	}

	m.mu.Lock()
	delete(m.running, j.ID)
	m.mu.Unlock()

	j.mu.Lock()
	j.finished = time.Now()
	latency := j.finished.Sub(j.started)
	var final State
	switch {
	case err == nil:
		result := j.finish(res)
		j.result = &result
		j.state = StateDone
		m.metrics.addRunStats(res.Stats)
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = context.Canceled.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	final = j.state
	close(j.done)
	j.mu.Unlock()
	m.metrics.observeFinal(final, latency)

	if final == StateDone && m.cfg.Cache != nil {
		// Write-through to the whole-job cache. The stored copy keeps
		// Cached=false — the flag describes how a particular submission
		// was served, not the payload.
		if payload, err := json.Marshal(j.result); err == nil {
			m.cfg.Cache.PutJob(cas.JobKey(j.digest), payload)
		}
	}
	m.settleFlight(j)
}

// settleFlight resolves the single-flight group j led, if any. Followers
// share a done leader's result (marked Cached — they did not compute it)
// or a failed leader's error. A cancelled leader does not doom its
// followers: cancellation targets one job id, not the computation, so the
// survivors are promoted into a fresh flight whose leader re-enters the
// queue.
func (m *Manager) settleFlight(j *Job) {
	m.mu.Lock()
	fl := m.flights[j.digest]
	if fl == nil || fl.leader != j {
		m.mu.Unlock()
		return
	}
	delete(m.flights, j.digest)
	followers := fl.followers
	m.mu.Unlock()
	if len(followers) == 0 {
		return
	}

	j.mu.Lock()
	state, result, errText := j.state, j.result, j.err
	j.mu.Unlock()

	now := time.Now()
	finalize := func(f *Job, st State, res *JobResult, errText string) {
		f.mu.Lock()
		if f.state.Terminal() {
			f.mu.Unlock()
			return
		}
		f.state = st
		f.result = res
		f.err = errText
		f.finished = now
		close(f.done)
		f.mu.Unlock()
		m.metrics.observeFinal(st, 0)
	}

	switch state {
	case StateDone:
		shared := *result
		shared.Cached = true
		for _, f := range followers {
			finalize(f, StateDone, &shared, "")
		}
	case StateFailed:
		for _, f := range followers {
			finalize(f, StateFailed, nil, errText)
		}
	case StateCancelled:
		var live []*Job
		for _, f := range followers {
			f.mu.Lock()
			terminal := f.state.Terminal()
			f.mu.Unlock()
			if !terminal {
				live = append(live, f)
			}
		}
		if len(live) == 0 {
			return
		}
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			for _, f := range live {
				finalize(f, StateCancelled, nil, "")
			}
			return
		}
		if cur := m.flights[j.digest]; cur != nil {
			// A new identical submission started its own flight between
			// our delete and now; ride it instead of racing it.
			cur.followers = append(cur.followers, live...)
			m.mu.Unlock()
			return
		}
		select {
		case m.queue <- live[0]:
			m.flights[j.digest] = &flight{leader: live[0], followers: live[1:]}
			m.mu.Unlock()
		default:
			m.mu.Unlock()
			for _, f := range live {
				finalize(f, StateFailed, nil, ErrBusy.Error())
			}
		}
	}
}

func sortStatuses(s []JobStatus) {
	sort.Slice(s, func(i, k int) bool { return s[i].SubmittedAt.After(s[k].SubmittedAt) })
}
