package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fleet"
)

// State is a job lifecycle state. The machine is
//
//	queued -> running -> done
//	                  -> failed
//	queued/running    -> cancelled
//
// and every terminal state is final.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Submission and lifecycle errors, mapped to HTTP statuses by the API
// layer.
var (
	// ErrBusy means the submission queue is full (backpressure; HTTP 429).
	ErrBusy = errors.New("server: submission queue full")
	// ErrShuttingDown means the manager no longer accepts jobs (HTTP 503).
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrNotFound means the job id is unknown (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrNotDone means the job has no result yet (HTTP 409).
	ErrNotDone = errors.New("server: job not finished")
	// ErrFinished means the job already reached a terminal state
	// (HTTP 409 on cancel).
	ErrFinished = errors.New("server: job already finished")
)

// Job is one submitted DP run. All mutable fields are guarded by mu
// except the progress counters, which the master's receive loop updates
// through atomics.
type Job struct {
	// ID is the globally unique job id, "job-<n>" with n drawn from the
	// manager's monotonic counter — never reused within a manager, so a
	// cancelled-then-resubmitted job can never collide with an in-flight
	// one.
	ID   string
	Spec JobSpec

	problem core.Problem[int32]
	finish  finishFunc

	completed, total atomic.Int64

	mu        sync.Mutex
	state     State
	err       string
	result    *JobResult
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID       string   `json:"id"`
	Kernel   string   `json:"kernel"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// Progress counts completed and total processor-level sub-tasks, surfaced
// live from the master while the job runs.
type Progress struct {
	Completed int64 `json:"completed"`
	Total     int64 `json:"total"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:     j.ID,
		Kernel: j.Spec.Kernel,
		State:  j.state,
		Progress: Progress{
			Completed: j.completed.Load(),
			Total:     j.total.Load(),
		},
		Error:       j.err,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished job's result, or ErrNotDone / the job's
// failure.
func (j *Job) Result() (*JobResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed:
		// Terminal without a result: wraps ErrFinished so the API layer
		// answers 409, not 400.
		return nil, fmt.Errorf("%w; job %s failed: %s", ErrFinished, j.ID, j.err)
	case StateCancelled:
		return nil, fmt.Errorf("%w; job %s was cancelled", ErrFinished, j.ID)
	default:
		return nil, ErrNotDone
	}
}

// ManagerConfig sizes the job service.
type ManagerConfig struct {
	// Run is the shared cluster deployment every job executes on:
	// Slaves x Threads with the configured partition sizes. The manager
	// owns this deployment for its whole lifetime; jobs never choose
	// their own. In fleet mode only the partition sizes and RunTimeout
	// apply (workers bring their own thread counts).
	Run core.Config
	// Fleet, when non-nil, routes every job onto this shared fleet
	// instead of the in-process deployment: elastic workers join the
	// fleet over TCP, the fleet's policy interleaves all admitted jobs
	// over the one pool, and the run slots become pure admission control
	// (a slot is held while its job is in flight on the fleet). The
	// manager does not own the fleet; the caller closes it.
	Fleet *fleet.Fleet[int32]
	// MaxConcurrent is the number of run slots — jobs executing on the
	// cluster at once. Default 2.
	MaxConcurrent int
	// QueueDepth bounds the submission queue behind the run slots;
	// submissions beyond it are rejected with ErrBusy. Default 16.
	QueueDepth int
	// MaxCells rejects jobs whose DP matrix exceeds this size (admission
	// control against oversized tenants). 0 means 16M cells.
	MaxCells int64
	// RetryAfter is the backpressure hint returned with ErrBusy
	// rejections. Default 1s.
	RetryAfter time.Duration
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 16
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 16 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Run.Slaves < 1 {
		c.Run.Slaves = 2
	}
	if c.Run.Threads < 1 {
		c.Run.Threads = 2
	}
	return c
}

// Manager is the multi-tenant job service: it owns the persistent cluster
// deployment, admits jobs into a bounded queue, runs at most
// MaxConcurrent of them at a time, and tracks every job it has ever
// accepted by id.
type Manager struct {
	cfg ManagerConfig
	reg *Registry

	// rootCtx is the manager-lifetime context every job's run context
	// derives from. Shutdown's forced phase cancels it, which reaches
	// jobs that grab a run slot concurrently with the shutdown sweep —
	// a per-job cancel loop over m.running would miss a job whose
	// cancel func is registered after the loop snapshots the map.
	rootCtx    context.Context
	rootCancel context.CancelFunc

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	metrics *metrics

	// clusterMu guards clusterStats, the optional snapshot source of an
	// attached elastic cluster (see SetClusterStats).
	clusterMu    sync.Mutex
	clusterStats func() cluster.Snapshot

	// fleetMu guards fleetStats, the snapshot source of the attached
	// shared fleet (set automatically from cfg.Fleet; see SetFleetStats).
	fleetMu    sync.Mutex
	fleetStats func() fleet.Snapshot

	mu       sync.Mutex
	seq      uint64
	jobs     map[string]*Job
	running  map[string]*Job
	draining bool
}

// NewManager starts a manager with MaxConcurrent run slots.
func NewManager(cfg ManagerConfig, reg *Registry) *Manager {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = NewRegistry()
	}
	//lint:ignore naked-background manager-lifetime root context: jobs outlive any submit request by design; cancelled in Shutdown's forced phase
	rootCtx, rootCancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		reg:        reg,
		rootCtx:    rootCtx,
		rootCancel: rootCancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		quit:       make(chan struct{}),
		jobs:       make(map[string]*Job),
		running:    make(map[string]*Job),
		metrics:    newMetrics(),
	}
	if cfg.Fleet != nil {
		m.fleetStats = cfg.Fleet.Snapshot
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the kernel registry jobs are validated against.
func (m *Manager) Registry() *Registry { return m.reg }

// RetryAfter is the backpressure hint for ErrBusy rejections.
func (m *Manager) RetryAfter() time.Duration { return m.cfg.RetryAfter }

// Submit validates spec, assigns a globally unique id and enqueues the
// job. It returns ErrBusy when the bounded queue is full and
// ErrShuttingDown after Shutdown began.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	problem, finish, err := m.reg.Build(spec)
	if err != nil {
		return nil, err
	}
	if cells := int64(problem.Size.Rows) * int64(problem.Size.Cols); cells > m.cfg.MaxCells {
		return nil, fmt.Errorf("server: job size %d cells exceeds limit %d", cells, m.cfg.MaxCells)
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	m.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", m.seq),
		Spec:      spec,
		problem:   problem,
		finish:    finish,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.jobs[j.ID] = j
	m.mu.Unlock()

	select {
	case m.queue <- j:
		m.metrics.submitted.Add(1)
		return j, nil
	default:
		// Backpressure: reject instead of buffering without bound. The
		// id is spent — the counter is monotonic, so rejected ids are
		// simply never visible.
		m.mu.Lock()
		delete(m.jobs, j.ID)
		m.mu.Unlock()
		m.metrics.rejected.Add(1)
		return nil, ErrBusy
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List snapshots every known job, newest first.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	sortStatuses(out)
	return out
}

// Cancel stops a job: a queued job is finalized immediately (the worker
// skips it when it surfaces from the queue), a running job has its run
// context cancelled — the master stops scheduling and the job finalizes
// once the in-flight sub-tasks drain. Cancelling a terminal job returns
// ErrFinished.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		m.metrics.observeFinal(StateCancelled, 0)
		return nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		cancel()
		return nil
	default:
		j.mu.Unlock()
		return ErrFinished
	}
}

// QueueDepth returns the number of jobs waiting for a run slot.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Shutdown drains the service: submissions are refused, queued jobs are
// cancelled, and running jobs are given until ctx's deadline to finish —
// after that their run contexts are cancelled and Shutdown waits for the
// unwind. It returns nil when every job finalized.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if already {
		return errors.New("server: shutdown already in progress")
	}
	close(m.quit)

	// Cancel jobs still waiting in the queue; workers are told to quit,
	// so nothing pops them anymore.
	for {
		select {
		case j := <-m.queue:
			j.mu.Lock()
			if j.state == StateQueued {
				j.state = StateCancelled
				j.finished = time.Now()
				close(j.done)
				m.metrics.observeFinal(StateCancelled, 0)
			}
			j.mu.Unlock()
			continue
		default:
		}
		break
	}

	workers := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(workers)
	}()
	select {
	case <-workers:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed with jobs still running: cancel the manager root
	// context — every run context derives from it, including one a
	// worker starts this instant — and wait for the bounded unwind
	// (one processor-level sub-task per job).
	m.rootCancel()
	//lint:ignore ctx-select bounded join: rootCancel above stops every run within one in-flight sub-task; abandoning the workers would leak them
	<-workers
	return ctx.Err()
}

// worker is one run slot: it pulls admitted jobs off the queue and
// executes them on the shared cluster deployment until Shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		default:
		}
		select {
		case <-m.quit:
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

// run executes one job — through core.RunContext on the in-process
// deployment, or through Fleet.Run when a shared fleet is attached —
// translating the outcome into the job state machine.
func (m *Manager) run(j *Job) {
	ctx, cancel := context.WithCancel(m.rootCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	m.mu.Lock()
	m.running[j.ID] = j
	m.mu.Unlock()

	var res *core.Result[int32]
	var err error
	if m.cfg.Fleet != nil {
		res, err = m.runFleet(ctx, j)
	} else {
		cfg := m.cfg.Run
		cfg.Progress = func(completed, total int) {
			j.completed.Store(int64(completed))
			j.total.Store(int64(total))
		}
		res, err = core.RunContext(ctx, j.problem, cfg)
	}

	m.mu.Lock()
	delete(m.running, j.ID)
	m.mu.Unlock()

	j.mu.Lock()
	j.finished = time.Now()
	latency := j.finished.Sub(j.started)
	var final State
	switch {
	case err == nil:
		result := j.finish(res)
		j.result = &result
		j.state = StateDone
		m.metrics.addRunStats(res.Stats)
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = context.Canceled.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	final = j.state
	close(j.done)
	j.mu.Unlock()
	m.metrics.observeFinal(final, latency)
}

func sortStatuses(s []JobStatus) {
	sort.Slice(s, func(i, k int) bool { return s[i].SubmittedAt.After(s[k].SubmittedAt) })
}
