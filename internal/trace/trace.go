// Package trace records scheduling events (task execution intervals per
// worker, ready-set size changes) and derives load-balance metrics from
// them: per-worker utilization and the "idle while computable" measure
// that separates the dynamic EasyHPS pool from the static BCW baseline.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventKind labels a recorded event.
type EventKind uint8

const (
	// EvStart marks a worker starting a task.
	EvStart EventKind = iota + 1
	// EvEnd marks a worker finishing a task.
	EvEnd
	// EvReady records a change of the computable-set size.
	EvReady
	// EvMember records a cluster membership transition (join, suspect,
	// dead, left) of an elastic worker; Worker carries the member id and
	// Label the new state.
	EvMember
	// EvDispatch records one task message leaving the master: Ready
	// carries the number of vertices in the message (1 for the classic
	// per-vertex protocol, >1 for a batch) and Bytes its payload size.
	EvDispatch
	// EvSpeculate records a speculative backup dispatch: Worker is the
	// member executing the backup and Vertex the straggling vertex.
	EvSpeculate
	// EvSteal records a work-steal: Worker is the hungry member the work
	// moved toward and Ready the number of stolen vertices.
	EvSteal
	// EvTune records the self-tuning controller changing a
	// recommendation: Ready carries the new batch cap and Label the
	// human-readable decision (new spec thresholds and the reason).
	// Emitted only when auto-tuning is enabled and something actually
	// moved, so untuned runs stay byte-identical.
	EvTune
)

// String names the kind for human-readable exports (the job service's
// trace endpoint); unknown values print as "unknown".
func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvEnd:
		return "end"
	case EvReady:
		return "ready"
	case EvMember:
		return "member"
	case EvDispatch:
		return "dispatch"
	case EvSpeculate:
		return "speculate"
	case EvSteal:
		return "steal"
	case EvTune:
		return "tune"
	}
	return "unknown"
}

// Event is one recorded scheduling event.
type Event struct {
	T      time.Duration // since recorder creation
	Kind   EventKind
	Worker int
	Vertex int32
	Ready  int    // ready-set size for EvReady; batch size for EvDispatch
	Bytes  int    // payload bytes, for EvDispatch
	Label  string // membership state, for EvMember
}

// JSONEvent is the export shape of one event on the job service's trace
// endpoint: the kind as its string name, the timestamp in microseconds,
// and zero-valued fields omitted, so a stream of events stays compact.
type JSONEvent struct {
	TMicros int64  `json:"t_us"`
	Kind    string `json:"kind"`
	Worker  int    `json:"worker,omitempty"`
	Vertex  int32  `json:"vertex,omitempty"`
	Ready   int    `json:"ready,omitempty"`
	Bytes   int    `json:"bytes,omitempty"`
	Label   string `json:"label,omitempty"`
}

// JSON converts the event for export.
func (e Event) JSON() JSONEvent {
	return JSONEvent{
		TMicros: e.T.Microseconds(),
		Kind:    e.Kind.String(),
		Worker:  e.Worker,
		Vertex:  e.Vertex,
		Ready:   e.Ready,
		Bytes:   e.Bytes,
		Label:   e.Label,
	}
}

// ExportJSON converts a recording for the trace endpoint.
func ExportJSON(events []Event) []JSONEvent {
	out := make([]JSONEvent, len(events))
	for i, e := range events {
		out[i] = e.JSON()
	}
	return out
}

// Format renders events one per line in a canonical, byte-stable form:
// the JSON export shape in struct field order, zero fields omitted. Two
// recordings are the same schedule iff their Format outputs are equal
// byte for byte — the comparison the deterministic simulator's
// same-seed contract is asserted through.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		enc, err := json.Marshal(e.JSON())
		if err != nil {
			// JSONEvent holds only scalars and strings; Marshal cannot
			// fail. Keep the line count stable regardless.
			enc = []byte(`{"kind":"unencodable"}`)
		}
		b.Write(enc)
		b.WriteByte('\n')
	}
	return b.String()
}

// Diff compares two recordings in Format form and returns a description
// of the first divergence ("" when identical): the 1-based line number
// and both renderings at that line, with "<end>" standing in for the
// shorter trace.
func Diff(a, b []Event) string {
	la := strings.Split(strings.TrimSuffix(Format(a), "\n"), "\n")
	lb := strings.Split(strings.TrimSuffix(Format(b), "\n"), "\n")
	if len(a) == 0 {
		la = nil
	}
	if len(b) == 0 {
		lb = nil
	}
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		va, vb := "<end>", "<end>"
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if va != vb {
			return fmt.Sprintf("traces diverge at event %d:\n  a: %s\n  b: %s", i+1, va, vb)
		}
	}
	return ""
}

// Recorder collects events. A nil *Recorder is valid and records nothing,
// so call sites do not need to guard tracing.
type Recorder struct {
	mu     sync.Mutex
	start  time.Time
	now    func() time.Time
	events []Event
}

// New creates an empty recorder stamping events with wall-clock time.
func New() *Recorder {
	return NewWithNow(time.Now)
}

// NewWithNow creates a recorder that stamps events with the given time
// source instead of the wall clock. The deterministic simulator passes a
// virtual clock here so the same scenario yields byte-identical traces;
// production recorders keep using New.
func NewWithNow(now func() time.Time) *Recorder {
	return &Recorder{start: now(), now: now}
}

func (r *Recorder) add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.T = r.now().Sub(r.start)
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TaskStart records worker w starting vertex v.
func (r *Recorder) TaskStart(w int, v int32) { r.add(Event{Kind: EvStart, Worker: w, Vertex: v}) }

// TaskEnd records worker w finishing vertex v.
func (r *Recorder) TaskEnd(w int, v int32) { r.add(Event{Kind: EvEnd, Worker: w, Vertex: v}) }

// Ready records the current size of the computable set.
func (r *Recorder) Ready(n int) { r.add(Event{Kind: EvReady, Ready: n}) }

// Dispatch records one task message to worker w carrying vertices vertices
// and bytes payload bytes.
func (r *Recorder) Dispatch(w, vertices, bytes int) {
	r.add(Event{Kind: EvDispatch, Worker: w, Ready: vertices, Bytes: bytes})
}

// Speculate records a backup attempt of vertex v dispatched to worker w.
func (r *Recorder) Speculate(w int, v int32) {
	r.add(Event{Kind: EvSpeculate, Worker: w, Vertex: v})
}

// Steal records n vertices stolen toward hungry worker w.
func (r *Recorder) Steal(w, n int) {
	r.add(Event{Kind: EvSteal, Worker: w, Ready: n})
}

// Tune records a controller adjustment: the new batch cap and a label
// describing the full decision ("batch 2->4 (amortizing)" or
// "spec q=0.960 m=2.50 (uniform, dispersion 1.20)").
func (r *Recorder) Tune(batchCap int, label string) {
	r.add(Event{Kind: EvTune, Ready: batchCap, Label: label})
}

// Member records a membership transition of elastic worker id (states:
// "active", "suspect", "dead", "left").
func (r *Recorder) Member(id int, state string) {
	r.add(Event{Kind: EvMember, Worker: id, Label: state})
}

// MemberEvents filters the recording down to membership transitions.
func (r *Recorder) MemberEvents() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == EvMember {
			out = append(out, e)
		}
	}
	return out
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Summary aggregates a recording.
type Summary struct {
	// Workers is the number of distinct workers seen.
	Workers int
	// Tasks is the number of completed task intervals.
	Tasks int
	// Makespan is the time of the last event.
	Makespan time.Duration
	// Busy is the per-worker total execution time.
	Busy map[int]time.Duration
	// IdleWhileReady accumulates worker-time during which at least one
	// worker sat idle while the computable set was non-empty — the
	// situation the paper calls BCW's fatal flaw, which "never happens"
	// under the dynamic pool (up to dispatch latency).
	IdleWhileReady time.Duration
	// DispatchMessages and DispatchVertices count task messages and the
	// vertices they carried; their ratio is the realized mean batch size.
	DispatchMessages, DispatchVertices int
	// DispatchBytes is the total task payload volume.
	DispatchBytes int64
}

// MeanBatchSize returns the realized vertices-per-message ratio of the
// dispatch stream (0 when no dispatches were recorded).
func (s Summary) MeanBatchSize() float64 {
	if s.DispatchMessages == 0 {
		return 0
	}
	return float64(s.DispatchVertices) / float64(s.DispatchMessages)
}

// Utilization returns the mean busy fraction across workers.
func (s Summary) Utilization() float64 {
	if s.Workers == 0 || s.Makespan == 0 {
		return 0
	}
	var total time.Duration
	for _, b := range s.Busy {
		total += b
	}
	return float64(total) / (float64(s.Makespan) * float64(s.Workers))
}

// Summarize replays the event log and computes the summary.
func (r *Recorder) Summarize() Summary {
	events := r.Events()
	s := Summary{Busy: make(map[int]time.Duration)}
	busySince := make(map[int]time.Duration)
	busy := make(map[int]bool)
	seen := make(map[int]bool)
	ready := 0
	var last time.Duration

	idleWorkers := func() int {
		n := 0
		for w := range seen {
			if !busy[w] {
				n++
			}
		}
		return n
	}

	for _, e := range events {
		if dt := e.T - last; dt > 0 {
			if ready > 0 {
				idle := idleWorkers()
				m := idle
				if ready < m {
					m = ready
				}
				s.IdleWhileReady += time.Duration(int64(dt) * int64(m))
			}
			last = e.T
		}
		switch e.Kind {
		case EvStart:
			seen[e.Worker] = true
			busy[e.Worker] = true
			busySince[e.Worker] = e.T
		case EvEnd:
			seen[e.Worker] = true
			if busy[e.Worker] {
				s.Busy[e.Worker] += e.T - busySince[e.Worker]
				busy[e.Worker] = false
				s.Tasks++
			}
		case EvReady:
			ready = e.Ready
		case EvDispatch:
			s.DispatchMessages++
			s.DispatchVertices += e.Ready
			s.DispatchBytes += int64(e.Bytes)
		}
		if e.T > s.Makespan {
			s.Makespan = e.T
		}
	}
	s.Workers = len(seen)
	return s
}
