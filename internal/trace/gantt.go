package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Gantt renders the recording as a per-worker text timeline: one row per
// worker, time flowing left to right over width columns, '#' where the
// worker executes a task and '.' where it idles. It makes load imbalance
// (and BCW's idle-while-computable stalls) visible at a glance.
func (r *Recorder) Gantt(w io.Writer, width int) {
	events := r.Events()
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events recorded)")
		return
	}
	if width <= 0 {
		width = 80
	}
	makespan := events[len(events)-1].T
	if makespan <= 0 {
		makespan = 1
	}
	col := func(t time.Duration) int {
		c := int(int64(t) * int64(width) / int64(makespan))
		if c >= width {
			c = width - 1
		}
		return c
	}

	type interval struct{ from, to int }
	intervals := make(map[int][]interval)
	open := make(map[int]int)
	for _, e := range events {
		switch e.Kind {
		case EvStart:
			open[e.Worker] = col(e.T)
		case EvEnd:
			if from, ok := open[e.Worker]; ok {
				intervals[e.Worker] = append(intervals[e.Worker], interval{from, col(e.T)})
				delete(open, e.Worker)
			}
		}
	}
	// Workers still marked busy at the end run to the right edge.
	for wk, from := range open {
		intervals[wk] = append(intervals[wk], interval{from, width - 1})
	}

	workers := make([]int, 0, len(intervals))
	for wk := range intervals {
		workers = append(workers, wk)
	}
	sort.Ints(workers)

	fmt.Fprintf(w, "gantt: %d workers over %v ('#' busy, '.' idle)\n", len(workers), makespan.Round(time.Millisecond))
	for _, wk := range workers {
		row := make([]byte, width)
		for k := range row {
			row[k] = '.'
		}
		var busy int
		for _, iv := range intervals[wk] {
			for c := iv.from; c <= iv.to && c < width; c++ {
				if row[c] != '#' {
					busy++
				}
				row[c] = '#'
			}
		}
		fmt.Fprintf(w, "w%-3d |%s| %3d%%\n", wk, row, busy*100/width)
	}
}
