package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// tick is a manually-advanced time source: every recorder in this file
// runs on one, so no test ever sleeps to separate event timestamps.
type tick struct{ now time.Time }

func newTick() *tick                    { return &tick{now: time.Unix(0, 0)} }
func (c *tick) Now() time.Time          { return c.now }
func (c *tick) Advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *tick) Recorder() *Recorder     { return NewWithNow(c.Now) }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.TaskStart(0, 1)
	r.TaskEnd(0, 1)
	r.Ready(3)
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
}

func TestRecorderOrderAndCopy(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(0, 1)
	c.Advance(time.Millisecond)
	r.TaskEnd(0, 1)
	ev := r.Events()
	if len(ev) != 2 || ev[0].Kind != EvStart || ev[1].Kind != EvEnd {
		t.Fatalf("events = %+v", ev)
	}
	if ev[1].T != ev[0].T+time.Millisecond {
		t.Fatalf("timestamps = %v, %v; want exactly 1ms apart", ev[0].T, ev[1].T)
	}
	ev[0].Worker = 99
	if r.Events()[0].Worker == 99 {
		t.Fatal("Events did not copy")
	}
}

func TestSummarizeBusyAndTasks(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(0, 1)
	r.TaskStart(1, 2)
	c.Advance(5 * time.Millisecond)
	r.TaskEnd(0, 1)
	r.TaskEnd(1, 2)
	s := r.Summarize()
	if s.Workers != 2 || s.Tasks != 2 {
		t.Fatalf("Workers=%d Tasks=%d", s.Workers, s.Tasks)
	}
	for w := 0; w < 2; w++ {
		if s.Busy[w] != 5*time.Millisecond {
			t.Errorf("Busy[%d] = %v, want exactly 5ms", w, s.Busy[w])
		}
	}
	if u := s.Utilization(); u <= 0 || u > 1.01 {
		t.Errorf("Utilization = %v", u)
	}
}

func TestSummarizeIdleWhileReady(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	// Worker 0 does a task; worker 1 known but idle while ready > 0.
	r.TaskStart(1, 9)
	r.TaskEnd(1, 9) // worker 1 now known and idle
	r.Ready(2)
	r.TaskStart(0, 1)
	c.Advance(10 * time.Millisecond)
	r.TaskEnd(0, 1)
	r.Ready(0)
	s := r.Summarize()
	if s.IdleWhileReady != 10*time.Millisecond {
		t.Fatalf("IdleWhileReady = %v, want exactly 10ms", s.IdleWhileReady)
	}
}

func TestSummarizeNoIdleWhenReadyZero(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(0, 1)
	r.TaskEnd(0, 1)
	r.Ready(0)
	c.Advance(5 * time.Millisecond)
	r.TaskStart(0, 2)
	r.TaskEnd(0, 2)
	s := r.Summarize()
	if s.IdleWhileReady != 0 {
		t.Fatalf("IdleWhileReady = %v, want 0", s.IdleWhileReady)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	if u := (Summary{}).Utilization(); u != 0 {
		t.Fatalf("Utilization of empty summary = %v", u)
	}
}

func TestGanttRendering(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(0, 1)
	r.TaskStart(1, 2)
	c.Advance(4 * time.Millisecond)
	r.TaskEnd(1, 2)
	c.Advance(4 * time.Millisecond)
	r.TaskEnd(0, 1)
	var buf strings.Builder
	r.Gantt(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "w0 ") || !strings.Contains(out, "w1 ") {
		t.Fatalf("gantt missing worker rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt rows = %d:\n%s", len(lines), out)
	}
	// Worker 0 busy nearly throughout; worker 1 roughly half.
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[2], "#") {
		t.Fatalf("gantt rows show no work:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf strings.Builder
	New().Gantt(&buf, 40)
	if !strings.Contains(buf.String(), "no events") {
		t.Fatalf("empty gantt output: %q", buf.String())
	}
}

func TestGanttOpenIntervalRunsToEdge(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(0, 1)
	c.Advance(2 * time.Millisecond)
	r.Ready(1) // a later event sets the makespan; task 1 never ends
	var buf strings.Builder
	r.Gantt(&buf, 20)
	if !strings.Contains(buf.String(), "####") {
		t.Fatalf("open interval not rendered:\n%s", buf.String())
	}
}

func TestEventJSONExport(t *testing.T) {
	r := New()
	r.Dispatch(3, 2, 512)
	r.TaskStart(3, 7)
	r.Member(4, "dead")
	events := ExportJSON(r.Events())
	if len(events) != 3 {
		t.Fatalf("exported %d events, want 3", len(events))
	}
	if events[0].Kind != "dispatch" || events[0].Worker != 3 || events[0].Ready != 2 || events[0].Bytes != 512 {
		t.Fatalf("dispatch export = %+v", events[0])
	}
	if events[1].Kind != "start" || events[1].Vertex != 7 {
		t.Fatalf("start export = %+v", events[1])
	}
	if events[2].Kind != "member" || events[2].Label != "dead" {
		t.Fatalf("member export = %+v", events[2])
	}
	enc, err := json.Marshal(events[2])
	if err != nil {
		t.Fatal(err)
	}
	// Zero-valued fields are omitted so event streams stay compact.
	if strings.Contains(string(enc), "vertex") || !strings.Contains(string(enc), `"kind":"member"`) {
		t.Fatalf("member JSON = %s", enc)
	}
	if got := EventKind(0).String(); got != "unknown" {
		t.Fatalf("EventKind(0) = %q", got)
	}
}

func TestFormatByteStable(t *testing.T) {
	record := func() []Event {
		c := newTick()
		r := c.Recorder()
		r.Member(1, "active")
		r.Ready(2)
		c.Advance(3 * time.Millisecond)
		r.Dispatch(1, 2, 64)
		r.TaskStart(1, 0)
		c.Advance(time.Millisecond)
		r.TaskEnd(1, 0)
		return r.Events()
	}
	a, b := record(), record()
	fa, fb := Format(a), Format(b)
	if fa != fb {
		t.Fatalf("identical recordings format differently:\n%s\nvs\n%s", fa, fb)
	}
	if d := Diff(a, b); d != "" {
		t.Fatalf("Diff of identical traces = %q", d)
	}
	lines := strings.Split(strings.TrimSuffix(fa, "\n"), "\n")
	if len(lines) != len(a) {
		t.Fatalf("Format produced %d lines for %d events", len(lines), len(a))
	}
	if !strings.Contains(lines[2], `"t_us":3000`) || !strings.Contains(lines[2], `"kind":"dispatch"`) {
		t.Fatalf("dispatch line = %s", lines[2])
	}
}

func TestDiffReportsFirstDivergence(t *testing.T) {
	c := newTick()
	r := c.Recorder()
	r.TaskStart(1, 0)
	r.TaskEnd(1, 0)
	a := r.Events()

	b := append([]Event(nil), a...)
	b[1].Worker = 2
	d := Diff(a, b)
	if !strings.Contains(d, "event 2") || !strings.Contains(d, `"worker":2`) {
		t.Fatalf("Diff = %q", d)
	}

	// Length mismatch: the shorter side reads <end>.
	d = Diff(a, a[:1])
	if !strings.Contains(d, "event 2") || !strings.Contains(d, "<end>") {
		t.Fatalf("Diff on truncation = %q", d)
	}
	if Diff(nil, nil) != "" {
		t.Fatal("Diff(nil, nil) != \"\"")
	}
}
