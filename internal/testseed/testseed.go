// Package testseed threads one reproducible seed through the repo's
// randomized suites (the cluster fault soak, the core property sweeps).
// Every such test derives its RNG from Seed, so a red run always prints
// the seed that broke it and the exact failure replays with
//
//	go test -run TheTest -seed=N ./the/package/
//
// or EASYHPS_TEST_SEED=N for harnesses that cannot pass test flags. The
// package is imported only from _test.go files: the -seed flag exists
// solely in test binaries.
package testseed

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

var flagSeed = flag.Int64("seed", 0,
	"override the seed of randomized suites (0 keeps each test's default; EASYHPS_TEST_SEED is honored too, the flag wins)")

// Seed resolves the seed a randomized test should use: the -seed flag
// when set, else EASYHPS_TEST_SEED, else def. It registers a cleanup
// that logs the seed if the test fails, so the failure is reproducible
// from the output alone.
func Seed(tb testing.TB, def int64) int64 {
	tb.Helper()
	seed := def
	if env := os.Getenv("EASYHPS_TEST_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			tb.Fatalf("testseed: EASYHPS_TEST_SEED=%q: %v", env, err)
		}
		seed = n
	}
	if *flagSeed != 0 {
		seed = *flagSeed
	}
	tb.Cleanup(func() {
		if tb.Failed() {
			tb.Logf("randomized suite failed at seed %d — reproduce with -seed=%d (or EASYHPS_TEST_SEED=%d)", seed, seed, seed)
		}
	})
	return seed
}
