package testseed

import "testing"

func TestSeedDefault(t *testing.T) {
	if *flagSeed != 0 {
		t.Skip("suite running under an explicit -seed override")
	}
	if got := Seed(t, 42); got != 42 {
		t.Fatalf("Seed default = %d, want 42", got)
	}
}

func TestSeedEnvOverride(t *testing.T) {
	if *flagSeed != 0 {
		t.Skip("suite running under an explicit -seed override")
	}
	t.Setenv("EASYHPS_TEST_SEED", "777")
	if got := Seed(t, 42); got != 777 {
		t.Fatalf("Seed with env = %d, want 777", got)
	}
}

func TestSeedFlagBeatsEnv(t *testing.T) {
	old := *flagSeed
	*flagSeed = 9
	defer func() { *flagSeed = old }()
	t.Setenv("EASYHPS_TEST_SEED", "777")
	if got := Seed(t, 42); got != 9 {
		t.Fatalf("Seed with flag and env = %d, want the flag's 9", got)
	}
}

func TestSeedBadEnvFails(t *testing.T) {
	t.Setenv("EASYHPS_TEST_SEED", "not-a-number")
	stub := &recordingTB{TB: t}
	func() {
		defer func() { recover() }()
		Seed(stub, 1)
	}()
	if !stub.fatal {
		t.Fatal("a malformed EASYHPS_TEST_SEED must fail the test")
	}
}

// recordingTB captures Fatalf instead of aborting the goroutine.
type recordingTB struct {
	testing.TB
	fatal bool
}

func (r *recordingTB) Fatalf(string, ...any) {
	r.fatal = true
	panic("fatal")
}
