// Package client is the Go client of the EasyHPS job service
// (internal/server): submit a DP job, poll its state, fetch its result,
// cancel it. The wire types are shared with the server package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// BusyError is returned by Submit when the service applied backpressure
// (HTTP 429); RetryAfter carries the server's hint.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy, retry after %v", e.RetryAfter)
}

// APIError is any other non-2xx answer.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// IsNotFound reports whether err is a 404 APIError.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Client talks to one job-service base URL.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for base (e.g. "http://localhost:8080"). httpClient
// nil means http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	var body server.ErrorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Duration(body.RetryAfterSeconds) * time.Second
		if h := resp.Header.Get("Retry-After"); h != "" {
			if secs, err := strconv.Atoi(h); err == nil {
				retry = time.Duration(secs) * time.Second
			}
		}
		if retry <= 0 {
			retry = time.Second
		}
		return &BusyError{RetryAfter: retry}
	}
	return &APIError{Status: resp.StatusCode, Message: body.Error}
}

// Submit submits a job and returns its initial status (id, queued).
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches the job's current state and progress.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every known job, newest first.
func (c *Client) List(ctx context.Context) ([]server.JobStatus, error) {
	var out []server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches the result of a finished job; a job that is not done yet
// answers with a 409 APIError.
func (c *Client) Result(ctx context.Context, id string) (server.JobResult, error) {
	var res server.JobResult
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// Trace fetches the scheduling trace of a fleet-mode job. Non-fleet
// deployments answer 404.
func (c *Client) Trace(ctx context.Context, id string) ([]trace.JSONEvent, error) {
	var out []trace.JSONEvent
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &out)
	return out, err
}

// Cancel asks the service to stop the job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Kernels lists the service's kernel registry.
func (c *Client) Kernels(ctx context.Context) ([]server.KernelEntry, error) {
	var out []server.KernelEntry
	err := c.do(ctx, http.MethodGet, "/v1/kernels", nil, &out)
	return out, err
}

// Metrics fetches the raw text exposition of /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	return string(raw), err
}

// Wait polls the job every interval until it reaches a terminal state or
// ctx ends, returning the final status.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (server.JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}
