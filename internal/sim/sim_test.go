package sim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func mustProblem(t *testing.T, kernel string, n int, seed int64) JobSpec {
	t.Helper()
	p, _, err := BuildProblem(kernel, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return JobSpec{Name: kernel, Problem: p}
}

func TestBuildProblemErrors(t *testing.T) {
	if _, _, err := BuildProblem("quicksort", 8, 1); err == nil {
		t.Fatal("want error for unknown kernel")
	}
	if _, _, err := BuildProblem("editdist", 0, 1); err == nil {
		t.Fatal("want error for zero size")
	}
}

// TestDeterministicTrace asserts the core contract at unit scale: the
// same script and seed give byte-identical traces; a different seed
// gives a different schedule but bit-identical DP results.
func TestDeterministicTrace(t *testing.T) {
	run := func(seed int64) (string, [][]int32) {
		c := New(Options{Workers: 16, Seed: seed, Cost: time.Millisecond, Jitter: 0.4,
			CheckInterval: 20 * time.Millisecond, HeartbeatInterval: 20 * time.Millisecond})
		spec := mustProblem(t, "editdist", 64, 7)
		j, err := c.Submit(0, spec)
		if err != nil {
			t.Fatal(err)
		}
		c.KillAt(30*time.Millisecond, 3)
		c.JoinAt(40*time.Millisecond, 4)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		if j.Err() != nil {
			t.Fatal(j.Err())
		}
		return c.Trace(), j.Result()
	}
	tr1, res1 := run(1)
	tr2, res2 := run(1)
	if tr1 != tr2 {
		t.Fatal("same seed produced different traces")
	}
	tr3, res3 := run(2)
	if tr3 == tr1 {
		t.Fatal("different seed produced an identical schedule")
	}
	if !equalMatrix(res1, res2) || !equalMatrix(res1, res3) {
		t.Fatal("DP results are seed-dependent")
	}
	_, ref, err := BuildProblem("editdist", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !equalMatrix(res1, ref) {
		t.Fatal("simulated result differs from the sequential reference")
	}
}

// TestPartitionZombie partitions a slow worker past the sweep window:
// its leases are revoked and redistributed, and when the healed zombie
// finally delivers, attempt arbitration refuses the result.
func TestPartitionZombie(t *testing.T) {
	c := New(Options{Workers: 2, Seed: 3, Cost: 10 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond, HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss: 3, TaskTimeout: time.Minute})
	j, err := c.Submit(0, mustProblem(t, "editdist", 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	c.SlowAt(0, 1, 20)                                          // w1: 200ms per task
	c.PartitionAt(15*time.Millisecond, 1, 100*time.Millisecond) // heals after the sweep declared it dead
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	st := j.Stats()
	if st.StaleResults < 1 {
		t.Fatalf("want the zombie's late result refused, got StaleResults=%d", st.StaleResults)
	}
	if st.Leaked != 0 {
		t.Fatalf("leaked %d scheduling entries", st.Leaked)
	}
	_, ref, _ := BuildProblem("editdist", 64, 5)
	if !equalMatrix(j.Result(), ref) {
		t.Fatal("result differs from the sequential reference")
	}
	deaths := 0
	for _, e := range c.MemberEvents() {
		if e.Kind == trace.EvMember && e.Label == "dead" {
			deaths++
		}
	}
	if deaths != 1 {
		t.Fatalf("want exactly one sweep death, got %d", deaths)
	}
}

// TestMaxAttemptsPoisonsJob drives one vertex through repeated overtime
// expiries on a crawling single worker until the job is failed rather
// than retried forever.
func TestMaxAttemptsPoisonsJob(t *testing.T) {
	c := New(Options{Workers: 1, Seed: 1, Cost: 10 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond, TaskTimeout: 50 * time.Millisecond,
		MaxAttempts: 2, Horizon: 5 * time.Minute})
	c.SlowAt(0, 0, 1000) // 10s per task against a 50ms timeout
	j, err := c.Submit(0, mustProblem(t, "editdist", 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if j.Err() == nil || !strings.Contains(j.Err().Error(), "MaxAttempts") {
		t.Fatalf("want MaxAttempts failure, got %v", j.Err())
	}
	if got := j.Stats().Redistributions; got < 1 {
		t.Fatalf("want at least one redistribution before giving up, got %d", got)
	}
}

// TestStealRescuesJoiner joins a fresh worker into a cluster whose only
// member hoards a deep batch backlog; with stealing on, the joiner must
// take the newer half instead of idling.
func TestStealRescuesJoiner(t *testing.T) {
	c := New(Options{Workers: 1, Seed: 9, Batch: 8, Steal: true,
		Cost: 10 * time.Millisecond, CheckInterval: 20 * time.Millisecond,
		TaskTimeout: time.Minute, Horizon: 10 * time.Minute})
	c.SlowAt(0, 0, 10) // the incumbent crawls at 100ms per task
	j, err := c.Submit(0, mustProblem(t, "editdist", 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.JoinAt(400*time.Millisecond, 1)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	if got := j.Stats().Steals; got < 1 {
		t.Fatalf("want the joiner to steal backlog, got Steals=%d", got)
	}
}

func TestRunValidation(t *testing.T) {
	c := New(Options{Workers: 1})
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "no jobs") {
		t.Fatalf("want no-jobs error, got %v", err)
	}
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want run-twice error, got %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := New(Options{Workers: 1})
	if _, err := c.Submit(0, JobSpec{Name: "empty"}); err == nil {
		t.Fatal("want error for a spec without a kernel")
	}
}

// TestHorizonFailsUnfinishedJobs caps virtual time below what the job
// needs; Run must fail it and report the horizon instead of spinning.
func TestHorizonFailsUnfinishedJobs(t *testing.T) {
	c := New(Options{Workers: 1, Seed: 1, Cost: 10 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond, Horizon: 50 * time.Millisecond})
	c.SlowAt(0, 0, 1000)
	j, err := c.Submit(0, mustProblem(t, "editdist", 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("want horizon error, got %v", err)
	}
	if j.Err() == nil {
		t.Fatal("want the unfinished job failed")
	}
	// A job scripted past the horizon must be failed as never activated.
	c2 := New(Options{Workers: 1, Horizon: 50 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond})
	j2, err := c2.Submit(time.Hour, mustProblem(t, "editdist", 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(); err == nil {
		t.Fatal("want horizon error")
	}
	if j2.Err() == nil || !strings.Contains(j2.Err().Error(), "never activated") {
		t.Fatalf("want never-activated failure, got %v", j2.Err())
	}
}

// TestAllWorkersDeadStarves kills the whole fleet mid-run: the event
// queue must drain into a starvation error, not hang.
func TestAllWorkersDeadStarves(t *testing.T) {
	c := New(Options{Workers: 2, Seed: 1, Cost: 10 * time.Millisecond,
		CheckInterval: 20 * time.Millisecond, Horizon: 30 * time.Second})
	j, err := c.Submit(0, mustProblem(t, "editdist", 32, 3))
	if err != nil {
		t.Fatal(err)
	}
	c.KillAt(25*time.Millisecond, 0)
	c.KillAt(25*time.Millisecond, 1)
	err = c.Run()
	if err == nil {
		t.Fatal("want an error with the whole fleet dead")
	}
	if j.Err() == nil {
		t.Fatal("want the job failed")
	}
}

// TestBurstSubmitSameInstant submits three jobs at the same virtual
// instant (a burst) and checks they all finish with correct results and
// a deterministic trace.
func TestBurstSubmitSameInstant(t *testing.T) {
	run := func() (string, []*Job) {
		c := New(Options{Workers: 8, Seed: 17, Cost: 2 * time.Millisecond, Jitter: 0.2,
			CheckInterval: 20 * time.Millisecond, Batch: 2})
		var jobs []*Job
		for i, k := range []string{"editdist", "lcs", "swgg"} {
			spec := mustProblem(t, k, 32, int64(i+1))
			spec.Name = k
			j, err := c.Submit(5*time.Millisecond, spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.Trace(), jobs
	}
	tr1, jobs1 := run()
	tr2, _ := run()
	if tr1 != tr2 {
		t.Fatal("burst submission broke trace determinism")
	}
	for i, k := range []string{"editdist", "lcs", "swgg"} {
		if jobs1[i].Err() != nil {
			t.Fatalf("%s: %v", k, jobs1[i].Err())
		}
		_, ref, _ := BuildProblem(k, 32, int64(i+1))
		if !equalMatrix(jobs1[i].Result(), ref) {
			t.Fatalf("%s result differs from the sequential reference", k)
		}
		if jobs1[i].Makespan() <= 0 || jobs1[i].Served() <= 0 {
			t.Fatalf("%s: implausible makespan/served: %v/%v", k, jobs1[i].Makespan(), jobs1[i].Served())
		}
		if jobs1[i].Summary().Tasks == 0 || len(jobs1[i].Events()) == 0 {
			t.Fatalf("%s: empty trace", k)
		}
	}
}

// TestTraceHelpers covers the format and diff helpers on a live trace.
func TestTraceHelpers(t *testing.T) {
	c := New(Options{Workers: 2, Seed: 1, Cost: time.Millisecond, CheckInterval: 20 * time.Millisecond})
	if _, err := c.Submit(0, mustProblem(t, "editdist", 16, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Registry().Live() != 2 {
		t.Fatalf("want 2 live members, got %d", c.Registry().Live())
	}
	if c.Elapsed() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	tr := c.Trace()
	if !strings.HasPrefix(tr, "# cluster\n") || !strings.Contains(tr, "# job ") {
		t.Fatalf("unexpected trace framing:\n%.200s", tr)
	}
	if got := firstTraceDiff("a\nb", "a\nc"); !strings.Contains(got, "line 2") {
		t.Fatalf("want a line diff, got %q", got)
	}
	if got := firstTraceDiff("a\nb", "a\nb\nc"); !strings.Contains(got, "prefix") {
		t.Fatalf("want prefix diff, got %q", got)
	}
}
