package sim

import (
	"testing"
	"time"
)

// sweepOverrides reruns scenario s with auto off and the given hand-set
// batch cap and speculation multiplier — the "operator with a config
// file" baseline the self-tuning runs are judged against. Speculation
// and stealing stay on (auto implies them, so the hand-tuned baseline
// gets them too); partitions are whatever the scenario declares, since
// the acceptance contract hand-tunes only the batch/speculation knobs.
func sweepOverrides(t *testing.T, s *Scenario, batch int, mult float64) *Result {
	t.Helper()
	h := *s
	h.Opts.Auto = false
	h.Opts.Batch = batch
	h.Opts.Speculate = true
	h.Opts.Steal = true
	h.Opts.SpecMultiplier = mult
	res, err := h.Run(0)
	if err != nil {
		t.Fatalf("hand-tuned run batch=%d mult=%v: %v", batch, mult, err)
	}
	if res.RunErr != nil {
		t.Fatalf("hand-tuned run batch=%d mult=%v failed: %v", batch, mult, res.RunErr)
	}
	return res
}

func totalWasted(r *Result) int64 {
	var n int64
	for _, j := range r.Jobs {
		n += j.Stats().SpecWasted
	}
	return n
}

// TestAutoTuneMixedWorkload is the makespan half of the PR 10
// acceptance bar: on the pinned mixed workload (fine-grained SWGG plus
// a coarse Nussinov with an advisor-chosen partition, one 10x
// straggler) the auto run — no hand-set batch or speculation knobs —
// must reach at least 90% of the best makespan a hand-tuned sweep over
// batch x multiplier finds.
func TestAutoTuneMixedWorkload(t *testing.T) {
	s, err := LoadScenario("testdata/tune-mixed-auto.scenario")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Opts.Auto {
		t.Fatal("scenario must run under auto")
	}
	if s.Opts.Batch != 0 || s.Opts.Speculate || s.Opts.SpecMultiplier != 0 {
		t.Fatal("scenario must not hand-set batch or speculation knobs")
	}
	auto, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.RunErr != nil {
		t.Fatalf("auto run failed: %v", auto.RunErr)
	}
	autoSpan := auto.Cluster.Elapsed()

	best := time.Duration(0)
	var bestBatch int
	var bestMult float64
	for _, b := range []int{1, 2, 4, 8} {
		for _, mult := range []float64{1.5, 2, 3} {
			span := sweepOverrides(t, s, b, mult).Cluster.Elapsed()
			if best == 0 || span < best {
				best, bestBatch, bestMult = span, b, mult
			}
		}
	}
	t.Logf("auto=%v, best hand-tuned=%v (batch=%d mult=%v)", autoSpan, best, bestBatch, bestMult)
	// "At least 90% of the best hand-tuned makespan": the auto run may
	// take at most best/0.9 virtual time.
	if limit := time.Duration(float64(best) / 0.9); autoSpan > limit {
		t.Fatalf("auto makespan %v exceeds 90%%-of-hand-tuned bound %v (best %v at batch=%d mult=%v)",
			autoSpan, limit, best, bestBatch, bestMult)
	}
}

// TestAutoCutsSpecWaste is the speculation half of the acceptance bar:
// on the mild-straggler workload the default thresholds provably waste
// backups (every one loses its race), and the self-tuning run cuts that
// waste to below the default's — without giving the makespan back.
func TestAutoCutsSpecWaste(t *testing.T) {
	s, err := LoadScenario("testdata/tune-mild-straggler.scenario")
	if err != nil {
		t.Fatal(err)
	}
	auto, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.RunErr != nil {
		t.Fatalf("auto run failed: %v", auto.RunErr)
	}
	autoWasted := totalWasted(auto)

	var defWasted int64
	var defSpan time.Duration
	for _, b := range []int{1, 2, 4} {
		res := sweepOverrides(t, s, b, 0) // mult=0 takes the default 2x
		w := totalWasted(res)
		if w > defWasted || defSpan == 0 {
			defWasted = w
		}
		if defSpan == 0 || res.Cluster.Elapsed() < defSpan {
			defSpan = res.Cluster.Elapsed()
		}
	}
	t.Logf("wasted backups: auto=%d default=%d; makespan auto=%v best default=%v",
		autoWasted, defWasted, auto.Cluster.Elapsed(), defSpan)
	if defWasted == 0 {
		t.Fatal("default thresholds wasted no backups: the comparison is vacuous, pick a harder workload")
	}
	if autoWasted >= defWasted {
		t.Fatalf("auto wasted %d backups, default thresholds %d: no cut", autoWasted, defWasted)
	}
	// The waste cut must not be bought with a slower schedule.
	if limit := time.Duration(float64(defSpan) * 1.15); auto.Cluster.Elapsed() > limit {
		t.Fatalf("auto makespan %v gave back more than 15%% against the default %v", auto.Cluster.Elapsed(), defSpan)
	}
}
