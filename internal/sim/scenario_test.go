package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestScenarios is the regression suite: every .scenario file under
// testdata is parsed, run and checked, including its determinism and
// seed-sensitivity reruns.
func TestScenarios(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no .scenario files under testdata")
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".scenario")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScenariosReseeded replays every scenario at extra seeds and checks
// the seed-independent half of the contract: each seed's schedule is
// deterministic (two runs, byte-identical traces) and every job that
// completes produces the bit-identical sequential DP result. Seed-tuned
// expectations (makespan bounds, stat fields) are deliberately not
// re-checked — they belong to the scenario's own seed. Seeds come from
// EASYHPS_SIM_SEEDS (comma-separated), defaulting to a fixed pair;
// scripts/ci.sh -sim runs this with its own seeds under a wall-time
// budget.
func TestScenariosReseeded(t *testing.T) {
	if testing.Short() {
		t.Skip("reseeded replays add no coverage over TestScenarios")
	}
	seeds := []int64{101, 202}
	if env := os.Getenv("EASYHPS_SIM_SEEDS"); env != "" {
		seeds = nil
		for _, f := range strings.Split(env, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("EASYHPS_SIM_SEEDS: %v", err)
			}
			seeds = append(seeds, n)
		}
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no .scenario files under testdata")
	}
	for _, path := range paths {
		path, name := path, strings.TrimSuffix(filepath.Base(path), ".scenario")
		for _, seed := range seeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				t.Parallel()
				s, err := LoadScenario(path)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run(seed)
				if err != nil {
					t.Fatal(err)
				}
				again, err := s.Run(seed)
				if err != nil {
					t.Fatal(err)
				}
				if res.Trace != again.Trace {
					t.Fatalf("seed %d is not deterministic: %s", seed, firstTraceDiff(res.Trace, again.Trace))
				}
				for _, def := range s.Jobs {
					j := res.Jobs[def.Spec.Name]
					if j == nil || j.Err() != nil {
						continue // completion at arbitrary seeds is the scenario's own business
					}
					_, ref, err := BuildProblem(def.Kernel, def.N, def.Seed)
					if err != nil {
						t.Fatal(err)
					}
					if !equalMatrix(j.Result(), ref) {
						t.Fatalf("seed %d: job %q diverged from the sequential reference", seed, def.Spec.Name)
					}
				}
			})
		}
	}
}

func TestParseScenarioFields(t *testing.T) {
	const text = `
# full-feature parse check
cluster workers=16 batch=2 seed=9 cost=3ms jitter=0.25 timeout=2s check=50ms hb=40ms miss=4 maxattempts=5 horizon=90s speculate spec-q=0.9 spec-mult=3 spec-min=6 spec-floor=10ms steal cache auto
job name=j kernel=editdist n=32 seed=4 proc=4x4 weight=2.5 priority=1 quota=3 maxattempts=2 timeout=1s cost=7ms cost-per-cell=250us deadline=20s cache-key=k
at 5ms submit j
at 10ms join 3
at 15ms kill w2
at 20ms killn 4
at 25ms partition w1 100ms
at 30ms slow w0 2.5
expect complete
expect deterministic
expect makespan <= 3s
expect max-deficit <= 1.5
expect job j tasks == 16
`
	s, err := ParseScenario("full", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	o := s.Opts
	if o.Workers != 16 || o.Batch != 2 || o.Seed != 9 || o.Cost != 3*time.Millisecond ||
		o.Jitter != 0.25 || o.TaskTimeout != 2*time.Second || o.CheckInterval != 50*time.Millisecond ||
		o.HeartbeatInterval != 40*time.Millisecond || o.HeartbeatMiss != 4 || o.MaxAttempts != 5 ||
		o.Horizon != 90*time.Second || !o.Speculate || o.SpecQuantile != 0.9 || o.SpecMultiplier != 3 ||
		o.SpecMinSamples != 6 || o.SpecFloor != 10*time.Millisecond || !o.Steal || !o.Auto {
		t.Fatalf("cluster options misparsed: %+v", o)
	}
	if !s.UseCache {
		t.Fatal("cache flag not parsed")
	}
	if len(s.Jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(s.Jobs))
	}
	jb := s.Jobs[0]
	if jb.Spec.Name != "j" || jb.Kernel != "editdist" || jb.N != 32 || jb.Seed != 4 ||
		jb.Spec.Proc.Rows != 4 || jb.Spec.Proc.Cols != 4 || jb.Spec.Weight != 2.5 ||
		jb.Spec.Priority != 1 || jb.Spec.Quota != 3 || jb.Spec.MaxAttempts != 2 ||
		jb.Spec.TaskTimeout != time.Second || jb.Spec.Cost != 7*time.Millisecond ||
		jb.Spec.CostPerCell != 250*time.Microsecond || jb.Spec.Deadline != 20*time.Second ||
		jb.Spec.CacheKey != "k" {
		t.Fatalf("job misparsed: %+v", jb)
	}
	if len(s.Steps) != 6 {
		t.Fatalf("want 6 steps, got %d", len(s.Steps))
	}
	st := s.Steps[4]
	if st.Op != "partition" || st.At != 25*time.Millisecond || st.Worker != 1 || st.Dur != 100*time.Millisecond {
		t.Fatalf("partition step misparsed: %+v", st)
	}
	if sl := s.Steps[5]; sl.Op != "slow" || sl.Worker != 0 || sl.Factor != 2.5 {
		t.Fatalf("slow step misparsed: %+v", sl)
	}
	if len(s.Expects) != 5 {
		t.Fatalf("want 5 expects, got %d", len(s.Expects))
	}
	if ex := s.Expects[2]; ex.Field != "makespan" || ex.Op != "<=" || ex.Value != float64(3*time.Second) {
		t.Fatalf("duration expect misparsed: %+v", ex)
	}
	if ex := s.Expects[3]; ex.Field != "max-deficit" || ex.Value != 1.5 {
		t.Fatalf("float expect misparsed: %+v", ex)
	}
	if ex := s.Expects[4]; ex.Job != "j" || ex.Field != "tasks" || ex.Op != "==" || ex.Value != 16 {
		t.Fatalf("job expect misparsed: %+v", ex)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	const header = "cluster workers=2 seed=1\njob name=j kernel=editdist n=8 seed=1\nat 0ms submit j\n"
	cases := []struct {
		name, text, want string
	}{
		{"unknown directive", header + "frobnicate\n", "unknown directive"},
		{"duplicate cluster", header + "cluster workers=3\n", "duplicate cluster"},
		{"bad cluster key", "cluster workers=2 bogus=1\n", "unknown cluster key"},
		{"bad cluster value", "cluster workers=two\n", "invalid syntax"},
		{"flag with value", "cluster workers=2 steal=yes\n", "takes no value"},
		{"bad job key", header + "job name=k kernel=lcs n=8 bogus=1\nat 0ms submit k\n", "unknown job key"},
		{"job missing kernel", header + "job name=k n=8\n", "needs name=, kernel= and n="},
		{"duplicate job", header + "job name=j kernel=lcs n=8\n", "duplicate job"},
		{"bad proc", header + "job name=k kernel=lcs n=8 proc=4\nat 0ms submit k\n", "want RxC"},
		{"submit unknown job", header + "at 0ms submit ghost\n", "undefined job"},
		{"bad offset", header + "at soon submit j\n", "bad offset"},
		{"bad action", header + "at 0ms explode j\n", "unknown action"},
		{"bad worker token", header + "at 0ms kill 3\n", "want w<idx>"},
		{"join needs count", header + "at 0ms join\n", "wants a count"},
		{"killn zero", header + "at 0ms killn 0\n", "must be positive"},
		{"partition args", header + "at 0ms partition w0\n", "wants w<idx> and a duration"},
		{"slow args", header + "at 0ms slow w0\n", "wants w<idx> and a factor"},
		{"empty expect", header + "expect\n", "empty expect"},
		{"expect extra args", header + "expect complete now\n", "takes no arguments"},
		{"expect bad op", header + "expect makespan ~ 3s\n", "unknown op"},
		{"expect bad value", header + "expect makespan <= soonish\n", "bad value"},
		{"expect job arity", header + "expect job j tasks ==\n", "expect job"},
		{"cancel unknown job", header + "at 1ms cancel ghost\n", `cancel of undefined job "ghost"`},
		{"cancel arity", header + "at 1ms cancel\n", "cancel wants a job name"},
		{"expect on cancelled job", header + "at 1ms cancel j\nexpect job j tasks == 1\n",
			`x:5: expect references job "j", which the script cancels`},
		{"expect before cancel step", header + "expect job j tasks == 1\nat 1ms cancel j\n",
			`x:4: expect references job "j", which the script cancels`},
		{"no cluster", "job name=j kernel=editdist n=8\nat 0ms submit j\n", "missing cluster"},
		{"no jobs", "cluster workers=2\n", "no jobs defined"},
		{"never submitted", "cluster workers=2\njob name=j kernel=editdist n=8\n", "never submitted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario("x", strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %q", tc.want, err)
			}
		})
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := LoadScenario(filepath.Join("testdata", "no-such.scenario")); err == nil {
		t.Fatal("want error for missing scenario file")
	}
}

// TestCheckReportsViolations runs a scenario whose expectations cannot
// hold and verifies the checker surfaces each violated line.
func TestCheckReportsViolations(t *testing.T) {
	const text = `
cluster workers=2 seed=1 cost=1ms check=10ms horizon=30s
job name=j kernel=editdist n=16 seed=1 proc=2x2
at 0ms submit j
expect makespan <= 1ns
expect job j tasks == 999
expect job j nonsense == 1
expect job ghost tasks == 1
expect seed-sensitive
`
	s, err := ParseScenario("bad-expect", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	err = s.Check()
	if err == nil {
		t.Fatal("want violations, got nil")
	}
	for _, want := range []string{
		"expect makespan <= 1ns",
		"expect job j tasks == 999",
		`unknown field "nonsense"`,
		"unknown expectation target",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing violation %q in:\n%v", want, err)
		}
	}
}
