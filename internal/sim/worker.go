package sim

import (
	"time"

	"repro/internal/dag"
	"repro/internal/fleet"
	"repro/internal/matrix"
)

// simWorker is one simulated fleet member: a speed factor, a FIFO task
// queue and liveness flags. It executes its queue one entry at a time;
// service times are the job's cost scaled by the worker's current speed
// and the cluster's jitter draw.
type simWorker struct {
	member int
	alive  bool
	// partitioned workers keep computing but stop heartbeating and
	// their results are dropped (an unreachable peer, not a dead one).
	partitioned bool
	// declaredDead is the master's view: set by a crash (KillAt) or by
	// the membership sweep. Leases are revoked exactly once, here.
	declaredDead bool
	speed        float64
	queue        []entry
	cur          *entry
	// gen invalidates the pending completion event when the worker's
	// in-flight work disappears (crash).
	gen int
}

// entry is one dispatched task attempt sitting in a worker's queue: the
// frame the master sent, including the encoded data region the compute
// runs against.
type entry struct {
	jb      *simJob
	vertex  int32
	attempt int32
	payload []byte
}

// dispatchAll feeds every idle worker until no job has eligible work,
// then lets the steal path rescue any still-idle workers. It is called
// at the end of every event that could open work or free a worker.
func (c *Cluster) dispatchAll() {
	c.feedIdle()
	if c.opts.Steal && len(c.idle) > 0 {
		// No job has queued work but workers sit idle: steal the tail of
		// the deepest backlog toward each hungry member, exactly one
		// feed attempt per idle worker per pass (fleet.feedHungry).
		hungry := len(c.idle)
		for i := 0; i < hungry && len(c.idle) > 0; i++ {
			m := c.idle[0]
			w := c.byMember[m]
			if w == nil || !w.ready() {
				c.idle = c.idle[1:]
				continue
			}
			if !c.feedHungry(w) {
				break
			}
			c.feedIdle()
		}
	}
}

// feedIdle pops idle tokens and hands each worker a batch while the
// policy finds one; stale tokens (dead, partitioned, busy workers)
// are discarded on the way.
func (c *Cluster) feedIdle() {
	for len(c.idle) > 0 {
		m := c.idle[0]
		w := c.byMember[m]
		if w == nil || !w.ready() {
			c.idle = c.idle[1:]
			continue
		}
		if !c.tryFeed(w) {
			return
		}
		c.idle = c.idle[1:]
	}
}

// ready reports whether the worker can accept a dispatch right now.
func (w *simWorker) ready() bool {
	return w.alive && !w.partitioned && !w.declaredDead && w.cur == nil && len(w.queue) == 0
}

// tryFeed draws batches for w until one actually dispatches (true) or
// no job is eligible (false) — fleet's sender loop, where a draw whose
// vertices all turned out finished or held does not consume the idle
// token.
func (c *Cluster) tryFeed(w *simWorker) bool {
	for {
		jb, ids := c.nextBatch()
		if jb == nil {
			return false
		}
		sent, consumed := c.dispatch(w, jb, ids)
		if sent || consumed {
			return true
		}
	}
}

// nextBatch assembles the policy's job views in submission order and
// draws a LIFO batch from the picked job, charging its fair-share
// account (fleet.nextBatch without the blocking).
func (c *Cluster) nextBatch() (*simJob, []int32) {
	views := make([]fleet.JobView, 0, len(c.jobs))
	running := make([]*simJob, 0, len(c.jobs))
	for _, jb := range c.jobs {
		if !jb.active || jb.done {
			continue
		}
		views = append(views, fleet.JobView{
			ID:       jb.id,
			Weight:   jb.spec.Weight,
			Priority: jb.spec.Priority,
			Ready:    len(jb.ready),
			Inflight: jb.leases.Len(),
			Quota:    jb.spec.Quota,
			Served:   jb.served,
		})
		running = append(running, jb)
	}
	// Track the fair-share deficit the policy is choosing under: the
	// served spread across currently eligible jobs. Its running maximum
	// is the bound the fairness regression scenarios assert.
	first := true
	var lo, hi float64
	for _, v := range views {
		if !v.Eligible() {
			continue
		}
		if first || v.Served < lo {
			lo = v.Served
		}
		if first || v.Served > hi {
			hi = v.Served
		}
		first = false
	}
	if !first && hi-lo > c.maxDeficit {
		c.maxDeficit = hi - lo
	}
	i := c.opts.Policy.Pick(views)
	if i < 0 || i >= len(running) {
		return nil, nil
	}
	jb := running[i]
	n := c.batchCap()
	if q := views[i].Quota; q > 0 {
		if room := q - views[i].Inflight; room < n {
			n = room
		}
	}
	if n < 1 {
		n = 1
	}
	if n > len(jb.ready) {
		n = len(jb.ready)
	}
	ids := make([]int32, n)
	copy(ids, jb.ready[len(jb.ready)-n:])
	jb.ready = jb.ready[:len(jb.ready)-n]
	jb.served += float64(n) / jb.spec.Weight
	return jb, ids
}

// register arbitrates one drawn vertex: a primary attempt normally, a
// backup when the vertex carries a pending speculation flag — unless
// this very worker holds the primary, in which case the vertex is held
// for another member (fleet.register).
func (c *Cluster) register(jb *simJob, member int, v int32) (attempt int32, ok, backup, held bool) {
	pending := jb.specPending[v]
	delete(jb.specPending, v)
	if !pending {
		a, ok := jb.rt.Register(v)
		return a, ok, false, false
	}
	for _, l := range jb.leases.Holders(v) {
		if l.Worker == member {
			jb.specPending[v] = true
			return 0, false, false, true
		}
	}
	a, ok := jb.rt.RegisterBackup(v)
	if !ok {
		return 0, false, false, false
	}
	jb.backupOf[v] = a
	return a, true, true, false
}

// dispatch leases the drawn vertices to worker w and enqueues the task
// frames. Returns (sent, consumed): sent when at least one frame went
// out; consumed when the idle token is spent even without a send (the
// whole draw was held self-backups, fleet's rule).
func (c *Cluster) dispatch(w *simWorker, jb *simJob, ids []int32) (sent, consumed bool) {
	now := c.now()
	var held []int32
	entries := make([]entry, 0, len(ids))
	bytes := 0
	for _, v := range ids {
		attempt, ok, backup, self := c.register(jb, w.member, v)
		if !ok {
			if self {
				held = append(held, v)
			}
			continue
		}
		deps := jb.graph.Vertex(v).DataPre
		positions := make([]dag.Pos, len(deps))
		for k, d := range deps {
			positions[k] = jb.geom.PosOf(d)
		}
		payload, err := matrix.EncodeBlocks(jb.spec.Problem.Codec, jb.store.Gather(positions))
		if err != nil {
			jb.finish(err, now)
			return false, true
		}
		jb.ctrs.BlocksShipped.Add(int64(len(deps)))
		deadline := now.Add(jb.spec.TaskTimeout * time.Duration(len(entries)+1))
		if backup {
			jb.leases.Add(v, w.member, attempt, now)
			jb.ot.AddConcurrent(v, attempt, deadline)
			jb.ctrs.Speculated.Add(1)
			jb.tr.Speculate(w.member, v)
		} else {
			jb.leases.Grant(v, w.member, attempt, now)
			jb.ot.Add(v, attempt, deadline)
		}
		jb.tr.TaskStart(w.member, v)
		jb.ctrs.Dispatches.Add(1)
		bytes += len(payload)
		entries = append(entries, entry{jb: jb, vertex: v, attempt: attempt, payload: payload})
	}
	if len(held) > 0 {
		c.requeue(jb, held...)
	}
	if len(entries) == 0 {
		return false, len(held) > 0
	}
	jb.ctrs.TaskBytes.Add(int64(bytes))
	jb.tr.Dispatch(w.member, len(entries), bytes)
	if len(entries) > 1 {
		jb.ctrs.BatchMessages.Add(1)
	}
	w.queue = append(w.queue, entries...)
	c.startNext(w)
	return true, true
}

// startNext begins the worker's next queued entry, skipping frames of
// retired jobs (the worker would drop them on JobEnd in the real
// protocol). An emptied worker re-enters the idle queue.
func (c *Cluster) startNext(w *simWorker) {
	for w.cur == nil && len(w.queue) > 0 {
		e := w.queue[0]
		w.queue = w.queue[1:]
		if e.jb.done {
			continue
		}
		ec := e
		w.cur = &ec
		gen := w.gen
		c.after(c.serviceTime(&ec, w), func() { c.complete(w, gen) })
	}
	if w.cur == nil {
		c.noteIdleIfFree(w)
	}
}

// serviceTime draws the virtual execution time of one entry: the job's
// nominal cost (plus the block-area term when CostPerCell is set),
// scaled by the worker's current speed factor and the cluster's jitter.
// The RNG is consumed in event order, so the draw sequence — and with
// it the whole schedule — is a function of the seed.
func (c *Cluster) serviceTime(e *entry, w *simWorker) time.Duration {
	cost := float64(e.jb.cost)
	if e.jb.spec.CostPerCell > 0 {
		r := e.jb.geom.Rect(e.jb.geom.PosOf(e.vertex))
		cost += float64(e.jb.spec.CostPerCell) * float64(r.Rows*r.Cols)
	}
	d := cost * w.speed
	if c.opts.Jitter > 0 {
		d *= 1 + c.opts.Jitter*(2*c.rng.Float64()-1)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// complete fires when the worker's current entry finishes computing.
// A stale generation means the worker crashed in the meantime and the
// work never happened.
func (c *Cluster) complete(w *simWorker, gen int) {
	if w.gen != gen || w.cur == nil {
		return
	}
	e := w.cur
	w.cur = nil
	if w.alive && !w.partitioned {
		// A declared-dead (swept) but healed worker still delivers: the
		// master refuses the result in attempt arbitration, which is the
		// zombie-result path the register table exists for.
		c.applyResult(w, e)
	}
	c.startNext(w)
	c.dispatchAll()
}

// applyResult commits one computed vertex to its job — acceptance,
// profile observation, lease release, speculation accounting, compute,
// commit, DAG advance — mirroring fleet.applyResult with the compute
// moved master-side (the simulator computes each accepted vertex once;
// speculation losers cost only virtual time).
func (c *Cluster) applyResult(w *simWorker, e *entry) {
	jb := e.jb
	if jb.done {
		return
	}
	if !jb.rt.Accept(e.vertex, e.attempt) {
		jb.ctrs.StaleResults.Add(1)
		return
	}
	now := c.now()
	jb.ot.Remove(e.vertex)
	if l, ok := jb.leases.Find(e.vertex, e.attempt); ok {
		jb.profile.Observe(now.Sub(l.Granted))
	}
	jb.leases.Release(e.vertex)
	if backup, ok := jb.backupOf[e.vertex]; ok {
		delete(jb.backupOf, e.vertex)
		delete(jb.specPending, e.vertex)
		if backup == e.attempt {
			jb.ctrs.SpecWon.Add(1)
		} else {
			jb.ctrs.SpecWasted.Add(1)
		}
	}
	out, err := jb.runner.Run(e.vertex, e.payload)
	if err != nil {
		jb.finish(err, now)
		return
	}
	blocks, err := matrix.DecodeBlocks(jb.spec.Problem.Codec, out)
	if err != nil || len(blocks) != 1 {
		jb.finish(err, now)
		return
	}
	jb.commit(e.vertex, out, blocks[0])
	c.reg.NoteCompleted(w.member)
	jb.tr.TaskEnd(w.member, e.vertex)
	jb.ctrs.Tasks.Add(1)
	newly := jb.parser.Complete(e.vertex)
	if jb.parser.Finished() {
		jb.finish(nil, now)
		return
	}
	newly = c.absorbCached(jb, newly)
	if jb.done {
		return
	}
	c.requeueReady(jb, newly)
}

// noteIdleIfFree queues an idle token for w if it can take work.
func (c *Cluster) noteIdleIfFree(w *simWorker) {
	if w.ready() {
		c.idle = append(c.idle, w.member)
	}
}

// feedHungry steals the newer half of the deepest backlog toward hungry
// worker w when no job has queued work (fleet.feedHungry, with the
// victim scan in admit order instead of map order). Returns false when
// there was nothing to steal, which ends the pass.
func (c *Cluster) feedHungry(w *simWorker) bool {
	ownLoad := 0
	var victimJob *simJob
	victim, deepest := 0, 1
	for _, jb := range c.jobs {
		if !jb.active || jb.done {
			continue
		}
		if len(jb.ready) > 0 {
			return false // queued work exists; normal dispatch handles it
		}
		ownLoad += jb.leases.Load(w.member)
		for _, vw := range c.workers {
			if vw.member == w.member {
				continue
			}
			if n := jb.leases.Load(vw.member); n > deepest {
				victimJob, victim, deepest = jb, vw.member, n
			}
		}
	}
	if ownLoad > 0 || victimJob == nil {
		return false
	}
	backlog := victimJob.leases.WorkerLeases(victim)
	if len(backlog) < 2 {
		return false
	}
	stolen := make([]int32, 0, len(backlog)/2)
	for _, l := range backlog[(len(backlog)+1)/2:] {
		if victimJob.rt.LiveAttempts(l.Vertex) != 1 {
			continue
		}
		victimJob.leases.ReleaseAttempt(l.Vertex, l.Attempt)
		victimJob.ot.RemoveAttempt(l.Vertex, l.Attempt)
		if victimJob.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
			stolen = append(stolen, l.Vertex)
		}
	}
	if len(stolen) == 0 {
		return false
	}
	victimJob.ctrs.Steals.Add(int64(len(stolen)))
	victimJob.tr.Steal(w.member, len(stolen))
	c.requeue(victimJob, stolen...)
	return true
}
