// Package sim is the deterministic cluster simulator: the fleet's
// scheduling components — attempt arbitration (sched.RegisterTable),
// leases (sched.LeaseTable), overtime (sched.OvertimeQueue), runtime
// profiles, the fair-share policy (fleet.Policy), membership
// (cluster.Registry), DAG parsing, the block store, the cross-job result
// cache and the compute engine (core.TaskRunner) — composed under a
// single-threaded discrete-event loop driven by a sched.FakeClock.
//
// Workers are simulated: each is a speed factor, a task queue and a
// liveness flag, not a goroutine or a socket. Faults (kill, join,
// partition, slow-down, burst submission) are scripted at virtual
// timestamps, service times are drawn from a seeded RNG, and every
// scheduling decision lands in a virtual-time trace.Recorder. The result
// is the determinism contract the regression suite is built on: the same
// scenario with the same seed yields a byte-identical event trace
// (trace.Format), and any seed yields bit-identical DP results, because
// the kernels are pure functions of their data dependencies.
//
// The simulator deliberately mirrors internal/fleet's scheduling
// semantics — LIFO ready stacks, fair-share draws charged per batch,
// position-scaled overtime deadlines, MaxAttempts poisoned-job
// isolation, profile-driven speculation and backlog stealing — so a
// scenario assertion here is a statement about the production scheduler,
// checked at scales (1000 workers) the CI box cannot host for real.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"

	"repro/internal/cas"
)

// Options configures one simulated cluster. Zero values take the same
// defaults as the production fleet where a counterpart exists.
type Options struct {
	// Workers is the number of workers admitted before virtual time 0.
	Workers int
	// Batch bounds vertices per dispatch (default 1).
	Batch int
	// TaskTimeout is the per-vertex overtime bound (default 30s).
	TaskTimeout time.Duration
	// CheckInterval is the control tick period: heartbeats, sweep,
	// overtime expiry and speculation all run on it (default 250ms).
	CheckInterval time.Duration
	// MaxAttempts bounds overtime redistributions per vertex (default 4).
	MaxAttempts int
	// HeartbeatInterval and HeartbeatMiss size the membership sweep
	// (defaults 250ms, 3). Simulated workers beat on every control tick
	// unless partitioned or dead.
	HeartbeatInterval time.Duration
	HeartbeatMiss     int
	// Speculate enables profile-driven backup dispatch with the fleet's
	// threshold machinery.
	Speculate      bool
	SpecQuantile   float64
	SpecMultiplier float64
	SpecMinSamples int
	SpecFloor      time.Duration
	// Steal enables backlog stealing toward idle workers when no job
	// has ready vertices.
	Steal bool
	// Policy picks the job feeding each idle worker (default
	// fleet.FairShare).
	Policy fleet.Policy
	// Cache, when non-nil, is the cross-job content-addressed result
	// store probed for each computable vertex of cache-keyed jobs.
	Cache *cas.Store
	// Seed seeds the service-time and fault-selection RNG.
	Seed int64
	// Cost is the nominal per-vertex service time (default 1ms); Jitter
	// widens it to Cost*(1 ± Jitter) uniformly. Jobs may override Cost.
	Cost   time.Duration
	Jitter float64
	// Horizon aborts the simulation when virtual time passes it, failing
	// every unfinished job (default 1h) — the guard that turns a
	// scheduling livelock into a test failure instead of a hang.
	Horizon time.Duration
	// Auto runs the self-tuning controller on every control tick: the
	// batch cap and speculation thresholds above become starting points
	// that adapt to the observed workload, unset job partitions come
	// from the cost-model advisor, and speculation plus stealing are
	// enabled (auto means the system owns the schedule). Mirrors the
	// production -auto flag.
	Auto bool
}

func (o Options) withDefaults() Options {
	if o.Auto {
		o.Speculate = true
		o.Steal = true
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.TaskTimeout <= 0 {
		o.TaskTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMiss < 1 {
		o.HeartbeatMiss = 3
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = o.HeartbeatInterval
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 4
	}
	if o.Policy == nil {
		o.Policy = fleet.FairShare{}
	}
	if o.SpecQuantile <= 0 || o.SpecQuantile > 1 {
		o.SpecQuantile = 0.95
	}
	if o.SpecMultiplier <= 1 {
		o.SpecMultiplier = 2
	}
	if o.SpecMinSamples < 1 {
		o.SpecMinSamples = 8
	}
	if o.SpecFloor <= 0 {
		o.SpecFloor = o.CheckInterval
	}
	if o.Cost <= 0 {
		o.Cost = time.Millisecond
	}
	if o.Horizon <= 0 {
		o.Horizon = time.Hour
	}
	return o
}

// Cluster is one simulated fleet: a virtual clock, a membership
// registry, scripted workers and any number of concurrently scheduled
// jobs. Build it with New, script faults and submissions, then Run.
// A Cluster is single-threaded and not reusable after Run.
type Cluster struct {
	opts  Options
	clock *sched.FakeClock
	epoch time.Time
	rng   *rand.Rand
	reg   *cluster.Registry
	tr    *trace.Recorder // membership events, virtual-time stamped

	pq  eventHeap
	seq int64

	workers  []*simWorker // admit order
	byMember map[int]*simWorker
	idle     []int // FIFO of idle member ids (stale tokens skipped lazily)

	jobs []*simJob // submission order
	ran  bool

	// tuner is the self-tuning controller, non-nil iff Options.Auto.
	tuner *tune.Controller

	// maxDeficit is the largest served spread observed across eligible
	// jobs at any pick (see nextBatch) — the realized fair-share bound.
	maxDeficit float64
}

// New builds an empty simulated cluster. Script it (Submit, JoinAt,
// KillAt, ...) and then call Run exactly once.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	epoch := time.Unix(0, 0).UTC()
	clock := sched.NewFakeClock(epoch)
	c := &Cluster{
		opts:     opts,
		clock:    clock,
		epoch:    epoch,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		byMember: make(map[int]*simWorker),
	}
	c.tr = trace.NewWithNow(clock.Now)
	c.reg = cluster.NewRegistry(c.tr, clock)
	if opts.Auto {
		c.tuner = tune.New(tune.DefaultLimits(), opts.Batch,
			opts.SpecQuantile, opts.SpecMultiplier, opts.SpecMinSamples)
	}
	for i := 0; i < opts.Workers; i++ {
		c.admit()
	}
	return c
}

func (c *Cluster) now() time.Time { return c.clock.Now() }

// At schedules an arbitrary scripted action at virtual offset d.
func (c *Cluster) At(d time.Duration, fn func()) {
	c.schedule(c.epoch.Add(d), fn)
}

// Submit schedules job spec for submission at virtual offset d and
// returns its handle; results are valid once Run returns. Several
// submissions at the same offset form a burst, processed in call order.
func (c *Cluster) Submit(d time.Duration, spec JobSpec) (*Job, error) {
	jb, err := c.newJob(spec)
	if err != nil {
		return nil, err
	}
	c.jobs = append(c.jobs, jb)
	c.At(d, func() { c.activate(jb) })
	return &Job{jb: jb}, nil
}

// JoinAt scripts n workers joining at virtual offset d.
func (c *Cluster) JoinAt(d time.Duration, n int) {
	c.At(d, func() {
		for i := 0; i < n; i++ {
			c.admit()
		}
		c.dispatchAll()
	})
}

// KillAt scripts the death of the idx-th admitted worker (0-based, in
// admit order) at virtual offset d. Killing an already-dead worker is a
// no-op.
func (c *Cluster) KillAt(d time.Duration, idx int) {
	c.At(d, func() { c.kill(c.workerAt(idx)) })
}

// KillRandomAt scripts the death of n distinct alive workers at virtual
// offset d, drawn from the seeded RNG — the "10% of the fleet dies"
// fault. Fewer than n alive workers kills them all.
func (c *Cluster) KillRandomAt(d time.Duration, n int) {
	c.At(d, func() {
		alive := make([]*simWorker, 0, len(c.workers))
		for _, w := range c.workers {
			if w.alive {
				alive = append(alive, w)
			}
		}
		c.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		if n > len(alive) {
			n = len(alive)
		}
		for _, w := range alive[:n] {
			c.kill(w)
		}
		c.dispatchAll()
	})
}

// PartitionAt scripts a network partition of the idx-th worker for dur:
// it stops heartbeating and its results are dropped, but it keeps
// computing. If the partition outlives the sweep window the master
// declares it dead and revokes its leases; a heal after that leaves a
// zombie whose late results are refused by attempt arbitration.
func (c *Cluster) PartitionAt(d time.Duration, idx int, dur time.Duration) {
	c.At(d, func() {
		if w := c.workerAt(idx); w != nil && w.alive {
			w.partitioned = true
		}
	})
	c.At(d+dur, func() {
		if w := c.workerAt(idx); w != nil && w.alive {
			w.partitioned = false
			if !w.declaredDead {
				c.noteIdleIfFree(w)
				c.dispatchAll()
			}
		}
	})
}

// CancelAt scripts a client cancellation of the named job at virtual
// offset d: the job reaches its terminal state immediately, in-flight
// frames are dropped when workers reach them, and its leases count as
// leaked in the job's stats. Cancelling a finished or unknown job is a
// no-op, like a late DELETE against the job service.
func (c *Cluster) CancelAt(d time.Duration, name string) {
	c.At(d, func() {
		for _, jb := range c.jobs {
			if jb.spec.Name == name && jb.active && !jb.done {
				jb.finish(fmt.Errorf("sim: job %q cancelled by script", name), c.now())
				c.dispatchAll()
			}
		}
	})
}

// SlowAt scripts a speed change of the idx-th worker at virtual offset
// d: factor multiplies every service time drawn from then on (1 =
// nominal, 20 = a 20x straggler). Stepped calls form a speed curve.
func (c *Cluster) SlowAt(d time.Duration, idx int, factor float64) {
	c.At(d, func() {
		if w := c.workerAt(idx); w != nil && factor > 0 {
			w.speed = factor
		}
	})
}

func (c *Cluster) workerAt(idx int) *simWorker {
	if idx < 0 || idx >= len(c.workers) {
		return nil
	}
	return c.workers[idx]
}

// admit registers one fresh worker and queues it for dispatch.
func (c *Cluster) admit() *simWorker {
	m := c.reg.Admit(fmt.Sprintf("w%d", len(c.workers)), "sim")
	w := &simWorker{member: m.ID, alive: true, speed: 1}
	c.workers = append(c.workers, w)
	c.byMember[w.member] = w
	c.idle = append(c.idle, w.member)
	return w
}

// kill marks w dead immediately (process crash): the registry learns at
// once — unlike a partition, which it only discovers by sweep — its
// leases are revoked, and its in-flight work disappears.
func (c *Cluster) kill(w *simWorker) {
	if w == nil || !w.alive {
		return
	}
	w.alive = false
	w.gen++ // cancels the pending completion event, if any
	w.cur = nil
	w.queue = nil
	if !w.declaredDead {
		w.declaredDead = true
		c.reg.MarkDead(w.member)
		c.revoke(w.member)
	}
	c.dispatchAll()
}

// revoke releases every lease the member holds across all jobs and
// requeues the uncovered vertices, in submission order and lease grant
// order so the resulting schedule is deterministic.
func (c *Cluster) revoke(member int) {
	for _, jb := range c.jobs {
		if jb.done {
			continue
		}
		revoked := jb.leases.RevokeWorker(member)
		if len(revoked) == 0 {
			continue
		}
		sortLeases(revoked)
		var requeue []int32
		for _, l := range revoked {
			jb.ot.RemoveAttempt(l.Vertex, l.Attempt)
			jb.noteAttemptGone(l.Vertex, l.Attempt)
			if jb.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
				requeue = append(requeue, l.Vertex)
			}
		}
		c.reg.NoteRevoked(len(revoked), len(requeue))
		c.requeue(jb, requeue...)
	}
}

// Run executes the scripted simulation to completion: until every
// submitted job reached a terminal state and all scripted events fired,
// or the horizon passed. It may be called once.
func (c *Cluster) Run() error {
	if c.ran {
		return fmt.Errorf("sim: Run called twice")
	}
	c.ran = true
	if len(c.jobs) == 0 {
		return fmt.Errorf("sim: no jobs submitted")
	}
	c.scheduleTick()
	horizon := c.epoch.Add(c.opts.Horizon)
	for c.pq.Len() > 0 {
		e := c.pq[0]
		if e.at.After(horizon) {
			for _, jb := range c.jobs {
				if !jb.done && jb.active {
					jb.finish(fmt.Errorf("sim: job %q unfinished at the %v horizon with %d vertices remaining",
						jb.spec.Name, c.opts.Horizon, jb.parser.Remaining()), c.now())
				} else if !jb.active {
					jb.finish(fmt.Errorf("sim: job %q never activated before the %v horizon", jb.spec.Name, c.opts.Horizon), c.now())
				}
			}
			return fmt.Errorf("sim: horizon %v exceeded with unfinished work", c.opts.Horizon)
		}
		popped := c.nextEvent()
		if d := popped.at.Sub(c.now()); d > 0 {
			c.clock.Advance(d)
		}
		popped.fn()
		if c.finishedAll() {
			break
		}
	}
	if !c.finishedAll() {
		// The queue drained with jobs still open: scheduling starved
		// (e.g. every worker dead and no tick rescheduled).
		for _, jb := range c.jobs {
			if !jb.done {
				jb.finish(fmt.Errorf("sim: job %q starved: event queue drained with %d vertices remaining",
					jb.spec.Name, jb.parser.Remaining()), c.now())
			}
		}
		return fmt.Errorf("sim: event queue drained with unfinished jobs")
	}
	return nil
}

func (c *Cluster) finishedAll() bool {
	for _, jb := range c.jobs {
		if !jb.done {
			return false
		}
	}
	return true
}

// scheduleTick runs the control loop: beat live workers, sweep for
// silent ones, expire overtimes, flag speculation, dispatch — then
// re-arm until every job is done.
func (c *Cluster) scheduleTick() {
	c.after(c.opts.CheckInterval, func() {
		now := c.now()
		for _, w := range c.workers {
			if w.alive && !w.partitioned && !w.declaredDead {
				c.reg.Beat(w.member)
			}
		}
		for _, id := range c.reg.Sweep(now, c.opts.HeartbeatInterval, c.opts.HeartbeatMiss) {
			// A swept member was partitioned past the miss window: revoke
			// its leases. The worker itself keeps computing — its results
			// are refused as stale, exactly like a real partitioned
			// worker whose connection the master tore down.
			if w := c.byMember[id]; w != nil && !w.declaredDead {
				w.declaredDead = true
				c.revoke(id)
			}
		}
		for _, jb := range c.jobs {
			if jb.active && !jb.done {
				c.tickJob(jb, now)
			}
		}
		if c.tuner != nil {
			if d := c.tuner.Tick(c.tuneSample()); d.Changed {
				c.tr.Tune(d.BatchCap, d.Reason)
			}
		}
		c.dispatchAll()
		if !c.finishedAll() {
			c.scheduleTick()
		}
	})
}

// tuneSample assembles the controller's observation for one tick:
// counter totals summed over every activated job (finished jobs stay in
// the sum so the totals remain monotone), and the runtime-profile
// quantiles of the running job with the heaviest straggler tail — if
// any workload shows dispersion, speculation stays armed for it.
func (c *Cluster) tuneSample() tune.Sample {
	var s tune.Sample
	var worst float64
	for _, jb := range c.jobs {
		if !jb.active {
			continue
		}
		s.Dispatches += jb.ctrs.Dispatches.Load()
		s.TaskBytes += jb.ctrs.TaskBytes.Load()
		s.Steals += jb.ctrs.Steals.Load()
		s.SpecWon += jb.ctrs.SpecWon.Load()
		s.SpecWasted += jb.ctrs.SpecWasted.Load()
		if jb.done {
			continue
		}
		n := jb.profile.Samples()
		if n == 0 {
			continue
		}
		p50, _ := jb.profile.Quantile(0.5)
		p95, _ := jb.profile.Quantile(0.95)
		if p50 <= 0 {
			continue
		}
		if d := float64(p95) / float64(p50); s.ProfileSamples == 0 || d > worst {
			worst = d
			s.ProfileP50, s.ProfileP95, s.ProfileSamples = p50, p95, n
		}
	}
	return s
}

// batchCap is the dispatch batch bound in effect right now: the
// controller's recommendation under -auto, the configured constant
// otherwise.
func (c *Cluster) batchCap() int {
	if c.tuner != nil {
		return c.tuner.BatchCap()
	}
	return c.opts.Batch
}

// specParams are the speculation thresholds in effect right now.
func (c *Cluster) specParams() (quantile, multiplier float64) {
	if c.tuner != nil {
		return c.tuner.SpecParams()
	}
	return c.opts.SpecQuantile, c.opts.SpecMultiplier
}

// Tuner exposes the self-tuning controller (nil unless Options.Auto),
// for assertions on converged recommendations.
func (c *Cluster) Tuner() *tune.Controller { return c.tuner }

// Trace renders the full event stream of the run in canonical form:
// the membership stream first, then each job's scheduling stream in
// submission order. Byte-equal outputs mean identical schedules.
func (c *Cluster) Trace() string {
	var b strings.Builder
	b.WriteString("# cluster\n")
	b.WriteString(trace.Format(c.tr.Events()))
	for _, jb := range c.jobs {
		fmt.Fprintf(&b, "# job %s\n", jb.spec.Name)
		b.WriteString(trace.Format(jb.tr.Events()))
	}
	return b.String()
}

// Registry exposes the membership table (metrics assertions).
func (c *Cluster) Registry() *cluster.Registry { return c.reg }

// MemberEvents returns the recorded membership transitions.
func (c *Cluster) MemberEvents() []trace.Event { return c.tr.Events() }

// Elapsed is the virtual makespan of the whole simulation.
func (c *Cluster) Elapsed() time.Duration { return c.now().Sub(c.epoch) }

// MaxDeficit is the largest normalized-service spread (max Served - min
// Served) observed across eligible jobs at any scheduling decision: the
// realized weighted fair-share bound of the run.
func (c *Cluster) MaxDeficit() float64 { return c.maxDeficit }

// sortLeases orders revoked leases by grant sequence: RevokeWorker
// returns them in map order, which a deterministic requeue cannot use.
func sortLeases(ls []sched.Lease) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Seq < ls[j].Seq })
}
