package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled simulator action: a closure pinned to a virtual
// instant. seq is the global scheduling sequence number, which breaks
// same-instant ties by insertion order — the property that makes the
// whole simulation a deterministic function of (scenario, seed).
type event struct {
	at  time.Time
	seq int64
	fn  func()
}

// eventHeap orders events by (virtual time, insertion sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// schedule enqueues fn at the given virtual instant. Scheduling in the
// past (possible when a script step lands before the current event)
// clamps to now: the event still runs, after everything already queued
// for this instant.
func (c *Cluster) schedule(at time.Time, fn func()) {
	if at.Before(c.clock.Now()) {
		at = c.clock.Now()
	}
	c.seq++
	heap.Push(&c.pq, &event{at: at, seq: c.seq, fn: fn})
}

// after enqueues fn d from now.
func (c *Cluster) after(d time.Duration, fn func()) {
	c.schedule(c.clock.Now().Add(d), fn)
}

// nextEvent pops the earliest queued event.
func (c *Cluster) nextEvent() *event {
	return heap.Pop(&c.pq).(*event)
}
