package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
)

// BuildProblem constructs one of the named DP applications at size n
// with deterministic seeded inputs, returning both the EasyHPS problem
// and the plain sequential reference matrix. Scenario files name their
// jobs' kernels through this table; the reference is what the
// bit-identical-results half of the determinism contract is checked
// against.
func BuildProblem(kernel string, n int, seed int64) (core.Problem[int32], [][]int32, error) {
	if n < 1 {
		return core.Problem[int32]{}, nil, fmt.Errorf("sim: kernel %q needs a positive size, got %d", kernel, n)
	}
	switch kernel {
	case "editdist":
		e := dp.NewEditDistance(dp.RandomDNA(n, seed), dp.RandomDNA(n, seed+1))
		return e.Problem(), e.Sequential(), nil
	case "lcs":
		l := dp.NewLCS(dp.RandomDNA(n, seed), dp.RandomDNA(n, seed+1))
		return l.Problem(), l.Sequential(), nil
	case "swgg":
		s := dp.NewSWGG(dp.RandomDNA(n, seed), dp.RandomDNA(n, seed+1))
		return s.Problem(), s.Sequential(), nil
	case "nussinov":
		nu := dp.NewNussinov(dp.RandomRNA(n, seed))
		return nu.Problem(), nu.Sequential(), nil
	}
	return core.Problem[int32]{}, nil, fmt.Errorf("sim: unknown kernel %q (want editdist, lcs, swgg or nussinov)", kernel)
}
