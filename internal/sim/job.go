package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"
)

// JobSpec describes one DAG submitted to the simulated cluster. Zero
// values inherit the cluster Options' defaults, mirroring
// fleet.JobRequest.
type JobSpec struct {
	// Name labels the job in traces and errors.
	Name string
	// Problem is the DP application (kernel, codec, size).
	Problem core.Problem[int32]
	// Proc is the processor-level partition; zero applies the same
	// default rule as the fleet (an ~8x8 block grid).
	Proc dag.Size
	// Weight is the fair-share weight (default 1).
	Weight float64
	// Priority is the priority class (higher dispatches first).
	Priority int
	// Quota caps in-flight leased attempts (0 = unlimited).
	Quota int
	// MaxAttempts and TaskTimeout override the cluster defaults.
	MaxAttempts int
	TaskTimeout time.Duration
	// Deadline bounds the job's total runtime from submission; past it
	// the job fails at the next control tick (fleet.JobRequest.Timeout).
	// Zero means no deadline.
	Deadline time.Duration
	// Cost overrides the cluster's nominal per-vertex service time.
	Cost time.Duration
	// CostPerCell, when set, adds CostPerCell x (block cell count) to
	// each vertex's service time, so virtual compute scales with the
	// partition the way real kernels do: finer blocks buy parallelism
	// with per-task overhead (Cost) instead of conjuring work away.
	// Zero keeps the flat per-vertex model of the older scenarios.
	CostPerCell time.Duration
	// CacheKey scopes the job's entries in the cluster's cross-job
	// result store; empty disables caching for this job.
	CacheKey string
}

// Job is the caller's handle on one submitted job; its accessors are
// valid after Cluster.Run returns.
type Job struct {
	jb *simJob
}

// Err returns the job's terminal error (nil on success).
func (j *Job) Err() error { return j.jb.err }

// Stats returns the job's scheduling counters.
func (j *Job) Stats() cluster.Stats {
	s := j.jb.ctrs.Stats()
	s.Leaked = int64(j.jb.leaked)
	s.Elapsed = j.jb.elapsed
	return s
}

// Events returns the job's virtual-time scheduling trace.
func (j *Job) Events() []trace.Event { return j.jb.tr.Events() }

// Summary aggregates the job's trace.
func (j *Job) Summary() trace.Summary { return j.jb.tr.Summarize() }

// Makespan is the job's virtual submission-to-finish time.
func (j *Job) Makespan() time.Duration { return j.jb.elapsed }

// Served is the job's normalized fair-share service (dispatched/weight).
func (j *Job) Served() float64 { return j.jb.served }

// Result assembles the job's computed DP matrix; nil until the job
// succeeded.
func (j *Job) Result() [][]int32 {
	if j.jb.err != nil || !j.jb.done {
		return nil
	}
	return j.jb.store.Assemble()
}

// simJob is the master-side state of one job: the same component set
// fleet's per-job state is built from.
type simJob struct {
	id   int32
	spec JobSpec
	cost time.Duration

	geom   dag.Geometry
	graph  *dag.Graph
	parser *dag.Parser
	store  *matrix.Store[int32]
	runner *core.TaskRunner[int32]

	rt      *sched.RegisterTable
	ot      *sched.OvertimeQueue
	leases  *sched.LeaseTable
	profile *sched.RuntimeProfile

	ready  []int32
	served float64

	timeouts    map[int32]int
	specPending map[int32]bool
	backupOf    map[int32]int32

	cache     *cas.Store
	cacheSpec string
	resultKey []cas.Key

	ctrs cluster.Counters
	tr   *trace.Recorder

	active  bool
	start   time.Time
	done    bool
	err     error
	elapsed time.Duration
	leaked  int
}

func (c *Cluster) newJob(spec JobSpec) (*simJob, error) {
	p := spec.Problem
	if p.Kernel == nil || p.Codec == nil {
		return nil, fmt.Errorf("sim: job %q needs a kernel and a codec", spec.Name)
	}
	if !p.Size.Valid() {
		return nil, fmt.Errorf("sim: job %q has invalid size %v", spec.Name, p.Size)
	}
	if spec.Weight <= 0 {
		spec.Weight = 1
	}
	if spec.MaxAttempts <= 0 {
		spec.MaxAttempts = c.opts.MaxAttempts
	}
	if spec.TaskTimeout <= 0 {
		spec.TaskTimeout = c.opts.TaskTimeout
	}
	if spec.Cost <= 0 {
		spec.Cost = c.opts.Cost
	}
	proc := spec.Proc
	if !proc.Valid() {
		if c.opts.Auto {
			cm, _ := p.Kernel.(tune.CostModel)
			proc = tune.AdvisePartition(p.Size.Rows, p.Size.Cols, len(c.workers), cm)
		} else {
			proc = dag.Size{Rows: (p.Size.Rows + 7) / 8, Cols: (p.Size.Cols + 7) / 8}
		}
	}
	spec.Proc = proc
	geom := dag.MatrixGeometry(p.Size, proc)
	graph := dag.Build(p.Kernel.Pattern(), geom)
	runner, err := core.NewTaskRunner(p, core.Config{ProcPartition: proc, Threads: 1})
	if err != nil {
		return nil, fmt.Errorf("sim: job %q: %w", spec.Name, err)
	}
	jb := &simJob{
		id:          int32(len(c.jobs) + 1),
		spec:        spec,
		cost:        spec.Cost,
		geom:        geom,
		graph:       graph,
		parser:      dag.NewParser(graph),
		store:       matrix.NewStore[int32](geom),
		runner:      runner,
		rt:          sched.NewRegisterTable(),
		ot:          sched.NewOvertimeQueueClock(c.clock),
		leases:      sched.NewLeaseTable(),
		profile:     sched.NewRuntimeProfile(0),
		timeouts:    make(map[int32]int),
		specPending: make(map[int32]bool),
		backupOf:    make(map[int32]int32),
	}
	if c.opts.Cache != nil && spec.CacheKey != "" {
		jb.cache = c.opts.Cache
		jb.cacheSpec = spec.CacheKey
		jb.resultKey = make([]cas.Key, len(graph.Verts))
	}
	return jb, nil
}

// activate starts the job at its scripted submission instant: the trace
// recorder's origin is pinned here, the initial frontier is probed
// against the cache, and the remainder queues for dispatch.
func (c *Cluster) activate(jb *simJob) {
	jb.active = true
	jb.start = c.now()
	jb.tr = trace.NewWithNow(c.clock.Now)
	ready := jb.parser.InitialReady()
	ready = c.absorbCached(jb, ready)
	if jb.done {
		return
	}
	c.requeueReady(jb, ready)
	c.dispatchAll()
}

// blockKey derives vertex v's cross-job cache key, identically to the
// fleet's: spec digest, cell rectangle, predecessor content keys.
func (jb *simJob) blockKey(v int32) cas.Key {
	deps := jb.graph.Vertex(v).DataPre
	preds := make([]cas.Key, len(deps))
	for i, d := range deps {
		preds[i] = jb.resultKey[d]
	}
	r := jb.geom.Rect(jb.geom.PosOf(v))
	return cas.BlockKey(jb.cacheSpec, r.Row0, r.Col0, r.Rows, r.Cols, preds)
}

// commit is the single write path for a completed block: store insert,
// content-key recording and cache write-through.
func (jb *simJob) commit(v int32, payload []byte, b *matrix.Block[int32]) {
	jb.store.Put(jb.geom.PosOf(v), b)
	if jb.cache != nil {
		jb.resultKey[v] = cas.PayloadKey(payload)
		jb.cache.PutBlock(jb.blockKey(v), payload)
	}
}

// absorbCached probes the result cache for each newly computable vertex
// and commits hits in place, cascading; returns the misses that still
// need dispatch. Mirrors fleet.absorbCached.
func (c *Cluster) absorbCached(jb *simJob, ids []int32) []int32 {
	if jb.cache == nil {
		if jb.parser.Finished() && len(ids) == 0 {
			jb.finish(nil, c.now())
		}
		return ids
	}
	var miss []int32
	work := append([]int32(nil), ids...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		payload, ok := jb.cache.GetBlock(jb.blockKey(v), cas.LayerMaster)
		var b *matrix.Block[int32]
		if ok {
			blocks, err := matrix.DecodeBlocks(jb.spec.Problem.Codec, payload)
			if err == nil && len(blocks) == 1 {
				b = blocks[0]
			}
		}
		if b == nil {
			jb.ctrs.CacheMisses.Add(1)
			miss = append(miss, v)
			continue
		}
		jb.ctrs.CacheHits.Add(1)
		jb.commit(v, payload, b)
		work = append(work, jb.parser.Complete(v)...)
	}
	if jb.parser.Finished() {
		jb.finish(nil, c.now())
	}
	return miss
}

func (jb *simJob) noteAttemptGone(v, attempt int32) {
	if backup, ok := jb.backupOf[v]; ok && backup == attempt {
		delete(jb.backupOf, v)
		jb.ctrs.SpecWasted.Add(1)
	}
}

func (jb *simJob) finish(err error, now time.Time) {
	if jb.done {
		return
	}
	jb.done = true
	jb.err = err
	jb.leaked = jb.rt.Outstanding() + jb.leases.Len()
	jb.elapsed = now.Sub(jb.start)
}

// requeue puts previously dispatched vertices back on the ready stack,
// refunding their fair-share charge (fleet.requeue).
func (c *Cluster) requeue(jb *simJob, ids ...int32) {
	if len(ids) == 0 || jb.done {
		return
	}
	jb.ready = append(jb.ready, ids...)
	jb.served -= float64(len(ids)) / jb.spec.Weight
	jb.tr.Ready(len(jb.ready))
}

// requeueReady queues newly computable (or speculation-flagged)
// vertices without touching the fair-share account (fleet.requeueReady).
func (c *Cluster) requeueReady(jb *simJob, ids []int32) {
	if len(ids) == 0 || jb.done {
		return
	}
	jb.ready = append(jb.ready, ids...)
	jb.tr.Ready(len(jb.ready))
}

// tickJob applies one control tick to one job: overtime expiry with the
// job's MaxAttempts cap, then speculation flagging. Mirrors
// fleet.tickJob, with expiries sorted so same-instant deadlines cannot
// surface in heap-tie order.
func (c *Cluster) tickJob(jb *simJob, now time.Time) {
	if jb.spec.Deadline > 0 && now.Sub(jb.start) >= jb.spec.Deadline {
		jb.finish(fmt.Errorf("sim: job %q exceeded its %v deadline", jb.spec.Name, jb.spec.Deadline), now)
		return
	}
	expired := jb.ot.ExpireBefore(now)
	sort.Slice(expired, func(i, j int) bool {
		a, b := expired[i], expired[j]
		if !a.Deadline.Equal(b.Deadline) {
			return a.Deadline.Before(b.Deadline)
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Attempt < b.Attempt
	})
	var requeue []int32
	for _, e := range expired {
		jb.leases.ReleaseAttempt(e.ID, e.Attempt)
		jb.noteAttemptGone(e.ID, e.Attempt)
		jb.timeouts[e.ID]++
		if jb.timeouts[e.ID] >= jb.spec.MaxAttempts {
			jb.finish(fmt.Errorf("sim: job %q: vertex %d timed out %d times (MaxAttempts); giving up",
				jb.spec.Name, e.ID, jb.timeouts[e.ID]), now)
			return
		}
		if jb.rt.CancelAttempt(e.ID, e.Attempt) == 0 {
			jb.ctrs.Redistributions.Add(1)
			requeue = append(requeue, e.ID)
		}
	}
	c.requeue(jb, requeue...)
	if c.opts.Speculate {
		c.maybeSpeculate(jb)
	}
}

// maybeSpeculate flags straggling attempts for backup dispatch with the
// fleet's profile-threshold machinery and per-job live-worker budget.
func (c *Cluster) maybeSpeculate(jb *simJob) {
	if len(jb.ready) > 0 {
		return
	}
	q, mult := c.specParams()
	threshold, ok := jb.profile.Threshold(q, mult, c.opts.SpecFloor, c.opts.SpecMinSamples)
	if !ok {
		return
	}
	budget := c.reg.Live()
	var flagged []int32
	for _, l := range jb.leases.OlderThan(c.now().Add(-threshold)) {
		if budget == 0 {
			break
		}
		if jb.rt.LiveAttempts(l.Vertex) != 1 {
			continue
		}
		if jb.specPending[l.Vertex] {
			continue
		}
		jb.specPending[l.Vertex] = true
		flagged = append(flagged, l.Vertex)
		budget--
	}
	c.requeueReady(jb, flagged)
}
