package sim

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files under testdata/golden")

// TestScenarioGoldenTraces pins the byte-exact schedule of every
// scenario at its own seed: the formatted trace of one run must equal
// the checked-in testdata/golden/<name>.trace file. "deterministic"
// expectations prove a run agrees with itself; the goldens prove it
// agrees with the schedule that was reviewed — any change to dispatch
// order, batching, speculation or tuning shows up as a golden diff and
// has to be re-recorded deliberately with
//
//	go test ./internal/sim -run TestScenarioGoldenTraces -update
func TestScenarioGoldenTraces(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no .scenario files under testdata")
	}
	for _, path := range paths {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".scenario")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "golden", name+".trace")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(res.Trace), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update to record): %v", err)
			}
			if res.Trace != string(want) {
				t.Fatalf("schedule diverged from the recorded golden (%d vs %d bytes): %s\nre-record with -update only if the change is intended",
					len(res.Trace), len(want), firstTraceDiff(string(want), res.Trace))
			}
		})
	}
}
