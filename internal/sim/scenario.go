package sim

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/dag"
)

// Scenario is one parsed .scenario file: a cluster configuration, job
// definitions, a fault/load script pinned to virtual timestamps, and
// the expectations the regression suite asserts. A scenario is
// re-runnable: every Run builds a fresh cluster, which is what makes
// the determinism expectations checkable at all.
//
// File format (one directive per line, '#' comments):
//
//	cluster workers=4 seed=1 cost=10ms jitter=0.2 [batch=N] [timeout=D]
//	        [check=D] [hb=D] [miss=N] [maxattempts=N] [horizon=D]
//	        [speculate] [spec-q=F] [spec-mult=F] [spec-min=N] [spec-floor=D]
//	        [steal] [cache] [auto]
//	job name=edit kernel=editdist n=64 seed=7 [proc=RxC] [weight=F]
//	        [priority=N] [quota=N] [maxattempts=N] [timeout=D] [cost=D]
//	        [cost-per-cell=D] [deadline=D] [cache-key=S]
//	at <offset> submit <jobname>
//	at <offset> cancel <jobname>
//	at <offset> join <n>
//	at <offset> kill w<idx>
//	at <offset> killn <n>
//	at <offset> partition w<idx> <dur>
//	at <offset> slow w<idx> <factor>
//	expect complete
//	expect results
//	expect deterministic
//	expect seed-sensitive
//	expect makespan <= <dur>
//	expect max-deficit <= <float>
//	expect tune-batch <op> <value>
//	expect tune-adjustments <op> <value>
//	expect job <name> <field> <op> <value>
//
// Job expectation fields: makespan (duration), failed (1 when the job
// ended in error, 0 otherwise), and the integer counters dispatches,
// tasks, redistributions, stale-results, speculated, spec-won,
// spec-wasted, steals, cache-hits, cache-misses, leaked.
// Ops: == != <= >= < >.
//
// A job the script cancels may not be named by any expect directive —
// its schedule ends mid-flight, so nothing about it is a stable claim —
// and "expect complete"/"expect results" exempt cancelled jobs. The
// tune-* fields need the auto flag.
type Scenario struct {
	Name     string
	Opts     Options
	UseCache bool
	Jobs     []ScenarioJob
	Steps    []Step
	Expects  []Expect
}

// ScenarioJob is one job definition: which kernel to build and how to
// submit it.
type ScenarioJob struct {
	Spec   JobSpec
	Kernel string
	N      int
	Seed   int64
}

// Step is one scripted action at a virtual offset.
type Step struct {
	At     time.Duration
	Op     string // submit | join | kill | killn | partition | slow
	Job    string
	Worker int
	N      int
	Dur    time.Duration
	Factor float64
}

// Expect is one parsed expectation.
type Expect struct {
	Job   string // empty for cluster-level
	Field string
	Op    string
	Value float64 // durations in nanoseconds
	Raw   string  // original line, for error messages
	Line  int     // 1-based line in the scenario file
}

// LoadScenario parses the .scenario file at path.
func LoadScenario(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".scenario")
	return ParseScenario(name, f)
}

// ParseScenario parses a scenario definition.
func ParseScenario(name string, r io.Reader) (*Scenario, error) {
	s := &Scenario{Name: name}
	sc := bufio.NewScanner(r)
	lineno := 0
	seenCluster := false
	jobNames := make(map[string]bool)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineno, fmt.Sprintf(format, args...))
		}
		var err error
		switch fields[0] {
		case "cluster":
			if seenCluster {
				return nil, fail("duplicate cluster directive")
			}
			seenCluster = true
			err = s.parseCluster(fields[1:])
		case "job":
			var jb ScenarioJob
			jb, err = parseJob(fields[1:])
			if err == nil {
				if jb.Spec.Name == "" || jb.Kernel == "" || jb.N == 0 {
					err = fmt.Errorf("job needs name=, kernel= and n=")
				} else if jobNames[jb.Spec.Name] {
					err = fmt.Errorf("duplicate job %q", jb.Spec.Name)
				} else {
					jobNames[jb.Spec.Name] = true
					s.Jobs = append(s.Jobs, jb)
				}
			}
		case "at":
			var st Step
			st, err = parseStep(fields[1:])
			if err == nil {
				if (st.Op == "submit" || st.Op == "cancel") && !jobNames[st.Job] {
					err = fmt.Errorf("%s of undefined job %q", st.Op, st.Job)
				} else {
					s.Steps = append(s.Steps, st)
				}
			}
		case "expect":
			var ex Expect
			ex, err = parseExpect(fields[1:])
			if err == nil {
				ex.Raw = line
				ex.Line = lineno
				s.Expects = append(s.Expects, ex)
			}
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fail("%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenCluster {
		return nil, fmt.Errorf("%s: missing cluster directive", name)
	}
	if len(s.Jobs) == 0 {
		return nil, fmt.Errorf("%s: no jobs defined", name)
	}
	submitted := make(map[string]bool)
	cancelled := make(map[string]bool)
	for _, st := range s.Steps {
		switch st.Op {
		case "submit":
			submitted[st.Job] = true
		case "cancel":
			cancelled[st.Job] = true
		}
	}
	for _, jb := range s.Jobs {
		if !submitted[jb.Spec.Name] {
			return nil, fmt.Errorf("%s: job %q defined but never submitted", name, jb.Spec.Name)
		}
	}
	// An expectation about a job the fault script cancels asserts on a
	// schedule that ends mid-flight: nothing about it is stable, so the
	// directive is rejected up front, like a submit of an undefined job.
	for _, ex := range s.Expects {
		if ex.Job != "" && cancelled[ex.Job] {
			return nil, fmt.Errorf("%s:%d: expect references job %q, which the script cancels", name, ex.Line, ex.Job)
		}
	}
	return s, nil
}

func (s *Scenario) parseCluster(kvs []string) error {
	for _, kv := range kvs {
		key, val, hasVal := strings.Cut(kv, "=")
		var err error
		switch key {
		case "workers":
			s.Opts.Workers, err = strconv.Atoi(val)
		case "batch":
			s.Opts.Batch, err = strconv.Atoi(val)
		case "seed":
			s.Opts.Seed, err = strconv.ParseInt(val, 10, 64)
		case "cost":
			s.Opts.Cost, err = time.ParseDuration(val)
		case "jitter":
			s.Opts.Jitter, err = strconv.ParseFloat(val, 64)
		case "timeout":
			s.Opts.TaskTimeout, err = time.ParseDuration(val)
		case "check":
			s.Opts.CheckInterval, err = time.ParseDuration(val)
		case "hb":
			s.Opts.HeartbeatInterval, err = time.ParseDuration(val)
		case "miss":
			s.Opts.HeartbeatMiss, err = strconv.Atoi(val)
		case "maxattempts":
			s.Opts.MaxAttempts, err = strconv.Atoi(val)
		case "horizon":
			s.Opts.Horizon, err = time.ParseDuration(val)
		case "speculate":
			s.Opts.Speculate = true
		case "spec-q":
			s.Opts.SpecQuantile, err = strconv.ParseFloat(val, 64)
		case "spec-mult":
			s.Opts.SpecMultiplier, err = strconv.ParseFloat(val, 64)
		case "spec-min":
			s.Opts.SpecMinSamples, err = strconv.Atoi(val)
		case "spec-floor":
			s.Opts.SpecFloor, err = time.ParseDuration(val)
		case "steal":
			s.Opts.Steal = true
		case "cache":
			s.UseCache = true
		case "auto":
			s.Opts.Auto = true
		default:
			return fmt.Errorf("unknown cluster key %q", key)
		}
		if err != nil {
			return fmt.Errorf("cluster %s: %v", kv, err)
		}
		switch key {
		case "speculate", "steal", "cache", "auto":
			if hasVal {
				return fmt.Errorf("cluster %s: flag takes no value", key)
			}
		}
	}
	return nil
}

func parseJob(kvs []string) (ScenarioJob, error) {
	var jb ScenarioJob
	for _, kv := range kvs {
		key, val, _ := strings.Cut(kv, "=")
		var err error
		switch key {
		case "name":
			jb.Spec.Name = val
		case "kernel":
			jb.Kernel = val
		case "n":
			jb.N, err = strconv.Atoi(val)
		case "seed":
			jb.Seed, err = strconv.ParseInt(val, 10, 64)
		case "proc":
			jb.Spec.Proc, err = parseSize(val)
		case "weight":
			jb.Spec.Weight, err = strconv.ParseFloat(val, 64)
		case "priority":
			jb.Spec.Priority, err = strconv.Atoi(val)
		case "quota":
			jb.Spec.Quota, err = strconv.Atoi(val)
		case "maxattempts":
			jb.Spec.MaxAttempts, err = strconv.Atoi(val)
		case "timeout":
			jb.Spec.TaskTimeout, err = time.ParseDuration(val)
		case "deadline":
			jb.Spec.Deadline, err = time.ParseDuration(val)
		case "cost":
			jb.Spec.Cost, err = time.ParseDuration(val)
		case "cost-per-cell":
			jb.Spec.CostPerCell, err = time.ParseDuration(val)
		case "cache-key":
			jb.Spec.CacheKey = val
		default:
			return jb, fmt.Errorf("unknown job key %q", key)
		}
		if err != nil {
			return jb, fmt.Errorf("job %s: %v", kv, err)
		}
	}
	return jb, nil
}

func parseSize(val string) (dag.Size, error) {
	r, c, ok := strings.Cut(val, "x")
	if !ok {
		return dag.Size{}, fmt.Errorf("want RxC, got %q", val)
	}
	rows, err1 := strconv.Atoi(r)
	cols, err2 := strconv.Atoi(c)
	if err1 != nil || err2 != nil || rows < 1 || cols < 1 {
		return dag.Size{}, fmt.Errorf("want RxC, got %q", val)
	}
	return dag.Size{Rows: rows, Cols: cols}, nil
}

func parseWorker(tok string) (int, error) {
	if !strings.HasPrefix(tok, "w") {
		return 0, fmt.Errorf("want w<idx>, got %q", tok)
	}
	return strconv.Atoi(tok[1:])
}

func parseStep(fields []string) (Step, error) {
	var st Step
	if len(fields) < 2 {
		return st, fmt.Errorf("at needs an offset and an action")
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return st, fmt.Errorf("bad offset %q: %v", fields[0], err)
	}
	st.At = at
	st.Op = fields[1]
	args := fields[2:]
	switch st.Op {
	case "submit", "cancel":
		if len(args) != 1 {
			return st, fmt.Errorf("%s wants a job name", st.Op)
		}
		st.Job = args[0]
	case "join", "killn":
		if len(args) != 1 {
			return st, fmt.Errorf("%s wants a count", st.Op)
		}
		st.N, err = strconv.Atoi(args[0])
		if err == nil && st.N < 1 {
			err = fmt.Errorf("count must be positive")
		}
	case "kill":
		if len(args) != 1 {
			return st, fmt.Errorf("kill wants w<idx>")
		}
		st.Worker, err = parseWorker(args[0])
	case "partition":
		if len(args) != 2 {
			return st, fmt.Errorf("partition wants w<idx> and a duration")
		}
		st.Worker, err = parseWorker(args[0])
		if err == nil {
			st.Dur, err = time.ParseDuration(args[1])
		}
	case "slow":
		if len(args) != 2 {
			return st, fmt.Errorf("slow wants w<idx> and a factor")
		}
		st.Worker, err = parseWorker(args[0])
		if err == nil {
			st.Factor, err = strconv.ParseFloat(args[1], 64)
		}
	default:
		return st, fmt.Errorf("unknown action %q", st.Op)
	}
	return st, err
}

func parseExpect(fields []string) (Expect, error) {
	var ex Expect
	if len(fields) == 0 {
		return ex, fmt.Errorf("empty expect")
	}
	switch fields[0] {
	case "complete", "results", "deterministic", "seed-sensitive":
		if len(fields) != 1 {
			return ex, fmt.Errorf("expect %s takes no arguments", fields[0])
		}
		ex.Field = fields[0]
		return ex, nil
	case "job":
		if len(fields) != 5 {
			return ex, fmt.Errorf("want: expect job <name> <field> <op> <value>")
		}
		ex.Job = fields[1]
		fields = fields[2:]
	default:
		if len(fields) != 3 {
			return ex, fmt.Errorf("want: expect <field> <op> <value>")
		}
	}
	ex.Field = fields[0]
	ex.Op = fields[1]
	switch ex.Op {
	case "==", "!=", "<=", ">=", "<", ">":
	default:
		return ex, fmt.Errorf("unknown op %q", ex.Op)
	}
	if d, err := time.ParseDuration(fields[2]); err == nil && strings.IndexFunc(fields[2], func(r rune) bool {
		return r < '0' || r > '9'
	}) >= 0 {
		ex.Value = float64(d)
	} else {
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return ex, fmt.Errorf("bad value %q", fields[2])
		}
		ex.Value = v
	}
	return ex, nil
}

// Result is one finished scenario run.
type Result struct {
	Cluster *Cluster
	Jobs    map[string]*Job
	Trace   string
	RunErr  error
}

// Run executes the scenario once with the given seed override (0 keeps
// the scenario's own seed) and returns the run's artifacts.
func (s *Scenario) Run(seed int64) (*Result, error) {
	opts := s.Opts
	if seed != 0 {
		opts.Seed = seed
	}
	if s.UseCache {
		// Pin the store's clock so nothing in a run can observe wall time.
		epoch := time.Unix(0, 0).UTC()
		store, err := cas.NewStore(cas.Options{Clock: func() time.Time { return epoch }})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", s.Name, err)
		}
		opts.Cache = store
	}
	c := New(opts)
	byName := make(map[string]ScenarioJob, len(s.Jobs))
	for _, jb := range s.Jobs {
		byName[jb.Spec.Name] = jb
	}
	res := &Result{Cluster: c, Jobs: make(map[string]*Job)}
	for _, st := range s.Steps {
		switch st.Op {
		case "submit":
			def := byName[st.Job]
			p, _, err := BuildProblem(def.Kernel, def.N, def.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s: job %q: %v", s.Name, st.Job, err)
			}
			spec := def.Spec
			spec.Problem = p
			j, err := c.Submit(st.At, spec)
			if err != nil {
				return nil, fmt.Errorf("%s: job %q: %v", s.Name, st.Job, err)
			}
			res.Jobs[st.Job] = j
		case "cancel":
			c.CancelAt(st.At, st.Job)
		case "join":
			c.JoinAt(st.At, st.N)
		case "kill":
			c.KillAt(st.At, st.Worker)
		case "killn":
			c.KillRandomAt(st.At, st.N)
		case "partition":
			c.PartitionAt(st.At, st.Worker, st.Dur)
		case "slow":
			c.SlowAt(st.At, st.Worker, st.Factor)
		}
	}
	res.RunErr = c.Run()
	res.Trace = c.Trace()
	return res, nil
}

// Check runs the scenario and verifies every expectation, re-running as
// required by the determinism and seed-sensitivity contracts. It
// returns every violated expectation joined into one error, nil when
// the scenario holds.
func (s *Scenario) Check() error {
	res, err := s.Run(0)
	if err != nil {
		return err
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf("%s: %s", s.Name, fmt.Sprintf(format, args...)))
	}
	cancelled := make(map[string]bool)
	for _, st := range s.Steps {
		if st.Op == "cancel" {
			cancelled[st.Job] = true
		}
	}
	for _, ex := range s.Expects {
		switch ex.Field {
		case "complete":
			if res.RunErr != nil {
				fail("run failed: %v", res.RunErr)
			}
			for name, j := range res.Jobs {
				if !cancelled[name] && j.Err() != nil {
					fail("job %q failed: %v", name, j.Err())
				}
			}
		case "results":
			for _, def := range s.Jobs {
				if cancelled[def.Spec.Name] {
					continue
				}
				j := res.Jobs[def.Spec.Name]
				got := j.Result()
				if got == nil {
					fail("job %q has no result (%v)", def.Spec.Name, j.Err())
					continue
				}
				_, ref, err := BuildProblem(def.Kernel, def.N, def.Seed)
				if err != nil {
					fail("job %q reference: %v", def.Spec.Name, err)
					continue
				}
				if !equalMatrix(got, ref) {
					fail("job %q result differs from the sequential reference", def.Spec.Name)
				}
			}
		case "deterministic":
			again, err := s.Run(0)
			if err != nil {
				fail("rerun: %v", err)
				continue
			}
			if again.Trace != res.Trace {
				fail("same seed produced different traces (%d vs %d bytes): %s",
					len(res.Trace), len(again.Trace), firstTraceDiff(res.Trace, again.Trace))
			}
		case "seed-sensitive":
			alt, err := s.Run(s.Opts.Seed + 1)
			if err != nil {
				fail("reseeded run: %v", err)
				continue
			}
			if alt.Trace == res.Trace {
				fail("changing the seed did not change the schedule")
			}
			for _, def := range s.Jobs {
				ja, jb := res.Jobs[def.Spec.Name], alt.Jobs[def.Spec.Name]
				if ja.Err() == nil && jb.Err() == nil && !equalMatrix(ja.Result(), jb.Result()) {
					fail("job %q: different seeds produced different DP results", def.Spec.Name)
				}
			}
		case "makespan":
			if ex.Job != "" {
				j := res.Jobs[ex.Job]
				if j == nil {
					fail("%s: unknown job", ex.Raw)
				} else if !compare(float64(j.Makespan()), ex.Op, ex.Value) {
					fail("%s: got %v", ex.Raw, j.Makespan())
				}
			} else if !compare(float64(res.Cluster.Elapsed()), ex.Op, ex.Value) {
				fail("%s: got %v", ex.Raw, res.Cluster.Elapsed())
			}
		case "max-deficit":
			if !compare(res.Cluster.MaxDeficit(), ex.Op, ex.Value) {
				fail("%s: got %v", ex.Raw, res.Cluster.MaxDeficit())
			}
		case "tune-batch", "tune-adjustments":
			tn := res.Cluster.Tuner()
			if tn == nil {
				fail("%s: needs the auto cluster flag", ex.Raw)
				continue
			}
			v := float64(tn.BatchCap())
			if ex.Field == "tune-adjustments" {
				v = float64(tn.Adjustments())
			}
			if !compare(v, ex.Op, ex.Value) {
				fail("%s: got %v", ex.Raw, v)
			}
		default:
			j := res.Jobs[ex.Job]
			if ex.Job == "" || j == nil {
				fail("%s: unknown expectation target", ex.Raw)
				continue
			}
			if ex.Field == "failed" {
				var v float64
				if j.Err() != nil {
					v = 1
				}
				if !compare(v, ex.Op, ex.Value) {
					fail("%s: got %v (err: %v)", ex.Raw, v, j.Err())
				}
				continue
			}
			v, ok := statField(j.Stats(), ex.Field)
			if !ok {
				fail("%s: unknown field %q", ex.Raw, ex.Field)
				continue
			}
			if !compare(v, ex.Op, ex.Value) {
				fail("%s: got %v", ex.Raw, v)
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return nil
}

func statField(st cluster.Stats, field string) (float64, bool) {
	switch field {
	case "dispatches":
		return float64(st.Dispatches), true
	case "tasks":
		return float64(st.Tasks), true
	case "redistributions":
		return float64(st.Redistributions), true
	case "stale-results":
		return float64(st.StaleResults), true
	case "speculated":
		return float64(st.Speculated), true
	case "spec-won":
		return float64(st.SpecWon), true
	case "spec-wasted":
		return float64(st.SpecWasted), true
	case "steals":
		return float64(st.Steals), true
	case "cache-hits":
		return float64(st.CacheHits), true
	case "cache-misses":
		return float64(st.CacheMisses), true
	case "leaked":
		return float64(st.Leaked), true
	case "batch-messages":
		return float64(st.BatchMessages), true
	}
	return 0, false
}

func compare(got float64, op string, want float64) bool {
	switch op {
	case "==":
		return got == want
	case "!=":
		return got != want
	case "<=":
		return got <= want
	case ">=":
		return got >= want
	case "<":
		return got < want
	case ">":
		return got > want
	}
	return false
}

func equalMatrix(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// firstTraceDiff locates the first diverging line of two formatted
// traces, for actionable determinism failures.
func firstTraceDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("one trace is a prefix of the other (%d vs %d lines)", len(la), len(lb))
}
