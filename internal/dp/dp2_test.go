package dp

import (
	"math"
	"testing"
	"testing/quick"
)

// --- Gotoh affine alignment ---

func TestGotohIdenticalSequences(t *testing.T) {
	a := []byte("ACGTACGT")
	g := NewGotoh(a, a)
	if got := g.GlobalScore(g.Sequential()); got != int32(len(a))*g.Match {
		t.Fatalf("self score = %d, want %d", got, int32(len(a))*g.Match)
	}
}

func TestGotohAffineBeatsLinearForLongGaps(t *testing.T) {
	// One long gap should cost Open + k*Extend, not k*(Open+Extend).
	a := []byte("AAAATTTT")
	b := []byte("AAAACCCCCTTTT") // 5 inserted bases
	g := NewGotoh(a, b)
	want := int32(8)*g.Match - g.Open - 5*g.Extend
	if got := g.GlobalScore(g.Sequential()); got != want {
		t.Fatalf("score = %d, want %d (one affine gap of 5)", got, want)
	}
}

func TestGotohCellBest(t *testing.T) {
	c := GotohCell{M: 3, E: 7, F: -1}
	if c.Best() != 7 {
		t.Fatalf("Best = %d", c.Best())
	}
}

func TestGotohSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomDNA(12, seed)
		b := RandomDNA(15, seed+1)
		ab := NewGotoh(a, b)
		ba := NewGotoh(b, a)
		return ab.GlobalScore(ab.Sequential()) == ba.GlobalScore(ba.Sequential())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Optimal BST ---

func TestOptimalBSTKnownValue(t *testing.T) {
	// CLRS-style: frequencies 34, 8, 50 -> optimal cost 142
	// (tree rooted at key 2: 50 + 2*34 + ... ). Verify against brute
	// force instead of a hand-derived constant.
	b := NewOptimalBSTFromFreqs([]int64{34, 8, 50})
	want := bruteBST(b, 0, 2)
	if got := b.Cost(b.Sequential()); got != want {
		t.Fatalf("cost = %d, brute force = %d", got, want)
	}
}

func TestOptimalBSTBruteForceAgreement(t *testing.T) {
	b := NewOptimalBST(9, 40, 17)
	want := bruteBST(b, 0, 8)
	if got := b.Cost(b.Sequential()); got != want {
		t.Fatalf("cost = %d, brute force = %d", got, want)
	}
}

// bruteBST computes optimal BST cost by exhaustive recursion.
func bruteBST(b *OptimalBST, i, j int) int64 {
	if i > j {
		return 0
	}
	best := int64(1) << 62
	for r := i; r <= j; r++ {
		c := bruteBST(b, i, r-1) + bruteBST(b, r+1, j)
		if c < best {
			best = c
		}
	}
	return best + b.weight(i, j)
}

func TestOptimalBSTSingleKey(t *testing.T) {
	b := NewOptimalBSTFromFreqs([]int64{7})
	if got := b.Cost(b.Sequential()); got != 7 {
		t.Fatalf("single-key cost = %d, want 7", got)
	}
}

// --- CYK ---

func TestCYKBalancedParens(t *testing.T) {
	g := ParenGrammar()
	cases := map[string]bool{
		"()":       true,
		"(())":     true,
		"()()":     true,
		"(()())()": true,
		"(":        false,
		")(":       false,
		"(()":      false,
		"())":      false,
	}
	for in, want := range cases {
		c := NewCYK(g, []byte(in))
		if got := c.Accepts(c.Sequential()); got != want {
			t.Errorf("CYK(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestCYKMatchesRecursiveParser(t *testing.T) {
	// Random balanced/unbalanced strings against a direct checker.
	f := func(seed int64, length uint8) bool {
		n := int(length%16) + 2
		s := RandomSeq("()", n, seed)
		c := NewCYK(ParenGrammar(), s)
		return c.Accepts(c.Sequential()) == balanced(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func balanced(s []byte) bool {
	depth := 0
	for _, c := range s {
		if c == '(' {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			return false
		}
	}
	return depth == 0 && len(s) > 0
}

func TestRandomGrammarDeterministic(t *testing.T) {
	g1 := RandomGrammar(8, 20, "ab", 3)
	g2 := RandomGrammar(8, 20, "ab", 3)
	if len(g1.Rules) != len(g2.Rules) || g1.Rules[0] != g2.Rules[0] {
		t.Fatal("random grammar not reproducible")
	}
	in := RandomSeq("ab", 12, 4)
	c1, c2 := NewCYK(g1, in), NewCYK(g2, in)
	m1, m2 := c1.Sequential(), c2.Sequential()
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m2[i][j] {
				t.Fatal("CYK not deterministic")
			}
		}
	}
}

// --- Viterbi ---

func TestViterbiPathIsValidAndOptimalOnTinyHMM(t *testing.T) {
	v := NewViterbi(3, 4, 7, 5)
	m := v.Sequential()
	path := v.BestPath(m)
	if len(path) != len(v.Obs) {
		t.Fatalf("path length %d, want %d", len(path), len(v.Obs))
	}
	// Path log-probability must equal the matrix maximum at the last row.
	logp := v.LogInit[path[0]] + v.LogEmit[path[0]][v.Obs[0]]
	for t2 := 1; t2 < len(path); t2++ {
		logp += v.LogTrans[path[t2-1]][path[t2]] + v.LogEmit[path[t2]][v.Obs[t2]]
	}
	best := math.Inf(-1)
	for s := 0; s < v.States(); s++ {
		if m[len(v.Obs)-1][s] > best {
			best = m[len(v.Obs)-1][s]
		}
	}
	if math.Abs(logp-best) > 1e-9 {
		t.Fatalf("path logp %v != matrix best %v", logp, best)
	}
	// And it must match exhaustive search on this tiny instance.
	if bf := bruteViterbi(v); math.Abs(bf-best) > 1e-9 {
		t.Fatalf("matrix best %v != brute force %v", best, bf)
	}
}

func bruteViterbi(v *Viterbi) float64 {
	best := math.Inf(-1)
	states, steps := v.States(), len(v.Obs)
	var rec func(t, s int, logp float64)
	rec = func(t, s int, logp float64) {
		logp += v.LogEmit[s][v.Obs[t]]
		if t == steps-1 {
			if logp > best {
				best = logp
			}
			return
		}
		for ns := 0; ns < states; ns++ {
			rec(t+1, ns, logp+v.LogTrans[s][ns])
		}
	}
	for s := 0; s < states; s++ {
		rec(0, s, v.LogInit[s])
	}
	return best
}

func TestViterbiDistributionsNormalized(t *testing.T) {
	v := NewViterbi(4, 5, 3, 9)
	for _, dist := range append([][]float64{v.LogInit}, v.LogTrans...) {
		sum := 0.0
		for _, lp := range dist {
			sum += math.Exp(lp)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution sums to %v", sum)
		}
	}
}

// --- Banded edit distance ---

func TestBandedEditExactWithinBand(t *testing.T) {
	a := RandomDNA(60, 21)
	b := MutateSeq(a, DNAAlphabet, 0.05, 22) // few substitutions: small distance
	full := NewEditDistance(a, b)
	want := full.Distance(full.Sequential())
	banded := NewBandedEdit(a, b, 10)
	if got := banded.Distance(banded.Sequential()); got != want {
		t.Fatalf("banded distance %d != full distance %d (within band)", got, want)
	}
}

func TestBandedEditNarrowBandOverestimates(t *testing.T) {
	a := []byte("AAAAAAAAAA")
	b := []byte("TTTTTTTTTTTTTTTTTTTT") // distance 20 > width
	banded := NewBandedEdit(a, b, 2)
	full := NewEditDistance(a, b)
	bd := banded.Distance(banded.Sequential())
	fd := full.Distance(full.Sequential())
	if bd < fd {
		t.Fatalf("banded %d below true distance %d", bd, fd)
	}
}

func TestBandedEditZeroWidthIsDiagonal(t *testing.T) {
	a := []byte("ACGT")
	b := []byte("AGGT")
	banded := NewBandedEdit(a, b, 0)
	// Width 0: only substitutions along the diagonal -> Hamming distance.
	if got := banded.Distance(banded.Sequential()); got != 1 {
		t.Fatalf("diagonal-only distance = %d, want 1", got)
	}
}
