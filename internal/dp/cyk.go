package dp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// CNFRule is one binary production A -> B C of a grammar in Chomsky
// normal form.
type CNFRule struct {
	A, B, C uint8
}

// CNFGrammar is a context-free grammar in Chomsky normal form with at most
// 64 nonterminals, so a set of nonterminals fits one uint64 cell.
// CYK parsing with such a grammar is the paper's "context-free grammar
// recognition" motivating application.
type CNFGrammar struct {
	// Symbols is the number of nonterminals (<= 64); nonterminal 0 is
	// the start symbol.
	Symbols int
	// Terminals maps each input letter to the mask of nonterminals A
	// with a unit production A -> letter.
	Terminals map[byte]uint64
	// Rules are the binary productions.
	Rules []CNFRule
}

// ParenGrammar returns the classic balanced-parentheses grammar in CNF:
//
//	S  -> L S' | L R | S S
//	S' -> S R
//	L -> '('   R -> ')'
//
// with nonterminals S=0, S'=1, L=2, R=3.
func ParenGrammar() *CNFGrammar {
	return &CNFGrammar{
		Symbols: 4,
		Terminals: map[byte]uint64{
			'(': 1 << 2,
			')': 1 << 3,
		},
		Rules: []CNFRule{
			{A: 0, B: 2, C: 1}, // S  -> L S'
			{A: 0, B: 2, C: 3}, // S  -> L R
			{A: 0, B: 0, C: 0}, // S  -> S S
			{A: 1, B: 0, C: 3}, // S' -> S R
		},
	}
}

// RandomGrammar builds a reproducible random CNF grammar over the given
// alphabet, used to stress the parser beyond hand-written cases.
func RandomGrammar(symbols, rules int, alphabet string, seed int64) *CNFGrammar {
	if symbols > 64 {
		panic("dp: CNF grammar limited to 64 nonterminals")
	}
	rng := rand.New(rand.NewSource(seed))
	g := &CNFGrammar{Symbols: symbols, Terminals: make(map[byte]uint64)}
	for _, ch := range []byte(alphabet) {
		// Each letter derivable from a couple of random nonterminals.
		g.Terminals[ch] = 1<<uint(rng.Intn(symbols)) | 1<<uint(rng.Intn(symbols))
	}
	for k := 0; k < rules; k++ {
		g.Rules = append(g.Rules, CNFRule{
			A: uint8(rng.Intn(symbols)),
			B: uint8(rng.Intn(symbols)),
			C: uint8(rng.Intn(symbols)),
		})
	}
	return g
}

// CYK parses an input string with a CNF grammar: cell (i, j) holds the
// bitmask of nonterminals deriving input[i..j]:
//
//	N[i,i] = { A : A -> input[i] }
//	N[i,j] = { A : A -> B C, B in N[i,k], C in N[k+1,j], i <= k < j }
//
// The dependency shape (row segment + column segment) is exactly the
// triangular pattern of Nussinov.
type CYK struct {
	Grammar *CNFGrammar
	Input   []byte
}

// NewCYK builds the parser.
func NewCYK(g *CNFGrammar, input []byte) *CYK { return &CYK{Grammar: g, Input: input} }

// Size returns the DP matrix extent.
func (c *CYK) Size() dag.Size { return dag.Square(len(c.Input)) }

// Pattern implements core.Kernel.
func (c *CYK) Pattern() dag.Pattern { return dag.Triangular{} }

// Boundary implements core.Kernel: nothing derives an empty span.
func (c *CYK) Boundary(i, j int) uint64 { return 0 }

// Cell implements core.Kernel.
func (c *CYK) Cell(v *matrix.View[uint64], i, j int) uint64 {
	if i == j {
		return c.Grammar.Terminals[c.Input[i]]
	}
	var set uint64
	for k := i; k < j; k++ {
		left := v.Get(i, k)
		if left == 0 {
			continue
		}
		right := v.Get(k+1, j)
		if right == 0 {
			continue
		}
		for _, r := range c.Grammar.Rules {
			if left&(1<<r.B) != 0 && right&(1<<r.C) != 0 {
				set |= 1 << r.A
			}
		}
	}
	return set
}

// Problem wraps the parser for the runtime.
func (c *CYK) Problem() core.Problem[uint64] {
	return core.Problem[uint64]{
		Name:   fmt.Sprintf("cyk-%d", len(c.Input)),
		Size:   c.Size(),
		Kernel: c,
		Codec:  matrix.BinaryCodec[uint64]{},
	}
}

// Sequential is the reference implementation.
func (c *CYK) Sequential() [][]uint64 {
	n := len(c.Input)
	m := make([][]uint64, n)
	backing := make([]uint64, n*n)
	for i := range m {
		m[i], backing = backing[:n], backing[n:]
	}
	for i := 0; i < n; i++ {
		m[i][i] = c.Grammar.Terminals[c.Input[i]]
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			var set uint64
			for k := i; k < j; k++ {
				left, right := m[i][k], m[k+1][j]
				if left == 0 || right == 0 {
					continue
				}
				for _, r := range c.Grammar.Rules {
					if left&(1<<r.B) != 0 && right&(1<<r.C) != 0 {
						set |= 1 << r.A
					}
				}
			}
			m[i][j] = set
		}
	}
	return m
}

// Accepts reports whether the whole input derives from the start symbol.
func (c *CYK) Accepts(m [][]uint64) bool {
	if len(c.Input) == 0 {
		return false
	}
	return m[0][len(c.Input)-1]&1 != 0
}
