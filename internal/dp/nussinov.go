package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// Nussinov is the classic RNA secondary-structure prediction algorithm:
// F[i,j] is the maximum number of complementary base pairs in the
// subsequence S[i..j]:
//
//	F[i,j] = max(F[i+1,j],
//	             F[i,j-1],
//	             F[i+1,j-1] + pair(i,j),
//	             max_{i<k<j} F[i,k] + F[k+1,j])
//
// with F[i,j] = 0 whenever j-i < 1. Only the upper triangle i <= j is
// computed — the Triangular (2D/1D) DAG pattern of Fig. 5 in the paper.
type Nussinov struct {
	S []byte
	// MinLoop is the minimal hairpin loop length: bases i and j may pair
	// only when j-i > MinLoop. The biological default is 3; tests use
	// smaller values to densify small instances.
	MinLoop int
	// WobblePairs additionally allows G-U pairs.
	WobblePairs bool
}

// NewNussinov builds the folder with the biological defaults.
func NewNussinov(s []byte) *Nussinov {
	return &Nussinov{S: s, MinLoop: 3, WobblePairs: true}
}

// Size returns the DP matrix extent.
func (nu *Nussinov) Size() dag.Size { return dag.Square(len(nu.S)) }

// CanPair reports whether bases i and j may form a pair.
func (nu *Nussinov) CanPair(i, j int) bool {
	if j-i <= nu.MinLoop {
		return false
	}
	a, b := nu.S[i], nu.S[j]
	if a > b {
		a, b = b, a
	}
	switch {
	case a == 'A' && (b == 'U' || b == 'T'):
		return true
	case a == 'C' && b == 'G':
		return true
	case a == 'G' && b == 'U':
		return nu.WobblePairs
	}
	return false
}

func (nu *Nussinov) pairBonus(i, j int) int32 {
	if nu.CanPair(i, j) {
		return 1
	}
	return 0
}

// Pattern implements core.Kernel.
func (nu *Nussinov) Pattern() dag.Pattern { return dag.Triangular{} }

// CellCost implements core.CostModel: cell (i, j) scans its span, so its
// cost grows as j-i. Normalized to mean ~1 over the triangle (mean span is
// n/3).
func (nu *Nussinov) CellCost(i, j int) float64 {
	return float64(3*(j-i)+1) / float64(len(nu.S)+1)
}

// Boundary implements core.Kernel: cells below the diagonal (and outside
// the matrix) fold nothing.
func (nu *Nussinov) Boundary(i, j int) int32 { return 0 }

// Cell implements core.Kernel.
func (nu *Nussinov) Cell(v *matrix.View[int32], i, j int) int32 {
	if i == j {
		return 0
	}
	best := v.Get(i+1, j)
	if c := v.Get(i, j-1); c > best {
		best = c
	}
	if nu.CanPair(i, j) {
		if c := v.Get(i+1, j-1) + 1; c > best {
			best = c
		}
	}
	for k := i + 1; k < j; k++ {
		if c := v.Get(i, k) + v.Get(k+1, j); c > best {
			best = c
		}
	}
	return best
}

// Problem wraps the folder for the runtime.
func (nu *Nussinov) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("nussinov-%d", len(nu.S)),
		Size:   nu.Size(),
		Kernel: nu,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential computes the full upper-triangular matrix by increasing span
// — the reference implementation.
func (nu *Nussinov) Sequential() [][]int32 {
	n := len(nu.S)
	f := make([][]int32, n)
	backing := make([]int32, n*n)
	for i := range f {
		f[i], backing = backing[:n], backing[n:]
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := f[i+1][j]
			if c := f[i][j-1]; c > best {
				best = c
			}
			if nu.CanPair(i, j) {
				c := int32(1)
				if i+1 <= j-1 {
					c += f[i+1][j-1]
				}
				if c > best {
					best = c
				}
			}
			for k := i + 1; k < j; k++ {
				if c := f[i][k] + f[k+1][j]; c > best {
					best = c
				}
			}
			f[i][j] = best
		}
	}
	return f
}

// Structure recovers a dot-bracket secondary structure from a completed
// matrix.
func (nu *Nussinov) Structure(f [][]int32) string {
	n := len(nu.S)
	out := make([]byte, n)
	for i := range out {
		out[i] = '.'
	}
	type span struct{ i, j int }
	stack := []span{{0, n - 1}}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 || i >= n || j >= n || i >= j {
			return 0
		}
		return f[i][j]
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, j := s.i, s.j
		if i >= j || get(i, j) == 0 {
			continue
		}
		switch {
		case get(i, j) == get(i+1, j):
			stack = append(stack, span{i + 1, j})
		case get(i, j) == get(i, j-1):
			stack = append(stack, span{i, j - 1})
		case nu.CanPair(i, j) && get(i, j) == get(i+1, j-1)+1:
			out[i], out[j] = '(', ')'
			stack = append(stack, span{i + 1, j - 1})
		default:
			for k := i + 1; k < j; k++ {
				if get(i, j) == get(i, k)+get(k+1, j) {
					stack = append(stack, span{i, k}, span{k + 1, j})
					break
				}
			}
		}
	}
	return string(out)
}

// PairCount counts the pairs in a dot-bracket string and verifies it is
// balanced; it returns -1 for an unbalanced structure.
func PairCount(structure string) int {
	depth, pairs := 0, 0
	for _, c := range structure {
		switch c {
		case '(':
			depth++
			pairs++
		case ')':
			depth--
			if depth < 0 {
				return -1
			}
		}
	}
	if depth != 0 {
		return -1
	}
	return pairs
}
