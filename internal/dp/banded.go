package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

const bandedInf = int32(1) << 29

// BandedEdit is edit distance restricted to the diagonal band
// |i - j| <= Width: the classic O(n*w) approximation that is exact
// whenever the true distance is at most Width. It exercises the Banded
// DAG pattern, whose block grid has holes away from the diagonal.
type BandedEdit struct {
	A, B  []byte
	Width int
}

// NewBandedEdit builds the kernel.
func NewBandedEdit(a, b []byte, width int) *BandedEdit {
	return &BandedEdit{A: a, B: b, Width: width}
}

// Size returns the DP matrix extent.
func (e *BandedEdit) Size() dag.Size { return dag.Size{Rows: len(e.A), Cols: len(e.B)} }

// Pattern implements core.Kernel.
func (e *BandedEdit) Pattern() dag.Pattern { return dag.Banded{Width: e.Width} }

// Boundary implements core.Kernel: the usual edit-distance boundary for
// virtual row/column -1, and "unreachable" for cells outside the band.
func (e *BandedEdit) Boundary(i, j int) int32 {
	switch {
	case i < 0 && j < 0:
		return 0
	case i < 0:
		return int32(j) + 1
	case j < 0:
		return int32(i) + 1
	default: // inside the matrix but outside the band
		return bandedInf
	}
}

// Cell implements core.Kernel.
func (e *BandedEdit) Cell(v *matrix.View[int32], i, j int) int32 {
	sub := v.Get(i-1, j-1)
	if e.A[i] != e.B[j] {
		sub++
	}
	if del := v.Get(i-1, j) + 1; del < sub {
		sub = del
	}
	if ins := v.Get(i, j-1) + 1; ins < sub {
		sub = ins
	}
	if sub > bandedInf {
		sub = bandedInf
	}
	return sub
}

// Problem wraps the kernel for the runtime.
func (e *BandedEdit) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("bandededit-%dx%d-w%d", len(e.A), len(e.B), e.Width),
		Size:   e.Size(),
		Kernel: e,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (e *BandedEdit) Sequential() [][]int32 {
	la, lb := len(e.A), len(e.B)
	d := make([][]int32, la)
	for i := range d {
		d[i] = make([]int32, lb)
	}
	inBand := func(i, j int) bool {
		diff := i - j
		if diff < 0 {
			diff = -diff
		}
		return diff <= e.Width
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return e.Boundary(i, j)
		}
		if !inBand(i, j) {
			return bandedInf
		}
		return d[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			if !inBand(i, j) {
				continue
			}
			sub := get(i-1, j-1)
			if e.A[i] != e.B[j] {
				sub++
			}
			if del := get(i-1, j) + 1; del < sub {
				sub = del
			}
			if ins := get(i, j-1) + 1; ins < sub {
				sub = ins
			}
			if sub > bandedInf {
				sub = bandedInf
			}
			d[i][j] = sub
		}
	}
	return d
}

// Distance returns the banded edit distance from a completed matrix; it
// equals the true edit distance whenever that is at most Width, and
// saturates at Unreachable when the final cell lies outside the band
// (the sequences' length difference alone exceeds the width).
func (e *BandedEdit) Distance(d [][]int32) int32 {
	if len(e.A) == 0 {
		return int32(len(e.B))
	}
	if len(e.B) == 0 {
		return int32(len(e.A))
	}
	diff := len(e.A) - len(e.B)
	if diff < 0 {
		diff = -diff
	}
	if diff > e.Width {
		return Unreachable
	}
	return d[len(e.A)-1][len(e.B)-1]
}

// Unreachable is the distance reported when the band cannot connect the
// two sequence ends.
const Unreachable = bandedInf
