package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// SWGG is the Smith-Waterman General Gap algorithm (Waterman-Smith-Beyer):
// local sequence alignment with an arbitrary affine-in-length gap penalty
// w(k) = GapOpen + GapExt*k. Matrix cell (i, j) holds the best score of a
// local alignment ending at A[i], B[j]:
//
//	H[i,j] = max(0,
//	             H[i-1,j-1] + s(A[i], B[j]),
//	             max_{1<=k<=j} H[i,j-k] - w(k),
//	             max_{1<=k<=i} H[i-k,j] - w(k))
//
// Each cell reads its whole row to the left and whole column above — the
// RowColumn (2D/1D) DAG pattern of Fig. 6 in the paper.
type SWGG struct {
	A, B     []byte
	Match    int32 // score for A[i] == B[j] (positive)
	Mismatch int32 // score for A[i] != B[j] (negative)
	GapOpen  int32 // positive penalty
	GapExt   int32 // positive penalty per gap column
}

// NewSWGG builds the aligner with the default scoring used throughout the
// benchmarks: +2 match, -1 mismatch, gap w(k) = 2 + k.
func NewSWGG(a, b []byte) *SWGG {
	return &SWGG{A: a, B: b, Match: 2, Mismatch: -1, GapOpen: 2, GapExt: 1}
}

// Size returns the DP matrix extent.
func (s *SWGG) Size() dag.Size { return dag.Size{Rows: len(s.A), Cols: len(s.B)} }

func (s *SWGG) score(i, j int) int32 {
	if s.A[i] == s.B[j] {
		return s.Match
	}
	return s.Mismatch
}

func (s *SWGG) gap(k int) int32 { return s.GapOpen + s.GapExt*int32(k) }

// Pattern implements core.Kernel.
func (s *SWGG) Pattern() dag.Pattern { return dag.RowColumn{} }

// CellCost implements core.CostModel: cell (i, j) scans its row and column
// prefixes, so its cost grows as i+j. Normalized to mean ~1 over the
// matrix so total emulated work is invariant.
func (s *SWGG) CellCost(i, j int) float64 {
	return float64(i+j+2) / float64(len(s.A)/2+len(s.B)/2+2)
}

// Boundary implements core.Kernel: virtual cells left of column 0 or above
// row 0 score zero (local alignment restarts freely).
func (s *SWGG) Boundary(i, j int) int32 { return 0 }

// Cell implements core.Kernel.
func (s *SWGG) Cell(v *matrix.View[int32], i, j int) int32 {
	best := int32(0)
	if d := v.Get(i-1, j-1) + s.score(i, j); d > best {
		best = d
	}
	for k := 1; k <= j; k++ {
		if c := v.Get(i, j-k) - s.gap(k); c > best {
			best = c
		}
	}
	for k := 1; k <= i; k++ {
		if c := v.Get(i-k, j) - s.gap(k); c > best {
			best = c
		}
	}
	return best
}

// Problem wraps the aligner for the runtime.
func (s *SWGG) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("swgg-%dx%d", len(s.A), len(s.B)),
		Size:   s.Size(),
		Kernel: s,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential computes the full matrix with a plain O(n^3) loop nest — the
// reference implementation for correctness checks and speedup baselines.
func (s *SWGG) Sequential() [][]int32 {
	la, lb := len(s.A), len(s.B)
	h := make([][]int32, la)
	backing := make([]int32, la*lb)
	for i := range h {
		h[i], backing = backing[:lb], backing[lb:]
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return h[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			best := int32(0)
			if d := get(i-1, j-1) + s.score(i, j); d > best {
				best = d
			}
			for k := 1; k <= j; k++ {
				if c := h[i][j-k] - s.gap(k); c > best {
					best = c
				}
			}
			for k := 1; k <= i; k++ {
				if c := h[i-k][j] - s.gap(k); c > best {
					best = c
				}
			}
			h[i][j] = best
		}
	}
	return h
}

// BestLocal returns the maximum score in the matrix and its position.
func BestLocal(h [][]int32) (score int32, bi, bj int) {
	for i := range h {
		for j := range h[i] {
			if h[i][j] > score {
				score, bi, bj = h[i][j], i, j
			}
		}
	}
	return score, bi, bj
}

// Alignment is the result of a traceback: two gapped rows of equal length.
type Alignment struct {
	RowA, RowB []byte
	Score      int32
	StartA     int // index in A of the first aligned base
	StartB     int
}

// Traceback recovers one optimal local alignment from a completed SWGG
// matrix by re-deriving the winning move at each cell.
func (s *SWGG) Traceback(h [][]int32) Alignment {
	score, i, j := BestLocal(h)
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return h[i][j]
	}
	var ra, rb []byte
	for i >= 0 && j >= 0 && h[i][j] > 0 {
		cur := h[i][j]
		if cur == get(i-1, j-1)+s.score(i, j) {
			ra = append(ra, s.A[i])
			rb = append(rb, s.B[j])
			i, j = i-1, j-1
			continue
		}
		moved := false
		for k := 1; k <= j && !moved; k++ {
			if cur == get(i, j-k)-s.gap(k) {
				for t := 0; t < k; t++ {
					ra = append(ra, '-')
					rb = append(rb, s.B[j-t])
				}
				j -= k
				moved = true
			}
		}
		for k := 1; k <= i && !moved; k++ {
			if cur == get(i-k, j)-s.gap(k) {
				for t := 0; t < k; t++ {
					ra = append(ra, s.A[i-t])
					rb = append(rb, '-')
				}
				i -= k
				moved = true
			}
		}
		if !moved {
			break // cell value is 0-anchored: alignment starts here
		}
	}
	reverse(ra)
	reverse(rb)
	return Alignment{RowA: ra, RowB: rb, Score: score, StartA: i + 1, StartB: j + 1}
}

func reverse(b []byte) {
	for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
		b[l], b[r] = b[r], b[l]
	}
}
