// Package dp implements the dynamic-programming applications used in the
// paper's evaluation (Smith-Waterman with general gap penalties, Nussinov)
// plus further classic DP algorithms covering the other DAG pattern
// classes (edit distance, LCS, matrix-chain multiplication, 0/1 knapsack,
// and the synthetic 2D/2D recurrence of Algorithm 4.3). Every algorithm
// comes in two forms: an EasyHPS kernel and a plain sequential reference
// used for correctness checks and speedup baselines.
package dp

import "math/rand"

// Alphabets for workload generation.
const (
	DNAAlphabet     = "ACGT"
	RNAAlphabet     = "ACGU"
	ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"
)

// RandomSeq generates a reproducible random sequence of length n over the
// alphabet.
func RandomSeq(alphabet string, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return s
}

// RandomDNA generates a reproducible random DNA sequence.
func RandomDNA(n int, seed int64) []byte { return RandomSeq(DNAAlphabet, n, seed) }

// RandomRNA generates a reproducible random RNA sequence.
func RandomRNA(n int, seed int64) []byte { return RandomSeq(RNAAlphabet, n, seed) }

// MutateSeq returns a copy of s where each position is substituted with a
// random alphabet letter with probability rate — a cheap way to build
// pairs of related sequences so that alignments have realistic structure.
func MutateSeq(s []byte, alphabet string, rate float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), s...)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
	}
	return out
}
