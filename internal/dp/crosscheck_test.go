package dp

import (
	"testing"
	"testing/quick"
)

// Cross-validation between independent implementations: with match score
// 0, mismatch -1, gap open 0 and gap extend 1, Gotoh's global alignment
// score is exactly the negated edit distance (both count unit-cost
// substitutions and per-column gaps).
func TestGotohEqualsNegatedEditDistance(t *testing.T) {
	f := func(seed int64, la, lb uint8) bool {
		a := RandomDNA(int(la%24)+1, seed)
		b := RandomDNA(int(lb%24)+1, seed+1)
		g := &Gotoh{A: a, B: b, Match: 0, Mismatch: -1, Open: 0, Extend: 1}
		e := NewEditDistance(a, b)
		gs := g.GlobalScore(g.Sequential())
		ed := e.Distance(e.Sequential())
		return gs == -ed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// LCS and edit distance with substitutions forbidden relate by
// |a| + |b| - 2*LCS = insert/delete-only distance; our edit distance
// allows substitution, so it is a lower bound: D <= |a|+|b|-2L and
// D >= max(|a|,|b|) - L.
func TestLCSEditDistanceRelation(t *testing.T) {
	f := func(seed int64, la, lb uint8) bool {
		a := RandomDNA(int(la%20)+1, seed)
		b := RandomDNA(int(lb%20)+1, seed+1)
		l := NewLCS(a, b)
		e := NewEditDistance(a, b)
		lv := int(l.Sequential()[len(a)-1][len(b)-1])
		dv := int(e.Distance(e.Sequential()))
		if dv > len(a)+len(b)-2*lv {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		return dv >= max-lv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// SWGG with gaps priced out of existence degenerates to the best ungapped
// local alignment, which a direct scan can verify.
func TestSWGGNoGapLimit(t *testing.T) {
	a := RandomDNA(30, 71)
	b := RandomDNA(30, 72)
	s := NewSWGG(a, b)
	s.GapOpen, s.GapExt = 10000, 10000
	got, _, _ := BestLocal(s.Sequential())

	// Brute force: the best ungapped segment ending at any (i, j) is the
	// maximum-sum suffix of its diagonal run.
	var want int32
	for i := range a {
		for j := range b {
			if best := bestSuffix(a, b, i, j, s.Match, s.Mismatch); best > want {
				want = best
			}
		}
	}
	if got != want {
		t.Fatalf("no-gap SWGG = %d, brute force diagonal = %d", got, want)
	}
}

// bestSuffix returns the maximum-sum suffix of the diagonal run ending at
// (i, j).
func bestSuffix(a, b []byte, i, j int, match, mismatch int32) int32 {
	var sum, best int32
	for k := 0; i-k >= 0 && j-k >= 0; k++ {
		if a[i-k] == b[j-k] {
			sum += match
		} else {
			sum += mismatch
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// Nussinov is monotone: extending the window can never lose pairs.
func TestNussinovMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		s := RandomRNA(int(n%40)+5, seed)
		nu := NewNussinov(s)
		m := nu.Sequential()
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				if m[i][j] < m[i][j-1] || (i+1 <= j && m[i][j] < m[i+1][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Matrix chain with equal dimensions: every parenthesization costs the
// same, so the DP must return (n-1) * d^3.
func TestMatrixChainUniformDims(t *testing.T) {
	const n, d = 7, 5
	dims := make([]int64, n+1)
	for i := range dims {
		dims[i] = d
	}
	m := &MatrixChain{Dims: dims}
	if got, want := m.Sequential()[0][n-1], int64(n-1)*d*d*d; got != want {
		t.Fatalf("uniform chain cost = %d, want %d", got, want)
	}
}

// Optimal BST cost is bounded below by the total weight (every key is
// visited at least once) and above by total weight times the key count.
func TestOptimalBSTBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		keys := int(n%12) + 1
		b := NewOptimalBST(keys, 30, seed)
		cost := b.Cost(b.Sequential())
		var total int64
		for _, p := range b.P {
			total += p
		}
		return cost >= total && cost <= total*int64(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNeedlemanWunschSelfAlignment(t *testing.T) {
	a := []byte("ACGTACGT")
	nw := NewNeedlemanWunsch(a, a)
	if got := nw.GlobalScore(nw.Sequential()); got != int32(len(a))*nw.Match {
		t.Fatalf("self score = %d", got)
	}
	al := nw.Traceback(nw.Sequential())
	if string(al.RowA) != string(a) || string(al.RowB) != string(a) {
		t.Fatalf("self traceback introduced gaps: %s / %s", al.RowA, al.RowB)
	}
}

// With match 0, mismatch -1, gap 1, NW's score is the negated edit
// distance — a third independent implementation agreeing with the other
// two.
func TestNeedlemanWunschEqualsNegatedEditDistance(t *testing.T) {
	f := func(seed int64, la, lb uint8) bool {
		a := RandomDNA(int(la%24)+1, seed)
		b := RandomDNA(int(lb%24)+1, seed+1)
		nw := &NeedlemanWunsch{A: a, B: b, Match: 0, Mismatch: -1, Gap: 1}
		e := NewEditDistance(a, b)
		return nw.GlobalScore(nw.Sequential()) == -e.Distance(e.Sequential())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The traceback's alignment must rescore to the matrix optimum.
func TestNeedlemanWunschTracebackRescores(t *testing.T) {
	a := RandomDNA(40, 73)
	b := MutateSeq(a, DNAAlphabet, 0.2, 74)
	nw := NewNeedlemanWunsch(a, b)
	d := nw.Sequential()
	al := nw.Traceback(d)
	if len(al.RowA) != len(al.RowB) {
		t.Fatal("ragged alignment")
	}
	var score int32
	for k := range al.RowA {
		ca, cb := al.RowA[k], al.RowB[k]
		switch {
		case ca == '-' || cb == '-':
			score -= nw.Gap
		case ca == cb:
			score += nw.Match
		default:
			score += nw.Mismatch
		}
	}
	if score != al.Score || score != nw.GlobalScore(d) {
		t.Fatalf("traceback rescores to %d, matrix says %d", score, nw.GlobalScore(d))
	}
	// Stripping gaps must recover the inputs.
	strip := func(row []byte) string {
		out := make([]byte, 0, len(row))
		for _, c := range row {
			if c != '-' {
				out = append(out, c)
			}
		}
		return string(out)
	}
	if strip(al.RowA) != string(a) || strip(al.RowB) != string(b) {
		t.Fatal("alignment rows do not spell the input sequences")
	}
}
