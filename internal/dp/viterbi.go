package dp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// Viterbi decodes the most likely hidden-state path of an HMM in log
// space. Matrix row t is time step t, column s a hidden state:
//
//	V[t,s] = logEmit[s][obs[t]] + max_{s'} (V[t-1,s'] + logTrans[s'][s])
//
// Every cell reads the ENTIRE previous row, so the kernel uses the PrevRow
// pattern (one-row blocks, rows pipelined, columns parallel). Cells are
// float64, exercising the runtime's float path.
type Viterbi struct {
	// LogInit[s] is the log initial probability of state s.
	LogInit []float64
	// LogTrans[s'][s] is the log transition probability s' -> s.
	LogTrans [][]float64
	// LogEmit[s][o] is the log emission probability of symbol o in
	// state s.
	LogEmit [][]float64
	// Obs is the observation sequence (symbol indices).
	Obs []int
}

// NewViterbi builds a reproducible random HMM with the given numbers of
// states and emission symbols and a random observation sequence of length
// steps.
func NewViterbi(states, symbols, steps int, seed int64) *Viterbi {
	rng := rand.New(rand.NewSource(seed))
	v := &Viterbi{
		LogInit:  randLogDist(rng, states),
		LogTrans: make([][]float64, states),
		LogEmit:  make([][]float64, states),
		Obs:      make([]int, steps),
	}
	for s := 0; s < states; s++ {
		v.LogTrans[s] = randLogDist(rng, states)
		v.LogEmit[s] = randLogDist(rng, symbols)
	}
	for t := range v.Obs {
		v.Obs[t] = rng.Intn(symbols)
	}
	return v
}

// randLogDist returns the log of a random probability distribution.
func randLogDist(rng *rand.Rand, n int) []float64 {
	raw := make([]float64, n)
	var sum float64
	for i := range raw {
		raw[i] = rng.Float64() + 1e-3
		sum += raw[i]
	}
	for i := range raw {
		raw[i] = math.Log(raw[i] / sum)
	}
	return raw
}

// States returns the number of hidden states.
func (v *Viterbi) States() int { return len(v.LogInit) }

// Size returns the DP matrix extent: steps x states.
func (v *Viterbi) Size() dag.Size { return dag.Size{Rows: len(v.Obs), Cols: v.States()} }

// Pattern implements core.Kernel.
func (v *Viterbi) Pattern() dag.Pattern { return dag.PrevRow{} }

// Boundary implements core.Kernel; only the virtual row above t=0 is ever
// read, and the kernel folds the initial distribution there itself, so
// reads outside resolve to -Inf-like.
func (v *Viterbi) Boundary(i, j int) float64 { return math.Inf(-1) }

// Cell implements core.Kernel.
func (v *Viterbi) Cell(m *matrix.View[float64], t, s int) float64 {
	if t == 0 {
		return v.LogInit[s] + v.LogEmit[s][v.Obs[0]]
	}
	best := math.Inf(-1)
	for sp := 0; sp < v.States(); sp++ {
		if c := m.Get(t-1, sp) + v.LogTrans[sp][s]; c > best {
			best = c
		}
	}
	return best + v.LogEmit[s][v.Obs[t]]
}

// Problem wraps the kernel for the runtime.
func (v *Viterbi) Problem() core.Problem[float64] {
	return core.Problem[float64]{
		Name:   fmt.Sprintf("viterbi-%dx%d", len(v.Obs), v.States()),
		Size:   v.Size(),
		Kernel: v,
		Codec:  matrix.BinaryCodec[float64]{},
	}
}

// Sequential is the reference implementation.
func (v *Viterbi) Sequential() [][]float64 {
	steps, states := len(v.Obs), v.States()
	m := make([][]float64, steps)
	for t := range m {
		m[t] = make([]float64, states)
	}
	for s := 0; s < states; s++ {
		m[0][s] = v.LogInit[s] + v.LogEmit[s][v.Obs[0]]
	}
	for t := 1; t < steps; t++ {
		for s := 0; s < states; s++ {
			best := math.Inf(-1)
			for sp := 0; sp < states; sp++ {
				if c := m[t-1][sp] + v.LogTrans[sp][s]; c > best {
					best = c
				}
			}
			m[t][s] = best + v.LogEmit[s][v.Obs[t]]
		}
	}
	return m
}

// BestPath recovers the most likely state sequence from a completed
// matrix by backtracking.
func (v *Viterbi) BestPath(m [][]float64) []int {
	steps, states := len(v.Obs), v.States()
	if steps == 0 {
		return nil
	}
	path := make([]int, steps)
	best := math.Inf(-1)
	for s := 0; s < states; s++ {
		if m[steps-1][s] > best {
			best = m[steps-1][s]
			path[steps-1] = s
		}
	}
	for t := steps - 1; t > 0; t-- {
		s := path[t]
		target := m[t][s] - v.LogEmit[s][v.Obs[t]]
		for sp := 0; sp < states; sp++ {
			if almostEq(m[t-1][sp]+v.LogTrans[sp][s], target) {
				path[t-1] = sp
				break
			}
		}
	}
	return path
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
