package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// GotohCell is the three-matrix state of affine-gap alignment: M is the
// best score ending in a match/mismatch, E ending in a gap in A (read
// horizontally), F ending in a gap in B. Struct cells ride the gob codec,
// demonstrating non-numeric cell types end to end.
type GotohCell struct {
	M, E, F int32
}

// Best returns the cell's overall best score.
func (c GotohCell) Best() int32 {
	best := c.M
	if c.E > best {
		best = c.E
	}
	if c.F > best {
		best = c.F
	}
	return best
}

const gotohNegInf = int32(-1) << 28

// Gotoh is global alignment with affine gap penalties (open + extend),
// computed with Gotoh's three-matrix recurrence:
//
//	M[i,j] = s(A[i],B[j]) + max(M[i-1,j-1], E[i-1,j-1], F[i-1,j-1])
//	E[i,j] = max(M[i,j-1] - Open, E[i,j-1] - Extend)
//	F[i,j] = max(M[i-1,j] - Open, F[i-1,j] - Extend)
//
// Every cell reads only its west, north and north-west neighbours, so the
// pattern is the plain wavefront even though the cell state is composite —
// the contrast with SWGG's general gaps (which force the 2D/1D row-column
// pattern) is exactly the trade-off discussed in the paper's related work.
type Gotoh struct {
	A, B     []byte
	Match    int32
	Mismatch int32
	Open     int32
	Extend   int32
}

// NewGotoh builds the aligner with +2/-1 substitution scores and a 3+1k
// affine gap.
func NewGotoh(a, b []byte) *Gotoh {
	return &Gotoh{A: a, B: b, Match: 2, Mismatch: -1, Open: 3, Extend: 1}
}

// Size returns the DP matrix extent.
func (g *Gotoh) Size() dag.Size { return dag.Size{Rows: len(g.A), Cols: len(g.B)} }

func (g *Gotoh) score(i, j int) int32 {
	if g.A[i] == g.B[j] {
		return g.Match
	}
	return g.Mismatch
}

// Pattern implements core.Kernel.
func (g *Gotoh) Pattern() dag.Pattern { return dag.Wavefront{} }

// Boundary implements core.Kernel: global alignment boundary conditions.
// Virtual row -1 / column -1 carry the cost of an all-gap prefix.
func (g *Gotoh) Boundary(i, j int) GotohCell {
	switch {
	case i < 0 && j < 0:
		return GotohCell{M: 0, E: gotohNegInf, F: gotohNegInf}
	case i < 0:
		// Row -1, column j: B[0..j] aligned against nothing is one gap
		// run of j+1 columns.
		return GotohCell{M: gotohNegInf, E: -g.Open - g.Extend*int32(j+1), F: gotohNegInf}
	default: // j < 0
		return GotohCell{M: gotohNegInf, E: gotohNegInf, F: -g.Open - g.Extend*int32(i+1)}
	}
}

// Cell implements core.Kernel.
func (g *Gotoh) Cell(v *matrix.View[GotohCell], i, j int) GotohCell {
	nw := v.Get(i-1, j-1)
	w := v.Get(i, j-1)
	n := v.Get(i-1, j)
	var c GotohCell
	c.M = g.score(i, j) + max3(nw.M, nw.E, nw.F)
	c.E = maxi32(w.M-g.Open-g.Extend, w.E-g.Extend)
	c.F = maxi32(n.M-g.Open-g.Extend, n.F-g.Extend)
	return c
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func max3(a, b, c int32) int32 { return maxi32(a, maxi32(b, c)) }

// Problem wraps the aligner for the runtime (gob codec: struct cells).
func (g *Gotoh) Problem() core.Problem[GotohCell] {
	return core.Problem[GotohCell]{
		Name:   fmt.Sprintf("gotoh-%dx%d", len(g.A), len(g.B)),
		Size:   g.Size(),
		Kernel: g,
		Codec:  matrix.GobCodec[GotohCell]{},
	}
}

// Sequential is the reference implementation.
func (g *Gotoh) Sequential() [][]GotohCell {
	la, lb := len(g.A), len(g.B)
	m := make([][]GotohCell, la)
	for i := range m {
		m[i] = make([]GotohCell, lb)
	}
	get := func(i, j int) GotohCell {
		if i < 0 || j < 0 {
			return g.Boundary(i, j)
		}
		return m[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			nw, w, n := get(i-1, j-1), get(i, j-1), get(i-1, j)
			m[i][j] = GotohCell{
				M: g.score(i, j) + max3(nw.M, nw.E, nw.F),
				E: maxi32(w.M-g.Open-g.Extend, w.E-g.Extend),
				F: maxi32(n.M-g.Open-g.Extend, n.F-g.Extend),
			}
		}
	}
	return m
}

// GlobalScore returns the optimal global alignment score from a completed
// matrix.
func (g *Gotoh) GlobalScore(m [][]GotohCell) int32 {
	return m[len(g.A)-1][len(g.B)-1].Best()
}
