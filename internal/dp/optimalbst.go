package dp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// OptimalBST is optimal binary search tree construction (Knuth), one of
// the motivating applications in the paper's introduction. E[i][j] is the
// minimal expected search cost of a BST over keys i..j:
//
//	E[i,i] = P[i]
//	E[i,j] = W(i,j) + min_{i<=r<=j} (E[i,r-1] + E[r+1,j])
//
// where W(i,j) = sum of P[i..j] and E over an empty range is 0. The same
// triangular 2D/1D pattern as Nussinov and matrix chain.
type OptimalBST struct {
	// P are the (integer-scaled) access frequencies of the keys.
	P []int64
	// prefix[i] = sum of P[0..i-1] for O(1) range weights.
	prefix []int64
}

// NewOptimalBST builds an instance with reproducible random frequencies in
// [1, maxFreq].
func NewOptimalBST(keys int, maxFreq int64, seed int64) *OptimalBST {
	rng := rand.New(rand.NewSource(seed))
	p := make([]int64, keys)
	for i := range p {
		p[i] = 1 + rng.Int63n(maxFreq)
	}
	return NewOptimalBSTFromFreqs(p)
}

// NewOptimalBSTFromFreqs builds an instance from explicit frequencies.
func NewOptimalBSTFromFreqs(p []int64) *OptimalBST {
	b := &OptimalBST{P: p, prefix: make([]int64, len(p)+1)}
	for i, f := range p {
		b.prefix[i+1] = b.prefix[i] + f
	}
	return b
}

// weight returns sum of P[i..j].
func (b *OptimalBST) weight(i, j int) int64 { return b.prefix[j+1] - b.prefix[i] }

// Size returns the DP matrix extent.
func (b *OptimalBST) Size() dag.Size { return dag.Square(len(b.P)) }

// Pattern implements core.Kernel.
func (b *OptimalBST) Pattern() dag.Pattern { return dag.Triangular{} }

// Boundary implements core.Kernel: empty key ranges cost nothing.
func (b *OptimalBST) Boundary(i, j int) int64 { return 0 }

// Cell implements core.Kernel.
func (b *OptimalBST) Cell(v *matrix.View[int64], i, j int) int64 {
	if i == j {
		return b.P[i]
	}
	best := int64(1) << 62
	for r := i; r <= j; r++ {
		c := v.Get(i, r-1) + v.Get(r+1, j)
		if c < best {
			best = c
		}
	}
	return best + b.weight(i, j)
}

// Problem wraps the kernel for the runtime.
func (b *OptimalBST) Problem() core.Problem[int64] {
	return core.Problem[int64]{
		Name:   fmt.Sprintf("optimalbst-%d", len(b.P)),
		Size:   b.Size(),
		Kernel: b,
		Codec:  matrix.BinaryCodec[int64]{},
	}
}

// Sequential is the reference implementation.
func (b *OptimalBST) Sequential() [][]int64 {
	n := len(b.P)
	e := make([][]int64, n)
	backing := make([]int64, n*n)
	for i := range e {
		e[i], backing = backing[:n], backing[n:]
	}
	get := func(i, j int) int64 {
		if i > j || i < 0 || j >= n {
			return 0
		}
		return e[i][j]
	}
	for span := 0; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			if span == 0 {
				e[i][j] = b.P[i]
				continue
			}
			best := int64(1) << 62
			for r := i; r <= j; r++ {
				c := get(i, r-1) + get(r+1, j)
				if c < best {
					best = c
				}
			}
			e[i][j] = best + b.weight(i, j)
		}
	}
	return e
}

// Cost returns the optimal expected search cost from a completed matrix.
func (b *OptimalBST) Cost(e [][]int64) int64 {
	if len(b.P) == 0 {
		return 0
	}
	return e[0][len(b.P)-1]
}
