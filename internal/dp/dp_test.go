package dp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRandomSeqReproducible(t *testing.T) {
	a := RandomDNA(100, 42)
	b := RandomDNA(100, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different sequences")
	}
	c := RandomDNA(100, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
	for _, ch := range a {
		if !bytes.ContainsRune([]byte(DNAAlphabet), rune(ch)) {
			t.Fatalf("non-DNA letter %c", ch)
		}
	}
}

func TestMutateSeq(t *testing.T) {
	a := RandomDNA(500, 1)
	b := MutateSeq(a, DNAAlphabet, 0.1, 2)
	if len(b) != len(a) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 || diff > 150 {
		t.Fatalf("mutation count %d implausible for rate 0.1", diff)
	}
	if same := MutateSeq(a, DNAAlphabet, 0, 3); !bytes.Equal(a, same) {
		t.Fatal("rate 0 changed the sequence")
	}
}

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"a", "b", 1},
	}
	for _, c := range cases {
		e := NewEditDistance([]byte(c.a), []byte(c.b))
		if got := e.Distance(e.Sequential()); got != c.want {
			t.Errorf("edit(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int32
	}{
		{"ABCBDAB", "BDCABA", 4},
		{"AGGTAB", "GXTXAYB", 4},
		{"ABC", "DEF", 0},
		{"SAME", "SAME", 4},
	}
	for _, c := range cases {
		l := NewLCS([]byte(c.a), []byte(c.b))
		seq := l.Sequential()
		if got := seq[len(c.a)-1][len(c.b)-1]; got != c.want {
			t.Errorf("lcs(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: edit distance is a metric-ish quantity: symmetric, zero iff
// equal, and bounded by max(len).
func TestEditDistanceProperties(t *testing.T) {
	f := func(sa, sb []byte, seed int64) bool {
		a := RandomDNA(len(sa)%20+1, seed)
		b := RandomDNA(len(sb)%20+1, seed+1)
		eab := NewEditDistance(a, b)
		eba := NewEditDistance(b, a)
		dab := eab.Distance(eab.Sequential())
		dba := eba.Distance(eba.Sequential())
		if dab != dba {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		if int(dab) > max {
			return false
		}
		same := NewEditDistance(a, a)
		return same.Distance(same.Sequential()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSWGGSelfAlignment(t *testing.T) {
	a := []byte("ACGTACGTTT")
	s := NewSWGG(a, a)
	h := s.Sequential()
	score, bi, bj := BestLocal(h)
	if want := int32(len(a)) * s.Match; score != want {
		t.Fatalf("self-alignment score = %d, want %d", score, want)
	}
	if bi != len(a)-1 || bj != len(a)-1 {
		t.Fatalf("best cell = (%d,%d), want bottom-right", bi, bj)
	}
}

func TestSWGGNoNegativeScores(t *testing.T) {
	s := NewSWGG(RandomDNA(40, 5), RandomDNA(40, 6))
	for _, row := range s.Sequential() {
		for _, c := range row {
			if c < 0 {
				t.Fatal("local alignment matrix has negative cell")
			}
		}
	}
}

func TestSWGGKnownSmall(t *testing.T) {
	// A and B share the substring "GGG": score 3 matches = 6.
	s := NewSWGG([]byte("TTGGG"), []byte("GGGAA"))
	score, _, _ := BestLocal(s.Sequential())
	if score != 6 {
		t.Fatalf("score = %d, want 6", score)
	}
}

func TestSWGGGapPenaltyUsed(t *testing.T) {
	// ACGT vs AC-GT-like: a gapped alignment must beat mismatches when
	// gaps are cheap and lose when they are expensive.
	a, b := []byte("AAAATTTT"), []byte("AAAACCCTTTT")
	cheap := NewSWGG(a, b)
	cheap.GapOpen, cheap.GapExt = 1, 0
	exp := NewSWGG(a, b)
	exp.GapOpen, exp.GapExt = 50, 50
	cheapScore, _, _ := BestLocal(cheap.Sequential())
	expScore, _, _ := BestLocal(exp.Sequential())
	if cheapScore <= expScore {
		t.Fatalf("cheap-gap score %d should exceed expensive-gap score %d", cheapScore, expScore)
	}
	// With cheap gaps the whole 8 matches + 3-gap is reachable: 8*2-1.
	if want := int32(15); cheapScore != want {
		t.Fatalf("cheap score = %d, want %d", cheapScore, want)
	}
}

func TestSWGGTracebackReconstructsScore(t *testing.T) {
	a := RandomDNA(60, 11)
	b := MutateSeq(a, DNAAlphabet, 0.15, 12)
	s := NewSWGG(a, b)
	h := s.Sequential()
	al := s.Traceback(h)
	if len(al.RowA) != len(al.RowB) {
		t.Fatal("alignment rows differ in length")
	}
	if len(al.RowA) == 0 {
		t.Fatal("empty alignment")
	}
	// Recompute the score of the alignment; general-gap scoring charges
	// w(k) per maximal gap run of length k.
	var score int32
	run := 0
	flushGap := func() {
		if run > 0 {
			score -= s.gap(run)
			run = 0
		}
	}
	for k := range al.RowA {
		ca, cb := al.RowA[k], al.RowB[k]
		if ca == '-' || cb == '-' {
			run++
			continue
		}
		flushGap()
		if ca == cb {
			score += s.Match
		} else {
			score += s.Mismatch
		}
	}
	flushGap()
	if score != al.Score {
		t.Fatalf("traceback alignment scores %d, matrix says %d\nA: %s\nB: %s", score, al.Score, al.RowA, al.RowB)
	}
}

func TestNussinovPerfectHairpin(t *testing.T) {
	// GGGG AAAA CCCC folds into 4 pairs (G-C), MinLoop 3 satisfied by the
	// A4 loop.
	nu := NewNussinov([]byte("GGGGAAAACCCC"))
	nu.WobblePairs = false
	f := nu.Sequential()
	if got := f[0][len(nu.S)-1]; got != 4 {
		t.Fatalf("hairpin pairs = %d, want 4", got)
	}
}

func TestNussinovNoPairsPossible(t *testing.T) {
	nu := NewNussinov([]byte("AAAAAAAA"))
	f := nu.Sequential()
	if got := f[0][len(nu.S)-1]; got != 0 {
		t.Fatalf("poly-A pairs = %d, want 0", got)
	}
}

func TestNussinovMinLoopEnforced(t *testing.T) {
	nu := NewNussinov([]byte("GC"))
	f := nu.Sequential()
	if f[0][1] != 0 {
		t.Fatal("adjacent bases paired despite MinLoop")
	}
	nu2 := &Nussinov{S: []byte("GAAAC"), MinLoop: 3}
	f2 := nu2.Sequential()
	if f2[0][4] != 1 {
		t.Fatalf("G...C with loop 3 should pair, got %d", f2[0][4])
	}
}

func TestNussinovStructureConsistent(t *testing.T) {
	s := RandomRNA(80, 21)
	nu := NewNussinov(s)
	f := nu.Sequential()
	structure := nu.Structure(f)
	if len(structure) != len(s) {
		t.Fatal("structure length mismatch")
	}
	pairs := PairCount(structure)
	if pairs < 0 {
		t.Fatalf("unbalanced structure %q", structure)
	}
	if pairs != int(f[0][len(s)-1]) {
		t.Fatalf("structure has %d pairs, matrix says %d", pairs, f[0][len(s)-1])
	}
}

func TestPairCount(t *testing.T) {
	if PairCount("((..))") != 2 {
		t.Fatal("PairCount wrong")
	}
	if PairCount("((.)") != -1 || PairCount("())") != -1 {
		t.Fatal("unbalanced structure accepted")
	}
}

func TestCanPair(t *testing.T) {
	nu := &Nussinov{S: []byte("AUGCGU"), MinLoop: 0, WobblePairs: true}
	if !nu.CanPair(0, 1) { // A-U
		t.Error("A-U should pair")
	}
	if !nu.CanPair(2, 3) { // G-C
		t.Error("G-C should pair")
	}
	if !nu.CanPair(4, 5) { // G-U wobble
		t.Error("G-U wobble should pair")
	}
	nu.WobblePairs = false
	if nu.CanPair(4, 5) {
		t.Error("G-U paired with wobble disabled")
	}
	if nu.CanPair(0, 2) { // A-G
		t.Error("A-G should not pair")
	}
}

func TestMatrixChainKnownValue(t *testing.T) {
	// CLRS example: dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 -> 15125.
	m := &MatrixChain{Dims: []int64{30, 35, 15, 5, 10, 20, 25}}
	d := m.Sequential()
	if got := d[0][5]; got != 15125 {
		t.Fatalf("matrix chain cost = %d, want 15125", got)
	}
}

func TestMatrixChainSingleMatrix(t *testing.T) {
	m := &MatrixChain{Dims: []int64{4, 7}}
	if got := m.Sequential()[0][0]; got != 0 {
		t.Fatalf("single matrix cost = %d, want 0", got)
	}
}

func TestKnapsackKnownValue(t *testing.T) {
	k := &Knapsack{
		Weights:  []int{1, 3, 4, 5},
		Values:   []int32{1, 4, 5, 7},
		Capacity: 7,
	}
	if got := k.Best(k.Sequential()); got != 9 {
		t.Fatalf("knapsack best = %d, want 9", got)
	}
}

func TestKnapsackBruteForceAgreement(t *testing.T) {
	k := NewKnapsack(12, 30, 99)
	want := bruteKnapsack(k)
	if got := k.Best(k.Sequential()); got != want {
		t.Fatalf("knapsack DP = %d, brute force = %d", got, want)
	}
}

func bruteKnapsack(k *Knapsack) int32 {
	n := len(k.Weights)
	var best int32
	for mask := 0; mask < 1<<n; mask++ {
		w, v := 0, int32(0)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				w += k.Weights[i]
				v += k.Values[i]
			}
		}
		if w <= k.Capacity && v > best {
			best = v
		}
	}
	return best
}

func TestDominance43Monotone(t *testing.T) {
	d := NewDominance43(8, 7)
	m := d.Sequential()
	// Every cell is min over dominated cells + nonneg weight: cells are
	// nonnegative and the matrix is finite.
	for i := range m {
		for j := range m[i] {
			if m[i][j] < 0 || m[i][j] >= 1<<30 {
				t.Fatalf("cell (%d,%d) = %d out of range", i, j, m[i][j])
			}
		}
	}
}
