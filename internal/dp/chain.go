package dp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// MatrixChain is optimal matrix-chain parenthesization, the canonical
// 2D/1D triangular recurrence (Algorithm 4.2 family):
//
//	M[i,i] = 0
//	M[i,j] = min_{i<=k<j} M[i,k] + M[k+1,j] + Dims[i]*Dims[k+1]*Dims[j+1]
//
// where matrix t has dimensions Dims[t] x Dims[t+1]. It shares the
// Triangular DAG pattern with Nussinov.
type MatrixChain struct {
	// Dims has length n+1 for n matrices.
	Dims []int64
}

// NewMatrixChain builds the kernel for random reproducible dimensions in
// [minDim, maxDim].
func NewMatrixChain(n int, minDim, maxDim int64, seed int64) *MatrixChain {
	rng := rand.New(rand.NewSource(seed))
	dims := make([]int64, n+1)
	for i := range dims {
		dims[i] = minDim + rng.Int63n(maxDim-minDim+1)
	}
	return &MatrixChain{Dims: dims}
}

// Size returns the DP matrix extent (n x n upper triangle).
func (m *MatrixChain) Size() dag.Size { return dag.Square(len(m.Dims) - 1) }

// Pattern implements core.Kernel.
func (m *MatrixChain) Pattern() dag.Pattern { return dag.Triangular{} }

// Boundary implements core.Kernel; the recurrence never reads outside the
// triangle, so the value is irrelevant.
func (m *MatrixChain) Boundary(i, j int) int64 { return 0 }

// Cell implements core.Kernel.
func (m *MatrixChain) Cell(v *matrix.View[int64], i, j int) int64 {
	if i == j {
		return 0
	}
	best := int64(1) << 62
	for k := i; k < j; k++ {
		c := v.Get(i, k) + v.Get(k+1, j) + m.Dims[i]*m.Dims[k+1]*m.Dims[j+1]
		if c < best {
			best = c
		}
	}
	return best
}

// Problem wraps the kernel for the runtime.
func (m *MatrixChain) Problem() core.Problem[int64] {
	return core.Problem[int64]{
		Name:   fmt.Sprintf("matrixchain-%d", len(m.Dims)-1),
		Size:   m.Size(),
		Kernel: m,
		Codec:  matrix.BinaryCodec[int64]{},
	}
}

// Sequential is the reference implementation.
func (m *MatrixChain) Sequential() [][]int64 {
	n := len(m.Dims) - 1
	d := make([][]int64, n)
	backing := make([]int64, n*n)
	for i := range d {
		d[i], backing = backing[:n], backing[n:]
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := int64(1) << 62
			for k := i; k < j; k++ {
				c := d[i][k] + d[k+1][j] + m.Dims[i]*m.Dims[k+1]*m.Dims[j+1]
				if c < best {
					best = c
				}
			}
			d[i][j] = best
		}
	}
	return d
}

// Knapsack is the 0/1 knapsack problem over the RowOnly pattern: row i is
// item i, column w is remaining capacity:
//
//	V[i,w] = max(V[i-1,w], V[i-1,w-Weight[i]] + Value[i])
type Knapsack struct {
	Weights  []int
	Values   []int32
	Capacity int
}

// NewKnapsack builds a reproducible random instance.
func NewKnapsack(items, capacity int, seed int64) *Knapsack {
	rng := rand.New(rand.NewSource(seed))
	k := &Knapsack{
		Weights:  make([]int, items),
		Values:   make([]int32, items),
		Capacity: capacity,
	}
	for i := 0; i < items; i++ {
		k.Weights[i] = 1 + rng.Intn(capacity/4+1)
		k.Values[i] = int32(1 + rng.Intn(100))
	}
	return k
}

// Size returns the DP matrix extent: items x (capacity+1).
func (k *Knapsack) Size() dag.Size {
	return dag.Size{Rows: len(k.Weights), Cols: k.Capacity + 1}
}

// Pattern implements core.Kernel.
func (k *Knapsack) Pattern() dag.Pattern { return dag.RowOnly{} }

// Boundary implements core.Kernel: the virtual row above item 0 is all
// zeros, and negative capacities are impossible (scored as a large
// negative so they never win).
func (k *Knapsack) Boundary(i, j int) int32 {
	if j < 0 {
		return -1 << 30
	}
	return 0
}

// Cell implements core.Kernel.
func (k *Knapsack) Cell(v *matrix.View[int32], i, w int) int32 {
	best := v.Get(i-1, w)
	if take := v.Get(i-1, w-k.Weights[i]) + k.Values[i]; take > best {
		best = take
	}
	return best
}

// Problem wraps the kernel for the runtime.
func (k *Knapsack) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("knapsack-%dx%d", len(k.Weights), k.Capacity),
		Size:   k.Size(),
		Kernel: k,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (k *Knapsack) Sequential() [][]int32 {
	rows, cols := len(k.Weights), k.Capacity+1
	d := make([][]int32, rows)
	backing := make([]int32, rows*cols)
	for i := range d {
		d[i], backing = backing[:cols], backing[cols:]
	}
	get := func(i, w int) int32 {
		if w < 0 {
			return -1 << 30
		}
		if i < 0 {
			return 0
		}
		return d[i][w]
	}
	for i := 0; i < rows; i++ {
		for w := 0; w < cols; w++ {
			best := get(i-1, w)
			if take := get(i-1, w-k.Weights[i]) + k.Values[i]; take > best {
				best = take
			}
			d[i][w] = best
		}
	}
	return d
}

// Best returns the optimal knapsack value from a completed matrix.
func (k *Knapsack) Best(d [][]int32) int32 {
	if len(d) == 0 {
		return 0
	}
	return d[len(d)-1][k.Capacity]
}

// Dominance43 is the synthetic 2D/2D recurrence of Algorithm 4.3 in the
// paper:
//
//	D[i,j] = min_{0<=i'<i, 0<=j'<j} D[i',j'] + W[i'+j'][i+j]
//
// with given boundary rows/columns folded into Boundary. W is a
// reproducible random weight table. It exercises the Dominance pattern,
// whose data region is the full dominated rectangle.
type Dominance43 struct {
	N int
	W [][]int32
}

// NewDominance43 builds a reproducible instance of size n.
func NewDominance43(n int, seed int64) *Dominance43 {
	rng := rand.New(rand.NewSource(seed))
	w := make([][]int32, 2*n)
	for i := range w {
		w[i] = make([]int32, 2*n)
		for j := range w[i] {
			w[i][j] = int32(rng.Intn(50))
		}
	}
	return &Dominance43{N: n, W: w}
}

// Size returns the DP matrix extent.
func (d *Dominance43) Size() dag.Size { return dag.Square(d.N) }

// Pattern implements core.Kernel.
func (d *Dominance43) Pattern() dag.Pattern { return dag.Dominance{} }

// Boundary implements core.Kernel: D[i,0-style] boundary cells are zero.
func (d *Dominance43) Boundary(i, j int) int32 { return 0 }

// Cell implements core.Kernel.
func (d *Dominance43) Cell(v *matrix.View[int32], i, j int) int32 {
	best := int32(1) << 30
	for ii := -1; ii < i; ii++ {
		for jj := -1; jj < j; jj++ {
			c := v.Get(ii, jj) + d.w(ii+jj+2, i+j+2)
			if c < best {
				best = c
			}
		}
	}
	return best
}

func (d *Dominance43) w(a, b int) int32 {
	if a < 0 || b < 0 || a >= len(d.W) || b >= len(d.W) {
		return 0
	}
	return d.W[a][b]
}

// Problem wraps the kernel for the runtime.
func (d *Dominance43) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("dominance-%d", d.N),
		Size:   d.Size(),
		Kernel: d,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (d *Dominance43) Sequential() [][]int32 {
	n := d.N
	m := make([][]int32, n)
	backing := make([]int32, n*n)
	for i := range m {
		m[i], backing = backing[:n], backing[n:]
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return m[i][j]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			best := int32(1) << 30
			for ii := -1; ii < i; ii++ {
				for jj := -1; jj < j; jj++ {
					c := get(ii, jj) + d.w(ii+jj+2, i+j+2)
					if c < best {
						best = c
					}
				}
			}
			m[i][j] = best
		}
	}
	return m
}
