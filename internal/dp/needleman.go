package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// NeedlemanWunsch is global alignment with linear gap penalties — the
// classic wavefront recurrence:
//
//	D[i,j] = max(D[i-1,j-1] + s(A[i],B[j]),
//	             D[i-1,j]   - Gap,
//	             D[i,j-1]   - Gap)
//
// with boundary D[i,-1] = -(i+1)*Gap and D[-1,j] = -(j+1)*Gap. Together
// with EditDistance (minimizing) and Gotoh (affine gaps) it completes the
// pairwise-alignment family over the wavefront pattern.
type NeedlemanWunsch struct {
	A, B     []byte
	Match    int32
	Mismatch int32
	Gap      int32 // positive penalty per gap column
}

// NewNeedlemanWunsch builds the aligner with +1/-1 substitution scores and
// gap penalty 2.
func NewNeedlemanWunsch(a, b []byte) *NeedlemanWunsch {
	return &NeedlemanWunsch{A: a, B: b, Match: 1, Mismatch: -1, Gap: 2}
}

// Size returns the DP matrix extent.
func (nw *NeedlemanWunsch) Size() dag.Size {
	return dag.Size{Rows: len(nw.A), Cols: len(nw.B)}
}

func (nw *NeedlemanWunsch) score(i, j int) int32 {
	if nw.A[i] == nw.B[j] {
		return nw.Match
	}
	return nw.Mismatch
}

// Pattern implements core.Kernel.
func (nw *NeedlemanWunsch) Pattern() dag.Pattern { return dag.Wavefront{} }

// Boundary implements core.Kernel.
func (nw *NeedlemanWunsch) Boundary(i, j int) int32 {
	switch {
	case i < 0 && j < 0:
		return 0
	case i < 0:
		return -int32(j+1) * nw.Gap
	default:
		return -int32(i+1) * nw.Gap
	}
}

// Cell implements core.Kernel.
func (nw *NeedlemanWunsch) Cell(v *matrix.View[int32], i, j int) int32 {
	best := v.Get(i-1, j-1) + nw.score(i, j)
	if c := v.Get(i-1, j) - nw.Gap; c > best {
		best = c
	}
	if c := v.Get(i, j-1) - nw.Gap; c > best {
		best = c
	}
	return best
}

// Problem wraps the aligner for the runtime.
func (nw *NeedlemanWunsch) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("nw-%dx%d", len(nw.A), len(nw.B)),
		Size:   nw.Size(),
		Kernel: nw,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (nw *NeedlemanWunsch) Sequential() [][]int32 {
	la, lb := len(nw.A), len(nw.B)
	d := make([][]int32, la)
	backing := make([]int32, la*lb)
	for i := range d {
		d[i], backing = backing[:lb], backing[lb:]
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return nw.Boundary(i, j)
		}
		return d[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			best := get(i-1, j-1) + nw.score(i, j)
			if c := get(i-1, j) - nw.Gap; c > best {
				best = c
			}
			if c := get(i, j-1) - nw.Gap; c > best {
				best = c
			}
			d[i][j] = best
		}
	}
	return d
}

// GlobalScore returns the optimal global alignment score.
func (nw *NeedlemanWunsch) GlobalScore(d [][]int32) int32 {
	return d[len(nw.A)-1][len(nw.B)-1]
}

// Traceback recovers one optimal global alignment.
func (nw *NeedlemanWunsch) Traceback(d [][]int32) Alignment {
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return nw.Boundary(i, j)
		}
		return d[i][j]
	}
	var ra, rb []byte
	i, j := len(nw.A)-1, len(nw.B)-1
	for i >= 0 || j >= 0 {
		switch {
		case i >= 0 && j >= 0 && get(i, j) == get(i-1, j-1)+nw.score(i, j):
			ra = append(ra, nw.A[i])
			rb = append(rb, nw.B[j])
			i, j = i-1, j-1
		case i >= 0 && get(i, j) == get(i-1, j)-nw.Gap:
			ra = append(ra, nw.A[i])
			rb = append(rb, '-')
			i--
		default:
			ra = append(ra, '-')
			rb = append(rb, nw.B[j])
			j--
		}
	}
	reverse(ra)
	reverse(rb)
	return Alignment{RowA: ra, RowB: rb, Score: nw.GlobalScore(d)}
}
