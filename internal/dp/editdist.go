package dp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
)

// EditDistance is Levenshtein distance: cell (i, j) is the distance
// between A[0..i] and B[0..j]. A 2D/0D (wavefront) recurrence:
//
//	D[i,j] = min(D[i-1,j] + 1, D[i,j-1] + 1, D[i-1,j-1] + [A[i] != B[j]])
//
// with virtual boundary D[-1,j] = j+1 and D[i,-1] = i+1.
type EditDistance struct {
	A, B []byte
}

// NewEditDistance builds the kernel.
func NewEditDistance(a, b []byte) *EditDistance { return &EditDistance{A: a, B: b} }

// Size returns the DP matrix extent.
func (e *EditDistance) Size() dag.Size { return dag.Size{Rows: len(e.A), Cols: len(e.B)} }

// Pattern implements core.Kernel.
func (e *EditDistance) Pattern() dag.Pattern { return dag.Wavefront{} }

// Boundary implements core.Kernel.
func (e *EditDistance) Boundary(i, j int) int32 {
	if i < 0 && j < 0 {
		return 0
	}
	if i < 0 {
		return int32(j) + 1
	}
	return int32(i) + 1
}

// Cell implements core.Kernel.
func (e *EditDistance) Cell(v *matrix.View[int32], i, j int) int32 {
	sub := v.Get(i-1, j-1)
	if e.A[i] != e.B[j] {
		sub++
	}
	if del := v.Get(i-1, j) + 1; del < sub {
		sub = del
	}
	if ins := v.Get(i, j-1) + 1; ins < sub {
		sub = ins
	}
	return sub
}

// Problem wraps the kernel for the runtime.
func (e *EditDistance) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("editdist-%dx%d", len(e.A), len(e.B)),
		Size:   e.Size(),
		Kernel: e,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (e *EditDistance) Sequential() [][]int32 {
	la, lb := len(e.A), len(e.B)
	d := make([][]int32, la)
	backing := make([]int32, la*lb)
	for i := range d {
		d[i], backing = backing[:lb], backing[lb:]
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return e.Boundary(i, j)
		}
		return d[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			sub := get(i-1, j-1)
			if e.A[i] != e.B[j] {
				sub++
			}
			if del := get(i-1, j) + 1; del < sub {
				sub = del
			}
			if ins := get(i, j-1) + 1; ins < sub {
				sub = ins
			}
			d[i][j] = sub
		}
	}
	return d
}

// Distance returns the edit distance from a completed matrix.
func (e *EditDistance) Distance(d [][]int32) int32 {
	if len(e.A) == 0 {
		return int32(len(e.B))
	}
	if len(e.B) == 0 {
		return int32(len(e.A))
	}
	return d[len(e.A)-1][len(e.B)-1]
}

// LCS is the longest-common-subsequence length, another 2D/0D wavefront
// recurrence:
//
//	L[i,j] = L[i-1,j-1] + 1                 if A[i] == B[j]
//	         max(L[i-1,j], L[i,j-1])        otherwise
type LCS struct {
	A, B []byte
}

// NewLCS builds the kernel.
func NewLCS(a, b []byte) *LCS { return &LCS{A: a, B: b} }

// Size returns the DP matrix extent.
func (l *LCS) Size() dag.Size { return dag.Size{Rows: len(l.A), Cols: len(l.B)} }

// Pattern implements core.Kernel.
func (l *LCS) Pattern() dag.Pattern { return dag.Wavefront{} }

// Boundary implements core.Kernel.
func (l *LCS) Boundary(i, j int) int32 { return 0 }

// Cell implements core.Kernel.
func (l *LCS) Cell(v *matrix.View[int32], i, j int) int32 {
	if l.A[i] == l.B[j] {
		return v.Get(i-1, j-1) + 1
	}
	a, b := v.Get(i-1, j), v.Get(i, j-1)
	if a > b {
		return a
	}
	return b
}

// Problem wraps the kernel for the runtime.
func (l *LCS) Problem() core.Problem[int32] {
	return core.Problem[int32]{
		Name:   fmt.Sprintf("lcs-%dx%d", len(l.A), len(l.B)),
		Size:   l.Size(),
		Kernel: l,
		Codec:  matrix.BinaryCodec[int32]{},
	}
}

// Sequential is the reference implementation.
func (l *LCS) Sequential() [][]int32 {
	la, lb := len(l.A), len(l.B)
	d := make([][]int32, la)
	backing := make([]int32, la*lb)
	for i := range d {
		d[i], backing = backing[:lb], backing[lb:]
	}
	get := func(i, j int) int32 {
		if i < 0 || j < 0 {
			return 0
		}
		return d[i][j]
	}
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			if l.A[i] == l.B[j] {
				d[i][j] = get(i-1, j-1) + 1
				continue
			}
			a, b := get(i-1, j), get(i, j-1)
			if a > b {
				d[i][j] = a
			} else {
				d[i][j] = b
			}
		}
	}
	return d
}
