package matrix

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestBlockAtSet(t *testing.T) {
	b := NewBlock[int32](dag.Rect{Row0: 10, Col0: 20, Rows: 3, Cols: 4})
	b.Set(11, 22, 42)
	if got := b.At(11, 22); got != 42 {
		t.Fatalf("At = %d, want 42", got)
	}
	if b.At(10, 20) != 0 {
		t.Fatal("fresh cells must be zero")
	}
	if !b.Contains(12, 23) || b.Contains(13, 20) || b.Contains(10, 24) {
		t.Fatal("Contains wrong")
	}
}

func TestBlockClone(t *testing.T) {
	b := NewBlock[int32](dag.Rect{Rows: 2, Cols: 2})
	b.Set(0, 0, 7)
	c := b.Clone()
	c.Set(0, 0, 9)
	if b.At(0, 0) != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestStorePutGetAssemble(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(6), dag.Square(4)) // 2x2 grid, clipped edges
	s := NewStore[int32](g)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			p := dag.Pos{Row: r, Col: c}
			b := NewBlock[int32](g.Rect(p))
			for i := b.Rect.Row0; i < b.Rect.Row0+b.Rect.Rows; i++ {
				for j := b.Rect.Col0; j < b.Rect.Col0+b.Rect.Cols; j++ {
					b.Set(i, j, int32(i*10+j))
				}
			}
			s.Put(p, b)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	m := s.Assemble()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if m[i][j] != int32(i*10+j) {
				t.Fatalf("Assemble[%d][%d] = %d, want %d", i, j, m[i][j], i*10+j)
			}
		}
	}
	if got := s.Cell(5, 5); got != 55 {
		t.Fatalf("Cell = %d, want 55", got)
	}
}

func TestStorePutWrongRectPanics(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(8), dag.Square(4))
	s := NewStore[int32](g)
	b := NewBlock[int32](dag.Rect{Rows: 4, Cols: 4}) // rect of (0,0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Put(dag.Pos{Row: 1, Col: 1}, b)
}

func TestStoreGatherMissingPanics(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(8), dag.Square(4))
	s := NewStore[int32](g)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Gather([]dag.Pos{{Row: 0, Col: 0}})
}

func TestStoreConcurrent(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(32), dag.Square(2)) // 16x16 grid
	s := NewStore[int32](g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 16; r++ {
				for c := w; c < 16; c += 8 {
					p := dag.Pos{Row: r, Col: c}
					s.Put(p, NewBlock[int32](g.Rect(p)))
					_ = s.Get(p)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 256 {
		t.Fatalf("Len = %d, want 256", s.Len())
	}
}

func TestViewResolution(t *testing.T) {
	out := NewBlock[int32](dag.Rect{Row0: 4, Col0: 4, Rows: 2, Cols: 2})
	out.Set(4, 4, 1)
	in := NewBlock[int32](dag.Rect{Row0: 2, Col0: 4, Rows: 2, Cols: 2})
	in.Set(3, 5, 2)
	boundary := func(i, j int) int32 { return -9 }
	exists := func(i, j int) bool { return i >= 0 && j >= 0 }
	v := NewView(out, []*Block[int32]{in}, exists, boundary)

	if got := v.Get(4, 4); got != 1 {
		t.Errorf("out cell = %d, want 1", got)
	}
	if got := v.Get(3, 5); got != 2 {
		t.Errorf("in cell = %d, want 2", got)
	}
	if got := v.Get(-1, 0); got != -9 {
		t.Errorf("boundary cell = %d, want -9", got)
	}
	// Repeated input reads exercise the single-block cache.
	if got := v.Get(2, 4); got != 0 {
		t.Errorf("cached in cell = %d, want 0", got)
	}
	v.Set(5, 5, 77)
	if out.At(5, 5) != 77 {
		t.Error("Set did not reach the output block")
	}
	if v.Out() != out {
		t.Error("Out did not return the output block")
	}
}

func TestViewOutsideRegionPanics(t *testing.T) {
	out := NewBlock[int32](dag.Rect{Rows: 2, Cols: 2})
	v := NewView(out, nil, nil, func(i, j int) int32 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("expected panic for read outside the data region")
		}
	}()
	v.Get(10, 10)
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	f := func(cells []int64) bool {
		b := &Block[int64]{Rect: dag.Rect{Rows: 1, Cols: len(cells)}, Cells: cells}
		if len(cells) == 0 {
			b.Rect = dag.Rect{Rows: 1, Cols: 1}
			b.Cells = []int64{0}
		}
		data, err := EncodeBlocks[int64](BinaryCodec[int64]{}, []*Block[int64]{b})
		if err != nil {
			return false
		}
		got, err := DecodeBlocks[int64](BinaryCodec[int64]{}, data)
		if err != nil || len(got) != 1 || got[0].Rect != b.Rect {
			return false
		}
		for k := range b.Cells {
			if got[0].Cells[k] != b.Cells[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	type cell struct {
		Score int32
		Dir   uint8
	}
	rng := rand.New(rand.NewSource(7))
	b := NewBlock[cell](dag.Rect{Row0: 1, Col0: 2, Rows: 3, Cols: 5})
	for k := range b.Cells {
		b.Cells[k] = cell{Score: rng.Int31(), Dir: uint8(rng.Intn(4))}
	}
	data, err := EncodeBlocks[cell](GobCodec[cell]{}, []*Block[cell]{b, b.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlocks[cell](GobCodec[cell]{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d blocks, want 2", len(got))
	}
	for k := range b.Cells {
		if got[0].Cells[k] != b.Cells[k] {
			t.Fatalf("cell %d mismatch", k)
		}
	}
}

func TestDecodeBlocksRejectsGarbage(t *testing.T) {
	if _, err := DecodeBlocks[int32](BinaryCodec[int32]{}, []byte{1, 2}); err == nil {
		t.Error("short input accepted")
	}
	// Negative count.
	if _, err := DecodeBlocks[int32](BinaryCodec[int32]{}, []byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestEncodeBlocksMultiBlockSizes(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(10), dag.Square(3))
	var blocks []*Block[float64]
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			b := NewBlock[float64](g.Rect(dag.Pos{Row: r, Col: c}))
			for k := range b.Cells {
				b.Cells[k] = float64(r*100 + c*10 + k)
			}
			blocks = append(blocks, b)
		}
	}
	data, err := EncodeBlocks[float64](BinaryCodec[float64]{}, blocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBlocks[float64](BinaryCodec[float64]{}, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("decoded %d blocks, want %d", len(got), len(blocks))
	}
	for k := range blocks {
		if got[k].Rect != blocks[k].Rect {
			t.Fatalf("block %d rect %v != %v", k, got[k].Rect, blocks[k].Rect)
		}
		for c := range blocks[k].Cells {
			if got[k].Cells[c] != blocks[k].Cells[c] {
				t.Fatalf("block %d cell %d mismatch", k, c)
			}
		}
	}
}

func TestStoreDrop(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(8), dag.Square(4))
	s := NewStore[int32](g)
	p := dag.Pos{Row: 0, Col: 0}
	s.Put(p, NewBlock[int32](g.Rect(p)))
	if s.Len() != 1 {
		t.Fatal("put failed")
	}
	s.Drop(p)
	if s.Len() != 0 || s.Get(p) != nil {
		t.Fatal("drop failed")
	}
	s.Drop(p) // idempotent
}

func TestAssembleWithHoles(t *testing.T) {
	// Missing blocks (triangular holes / reclaimed blocks) assemble as
	// zero values.
	g := dag.MatrixGeometry(dag.Square(4), dag.Square(2))
	s := NewStore[int32](g)
	p := dag.Pos{Row: 0, Col: 1}
	b := NewBlock[int32](g.Rect(p))
	b.Set(0, 2, 7)
	s.Put(p, b)
	m := s.Assemble()
	if m[0][2] != 7 {
		t.Fatal("stored cell lost")
	}
	if m[3][0] != 0 || m[0][0] != 0 {
		t.Fatal("hole cells not zero")
	}
}
