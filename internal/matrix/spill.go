package matrix

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dag"
)

// BlockStore is the master-side storage abstraction: the in-memory Store
// and the out-of-core SpillStore both satisfy it.
type BlockStore[T any] interface {
	// Geometry returns the partitioning geometry.
	Geometry() dag.Geometry
	// Put stores the completed block for grid position p.
	Put(p dag.Pos, b *Block[T])
	// Get returns the block at p, or nil when absent.
	Get(p dag.Pos) *Block[T]
	// Gather returns the blocks at the given positions, panicking on a
	// missing one (a scheduling bug by the DAG model's invariants).
	Gather(ps []dag.Pos) []*Block[T]
	// Drop removes the block at p (memory reclamation).
	Drop(p dag.Pos)
	// Len returns the number of stored blocks.
	Len() int
	// Cell returns the value of global cell (i, j).
	Cell(i, j int) T
	// Assemble flattens the store into a dense matrix.
	Assemble() [][]T
}

var (
	_ BlockStore[int32] = (*Store[int32])(nil)
	_ BlockStore[int32] = (*SpillStore[int32])(nil)
)

// SpillStore is the out-of-core variant of Store: at most Budget blocks
// stay in memory; older blocks are encoded with the problem's codec and
// spilled to files under Dir, to be reloaded transparently on access.
// This addresses the space-complexity limitation the paper lists as
// future work for large DP matrices, beyond what reclamation alone can do
// (reclamation needs consumers to finish; spilling works even while every
// block is still live).
//
// Eviction is FIFO over completed blocks — DP block access is dominated
// by the wavefront neighbourhood, so recently produced blocks are the hot
// set and FIFO behaves like LRU at a fraction of the bookkeeping.
type SpillStore[T any] struct {
	geom   dag.Geometry
	codec  Codec[T]
	dir    string
	budget int

	mu     sync.Mutex
	mem    map[dag.Pos]*Block[T]
	order  []dag.Pos // insertion order of in-memory blocks
	onDisk map[dag.Pos]string

	spills, loads int64
}

// NewSpillStore creates a spill store over geometry g that keeps at most
// budget blocks in memory (minimum 1) and spills the rest under dir using
// codec c. The directory is created if needed.
func NewSpillStore[T any](g dag.Geometry, c Codec[T], dir string, budget int) (*SpillStore[T], error) {
	if budget < 1 {
		budget = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("matrix: spill dir: %w", err)
	}
	return &SpillStore[T]{
		geom:   g,
		codec:  c,
		dir:    dir,
		budget: budget,
		mem:    make(map[dag.Pos]*Block[T]),
		onDisk: make(map[dag.Pos]string),
	}, nil
}

// Geometry returns the store's partitioning geometry.
func (s *SpillStore[T]) Geometry() dag.Geometry { return s.geom }

func (s *SpillStore[T]) path(p dag.Pos) string {
	return filepath.Join(s.dir, fmt.Sprintf("block-%d-%d.bin", p.Row, p.Col))
}

// Put stores a completed block, spilling the oldest in-memory blocks when
// the budget is exceeded. Spill failures panic: the runtime cannot
// continue without its storage, and the condition (disk full) is
// environmental.
func (s *SpillStore[T]) Put(p dag.Pos, b *Block[T]) {
	if want := s.geom.Rect(p); b.Rect != want {
		panic(fmt.Sprintf("matrix: block rect %v does not match geometry rect %v of %v", b.Rect, want, p))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[p]; !ok {
		s.order = append(s.order, p)
	}
	s.mem[p] = b
	for len(s.mem) > s.budget {
		s.evictOldestLocked()
	}
}

func (s *SpillStore[T]) evictOldestLocked() {
	for len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		b, ok := s.mem[victim]
		if !ok {
			continue // already dropped or evicted
		}
		data, err := EncodeBlocks(s.codec, []*Block[T]{b})
		if err != nil {
			panic(fmt.Sprintf("matrix: encoding spill block %v: %v", victim, err))
		}
		if err := os.WriteFile(s.path(victim), data, 0o644); err != nil {
			panic(fmt.Sprintf("matrix: spilling block %v: %v", victim, err))
		}
		delete(s.mem, victim)
		s.onDisk[victim] = s.path(victim)
		s.spills++
		return
	}
}

// load brings a spilled block back (without re-inserting it into the
// in-memory window; Gather bursts should not evict the hot set).
func (s *SpillStore[T]) loadLocked(p dag.Pos) *Block[T] {
	path, ok := s.onDisk[p]
	if !ok {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		panic(fmt.Sprintf("matrix: reloading spilled block %v: %v", p, err))
	}
	blocks, err := DecodeBlocks(s.codec, data)
	if err != nil || len(blocks) != 1 {
		panic(fmt.Sprintf("matrix: decoding spilled block %v: %v", p, err))
	}
	s.loads++
	return blocks[0]
}

// Get returns the block at p, reloading it from disk when spilled.
func (s *SpillStore[T]) Get(p dag.Pos) *Block[T] {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.mem[p]; ok {
		return b
	}
	return s.loadLocked(p)
}

// Gather returns the blocks at the given positions; missing blocks panic.
func (s *SpillStore[T]) Gather(ps []dag.Pos) []*Block[T] {
	out := make([]*Block[T], len(ps))
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, p := range ps {
		b, ok := s.mem[p]
		if !ok {
			b = s.loadLocked(p)
		}
		if b == nil {
			panic(fmt.Sprintf("matrix: gather of missing block %v (scheduling bug: data dependency not complete)", p))
		}
		out[k] = b
	}
	return out
}

// Drop removes the block at p from memory and disk.
func (s *SpillStore[T]) Drop(p dag.Pos) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.mem, p)
	if path, ok := s.onDisk[p]; ok {
		os.Remove(path)
		delete(s.onDisk, p)
	}
}

// Len returns the number of stored blocks (memory plus disk).
func (s *SpillStore[T]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem) + len(s.onDisk)
}

// InMemory returns how many blocks currently reside in memory.
func (s *SpillStore[T]) InMemory() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// IO returns the cumulative spill and reload counts.
func (s *SpillStore[T]) IO() (spills, loads int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spills, s.loads
}

// Cell returns the value of global cell (i, j).
func (s *SpillStore[T]) Cell(i, j int) T {
	b := s.Get(s.geom.BlockOf(i, j))
	if b == nil {
		panic(fmt.Sprintf("matrix: cell (%d,%d) read from missing block", i, j))
	}
	return b.At(i, j)
}

// Assemble flattens all blocks (reloading spilled ones) into a dense
// matrix.
func (s *SpillStore[T]) Assemble() [][]T {
	s.mu.Lock()
	positions := make([]dag.Pos, 0, len(s.mem)+len(s.onDisk))
	for p := range s.mem {
		positions = append(positions, p)
	}
	for p := range s.onDisk {
		positions = append(positions, p)
	}
	s.mu.Unlock()

	reg := s.geom.Region
	out := make([][]T, reg.Rows)
	backing := make([]T, reg.Rows*reg.Cols)
	for i := range out {
		out[i], backing = backing[:reg.Cols], backing[reg.Cols:]
	}
	for _, p := range positions {
		b := s.Get(p)
		if b == nil {
			continue
		}
		for i := b.Rect.Row0; i < b.Rect.Row0+b.Rect.Rows; i++ {
			for j := b.Rect.Col0; j < b.Rect.Col0+b.Rect.Cols; j++ {
				out[i-reg.Row0][j-reg.Col0] = b.At(i, j)
			}
		}
	}
	return out
}

// Close removes all spill files.
func (s *SpillStore[T]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for p, path := range s.onDisk {
		if err := os.Remove(path); err != nil && first == nil {
			first = err
		}
		delete(s.onDisk, p)
	}
	return first
}
