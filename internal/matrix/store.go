package matrix

import (
	"fmt"
	"sync"

	"repro/internal/dag"
)

// Store holds the completed blocks of a DP matrix, keyed by block-grid
// position of a fixed geometry. The master part uses it to collect
// sub-task results and to gather the data regions of new sub-tasks. It is
// safe for concurrent use.
type Store[T any] struct {
	geom dag.Geometry

	mu     sync.RWMutex
	blocks map[dag.Pos]*Block[T]
}

// NewStore creates an empty store over geometry g.
func NewStore[T any](g dag.Geometry) *Store[T] {
	return &Store[T]{geom: g, blocks: make(map[dag.Pos]*Block[T])}
}

// Geometry returns the store's partitioning geometry.
func (s *Store[T]) Geometry() dag.Geometry { return s.geom }

// Put stores the completed block for grid position p. The block's region
// must match the geometry's region for p.
func (s *Store[T]) Put(p dag.Pos, b *Block[T]) {
	if want := s.geom.Rect(p); b.Rect != want {
		panic(fmt.Sprintf("matrix: block rect %v does not match geometry rect %v of %v", b.Rect, want, p))
	}
	s.mu.Lock()
	s.blocks[p] = b
	s.mu.Unlock()
}

// Get returns the block at grid position p, or nil when it has not been
// stored yet.
func (s *Store[T]) Get(p dag.Pos) *Block[T] {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[p]
}

// Gather returns the blocks at the given positions; it panics if any of
// them is missing, because the DAG model guarantees that every data
// dependency of a computable vertex is complete.
func (s *Store[T]) Gather(ps []dag.Pos) []*Block[T] {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Block[T], len(ps))
	for k, p := range ps {
		b := s.blocks[p]
		if b == nil {
			panic(fmt.Sprintf("matrix: gather of missing block %v (scheduling bug: data dependency not complete)", p))
		}
		out[k] = b
	}
	return out
}

// Drop removes the block at grid position p (memory reclamation); it is a
// no-op when the block is absent.
func (s *Store[T]) Drop(p dag.Pos) {
	s.mu.Lock()
	delete(s.blocks, p)
	s.mu.Unlock()
}

// Len returns the number of stored blocks.
func (s *Store[T]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Cell returns the value of global cell (i, j); the containing block must
// have been stored.
func (s *Store[T]) Cell(i, j int) T {
	p := s.geom.BlockOf(i, j)
	b := s.Get(p)
	if b == nil {
		panic(fmt.Sprintf("matrix: cell (%d,%d) read from missing block %v", i, j, p))
	}
	return b.At(i, j)
}

// Assemble flattens the stored blocks into a dense [rows][cols] matrix
// over the store's region. Cells of missing blocks (e.g. below the
// diagonal of a triangular pattern) are left at the zero value. Row and
// column indices of the result are region-relative.
func (s *Store[T]) Assemble() [][]T {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg := s.geom.Region
	out := make([][]T, reg.Rows)
	backing := make([]T, reg.Rows*reg.Cols)
	for i := range out {
		out[i], backing = backing[:reg.Cols], backing[reg.Cols:]
	}
	for _, b := range s.blocks {
		for i := b.Rect.Row0; i < b.Rect.Row0+b.Rect.Rows; i++ {
			for j := b.Rect.Col0; j < b.Rect.Col0+b.Rect.Cols; j++ {
				out[i-reg.Row0][j-reg.Col0] = b.At(i, j)
			}
		}
	}
	return out
}
