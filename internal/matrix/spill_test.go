package matrix

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dag"
)

func fillBlock(g dag.Geometry, p dag.Pos) *Block[int32] {
	b := NewBlock[int32](g.Rect(p))
	for i := b.Rect.Row0; i < b.Rect.Row0+b.Rect.Rows; i++ {
		for j := b.Rect.Col0; j < b.Rect.Col0+b.Rect.Cols; j++ {
			b.Set(i, j, int32(i*100+j))
		}
	}
	return b
}

func newTestSpill(t *testing.T, budget int) (*SpillStore[int32], dag.Geometry) {
	t.Helper()
	g := dag.MatrixGeometry(dag.Square(12), dag.Square(3)) // 4x4 grid
	s, err := NewSpillStore[int32](g, BinaryCodec[int32]{}, t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestSpillStoreEvictsBeyondBudget(t *testing.T) {
	s, g := newTestSpill(t, 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s.Put(dag.Pos{Row: r, Col: c}, fillBlock(g, dag.Pos{Row: r, Col: c}))
		}
	}
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
	if s.InMemory() > 3 {
		t.Fatalf("InMemory = %d, budget 3", s.InMemory())
	}
	spills, _ := s.IO()
	if spills != 13 {
		t.Fatalf("spills = %d, want 13", spills)
	}
	// Every cell readable, spilled or not.
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if got := s.Cell(i, j); got != int32(i*100+j) {
				t.Fatalf("cell (%d,%d) = %d", i, j, got)
			}
		}
	}
	if _, loads := s.IO(); loads == 0 {
		t.Fatal("no reloads recorded despite spilled reads")
	}
}

func TestSpillStoreGatherMixesMemoryAndDisk(t *testing.T) {
	s, g := newTestSpill(t, 2)
	var ps []dag.Pos
	for c := 0; c < 4; c++ {
		p := dag.Pos{Row: 0, Col: c}
		s.Put(p, fillBlock(g, p))
		ps = append(ps, p)
	}
	blocks := s.Gather(ps)
	for k, b := range blocks {
		if b.Rect != g.Rect(ps[k]) {
			t.Fatalf("gather block %d rect %v", k, b.Rect)
		}
		if b.At(b.Rect.Row0, b.Rect.Col0) != int32(b.Rect.Row0*100+b.Rect.Col0) {
			t.Fatalf("gather block %d content wrong", k)
		}
	}
}

func TestSpillStoreAssembleEqualsMemoryStore(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(10), dag.Square(4))
	mem := NewStore[int32](g)
	spill, err := NewSpillStore[int32](g, BinaryCodec[int32]{}, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g.Grid.Rows; r++ {
		for c := 0; c < g.Grid.Cols; c++ {
			p := dag.Pos{Row: r, Col: c}
			mem.Put(p, fillBlock(g, p))
			spill.Put(p, fillBlock(g, p))
		}
	}
	a, b := mem.Assemble(), spill.Assemble()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("assemble differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpillStoreDropRemovesFile(t *testing.T) {
	s, g := newTestSpill(t, 1)
	p0, p1 := dag.Pos{Row: 0, Col: 0}, dag.Pos{Row: 0, Col: 1}
	s.Put(p0, fillBlock(g, p0))
	s.Put(p1, fillBlock(g, p1)) // evicts p0 to disk
	if s.Get(p0) == nil {
		t.Fatal("spilled block unreadable")
	}
	s.Drop(p0)
	if s.Get(p0) != nil {
		t.Fatal("dropped block still readable")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSpillStoreCloseCleansDir(t *testing.T) {
	dir := t.TempDir()
	g := dag.MatrixGeometry(dag.Square(6), dag.Square(2))
	s, err := NewSpillStore[int32](g, BinaryCodec[int32]{}, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		p := dag.Pos{Row: 0, Col: c}
		s.Put(p, fillBlock(g, p))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "block-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("spill files left after Close: %v", files)
	}
}

func TestSpillStoreBadDir(t *testing.T) {
	g := dag.MatrixGeometry(dag.Square(4), dag.Square(2))
	// A file in place of the directory must fail creation.
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpillStore[int32](g, BinaryCodec[int32]{}, filepath.Join(file, "sub"), 2); err == nil {
		t.Fatal("spill store created under a file")
	}
}
