package matrix

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/dag"
)

// Codec serializes cell values for the transport layer. Fixed-size numeric
// cells use the fast binary codec; any other cell type can fall back to
// the gob codec.
type Codec[T any] interface {
	// EncodeCells writes the cells to w.
	EncodeCells(w io.Writer, cells []T) error
	// DecodeCells reads len(cells) values from r into cells.
	DecodeCells(r io.Reader, cells []T) error
}

// BinaryCodec encodes fixed-size integer and float cells with
// encoding/binary in little-endian order.
type BinaryCodec[T int32 | int64 | uint32 | uint64 | float32 | float64] struct{}

func (BinaryCodec[T]) EncodeCells(w io.Writer, cells []T) error {
	return binary.Write(w, binary.LittleEndian, cells)
}

func (BinaryCodec[T]) DecodeCells(r io.Reader, cells []T) error {
	return binary.Read(r, binary.LittleEndian, cells)
}

// GobCodec encodes arbitrary cell types with encoding/gob. Slower than
// BinaryCodec but works for struct cells (e.g. score plus traceback
// direction).
type GobCodec[T any] struct{}

func (GobCodec[T]) EncodeCells(w io.Writer, cells []T) error {
	return gob.NewEncoder(w).Encode(cells)
}

func (GobCodec[T]) DecodeCells(r io.Reader, cells []T) error {
	var tmp []T
	if err := gob.NewDecoder(r).Decode(&tmp); err != nil {
		return err
	}
	if len(tmp) != len(cells) {
		return fmt.Errorf("matrix: gob payload has %d cells, want %d", len(tmp), len(cells))
	}
	copy(cells, tmp)
	return nil
}

// blockHeader precedes each block on the wire.
type blockHeader struct {
	Row0, Col0, Rows, Cols int32
}

// EncodeBlocks serializes a set of blocks (count header followed by rect
// headers and cell payloads) using codec c.
func EncodeBlocks[T any](c Codec[T], blocks []*Block[T]) ([]byte, error) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, int32(len(blocks))); err != nil {
		return nil, err
	}
	for _, b := range blocks {
		h := blockHeader{int32(b.Rect.Row0), int32(b.Rect.Col0), int32(b.Rect.Rows), int32(b.Rect.Cols)}
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			return nil, err
		}
		if err := c.EncodeCells(&buf, b.Cells); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeBlocks is the inverse of EncodeBlocks.
func DecodeBlocks[T any](c Codec[T], data []byte) ([]*Block[T], error) {
	r := bytes.NewReader(data)
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("matrix: negative block count %d", n)
	}
	blocks := make([]*Block[T], 0, n)
	for k := int32(0); k < n; k++ {
		var h blockHeader
		if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
			return nil, err
		}
		if h.Rows <= 0 || h.Cols <= 0 {
			return nil, fmt.Errorf("matrix: invalid block header %+v", h)
		}
		b := NewBlock[T](dag.Rect{Row0: int(h.Row0), Col0: int(h.Col0), Rows: int(h.Rows), Cols: int(h.Cols)})
		if err := c.DecodeCells(r, b.Cells); err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}
