package matrix

import "fmt"

// View is the read/write window a DP kernel sees while computing one
// sub-task: writes go to the output block; reads resolve, in order,
// against the output block (cells computed earlier in the same sub-task or
// by sibling thread-level tasks), the shipped input blocks, a boundary
// function for cells outside the computed region, and otherwise panic —
// a read that reaches the panic indicates an under-specified data region
// in the pattern, which the tests are designed to catch.
//
// View is not synchronized: the DAG schedule guarantees that every cell a
// kernel may read was written before the kernel started (happens-before is
// established by the scheduler's completion handshake).
type View[T any] struct {
	// exists reports whether a cell is part of the computation; reads of
	// cells that do not exist resolve through boundary.
	exists func(i, j int) bool
	// boundary supplies values for reads outside the computed region
	// (i < 0, j < 0, beyond the matrix, or pattern-dependent holes).
	boundary func(i, j int) T
	// outs are the writable blocks of the running sub-task, ordered from
	// most specific (current thread-level block) outward.
	out *Block[T]
	// in maps block rects to shipped input blocks.
	in []*Block[T]
	// last caches the input block of the previous failed-over read.
	last *Block[T]
}

// NewView builds a view for a sub-task writing out, reading the shipped
// blocks in, with existence predicate exists and boundary function
// boundary.
func NewView[T any](out *Block[T], in []*Block[T], exists func(i, j int) bool, boundary func(i, j int) T) *View[T] {
	return &View[T]{exists: exists, boundary: boundary, out: out, in: in}
}

// Get returns the value of cell (i, j).
func (v *View[T]) Get(i, j int) T {
	if v.exists != nil && !v.exists(i, j) {
		return v.boundary(i, j)
	}
	if v.out != nil && v.out.Contains(i, j) {
		return v.out.At(i, j)
	}
	if v.last != nil && v.last.Contains(i, j) {
		return v.last.At(i, j)
	}
	for _, b := range v.in {
		if b.Contains(i, j) {
			v.last = b
			return b.At(i, j)
		}
	}
	panic(fmt.Sprintf("matrix: read of cell (%d,%d) outside the sub-task data region (pattern DataDeps under-specified?)", i, j))
}

// Set writes v into cell (i, j) of the output block.
func (v *View[T]) Set(i, j int, val T) { v.out.Set(i, j, val) }

// Out returns the output block of the view.
func (v *View[T]) Out() *Block[T] { return v.out }
