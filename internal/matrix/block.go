// Package matrix provides blocked storage for DP matrices: individual
// blocks, a thread-safe block store (the master's view of the matrix), a
// read view used while computing one sub-task, and wire codecs for
// shipping blocks between nodes.
package matrix

import (
	"fmt"

	"repro/internal/dag"
)

// Block is one rectangular tile of the DP matrix in row-major layout.
// Cells are addressed with global matrix coordinates.
type Block[T any] struct {
	Rect  dag.Rect
	Cells []T
}

// NewBlock allocates a zeroed block covering r.
func NewBlock[T any](r dag.Rect) *Block[T] {
	return &Block[T]{Rect: r, Cells: make([]T, r.Cells())}
}

func (b *Block[T]) index(i, j int) int {
	return (i-b.Rect.Row0)*b.Rect.Cols + (j - b.Rect.Col0)
}

// At returns the cell at global coordinates (i, j), which must lie inside
// the block.
func (b *Block[T]) At(i, j int) T { return b.Cells[b.index(i, j)] }

// Set stores v at global coordinates (i, j).
func (b *Block[T]) Set(i, j int, v T) { b.Cells[b.index(i, j)] = v }

// Contains reports whether global cell (i, j) lies inside the block.
func (b *Block[T]) Contains(i, j int) bool { return b.Rect.Contains(i, j) }

// Clone returns a deep copy of the block.
func (b *Block[T]) Clone() *Block[T] {
	c := &Block[T]{Rect: b.Rect, Cells: make([]T, len(b.Cells))}
	copy(c.Cells, b.Cells)
	return c
}

func (b *Block[T]) String() string {
	return fmt.Sprintf("block%v", b.Rect)
}
