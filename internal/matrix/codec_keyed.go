package matrix

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dag"
)

// Content-keyed wire format for task inputs, used when the cross-job
// result cache is on. It differs from the plain EncodeBlocks layout in
// two ways: every record carries the block's 32-byte content key, and a
// record may be a *reference* — the key and rect alone, no cells — naming
// a block the receiver provably already holds, so a content-identical
// block is never reshipped.
//
// The format is distinguished by the leading count, written as -(n+1):
// always negative, even for zero records, so the receiver can tell keyed
// payloads apart (and knows to record block keys) without any
// out-of-band flag. A plain-format decoder rejects the negative count
// loudly, which is the desired failure mode for version skew.
//
// Record layout after the count: a blockHeader, then the 32-byte key. A
// negative Rows field marks a reference (the true row count is -Rows and
// no cells follow); a positive Rows field is a full block, cells
// following as in the plain format.

// KeyedBlock pairs a block with its content key for the keyed format.
type KeyedBlock[T any] struct {
	Key   [32]byte
	Block *Block[T]
}

// BlockRef names a block by rect and content key, without its cells.
type BlockRef struct {
	Key  [32]byte
	Rect dag.Rect
}

// EncodeBlocksKeyed serializes full blocks and references in the keyed
// format. Receivers resolve each record in order, so the concatenation
// full-then-refs is the decoded block order.
func EncodeBlocksKeyed[T any](c Codec[T], full []KeyedBlock[T], refs []BlockRef) ([]byte, error) {
	var buf bytes.Buffer
	n := len(full) + len(refs)
	if err := binary.Write(&buf, binary.LittleEndian, int32(-(n + 1))); err != nil {
		return nil, err
	}
	for _, kb := range full {
		b := kb.Block
		h := blockHeader{int32(b.Rect.Row0), int32(b.Rect.Col0), int32(b.Rect.Rows), int32(b.Rect.Cols)}
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			return nil, err
		}
		if _, err := buf.Write(kb.Key[:]); err != nil {
			return nil, err
		}
		if err := c.EncodeCells(&buf, b.Cells); err != nil {
			return nil, err
		}
	}
	for _, ref := range refs {
		h := blockHeader{int32(ref.Rect.Row0), int32(ref.Rect.Col0), int32(-ref.Rect.Rows), int32(ref.Rect.Cols)}
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			return nil, err
		}
		if _, err := buf.Write(ref.Key[:]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeBlocksAny decodes either wire format. Plain payloads behave
// exactly like DecodeBlocks and touch neither callback. For keyed
// payloads, each full block is reported through record (nil is allowed)
// before being returned, and each reference is resolved through resolve;
// a nil resolve or a resolve miss is an error — a reference the receiver
// cannot resolve means the sender's known-set diverged, which must fail
// loudly rather than compute on garbage. keyed reports which format was
// seen, so a runner knows whether to record its own output's key.
func DecodeBlocksAny[T any](c Codec[T], data []byte, resolve func([32]byte) (*Block[T], bool), record func([32]byte, *Block[T])) (blocks []*Block[T], keyed bool, err error) {
	r := bytes.NewReader(data)
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, false, err
	}
	if n >= 0 {
		b, err := DecodeBlocks(c, data)
		return b, false, err
	}
	count := -n - 1
	blocks = make([]*Block[T], 0, count)
	for i := int32(0); i < count; i++ {
		var h blockHeader
		if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
			return nil, true, err
		}
		var key [32]byte
		if _, err := io.ReadFull(r, key[:]); err != nil {
			return nil, true, err
		}
		if h.Rows < 0 {
			if resolve == nil {
				return nil, true, fmt.Errorf("matrix: block reference %x with no resolver", key[:6])
			}
			b, ok := resolve(key)
			if !ok {
				return nil, true, fmt.Errorf("matrix: unresolvable block reference %x (rect %d,%d %dx%d)", key[:6], h.Row0, h.Col0, -h.Rows, h.Cols)
			}
			want := dag.Rect{Row0: int(h.Row0), Col0: int(h.Col0), Rows: int(-h.Rows), Cols: int(h.Cols)}
			if b.Rect != want {
				return nil, true, fmt.Errorf("matrix: block reference %x resolved to rect %+v, want %+v", key[:6], b.Rect, want)
			}
			blocks = append(blocks, b)
			continue
		}
		if h.Rows == 0 || h.Cols <= 0 {
			return nil, true, fmt.Errorf("matrix: invalid keyed block header %+v", h)
		}
		b := NewBlock[T](dag.Rect{Row0: int(h.Row0), Col0: int(h.Col0), Rows: int(h.Rows), Cols: int(h.Cols)})
		if err := c.DecodeCells(r, b.Cells); err != nil {
			return nil, true, err
		}
		if record != nil {
			record(key, b)
		}
		blocks = append(blocks, b)
	}
	return blocks, true, nil
}
