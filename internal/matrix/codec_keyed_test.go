package matrix

import (
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/dag"
)

func keyedTestBlock(r dag.Rect, base int32) *Block[int32] {
	b := NewBlock[int32](r)
	for i := range b.Cells {
		b.Cells[i] = base + int32(i)
	}
	return b
}

func TestKeyedRoundTripFullBlocks(t *testing.T) {
	c := BinaryCodec[int32]{}
	b1 := keyedTestBlock(dag.Rect{Row0: 0, Col0: 0, Rows: 2, Cols: 3}, 10)
	b2 := keyedTestBlock(dag.Rect{Row0: 2, Col0: 0, Rows: 1, Cols: 3}, 100)
	full := []KeyedBlock[int32]{
		{Key: [32]byte{1}, Block: b1},
		{Key: [32]byte{2}, Block: b2},
	}
	data, err := EncodeBlocksKeyed(c, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	recorded := map[[32]byte]*Block[int32]{}
	blocks, keyed, err := DecodeBlocksAny(c, data, nil, func(k [32]byte, b *Block[int32]) { recorded[k] = b })
	if err != nil {
		t.Fatal(err)
	}
	if !keyed {
		t.Fatal("keyed payload decoded as plain")
	}
	if len(blocks) != 2 || blocks[0].Rect != b1.Rect || blocks[1].Rect != b2.Rect {
		t.Fatalf("wrong blocks: %+v", blocks)
	}
	for i, want := range b1.Cells {
		if blocks[0].Cells[i] != want {
			t.Fatalf("cell %d = %d, want %d", i, blocks[0].Cells[i], want)
		}
	}
	if len(recorded) != 2 || recorded[[32]byte{1}] == nil || recorded[[32]byte{2}] == nil {
		t.Fatalf("record callback saw %d keys", len(recorded))
	}
}

func TestKeyedReferencesResolve(t *testing.T) {
	c := BinaryCodec[int32]{}
	held := keyedTestBlock(dag.Rect{Row0: 4, Col0: 4, Rows: 2, Cols: 2}, 7)
	key := [32]byte{9, 9}
	fresh := keyedTestBlock(dag.Rect{Row0: 0, Col0: 0, Rows: 2, Cols: 2}, 1)
	data, err := EncodeBlocksKeyed(c,
		[]KeyedBlock[int32]{{Key: [32]byte{1}, Block: fresh}},
		[]BlockRef{{Key: key, Rect: held.Rect}})
	if err != nil {
		t.Fatal(err)
	}
	resolve := func(k [32]byte) (*Block[int32], bool) {
		if k == key {
			return held, true
		}
		return nil, false
	}
	blocks, keyed, err := DecodeBlocksAny(c, data, resolve, nil)
	if err != nil || !keyed {
		t.Fatalf("decode: %v keyed=%v", err, keyed)
	}
	if len(blocks) != 2 || blocks[1] != held {
		t.Fatalf("reference did not resolve to the held block: %+v", blocks)
	}
}

func TestKeyedReferenceFailuresAreLoud(t *testing.T) {
	c := BinaryCodec[int32]{}
	rect := dag.Rect{Row0: 0, Col0: 0, Rows: 2, Cols: 2}
	data, err := EncodeBlocksKeyed(c, nil, []BlockRef{{Key: [32]byte{5}, Rect: rect}})
	if err != nil {
		t.Fatal(err)
	}
	// No resolver at all.
	if _, _, err := DecodeBlocksAny(c, data, nil, nil); err == nil {
		t.Fatal("nil resolver did not error")
	}
	// Resolver miss.
	miss := func([32]byte) (*Block[int32], bool) { return nil, false }
	if _, _, err := DecodeBlocksAny(c, data, miss, nil); err == nil || !strings.Contains(err.Error(), "unresolvable") {
		t.Fatalf("resolver miss: %v", err)
	}
	// Resolver returns a block with the wrong rect.
	wrong := func([32]byte) (*Block[int32], bool) {
		return NewBlock[int32](dag.Rect{Row0: 9, Col0: 9, Rows: 2, Cols: 2}), true
	}
	if _, _, err := DecodeBlocksAny(c, data, wrong, nil); err == nil || !strings.Contains(err.Error(), "rect") {
		t.Fatalf("rect mismatch: %v", err)
	}
}

// The leading count is negative even for an empty keyed payload, so
// keyed-ness is always detectable, and the plain decoder rejects keyed
// payloads loudly (the version-skew failure mode).
func TestKeyedFormatDiscrimination(t *testing.T) {
	c := BinaryCodec[int32]{}
	empty, err := EncodeBlocksKeyed[int32](c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks, keyed, err := DecodeBlocksAny(c, empty, nil, nil)
	if err != nil || !keyed || len(blocks) != 0 {
		t.Fatalf("empty keyed payload: blocks=%v keyed=%v err=%v", blocks, keyed, err)
	}
	if _, err := DecodeBlocks(c, empty); err == nil {
		t.Fatal("plain decoder accepted a keyed payload")
	}

	// Plain payloads pass through DecodeBlocksAny untouched.
	b := keyedTestBlock(dag.Rect{Rows: 2, Cols: 2}, 3)
	plain, err := EncodeBlocks(c, []*Block[int32]{b})
	if err != nil {
		t.Fatal(err)
	}
	touched := false
	blocks, keyed, err = DecodeBlocksAny(c, plain, nil, func([32]byte, *Block[int32]) { touched = true })
	if err != nil || keyed || touched || len(blocks) != 1 {
		t.Fatalf("plain payload: keyed=%v touched=%v err=%v", keyed, touched, err)
	}
}

// Identical payload bytes produce identical content keys on both sides of
// the wire — the agreement the known-sets depend on.
func TestPayloadKeyAgreesAcrossEncodes(t *testing.T) {
	c := BinaryCodec[int32]{}
	b := keyedTestBlock(dag.Rect{Row0: 1, Col0: 2, Rows: 3, Cols: 4}, 20)
	p1, err := EncodeBlocks(c, []*Block[int32]{b})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EncodeBlocks(c, []*Block[int32]{b.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if cas.PayloadKey(p1) != cas.PayloadKey(p2) {
		t.Fatal("identical blocks encoded to different content keys")
	}
}
