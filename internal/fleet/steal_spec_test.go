package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/sched"
)

// insertJob registers a hand-built job with a running fleet, the way
// Fleet.Run would, without blocking on completion.
func insertJob(t *testing.T, f *Fleet[int32], jb *job[int32]) {
	t.Helper()
	f.mu.Lock()
	f.jobs[jb.id] = jb
	f.order = append(f.order, jb.id)
	f.mu.Unlock()
}

func readyLen(f *Fleet[int32], jb *job[int32]) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(jb.ready)
}

// TestFleetStealFeedsHungryMember drives feedHungry directly: a hungry
// idle member must trigger a steal of the tail half of the most loaded
// member's undispatched backlog — and only when there is no queued work,
// the beggar is truly idle, and the victim's entries are not racing a
// backup. A graceful leave then revokes the victim's remaining leases.
func TestFleetStealFeedsHungryMember(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0", Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prob, _ := mustProblem(t, "edit")
	jb, err := newJob(1, prob, JobRequest{Name: "steal"}.withDefaults(f.opts), f.clock)
	if err != nil {
		t.Fatal(err)
	}
	insertJob(t, f, jb)

	victim := f.reg.Admit("victim", "test")
	beggar := f.reg.Admit("beggar", "test")

	now := f.clock.Now()
	for v := int32(0); v < 4; v++ {
		a, ok := jb.rt.Register(v)
		if !ok {
			t.Fatalf("register vertex %d refused", v)
		}
		jb.leases.Grant(v, victim.ID, a, now)
	}

	// A loaded member's own hunger is ignored.
	f.feedHungry(victim.ID)
	if got := jb.ctrs.Steals.Load(); got != 0 {
		t.Fatalf("steals = %d after the victim begged from itself", got)
	}

	// The idle beggar gets the newer half of the victim's backlog.
	f.feedHungry(beggar.ID)
	if got := jb.ctrs.Steals.Load(); got != 2 {
		t.Fatalf("steals = %d, want the tail half (2) of a 4-deep backlog", got)
	}
	if got := readyLen(f, jb); got != 2 {
		t.Fatalf("ready = %d vertices after the steal, want 2", got)
	}
	if got := jb.leases.Load(victim.ID); got != 2 {
		t.Fatalf("victim load = %d after the steal, want 2", got)
	}

	// With work queued, hunger is a no-op: the beggar's sender will draw
	// the requeued vertices without help.
	f.feedHungry(beggar.ID)
	if got := jb.ctrs.Steals.Load(); got != 2 {
		t.Fatalf("steals = %d, want no re-steal while work is queued", got)
	}

	// A 1-deep backlog is never split.
	f.mu.Lock()
	jb.ready = nil
	f.mu.Unlock()
	jb.leases.RevokeWorker(victim.ID)
	a, _ := jb.rt.Register(100)
	jb.leases.Grant(100, victim.ID, a, now)
	f.feedHungry(beggar.ID)
	if got := jb.ctrs.Steals.Load(); got != 2 {
		t.Fatalf("steals = %d, want no steal from a 1-deep backlog", got)
	}

	// A graceful leave revokes the remaining lease and requeues it.
	f.memberLeave(victim.ID)
	if got := jb.leases.Load(victim.ID); got != 0 {
		t.Fatalf("victim still holds %d leases after leaving", got)
	}
	if got := readyLen(f, jb); got != 1 {
		t.Fatalf("ready = %d after the leave revocation, want 1", got)
	}
	// Leaving twice is idempotent.
	f.memberLeave(victim.ID)
}

// TestFleetSpeculationFakeClock verifies the per-job straggler detector:
// no flag below the profile threshold, exactly one flag past it, refusal
// of a self-backup, and speculation accounting when the backup's holder
// leaves. Mirrors the single-job master's test, scoped to one job of a
// fleet.
func TestFleetSpeculationFakeClock(t *testing.T) {
	fake := sched.NewFakeClock(time.Unix(0, 0))
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: time.Hour,
		CheckInterval:     time.Second,
		TaskTimeout:       time.Hour, // overtime must not race the detector
		Speculate:         true,
		Clock:             fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fake.BlockUntilTickers(1)

	prob, _ := mustProblem(t, "edit")
	jb, err := newJob(1, prob, JobRequest{Name: "spec"}.withDefaults(f.opts), f.clock)
	if err != nil {
		t.Fatal(err)
	}
	insertJob(t, f, jb)

	w1 := f.reg.Admit("w1", "test")

	// Cold profile: no threshold, no speculation.
	f.maybeSpeculate(jb)
	if got := readyLen(f, jb); got != 0 {
		t.Fatalf("cold profile flagged %d vertices", got)
	}

	v := jb.parser.InitialReady()[0]
	orig, ok := jb.rt.Register(v)
	if !ok {
		t.Fatal("original register refused")
	}
	jb.leases.Grant(v, w1.ID, orig, fake.Now())

	// Warm the profile: p95 = 2s, threshold = 2 * 2s = 4s (defaults).
	for i := 0; i < 8; i++ {
		jb.profile.Observe(2 * time.Second)
	}

	fake.Advance(3 * time.Second)
	f.maybeSpeculate(jb)
	if got := readyLen(f, jb); got != 0 {
		t.Fatalf("speculated on a 3s-old attempt below the 4s threshold (%d flagged)", got)
	}

	fake.Advance(2 * time.Second) // age 5s > threshold
	f.maybeSpeculate(jb)
	if got := readyLen(f, jb); got != 1 {
		t.Fatalf("flagged %d vertices past the threshold, want 1", got)
	}

	// The holder must not back itself up: its draw is refused with held
	// set, the flag restored, and the caller requeues the vertex for
	// another member (no waiting for the next control tick).
	f.mu.Lock()
	jb.ready = nil
	f.mu.Unlock()
	if _, ok, _, held := f.register(jb, w1.ID, v); ok || !held {
		t.Fatalf("self-backup register = (ok=%v, held=%v), want a held refusal", ok, held)
	}
	if jb.rt.LiveAttempts(v) != 1 {
		t.Fatalf("LiveAttempts = %d after refused self-backup, want 1", jb.rt.LiveAttempts(v))
	}
	jb.specMu.Lock()
	restored := jb.specPending[v]
	jb.specMu.Unlock()
	if !restored {
		t.Fatal("specPending flag not restored after the refused self-backup")
	}

	// Requeue the refused backup the way dispatch does; a second member
	// turns the draw into a concurrent backup.
	f.requeueReady(jb, []int32{v})
	if got := readyLen(f, jb); got != 1 {
		t.Fatalf("ready = %d after the refused backup was requeued, want 1", got)
	}
	// The detector leaves the requeued backup alone on later ticks.
	fake.Advance(time.Second)
	f.maybeSpeculate(jb)
	if got := readyLen(f, jb); got != 1 {
		t.Fatalf("detector double-flagged a requeued backup (%d ready)", got)
	}
	w2 := f.reg.Admit("w2", "test")
	f.mu.Lock()
	jb.ready = nil
	f.mu.Unlock()
	backup, ok, isBackup, _ := f.register(jb, w2.ID, v)
	if !ok || !isBackup {
		t.Fatalf("backup register = (%v, backup=%v)", ok, isBackup)
	}
	jb.leases.Add(v, w2.ID, backup, fake.Now())
	if jb.rt.LiveAttempts(v) != 2 {
		t.Fatalf("LiveAttempts = %d, want 2 (original + backup)", jb.rt.LiveAttempts(v))
	}

	// While a race is live the detector leaves the vertex alone.
	fake.Advance(10 * time.Second)
	f.maybeSpeculate(jb)
	if got := readyLen(f, jb); got != 0 {
		t.Fatalf("detector flagged a vertex already racing a backup (%d ready)", got)
	}

	// The backup holder leaves: the wasted speculation is accounted to
	// this job and the original attempt survives.
	f.memberLeave(w2.ID)
	if got := jb.ctrs.SpecWasted.Load(); got != 1 {
		t.Fatalf("specWasted = %d after the backup holder left, want 1", got)
	}
	if jb.rt.LiveAttempts(v) != 1 {
		t.Fatalf("LiveAttempts = %d after the backup died, want the original alone", jb.rt.LiveAttempts(v))
	}
}

// TestFleetAdmitRejectsNonFleetWorker pins the join contract: an elastic
// (single-job) worker is refused with a hint to restart with -fleet.
func TestFleetAdmitRejectsNonFleetWorker(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, _, err = comm.DialHello(f.Addr(), comm.Hello{Elastic: true}, 2*time.Second)
	if err == nil || !strings.Contains(err.Error(), "-fleet") {
		t.Fatalf("elastic join = %v, want a refusal naming -fleet", err)
	}
	if f.Registry() == nil {
		t.Fatal("Registry() = nil")
	}
	if jb := f.jobByID(99); jb != nil {
		t.Fatalf("jobByID(99) = %v, want nil", jb)
	}
}

// TestFleetRunCancelAndClose covers the submission edges: a cancelled
// context fails the job (retired as failed), and a closed fleet refuses
// new submissions outright.
func TestFleetRunCancelAndClose(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	prob, _ := mustProblem(t, "ckpt")

	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel as soon as the job is admitted: Run's noteProgress fires
		// right after the job lands in the table, so the generation wait
		// replaces any fixed sleep.
		for {
			gen := f.progressGeneration()
			if f.jobByID(1) != nil {
				break
			}
			f.waitProgress(gen, nil)
		}
		cancel()
	}()
	if _, err := f.Run(cctx, prob, JobRequest{Name: "cancelled"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run = %v, want context.Canceled", err)
	}
	snap := f.Snapshot()
	if snap.States["failed"] != 1 {
		t.Fatalf("job states = %v, want the cancelled job retained as failed", snap.States)
	}
	if jb := f.jobByID(1); jb == nil {
		t.Fatal("cancelled job not queryable by id")
	}

	f.Close()
	if _, err := f.Run(context.Background(), prob, JobRequest{Name: "late"}); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("Run after Close = %v, want ErrFleetClosed", err)
	}
	if err := RunWorker[int32](context.Background(), nil, WorkerOptions{Addr: f.Addr()}); err == nil {
		t.Fatal("RunWorker accepted a nil builder")
	}
}
