// Package fleet is the shared-fleet control plane: one master process
// running N concurrent DAG jobs over a single elastic worker pool.
//
// It splits what cluster.Master fuses into one struct. The fleet owns the
// shared half — the listener, membership registry, member connections,
// heartbeats and hunger beacons — while each submitted job owns the
// DAG-progress half: its graph, parser, block store, register table
// (attempt namespace), overtime queue, lease table, checkpoint log,
// runtime profile and stats ledger. Task and result frames carry a job id
// (comm.Message.Job, wire protocol v3), and a worker attaches a job's
// kernel state on first contact via a job-spec frame, so one worker holds
// batches from several jobs at once.
//
// Which job feeds the next ready batch to an idle worker is decided by a
// pluggable Policy; the default FairShare dispatches to the eligible job
// with the largest outstanding-vertex deficit (weighted max-min
// fairness), with priority classes and per-job in-flight quotas on top.
// A poisoned job — one whose vertices time out repeatedly — fails alone:
// its retries are capped by its own MaxAttempts and bounded by its quota,
// and the healthy jobs keep draining.
//
// See docs/FLEET.md for the scheduler policy, the job-scoped lease
// lifecycle, and the wire-protocol changes.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Options configures a shared fleet.
type Options struct {
	// Addr is the listen address (host:port; :0 picks a free port,
	// readable from Fleet.Addr).
	Addr string
	// HeartbeatInterval is the worker beacon period (default 250 ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many silent intervals declare a member dead
	// (default 3).
	HeartbeatMiss int
	// TaskTimeout is the default per-vertex overtime bound (default
	// 30 s); jobs may override it per JobRequest.
	TaskTimeout time.Duration
	// CheckInterval is the control-loop tick (default HeartbeatInterval).
	CheckInterval time.Duration
	// MaxAttempts is the default per-vertex overtime cap before a job
	// fails (default 4); jobs may override it.
	MaxAttempts int
	// Batch bounds how many ready vertices one dispatch message may
	// carry (default 1). A batch never mixes jobs.
	Batch int
	// DefaultQuota caps each job's in-flight leased attempts when the
	// JobRequest does not set its own (0 = unlimited).
	DefaultQuota int
	// Policy picks the job that feeds each idle worker (default
	// FairShare).
	Policy Policy
	// Speculate enables speculative re-execution per job, with the same
	// quantile machinery as the single-job master.
	Speculate bool
	// SpecQuantile, SpecMultiplier, SpecMinSamples and SpecFloor tune
	// speculation exactly as in cluster.Options.
	SpecQuantile   float64
	SpecMultiplier float64
	SpecMinSamples int
	SpecFloor      time.Duration
	// Steal enables feeding hungry workers from the most loaded member's
	// undispatched backlog.
	Steal bool
	// Auto hands the shared-pool knobs to the online tuner: Speculate
	// and Steal are forced on, Batch/SpecQuantile/SpecMultiplier become
	// the tuner's starting point, and every control tick may adjust them
	// from dispatch progress, hunger, the worst per-job profile
	// dispersion and speculation outcomes (internal/tune). Adjustments
	// are traced as EvTune events on the fleet recorder and exported via
	// TuneSnapshot.
	Auto bool
	// Cache, when non-nil, is the cross-job content-addressed result
	// store (internal/cas), shared by every job that submits a CacheKey:
	// computable vertices are probed before dispatch (a hit applies the
	// stored block without drawing a lease), completed blocks are
	// written through alongside the checkpoint, and task payloads switch
	// to the keyed wire format, where a block a member already holds is
	// replaced by a content-key reference.
	Cache *cas.Store
	// Clock is the time source for all deadline machinery; nil means the
	// wall clock, tests inject a sched.FakeClock.
	Clock sched.Clock
	// Trace optionally records fleet-level membership events.
	Trace *trace.Recorder
	// RetainJobs is how many finished jobs stay queryable via Snapshot
	// and TraceEvents (default 64).
	RetainJobs int
}

func (o Options) withDefaults() Options {
	if o.Auto {
		// Auto means "mitigate stragglers for me": both mitigation
		// mechanisms arm, and the tuner owns their thresholds.
		o.Speculate = true
		o.Steal = true
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMiss < 1 {
		o.HeartbeatMiss = 3
	}
	if o.TaskTimeout <= 0 {
		o.TaskTimeout = 30 * time.Second
	}
	if o.CheckInterval <= 0 {
		o.CheckInterval = o.HeartbeatInterval
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 4
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.Policy == nil {
		o.Policy = FairShare{}
	}
	if o.SpecQuantile <= 0 || o.SpecQuantile > 1 {
		o.SpecQuantile = 0.95
	}
	if o.SpecMultiplier <= 1 {
		o.SpecMultiplier = 2
	}
	if o.SpecMinSamples < 1 {
		o.SpecMinSamples = 8
	}
	if o.SpecFloor <= 0 {
		o.SpecFloor = o.CheckInterval
	}
	if o.Clock == nil {
		o.Clock = sched.Wall
	}
	if o.RetainJobs < 1 {
		o.RetainJobs = 64
	}
	return o
}

// Snapshot is the fleet's monitoring surface: per-job progress, job-state
// counts, and the autoscaling signals (aggregate queue depth, hunger
// rate, per-job deficit).
type Snapshot struct {
	// Jobs lists running jobs first, then retained finished ones.
	Jobs []JobStatus
	// States counts jobs by state ("running", "done", "failed").
	States map[string]int
	// QueueDepth is the aggregate number of computable vertices queued
	// across running jobs — work the pool has not absorbed yet.
	QueueDepth int
	// Hungers counts hunger beacons received: a high rate means workers
	// drain faster than the fleet feeds them.
	Hungers int64
	// Members is the membership view (states, joins, deaths, ...).
	Members cluster.Snapshot
	// Aggregate rolls every job's Stats up into one ledger.
	Aggregate cluster.Stats
}

// Fleet runs many concurrent DAG jobs over one shared elastic worker
// pool. Create with New, submit jobs with Run (one goroutine per job,
// typically the job service's run slots), stop with Close.
type Fleet[T any] struct {
	opts Options

	ln    net.Listener
	reg   *cluster.Registry
	clock sched.Clock

	inbox chan event

	connMu sync.Mutex
	conns  map[int]*memberConn

	// mu guards the job table, iteration order, every job's ready stack
	// and served tally, and the closed flag; cond (on mu) wakes senders
	// when work or shutdown arrives.
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[int32]*job[T]
	order   []int32 // running jobs, submission order
	doneLog []*job[T]
	nextID  int32
	closed  bool

	done     chan struct{}
	doneOnce sync.Once
	wg       sync.WaitGroup

	hungers atomic.Int64
	stale   atomic.Int64 // results for unknown/finished jobs

	// tuner is the self-tuning controller, non-nil iff Options.Auto.
	// retired (guarded by mu) folds the counters of retired jobs into
	// the tuner's cumulative sample so it stays monotone after jobs
	// leave the running table.
	tuner   *tune.Controller
	retired tune.Sample

	// progressMu/progressC/progressGen let observers (tests) wait for
	// scheduling progress without polling: noteProgress bumps the
	// generation and broadcasts after dispatch grants, applied results,
	// control ticks, and job retirement. Leaf lock — never held while
	// taking mu, connMu, or attachMu.
	progressMu  sync.Mutex
	progressC   *sync.Cond
	progressGen uint64
}

// noteProgress records one unit of scheduling progress for waitProgress
// observers. Cheap enough to call on every dispatch/result/tick.
func (f *Fleet[T]) noteProgress() {
	f.progressMu.Lock()
	f.progressGen++
	f.progressC.Broadcast()
	f.progressMu.Unlock()
}

// progressGeneration snapshots the progress counter; waitProgress blocks
// until it moves past the snapshot.
func (f *Fleet[T]) progressGeneration() uint64 {
	f.progressMu.Lock()
	defer f.progressMu.Unlock()
	return f.progressGen
}

// waitProgress blocks until the progress generation exceeds gen or abort
// is signalled (returns false). Evaluate the condition of interest
// OUTSIDE this call, between generation snapshots, so no wakeup is lost:
// snapshot, check, wait, re-check.
func (f *Fleet[T]) waitProgress(gen uint64, abort <-chan struct{}) bool {
	f.progressMu.Lock()
	defer f.progressMu.Unlock()
	for f.progressGen == gen {
		select {
		case <-abort:
			return false
		default:
		}
		f.progressC.Wait()
	}
	return true
}

// event is one unit of the fleet's serialized input: a message from a
// member, or a connection-failure notice from its pump.
type event struct {
	member int
	msg    comm.Message
	down   bool
}

// memberConn is the fleet-side endpoint of one member.
type memberConn struct {
	id       int
	cn       *comm.Conn
	idle     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once

	// attached tracks which jobs this member holds kernel state for
	// (job-spec sent, job-end not yet). known, present when the fleet
	// has a result store, is the member's content-keyed known-set for
	// the keyed wire format. Both are guarded by attachMu: every Note
	// and Knows must be ordered against the attach/detach frames, and in
	// particular against the Reset that mirrors the worker dropping its
	// block cache when its last job detaches.
	attachMu sync.Mutex
	attached map[int32]bool
	known    *cas.PeerSet
}

func (mc *memberConn) close() {
	mc.stopOnce.Do(func() {
		close(mc.stop)
		mc.cn.Close()
	})
}

func (mc *memberConn) stopped() bool {
	select {
	case <-mc.stop:
		return true
	default:
		return false
	}
}

// New builds a fleet and starts listening on opts.Addr. Workers may join
// immediately; jobs arrive via Run.
func New[T any](opts Options) (*Fleet[T], error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	f := &Fleet[T]{
		opts:  opts,
		ln:    ln,
		reg:   cluster.NewRegistry(opts.Trace, opts.Clock),
		clock: opts.Clock,
		inbox: make(chan event, 256),
		conns: make(map[int]*memberConn),
		jobs:  make(map[int32]*job[T]),
		done:  make(chan struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	f.progressC = sync.NewCond(&f.progressMu)
	if opts.Auto {
		f.tuner = tune.New(tune.DefaultLimits(), opts.Batch,
			opts.SpecQuantile, opts.SpecMultiplier, opts.SpecMinSamples)
	}
	f.wg.Add(3)
	go func() { defer f.wg.Done(); f.acceptLoop() }()
	go func() { defer f.wg.Done(); f.recvLoop() }()
	go func() { defer f.wg.Done(); f.controlLoop() }()
	return f, nil
}

// Addr returns the address the fleet listens on.
func (f *Fleet[T]) Addr() string { return f.ln.Addr().String() }

// Registry exposes the membership table.
func (f *Fleet[T]) Registry() *cluster.Registry { return f.reg }

// Close shuts the fleet down: running jobs fail with ErrFleetClosed,
// workers are dismissed, and the loops drain.
func (f *Fleet[T]) Close() {
	f.doneOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		running := make([]*job[T], 0, len(f.order))
		for _, id := range f.order {
			running = append(running, f.jobs[id])
		}
		f.cond.Broadcast()
		f.mu.Unlock()
		now := f.clock.Now()
		for _, jb := range running {
			jb.finish(ErrFleetClosed, now)
		}
		close(f.done)
		f.ln.Close()
		f.connMu.Lock()
		conns := make([]*memberConn, 0, len(f.conns))
		for _, mc := range f.conns {
			conns = append(conns, mc)
		}
		f.connMu.Unlock()
		for _, mc := range conns {
			_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
			mc.close()
		}
	})
	f.wg.Wait()
}

// ErrFleetClosed fails jobs still running when the fleet shuts down.
var ErrFleetClosed = errors.New("fleet: closed")

// Run submits one job and blocks until it completes, fails, or ctx is
// cancelled. Jobs run concurrently: call Run from one goroutine per job.
func (f *Fleet[T]) Run(ctx context.Context, p core.Problem[T], req JobRequest) (*Result[T], error) {
	req = req.withDefaults(f.opts)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFleetClosed
	}
	f.nextID++
	id := f.nextID
	f.mu.Unlock()

	if f.opts.Auto && !req.Proc.Valid() {
		// Partition advisor: pick the block size from the kernel's cost
		// model and the membership at submission. Workers follow the
		// job-spec frame's Proc, so the choice cannot diverge.
		cm, _ := p.Kernel.(tune.CostModel)
		workers := f.reg.Live()
		if workers < 1 {
			workers = 1
		}
		req.Proc = tune.AdvisePartition(p.Size.Rows, p.Size.Cols, workers, cm)
	}
	jb, err := newJob(id, p, req, f.clock)
	if err != nil {
		return nil, err
	}
	if f.opts.Cache != nil && req.CacheKey != "" {
		jb.cache = f.opts.Cache
		jb.cacheSpec = req.CacheKey
		jb.resultKey = make([]cas.Key, len(jb.graph.Verts))
	}
	frontier, err := jb.restore()
	if err != nil {
		return nil, err
	}
	// Drain the cross-job cache before the job is registered: hits commit
	// without drawing leases, and a fully cached job never touches the
	// pool at all.
	frontier = f.absorbCached(jb, frontier)
	if jb.finished() {
		if err := jb.finalErr(); err != nil {
			return nil, err
		}
		return &Result[T]{Store: jb.store, Stats: jb.stats()}, nil
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		if jb.ckptFile != nil {
			jb.ckptFile.Close()
		}
		return nil, ErrFleetClosed
	}
	f.jobs[id] = jb
	f.order = append(f.order, id)
	jb.ready = append(jb.ready, frontier...)
	jb.tr.Ready(len(jb.ready))
	if jb.parser.Finished() {
		// Fully restored from the checkpoint: nothing to schedule.
		f.mu.Unlock()
		jb.finish(nil, f.clock.Now())
		f.retire(jb)
	} else {
		f.cond.Broadcast()
		f.mu.Unlock()
	}
	f.noteProgress() // the job is admitted and observable

	select {
	case <-ctx.Done():
		jb.finish(ctx.Err(), f.clock.Now())
		f.retire(jb)
	case <-jb.done:
	}
	if err := jb.finalErr(); err != nil {
		return nil, err
	}
	return &Result[T]{Store: jb.store, Stats: jb.stats()}, nil
}

// retire removes a finished job from the running table (idempotent),
// drops its queued work, notifies attached workers to free the job's
// kernel state, and keeps the job queryable in the done log.
func (f *Fleet[T]) retire(jb *job[T]) {
	defer f.noteProgress()
	f.mu.Lock()
	if _, ok := f.jobs[jb.id]; !ok {
		f.mu.Unlock()
		return
	}
	delete(f.jobs, jb.id)
	for i, id := range f.order {
		if id == jb.id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	jb.ready = nil
	// Fold the job's counters into the retired baseline so the tuner's
	// cumulative sample stays monotone after the job leaves the table.
	f.retired.Dispatches += jb.ctrs.Dispatches.Load()
	f.retired.TaskBytes += jb.ctrs.TaskBytes.Load()
	f.retired.Steals += jb.ctrs.Steals.Load()
	f.retired.SpecWon += jb.ctrs.SpecWon.Load()
	f.retired.SpecWasted += jb.ctrs.SpecWasted.Load()
	f.doneLog = append(f.doneLog, jb)
	if over := len(f.doneLog) - f.opts.RetainJobs; over > 0 {
		f.doneLog = append([]*job[T](nil), f.doneLog[over:]...)
	}
	f.cond.Broadcast()
	f.mu.Unlock()

	// Drop whatever the job still had in flight so its leases cannot
	// outlive it (the leak audit already ran in finish), then detach it
	// from every worker that holds its state.
	for w := range jb.leases.Loads() {
		jb.leases.RevokeWorker(w)
	}
	f.connMu.Lock()
	conns := make([]*memberConn, 0, len(f.conns))
	for _, mc := range f.conns {
		conns = append(conns, mc)
	}
	f.connMu.Unlock()
	for _, mc := range conns {
		// attachMu is held across both the map update and the JobEnd send
		// so no sender can interleave a task (or a fresh JobSpec) with the
		// detach: dispatch re-checks jb.finished() under the same lock and
		// drops its batch instead of sending after JobEnd.
		mc.attachMu.Lock()
		if mc.attached[jb.id] {
			delete(mc.attached, jb.id)
			//lint:ignore blocking-under-lock the detach frame must be ordered against this member's task sends, which only attachMu serializes; the write is bounded by the connection's write timeout, and attachMu is a leaf per member
			_ = mc.cn.Send(comm.Message{Kind: comm.KindJobEnd, Job: jb.id})
			if len(mc.attached) == 0 && mc.known != nil {
				// The worker drops its content-addressed block cache when
				// its last job detaches; this JobEnd is that frame, so
				// the master's view of the member's holdings resets on
				// the same ordered boundary.
				mc.known.Reset()
			}
		}
		mc.attachMu.Unlock()
	}
}

// jobByID returns the running or retained job with the given id.
func (f *Fleet[T]) jobByID(id int32) *job[T] {
	f.mu.Lock()
	defer f.mu.Unlock()
	if jb, ok := f.jobs[id]; ok {
		return jb
	}
	for _, jb := range f.doneLog {
		if jb.id == id {
			return jb
		}
	}
	return nil
}

// acceptLoop admits workers for the fleet's whole lifetime.
func (f *Fleet[T]) acceptLoop() {
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return // listener closed in Close
		}
		go f.admit(c)
	}
}

// admit performs the join handshake on one fresh connection. Fleet
// workers carry no single-job digest — per-job specs are verified via the
// attach frames instead.
func (f *Fleet[T]) admit(c net.Conn) {
	cn := comm.NewConn(c, 0)
	hello, err := cn.RecvHello(10 * time.Second)
	if err != nil {
		cn.Close()
		return
	}
	if reason := comm.CheckHello(hello, ""); reason != "" {
		cn.Reject(reason)
		return
	}
	if !hello.Fleet {
		cn.Reject("this master runs a shared fleet; start the worker with -fleet")
		return
	}
	select {
	case <-f.done:
		cn.Reject("fleet shut down")
		return
	default:
	}
	member := f.reg.Admit(hello.Name, c.RemoteAddr().String())
	if err := cn.SendWelcome(comm.Welcome{Version: comm.ProtocolVersion, Member: member.ID}); err != nil {
		f.reg.MarkDead(member.ID)
		cn.Close()
		return
	}
	cn.SetReadIdle(time.Duration(f.opts.HeartbeatMiss+1) * f.opts.HeartbeatInterval)
	cn.SetWriteTimeout(time.Duration(f.opts.HeartbeatMiss+1) * f.opts.HeartbeatInterval)
	mc := &memberConn{
		id:       member.ID,
		cn:       cn,
		idle:     make(chan struct{}, 4),
		stop:     make(chan struct{}),
		attached: make(map[int32]bool),
	}
	if f.opts.Cache != nil {
		mc.known = f.opts.Cache.NewPeerSet()
	}
	f.connMu.Lock()
	f.conns[member.ID] = mc
	f.connMu.Unlock()
	go f.pump(mc)
	go f.senderLoop(mc)
}

// pump reads one member's messages into the fleet inbox; a connection
// error becomes a down event.
func (f *Fleet[T]) pump(mc *memberConn) {
	for {
		msg, err := mc.cn.Recv()
		if err != nil {
			select {
			case f.inbox <- event{member: mc.id, down: true}:
			case <-f.done:
			}
			return
		}
		select {
		case f.inbox <- event{member: mc.id, msg: msg}:
		case <-f.done:
			return
		}
	}
}

// senderLoop feeds one member whenever it is idle: each idle token buys
// one batch, and the policy decides which job the batch comes from.
func (f *Fleet[T]) senderLoop(mc *memberConn) {
	for {
		select {
		case <-mc.idle:
		case <-mc.stop:
			return
		case <-f.done:
			_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
			return
		}
		for {
			jb, ids, ok := f.nextBatch(mc)
			if !ok {
				if f.fleetClosed() {
					_ = mc.cn.Send(comm.Message{Kind: comm.KindEnd})
				}
				return
			}
			if mc.stopped() {
				// The member died while this sender waited for work;
				// hand the vertices back for a live member.
				f.requeue(jb, ids...)
				f.undraw(jb, len(ids))
				return
			}
			if f.dispatch(mc, jb, ids) {
				break
			}
			// Every drawn vertex was already finished or superseded; take
			// the next batch without consuming another idle token.
		}
	}
}

func (f *Fleet[T]) fleetClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// nextBatch blocks until the policy can hand member mc a batch from some
// job, the fleet closes, or the member stops. It returns the chosen job
// and the drawn vertices (LIFO off the job's ready stack, never mixing
// jobs), charging the job's fair-share account for the draw.
func (f *Fleet[T]) nextBatch(mc *memberConn) (*job[T], []int32, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed || mc.stopped() {
			return nil, nil, false
		}
		views := make([]JobView, len(f.order))
		jobs := make([]*job[T], len(f.order))
		for i, id := range f.order {
			jb := f.jobs[id]
			jobs[i] = jb
			views[i] = JobView{
				ID:       id,
				Weight:   jb.req.Weight,
				Priority: jb.req.Priority,
				Ready:    len(jb.ready),
				// Vertices drawn by a concurrent sender but not yet leased
				// count against the quota too, so racing senders cannot
				// overshoot a job's in-flight bound between draw and grant.
				Inflight: jb.leases.Len() + jb.drawn,
				Quota:    jb.req.Quota,
				Served:   jb.served,
			}
		}
		if i := f.opts.Policy.Pick(views); i >= 0 {
			jb := jobs[i]
			n := f.batchCap()
			if q := views[i].Quota; q > 0 {
				if room := q - views[i].Inflight; room < n {
					n = room
				}
			}
			if n < 1 {
				n = 1
			}
			if n > len(jb.ready) {
				n = len(jb.ready)
			}
			ids := make([]int32, n)
			copy(ids, jb.ready[len(jb.ready)-n:])
			jb.ready = jb.ready[:len(jb.ready)-n]
			jb.served += float64(n) / jb.req.Weight
			jb.drawn += n
			return jb, ids, true
		}
		f.cond.Wait()
	}
}

// undraw drops n from jb's drawn-but-not-yet-leased count (see
// nextBatch): called once the batch's vertices are leased, requeued or
// dead, so the quota view stops double-counting them.
func (f *Fleet[T]) undraw(jb *job[T], n int) {
	f.mu.Lock()
	jb.drawn -= n
	// Dropping the drawn charge can open quota room for senders blocked
	// on an at-quota job; wake them to re-evaluate.
	f.cond.Broadcast()
	f.mu.Unlock()
}

// requeue puts vertices back on jb's ready stack and wakes senders.
func (f *Fleet[T]) requeue(jb *job[T], ids ...int32) {
	if len(ids) == 0 {
		return
	}
	f.mu.Lock()
	if _, running := f.jobs[jb.id]; running {
		jb.ready = append(jb.ready, ids...)
		// Requeues were already charged on first dispatch; refund so a
		// job does not pay fair-share twice for work it never kept.
		jb.served -= float64(len(ids)) / jb.req.Weight
		jb.tr.Ready(len(jb.ready))
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// dispatch leases the drawn vertices of job jb to member mc and ships
// them in one job-tagged message, attaching the job's spec first if this
// member has never seen it. Returns false when every vertex turned out to
// be already finished.
func (f *Fleet[T]) dispatch(mc *memberConn, jb *job[T], ids []int32) bool {
	// The draw in nextBatch counted these vertices toward the job's quota;
	// drop that charge once their fate is settled (leases granted, vertices
	// requeued, or the batch dead). The defer runs after every return path
	// below has either granted the lease or unwound it.
	defer f.undraw(jb, len(ids))
	defer f.noteProgress()
	if jb.finished() {
		return false
	}
	now := f.clock.Now()
	// pend holds the registered vertices with their gathered data regions;
	// encoding is deferred so that in cache mode the known-set decisions
	// (full block vs content-key reference) happen under attachMu, ordered
	// against the detach that clears the member's set.
	type pendingTask struct {
		vertex, attempt int32
		deps            []int32
		blocks          []*matrix.Block[T]
	}
	pend := make([]pendingTask, 0, len(ids))
	// held collects speculation-flagged vertices this member already runs
	// the primary attempt of: their flag is restored by register, and they
	// go back on the ready stack for another member to back up.
	var held []int32
	for _, v := range ids {
		attempt, ok, backup, self := f.register(jb, mc.id, v)
		if !ok {
			if self {
				held = append(held, v)
			}
			continue
		}
		deps := jb.graph.Vertex(v).DataPre
		positions := make([]dag.Pos, len(deps))
		for k, d := range deps {
			positions[k] = jb.geom.PosOf(d)
		}
		blocks := jb.store.Gather(positions)
		deadline := now.Add(jb.req.TaskTimeout * time.Duration(len(pend)+1))
		if backup {
			jb.leases.Add(v, mc.id, attempt, now)
			jb.ot.AddConcurrent(v, attempt, deadline)
			jb.ctrs.Speculated.Add(1)
			jb.tr.Speculate(mc.id, v)
		} else {
			jb.leases.Grant(v, mc.id, attempt, now)
			jb.ot.Add(v, attempt, deadline)
		}
		jb.tr.TaskStart(mc.id, v)
		jb.ctrs.Dispatches.Add(1)
		pend = append(pend, pendingTask{vertex: v, attempt: attempt, deps: deps, blocks: blocks})
	}
	if len(held) > 0 {
		f.requeue(jb, held...)
	}
	// Leases and dispatch counters are settled; publish before the send
	// section, which can block under attachMu, so observers see the
	// grants while the wire write is still in flight.
	f.noteProgress()
	if len(pend) == 0 {
		// When the whole draw was backups this member holds the primary
		// of, consume the idle token: drawing again right away could pop
		// the same vertices forever. Another member's sender picks them up.
		return len(held) > 0
	}
	// encode builds each task's payload. Cache mode uses the keyed wire
	// format: blocks the member provably holds become references, the
	// rest ship in full and are noted as held. Must run under attachMu.
	encode := func() ([]comm.TaskEntry, error) {
		entries := make([]comm.TaskEntry, 0, len(pend))
		for _, pt := range pend {
			var payload []byte
			var err error
			if jb.cache != nil && mc.known != nil {
				full := make([]matrix.KeyedBlock[T], 0, len(pt.blocks))
				var refs []matrix.BlockRef
				for i, d := range pt.deps {
					k := jb.resultKey[d]
					if mc.known.Knows(k) {
						refs = append(refs, matrix.BlockRef{Key: [32]byte(k), Rect: pt.blocks[i].Rect})
						jb.ctrs.BlocksSkipped.Add(1)
						continue
					}
					mc.known.Note(k)
					full = append(full, matrix.KeyedBlock[T]{Key: [32]byte(k), Block: pt.blocks[i]})
					jb.ctrs.BlocksShipped.Add(1)
				}
				payload, err = matrix.EncodeBlocksKeyed(jb.p.Codec, full, refs)
			} else {
				jb.ctrs.BlocksShipped.Add(int64(len(pt.blocks)))
				payload, err = matrix.EncodeBlocks(jb.p.Codec, pt.blocks)
			}
			if err != nil {
				return nil, fmt.Errorf("fleet: encoding data region of vertex %d: %w", pt.vertex, err)
			}
			entries = append(entries, comm.TaskEntry{Vertex: pt.vertex, Attempt: pt.attempt, Payload: payload})
		}
		return entries, nil
	}
	// Attach and send under attachMu, serialized against retire's detach:
	// a job observed finished here is being (or has been) detached from
	// workers, so sending now could put a task frame after the JobEnd —
	// the worker would see a task for an unattached job — or re-send the
	// spec after JobEnd and leak the job's kernel state on the worker.
	// Drop the batch instead and unwind the leases granted above.
	mc.attachMu.Lock()
	if jb.finished() {
		mc.attachMu.Unlock()
		for _, pt := range pend {
			jb.leases.ReleaseAttempt(pt.vertex, pt.attempt)
			jb.ot.RemoveAttempt(pt.vertex, pt.attempt)
			jb.noteAttemptGone(pt.vertex, pt.attempt)
			jb.rt.CancelAttempt(pt.vertex, pt.attempt)
		}
		return false
	}
	entries, encErr := encode()
	var err error
	if encErr == nil {
		bytes := 0
		for _, e := range entries {
			bytes += len(e.Payload)
		}
		jb.ctrs.TaskBytes.Add(int64(bytes))
		jb.tr.Dispatch(mc.id, len(entries), bytes)
		var msg comm.Message
		if len(entries) == 1 {
			msg = comm.Message{Kind: comm.KindTask, Job: jb.id, Vertex: entries[0].Vertex, Attempt: entries[0].Attempt, Payload: entries[0].Payload}
		} else {
			jb.ctrs.BatchMessages.Add(1)
			msg = comm.Message{Kind: comm.KindTaskBatch, Job: jb.id, Batch: entries}
		}
		if !mc.attached[jb.id] {
			// The connection is ordered, so the spec always precedes the
			// job's tasks.
			//lint:ignore blocking-under-lock the attach frame and the task must reach the wire without a detach interleaving, which only attachMu serializes; the write is bounded by the connection's write timeout, and attachMu is a leaf per member
			if err = mc.cn.Send(comm.Message{Kind: comm.KindJobSpec, Job: jb.id, Payload: jb.meta}); err == nil {
				mc.attached[jb.id] = true
			}
		}
		if err == nil {
			//lint:ignore blocking-under-lock the task send is serialized against retire's JobEnd by attachMu (PR 6 review invariant); the write is bounded by the connection's write timeout, and attachMu is a leaf per member
			err = mc.cn.Send(msg)
		}
	}
	mc.attachMu.Unlock()
	if encErr != nil {
		jb.finish(encErr, now)
		f.retire(jb)
		return true
	}
	if err != nil {
		// The pump (or heartbeat sweep) will revoke this member's
		// leases, including the ones just granted; nothing to unwind.
		f.memberFailed(mc)
	}
	return true
}

// memberFailed reports a send failure on mc's connection into the inbox.
func (f *Fleet[T]) memberFailed(mc *memberConn) {
	select {
	case f.inbox <- event{member: mc.id, down: true}:
	case <-f.done:
	}
}

// register claims an attempt of v in job jb for a member — rt.Register
// for an ordinary draw, a concurrent backup for a speculation-flagged
// vertex. A member never backs up its own attempt: that draw is refused
// with held=true, the specPending flag restored, and the caller requeues
// the vertex so another member picks up the backup promptly.
func (f *Fleet[T]) register(jb *job[T], member int, v int32) (attempt int32, ok, backup, held bool) {
	jb.specMu.Lock()
	pending := jb.specPending[v]
	delete(jb.specPending, v)
	jb.specMu.Unlock()
	if !pending {
		a, ok := jb.rt.Register(v)
		return a, ok, false, false
	}
	for _, l := range jb.leases.Holders(v) {
		if l.Worker == member {
			jb.specMu.Lock()
			jb.specPending[v] = true
			jb.specMu.Unlock()
			return 0, false, false, true
		}
	}
	a, ok := jb.rt.RegisterBackup(v)
	if !ok {
		return 0, false, false, false
	}
	jb.specMu.Lock()
	jb.backupOf[v] = a
	jb.specMu.Unlock()
	return a, true, true, false
}

// recvLoop serializes membership and result handling for the fleet's
// lifetime.
func (f *Fleet[T]) recvLoop() {
	for {
		select {
		case <-f.done:
			return
		case ev := <-f.inbox:
			if ev.down {
				f.memberDown(ev.member)
				continue
			}
			f.reg.Beat(ev.member) // any traffic proves liveness
			switch ev.msg.Kind {
			case comm.KindIdle:
				f.signalIdle(ev.member)
			case comm.KindHeartbeat:
				f.echoHeartbeat(ev.member)
			case comm.KindLeave:
				f.memberLeave(ev.member)
			case comm.KindHunger:
				f.hungers.Add(1)
				f.feedHungry(ev.member)
			case comm.KindResult:
				f.applyResult(ev.member, ev.msg.Job, ev.msg.Vertex, ev.msg.Attempt, ev.msg.Payload)
				if !ev.msg.More {
					f.signalIdle(ev.member)
				}
			case comm.KindResultBatch:
				for _, e := range ev.msg.Batch {
					f.applyResult(ev.member, ev.msg.Job, e.Vertex, e.Attempt, e.Payload)
				}
				if !ev.msg.More {
					f.signalIdle(ev.member)
				}
			default:
				// A kind the fleet never expects from a worker is
				// protocol corruption or version skew; retire the member
				// so its leases reassign, rather than dropping frames
				// silently.
				f.memberDown(ev.member)
			}
		}
	}
}

func (f *Fleet[T]) signalIdle(member int) {
	f.connMu.Lock()
	mc := f.conns[member]
	f.connMu.Unlock()
	if mc == nil {
		return
	}
	select {
	case mc.idle <- struct{}{}:
	default:
	}
}

func (f *Fleet[T]) echoHeartbeat(member int) {
	f.connMu.Lock()
	mc := f.conns[member]
	f.connMu.Unlock()
	if mc != nil {
		_ = mc.cn.Send(comm.Message{Kind: comm.KindHeartbeat})
	}
}

// feedHungry answers a worker's hunger beacon by stealing
// queued-but-undispatched backlog toward it: across all running jobs,
// the (job, victim) pair with the deepest member backlog gives up the
// newer half of its batch entries, which are cancelled and requeued on
// that job's ready stack, where the hungry member's blocked sender picks
// them up under the same fair-share policy.
func (f *Fleet[T]) feedHungry(member int) {
	if !f.opts.Steal {
		return
	}
	f.mu.Lock()
	queued := 0
	running := make([]*job[T], 0, len(f.order))
	for _, id := range f.order {
		jb := f.jobs[id]
		queued += len(jb.ready)
		running = append(running, jb)
	}
	f.mu.Unlock()
	if queued > 0 {
		// There is queued work already; the hungry member's sender is
		// blocked in nextBatch and will draw it without help.
		return
	}
	var victimJob *job[T]
	victim, deepest := 0, 1
	ownLoad := 0
	for _, jb := range running {
		ownLoad += jb.leases.Load(member)
		for w, n := range jb.leases.Loads() {
			if w != member && n > deepest {
				victimJob, victim, deepest = jb, w, n
			}
		}
	}
	if ownLoad > 0 || victimJob == nil {
		return
	}
	backlog := victimJob.leases.WorkerLeases(victim)
	if len(backlog) < 2 {
		return
	}
	stolen := make([]int32, 0, len(backlog)/2)
	for _, l := range backlog[(len(backlog)+1)/2:] {
		if victimJob.rt.LiveAttempts(l.Vertex) != 1 {
			continue
		}
		victimJob.leases.ReleaseAttempt(l.Vertex, l.Attempt)
		victimJob.ot.RemoveAttempt(l.Vertex, l.Attempt)
		if victimJob.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
			stolen = append(stolen, l.Vertex)
		}
	}
	if len(stolen) > 0 {
		victimJob.ctrs.Steals.Add(int64(len(stolen)))
		victimJob.tr.Steal(member, len(stolen))
		f.requeue(victimJob, stolen...)
	}
}

// applyResult commits one computed vertex to its job. Results for
// unknown or finished jobs (a worker answering after the job retired)
// are dropped.
func (f *Fleet[T]) applyResult(member int, jobID, v, attempt int32, payload []byte) {
	defer f.noteProgress()
	f.mu.Lock()
	jb := f.jobs[jobID]
	f.mu.Unlock()
	if jb == nil {
		f.stale.Add(1)
		return
	}
	if !jb.rt.Accept(v, attempt) {
		jb.ctrs.StaleResults.Add(1)
		return
	}
	jb.ot.Remove(v)
	now := f.clock.Now()
	if l, ok := jb.leases.Find(v, attempt); ok {
		jb.profile.Observe(now.Sub(l.Granted))
	}
	jb.leases.Release(v)
	jb.specMu.Lock()
	if backup, ok := jb.backupOf[v]; ok {
		delete(jb.backupOf, v)
		delete(jb.specPending, v)
		if backup == attempt {
			jb.ctrs.SpecWon.Add(1)
		} else {
			jb.ctrs.SpecWasted.Add(1)
		}
	}
	jb.specMu.Unlock()
	blocks, err := matrix.DecodeBlocks(jb.p.Codec, payload)
	if err != nil || len(blocks) != 1 {
		jb.finish(fmt.Errorf("fleet: bad result payload for vertex %d of job %q from member %d: %v", v, jb.req.Name, member, err), now)
		f.retire(jb)
		return
	}
	if err := jb.commit(v, payload, blocks[0]); err != nil {
		jb.finish(err, now)
		f.retire(jb)
		return
	}
	if jb.cache != nil {
		// The member computed this block, so it holds the output: note the
		// content key so a later dispatch can ship a reference instead.
		// Only while the job is still attached — a detach clears the set,
		// and a note landing after the clear would claim a holding the
		// worker dropped with its runner state.
		f.connMu.Lock()
		mc := f.conns[member]
		f.connMu.Unlock()
		if mc != nil {
			mc.attachMu.Lock()
			if mc.known != nil && mc.attached[jobID] {
				mc.known.Note(jb.resultKey[v])
			}
			mc.attachMu.Unlock()
		}
	}
	f.reg.NoteCompleted(member)
	jb.tr.TaskEnd(member, v)
	jb.ctrs.Tasks.Add(1)
	newly := jb.parser.Complete(v)
	jb.progress()
	if jb.parser.Finished() {
		jb.finish(nil, now)
		f.retire(jb)
		return
	}
	newly = f.absorbCached(jb, newly)
	if jb.finished() {
		return
	}
	f.requeueReady(jb, newly)
}

// absorbCached probes the cross-job result cache for each newly computable
// vertex and commits hits in place, cascading: a hit's completion may open
// further vertices, which are probed in turn. Returns the misses — the
// vertices that still need dispatch. A corrupt cache entry degrades to a
// miss (recompute), never to a wrong result, because commit re-derives the
// content key from the stored payload. If the drain finishes the job it is
// retired here and the empty remainder returned.
func (f *Fleet[T]) absorbCached(jb *job[T], ids []int32) []int32 {
	if jb.cache == nil {
		return ids
	}
	var miss []int32
	work := append([]int32(nil), ids...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		payload, ok := jb.cache.GetBlock(jb.blockKey(v), cas.LayerMaster)
		var b *matrix.Block[T]
		if ok {
			blocks, err := matrix.DecodeBlocks(jb.p.Codec, payload)
			if err == nil && len(blocks) == 1 {
				b = blocks[0]
			}
		}
		if b == nil {
			jb.ctrs.CacheMisses.Add(1)
			miss = append(miss, v)
			continue
		}
		jb.ctrs.CacheHits.Add(1)
		if err := jb.commit(v, payload, b); err != nil {
			jb.finish(err, f.clock.Now())
			f.retire(jb)
			return miss
		}
		work = append(work, jb.parser.Complete(v)...)
		jb.progress()
	}
	if jb.parser.Finished() {
		jb.finish(nil, f.clock.Now())
		f.retire(jb)
	}
	return miss
}

// requeueReady pushes newly computable vertices onto jb's ready stack.
// Unlike requeue it does not refund fair-share (these were never
// dispatched). It broadcasts even with nothing new: the caller just
// released a lease, which may have opened quota room for queued work.
func (f *Fleet[T]) requeueReady(jb *job[T], ids []int32) {
	f.mu.Lock()
	if _, running := f.jobs[jb.id]; running {
		if len(ids) > 0 {
			jb.ready = append(jb.ready, ids...)
			jb.tr.Ready(len(jb.ready))
		}
		f.cond.Broadcast()
	}
	f.mu.Unlock()
}

// memberDown declares a member dead and reassigns its leases across all
// jobs. Idempotent, like the single-job master's.
func (f *Fleet[T]) memberDown(member int) {
	if !f.reg.MarkDead(member) {
		return
	}
	f.revoke(member)
}

func (f *Fleet[T]) memberLeave(member int) {
	if !f.reg.MarkLeft(member) {
		return
	}
	f.revoke(member)
}

// revoke tears down a member's connection and, job by job, puts its
// leased vertices back on that job's ready stack — each vertex returns
// to the job it belongs to, never to another (no cross-job leakage).
// Death revocations do not count toward any job's MaxAttempts.
func (f *Fleet[T]) revoke(member int) {
	f.connMu.Lock()
	mc := f.conns[member]
	delete(f.conns, member)
	f.connMu.Unlock()
	if mc != nil {
		mc.close()
		// Wake any sender blocked in nextBatch on this member.
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	}
	f.mu.Lock()
	running := make([]*job[T], 0, len(f.order))
	for _, id := range f.order {
		running = append(running, f.jobs[id])
	}
	f.mu.Unlock()
	revoked, reassignedTotal := 0, 0
	for _, jb := range running {
		leases := jb.leases.RevokeWorker(member)
		revoked += len(leases)
		var requeue []int32
		for _, l := range leases {
			jb.ot.RemoveAttempt(l.Vertex, l.Attempt)
			jb.noteAttemptGone(l.Vertex, l.Attempt)
			if jb.rt.CancelAttempt(l.Vertex, l.Attempt) == 0 {
				requeue = append(requeue, l.Vertex)
			}
		}
		reassignedTotal += len(requeue)
		f.requeue(jb, requeue...)
	}
	f.reg.NoteRevoked(revoked, reassignedTotal)
}

// controlLoop is the fleet's fault-tolerance thread: heartbeat sweeps at
// the membership level, then per-job overtime expiry, deadline checks and
// speculation flagging.
func (f *Fleet[T]) controlLoop() {
	ticker := f.clock.NewTicker(f.opts.CheckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.done:
			return
		case now := <-ticker.C():
			for _, id := range f.reg.Sweep(now, f.opts.HeartbeatInterval, f.opts.HeartbeatMiss) {
				f.revoke(id)
			}
			f.mu.Lock()
			running := make([]*job[T], 0, len(f.order))
			for _, id := range f.order {
				running = append(running, f.jobs[id])
			}
			f.mu.Unlock()
			for _, jb := range running {
				f.tickJob(jb, now)
			}
			if f.tuner != nil {
				f.tuneTick()
			}
		}
	}
}

// batchCap is the dispatch batch bound in effect right now: the tuner's
// recommendation under Auto, the static option otherwise.
func (f *Fleet[T]) batchCap() int {
	if f.tuner != nil {
		return f.tuner.BatchCap()
	}
	return f.opts.Batch
}

// specParams is the speculation threshold pair in effect right now.
func (f *Fleet[T]) specParams() (quantile, multiplier float64) {
	if f.tuner != nil {
		return f.tuner.SpecParams()
	}
	return f.opts.SpecQuantile, f.opts.SpecMultiplier
}

// tuneTick feeds one control-tick observation to the tuner: counter
// totals summed across running jobs plus the retired baseline, and the
// quantile pair of whichever running job shows the heaviest straggler
// tail — the fleet-wide thresholds must serve its worst case.
func (f *Fleet[T]) tuneTick() {
	f.mu.Lock()
	s := f.retired
	var worst float64
	for _, id := range f.order {
		jb := f.jobs[id]
		s.Dispatches += jb.ctrs.Dispatches.Load()
		s.TaskBytes += jb.ctrs.TaskBytes.Load()
		s.Steals += jb.ctrs.Steals.Load()
		s.SpecWon += jb.ctrs.SpecWon.Load()
		s.SpecWasted += jb.ctrs.SpecWasted.Load()
		n := jb.profile.Samples()
		if n == 0 {
			continue
		}
		p50, _ := jb.profile.Quantile(0.5)
		p95, _ := jb.profile.Quantile(0.95)
		if p50 <= 0 {
			continue
		}
		if d := float64(p95) / float64(p50); s.ProfileSamples == 0 || d > worst {
			worst = d
			s.ProfileP50, s.ProfileP95, s.ProfileSamples = p50, p95, n
		}
	}
	f.mu.Unlock()
	s.Hungers = f.hungers.Load()
	if d := f.tuner.Tick(s); d.Changed {
		f.opts.Trace.Tune(d.BatchCap, d.Reason)
	}
}

// TuneSnapshot reports the self-tuner's current recommendations — what
// the /metrics exposition exports as easyhps_tune_* gauges. The zero
// snapshot (ok=false) means the fleet runs with static knobs.
func (f *Fleet[T]) TuneSnapshot() (tune.Snapshot, bool) {
	if f.tuner == nil {
		return tune.Snapshot{}, false
	}
	return f.tuner.Snapshot(), true
}

// tickJob applies one control tick to one job: overtime expiry with the
// job's own MaxAttempts cap (a poisoned job fails alone), the job
// deadline, and speculation flagging. Requeues and failures stay inside
// the job's lease/attempt namespace.
func (f *Fleet[T]) tickJob(jb *job[T], now time.Time) {
	defer f.noteProgress()
	if jb.finished() {
		return
	}
	if !jb.deadline.IsZero() && now.After(jb.deadline) {
		jb.finish(fmt.Errorf("fleet: job %q exceeded its %v timeout with %d vertices remaining",
			jb.req.Name, jb.req.Timeout, jb.parser.Remaining()), now)
		f.retire(jb)
		return
	}
	var requeue []int32
	for _, e := range jb.ot.ExpireBefore(now) {
		jb.leases.ReleaseAttempt(e.ID, e.Attempt)
		jb.noteAttemptGone(e.ID, e.Attempt)
		jb.timeouts[e.ID]++
		if jb.timeouts[e.ID] >= jb.req.MaxAttempts {
			jb.finish(fmt.Errorf("fleet: job %q: vertex %d timed out %d times (MaxAttempts); giving up",
				jb.req.Name, e.ID, jb.timeouts[e.ID]), now)
			f.retire(jb)
			return
		}
		if jb.rt.CancelAttempt(e.ID, e.Attempt) == 0 {
			jb.ctrs.Redistributions.Add(1)
			requeue = append(requeue, e.ID)
		}
	}
	f.requeue(jb, requeue...)
	if f.opts.Speculate {
		f.maybeSpeculate(jb)
	}
}

// maybeSpeculate flags jb's straggling attempts for backup dispatch,
// with the same profile-threshold machinery as the single-job master but
// a per-job budget, so one job's stragglers cannot spend the pool's
// entire speculation allowance.
func (f *Fleet[T]) maybeSpeculate(jb *job[T]) {
	f.mu.Lock()
	queued := len(jb.ready)
	f.mu.Unlock()
	if queued > 0 {
		return
	}
	q, mult := f.specParams()
	threshold, ok := jb.profile.Threshold(q, mult, f.opts.SpecFloor, f.opts.SpecMinSamples)
	if !ok {
		return
	}
	budget := f.reg.Live()
	var flagged []int32
	for _, l := range jb.leases.OlderThan(f.clock.Now().Add(-threshold)) {
		if budget == 0 {
			break
		}
		if jb.rt.LiveAttempts(l.Vertex) != 1 {
			continue
		}
		jb.specMu.Lock()
		skip := jb.specPending[l.Vertex]
		if !skip {
			jb.specPending[l.Vertex] = true
		}
		jb.specMu.Unlock()
		if skip {
			continue
		}
		flagged = append(flagged, l.Vertex)
		budget--
	}
	f.requeueReady(jb, flagged)
}

// TraceEvents returns the recorded scheduling events of the named job
// (running or retained), or nil when unknown.
func (f *Fleet[T]) TraceEvents(name string) []trace.Event {
	f.mu.Lock()
	var found *job[T]
	for _, id := range f.order {
		if jb := f.jobs[id]; jb.req.Name == name {
			found = jb
		}
	}
	if found == nil {
		for _, jb := range f.doneLog {
			if jb.req.Name == name {
				found = jb // latest retained wins
			}
		}
	}
	f.mu.Unlock()
	if found == nil {
		return nil
	}
	return found.tr.Events()
}

// Snapshot assembles the monitoring view: per-job progress and deficit,
// job-state counts, aggregate queue depth and hunger count, membership,
// and the race-free roll-up of every job's Stats.
func (f *Fleet[T]) Snapshot() Snapshot {
	f.mu.Lock()
	type row struct {
		jb     *job[T]
		ready  int
		drawn  int
		served float64
	}
	rows := make([]row, 0, len(f.order)+len(f.doneLog))
	queueDepth := 0
	maxServed := 0.0
	for _, id := range f.order {
		jb := f.jobs[id]
		rows = append(rows, row{jb, len(jb.ready), jb.drawn, jb.served})
		queueDepth += len(jb.ready)
		if jb.served > maxServed {
			maxServed = jb.served
		}
	}
	running := len(rows)
	for _, jb := range f.doneLog {
		rows = append(rows, row{jb, 0, 0, jb.served})
	}
	f.mu.Unlock()

	s := Snapshot{
		States:     map[string]int{"running": 0, "done": 0, "failed": 0},
		QueueDepth: queueDepth,
		Hungers:    f.hungers.Load(),
		Members:    f.reg.Metrics(),
	}
	for i, r := range rows {
		jb := r.jb
		st := JobStatus{
			ID:       jb.id,
			Name:     jb.req.Name,
			Done:     jb.graph.N - jb.parser.Remaining(),
			Total:    jb.graph.N,
			Ready:    r.ready,
			Inflight: jb.leases.Len() + r.drawn,
			Weight:   jb.req.Weight,
			Priority: jb.req.Priority,
			Stats:    jb.stats(),
		}
		if i < running {
			st.State = "running"
			st.Deficit = maxServed - r.served
		} else if jb.finalErr() != nil {
			st.State = "failed"
		} else {
			st.State = "done"
		}
		s.States[st.State]++
		s.Aggregate.Add(st.Stats)
		s.Jobs = append(s.Jobs, st)
	}
	joins, leaves, deaths, revoked, reassigned := f.reg.MembershipCounts()
	s.Aggregate.Joins = joins
	s.Aggregate.Leaves = leaves
	s.Aggregate.Deaths = deaths
	s.Aggregate.LeasesRevoked = revoked
	s.Aggregate.Reassigned = reassigned
	return s
}
