package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/trace"
	"repro/internal/tune"
)

// An Auto fleet over real TCP: no speculation/steal/batch knobs are set
// by hand, two jobs share three workers, and both must finish
// bit-identically to their sequential references while the controller
// adjusts the shared knobs at least once (a run this size crosses many
// control ticks with dispatch progress). Every adjustment must surface
// as an EvTune event on the fleet recorder.
func TestFleetAutoTunesOverTCP(t *testing.T) {
	tr := trace.New()
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		CheckInterval:     10 * time.Millisecond,
		TaskTimeout:       20 * time.Second,
		Auto:              true,
		Trace:             tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.opts.Speculate || !f.opts.Steal {
		t.Fatal("Auto did not arm speculation and stealing")
	}

	var wwg sync.WaitGroup
	defer wwg.Wait() // after stopWorkers below: workers exit on cancel
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			_ = RunWorker(wctx, testBuilder, WorkerOptions{
				Addr:              f.Addr(),
				Name:              name,
				HeartbeatInterval: 50 * time.Millisecond,
				Run:               core.Config{Threads: 2},
				TaskDelay:         func() time.Duration { return 2 * time.Millisecond },
				HungerAfter:       20 * time.Millisecond,
			})
		}()
	}

	// Explicit partitions keep the DAG sizes fixed regardless of how many
	// workers have joined at submission (the advisor's membership-driven
	// choice is covered by the core and sim tests); what is under test
	// here is the online batch/speculation tuning on the shared pool.
	jobs := []string{"edit", "nussinov"}
	type outcome struct {
		res *Result[int32]
		err error
	}
	results := make([]outcome, len(jobs))
	var jwg sync.WaitGroup
	for i, name := range jobs {
		prob, _ := mustProblem(t, name)
		jwg.Add(1)
		go func(i int, name string, prob core.Problem[int32]) {
			defer jwg.Done()
			res, err := f.Run(context.Background(), prob, JobRequest{Name: name, Proc: dag.Square(8)})
			results[i] = outcome{res, err}
		}(i, name, prob)
	}
	jwg.Wait()

	for i, name := range jobs {
		if results[i].err != nil {
			t.Fatalf("job %s failed: %v", name, results[i].err)
		}
		_, want := mustProblem(t, name)
		checkMatrix(t, name, results[i].res.Store.Assemble(), want)
	}

	snap, ok := f.TuneSnapshot()
	if !ok {
		t.Fatal("Auto fleet reports no tune snapshot")
	}
	lim := tune.DefaultLimits()
	if snap.BatchCap < lim.MinBatch || snap.BatchCap > lim.MaxBatch {
		t.Fatalf("batch cap %d outside [%d, %d]", snap.BatchCap, lim.MinBatch, lim.MaxBatch)
	}
	if snap.Adjustments == 0 {
		t.Fatal("controller made no adjustments over two full jobs")
	}
	var tunes int64
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvTune {
			tunes++
		}
	}
	if tunes != snap.Adjustments {
		t.Fatalf("EvTune events = %d, adjustments = %d; every adjustment must be traced", tunes, snap.Adjustments)
	}
}
