package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/sched"
)

// testProblem builds the deterministic DP instance (and its sequential
// reference) for one fleet test job, keyed by name, so the worker-side
// builder can reconstruct the identical problem from an attach frame.
func testProblem(name string) (core.Problem[int32], [][]int32, error) {
	switch name {
	case "edit":
		e := dp.NewEditDistance(dp.RandomDNA(64, 11), dp.RandomDNA(64, 12))
		return e.Problem(), e.Sequential(), nil
	case "nussinov":
		nu := dp.NewNussinov(dp.RandomRNA(64, 13))
		return nu.Problem(), nu.Sequential(), nil
	case "swgg":
		s := dp.NewSWGG(dp.RandomDNA(48, 14), dp.RandomDNA(48, 15))
		return s.Problem(), s.Sequential(), nil
	case "healthy":
		e := dp.NewEditDistance(dp.RandomDNA(64, 21), dp.RandomDNA(64, 22))
		return e.Problem(), e.Sequential(), nil
	case "poisoned":
		e := dp.NewEditDistance(dp.RandomDNA(64, 23), dp.RandomDNA(64, 24))
		return e.Problem(), e.Sequential(), nil
	case "ckpt":
		e := dp.NewEditDistance(dp.RandomDNA(32, 31), dp.RandomDNA(32, 32))
		return e.Problem(), e.Sequential(), nil
	}
	return core.Problem[int32]{}, nil, fmt.Errorf("unknown test job %q", name)
}

func mustProblem(t *testing.T, name string) (core.Problem[int32], [][]int32) {
	t.Helper()
	p, want, err := testProblem(name)
	if err != nil {
		t.Fatal(err)
	}
	return p, want
}

// testBuilder is the worker-side half of testProblem.
func testBuilder(meta JobMeta) (core.Problem[int32], error) {
	p, _, err := testProblem(meta.Name)
	return p, err
}

func checkMatrix(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: [%d][%d] = %d, want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// waitUntil blocks until cond holds, woken by the fleet's progress
// notifier instead of polling: snapshot the generation, evaluate cond,
// then wait for the generation to move before re-checking, so no
// broadcast between check and wait is lost. The real-time timer only
// bounds a wedged fleet.
func waitUntil(t *testing.T, f *Fleet[int32], what string, cond func() bool) {
	t.Helper()
	timedOut := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() {
		close(timedOut)
		f.noteProgress()
	})
	defer timer.Stop()
	for {
		gen := f.progressGeneration()
		if cond() {
			return
		}
		select {
		case <-timedOut:
			t.Fatalf("timed out waiting for %s", what)
		default:
		}
		f.waitProgress(gen, timedOut)
	}
}

// killProxy is a TCP relay the test can sever abruptly, simulating a
// worker crash (RST/close rather than a graceful Leave frame).
type killProxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
	wg     sync.WaitGroup
}

func newKillProxy(t *testing.T, target string) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killProxy{ln: ln, target: target}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", p.target)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, c, up)
			p.mu.Unlock()
			go func() { _, _ = io.Copy(up, c); up.Close(); c.Close() }()
			go func() { _, _ = io.Copy(c, up); up.Close(); c.Close() }()
		}
	}()
	return p
}

func (p *killProxy) Addr() string { return p.ln.Addr().String() }

// Kill severs every proxied connection at once.
func (p *killProxy) Kill() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *killProxy) Close() {
	p.ln.Close()
	p.Kill()
	p.wg.Wait()
}

// TestFleetConcurrentJobsWorkerKill is the shared-fleet integration test:
// three different DP jobs run concurrently over four workers, one worker
// is killed mid-run through a proxy, and every job must still assemble a
// matrix bit-identical to its sequential reference with a clean per-job
// lease audit.
func TestFleetConcurrentJobsWorkerKill(t *testing.T) {
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		TaskTimeout:       20 * time.Second,
		Batch:             2,
		Speculate:         true,
		Steal:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	proxy := newKillProxy(t, f.Addr())
	defer proxy.Close()

	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	var wwg sync.WaitGroup
	startWorker := func(addr, name string, hunger time.Duration) {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			_ = RunWorker(wctx, testBuilder, WorkerOptions{
				Addr:              addr,
				Name:              name,
				HeartbeatInterval: 50 * time.Millisecond,
				Run:               core.Config{Threads: 2, Batch: 2},
				TaskDelay:         func() time.Duration { return 3 * time.Millisecond },
				HungerAfter:       hunger,
			})
		}()
	}
	startWorker(f.Addr(), "w0", 30*time.Millisecond)
	startWorker(f.Addr(), "w1", 0)
	startWorker(f.Addr(), "w2", 0)
	// The fourth worker joins through the proxy so the test can sever its
	// connection mid-run.
	startWorker(proxy.Addr(), "victim", 0)

	jobs := []string{"edit", "nussinov", "swgg"}
	type outcome struct {
		res *Result[int32]
		err error
	}
	results := make([]outcome, len(jobs))
	var jwg sync.WaitGroup
	for i, name := range jobs {
		prob, _ := mustProblem(t, name)
		jwg.Add(1)
		go func(i int, name string, prob core.Problem[int32]) {
			defer jwg.Done()
			res, err := f.Run(context.Background(), prob, JobRequest{Name: name, Weight: float64(i + 1)})
			results[i] = outcome{res, err}
		}(i, name, prob)
	}

	// Sever the proxied worker once the fleet is demonstrably mid-run.
	waitUntil(t, f, "mid-run progress", func() bool {
		return f.Snapshot().Aggregate.Tasks >= 16
	})
	proxy.Kill()

	jwg.Wait()
	for i, name := range jobs {
		if results[i].err != nil {
			t.Fatalf("job %s failed: %v", name, results[i].err)
		}
		_, want := mustProblem(t, name)
		checkMatrix(t, name, results[i].res.Store.Assemble(), want)
		if leaked := results[i].res.Stats.Leaked; leaked != 0 {
			t.Fatalf("job %s leaked %d attempts/leases", name, leaked)
		}
		if len(f.TraceEvents(name)) == 0 {
			t.Fatalf("job %s recorded no trace events", name)
		}
	}
	snap := f.Snapshot()
	if snap.States["done"] != len(jobs) || snap.States["running"] != 0 || snap.States["failed"] != 0 {
		t.Fatalf("job states = %v, want %d done", snap.States, len(jobs))
	}
	if snap.Aggregate.Deaths < 1 {
		t.Fatalf("deaths = %d, want the killed worker declared dead", snap.Aggregate.Deaths)
	}
	if snap.Aggregate.Tasks < int64(16) {
		t.Fatalf("aggregate tasks = %d, want the roll-up to count all jobs", snap.Aggregate.Tasks)
	}
	stopWorkers()
	f.Close()
	wwg.Wait()
}

// runSwallowDriver joins the fleet as a protocol-driver worker that
// computes every job honestly except the named one, whose tasks it
// swallows — answering nothing while claiming idleness, so the fleet
// keeps scheduling around the black hole. Returns on KindEnd.
func runSwallowDriver(addr, swallow string) error {
	cn, _, err := comm.DialHello(addr, comm.Hello{Fleet: true, Name: "driver"}, 5*time.Second)
	if err != nil {
		return err
	}
	defer cn.Close()
	runners := make(map[int32]*core.TaskRunner[int32])
	swallowed := make(map[int32]bool)
	if err := cn.Send(comm.Message{Kind: comm.KindIdle}); err != nil {
		return err
	}
	for {
		msg, err := cn.Recv()
		if err != nil {
			return err
		}
		switch msg.Kind {
		case comm.KindJobSpec:
			var meta JobMeta
			if err := json.Unmarshal(msg.Payload, &meta); err != nil {
				return err
			}
			if meta.Name == swallow {
				swallowed[meta.Job] = true
				continue
			}
			p, _, err := testProblem(meta.Name)
			if err != nil {
				return err
			}
			r, err := core.NewTaskRunner(p, core.Config{ProcPartition: meta.Proc, Threads: 1})
			if err != nil {
				return err
			}
			runners[meta.Job] = r
		case comm.KindTask:
			if swallowed[msg.Job] {
				if err := cn.Send(comm.Message{Kind: comm.KindIdle}); err != nil {
					return err
				}
				continue
			}
			r := runners[msg.Job]
			if r == nil {
				return fmt.Errorf("task for unattached job %d", msg.Job)
			}
			out, err := r.Run(msg.Vertex, msg.Payload)
			if err != nil {
				return err
			}
			if err := cn.Send(comm.Message{Kind: comm.KindResult, Job: msg.Job, Vertex: msg.Vertex, Attempt: msg.Attempt, Payload: out}); err != nil {
				return err
			}
		case comm.KindJobEnd, comm.KindHeartbeat:
		case comm.KindEnd:
			return nil
		}
	}
}

// TestFleetPoisonedJobIsolationFakeClock drives the per-job overtime path
// on a FakeClock: a job whose tasks a worker swallows must burn through
// its own MaxAttempts and fail alone, while a healthy job sharing the
// same worker completes bit-identically — the tenant-isolation contract.
func TestFleetPoisonedJobIsolationFakeClock(t *testing.T) {
	fake := sched.NewFakeClock(time.Unix(0, 0))
	const maxAttempts = 3
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: time.Hour, // keep the membership sweep inert
		CheckInterval:     time.Second,
		TaskTimeout:       time.Hour, // jobs override; healthy never expires
		MaxAttempts:       maxAttempts,
		Clock:             fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fake.BlockUntilTickers(1)

	healthyProb, healthyWant := mustProblem(t, "healthy")
	poisonProb, _ := mustProblem(t, "poisoned")

	driverDone := make(chan error, 1)
	go func() { driverDone <- runSwallowDriver(f.Addr(), "poisoned") }()

	type outcome struct {
		res *Result[int32]
		err error
	}
	healthyCh := make(chan outcome, 1)
	poisonCh := make(chan outcome, 1)
	go func() {
		res, err := f.Run(context.Background(), healthyProb, JobRequest{Name: "healthy"})
		healthyCh <- outcome{res, err}
	}()
	go func() {
		res, err := f.Run(context.Background(), poisonProb, JobRequest{
			Name:        "poisoned",
			TaskTimeout: 500 * time.Millisecond,
			Quota:       2, // the poisoned job's retries stay bounded
		})
		poisonCh <- outcome{res, err}
	}()

	stats := func(name string) cluster.Stats {
		for _, j := range f.Snapshot().Jobs {
			if j.Name == name {
				return j.Stats
			}
		}
		return cluster.Stats{}
	}

	for round := 1; round <= maxAttempts; round++ {
		round := round
		waitUntil(t, f, "poisoned dispatch", func() bool {
			return stats("poisoned").Dispatches >= int64(round)
		})
		fake.Advance(f.opts.CheckInterval)
		if round < maxAttempts {
			waitUntil(t, f, "overtime redistribution", func() bool {
				return stats("poisoned").Redistributions >= int64(round)
			})
		}
	}

	pe := <-poisonCh
	if pe.err == nil || !strings.Contains(pe.err.Error(), "MaxAttempts") {
		t.Fatalf("poisoned job error = %v, want a MaxAttempts abort", pe.err)
	}
	he := <-healthyCh
	if he.err != nil {
		t.Fatalf("healthy job failed alongside the poisoned one: %v", he.err)
	}
	checkMatrix(t, "healthy", he.res.Store.Assemble(), healthyWant)
	if he.res.Stats.Leaked != 0 {
		t.Fatalf("healthy job leaked %d attempts/leases", he.res.Stats.Leaked)
	}
	snap := f.Snapshot()
	if snap.States["failed"] != 1 || snap.States["done"] != 1 {
		t.Fatalf("job states = %v, want one failed and one done", snap.States)
	}
	f.Close()
	<-driverDone // either nil (KindEnd) or the close race's conn error
}

// TestFleetNextBatchWeightedFairShare drives the policy through the real
// nextBatch path with prefilled ready stacks: the per-job draw counts
// must converge to the weight ratio and the normalized-service gap stay
// within one dispatch quantum.
func TestFleetNextBatchWeightedFairShare(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prob, _ := mustProblem(t, "edit")
	mk := func(id int32, weight float64) *job[int32] {
		t.Helper()
		jb, err := newJob(id, prob, JobRequest{Name: fmt.Sprintf("j%d", id), Weight: weight}.withDefaults(f.opts), f.clock)
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); v < 1024; v++ {
			jb.ready = append(jb.ready, v)
		}
		f.mu.Lock()
		f.jobs[id] = jb
		f.order = append(f.order, id)
		f.mu.Unlock()
		return jb
	}
	j1 := mk(1, 1)
	j2 := mk(2, 3)
	mc := &memberConn{stop: make(chan struct{})}
	counts := map[int32]int{}
	for i := 0; i < 400; i++ {
		jb, ids, ok := f.nextBatch(mc)
		if !ok {
			t.Fatal("nextBatch refused with work queued")
		}
		counts[jb.id] += len(ids)
	}
	if got, want := counts[2], 3*counts[1]; got < want-4 || got > want+4 {
		t.Fatalf("dispatch counts %v diverge from the 1:3 weight ratio", counts)
	}
	f.mu.Lock()
	gap := j1.served - j2.served
	f.mu.Unlock()
	if gap < -1.000001 || gap > 1.000001 {
		t.Fatalf("normalized-service gap %v exceeds one dispatch quantum", gap)
	}
}

// TestFleetNextBatchQuotaClampsBatch verifies the isolation bound at the
// draw site: a batch never exceeds the job's remaining quota room, and a
// stopped member's draw returns instead of blocking at quota.
func TestFleetNextBatchQuotaClampsBatch(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prob, _ := mustProblem(t, "edit")
	jb, err := newJob(1, prob, JobRequest{Name: "q", Quota: 3}.withDefaults(f.opts), f.clock)
	if err != nil {
		t.Fatal(err)
	}
	jb.ready = []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	f.mu.Lock()
	f.jobs[1] = jb
	f.order = append(f.order, 1)
	f.mu.Unlock()

	mc := &memberConn{stop: make(chan struct{})}
	_, ids, ok := f.nextBatch(mc)
	if !ok || len(ids) != 3 {
		t.Fatalf("draw = (%v, %v), want a quota-clamped batch of 3", ids, ok)
	}
	// With the three leases in flight the job is at quota; a stopped
	// member must hand back control rather than wait forever.
	now := f.clock.Now()
	for i, v := range ids {
		jb.leases.Grant(v, 1, int32(i+1), now)
	}
	close(mc.stop)
	if _, _, ok := f.nextBatch(mc); ok {
		t.Fatal("stopped member still drew a batch")
	}
}

// TestFleetDispatchRetireOrdering pins the per-connection frame order
// around retirement: a batch racing the job's finish is dropped with its
// fresh lease unwound rather than sent, so a worker always sees
// JobSpec … tasks … JobEnd — never a task after the detach (which would
// kill the worker) and never a re-attach after JobEnd (which would leak
// the job's kernel state on the worker).
func TestFleetDispatchRetireOrdering(t *testing.T) {
	f, err := New[int32](Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prob, _ := mustProblem(t, "nussinov")
	jb, err := newJob(1, prob, JobRequest{Name: "order"}.withDefaults(f.opts), f.clock)
	if err != nil {
		t.Fatal(err)
	}
	insertJob(t, f, jb)
	roots := jb.parser.InitialReady()
	if len(roots) < 2 {
		t.Fatalf("need two dependency-free vertices, got %d", len(roots))
	}

	// A real socket pair so the dispatch and detach frames cross a live
	// ordered connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvCh := make(chan *comm.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srvCh <- comm.NewConn(c, 0)
	}()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	worker := comm.NewConn(wc, 0)
	defer worker.Close()
	sc := <-srvCh
	defer sc.Close()
	mc := &memberConn{id: 1, cn: sc, idle: make(chan struct{}, 1), stop: make(chan struct{}), attached: make(map[int32]bool)}
	f.connMu.Lock()
	f.conns[1] = mc
	f.connMu.Unlock()

	// Mimic nextBatch's drawn charge so dispatch's undraw balances.
	draw := func() {
		f.mu.Lock()
		jb.drawn++
		f.mu.Unlock()
	}

	draw()
	if !f.dispatch(mc, jb, []int32{roots[0]}) {
		t.Fatal("dispatch refused a live job")
	}
	for _, want := range []comm.Kind{comm.KindJobSpec, comm.KindTask} {
		msg, err := worker.Recv()
		if err != nil || msg.Kind != want {
			t.Fatalf("worker got (%v, %v), want kind %v", msg.Kind, err, want)
		}
	}

	// Race the serialized re-check: hold the attach lock so a second
	// dispatch blocks right before its send, finish the job inside that
	// window, then let it through — the batch must be dropped and the
	// lease it granted unwound, not sent after the detach.
	draw()
	mc.attachMu.Lock()
	dispatched := make(chan bool, 1)
	go func() { dispatched <- f.dispatch(mc, jb, []int32{roots[1]}) }()
	waitUntil(t, f, "second dispatch leasing", func() bool { return jb.leases.Len() == 2 })
	jb.finish(nil, f.clock.Now())
	mc.attachMu.Unlock()
	if <-dispatched {
		t.Fatal("dispatch shipped a batch for a finishing job")
	}
	if got := jb.rt.LiveAttempts(roots[1]); got != 0 {
		t.Fatalf("dropped batch left %d live attempts", got)
	}
	if got := jb.leases.Len(); got != 1 {
		t.Fatalf("leases = %d after the dropped batch, want only the first dispatch's", got)
	}

	// Retirement detaches: the very next frame is JobEnd, and a late
	// dispatch afterwards neither sends nor re-attaches.
	f.retire(jb)
	msg, err := worker.Recv()
	if err != nil || msg.Kind != comm.KindJobEnd {
		t.Fatalf("worker got (%v, %v) after retirement, want JobEnd with no interleaved task", msg.Kind, err)
	}
	if got := jb.leases.Len(); got != 0 {
		t.Fatalf("retire left %d leases", got)
	}
	draw()
	if f.dispatch(mc, jb, []int32{roots[1]}) {
		t.Fatal("dispatch shipped a batch for a retired job")
	}
	mc.attachMu.Lock()
	attached := mc.attached[jb.id]
	mc.attachMu.Unlock()
	if attached {
		t.Fatal("retired job still attached to the member")
	}
}

// TestFleetCheckpointResume runs a checkpointed job to completion, then
// resubmits it to a fresh fleet with no workers at all: the entire run
// must replay from the checkpoint, bit-identically.
func TestFleetCheckpointResume(t *testing.T) {
	req := JobRequest{Name: "ckpt", CheckpointPath: t.TempDir() + "/job.ckpt"}
	prob, want := mustProblem(t, "ckpt")

	f1, err := New[int32](Options{Addr: "127.0.0.1:0", HeartbeatInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	go func() {
		_ = RunWorker(wctx, testBuilder, WorkerOptions{
			Addr:              f1.Addr(),
			HeartbeatInterval: 50 * time.Millisecond,
			Run:               core.Config{Threads: 2},
		})
	}()
	r1, err := f1.Run(context.Background(), prob, req)
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	checkMatrix(t, "first run", r1.Store.Assemble(), want)
	if r1.Stats.Leaked != 0 {
		t.Fatalf("first run leaked %d attempts/leases", r1.Stats.Leaked)
	}

	f2, err := New[int32](Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	r2, err := f2.Run(context.Background(), prob, req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Restored != r1.Stats.Tasks {
		t.Fatalf("restored %d vertices, want %d", r2.Stats.Restored, r1.Stats.Tasks)
	}
	checkMatrix(t, "restored run", r2.Store.Assemble(), want)
}

// TestRunWorkerRefusesSkew verifies the worker-side attach checks: a
// corrupted digest and a builder whose problem size diverges from the
// master's are both refused at attach time, not mid-run.
func TestRunWorkerRefusesSkew(t *testing.T) {
	serve := func(t *testing.T, meta JobMeta) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			cn := comm.NewConn(c, 0)
			if _, err := cn.RecvHello(2 * time.Second); err != nil {
				return
			}
			_ = cn.SendWelcome(comm.Welcome{Version: comm.ProtocolVersion, Member: 1})
			payload, _ := json.Marshal(meta)
			_ = cn.Send(comm.Message{Kind: comm.KindJobSpec, Job: meta.Job, Payload: payload})
		}()
		return ln.Addr().String()
	}

	t.Run("digest", func(t *testing.T) {
		meta := JobMeta{Job: 1, Name: "edit", Rows: 8, Cols: 8, Digest: "not-the-digest"}
		addr := serve(t, meta)
		err := RunWorker(context.Background(), testBuilder, WorkerOptions{Addr: addr, DialTimeout: 2 * time.Second})
		if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
			t.Fatalf("RunWorker = %v, want a digest-mismatch refusal", err)
		}
	})
	t.Run("builder size", func(t *testing.T) {
		meta := JobMeta{Job: 1, Name: "edit", Rows: 3, Cols: 3, Proc: dag.Size{Rows: 1, Cols: 1}}
		meta.Digest = meta.digest()
		addr := serve(t, meta)
		err := RunWorker(context.Background(), testBuilder, WorkerOptions{Addr: addr, DialTimeout: 2 * time.Second})
		if err == nil || !strings.Contains(err.Error(), "builder/registry skew") {
			t.Fatalf("RunWorker = %v, want a builder/registry-skew refusal", err)
		}
	})
}
