package fleet

import (
	"math"
	"testing"
)

// TestFairShareWeightedConvergence simulates the dispatch loop over two
// jobs with skewed weights: each pick charges the chosen job 1/Weight of
// normalized service, exactly as nextBatch does. The dispatch counts must
// converge to the weight ratio and the deficit (gap between normalized
// services) must stay bounded by one dispatch quantum.
func TestFairShareWeightedConvergence(t *testing.T) {
	views := []JobView{
		{ID: 1, Weight: 1, Ready: 1 << 20},
		{ID: 2, Weight: 3, Ready: 1 << 20},
	}
	var p FairShare
	counts := make([]int, len(views))
	const picks = 4000
	for i := 0; i < picks; i++ {
		j := p.Pick(views)
		if j < 0 {
			t.Fatalf("pick %d: no job chosen with both eligible", i)
		}
		counts[j]++
		views[j].Served += 1 / views[j].Weight
	}
	// 1:3 weights over 4000 picks → 1000:3000, within float drift.
	if got, want := counts[1], 3*counts[0]; math.Abs(float64(got-want)) > 4 {
		t.Fatalf("dispatch counts %v do not match the 1:3 weight ratio", counts)
	}
	// The deficit never exceeds one dispatch quantum of the lightest job.
	if d := math.Abs(views[0].Served - views[1].Served); d > 1+1e-9 {
		t.Fatalf("normalized service diverged: |%v - %v| = %v", views[0].Served, views[1].Served, d)
	}
}

// TestFairShareEqualWeightsAlternate pins the tie-break: equal weights
// alternate strictly (ties keep the earlier submission).
func TestFairShareEqualWeightsAlternate(t *testing.T) {
	views := []JobView{
		{ID: 1, Weight: 1, Ready: 10},
		{ID: 2, Weight: 1, Ready: 10},
	}
	var p FairShare
	want := []int{0, 1, 0, 1, 0, 1}
	for i, w := range want {
		j := p.Pick(views)
		if j != w {
			t.Fatalf("pick %d = job index %d, want %d", i, j, w)
		}
		views[j].Served++
	}
}

// TestFairSharePriorityClasses verifies a higher class preempts the
// fair-share contest entirely while it has eligible work, and the lower
// class resumes when it drains.
func TestFairSharePriorityClasses(t *testing.T) {
	views := []JobView{
		{ID: 1, Weight: 1, Priority: 0, Ready: 5},
		{ID: 2, Weight: 1, Priority: 2, Ready: 2, Served: 100},
	}
	var p FairShare
	// Despite its huge served tally, the priority-2 job dispatches first.
	for i := 0; i < 2; i++ {
		if j := p.Pick(views); j != 1 {
			t.Fatalf("pick %d = job index %d, want the priority-2 job", i, j)
		}
		views[1].Served++
		views[1].Ready--
	}
	if j := p.Pick(views); j != 0 {
		t.Fatalf("drained high class: pick = %d, want the priority-0 job", j)
	}
}

// TestFairShareQuotaEligibility verifies the isolation bound: a job at
// its in-flight quota drops out of the contest without blocking others,
// and Pick returns -1 when nothing is eligible.
func TestFairShareQuotaEligibility(t *testing.T) {
	views := []JobView{
		{ID: 1, Weight: 1, Ready: 9, Inflight: 4, Quota: 4}, // at quota
		{ID: 2, Weight: 1, Ready: 0, Inflight: 0, Quota: 4}, // nothing ready
		{ID: 3, Weight: 1, Ready: 1, Inflight: 3, Quota: 4, Served: 50},
	}
	var p FairShare
	if j := p.Pick(views); j != 2 {
		t.Fatalf("pick = %d, want the only eligible job (index 2)", j)
	}
	views[2].Inflight = 4
	if j := p.Pick(views); j != -1 {
		t.Fatalf("pick = %d, want -1 with every job at quota or empty", j)
	}
	// Unlimited quota (0) never blocks on inflight.
	views[0].Quota = 0
	if j := p.Pick(views); j != 0 {
		t.Fatalf("pick = %d, want the unlimited-quota job", j)
	}
}
