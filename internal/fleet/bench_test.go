package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkSharedFleet compares running four DP jobs back-to-back on the
// fleet (serial: each job has the whole pool to itself) against
// submitting them concurrently (shared: the fair-share policy interleaves
// their dispatch streams), at two dispatch batch sizes. Four workers with
// an emulated 200µs per-task cost serve both modes, so the comparison
// isolates scheduling, not compute. Reported metrics: mean makespan of
// one whole round, and p50/p95 per-job turnaround.
func BenchmarkSharedFleet(b *testing.B) {
	for _, batch := range []int{1, 4} {
		for _, mode := range []string{"serial", "shared"} {
			b.Run(fmt.Sprintf("%s/batch=%d", mode, batch), func(b *testing.B) {
				benchFleet(b, batch, mode == "shared")
			})
		}
	}
}

func benchFleet(b *testing.B, batch int, shared bool) {
	names := []string{"edit", "nussinov", "swgg", "healthy"}
	const workers = 4
	var makespans, turns []float64
	for i := 0; i < b.N; i++ {
		f, err := New[int32](Options{Addr: "127.0.0.1:0", Batch: batch})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wdone sync.WaitGroup
		for w := 0; w < workers; w++ {
			wdone.Add(1)
			go func() {
				defer wdone.Done()
				_ = RunWorker(ctx, testBuilder, WorkerOptions{
					Addr:      f.Addr(),
					Run:       core.Config{Threads: 2, Batch: batch},
					TaskDelay: func() time.Duration { return 200 * time.Microsecond },
				})
			}()
		}

		start := time.Now()
		turnarounds := make([]time.Duration, len(names))
		runOne := func(j int, name string) error {
			p, _, err := testProblem(name)
			if err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := f.Run(ctx, p, JobRequest{Name: name}); err != nil {
				return err
			}
			turnarounds[j] = time.Since(t0)
			return nil
		}
		if shared {
			var wg sync.WaitGroup
			for j, name := range names {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := runOne(j, name); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		} else {
			for j, name := range names {
				if err := runOne(j, name); err != nil {
					b.Fatal(err)
				}
			}
		}
		makespans = append(makespans, time.Since(start).Seconds()*1e3)
		for _, d := range turnarounds {
			turns = append(turns, d.Seconds()*1e3)
		}

		cancel()
		f.Close()
		wdone.Wait()
	}
	b.ReportMetric(mean(makespans), "makespan_ms")
	b.ReportMetric(quantile(turns, 0.50), "p50_turnaround_ms")
	b.ReportMetric(quantile(turns, 0.95), "p95_turnaround_ms")
	b.ReportMetric(0, "ns/op") // the custom metrics above are the result
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
