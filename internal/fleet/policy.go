package fleet

// JobView is the scheduler's snapshot of one runnable job, assembled by
// the fleet under its lock each time an idle worker asks for work.
type JobView struct {
	// ID is the fleet-assigned job id (the one task frames carry).
	ID int32
	// Weight is the job's fair-share weight; a weight-2 job is entitled
	// to twice the dispatch share of a weight-1 job.
	Weight float64
	// Priority is the job's priority class. Eligible jobs of a higher
	// class always dispatch before lower classes; fair-share applies
	// within a class.
	Priority int
	// Ready is the number of computable vertices queued for the job.
	Ready int
	// Inflight is the number of leased attempts currently outstanding,
	// plus vertices drawn by a concurrent sender that have not been
	// leased yet (so racing senders cannot overshoot Quota).
	Inflight int
	// Quota caps Inflight (0 = unlimited): the per-tenant isolation
	// bound that keeps one job — including its retries and speculative
	// backups — from saturating the pool.
	Quota int
	// Served is the job's normalized service so far: vertices dispatched
	// divided by Weight. The deficit of a job is the gap between the
	// most-served job's Served and its own.
	Served float64
}

// Eligible reports whether the job may be handed work right now.
func (v JobView) Eligible() bool {
	return v.Ready > 0 && (v.Quota <= 0 || v.Inflight < v.Quota)
}

// Policy picks which job feeds the next ready batch to an idle worker.
// Pick returns the index into views of the chosen job, or -1 when no job
// is eligible. Implementations are called under the fleet's lock and must
// not block.
type Policy interface {
	Pick(views []JobView) int
}

// FairShare is the default policy: among eligible jobs of the highest
// priority class, dispatch to the one with the smallest normalized
// service (dispatched/weight) — weighted max-min fairness by
// outstanding-vertex deficit. Two jobs of equal weight converge to equal
// dispatch counts; skewed weights converge to the weight ratio; a job
// at its quota or with nothing ready simply drops out of the contest
// without blocking the others.
type FairShare struct{}

// Pick implements Policy.
func (FairShare) Pick(views []JobView) int {
	best := -1
	for i, v := range views {
		if !v.Eligible() {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := views[best]
		switch {
		case v.Priority > b.Priority:
			best = i
		case v.Priority < b.Priority:
		case v.Served < b.Served:
			best = i
		}
	}
	return best
}
