package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/matrix"
)

// WorkerOptions configures one fleet worker process.
type WorkerOptions struct {
	// Addr is the fleet master's address.
	Addr string
	// Name labels this member in the fleet's logs and metrics.
	Name string
	// HeartbeatInterval is the beacon period; must match (or undercut)
	// the fleet's (default 250 ms).
	HeartbeatInterval time.Duration
	// HeartbeatMiss sizes the worker-side read-idle bound (default 3).
	HeartbeatMiss int
	// DialTimeout bounds dialing plus handshake (default 10 s).
	DialTimeout time.Duration
	// Run carries the worker-local compute configuration (Threads,
	// WorkDelayPerCell, Batch flush bound, ...). Partition sizes come
	// from each job's attach frame, never from here.
	Run core.Config
	// TaskDelay, when non-nil, is consulted before each task executes;
	// the fault-injection hook for slowing a member down.
	TaskDelay func() time.Duration
	// HungerAfter, when positive, announces hunger after this long
	// without a task arriving (the fleet acts only when its Steal
	// option is on). Zero disables.
	HungerAfter time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 250 * time.Millisecond
	}
	if o.HeartbeatMiss < 1 {
		o.HeartbeatMiss = 3
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	return o
}

// Builder turns an attach frame's JobMeta back into the job's Problem —
// the worker-side half of the per-job spec handshake. The fleet worker
// verifies the meta digest and the built problem's size before accepting
// tasks, so a builder that diverges from the master's is refused at
// attach time.
type Builder[T any] func(meta JobMeta) (core.Problem[T], error)

// RunWorker joins the shared fleet at opts.Addr and computes tasks for
// any number of concurrent jobs until the fleet dismisses it (nil), the
// connection dies (error), or ctx is cancelled (a Leave frame goes out
// first). Kernel state is attached per job on the first job-spec frame
// and detached on job-end, so the worker's footprint follows the set of
// jobs it is actively serving.
func RunWorker[T any](ctx context.Context, build Builder[T], opts WorkerOptions) error {
	opts = opts.withDefaults()
	if build == nil {
		return fmt.Errorf("fleet: RunWorker needs a job builder")
	}
	cn, welcome, err := comm.DialHello(opts.Addr, comm.Hello{
		Fleet: true,
		Name:  opts.Name,
	}, opts.DialTimeout)
	if err != nil {
		return err
	}
	defer cn.Close()
	member := welcome.Member
	idle := time.Duration(opts.HeartbeatMiss+1) * opts.HeartbeatInterval
	cn.SetReadIdle(idle)
	cn.SetWriteTimeout(idle)

	stop := make(chan struct{})
	defer close(stop)

	// Beacon: prove liveness and provoke the echoes that feed this
	// side's read-idle bound.
	go func() {
		ticker := time.NewTicker(opts.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				if cn.Send(comm.Message{Kind: comm.KindHeartbeat}) != nil {
					return
				}
			}
		}
	}()
	// Graceful leave on cancellation.
	go func() {
		select {
		case <-stop:
		case <-ctx.Done():
			_ = cn.Send(comm.Message{Kind: comm.KindLeave})
			cn.Close()
		}
	}()

	// Hunger beacon, identical to the elastic worker's.
	var activity chan struct{}
	if opts.HungerAfter > 0 {
		activity = make(chan struct{}, 1)
		go func() {
			timer := time.NewTimer(opts.HungerAfter)
			defer timer.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				case <-activity:
					if !timer.Stop() {
						select {
						case <-timer.C:
						default:
						}
					}
					timer.Reset(opts.HungerAfter)
				case <-timer.C:
					if cn.Send(comm.Message{Kind: comm.KindHunger}) != nil {
						return
					}
					timer.Reset(opts.HungerAfter)
				}
			}
		}()
	}
	noteActivity := func() {
		if activity != nil {
			select {
			case activity <- struct{}{}:
			default:
			}
		}
	}

	// runners holds the attached jobs' kernel state; only the recv loop
	// touches it. seen is the process-wide content-addressed block cache
	// shared by all runners (the worker half of the keyed wire format);
	// it is cleared whenever the attached set empties, mirroring the
	// master's per-member known-set reset — the JobSpec/JobEnd frames are
	// ordered on this one connection, so both sides observe the same
	// "last job detached" instant.
	runners := make(map[int32]*core.TaskRunner[T])
	seen := make(map[[32]byte]*matrix.Block[T])
	runnerFor := func(job int32) (*core.TaskRunner[T], error) {
		r, ok := runners[job]
		if !ok {
			// The connection is ordered, so a task frame for an
			// unattached job means protocol corruption, not a race.
			return nil, fmt.Errorf("fleet: member %d received task for unattached job %d", member, job)
		}
		return r, nil
	}
	runOne := func(r *core.TaskRunner[T], vertex int32, payload []byte) ([]byte, error) {
		if opts.TaskDelay != nil {
			if d := opts.TaskDelay(); d > 0 {
				time.Sleep(d)
			}
		}
		return r.Run(vertex, payload)
	}

	if err := cn.Send(comm.Message{Kind: comm.KindIdle}); err != nil {
		return fmt.Errorf("fleet: member %d announcing idle: %w", member, err)
	}
	for {
		msg, err := cn.Recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("fleet: member %d lost master: %w", member, err)
		}
		switch msg.Kind {
		case comm.KindJobSpec:
			var meta JobMeta
			if err := json.Unmarshal(msg.Payload, &meta); err != nil {
				return fmt.Errorf("fleet: member %d decoding job spec: %w", member, err)
			}
			if got := meta.digest(); got != meta.Digest {
				return fmt.Errorf("fleet: member %d: job %q spec digest mismatch (%s != %s)", member, meta.Name, got, meta.Digest)
			}
			if _, ok := runners[meta.Job]; ok {
				break // re-attach of a job we already hold
			}
			p, err := build(meta)
			if err != nil {
				return fmt.Errorf("fleet: member %d building job %q: %w", member, meta.Name, err)
			}
			if p.Size.Rows != meta.Rows || p.Size.Cols != meta.Cols {
				return fmt.Errorf("fleet: member %d: job %q builder produced size %v, master dispatched against %dx%d (builder/registry skew)",
					member, meta.Name, p.Size, meta.Rows, meta.Cols)
			}
			cfg := opts.Run
			cfg.ProcPartition = meta.Proc
			if meta.Thread.Valid() {
				cfg.ThreadPartition = meta.Thread
			}
			if cfg.Threads < 1 {
				cfg.Threads = 1
			}
			r, err := core.NewTaskRunner(p, cfg)
			if err != nil {
				return fmt.Errorf("fleet: member %d preparing job %q: %w", member, meta.Name, err)
			}
			r.SetBlockCache(seen)
			runners[meta.Job] = r
		case comm.KindJobEnd:
			delete(runners, msg.Job)
			if len(runners) == 0 {
				// Mirror the master's known-set reset: with no job
				// attached the master has forgotten what we hold, so
				// drop the blocks. Every runner holding the old map was
				// just deleted; future attaches get the fresh one.
				seen = make(map[[32]byte]*matrix.Block[T])
			}
		case comm.KindTask:
			noteActivity()
			r, err := runnerFor(msg.Job)
			if err != nil {
				return err
			}
			out, err := runOne(r, msg.Vertex, msg.Payload)
			if err != nil {
				// A compute failure is fatal for this member; dying
				// loudly lets the fleet's revocation path reassign the
				// vertex.
				return fmt.Errorf("fleet: member %d computing vertex %d of job %d: %w", member, msg.Vertex, msg.Job, err)
			}
			if err := cn.Send(comm.Message{Kind: comm.KindResult, Job: msg.Job, Vertex: msg.Vertex, Attempt: msg.Attempt, Payload: out}); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fleet: member %d sending result of vertex %d: %w", member, msg.Vertex, err)
			}
			noteActivity() // idleness starts at completion
		case comm.KindTaskBatch:
			noteActivity()
			r, err := runnerFor(msg.Job)
			if err != nil {
				return err
			}
			// Entries never mix jobs; execute in order through the job's
			// runner, flushing coalesced results every flushBound
			// entries with More set, exactly like the elastic worker.
			flushBound := opts.Run.Batch
			if flushBound < 1 {
				flushBound = 1
			}
			var results []comm.TaskEntry
			for idx, e := range msg.Batch {
				out, err := runOne(r, e.Vertex, e.Payload)
				if err != nil {
					return fmt.Errorf("fleet: member %d computing vertex %d of job %d: %w", member, e.Vertex, msg.Job, err)
				}
				results = append(results, comm.TaskEntry{Vertex: e.Vertex, Attempt: e.Attempt, Payload: out})
				if len(results) >= flushBound && idx < len(msg.Batch)-1 {
					if err := cn.Send(comm.Message{Kind: comm.KindResultBatch, Job: msg.Job, Batch: results, More: true}); err != nil {
						if ctx.Err() != nil {
							return ctx.Err()
						}
						return fmt.Errorf("fleet: member %d flushing batch results: %w", member, err)
					}
					results = nil
				}
			}
			var final comm.Message
			switch len(results) {
			case 0:
				final = comm.Message{Kind: comm.KindIdle}
			case 1:
				final = comm.Message{Kind: comm.KindResult, Job: msg.Job, Vertex: results[0].Vertex, Attempt: results[0].Attempt, Payload: results[0].Payload}
			default:
				final = comm.Message{Kind: comm.KindResultBatch, Job: msg.Job, Batch: results}
			}
			if err := cn.Send(final); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("fleet: member %d sending batch results: %w", member, err)
			}
			noteActivity()
		case comm.KindHeartbeat:
			// The fleet's echo of our beacon.
		case comm.KindEnd:
			return nil
		default:
			// An unexpected kind on an ordered connection means protocol
			// corruption or version skew; die loudly so the fleet's
			// revocation path reassigns this member's leases.
			return fmt.Errorf("fleet: member %d received unexpected %v frame", member, msg.Kind)
		}
	}
}
