package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/trace"
)

// JobRequest describes one DAG submitted to the shared fleet.
type JobRequest struct {
	// Name labels the job in metrics, traces and worker attach frames.
	Name string
	// Spec is the application-level job description shipped verbatim to
	// workers in the attach frame, where the injected builder turns it
	// back into the same Problem (the job service sends its JSON
	// JobSpec). May be nil for in-test problems built by hand on both
	// sides.
	Spec json.RawMessage
	// Proc is the processor-level partition; zero means the same default
	// rule core.Config applies, so master and workers derive identical
	// geometries.
	Proc dag.Size
	// Thread is the worker-local thread partition, carried in the attach
	// frame so every worker computes the job with the partition it was
	// submitted under.
	Thread dag.Size
	// Weight is the fair-share weight (default 1).
	Weight float64
	// Priority is the priority class (higher dispatches first).
	Priority int
	// Quota caps the job's in-flight leased attempts (0 = fleet
	// default): retries and speculative backups count against it, so a
	// poisoned job cannot flood the pool.
	Quota int
	// MaxAttempts bounds overtime redistributions per vertex before the
	// job — and only the job — fails (0 = fleet default).
	MaxAttempts int
	// TaskTimeout overrides the fleet's per-vertex overtime bound for
	// this job (0 = fleet default).
	TaskTimeout time.Duration
	// Timeout fails the job when it has run longer than this on the
	// fleet clock (0 = no bound).
	Timeout time.Duration
	// CacheKey is the content digest of the job's problem spec (kernel
	// plus inputs, scheduling knobs excluded) scoping its entries in the
	// fleet's cross-job result store (Options.Cache). Note JobMeta's
	// digest cannot serve here: it covers Name and partition sizes, so
	// identical problems submitted under different names or partitions
	// would never share cache entries. Empty disables caching for this
	// job even when the fleet has a store.
	CacheKey string
	// CheckpointPath, when non-empty, persists the job's completed
	// vertices and resumes from the clean prefix on resubmission.
	CheckpointPath string
	// OnProgress, when non-nil, is called after restore and after every
	// completed vertex with (completed, total), on the fleet's receive
	// loop — it must be fast and must not block.
	OnProgress func(completed, total int)
}

func (r JobRequest) withDefaults(o Options) JobRequest {
	if r.Weight <= 0 {
		r.Weight = 1
	}
	if r.Quota <= 0 {
		r.Quota = o.DefaultQuota
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = o.MaxAttempts
	}
	if r.TaskTimeout <= 0 {
		r.TaskTimeout = o.TaskTimeout
	}
	return r
}

// JobMeta is the attach frame's payload: everything a fleet worker needs
// to build (and verify) the kernel state of one job. It travels as JSON,
// so the worker-side builder can be a different binary as long as it
// derives the same problem.
type JobMeta struct {
	Job    int32           `json:"job"`
	Name   string          `json:"name"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Rows   int             `json:"rows"`
	Cols   int             `json:"cols"`
	Proc   dag.Size        `json:"proc"`
	Thread dag.Size        `json:"thread"`
	// Digest fingerprints the fields above. The worker recomputes it
	// over what it received and over the size of the problem its builder
	// actually produced, so a builder that diverges from the master's
	// (version skew, registry drift) is refused at attach time instead
	// of corrupting the run.
	Digest string `json:"digest"`
}

// digest fingerprints the meta's identity fields (Digest itself excluded).
func (m JobMeta) digest() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("easyhps-job:1:%s:%s:%dx%d:%dx%d:%dx%d",
		m.Name, string(m.Spec), m.Rows, m.Cols,
		m.Proc.Rows, m.Proc.Cols, m.Thread.Rows, m.Thread.Cols)))
	return hex.EncodeToString(h[:12])
}

// Result of one fleet job: the completed blocked matrix plus the job's
// own statistics ledger.
type Result[T any] struct {
	Store matrix.BlockStore[T]
	Stats cluster.Stats
}

// JobStatus is the monitoring view of one job (see Fleet.Snapshot).
type JobStatus struct {
	ID       int32
	Name     string
	State    string // "running", "done", "failed"
	Done     int    // completed vertices
	Total    int    // DAG size
	Ready    int    // computable vertices queued
	Inflight int    // leased attempts outstanding
	Weight   float64
	Priority int
	// Deficit is the gap between the most-served running job's
	// normalized service and this job's — the fair-share debt the
	// scheduler is working off, and an autoscaling signal: a persistent
	// positive deficit across jobs means the pool is too small.
	Deficit float64
	Stats   cluster.Stats
}

// job is the DAG-progress half of what used to be cluster.Master: one
// graph, parser, store, register table, overtime queue, lease table,
// checkpoint log and stats ledger — everything scoped to a single DAG —
// while the fleet owns the shared half (membership, connections,
// heartbeats, hunger).
type job[T any] struct {
	id   int32
	req  JobRequest
	p    core.Problem[T]
	meta []byte // encoded JobMeta, shipped in attach frames

	geom    dag.Geometry
	graph   *dag.Graph
	parser  *dag.Parser
	store   matrix.BlockStore[T]
	rt      *sched.RegisterTable
	ot      *sched.OvertimeQueue
	leases  *sched.LeaseTable
	profile *sched.RuntimeProfile

	ckpt     *checkpoint.Writer
	ckptFile *os.File

	// Cross-job memoization (Options.Cache + JobRequest.CacheKey).
	// resultKey[v] is the content key of v's committed payload, written
	// only where parser and store are mutated (Fleet.Run's startup and
	// the recv loop); senders reading a completed dependency's key in
	// dispatch are ordered behind the write by the fleet mutex, which
	// already serializes the ready handoff.
	cache     *cas.Store
	cacheSpec string
	resultKey []cas.Key

	// ready is the job's computable-vertex stack (LIFO, like the
	// single-job dispatcher); guarded by the fleet's mutex, which also
	// covers served and drawn for the policy's consistent view.
	ready  []int32
	served float64
	// drawn counts vertices a sender has taken off ready but not yet
	// leased in dispatch; the policy adds it to Inflight so concurrent
	// senders cannot overshoot the job's quota in that window.
	drawn int

	// timeouts counts overtime expiries per vertex (the MaxAttempts
	// guard); control loop only.
	timeouts map[int32]int

	// Speculation bookkeeping, same protocol as cluster.Master.
	specMu      sync.Mutex
	specPending map[int32]bool
	backupOf    map[int32]int32

	ctrs cluster.Counters
	tr   *trace.Recorder

	start    time.Time // fleet clock, for Timeout
	deadline time.Time // zero = no bound

	done     chan struct{}
	doneOnce sync.Once
	errMu    sync.Mutex
	err      error
	leaked   int64
	elapsed  time.Duration
}

// newJob builds the per-job runtime state. The caller (Fleet.Run)
// registers it with the fleet.
func newJob[T any](id int32, p core.Problem[T], req JobRequest, clock sched.Clock) (*job[T], error) {
	if p.Kernel == nil {
		return nil, fmt.Errorf("fleet: job %q has no kernel", req.Name)
	}
	if p.Codec == nil {
		return nil, fmt.Errorf("fleet: job %q has no codec", req.Name)
	}
	if !p.Size.Valid() {
		return nil, fmt.Errorf("fleet: job %q has invalid size %v", req.Name, p.Size)
	}
	proc := req.Proc
	if !proc.Valid() {
		proc = dag.Size{Rows: (p.Size.Rows + 7) / 8, Cols: (p.Size.Cols + 7) / 8}
	}
	geom := dag.MatrixGeometry(p.Size, proc)
	graph := dag.Build(p.Kernel.Pattern(), geom)
	jb := &job[T]{
		id:          id,
		req:         req,
		p:           p,
		geom:        geom,
		graph:       graph,
		parser:      dag.NewParser(graph),
		store:       matrix.NewStore[T](geom),
		rt:          sched.NewRegisterTable(),
		ot:          sched.NewOvertimeQueueClock(clock),
		leases:      sched.NewLeaseTable(),
		profile:     sched.NewRuntimeProfile(0),
		timeouts:    make(map[int32]int),
		specPending: make(map[int32]bool),
		backupOf:    make(map[int32]int32),
		tr:          trace.New(),
		start:       clock.Now(),
		done:        make(chan struct{}),
	}
	if req.Timeout > 0 {
		jb.deadline = jb.start.Add(req.Timeout)
	}
	meta := JobMeta{
		Job:    id,
		Name:   req.Name,
		Spec:   req.Spec,
		Rows:   p.Size.Rows,
		Cols:   p.Size.Cols,
		Proc:   proc,
		Thread: req.Thread,
	}
	meta.Digest = meta.digest()
	enc, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding job meta for %q: %w", req.Name, err)
	}
	jb.meta = enc
	return jb, nil
}

// blockKey derives vertex v's cross-job cache key: the job's spec
// digest, the block's cell rectangle, and the content keys of its
// predecessors' committed payloads. Only called once every predecessor
// has committed.
func (jb *job[T]) blockKey(v int32) cas.Key {
	deps := jb.graph.Vertex(v).DataPre
	preds := make([]cas.Key, len(deps))
	for i, d := range deps {
		preds[i] = jb.resultKey[d]
	}
	r := jb.geom.Rect(jb.geom.PosOf(v))
	return cas.BlockKey(jb.cacheSpec, r.Row0, r.Col0, r.Rows, r.Cols, preds)
}

// commit is the single write path for a completed block: store insert,
// content-key recording, cross-job cache write-through, and checkpoint
// append all happen here, so recovery log and cache can never diverge.
// Only called from Fleet.Run's startup (restore, absorb) and the fleet
// recv loop.
func (jb *job[T]) commit(v int32, payload []byte, b *matrix.Block[T]) error {
	jb.store.Put(jb.geom.PosOf(v), b)
	if jb.cache != nil {
		jb.resultKey[v] = cas.PayloadKey(payload)
		jb.cache.PutBlock(jb.blockKey(v), payload)
	}
	if jb.ckpt != nil {
		return jb.ckpt.Append(v, payload)
	}
	return nil
}

// restore replays the job's checkpoint prefix (when configured) and
// returns the computable frontier. Mirrors the single-job master's
// restore, scoped to this job's graph and store.
func (jb *job[T]) restore() ([]int32, error) {
	ready := make(map[int32]bool)
	for _, id := range jb.parser.InitialReady() {
		ready[id] = true
	}
	if jb.req.CheckpointPath != "" {
		w, f, n, err := checkpoint.OpenAppend(jb.req.CheckpointPath, func(v int32, payload []byte) error {
			if int(v) < 0 || int(v) >= len(jb.graph.Verts) || !jb.graph.Vertex(v).Exists {
				return fmt.Errorf("fleet: checkpoint names unknown vertex %d", v)
			}
			if !ready[v] {
				return fmt.Errorf("fleet: checkpoint record for vertex %d out of order", v)
			}
			blocks, err := matrix.DecodeBlocks(jb.p.Codec, payload)
			if err != nil || len(blocks) != 1 {
				return fmt.Errorf("fleet: checkpoint payload for vertex %d: %v", v, err)
			}
			// commit writes the restored block through to the cross-job
			// cache (jb.ckpt is still nil during OpenAppend's replay, so
			// nothing is double-appended): a resumed run warms the cache
			// exactly like a computed one.
			if err := jb.commit(v, payload, blocks[0]); err != nil {
				return err
			}
			delete(ready, v)
			for _, nv := range jb.parser.Complete(v) {
				ready[nv] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		jb.ckpt, jb.ckptFile = w, f
		jb.ctrs.Restored.Store(int64(n))
	}
	frontier := make([]int32, 0, len(ready))
	for id := range ready {
		frontier = append(frontier, id)
	}
	jb.progress()
	return frontier, nil
}

func (jb *job[T]) progress() {
	if jb.req.OnProgress == nil {
		return
	}
	jb.req.OnProgress(jb.graph.N-jb.parser.Remaining(), jb.graph.N)
}

func (jb *job[T]) finished() bool {
	select {
	case <-jb.done:
		return true
	default:
		return false
	}
}

// finish ends the job exactly once, recording err (nil for success), the
// leak audit (register-table plus lease entries still live — zero for a
// clean finish), and the makespan.
func (jb *job[T]) finish(err error, now time.Time) {
	jb.doneOnce.Do(func() {
		jb.errMu.Lock()
		jb.err = err
		jb.leaked = int64(jb.rt.Outstanding() + jb.leases.Len())
		jb.elapsed = now.Sub(jb.start)
		jb.errMu.Unlock()
		if jb.ckptFile != nil {
			jb.ckptFile.Close()
		}
		close(jb.done)
	})
}

func (jb *job[T]) finalErr() error {
	jb.errMu.Lock()
	defer jb.errMu.Unlock()
	return jb.err
}

// stats materializes the job's ledger. Membership fields stay zero —
// joins and deaths belong to the fleet, not to any one job — except the
// lease audit, which is per job.
func (jb *job[T]) stats() cluster.Stats {
	s := jb.ctrs.Stats()
	jb.errMu.Lock()
	if jb.finished() {
		s.Leaked = jb.leaked
		s.Elapsed = jb.elapsed
	}
	jb.errMu.Unlock()
	return s
}

// noteAttemptGone records the speculation-accounting consequence of one
// attempt of v dying (worker death, overtime expiry or a steal).
func (jb *job[T]) noteAttemptGone(v, attempt int32) {
	jb.specMu.Lock()
	if backup, ok := jb.backupOf[v]; ok {
		delete(jb.backupOf, v)
		if backup == attempt {
			jb.ctrs.SpecWasted.Add(1)
		}
	}
	jb.specMu.Unlock()
}
