package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
)

// TestFleetCacheWarmResubmission covers the master and wire cache layers
// over a real TCP fleet: a cold job fills the store and — with a single
// worker — must suppress reships of blocks the worker already holds
// (content-keyed PeerSet refs); an identical resubmission completes
// entirely from cache without dispatching one task.
func TestFleetCacheWarmResubmission(t *testing.T) {
	store, err := cas.NewStore(cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		Cache:             store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		_ = RunWorker(wctx, testBuilder, WorkerOptions{
			Addr:              f.Addr(),
			Name:              "w0",
			HeartbeatInterval: 50 * time.Millisecond,
			Run:               core.Config{Threads: 2},
		})
	}()

	prob, want := mustProblem(t, "edit")
	req := JobRequest{Name: "edit", CacheKey: "fleet-cache:edit"}

	cold, err := f.Run(context.Background(), prob, req)
	if err != nil {
		t.Fatal(err)
	}
	checkMatrix(t, "cold", cold.Store.Assemble(), want)
	if cold.Stats.CacheHits != 0 || cold.Stats.CacheMisses == 0 {
		t.Fatalf("cold run cache counters wrong: %+v", cold.Stats)
	}
	// With one worker, every dependency block is that worker's own
	// output, noted in its PeerSet when the result arrived — so every
	// task ships references only, never a payload block.
	if cold.Stats.BlocksShipped != 0 {
		t.Fatalf("single-worker run reshipped its own outputs: %+v", cold.Stats)
	}
	if cold.Stats.BlocksSkipped == 0 {
		t.Fatalf("single-worker run suppressed no reships: %+v", cold.Stats)
	}
	if st := store.Snapshot(); st.Hits[cas.LayerWire] == 0 {
		t.Fatalf("wire layer recorded no hits: %+v", st)
	}

	warm, err := f.Run(context.Background(), prob, req)
	if err != nil {
		t.Fatal(err)
	}
	checkMatrix(t, "warm", warm.Store.Assemble(), want)
	if warm.Stats.Tasks != 0 || warm.Stats.Dispatches != 0 {
		t.Fatalf("warm resubmission dispatched work: %+v", warm.Stats)
	}
	if warm.Stats.CacheHits != cold.Stats.Tasks {
		t.Fatalf("warm hits %d != cold tasks %d", warm.Stats.CacheHits, cold.Stats.Tasks)
	}

	// A different CacheKey over the same store recomputes from scratch.
	other, err := f.Run(context.Background(), prob, JobRequest{Name: "edit", CacheKey: "fleet-cache:edit-v2"})
	if err != nil {
		t.Fatal(err)
	}
	checkMatrix(t, "rekeyed", other.Store.Assemble(), want)
	if other.Stats.CacheHits != 0 {
		t.Fatalf("re-keyed job reused old entries: %+v", other.Stats)
	}

	stopWorker()
	f.Close()
	wwg.Wait()
}

// TestFleetCacheKeyEmptyDisables: without a CacheKey the job neither
// probes nor fills the store, even when the fleet has one attached.
func TestFleetCacheKeyEmptyDisables(t *testing.T) {
	store, err := cas.NewStore(cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New[int32](Options{
		Addr:              "127.0.0.1:0",
		HeartbeatInterval: 50 * time.Millisecond,
		Cache:             store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	wctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		_ = RunWorker(wctx, testBuilder, WorkerOptions{
			Addr:              f.Addr(),
			Name:              "w0",
			HeartbeatInterval: 50 * time.Millisecond,
			Run:               core.Config{Threads: 2},
		})
	}()

	prob, want := mustProblem(t, "edit")
	res, err := f.Run(context.Background(), prob, JobRequest{Name: "edit"})
	if err != nil {
		t.Fatal(err)
	}
	checkMatrix(t, "uncached", res.Store.Assemble(), want)
	if res.Stats.CacheHits != 0 || res.Stats.CacheMisses != 0 {
		t.Fatalf("uncached job touched the cache: %+v", res.Stats)
	}
	if st := store.Snapshot(); st.Blocks != 0 {
		t.Fatalf("uncached job filled the store: %+v", st)
	}

	stopWorker()
	f.Close()
	wwg.Wait()
}
