package tune

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dag"
	"repro/internal/testseed"
)

func TestBatchGrowsWhileAmortizing(t *testing.T) {
	c := New(DefaultLimits(), 1, 0.95, 2, 8)
	s := Sample{}
	c.Tick(s) // baseline
	for i := 0; i < 100; i++ {
		s.Dispatches += 100
		s.TaskBytes += 100 * 64 // flat bytes-per-vertex
		d := c.Tick(s)
		if d.BatchCap < 1 || d.BatchCap > DefaultLimits().MaxBatch {
			t.Fatalf("tick %d: cap %d out of bounds", i, d.BatchCap)
		}
	}
	if got := c.BatchCap(); got != DefaultLimits().MaxBatch {
		t.Fatalf("stationary amortizing workload should climb to the cap, got %d", got)
	}
}

func TestBatchShrinksOnHunger(t *testing.T) {
	c := New(DefaultLimits(), 32, 0.95, 2, 8)
	s := Sample{Dispatches: 1000, TaskBytes: 64000}
	c.Tick(s)
	s.Dispatches += 100
	s.TaskBytes += 6400
	s.Hungers += 3
	d := c.Tick(s)
	if !d.Changed || d.BatchCap != 16 {
		t.Fatalf("hunger should halve the cap 32->16, got %+v", d)
	}
	s.Steals += 2
	d = c.Tick(s)
	if d.BatchCap != 8 {
		t.Fatalf("steals should halve the cap 16->8, got %+v", d)
	}
}

func TestBatchHoldsWhenAmortizationDegrades(t *testing.T) {
	c := New(DefaultLimits(), 4, 0.95, 2, 8)
	s := Sample{}
	c.Tick(s)
	s.Dispatches, s.TaskBytes = 100, 6400 // 64 B/vertex baseline
	c.Tick(s)
	s.Dispatches += 100
	s.TaskBytes += 100 * 80 // 80 B/vertex: worse than 64 * 1.05
	d := c.Tick(s)
	if d.BatchCap != 5 {
		t.Fatalf("the degrading interval is only detected after the fact, want 5, got %d", d.BatchCap)
	}
	s.Dispatches += 100
	s.TaskBytes += 100 * 90
	d = c.Tick(s)
	if d.BatchCap != 5 {
		t.Fatalf("cap should park when bytes-per-vertex keeps degrading, got %d", d.BatchCap)
	}
}

func TestSpecRelaxesOnUniformProfile(t *testing.T) {
	lim := DefaultLimits()
	c := New(lim, 1, 0.95, 2, 8)
	s := Sample{ProfileP50: 10 * time.Millisecond, ProfileP95: 11 * time.Millisecond, ProfileSamples: 64}
	c.Tick(s)
	var q, m float64
	for i := 0; i < 200; i++ {
		d := c.Tick(s)
		q, m = d.SpecQuantile, d.SpecMultiplier
	}
	if q != lim.MaxQuantile || m != lim.MaxMultiplier {
		t.Fatalf("uniform profile should converge to the conservative bounds, got q=%v m=%v", q, m)
	}
}

func TestSpecTightensOnHeavyTail(t *testing.T) {
	lim := DefaultLimits()
	c := New(lim, 1, 0.95, 2, 8)
	s := Sample{ProfileP50: 10 * time.Millisecond, ProfileP95: 100 * time.Millisecond, ProfileSamples: 64}
	c.Tick(s)
	var q, m float64
	for i := 0; i < 200; i++ {
		d := c.Tick(s)
		q, m = d.SpecQuantile, d.SpecMultiplier
	}
	if q != lim.MinQuantile || m != lim.MinMultiplier {
		t.Fatalf("heavy tail should converge to the aggressive bounds, got q=%v m=%v", q, m)
	}
}

func TestSpecRelaxesOnWastedBackups(t *testing.T) {
	lim := DefaultLimits()
	c := New(lim, 1, 0.95, 2, 8)
	// Dispersion 2.0 sits in the hold band — the outcome signal has to do
	// the moving: a mild straggler trips the thresholds but always loses
	// the race, so every interval adds wasted backups and no wins.
	s := Sample{ProfileP50: 10 * time.Millisecond, ProfileP95: 20 * time.Millisecond, ProfileSamples: 64}
	c.Tick(s)
	var q, m float64
	for i := 0; i < 200; i++ {
		s.SpecWasted += 2
		d := c.Tick(s)
		q, m = d.SpecQuantile, d.SpecMultiplier
	}
	if q != lim.MaxQuantile || m != lim.MaxMultiplier {
		t.Fatalf("losing backups should relax to the conservative bounds, got q=%v m=%v", q, m)
	}
	// Winning backups outnumbering wasted ones hand control back to the
	// dispersion rule, which holds at 2.0.
	s.SpecWon += 5
	s.SpecWasted += 1
	if d := c.Tick(s); d.SpecQuantile != q || d.SpecMultiplier != m {
		t.Fatalf("winning interval must not relax further: %+v", d)
	}
}

func TestSpecHoldsOnColdProfile(t *testing.T) {
	c := New(DefaultLimits(), 1, 0.95, 2, 8)
	s := Sample{ProfileP50: time.Millisecond, ProfileP95: 50 * time.Millisecond, ProfileSamples: 3}
	c.Tick(s)
	d := c.Tick(s)
	if d.Changed {
		t.Fatalf("cold profile must not move the thresholds: %+v", d)
	}
}

func TestSnapshotAndAdjustments(t *testing.T) {
	c := New(DefaultLimits(), 2, 0.95, 2, 8)
	s := Sample{}
	c.Tick(s)
	s.Dispatches, s.TaskBytes = 10, 640
	c.Tick(s)
	snap := c.Snapshot()
	if snap.BatchCap != 3 || snap.Adjustments != 1 {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	if snap.SpecQuantile != 0.95 || snap.SpecMultiplier != 2 {
		t.Fatalf("untouched spec params should pass through: %+v", snap)
	}
}

// TestControllerProperties drives the controller with testseed-seeded
// random counter sequences and holds it to the declared contract:
// recommendations stay inside Limits, per-tick movement respects the
// damping (MaxBatchStep for the cap, Gain times the bound range for the
// thresholds), and once the workload turns stationary the
// recommendations reach a fixed point.
func TestControllerProperties(t *testing.T) {
	seed := testseed.Seed(t, 42)
	rng := rand.New(rand.NewSource(seed))
	lim := DefaultLimits()
	qRange := lim.MaxQuantile - lim.MinQuantile
	mRange := lim.MaxMultiplier - lim.MinMultiplier

	for trial := 0; trial < 50; trial++ {
		c := New(lim, 1+rng.Intn(64), 0.9+rng.Float64()*0.09, 1.5+rng.Float64()*2, 8)
		var s Sample
		prevQ, prevM := c.SpecParams()
		prevB := c.BatchCap()
		c.Tick(s)

		step := func(random bool) {
			if random {
				s.Dispatches += int64(rng.Intn(200))
				s.TaskBytes += int64(rng.Intn(20000))
				s.Hungers += int64(rng.Intn(3))
				s.Steals += int64(rng.Intn(3))
				s.SpecWon += int64(rng.Intn(3))
				s.SpecWasted += int64(rng.Intn(3))
				s.ProfileP50 = time.Duration(1+rng.Intn(20)) * time.Millisecond
				s.ProfileP95 = s.ProfileP50 * time.Duration(1+rng.Intn(20))
				s.ProfileSamples = rng.Intn(64)
			} else {
				s.Dispatches += 100
				s.TaskBytes += 6400
				s.ProfileP50 = 10 * time.Millisecond
				s.ProfileP95 = 12 * time.Millisecond
				s.ProfileSamples = 64
			}
			d := c.Tick(s)
			if d.BatchCap < lim.MinBatch || d.BatchCap > lim.MaxBatch {
				t.Fatalf("trial %d: cap %d outside [%d, %d]", trial, d.BatchCap, lim.MinBatch, lim.MaxBatch)
			}
			if d.SpecQuantile < lim.MinQuantile || d.SpecQuantile > lim.MaxQuantile ||
				d.SpecMultiplier < lim.MinMultiplier || d.SpecMultiplier > lim.MaxMultiplier {
				t.Fatalf("trial %d: spec params out of bounds: %+v", trial, d)
			}
			if diff := abs(d.BatchCap - prevB); diff > MaxBatchStep(prevB) {
				t.Fatalf("trial %d: cap moved %d -> %d, more than MaxBatchStep=%d",
					trial, prevB, d.BatchCap, MaxBatchStep(prevB))
			}
			if dq := math.Abs(d.SpecQuantile - prevQ); dq > lim.Gain*qRange+1e-9 {
				t.Fatalf("trial %d: quantile moved %.4f -> %.4f, beyond damping %.4f",
					trial, prevQ, d.SpecQuantile, lim.Gain*qRange)
			}
			if dm := math.Abs(d.SpecMultiplier - prevM); dm > lim.Gain*mRange+1e-9 {
				t.Fatalf("trial %d: multiplier moved %.4f -> %.4f, beyond damping %.4f",
					trial, prevM, d.SpecMultiplier, lim.Gain*mRange)
			}
			prevB, prevQ, prevM = d.BatchCap, d.SpecQuantile, d.SpecMultiplier
		}

		for i := 0; i < 100; i++ {
			step(true)
		}
		// Stationary phase: after enough identical-delta ticks the
		// recommendations must stop moving entirely.
		for i := 0; i < 300; i++ {
			step(false)
		}
		before := c.Snapshot()
		for i := 0; i < 10; i++ {
			step(false)
		}
		after := c.Snapshot()
		if before.BatchCap != after.BatchCap || before.SpecQuantile != after.SpecQuantile ||
			before.SpecMultiplier != after.SpecMultiplier {
			t.Fatalf("trial %d: no fixed point on a stationary workload: %+v vs %+v", trial, before, after)
		}
	}
}

func TestLimitsDefaulting(t *testing.T) {
	l := Limits{}.withDefaults()
	if l != DefaultLimits() {
		t.Fatalf("zero Limits should default fully, got %+v", l)
	}
	l = Limits{MinBatch: 4, MaxBatch: 2}.withDefaults()
	if l.MaxBatch < l.MinBatch {
		t.Fatalf("inverted batch bounds not repaired: %+v", l)
	}
	c := New(Limits{MinBatch: 2, MaxBatch: 8}, 100, 2, 99, 8)
	if c.BatchCap() != 8 {
		t.Fatalf("initial cap not clamped: %d", c.BatchCap())
	}
	q, m := c.SpecParams()
	if q > 1 || m > DefaultLimits().MaxMultiplier {
		t.Fatalf("initial spec params not clamped: q=%v m=%v", q, m)
	}
}

func TestAdvisePartition(t *testing.T) {
	// 4 workers, flat cost: an 8x8 grid (2x workers per wavefront), so
	// 8-cell blocks on a 64x64 problem.
	g := AdvisePartition(64, 64, 4, nil)
	if g.Rows != 8 || g.Cols != 8 {
		t.Fatalf("flat 64x64/4 workers: want 8x8 blocks, got %v", g)
	}
	// A skewed cost model doubles the grid (halves the block) for load
	// balance.
	g = AdvisePartition(64, 64, 4, skewCost{})
	if g.Rows != 4 || g.Cols != 4 {
		t.Fatalf("skewed 64x64/4 workers: want 4x4 blocks, got %v", g)
	}
	// The grid never exceeds the problem: blocks floor at one cell.
	g = AdvisePartition(3, 200, 16, nil)
	if g.Rows != 1 || g.Cols != 7 {
		t.Fatalf("narrow problem: want 1x7 blocks, got %v", g)
	}
	// Degenerate inputs.
	if g = AdvisePartition(0, 0, 4, nil); g.Rows != 1 || g.Cols != 1 {
		t.Fatalf("degenerate problem: want 1x1, got %v", g)
	}
	if g = AdvisePartition(64, 64, 0, nil); g.Rows != 32 || g.Cols != 32 {
		t.Fatalf("zero workers should behave as one: got %v", g)
	}
	// Determinism: the simulator replays depend on it.
	for i := 0; i < 10; i++ {
		if again := AdvisePartition(64, 64, 4, skewCost{}); again != (dag.Size{Rows: 4, Cols: 4}) {
			t.Fatalf("advice not deterministic: %v", again)
		}
	}
}

type skewCost struct{}

func (skewCost) CellCost(i, j int) float64 {
	if i > 32 {
		return 100
	}
	return 1
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
