// Package tune closes the knob loop: an online controller that adjusts
// the dispatch batch cap and the speculation thresholds from the
// counters the runtime already keeps, plus a pre-run partition advisor
// driven by the kernel's cost model. EasyHPS's pitch is that the system
// — not the user — picks the parallel schedule; after batching (PR 4),
// speculation (PR 5) and the fleet (PR 6) grew workload-sensitive
// flags, this package makes the system pick those too.
//
// The controller is deliberately boring: pure arithmetic over counter
// deltas, no goroutines, no clocks, no calls out while holding its
// lock. The host control loop (core fault-tolerance tick, cluster and
// fleet control ticks, the simulator's scheduleTick) samples its
// counters, pre-computes the runtime-profile quantiles, and feeds one
// Sample per tick to Tick. That keeps the whole decision procedure
// deterministic under the simulator's fake clock — every rule in here
// landed with a .scenario file proving the adaptation before any CLI
// grew an -auto flag — and keeps Controller.mu a leaf in the lock
// hierarchy.
//
// Two rules run per tick:
//
//   - Batch cap, AIMD-style. Hunger beacons and steals mean workers sat
//     idle while work existed: the cap halves (multiplicative
//     decrease). Otherwise, while dispatch is making progress and the
//     bytes-per-vertex amortization is not degrading, the cap grows by
//     one (additive increase). On a stationary workload this climbs to
//     the best amortizing cap and stays there.
//
//   - Speculation thresholds, dispersion-driven. The p95/p50 ratio of
//     the runtime profile measures how heavy the straggler tail is.
//     A tight profile (low dispersion) drags SpecQuantile and
//     SpecMultiplier toward their conservative bounds so uniform
//     workloads stop paying for wasted backups; a heavy tail drags
//     them toward their aggressive bounds. Movement is damped: each
//     tick covers at most Limits.Gain of the remaining distance, so
//     consecutive recommendations cannot oscillate by more than
//     Gain·(bound range).
package tune

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dag"
)

// CostModel mirrors core.CostModel structurally so kernels' cost models
// satisfy it without this package importing core (core imports tune for
// the partition advisor; the dependency must point one way).
type CostModel interface {
	// CellCost estimates the relative compute cost of cell (i, j).
	CellCost(i, j int) float64
}

// Limits bounds every recommendation the controller may emit and fixes
// the damping. The property suite holds the controller to exactly these
// numbers: recommendations never leave [Min, Max], the batch cap never
// moves by more than MaxBatchStep in one tick, and the spec thresholds
// never move by more than Gain times their bound range.
type Limits struct {
	MinBatch, MaxBatch           int
	MinQuantile, MaxQuantile     float64
	MinMultiplier, MaxMultiplier float64

	// Gain is the fraction of the remaining distance to a target bound
	// the spec thresholds may cover per tick (0 < Gain <= 1).
	Gain float64

	// LowDispersion and HighDispersion split the p95/p50 ratio into
	// the three regimes: below Low the thresholds relax (speculate
	// less), above High they tighten (speculate more), between them
	// they hold.
	LowDispersion, HighDispersion float64
}

// DefaultLimits are the bounds every -auto entry point uses. The batch
// ceiling matches the largest cap the PR 4 batching benchmarks ever
// rewarded; the quantile/multiplier bounds bracket the PR 5 defaults
// (0.95, 2) from both sides.
func DefaultLimits() Limits {
	return Limits{
		MinBatch: 1, MaxBatch: 64,
		MinQuantile: 0.90, MaxQuantile: 0.99,
		MinMultiplier: 1.5, MaxMultiplier: 4,
		Gain:          0.25,
		LowDispersion: 1.5, HighDispersion: 3,
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MinBatch <= 0 {
		l.MinBatch = d.MinBatch
	}
	if l.MaxBatch < l.MinBatch {
		l.MaxBatch = d.MaxBatch
	}
	if l.MaxBatch < l.MinBatch {
		l.MaxBatch = l.MinBatch
	}
	if l.MinQuantile <= 0 {
		l.MinQuantile = d.MinQuantile
	}
	if l.MaxQuantile <= l.MinQuantile {
		l.MaxQuantile = d.MaxQuantile
	}
	if l.MaxQuantile > 1 {
		l.MaxQuantile = 1
	}
	if l.MinMultiplier <= 0 {
		l.MinMultiplier = d.MinMultiplier
	}
	if l.MaxMultiplier <= l.MinMultiplier {
		l.MaxMultiplier = d.MaxMultiplier
	}
	if l.Gain <= 0 || l.Gain > 1 {
		l.Gain = d.Gain
	}
	if l.LowDispersion <= 1 {
		l.LowDispersion = d.LowDispersion
	}
	if l.HighDispersion <= l.LowDispersion {
		l.HighDispersion = d.HighDispersion
	}
	return l
}

// MaxBatchStep is the largest move the batch cap may make in one tick
// starting from old: the additive step up is 1, the multiplicative step
// down halves (rounding down, so an odd cap moves ceil(old/2)), making
// the bound max(1, old-old/2).
func MaxBatchStep(old int) int {
	if step := old - old/2; step > 1 {
		return step
	}
	return 1
}

// Sample is one control-tick observation. Counter fields are cumulative
// (monotone) totals exactly as the runtime keeps them; the controller
// differences consecutive samples itself. Profile fields are
// pre-computed by the caller — quantile extraction takes the profile's
// own lock, which must not happen under Controller.mu.
type Sample struct {
	Dispatches int64 // vertices handed to workers
	TaskBytes  int64 // payload bytes shipped with them
	Hungers    int64 // hunger beacons (idle worker, work exists elsewhere)
	Steals     int64 // tasks reassigned by work stealing
	SpecWon    int64 // speculative backups that beat their primary
	SpecWasted int64 // speculative backups that lost the race

	ProfileP50, ProfileP95 time.Duration // runtime-profile quantiles
	ProfileSamples         int           // observations behind them
}

// Decision reports what one Tick concluded. Changed is true when any
// recommendation moved; hosts use it to gate EvTune trace events so
// runs without adaptation stay byte-identical.
type Decision struct {
	BatchCap       int
	SpecQuantile   float64
	SpecMultiplier float64
	Changed        bool
	Reason         string
}

// Snapshot is the /metrics view of the controller.
type Snapshot struct {
	BatchCap       int
	SpecQuantile   float64
	SpecMultiplier float64
	Adjustments    int64 // total ticks that changed a recommendation
}

// Controller holds the adaptive state. Getters are lock-free so the
// dispatch hot path (sender loops read BatchCap per draw) never
// contends with the control tick.
type Controller struct {
	lim Limits

	batch    atomicInt
	specQ    atomicFloat
	specMult atomicFloat
	adjusts  atomicInt

	mu       sync.Mutex // guards the tick state below; leaf lock, no calls out while held
	last     Sample
	haveLast bool
	lastBPV  float64 // bytes-per-vertex of the previous interval, 0 = unknown
	specMin  int
}

// New creates a controller starting from the given recommendations,
// clamped into lim. specMinSamples gates the spec rule the same way the
// speculation policy itself is gated: below it the profile is cold and
// the thresholds hold still.
func New(lim Limits, batch int, specQuantile, specMultiplier float64, specMinSamples int) *Controller {
	lim = lim.withDefaults()
	c := &Controller{lim: lim, specMin: specMinSamples}
	c.batch.store(int64(clampInt(batch, lim.MinBatch, lim.MaxBatch)))
	c.specQ.store(clampFloat(specQuantile, lim.MinQuantile, lim.MaxQuantile))
	c.specMult.store(clampFloat(specMultiplier, lim.MinMultiplier, lim.MaxMultiplier))
	return c
}

// Limits returns the bounds the controller was built with (after
// defaulting).
func (c *Controller) Limits() Limits { return c.lim }

// BatchCap returns the current dispatch batch-cap recommendation.
func (c *Controller) BatchCap() int { return int(c.batch.load()) }

// SpecParams returns the current speculation-threshold recommendation.
func (c *Controller) SpecParams() (quantile, multiplier float64) {
	return c.specQ.load(), c.specMult.load()
}

// Adjustments returns how many ticks changed at least one
// recommendation.
func (c *Controller) Adjustments() int64 { return c.adjusts.load() }

// Snapshot returns the current recommendations for /metrics.
func (c *Controller) Snapshot() Snapshot {
	q, m := c.SpecParams()
	return Snapshot{
		BatchCap:       c.BatchCap(),
		SpecQuantile:   q,
		SpecMultiplier: m,
		Adjustments:    c.Adjustments(),
	}
}

// Tick feeds one observation to the controller and returns the
// (possibly moved) recommendations. The first tick only establishes the
// baseline. Tick is deterministic: the same sample sequence always
// yields the same decision sequence.
func (c *Controller) Tick(s Sample) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()

	d := Decision{
		BatchCap:       int(c.batch.load()),
		SpecQuantile:   c.specQ.load(),
		SpecMultiplier: c.specMult.load(),
	}
	if !c.haveLast {
		c.last, c.haveLast = s, true
		return d
	}
	prev := c.last
	c.last = s

	var reasons []string
	if r := c.tickBatch(prev, s, &d); r != "" {
		reasons = append(reasons, r)
	}
	if r := c.tickSpec(prev, s, &d); r != "" {
		reasons = append(reasons, r)
	}
	if d.Changed {
		c.adjusts.add(1)
		for i, r := range reasons {
			if i > 0 {
				d.Reason += " "
			}
			d.Reason += r
		}
	}
	return d
}

// tickBatch applies the AIMD rule. Called with c.mu held.
func (c *Controller) tickBatch(prev, s Sample, d *Decision) string {
	old := int(c.batch.load())
	dDispatch := s.Dispatches - prev.Dispatches
	dBytes := s.TaskBytes - prev.TaskBytes
	dHunger := (s.Hungers - prev.Hungers) + (s.Steals - prev.Steals)

	next := old
	switch {
	case dHunger > 0:
		// Workers starved while work existed: batches are hoarding.
		next = clampInt(old/2, c.lim.MinBatch, c.lim.MaxBatch)
	case dDispatch > 0:
		bpv := float64(dBytes) / float64(dDispatch)
		// Grow while amortization improves or holds (5% tolerance
		// absorbs jitter); a degrading bytes-per-vertex means larger
		// batches stopped paying and the cap parks where it is.
		if c.lastBPV == 0 || bpv <= c.lastBPV*1.05 {
			next = clampInt(old+1, c.lim.MinBatch, c.lim.MaxBatch)
		}
		c.lastBPV = bpv
	}
	if next == old {
		return ""
	}
	c.batch.store(int64(next))
	d.BatchCap = next
	d.Changed = true
	if next < old {
		return fmt.Sprintf("batch %d->%d (hunger)", old, next)
	}
	return fmt.Sprintf("batch %d->%d (amortizing)", old, next)
}

// tickSpec applies the speculation rule: the direct outcome signal
// first (backups losing races means the thresholds are too eager,
// whatever the dispersion says), the profile's p95/p50 dispersion
// otherwise. Called with c.mu held.
func (c *Controller) tickSpec(prev, s Sample, d *Decision) string {
	if s.ProfileSamples < c.specMin || s.ProfileP50 <= 0 {
		return "" // cold profile: hold, exactly like the speculation gate
	}
	dWon := s.SpecWon - prev.SpecWon
	dWasted := s.SpecWasted - prev.SpecWasted
	dispersion := float64(s.ProfileP95) / float64(s.ProfileP50)
	var targetQ, targetM float64
	var why string
	switch {
	case dWasted > dWon:
		// Backups mostly lost the race this interval: each one paid a
		// dispatch and a worker slot for nothing. Relax.
		targetQ, targetM = c.lim.MaxQuantile, c.lim.MaxMultiplier
		why = fmt.Sprintf("wasted %d/%d backups", dWasted, dWasted+dWon)
	case dispersion < c.lim.LowDispersion:
		// Uniform runtimes: nothing is worth backing up. Relax.
		targetQ, targetM = c.lim.MaxQuantile, c.lim.MaxMultiplier
		why = fmt.Sprintf("uniform, dispersion %.2f", dispersion)
	case dispersion > c.lim.HighDispersion:
		// Heavy tail: stragglers dominate makespan. Tighten.
		targetQ, targetM = c.lim.MinQuantile, c.lim.MinMultiplier
		why = fmt.Sprintf("tail, dispersion %.2f", dispersion)
	default:
		return ""
	}
	oldQ, oldM := c.specQ.load(), c.specMult.load()
	newQ := stepToward(oldQ, targetQ, c.lim.Gain)
	newM := stepToward(oldM, targetM, c.lim.Gain)
	if newQ == oldQ && newM == oldM {
		return ""
	}
	c.specQ.store(newQ)
	c.specMult.store(newM)
	d.SpecQuantile, d.SpecMultiplier = newQ, newM
	d.Changed = true
	return fmt.Sprintf("spec q=%.3f m=%.2f (%s)", newQ, newM, why)
}

// stepToward moves cur a gain-fraction of the way to target, snapping
// when the residual is negligible so stationary inputs converge to a
// fixed point instead of asymptoting forever.
func stepToward(cur, target, gain float64) float64 {
	next := cur + (target-cur)*gain
	if math.Abs(target-next) < 1e-4 {
		next = target
	}
	return next
}

// AdvisePartition picks the processor-level block size (the
// core.Config.ProcPartition / sim JobSpec.Proc unit: cells per block
// per dimension) for an rows-by-cols problem solved by workers workers,
// replacing the static divide-into-8 default when -auto is set. The
// wavefront of a P-by-Q block grid is at most min(P, Q) blocks wide, so
// keeping every worker busy needs a grid on the order of the worker
// count per dimension; the advisor targets twice that for pipelining
// slack and sizes blocks to produce it. A cost model, when the kernel
// provides one, is probed on a coarse lattice: skewed per-cell costs
// double the grid again (halving the block) so expensive regions split
// across workers instead of serializing inside one block. The choice is
// deterministic — same inputs, same block — because scenario replay
// depends on it.
func AdvisePartition(rows, cols, workers int, cost CostModel) dag.Size {
	if rows <= 0 || cols <= 0 {
		return dag.Size{Rows: 1, Cols: 1}
	}
	if workers < 1 {
		workers = 1
	}
	target := 2 * workers
	if cost != nil && costSkewed(rows, cols, cost) {
		target *= 2
	}
	// Grid per dimension is capped by the cell count (blocks hold at
	// least one cell); the block size is whatever yields that grid.
	gr := clampInt(target, 1, rows)
	gc := clampInt(target, 1, cols)
	return dag.Size{Rows: (rows + gr - 1) / gr, Cols: (cols + gc - 1) / gc}
}

// costSkewed probes the cost model on an 8x8 lattice and reports
// whether the most expensive probe is more than 4x the cheapest —
// the point where load balance starts to beat per-block overhead.
func costSkewed(rows, cols int, cost CostModel) bool {
	const probes = 8
	lo, hi := math.Inf(1), math.Inf(-1)
	for a := 0; a < probes; a++ {
		for b := 0; b < probes; b++ {
			i := a * (rows - 1) / (probes - 1)
			j := b * (cols - 1) / (probes - 1)
			v := cost.CellCost(i, j)
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				continue // nonsense probe: ignore rather than distort
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo < hi && hi > 4*lo
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
