package tune

import (
	"math"
	"sync/atomic"
)

// atomicInt and atomicFloat keep the hot-path getters lock-free: sender
// loops read the batch cap on every draw and must never contend with
// the control tick.

type atomicInt struct{ v atomic.Int64 }

func (a *atomicInt) load() int64   { return a.v.Load() }
func (a *atomicInt) store(n int64) { a.v.Store(n) }
func (a *atomicInt) add(n int64)   { a.v.Add(n) }

type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(f float64) { a.bits.Store(math.Float64bits(f)) }
