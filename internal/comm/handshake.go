package comm

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// ProtocolVersion is the wire protocol generation of this binary. Master
// and workers exchange it in the join handshake and refuse to assemble a
// cluster across versions: before the check, a skewed binary pair failed
// deep inside the run as an opaque gob decode error; now it fails at join
// time with both sides naming the two versions.
//
// History: 0 is the pre-versioning protocol (hello carried only a rank and
// the master sent no welcome); 1 added the hello/welcome exchange with
// version and problem-spec digest, heartbeat/leave message kinds, and
// elastic joins; 2 added tagged binary frames for task/result messages
// and the task-batch/result-batch kinds (see wire.go); 3 added the job
// field on binary frames plus the job-spec/job-end kinds and the fleet
// hello flag, so one worker can serve several concurrent jobs of a
// shared fleet; 4 added the keyed data-region encoding (negative leading
// count, content keys and reference records — matrix/codec_keyed.go), so
// a worker already holding a block by content is sent a 44-byte reference
// instead of the block. A v3 worker would reject the negative count as
// corruption, hence the generation bump.
const ProtocolVersion = 4

// Hello is the first frame on every worker connection: who is joining and
// what problem it believes the cluster is solving.
type Hello struct {
	// Rank is the fixed-mode rank (1..slaves); elastic workers leave it
	// zero and are assigned a member id by the master instead.
	Rank int
	// Version is the sender's ProtocolVersion. A pre-versioning binary
	// decodes to 0 here, which is exactly what makes the skew detectable.
	Version int
	// Digest fingerprints the problem spec (app, size, seed, partition)
	// the worker was started with. Empty means "not checked" for
	// backward compatibility of the fixed-mode tools.
	Digest string
	// Elastic marks a worker joining an elastic cluster (internal/cluster)
	// rather than a fixed-size rendezvous.
	Elastic bool
	// Fleet marks a worker joining a shared multi-job fleet
	// (internal/fleet): it carries no single-job digest — per-job specs
	// are verified via the job-spec attach frames instead.
	Fleet bool
	// Name optionally labels the member in logs and metrics.
	Name string
}

// Welcome is the master's reply to a Hello. A non-empty Err means the join
// was refused and the connection is about to close.
type Welcome struct {
	// Version is the master's ProtocolVersion, so a too-new worker can
	// also diagnose the skew on its side.
	Version int
	// Member is the identity granted to the worker: its rank in fixed
	// mode, its assigned member id in elastic mode.
	Member int
	// Err is the refusal reason, empty on success.
	Err string
}

// Conn is one message connection: the unit the TCP transport and the
// elastic cluster layer are both built from. Hot task/result messages
// travel as binary frames; the handshake and control messages share a
// persistent gob stream on the same connection (see wire.go for the
// framing and why the two cannot be confused). Writes of whole frames
// are serialized by a mutex; reads are single-consumer.
//
// The reader side funnels through one bufio.Reader that implements
// io.ByteReader: gob then reads from it byte-exactly instead of wrapping
// the connection in its own over-reading buffer, which is what makes it
// safe to interleave gob values and raw frames on one stream.
type Conn struct {
	c   net.Conn
	br  *bufio.Reader
	enc *gob.Encoder
	dec *gob.Decoder
	wmu sync.Mutex

	// readIdle, when positive, bounds how long one Recv may wait for the
	// first byte of the next frame. With periodic heartbeats on the link
	// this turns a silently dead peer (half-open TCP after a crash, a
	// partitioned network) into a timeout error instead of a forever
	// hang.
	readIdle time.Duration
	// writeTimeout, when positive, bounds one Send: a peer that stopped
	// reading eventually fills the TCP buffers, and without a deadline
	// the sender wedges inside the kernel write. After a timed-out Send
	// the gob stream is undefined; treat the connection as dead.
	writeTimeout time.Duration
}

// defaultKeepAlive is the TCP keepalive probe period applied to every
// accepted and dialed connection, so the OS notices a vanished peer even
// on an idle link.
const defaultKeepAlive = 15 * time.Second

// NewConn wraps an established network connection. keepAlive configures
// the TCP keepalive period: 0 applies the 15 s default, negative disables
// probing (useful in tests that fake time).
func NewConn(c net.Conn, keepAlive time.Duration) *Conn {
	if tc, ok := c.(*net.TCPConn); ok && keepAlive >= 0 {
		if keepAlive == 0 {
			keepAlive = defaultKeepAlive
		}
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(keepAlive)
	}
	br := bufio.NewReader(c)
	return &Conn{c: c, br: br, enc: gob.NewEncoder(c), dec: gob.NewDecoder(br)}
}

// SetReadIdle sets the per-Recv idle bound (0 disables). Callers that
// enable it must guarantee periodic traffic (heartbeats) on a healthy
// link, or an idle-but-alive peer will be misdiagnosed as dead.
func (cn *Conn) SetReadIdle(d time.Duration) { cn.readIdle = d }

// SetWriteTimeout sets the per-Send bound (0 disables). A Send that hits
// it leaves the gob stream undefined; the caller must close the
// connection and treat the peer as dead.
func (cn *Conn) SetWriteTimeout(d time.Duration) { cn.writeTimeout = d }

// RemoteAddr returns the peer address.
func (cn *Conn) RemoteAddr() net.Addr { return cn.c.RemoteAddr() }

// Send writes one message frame, honoring the write timeout. Task and
// result messages are encoded with the binary codec into a pooled buffer
// and written in a single call; control messages use the persistent gob
// stream.
func (cn *Conn) Send(m Message) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if cn.writeTimeout > 0 {
		if err := cn.c.SetWriteDeadline(time.Now().Add(cn.writeTimeout)); err != nil {
			return err
		}
	}
	if !binaryKind(m.Kind) {
		return cn.enc.Encode(m)
	}
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	frame, err := appendBinaryFrame((*bufp)[:0], m)
	*bufp = frame[:0]
	if err != nil {
		return err
	}
	_, err = cn.c.Write(frame)
	return err
}

// Recv reads the next message frame, honoring the read-idle bound. One
// peeked byte decides the codec: the binary magic can never begin a gob
// message, so the stream stays self-describing and a peer that falls
// back to gob for any kind is still understood.
func (cn *Conn) Recv() (Message, error) {
	if cn.readIdle > 0 {
		if err := cn.c.SetReadDeadline(time.Now().Add(cn.readIdle)); err != nil {
			return Message{}, err
		}
	}
	first, err := cn.br.Peek(1)
	if err != nil {
		return Message{}, err
	}
	if first[0] == binMagic {
		return readBinaryFrame(cn.br)
	}
	var m Message
	if err := cn.dec.Decode(&m); err != nil {
		return Message{}, err
	}
	return m, nil
}

// Close closes the underlying connection.
func (cn *Conn) Close() error { return cn.c.Close() }

// SendHello / RecvHello / SendWelcome / RecvHello frame the join
// handshake over the same gob stream the messages use.

// SendHello writes the join frame.
func (cn *Conn) SendHello(h Hello) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	return cn.enc.Encode(h)
}

// RecvHello reads the join frame, bounded by timeout so a connected but
// mute peer cannot wedge the accept loop.
func (cn *Conn) RecvHello(timeout time.Duration) (Hello, error) {
	var h Hello
	if timeout > 0 {
		if err := cn.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return h, err
		}
		defer cn.c.SetReadDeadline(time.Time{})
	}
	err := cn.dec.Decode(&h)
	return h, err
}

// SendWelcome writes the master's handshake reply.
func (cn *Conn) SendWelcome(w Welcome) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	return cn.enc.Encode(w)
}

// RecvWelcome reads the master's handshake reply, bounded by timeout.
func (cn *Conn) RecvWelcome(timeout time.Duration) (Welcome, error) {
	var w Welcome
	if timeout > 0 {
		if err := cn.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return w, err
		}
		defer cn.c.SetReadDeadline(time.Time{})
	}
	err := cn.dec.Decode(&w)
	return w, err
}

// Reject sends a refusal welcome and closes the connection; the error
// string reaches the worker before the close.
func (cn *Conn) Reject(reason string) {
	_ = cn.SendWelcome(Welcome{Version: ProtocolVersion, Err: reason})
	cn.c.Close()
}

// CheckHello validates a received Hello against this binary's protocol
// version and the given spec digest (empty digest on either side skips
// the digest check). It returns a refusal reason, or "" when compatible.
func CheckHello(h Hello, digest string) string {
	if h.Version != ProtocolVersion {
		return fmt.Sprintf("protocol version mismatch: worker speaks v%d, master speaks v%d (rebuild both binaries from the same source)", h.Version, ProtocolVersion)
	}
	if digest != "" && h.Digest != "" && h.Digest != digest {
		return fmt.Sprintf("problem spec mismatch: worker built digest %s, master expects %s (check -app/-n/-seed/-proc/-thread flags)", h.Digest, digest)
	}
	return ""
}

// DialHello dials addr (retrying until timeout so workers may start before
// the master), performs the hello/welcome handshake, and returns the live
// connection. It fails with the master's refusal reason, or with a
// version-skew diagnosis when the master speaks a different protocol.
func DialHello(addr string, h Hello, timeout time.Duration) (*Conn, Welcome, error) {
	return dialHelloVersion(addr, h, timeout, ProtocolVersion)
}

// dialHelloVersion is DialHello with the local version injectable, so the
// skew paths are unit-testable from one binary.
func dialHelloVersion(addr string, h Hello, timeout time.Duration, version int) (*Conn, Welcome, error) {
	h.Version = version
	var c net.Conn
	var err error
	deadline := time.Now().Add(timeout)
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, Welcome{}, fmt.Errorf("comm: dialing master %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	cn := NewConn(c, 0)
	if err := cn.SendHello(h); err != nil {
		cn.Close()
		return nil, Welcome{}, fmt.Errorf("comm: sending hello: %w", err)
	}
	hsTimeout := time.Until(deadline)
	if hsTimeout < time.Second {
		hsTimeout = time.Second
	}
	w, err := cn.RecvWelcome(hsTimeout)
	if err != nil {
		cn.Close()
		return nil, Welcome{}, fmt.Errorf("comm: waiting for master welcome (a pre-v1 master sends none): %w", err)
	}
	if w.Err != "" {
		cn.Close()
		return nil, Welcome{}, fmt.Errorf("comm: master rejected join: %s", w.Err)
	}
	if w.Version != version {
		cn.Close()
		return nil, Welcome{}, fmt.Errorf("comm: protocol version mismatch: master speaks v%d, worker speaks v%d (rebuild both binaries from the same source)", w.Version, version)
	}
	return cn, w, nil
}
