package comm

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// Large payloads (a full data region of a big block) must survive the gob
// framing intact in both directions.
func TestTCPLargePayload(t *testing.T) {
	addr := "127.0.0.1:39219"
	type result struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan result, 1)
	go func() {
		m, err := ListenMaster(addr, 1, 5*time.Second)
		masterc <- result{m, err}
	}()
	w, err := DialWorker(addr, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}
	defer mr.tr.Close()

	payload := make([]byte, 8<<20) // 8 MiB
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := mr.tr.Send(1, Message{Kind: KindTask, Vertex: 9, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := w.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Vertex != 9 || !bytes.Equal(got.Payload, payload) {
		t.Fatal("large payload corrupted master->worker")
	}
	// And back.
	if err := w.Send(0, Message{Kind: KindResult, Vertex: 9, Payload: payload[:1<<20]}); err != nil {
		t.Fatal(err)
	}
	back, err := mr.tr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Payload, payload[:1<<20]) {
		t.Fatal("large payload corrupted worker->master")
	}
}

// Concurrent senders on one TCP link must not interleave frames (the
// write mutex serializes whole gob values).
func TestTCPConcurrentSenders(t *testing.T) {
	addr := "127.0.0.1:39220"
	type result struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan result, 1)
	go func() {
		m, err := ListenMaster(addr, 1, 5*time.Second)
		masterc <- result{m, err}
	}()
	w, err := DialWorker(addr, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}
	defer mr.tr.Close()

	const goroutines, per = 6, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				payload := bytes.Repeat([]byte{byte(g)}, 100+g)
				if err := w.Send(0, Message{Kind: KindUser, Vertex: int32(g), Payload: payload}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < goroutines*per; k++ {
			m, err := mr.tr.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			want := bytes.Repeat([]byte{byte(m.Vertex)}, 100+int(m.Vertex))
			if !bytes.Equal(m.Payload, want) {
				t.Errorf("frame from goroutine %d corrupted", m.Vertex)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("messages lost")
	}
}

// A worker that disappears mid-run must not wedge the master's Recv: the
// pump simply stops, and Send to the dead link errors out eventually.
func TestTCPWorkerDisappears(t *testing.T) {
	addr := "127.0.0.1:39221"
	type result struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan result, 1)
	go func() {
		m, err := ListenMaster(addr, 1, 5*time.Second)
		masterc <- result{m, err}
	}()
	w, err := DialWorker(addr, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}
	defer mr.tr.Close()

	w.Close() // the worker dies

	// Sends eventually fail (TCP buffers may absorb a few).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := mr.tr.Send(1, Message{Kind: KindTask, Payload: make([]byte, 1<<20)}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to dead worker never fail")
		}
	}
}
