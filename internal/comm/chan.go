package comm

import (
	"fmt"
	"sync"
	"time"
)

// ChanNetwork is the in-process transport: n ranks exchanging messages via
// buffered channels inside one OS process. Each "node" of the emulated
// cluster is a goroutine group holding one endpoint.
type ChanNetwork struct {
	lat LatencyModel
	eps []*chanEndpoint

	// statsMu guards the cumulative traffic counters used by the
	// benchmark harness.
	statsMu   sync.Mutex
	bytesSent int64
	msgsSent  int64
}

type chanEndpoint struct {
	nw   *ChanNetwork
	rank int
	in   chan Message
	done chan struct{}
	once sync.Once
}

// NewChanNetwork creates a network of size ranks (rank 0 is the master)
// with the given latency model.
func NewChanNetwork(size int, lat LatencyModel) *ChanNetwork {
	if size < 2 {
		panic("comm: network needs at least a master and one slave")
	}
	nw := &ChanNetwork{lat: lat, eps: make([]*chanEndpoint, size)}
	for r := range nw.eps {
		nw.eps[r] = &chanEndpoint{
			nw:   nw,
			rank: r,
			// The runtime protocol keeps the number of in-flight
			// messages per rank small (one outstanding task plus
			// idle/result signals per slave); the buffer is sized
			// with ample margin so senders never block for long.
			in:   make(chan Message, 16*size+256),
			done: make(chan struct{}),
		}
	}
	return nw
}

// Endpoint returns the transport of the given rank.
func (nw *ChanNetwork) Endpoint(rank int) Transport { return nw.eps[rank] }

// Close shuts down every endpoint.
func (nw *ChanNetwork) Close() {
	for _, ep := range nw.eps {
		ep.Close()
	}
}

// Traffic returns the cumulative message and payload-byte counts sent over
// the network.
func (nw *ChanNetwork) Traffic() (msgs, bytes int64) {
	nw.statsMu.Lock()
	defer nw.statsMu.Unlock()
	return nw.msgsSent, nw.bytesSent
}

func (ep *chanEndpoint) Rank() int { return ep.rank }
func (ep *chanEndpoint) Size() int { return len(ep.nw.eps) }

func (ep *chanEndpoint) Send(to int, m Message) error {
	if to < 0 || to >= len(ep.nw.eps) {
		return fmt.Errorf("comm: send to invalid rank %d", to)
	}
	m.From = ep.rank
	m.To = to
	if d := ep.nw.lat.Delay(m.PayloadLen()); d > 0 {
		time.Sleep(d)
	}
	ep.nw.statsMu.Lock()
	ep.nw.msgsSent++
	ep.nw.bytesSent += int64(m.PayloadLen())
	ep.nw.statsMu.Unlock()

	dst := ep.nw.eps[to]
	select {
	case <-dst.done:
		// Checked first so a Send after Close deterministically fails
		// even while buffer space remains.
		return ErrClosed
	default:
	}
	select {
	case dst.in <- m:
		return nil
	case <-dst.done:
		return ErrClosed
	}
}

func (ep *chanEndpoint) Recv() (Message, error) {
	select {
	case m := <-ep.in:
		return m, nil
	case <-ep.done:
		// Drain messages that were already buffered before the close.
		select {
		case m := <-ep.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (ep *chanEndpoint) Close() error {
	ep.once.Do(func() { close(ep.done) })
	return nil
}
