package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestChanNetworkBasic(t *testing.T) {
	nw := NewChanNetwork(3, LatencyModel{})
	defer nw.Close()
	m0 := nw.Endpoint(0)
	s1 := nw.Endpoint(1)

	if m0.Rank() != 0 || m0.Size() != 3 {
		t.Fatalf("rank/size = %d/%d", m0.Rank(), m0.Size())
	}
	if err := s1.Send(0, Message{Kind: KindIdle}); err != nil {
		t.Fatal(err)
	}
	got, err := m0.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindIdle || got.From != 1 || got.To != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestChanNetworkPairOrdering(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{})
	defer nw.Close()
	const n = 500
	go func() {
		for k := 0; k < n; k++ {
			nw.Endpoint(1).Send(0, Message{Kind: KindUser, Vertex: int32(k)})
		}
	}()
	for k := 0; k < n; k++ {
		m, err := nw.Endpoint(0).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Vertex != int32(k) {
			t.Fatalf("message %d arrived out of order (vertex %d)", k, m.Vertex)
		}
	}
}

func TestChanNetworkManyToOne(t *testing.T) {
	const slaves, per = 6, 50
	nw := NewChanNetwork(slaves+1, LatencyModel{})
	defer nw.Close()
	var wg sync.WaitGroup
	for s := 1; s <= slaves; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := nw.Endpoint(s).Send(0, Message{Kind: KindResult, Vertex: int32(k)}); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(s)
	}
	seen := make(map[int]int)
	for k := 0; k < slaves*per; k++ {
		m, err := nw.Endpoint(0).Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[m.From]++
	}
	wg.Wait()
	for s := 1; s <= slaves; s++ {
		if seen[s] != per {
			t.Errorf("rank %d delivered %d messages, want %d", s, seen[s], per)
		}
	}
}

func TestChanNetworkCloseUnblocksRecv(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{})
	errc := make(chan error, 1)
	go func() {
		_, err := nw.Endpoint(1).Recv()
		errc <- err
	}()
	// No ordering guard: whether Recv parks first or Close lands first,
	// the contract is the same ErrClosed, so both interleavings are
	// valid runs of this test.
	nw.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
	if err := nw.Endpoint(0).Send(1, Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestChanNetworkDrainAfterClose(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{})
	nw.Endpoint(0).Send(1, Message{Kind: KindEnd})
	nw.Close()
	m, err := nw.Endpoint(1).Recv()
	if err != nil {
		t.Fatalf("buffered message lost at close: %v", err)
	}
	if m.Kind != KindEnd {
		t.Fatalf("got %v", m.Kind)
	}
	if _, err := nw.Endpoint(1).Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed after drain", err)
	}
}

func TestChanNetworkInvalidRank(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{})
	defer nw.Close()
	if err := nw.Endpoint(0).Send(7, Message{}); err == nil {
		t.Fatal("send to invalid rank succeeded")
	}
}

func TestChanNetworkTraffic(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{})
	defer nw.Close()
	nw.Endpoint(0).Send(1, Message{Payload: make([]byte, 100)})
	nw.Endpoint(0).Send(1, Message{Payload: make([]byte, 28)})
	msgs, bytes := nw.Traffic()
	if msgs != 2 || bytes != 128 {
		t.Fatalf("Traffic = %d msgs / %d bytes, want 2 / 128", msgs, bytes)
	}
}

func TestLatencyModelDelay(t *testing.T) {
	l := LatencyModel{Base: time.Millisecond, PerKB: time.Millisecond}
	if d := l.Delay(0); d != time.Millisecond {
		t.Errorf("Delay(0) = %v", d)
	}
	if d := l.Delay(2048); d != 3*time.Millisecond {
		t.Errorf("Delay(2048) = %v", d)
	}
	if !(LatencyModel{}).Zero() || l.Zero() {
		t.Error("Zero() wrong")
	}
}

func TestLatencyModelSlowsSend(t *testing.T) {
	nw := NewChanNetwork(2, LatencyModel{Base: 20 * time.Millisecond})
	defer nw.Close()
	start := time.Now()
	nw.Endpoint(0).Send(1, Message{})
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("send took %v, want >= ~20ms of injected latency", d)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindIdle: "idle", KindTask: "task", KindResult: "result",
		KindEnd: "end", KindUser: "user", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestTCPTransportFixedPort(t *testing.T) {
	const slaves = 2
	addr := "127.0.0.1:39217"

	type result struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan result, 1)
	go func() {
		m, err := ListenMaster(addr, slaves, 5*time.Second)
		masterc <- result{m, err}
	}()

	var workers []*TCPTransport
	for r := 1; r <= slaves; r++ {
		w, err := DialWorker(addr, r, slaves, 5*time.Second)
		if err != nil {
			t.Fatalf("DialWorker(%d): %v", r, err)
		}
		defer w.Close()
		workers = append(workers, w)
	}
	mr := <-masterc
	if mr.err != nil {
		t.Fatalf("ListenMaster: %v", mr.err)
	}
	master := mr.tr
	defer master.Close()

	if master.Size() != slaves+1 || workers[0].Size() != slaves+1 {
		t.Fatal("wrong size")
	}

	// Worker -> master.
	if err := workers[0].Send(0, Message{Kind: KindIdle, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, err := master.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 || m.Kind != KindIdle || string(m.Payload) != "hi" {
		t.Fatalf("got %+v", m)
	}

	// Master -> each worker.
	for r := 1; r <= slaves; r++ {
		if err := master.Send(r, Message{Kind: KindTask, Vertex: int32(r * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	for k, w := range workers {
		m, err := w.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Vertex != int32((k+1)*10) || m.From != 0 {
			t.Fatalf("worker %d got %+v", k+1, m)
		}
	}

	// Worker has no link to another worker.
	if err := workers[0].Send(2, Message{}); err == nil {
		t.Fatal("worker->worker send should fail")
	}

	master.Close()
	if err := master.Send(1, Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

func TestTCPTransportOrdering(t *testing.T) {
	addr := "127.0.0.1:39218"
	type result struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan result, 1)
	go func() {
		m, err := ListenMaster(addr, 1, 5*time.Second)
		masterc <- result{m, err}
	}()
	w, err := DialWorker(addr, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}
	defer mr.tr.Close()

	const n = 200
	go func() {
		for k := 0; k < n; k++ {
			w.Send(0, Message{Kind: KindUser, Vertex: int32(k), Payload: []byte(fmt.Sprintf("p%d", k))})
		}
	}()
	for k := 0; k < n; k++ {
		m, err := mr.tr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Vertex != int32(k) {
			t.Fatalf("out of order: got %d at position %d", m.Vertex, k)
		}
	}
}

func TestDialWorkerBadRank(t *testing.T) {
	if _, err := DialWorker("127.0.0.1:1", 0, 2, time.Millisecond); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := DialWorker("127.0.0.1:1", 3, 2, time.Millisecond); err == nil {
		t.Fatal("rank beyond slaves accepted")
	}
}

func TestDialWorkerTimeout(t *testing.T) {
	start := time.Now()
	_, err := DialWorker("127.0.0.1:1", 1, 1, 200*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honored")
	}
}
