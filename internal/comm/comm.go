// Package comm is the message-passing substrate of EasyHPS — the stand-in
// for MPI in the paper's processor-level parallelization.
//
// The runtime only needs ordered, reliable point-to-point messages between
// a master rank (0) and a set of slave ranks (1..n). Two transports are
// provided:
//
//   - ChanNetwork: every rank lives in the same OS process; messages travel
//     over Go channels, optionally delayed by a LatencyModel so the
//     communication cost of a real cluster can be emulated on one machine;
//   - TCP: ranks are separate OS processes connected over TCP with
//     gob-framed messages, for genuine multi-process deployments.
package comm

import (
	"errors"
	"fmt"
)

// Kind discriminates the runtime protocol messages.
type Kind uint8

const (
	// KindIdle is sent by a slave to announce it is ready for a
	// sub-task (step a of the slave scheduling loop).
	KindIdle Kind = iota + 1
	// KindTask carries a sub-task: the vertex id and the encoded data
	// region (output rect plus input blocks).
	KindTask
	// KindResult carries the computed output block of a sub-task back to
	// the master.
	KindResult
	// KindEnd tells a slave that scheduling has finished and it should
	// shut down.
	KindEnd
	// KindUser is reserved for application-level messages.
	KindUser
	// KindHeartbeat is the liveness beacon of the elastic cluster layer:
	// workers send it periodically and the master echoes it, so both
	// sides can bound how long a link may stay silent.
	KindHeartbeat
	// KindLeave announces a graceful departure from an elastic cluster;
	// the master revokes the member's leases and reassigns its work.
	KindLeave
	// KindTaskBatch carries several sub-tasks coalesced into one message
	// (Batch holds the entries); all of them were computable when the
	// batch was drained, so they are mutually independent.
	KindTaskBatch
	// KindResultBatch carries the coalesced output blocks of a task
	// batch back to the master (Batch holds the entries).
	KindResultBatch
	// KindHunger is sent by a worker whose local pool has been drained
	// for a while: it announces capacity beyond the ordinary idle
	// announcement, inviting the master to steal queued-but-undispatched
	// work from a loaded peer toward this worker.
	KindHunger
	// KindJobSpec attaches a job to a fleet worker: the master sends it
	// before the first task of a job, carrying the job id in Job and a
	// JSON-encoded job description (kernel spec, partitions, digest) in
	// Payload. The worker builds and caches the kernel state for that job
	// so subsequent task frames only need the job id.
	KindJobSpec
	// KindJobEnd detaches a job from a fleet worker: the job identified
	// by Job has finished (or failed), so the worker frees its cached
	// kernel state. Unlike KindEnd it does not shut the worker down.
	KindJobEnd
)

func (k Kind) String() string {
	switch k {
	case KindIdle:
		return "idle"
	case KindTask:
		return "task"
	case KindResult:
		return "result"
	case KindEnd:
		return "end"
	case KindUser:
		return "user"
	case KindHeartbeat:
		return "heartbeat"
	case KindLeave:
		return "leave"
	case KindTaskBatch:
		return "task-batch"
	case KindResultBatch:
		return "result-batch"
	case KindHunger:
		return "hunger"
	case KindJobSpec:
		return "job-spec"
	case KindJobEnd:
		return "job-end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// TaskEntry is one vertex of a batched task or result message: the same
// (vertex, attempt, payload) triple a KindTask/KindResult message carries
// in its top-level fields.
type TaskEntry struct {
	Vertex  int32
	Attempt int32
	Payload []byte
}

// Message is the envelope exchanged between ranks.
type Message struct {
	From, To int
	Kind     Kind
	// Vertex is the processor-level DAG vertex id for task/result
	// messages.
	Vertex int32
	// Attempt numbers the dispatch attempts of a vertex so that results
	// of timed-out attempts can be recognized and dropped.
	Attempt int32
	// Job scopes task, result, and hunger messages to one job of a
	// shared fleet, so a worker can hold batches from several concurrent
	// DAGs at once. Zero for single-job (non-fleet) runtimes, whose
	// masters own exactly one DAG.
	Job int32
	// Payload is the application body (encoded blocks).
	Payload []byte
	// Batch holds the entries of a KindTaskBatch/KindResultBatch message;
	// nil for every other kind.
	Batch []TaskEntry
	// More marks a partial result flush: the sender is still working on
	// the rest of the current task batch, so the master must not treat
	// this message as an idle announcement.
	More bool
}

// PayloadLen returns the total application payload carried by m, batch
// entries included — the size the transports account as traffic.
func (m Message) PayloadLen() int {
	n := len(m.Payload)
	for _, e := range m.Batch {
		n += len(e.Payload)
	}
	return n
}

// ErrClosed is returned by Recv after the transport has been closed and
// drained, and by Send on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// Transport is one rank's endpoint of the network.
type Transport interface {
	// Rank is this endpoint's rank; the master is rank 0.
	Rank() int
	// Size is the total number of ranks, master included.
	Size() int
	// Send delivers m to rank to. Messages between a fixed pair of ranks
	// arrive in send order.
	Send(to int, m Message) error
	// Recv blocks until a message arrives, returning ErrClosed once the
	// transport is closed and the inbox drained.
	Recv() (Message, error)
	// Close shuts the endpoint down and unblocks pending Recv calls.
	Close() error
}
