package comm

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// Version skew, direction 1: an old worker (protocol v0, the
// pre-versioning hello) dials a current master. The master must refuse
// the join with an error naming both versions, and the worker must see
// that reason instead of an opaque gob failure.
func TestHandshakeRejectsOldWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	masterErr := make(chan string, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			masterErr <- err.Error()
			return
		}
		cn := NewConn(c, 0)
		hello, err := cn.RecvHello(5 * time.Second)
		if err != nil {
			masterErr <- err.Error()
			return
		}
		reason := CheckHello(hello, "")
		if reason == "" {
			masterErr <- "old worker was not rejected"
			cn.Close()
			return
		}
		cn.Reject(reason)
		masterErr <- reason
	}()

	_, _, err = dialHelloVersion(ln.Addr().String(), Hello{Rank: 1}, 5*time.Second, 0)
	if err == nil {
		t.Fatal("v0 worker joined a v1 master")
	}
	if !strings.Contains(err.Error(), "v0") || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("worker-side error does not diagnose the skew: %v", err)
	}
	reason := <-masterErr
	if !strings.Contains(reason, "v0") {
		t.Fatalf("master-side reason does not name the worker version: %q", reason)
	}
}

// Version skew, direction 2: a current worker dials a master that speaks
// a different (older) protocol version. The welcome's version field lets
// the worker diagnose the skew.
func TestHandshakeRejectsOldMaster(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		cn := NewConn(c, 0)
		if _, err := cn.RecvHello(5 * time.Second); err != nil {
			return
		}
		// An imaginary v0-with-welcome master: answers, but with its own
		// version, and the worker must walk away.
		_ = cn.SendWelcome(Welcome{Version: 0, Member: 1})
	}()

	_, _, err = DialHello(ln.Addr().String(), Hello{Rank: 1}, 5*time.Second)
	if err == nil {
		t.Fatal("worker accepted a master speaking another protocol version")
	}
	if !strings.Contains(err.Error(), "master speaks v0") {
		t.Fatalf("worker-side error does not diagnose the skew: %v", err)
	}
}

// A worker started with different problem flags carries a different spec
// digest; the master must refuse it with an error naming both digests.
func TestHandshakeRejectsDigestMismatch(t *testing.T) {
	addr := "127.0.0.1:39222"
	masterc := make(chan error, 1)
	go func() {
		// The mismatched worker is rejected, so the rendezvous can never
		// complete; the master must time out in Accept, not hang.
		_, err := ListenMasterOpts(addr, 1, 1500*time.Millisecond, TCPOptions{Digest: "spec-a"})
		masterc <- err
	}()
	_, err := DialWorkerOpts(addr, 1, 1, 5*time.Second, TCPOptions{Digest: "spec-b"})
	if err == nil {
		t.Fatal("digest mismatch was not rejected")
	}
	if !strings.Contains(err.Error(), "spec-b") || !strings.Contains(err.Error(), "spec-a") {
		t.Fatalf("rejection does not name both digests: %v", err)
	}
	if err := <-masterc; err == nil {
		t.Fatal("master assembled a cluster from a mismatched worker")
	}
}

// Matching digests (and empty digests) must keep joining.
func TestHandshakeDigestMatchAndUnchecked(t *testing.T) {
	for _, digests := range [][2]string{{"spec-a", "spec-a"}, {"", "spec-a"}, {"spec-a", ""}} {
		addr := "127.0.0.1:0"
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		addr = ln.Addr().String()
		ln.Close()
		type res struct {
			tr  *TCPTransport
			err error
		}
		masterc := make(chan res, 1)
		go func() {
			tr, err := ListenMasterOpts(addr, 1, 5*time.Second, TCPOptions{Digest: digests[0]})
			masterc <- res{tr, err}
		}()
		w, err := DialWorkerOpts(addr, 1, 1, 5*time.Second, TCPOptions{Digest: digests[1]})
		if err != nil {
			t.Fatalf("digests %q: %v", digests, err)
		}
		mr := <-masterc
		if mr.err != nil {
			t.Fatalf("digests %q: master: %v", digests, mr.err)
		}
		w.Close()
		mr.tr.Close()
	}
}

// Regression for half-open connections: a peer that completes the
// handshake and then wedges (sends nothing, reads nothing, never closes)
// must surface as a peer-down error within the read-idle bound — before
// this, the master's pump would hang on the dead link forever.
func TestReadIdleSurfacesWedgedPeer(t *testing.T) {
	// Bind the listener first and hand it to the transport, so the dial
	// below cannot race the accept loop coming up — no retry sleeps.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	downc := make(chan int, 1)
	type res struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan res, 1)
	go func() {
		tr, err := ListenMasterOn(ln, 1, 5*time.Second, TCPOptions{
			ReadIdle: 300 * time.Millisecond,
			OnPeerDown: func(rank int, err error) {
				if err == nil {
					t.Error("peer-down with nil error")
				}
				downc <- rank
			},
		})
		masterc <- res{tr, err}
	}()

	// The wedged fake peer: a raw conn that says hello, reads the
	// welcome, then goes silent without closing.
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cn := NewConn(c, 0)
	if err := cn.SendHello(Hello{Rank: 1, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := cn.RecvWelcome(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}
	defer mr.tr.Close()

	select {
	case rank := <-downc:
		if rank != 1 {
			t.Fatalf("peer-down for rank %d, want 1", rank)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged peer never surfaced as peer-down")
	}
}

// A worker whose master link dies must get ErrClosed from Recv instead of
// blocking forever (its only link is gone, so the transport closes).
func TestWorkerTransportClosesOnDeadMaster(t *testing.T) {
	addr := "127.0.0.1:39224"
	type res struct {
		tr  *TCPTransport
		err error
	}
	masterc := make(chan res, 1)
	go func() {
		tr, err := ListenMaster(addr, 1, 5*time.Second)
		masterc <- res{tr, err}
	}()
	w, err := DialWorker(addr, 1, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mr := <-masterc
	if mr.err != nil {
		t.Fatal(mr.err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		_, recvErr = w.Recv()
	}()
	mr.tr.Close() // the master dies

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker Recv hung after master death")
	}
	if !errors.Is(recvErr, ErrClosed) {
		t.Fatalf("worker Recv = %v, want ErrClosed", recvErr)
	}
}
