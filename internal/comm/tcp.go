package comm

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: a star topology matching the master-slave deployment of
// EasyHPS. The master listens; each worker process dials in and announces
// its rank with a hello frame. Messages are gob-encoded Message values.
//
// Only master<->slave links exist (the runtime never needs slave<->slave
// traffic), so Send from a worker accepts rank 0 only.

// helloFrame is the first value on every worker connection.
type helloFrame struct {
	Rank int
}

// TCPTransport implements Transport over TCP connections.
type TCPTransport struct {
	rank int
	size int
	in   chan Message
	done chan struct{}
	once sync.Once

	mu    sync.Mutex
	conns map[int]*tcpConn
	ln    net.Listener
}

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	mu  sync.Mutex // serializes writes
}

func (tc *tcpConn) send(m Message) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.enc.Encode(m)
}

// ListenMaster starts the master endpoint (rank 0): it listens on addr and
// waits until exactly slaves workers have connected and identified
// themselves, or the timeout expires.
func ListenMaster(addr string, slaves int, timeout time.Duration) (*TCPTransport, error) {
	if slaves < 1 {
		return nil, fmt.Errorf("comm: need at least one slave, got %d", slaves)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{
		rank:  0,
		size:  slaves + 1,
		in:    make(chan Message, 16*(slaves+1)+256),
		done:  make(chan struct{}),
		conns: make(map[int]*tcpConn),
		ln:    ln,
	}
	deadline := time.Now().Add(timeout)
	for len(t.conns) < slaves {
		if dl, ok := ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				ln.Close()
				return nil, err
			}
		}
		c, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("comm: accepting worker %d of %d: %w", len(t.conns)+1, slaves, err)
		}
		dec := gob.NewDecoder(c)
		var hello helloFrame
		if err := dec.Decode(&hello); err != nil {
			c.Close()
			continue
		}
		if hello.Rank < 1 || hello.Rank > slaves {
			c.Close()
			ln.Close()
			return nil, fmt.Errorf("comm: worker announced invalid rank %d", hello.Rank)
		}
		if _, dup := t.conns[hello.Rank]; dup {
			c.Close()
			ln.Close()
			return nil, fmt.Errorf("comm: two workers announced rank %d", hello.Rank)
		}
		t.conns[hello.Rank] = &tcpConn{c: c, enc: gob.NewEncoder(c)}
		go t.pump(hello.Rank, c, dec)
	}
	return t, nil
}

// DialWorker connects a worker endpoint with the given rank (1-based) to
// the master at addr, retrying until the timeout expires so workers can be
// started before the master.
func DialWorker(addr string, rank, slaves int, timeout time.Duration) (*TCPTransport, error) {
	if rank < 1 || rank > slaves {
		return nil, fmt.Errorf("comm: invalid worker rank %d (1..%d)", rank, slaves)
	}
	var c net.Conn
	var err error
	deadline := time.Now().Add(timeout)
	for {
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("comm: dialing master %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	enc := gob.NewEncoder(c)
	if err := enc.Encode(helloFrame{Rank: rank}); err != nil {
		c.Close()
		return nil, err
	}
	t := &TCPTransport{
		rank:  rank,
		size:  slaves + 1,
		in:    make(chan Message, 272),
		done:  make(chan struct{}),
		conns: map[int]*tcpConn{0: {c: c, enc: enc}},
	}
	go t.pump(0, c, gob.NewDecoder(c))
	return t, nil
}

// pump reads messages from one connection into the inbox until the
// connection or the transport closes.
func (t *TCPTransport) pump(from int, c net.Conn, dec *gob.Decoder) {
	for {
		var m Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		m.From = from
		select {
		case t.in <- m:
		case <-t.done:
			return
		}
	}
}

func (t *TCPTransport) Rank() int { return t.rank }
func (t *TCPTransport) Size() int { return t.size }

func (t *TCPTransport) Send(to int, m Message) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("comm: rank %d has no link to rank %d", t.rank, to)
	}
	m.From = t.rank
	m.To = to
	return conn.send(m)
}

func (t *TCPTransport) Recv() (Message, error) {
	select {
	case m := <-t.in:
		return m, nil
	case <-t.done:
		select {
		case m := <-t.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, c := range t.conns {
			c.c.Close()
		}
		if t.ln != nil {
			t.ln.Close()
		}
	})
	return nil
}
