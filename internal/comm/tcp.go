package comm

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: a star topology matching the master-slave deployment of
// EasyHPS. The master listens; each worker process dials in and announces
// itself with a Hello frame (rank, protocol version, problem-spec digest)
// and is answered with a Welcome. Messages are gob-encoded Message values
// over comm.Conn links with TCP keepalive, so a silently dead peer
// surfaces as an error instead of a hang.
//
// Only master<->slave links exist (the runtime never needs slave<->slave
// traffic), so Send from a worker accepts rank 0 only.

// TCPOptions tunes a TCP endpoint beyond the rendezvous parameters. The
// zero value reproduces the defaults.
type TCPOptions struct {
	// Digest is the problem-spec fingerprint of this side. When both
	// sides supply one, the master enforces equality at join time,
	// replacing the "flags must match" convention with a checked
	// handshake. Empty skips the check.
	Digest string
	// KeepAlive is the TCP keepalive probe period (0 = 15 s default,
	// negative disables).
	KeepAlive time.Duration
	// ReadIdle, when positive, bounds how long a link may stay silent
	// before its pump fails the connection. Enable it only when the
	// peer is guaranteed to produce periodic traffic (the elastic
	// cluster's heartbeats); in plain fixed-mode runs an idle link is
	// healthy.
	ReadIdle time.Duration
	// OnPeerDown, when non-nil, is called once per failed link with the
	// peer's rank and the pump error. It runs on the pump goroutine, so
	// it must not block.
	OnPeerDown func(rank int, err error)
}

// TCPTransport implements Transport over TCP connections.
type TCPTransport struct {
	rank int
	size int
	opts TCPOptions
	in   chan Message
	done chan struct{}
	once sync.Once

	mu    sync.Mutex
	conns map[int]*Conn
	ln    net.Listener
}

// ListenMaster starts the master endpoint (rank 0): it listens on addr and
// waits until exactly slaves workers have connected and identified
// themselves, or the timeout expires.
func ListenMaster(addr string, slaves int, timeout time.Duration) (*TCPTransport, error) {
	return ListenMasterOpts(addr, slaves, timeout, TCPOptions{})
}

// ListenMasterOpts is ListenMaster with endpoint options: a problem-spec
// digest to enforce, keepalive/read-idle tuning and peer-down
// notification.
func ListenMasterOpts(addr string, slaves int, timeout time.Duration, opts TCPOptions) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ListenMasterOn(ln, slaves, timeout, opts)
}

// ListenMasterOn is ListenMasterOpts over a listener the caller already
// bound. It owns ln from here on — closed on every error path and on
// transport Close. A pre-bound listener lets callers learn the actual
// address (port 0) and dial it before the accept loop starts, without
// retry loops.
func ListenMasterOn(ln net.Listener, slaves int, timeout time.Duration, opts TCPOptions) (*TCPTransport, error) {
	if slaves < 1 {
		ln.Close()
		return nil, fmt.Errorf("comm: need at least one slave, got %d", slaves)
	}
	t := &TCPTransport{
		rank:  0,
		size:  slaves + 1,
		opts:  opts,
		in:    make(chan Message, 16*(slaves+1)+256),
		done:  make(chan struct{}),
		conns: make(map[int]*Conn),
		ln:    ln,
	}
	deadline := time.Now().Add(timeout)
	for t.connCount() < slaves {
		if dl, ok := ln.(*net.TCPListener); ok {
			if err := dl.SetDeadline(deadline); err != nil {
				ln.Close()
				return nil, err
			}
		}
		c, err := ln.Accept()
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("comm: accepting worker %d of %d: %w", t.connCount()+1, slaves, err)
		}
		cn := NewConn(c, opts.KeepAlive)
		hello, err := cn.RecvHello(10 * time.Second)
		if err != nil {
			cn.Close()
			continue
		}
		if reason := CheckHello(hello, opts.Digest); reason != "" {
			// The refusal reaches the worker before the close, so the
			// skew is diagnosed on both sides; the master keeps waiting
			// for compatible workers until its own timeout.
			cn.Reject(fmt.Sprintf("%s (worker rank %d)", reason, hello.Rank))
			continue
		}
		if hello.Rank < 1 || hello.Rank > slaves {
			cn.Reject(fmt.Sprintf("invalid rank %d (want 1..%d)", hello.Rank, slaves))
			ln.Close()
			return nil, fmt.Errorf("comm: worker announced invalid rank %d", hello.Rank)
		}
		t.mu.Lock()
		_, dup := t.conns[hello.Rank]
		t.mu.Unlock()
		if dup {
			cn.Reject(fmt.Sprintf("rank %d already joined", hello.Rank))
			ln.Close()
			return nil, fmt.Errorf("comm: two workers announced rank %d", hello.Rank)
		}
		if err := cn.SendWelcome(Welcome{Version: ProtocolVersion, Member: hello.Rank}); err != nil {
			cn.Close()
			continue
		}
		cn.SetReadIdle(opts.ReadIdle)
		t.mu.Lock()
		t.conns[hello.Rank] = cn
		t.mu.Unlock()
		go t.pump(hello.Rank, cn)
	}
	return t, nil
}

// connCount returns the live link count (pumps drop failed links, so it
// can shrink during the rendezvous).
func (t *TCPTransport) connCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// DialWorker connects a worker endpoint with the given rank (1-based) to
// the master at addr, retrying until the timeout expires so workers can be
// started before the master.
func DialWorker(addr string, rank, slaves int, timeout time.Duration) (*TCPTransport, error) {
	return DialWorkerOpts(addr, rank, slaves, timeout, TCPOptions{})
}

// DialWorkerOpts is DialWorker with endpoint options.
func DialWorkerOpts(addr string, rank, slaves int, timeout time.Duration, opts TCPOptions) (*TCPTransport, error) {
	if rank < 1 || rank > slaves {
		return nil, fmt.Errorf("comm: invalid worker rank %d (1..%d)", rank, slaves)
	}
	cn, _, err := DialHello(addr, Hello{Rank: rank, Digest: opts.Digest}, timeout)
	if err != nil {
		return nil, err
	}
	cn.SetReadIdle(opts.ReadIdle)
	t := &TCPTransport{
		rank:  rank,
		size:  slaves + 1,
		opts:  opts,
		in:    make(chan Message, 272),
		done:  make(chan struct{}),
		conns: map[int]*Conn{0: cn},
	}
	go t.pump(0, cn)
	return t, nil
}

// pump reads messages from one connection into the inbox until the
// connection or the transport closes. A failed link is dropped from the
// connection table and reported through OnPeerDown; on the worker side
// (whose only link is the master) the whole transport closes, so a dead
// master surfaces as ErrClosed from Recv instead of a hang.
func (t *TCPTransport) pump(from int, cn *Conn) {
	for {
		m, err := cn.Recv()
		if err != nil {
			t.mu.Lock()
			if t.conns[from] == cn {
				delete(t.conns, from)
			}
			t.mu.Unlock()
			select {
			case <-t.done:
				// Close() already tore the link down; not a peer fault.
			default:
				if t.opts.OnPeerDown != nil {
					t.opts.OnPeerDown(from, err)
				}
				if t.rank != 0 {
					t.Close()
				}
			}
			return
		}
		m.From = from
		select {
		case t.in <- m:
		case <-t.done:
			return
		}
	}
}

func (t *TCPTransport) Rank() int { return t.rank }
func (t *TCPTransport) Size() int { return t.size }

func (t *TCPTransport) Send(to int, m Message) error {
	select {
	case <-t.done:
		return ErrClosed
	default:
	}
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("comm: rank %d has no link to rank %d", t.rank, to)
	}
	m.From = t.rank
	m.To = to
	return conn.Send(m)
}

func (t *TCPTransport) Recv() (Message, error) {
	select {
	case m := <-t.in:
		return m, nil
	case <-t.done:
		select {
		case m := <-t.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, c := range t.conns {
			c.Close()
		}
		if t.ln != nil {
			t.ln.Close()
		}
	})
	return nil
}
