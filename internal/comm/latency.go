package comm

import "time"

// LatencyModel emulates the cost of an interconnect on the in-process
// transport: every Send is charged a fixed per-message latency plus a
// bandwidth term proportional to the payload size. The charge is applied
// on the sender side (blocking-send semantics, as with a synchronous
// MPI_Send), which both throttles dispatch and keeps per-pair ordering
// trivially intact.
//
// The zero value is a free network (no delay), which corresponds to an
// idealized shared-memory machine.
type LatencyModel struct {
	// Base is the per-message latency.
	Base time.Duration
	// PerKB is the transfer cost per 1024 payload bytes.
	PerKB time.Duration
}

// Delay returns the charge for a payload of n bytes.
func (l LatencyModel) Delay(n int) time.Duration {
	return l.Base + time.Duration(int64(l.PerKB)*int64(n)/1024)
}

// Zero reports whether the model charges nothing.
func (l LatencyModel) Zero() bool { return l.Base == 0 && l.PerKB == 0 }

// DefaultClusterLatency approximates a commodity cluster interconnect
// relative to the scaled-down workloads of the benchmark harness: tens of
// microseconds per message plus a bandwidth term. It is deliberately
// pessimistic compared to InfiniBand so that communication effects are
// visible at the reduced problem sizes (see DESIGN.md).
var DefaultClusterLatency = LatencyModel{
	Base:  120 * time.Microsecond,
	PerKB: 4 * time.Microsecond,
}
