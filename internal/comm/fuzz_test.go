package comm

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// FuzzWireCodec feeds arbitrary bytes to the connection's receive path —
// the peek-dispatched binary frame reader with the gob envelope as the
// non-magic branch — and checks the codec's safety contract:
//
//   - a truncated or corrupted frame returns an error, never a panic,
//     an over-read, or an input-sized allocation;
//   - any input that decodes successfully re-encodes to a frame that
//     decodes to the same message (the codec is a bijection on its
//     valid range).
//
// The corpus seeds cover the shapes the protocol actually produces:
// zero-length blocks, max-size batches, gob-enveloped control messages,
// and hand-truncated frames.
func FuzzWireCodec(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := appendBinaryFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		if len(frame) > 8 {
			f.Add(frame[:len(frame)/2]) // truncated frame
			f.Add(frame[:7])            // header only
		}
	}
	// A max-batch frame: many empty entries, the widest legal nbatch for
	// its size.
	wide := Message{Kind: KindTaskBatch, Batch: make([]TaskEntry, 4096)}
	for i := range wide.Batch {
		wide.Batch[i] = TaskEntry{Vertex: int32(i), Attempt: 1}
	}
	if frame, err := appendBinaryFrame(nil, wide); err == nil {
		f.Add(frame)
	}
	// Gob envelopes of control and hot messages (the fallback path).
	for _, m := range []Message{{Kind: KindIdle}, {Kind: KindHeartbeat}, {Kind: KindTask, Vertex: 3, Attempt: 1, Payload: []byte("gob")}} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{binMagic})                                 // bare magic
	f.Add([]byte{binMagic, byte(KindTask), 255, 255, 0, 0}) // huge bodyLen
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := recvFromBytes(data)
		if err != nil {
			return // rejected cleanly; that is the contract
		}
		if !binaryKind(m.Kind) {
			return // gob envelope decoded some control message; fine
		}
		// Round trip: what decoded must re-encode and decode identically.
		frame, err := appendBinaryFrame(nil, m)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v (%+v)", err, m)
		}
		again, err := readBinaryFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v (%+v)", err, m)
		}
		if !equalMessages(m, again) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, m)
		}
	})
}
