package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"testing"
	"time"
)

// sampleMessages covers the binary codec's shapes: bare kinds, zero-length
// payloads, single-vertex hot messages, batches with empty and non-empty
// entries, and the More flag.
func sampleMessages() []Message {
	return []Message{
		{Kind: KindTask, From: 0, To: 3, Vertex: 7, Attempt: 1, Payload: []byte("block")},
		{Kind: KindTask, To: 2, Vertex: 5, Attempt: 2, Job: 3, Payload: []byte("fleet")},
		{Kind: KindTask, Vertex: 0, Attempt: 1, Payload: nil}, // zero-length block region
		{Kind: KindResult, From: 2, Vertex: 9, Attempt: 4, Payload: []byte{0, 0, 0, 0}},
		{Kind: KindResult, Vertex: 1, Attempt: 1, Payload: []byte{1}, More: true},
		{Kind: KindTaskBatch, To: 1, Batch: []TaskEntry{
			{Vertex: 1, Attempt: 1, Payload: []byte("a")},
			{Vertex: 2, Attempt: 3, Payload: nil},
			{Vertex: 3, Attempt: 1, Payload: bytes.Repeat([]byte{0xAB}, 1024)},
		}},
		{Kind: KindResultBatch, From: 5, More: true, Batch: []TaskEntry{
			{Vertex: 40, Attempt: 2, Payload: []byte("out")},
		}},
		{Kind: KindResultBatch, Batch: []TaskEntry{}},
	}
}

func TestBinaryFrameRoundTrip(t *testing.T) {
	for _, want := range sampleMessages() {
		frame, err := appendBinaryFrame(nil, want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Kind, err)
		}
		got, err := readBinaryFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if !equalMessages(got, want) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

// equalMessages compares messages up to nil-vs-empty payload slices (the
// codec does not distinguish them; neither does any consumer).
func equalMessages(a, b Message) bool {
	if a.Kind != b.Kind || a.From != b.From || a.To != b.To ||
		a.Vertex != b.Vertex || a.Attempt != b.Attempt || a.Job != b.Job || a.More != b.More {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) || len(a.Batch) != len(b.Batch) {
		return false
	}
	for i := range a.Batch {
		if a.Batch[i].Vertex != b.Batch[i].Vertex ||
			a.Batch[i].Attempt != b.Batch[i].Attempt ||
			!bytes.Equal(a.Batch[i].Payload, b.Batch[i].Payload) {
			return false
		}
	}
	return true
}

// Every truncation of a valid frame must fail cleanly — no panic, no
// spurious success.
func TestBinaryFrameTruncations(t *testing.T) {
	for _, m := range sampleMessages() {
		frame, err := appendBinaryFrame(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := readBinaryFrame(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("%v: truncation at %d/%d decoded successfully", m.Kind, cut, len(frame))
			}
		}
	}
}

// Corrupted length fields must be rejected by bounds checks, not trusted
// as allocation sizes.
func TestBinaryFrameCorruptLengths(t *testing.T) {
	m := Message{Kind: KindTaskBatch, Batch: []TaskEntry{{Vertex: 1, Attempt: 1, Payload: []byte("abc")}}}
	frame, err := appendBinaryFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}

	huge := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(huge[2:], maxFrameBody+1) // bodyLen beyond limit
	if _, err := readBinaryFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized bodyLen accepted")
	}

	// Corrupt the batch count to a value the body cannot hold.
	bad := append([]byte(nil), frame...)
	// body starts at 6; nbatch sits after fixed header minus its own u32.
	off := 6 + binFixedHeader - 4
	binary.LittleEndian.PutUint32(bad[off:], 1<<31)
	if _, err := readBinaryFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized batch count accepted")
	}

	// Oversized frame on the encode side must refuse, not wrap.
	big := Message{Kind: KindTask, Payload: make([]byte, maxFrameBody)}
	if _, err := appendBinaryFrame(nil, big); err == nil {
		t.Fatal("encoder accepted a frame beyond maxFrameBody")
	}
}

// The stream stays self-describing: binary frames and gob control
// messages interleave on one connection in both directions, after a
// normal hello/welcome handshake on the same gob stream.
func TestConnInterleavesBinaryAndGob(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewConn(a, -1), NewConn(b, -1)

	go func() {
		_ = ca.SendHello(Hello{Rank: 1, Version: ProtocolVersion})
	}()
	hello, err := cb.RecvHello(time.Second)
	if err != nil || hello.Rank != 1 {
		t.Fatalf("hello: %+v, %v", hello, err)
	}
	go func() {
		_ = cb.SendWelcome(Welcome{Version: ProtocolVersion, Member: 1})
	}()
	if w, err := ca.RecvWelcome(time.Second); err != nil || w.Member != 1 {
		t.Fatalf("welcome: %+v, %v", w, err)
	}

	sent := []Message{
		{Kind: KindIdle},
		{Kind: KindTask, Vertex: 3, Attempt: 1, Payload: []byte("data")},
		{Kind: KindHeartbeat},
		{Kind: KindJobSpec, Job: 2, Payload: []byte(`{"job":2}`)},
		{Kind: KindTaskBatch, Job: 2, Batch: []TaskEntry{{Vertex: 4, Attempt: 1, Payload: []byte("x")}, {Vertex: 5, Attempt: 2}}},
		{Kind: KindJobEnd, Job: 2},
		{Kind: KindResultBatch, More: true, Batch: []TaskEntry{{Vertex: 4, Attempt: 1, Payload: []byte("y")}}},
		{Kind: KindEnd},
	}
	errc := make(chan error, 1)
	go func() {
		for _, m := range sent {
			if err := ca.Send(m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i, want := range sent {
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !equalMessages(got, want) {
			t.Fatalf("recv %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
}

// recvFromBytes drives the Conn receive path (peek + codec dispatch) over
// an in-memory stream, for tests that feed it raw bytes.
func recvFromBytes(data []byte) (Message, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	first, err := br.Peek(1)
	if err != nil {
		return Message{}, err
	}
	if first[0] == binMagic {
		return readBinaryFrame(br)
	}
	var m Message
	err = gob.NewDecoder(br).Decode(&m)
	return m, err
}
