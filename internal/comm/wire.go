package comm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Binary wire codec for the task hot path.
//
// The runtime's traffic is bimodal: a handful of tiny control messages
// (idle, end, heartbeat, leave) and a torrent of task/result messages
// whose payloads are already binary-encoded matrix blocks. Gob-framing
// the torrent pays reflection plus envelope overhead per message, which
// at fine block sizes dominates the actual compute. Hot kinds therefore
// travel as length-prefixed binary frames; control kinds (and, during
// the handshake, Hello/Welcome) stay on the connection's persistent gob
// stream, which doubles as the fallback for any kind the binary codec
// does not cover.
//
// Frame layout (all integers little-endian):
//
//	magic     u8   0xE5 (never a valid first byte of a gob message:
//	               gob lengths are either one byte <= 0x7F or start
//	               with 0xF8..0xFF)
//	kind      u8   comm.Kind (must be a hot kind)
//	bodyLen   u32  length of the body that follows
//	body:
//	  from      i32
//	  to        i32
//	  vertex    i32
//	  attempt   i32
//	  job       i32  shared-fleet job id (0 outside fleet mode)
//	  flags     u8   bit0 = More
//	  payLen    u32  top-level payload length, then payload bytes
//	  nbatch    u32  batch entry count
//	  entries   nbatch × { vertex i32, attempt i32, len u32, payload }
//
// Every length field is validated against the bytes actually present
// before any allocation proportional to it, so a truncated or corrupted
// frame yields an error — never a panic, an over-read, or an
// attacker-sized allocation.

const (
	// binMagic tags a binary message frame. See the layout comment for
	// why it cannot collide with the gob stream.
	binMagic = 0xE5

	// maxFrameBody bounds one frame body (128 MiB). The largest
	// legitimate frames are max-size task batches of matrix blocks,
	// comfortably below this; anything bigger is treated as stream
	// corruption rather than trusted as an allocation hint.
	maxFrameBody = 1 << 27

	// binFixedHeader is the fixed part of a frame body: from, to,
	// vertex, attempt, job (5×i32), flags (u8), payLen (u32), nbatch
	// (u32).
	binFixedHeader = 4*5 + 1 + 4 + 4

	// binEntryHeader is the fixed part of one batch entry: vertex,
	// attempt (2×i32) and the payload length (u32).
	binEntryHeader = 4 + 4 + 4
)

// binaryKind reports whether k travels as a binary frame. Everything
// else rides the gob stream.
func binaryKind(k Kind) bool {
	switch k {
	case KindTask, KindResult, KindTaskBatch, KindResultBatch:
		return true
	default:
		// Control frames — and any kind a future protocol version adds —
		// ride the gob stream, which self-describes unknown fields.
		return false
	}
}

// frameBufPool recycles encode buffers: one Send encodes the whole frame
// into a pooled buffer and writes it with a single Write call, so the
// hot path allocates nothing once the pool is warm.
var frameBufPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// readBufPool recycles decode staging buffers. Bodies are copied out of
// the staging buffer during parsing (payload slices must outlive it), so
// the buffer returns to the pool at the end of every Recv.
var readBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// appendBinaryFrame appends the binary frame for m to dst and returns the
// extended slice. The caller guarantees binaryKind(m.Kind).
func appendBinaryFrame(dst []byte, m Message) ([]byte, error) {
	body := binFixedHeader + len(m.Payload) + len(m.Batch)*binEntryHeader
	for _, e := range m.Batch {
		body += len(e.Payload)
	}
	if body > maxFrameBody {
		return dst, fmt.Errorf("comm: frame body %d exceeds limit %d", body, maxFrameBody)
	}
	var flags byte
	if m.More {
		flags |= 1
	}
	dst = append(dst, binMagic, byte(m.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Vertex))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Attempt))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Job))
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Batch)))
	for _, e := range m.Batch {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Vertex))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Attempt))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Payload)))
		dst = append(dst, e.Payload...)
	}
	return dst, nil
}

// decodeBinaryBody parses one frame body into a Message. Payload bytes
// are copied out of body, so the caller may recycle it immediately.
func decodeBinaryBody(kind Kind, body []byte) (Message, error) {
	if !binaryKind(kind) {
		return Message{}, fmt.Errorf("comm: binary frame with non-binary kind %v", kind)
	}
	if len(body) < binFixedHeader {
		return Message{}, fmt.Errorf("comm: frame body %d bytes, need at least %d", len(body), binFixedHeader)
	}
	m := Message{
		Kind:    kind,
		From:    int(int32(binary.LittleEndian.Uint32(body[0:]))),
		To:      int(int32(binary.LittleEndian.Uint32(body[4:]))),
		Vertex:  int32(binary.LittleEndian.Uint32(body[8:])),
		Attempt: int32(binary.LittleEndian.Uint32(body[12:])),
		Job:     int32(binary.LittleEndian.Uint32(body[16:])),
		More:    body[20]&1 != 0,
	}
	rest := body[21:]
	var payload []byte
	var err error
	if payload, rest, err = cutPayload(rest); err != nil {
		return Message{}, fmt.Errorf("comm: frame payload: %w", err)
	}
	m.Payload = payload
	if len(rest) < 4 {
		return Message{}, fmt.Errorf("comm: frame truncated before batch count")
	}
	nbatch := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	// Each entry occupies at least its fixed header, so a corrupt count
	// is rejected before it sizes an allocation.
	if uint64(nbatch)*binEntryHeader > uint64(len(rest)) {
		return Message{}, fmt.Errorf("comm: batch count %d exceeds frame body", nbatch)
	}
	if nbatch > 0 {
		m.Batch = make([]TaskEntry, nbatch)
		for i := range m.Batch {
			// The upfront count check bounds the sum of entry headers, but
			// an oversized earlier payload can still eat into this entry's
			// share, so the header must be re-checked per entry.
			if len(rest) < 8 {
				return Message{}, fmt.Errorf("comm: batch entry %d: truncated header (%d bytes)", i, len(rest))
			}
			m.Batch[i].Vertex = int32(binary.LittleEndian.Uint32(rest[0:]))
			m.Batch[i].Attempt = int32(binary.LittleEndian.Uint32(rest[4:]))
			rest = rest[8:]
			if m.Batch[i].Payload, rest, err = cutPayload(rest); err != nil {
				return Message{}, fmt.Errorf("comm: batch entry %d: %w", i, err)
			}
		}
	}
	if len(rest) != 0 {
		return Message{}, fmt.Errorf("comm: %d trailing bytes after frame", len(rest))
	}
	return m, nil
}

// cutPayload reads a u32-prefixed byte string from b, returning a copy of
// it and the remainder. The length is checked against the bytes present
// before the copy is allocated.
func cutPayload(b []byte) (payload, rest []byte, err error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("truncated length prefix (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(n) > uint64(len(b)) {
		return nil, b, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(b))
	}
	if n == 0 {
		return nil, b, nil
	}
	payload = make([]byte, n)
	copy(payload, b[:n])
	return payload, b[n:], nil
}

// readBinaryFrame reads one binary frame from r, the magic byte already
// peeked but not consumed. The staging buffer grows with the bytes that
// actually arrive (io.CopyN, not a bodyLen-sized make), so a corrupt
// length on a short stream fails without ballooning memory.
func readBinaryFrame(r io.Reader) (Message, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if hdr[0] != binMagic {
		return Message{}, fmt.Errorf("comm: bad frame magic %#x", hdr[0])
	}
	kind := Kind(hdr[1])
	bodyLen := binary.LittleEndian.Uint32(hdr[2:])
	if bodyLen > maxFrameBody {
		return Message{}, fmt.Errorf("comm: frame body %d exceeds limit %d", bodyLen, maxFrameBody)
	}
	buf := readBufPool.Get().(*bytes.Buffer)
	defer readBufPool.Put(buf)
	buf.Reset()
	if _, err := io.CopyN(buf, r, int64(bodyLen)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, fmt.Errorf("comm: reading frame body: %w", err)
	}
	return decodeBinaryBody(kind, buf.Bytes())
}
