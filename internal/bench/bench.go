// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 13-17) plus the ablations listed in DESIGN.md.
//
// The paper ran on Tianhe-1A nodes; this reproduction runs on one machine,
// so two substitutions scale the experiments down while preserving the
// scheduling behaviour (see DESIGN.md):
//
//   - problem sizes shrink but the processor-level block grid keeps the
//     paper's proportions, so DAG width and wavefront fill/drain behave
//     identically;
//   - computation weight is emulated with Config.WorkDelayPerCell (each
//     sub-sub-task sleeps in proportion to its cell count), so deployments
//     with many more simulated cores than physical cores still scale, and
//     communication cost is emulated with the transport latency model.
//
// An Experiment_X_Y run uses the paper's core accounting: Y total cores on
// X nodes = X processor-level scheduling cores + (X-1) thread-level
// scheduling cores + (Y-2X+1) compute cores spread over X-1 computing
// nodes.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/stats"
)

// Options configures the harness.
type Options struct {
	// SWGGLen is the sequence length for the SWGG experiments
	// (paper: 10000).
	SWGGLen int
	// NussinovLen is the sequence length for the Nussinov experiments
	// (paper: 10000).
	NussinovLen int
	// GridSide is the processor-level block-grid side (paper: 10000/200
	// = 50).
	GridSide int
	// ThreadGridSide is the thread-level sub-block grid side within one
	// processor block (paper: 200/10 = 20).
	ThreadGridSide int
	// WorkDelay is the emulated computation weight per cell.
	WorkDelay time.Duration
	// Jitter is the per-sub-task work variance fraction (see
	// core.Config.WorkJitter). Negative disables; zero defaults to 0.3.
	Jitter float64
	// Latency is the emulated interconnect.
	Latency comm.LatencyModel
	// Seed drives workload generation.
	Seed int64
	// MaxThreads is the per-node compute-thread cap (paper: 11).
	MaxThreads int
	// Reps repeats every measured run and reports the median, smoothing
	// wall-clock noise on shared machines. Default 1.
	Reps int
}

// WithDefaults fills the scaled-down defaults. They are calibrated to the
// noisy ~1ms sleep resolution of a stock (virtualized) Linux box: each
// thread-level sub-sub-task carries 4 cells x 1.25ms = 5ms of emulated
// work, well above the timer floor, so sleeps overlap accurately and
// deployments of up to ~50 simulated cores scale on a single physical
// core. The processor-level grid is 8x8 and each sub-task re-partitions
// into 10x10 sub-sub-tasks, preserving the paper's two-level structure
// (50x50 and 20x20) at a tractable total runtime.
func (o Options) WithDefaults() Options {
	if o.SWGGLen <= 0 {
		o.SWGGLen = 160
	}
	if o.NussinovLen <= 0 {
		o.NussinovLen = 160
	}
	if o.GridSide <= 0 {
		o.GridSide = 8
	}
	if o.ThreadGridSide <= 0 {
		o.ThreadGridSide = 10
	}
	if o.WorkDelay <= 0 {
		o.WorkDelay = 1250 * time.Microsecond
	}
	if o.Jitter == 0 {
		o.Jitter = 0.3
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Latency.Zero() {
		o.Latency = comm.DefaultClusterLatency
	}
	if o.Seed == 0 {
		o.Seed = 20130520 // IPPS 2013
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = 11
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
	return o
}

// App is one benchmark application.
type App struct {
	// Name labels the app in output ("SWGG", "Nussinov").
	Name string
	// Len is the matrix side length.
	Len int
	// Problem builds the runnable problem.
	Problem func() core.Problem[int32]
	// Sequential runs the reference implementation and returns its
	// wall-clock time (real compute only; the harness adds the emulated
	// per-cell work for the virtual-time baseline).
	Sequential func() time.Duration
	// Cells is the number of computed cells (for virtual-time
	// accounting).
	Cells int
}

// SWGGApp builds the Smith-Waterman General Gap benchmark app.
func (o Options) SWGGApp() App {
	n := o.SWGGLen
	a := dp.RandomDNA(n, o.Seed)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, o.Seed+1)
	s := dp.NewSWGG(a, b)
	return App{
		Name:    "SWGG",
		Len:     n,
		Problem: s.Problem,
		Sequential: func() time.Duration {
			start := time.Now()
			_ = s.Sequential()
			return time.Since(start)
		},
		Cells: n * n,
	}
}

// NussinovApp builds the Nussinov benchmark app.
func (o Options) NussinovApp() App {
	n := o.NussinovLen
	nu := dp.NewNussinov(dp.RandomRNA(n, o.Seed+2))
	return App{
		Name:    "Nussinov",
		Len:     n,
		Problem: nu.Problem,
		Sequential: func() time.Duration {
			start := time.Now()
			_ = nu.Sequential()
			return time.Since(start)
		},
		Cells: n * (n + 1) / 2,
	}
}

// Apps returns both evaluation applications.
func (o Options) Apps() []App { return []App{o.SWGGApp(), o.NussinovApp()} }

// Config builds the runtime configuration of Experiment_X_Y for app.
func (o Options) Config(app App, x, y int, policy core.Policy) (core.Config, error) {
	cfg, err := core.ConfigForCores(x, y)
	if err != nil {
		return cfg, err
	}
	if cfg.Threads > o.MaxThreads {
		return cfg, fmt.Errorf("bench: Experiment_%d_%d needs %d threads/node, cap is %d", x, y, cfg.Threads, o.MaxThreads)
	}
	proc := (app.Len + o.GridSide - 1) / o.GridSide
	if proc < 1 {
		proc = 1
	}
	thread := (proc + o.ThreadGridSide - 1) / o.ThreadGridSide
	if thread < 1 {
		thread = 1
	}
	cfg.ProcPartition = dag.Square(proc)
	cfg.ThreadPartition = dag.Square(thread)
	cfg.Policy = policy
	cfg.Latency = o.Latency
	cfg.WorkDelayPerCell = o.WorkDelay
	cfg.WorkJitter = o.Jitter
	cfg.RunTimeout = 10 * time.Minute
	return cfg, nil
}

// Point is one measured run.
type Point struct {
	App     string
	Nodes   int // X: total nodes including the master
	Cores   int // Y: paper core accounting
	Policy  core.Policy
	Elapsed time.Duration
	Stats   core.Stats
}

// Run executes Experiment_X_Y, repeating Options.Reps times and keeping
// the median-elapsed repetition.
func (o Options) Run(app App, x, y int, policy core.Policy) (Point, error) {
	cfg, err := o.Config(app, x, y, policy)
	if err != nil {
		return Point{}, err
	}
	reps := o.Reps
	if reps < 1 {
		reps = 1
	}
	var sample stats.Sample
	points := make(map[time.Duration]Point, reps)
	for r := 0; r < reps; r++ {
		res, err := core.Run(app.Problem(), cfg)
		if err != nil {
			return Point{}, fmt.Errorf("bench: %s Experiment_%d_%d: %w", app.Name, x, y, err)
		}
		sample.Add(res.Stats.Elapsed)
		points[res.Stats.Elapsed] = Point{
			App: app.Name, Nodes: x, Cores: y, Policy: policy,
			Elapsed: res.Stats.Elapsed, Stats: res.Stats,
		}
	}
	return points[sample.Median()], nil
}

// SequentialBaseline returns the virtual-time sequential baseline of app:
// the measured wall-clock of the reference implementation plus the
// emulated per-cell work a single compute core would have to serialize.
func (o Options) SequentialBaseline(app App) time.Duration {
	return app.Sequential() + time.Duration(app.Cells)*o.WorkDelay
}

// CoreCounts returns the paper's Experiment_X_Y core range for x nodes:
// Y = 2x-1 + ct*(x-1) for ct = 1..MaxThreads, optionally thinned to at
// most points entries to bound harness runtime.
func (o Options) CoreCounts(x, points int) []int {
	var all []int
	for ct := 1; ct <= o.MaxThreads; ct++ {
		all = append(all, 2*x-1+ct*(x-1))
	}
	if points <= 0 || points >= len(all) {
		return all
	}
	if points == 1 {
		return all[len(all)-1:]
	}
	out := make([]int, 0, points)
	for k := 0; k < points; k++ {
		out = append(out, all[k*(len(all)-1)/(points-1)])
	}
	return out
}

// fprintf writes formatted output, ignoring errors (harness output only).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
