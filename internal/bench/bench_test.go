package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// tinyOpts keeps harness self-tests fast: no emulated work or latency,
// minimal grids.
func tinyOpts() Options {
	return Options{
		SWGGLen:        48,
		NussinovLen:    48,
		GridSide:       4,
		ThreadGridSide: 3,
		WorkDelay:      time.Nanosecond,
		Latency:        comm.LatencyModel{Base: time.Nanosecond},
		Seed:           7,
	}.WithDefaults()
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.SWGGLen == 0 || o.NussinovLen == 0 || o.GridSide == 0 ||
		o.ThreadGridSide == 0 || o.WorkDelay == 0 || o.Latency.Zero() ||
		o.Seed == 0 || o.MaxThreads == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestCoreCounts(t *testing.T) {
	o := Options{MaxThreads: 11}.WithDefaults()
	// Paper ranges: X=2 -> 4..14, X=5 -> 13..53.
	all2 := o.CoreCounts(2, 0)
	if len(all2) != 11 || all2[0] != 4 || all2[10] != 14 {
		t.Fatalf("CoreCounts(2) = %v", all2)
	}
	all5 := o.CoreCounts(5, 0)
	if all5[0] != 13 || all5[10] != 53 {
		t.Fatalf("CoreCounts(5) = %v", all5)
	}
	thin := o.CoreCounts(2, 4)
	if len(thin) != 4 || thin[0] != 4 || thin[3] != 14 {
		t.Fatalf("thinned CoreCounts = %v", thin)
	}
}

func TestConfigCoreAccounting(t *testing.T) {
	o := tinyOpts()
	app := o.SWGGApp()
	cfg, err := o.Config(app, 3, 9, core.PolicyDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cores() != 9 {
		t.Fatalf("Cores = %d, want 9", cfg.Cores())
	}
	if cfg.Slaves != 2 || cfg.Threads != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Thread cap enforced.
	if _, err := o.Config(app, 2, 100, core.PolicyDynamic); err == nil {
		t.Fatal("thread cap not enforced")
	}
}

func TestRunExperimentBothApps(t *testing.T) {
	o := tinyOpts()
	for _, app := range o.Apps() {
		pt, err := o.Run(app, 2, 6, core.PolicyDynamic)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if pt.Stats.Tasks == 0 || pt.Elapsed <= 0 {
			t.Fatalf("%s: empty measurement %+v", app.Name, pt)
		}
	}
}

func TestRunBothPolicies(t *testing.T) {
	o := tinyOpts()
	app := o.SWGGApp()
	for _, pol := range []core.Policy{core.PolicyDynamic, core.PolicyBlockCyclic} {
		if _, err := o.Run(app, 3, 9, pol); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestVerifyPasses(t *testing.T) {
	var buf bytes.Buffer
	if err := tinyOpts().Verify(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SWGG") || !strings.Contains(buf.String(), "Nussinov") {
		t.Fatalf("verify output incomplete: %q", buf.String())
	}
}

func TestSequentialBaselineIncludesVirtualWork(t *testing.T) {
	o := tinyOpts()
	o.WorkDelay = time.Millisecond
	app := o.SWGGApp()
	if got := o.SequentialBaseline(app); got < time.Duration(app.Cells)*time.Millisecond {
		t.Fatalf("baseline %v below virtual work floor", got)
	}
}

func TestFigureFunctionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	var buf bytes.Buffer
	if err := o.Fig15(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 15") || !strings.Contains(out, "best") {
		t.Fatalf("Fig15 output malformed:\n%s", out)
	}
}

func TestIdleWhileComputableReportsBoth(t *testing.T) {
	if testing.Short() {
		t.Skip("trace smoke test")
	}
	o := tinyOpts()
	var buf bytes.Buffer
	if err := o.IdleWhileComputable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dynamic") || !strings.Contains(out, "bcw") {
		t.Fatalf("trace output missing policies:\n%s", out)
	}
}

func TestFig13OutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	var buf bytes.Buffer
	if err := o.Fig13(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig. 13") {
		t.Fatalf("missing title:\n%s", out)
	}
	// 4 node counts x 2 core counts = 8 data rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 0 && line[0] >= '2' && line[0] <= '5' {
			rows++
		}
	}
	if rows != 8 {
		t.Fatalf("data rows = %d, want 8:\n%s", rows, out)
	}
}

func TestFig16OutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	var buf bytes.Buffer
	if err := o.Fig16(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "T_seq") {
		t.Fatalf("fig16 output malformed:\n%s", out)
	}
}

func TestFig17OutputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test")
	}
	o := tinyOpts()
	o.Reps = 3 // interleave minimum
	var buf bytes.Buffer
	if err := o.Fig17(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio") {
		t.Fatalf("fig17 output malformed:\n%s", buf.String())
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test")
	}
	o := tinyOpts()
	var buf bytes.Buffer
	if err := o.AblateSingleLevel(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.AblateDelta(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.AblateAffinity(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"single-level", "delta", "affinity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q:\n%s", want, out)
		}
	}
}
