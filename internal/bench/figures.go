package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/dp"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig13 reproduces Figure 13: SWGG elapsed time vs. total cores, deployed
// on 2-5 nodes. points bounds the number of core counts measured per node
// count (0 = the paper's full 11-point sweep).
func (o Options) Fig13(w io.Writer, points int) error {
	return o.figTimeVsCores(w, o.SWGGApp(), "Fig. 13: SWGG elapsed time vs cores", points)
}

// Fig14 reproduces Figure 14: the same sweep for Nussinov.
func (o Options) Fig14(w io.Writer, points int) error {
	return o.figTimeVsCores(w, o.NussinovApp(), "Fig. 14: Nussinov elapsed time vs cores", points)
}

func (o Options) figTimeVsCores(w io.Writer, app App, title string, points int) error {
	fprintf(w, "%s  (n=%d, grid=%dx%d, work=%v/cell, latency=%v+%v/KB)\n",
		title, app.Len, o.GridSide, o.GridSide, o.WorkDelay, o.Latency.Base, o.Latency.PerKB)
	fprintf(w, "%-8s %-8s %-10s %-12s %-10s\n", "nodes", "cores", "threads", "elapsed", "tasks")
	for x := 2; x <= 5; x++ {
		for _, y := range o.CoreCounts(x, points) {
			pt, err := o.Run(app, x, y, core.PolicyDynamic)
			if err != nil {
				return err
			}
			fprintf(w, "%-8d %-8d %-10d %-12v %-10d\n",
				x, y, (y-2*x+1)/(x-1), pt.Elapsed.Round(time.Millisecond), pt.Stats.Tasks)
		}
		fprintf(w, "\n")
	}
	return nil
}

// Fig15Cores are total core counts valid on every node count 2..5 under
// the Experiment_X_Y accounting (compute cores divide evenly).
var Fig15Cores = []int{13, 25, 37, 49}

// Fig15 reproduces Figure 15: at equal total cores, compare deployments on
// different node counts. The paper's observation: few cores -> fewer nodes
// win (less scheduling overhead, thread-level parallelism suffices); many
// cores -> more nodes win (a slave executes one sub-task at a time, so
// thread-level parallelism saturates at the slave-DAG width while
// processor-level parallelism keeps scaling).
func (o Options) Fig15(w io.Writer) error {
	for _, app := range o.Apps() {
		fprintf(w, "Fig. 15 (%s): elapsed time at equal core counts across node counts\n", app.Name)
		fprintf(w, "%-8s", "cores")
		for x := 2; x <= 5; x++ {
			fprintf(w, " %10s", fmt.Sprintf("%d nodes", x))
		}
		fprintf(w, " %10s\n", "best")
		for _, y := range Fig15Cores {
			fprintf(w, "%-8d", y)
			bestX, bestT := 0, time.Duration(1<<62)
			var row []string
			for x := 2; x <= 5; x++ {
				if _, err := o.Config(app, x, y, core.PolicyDynamic); err != nil {
					// Deployment impossible (e.g. 2 nodes cannot
					// host that many threads) — the paper's curves
					// have the same holes.
					row = append(row, "-")
					continue
				}
				pt, err := o.Run(app, x, y, core.PolicyDynamic)
				if err != nil {
					return err
				}
				row = append(row, pt.Elapsed.Round(time.Millisecond).String())
				if pt.Elapsed < bestT {
					bestX, bestT = x, pt.Elapsed
				}
			}
			for _, d := range row {
				fprintf(w, " %10s", d)
			}
			fprintf(w, " %10s\n", fmt.Sprintf("%d nodes", bestX))
		}
		fprintf(w, "\n")
	}
	return nil
}

// Fig16 reproduces Figure 16: elapsed time and speedup with the best node
// grouping per core count, against the virtual-time sequential baseline.
// The paper reports ~30x at 50 cores for SWGG and ~20x for Nussinov.
func (o Options) Fig16(w io.Writer) error {
	for _, app := range o.Apps() {
		seq := o.SequentialBaseline(app)
		fprintf(w, "Fig. 16 (%s): elapsed/speedup with optimal node grouping (T_seq=%v)\n",
			app.Name, seq.Round(time.Millisecond))
		fprintf(w, "%-8s %-8s %-12s %-8s\n", "cores", "nodes", "elapsed", "speedup")
		for _, y := range Fig15Cores {
			bestX, bestT := 0, time.Duration(1<<62)
			for x := 2; x <= 5; x++ {
				if _, err := o.Config(app, x, y, core.PolicyDynamic); err != nil {
					continue
				}
				pt, err := o.Run(app, x, y, core.PolicyDynamic)
				if err != nil {
					return err
				}
				if pt.Elapsed < bestT {
					bestX, bestT = x, pt.Elapsed
				}
			}
			fprintf(w, "%-8d %-8d %-12v %-8.1f\n",
				y, bestX, bestT.Round(time.Millisecond), float64(seq)/float64(bestT))
		}
		fprintf(w, "\n")
	}
	return nil
}

// Fig17 reproduces Figure 17: the BCW/EasyHPS runtime ratio on 2-5 nodes.
// Points above 1.00 mean the dynamic worker pool beats the static
// block-cyclic wavefront assignment. Because the host's timer overhead
// drifts over minutes, the two policies are measured interleaved
// (dynamic, BCW, dynamic, BCW, ...) and the per-policy medians are
// compared, so slow drift cancels out of the ratio.
func (o Options) Fig17(w io.Writer, points int) error {
	reps := o.Reps
	if reps < 3 {
		reps = 3
	}
	single := o
	single.Reps = 1
	for _, app := range o.Apps() {
		fprintf(w, "Fig. 17 (%s): BCW / EasyHPS runtime ratio (baseline 1.00, median of %d interleaved reps)\n", app.Name, reps)
		fprintf(w, "%-8s %-8s %-12s %-12s %-8s\n", "nodes", "cores", "easyhps", "bcw", "ratio")
		for x := 2; x <= 5; x++ {
			for _, y := range o.CoreCounts(x, points) {
				var dyn, bcw stats.Sample
				for r := 0; r < reps; r++ {
					d, err := single.Run(app, x, y, core.PolicyDynamic)
					if err != nil {
						return err
					}
					dyn.Add(d.Elapsed)
					b, err := single.Run(app, x, y, core.PolicyBlockCyclic)
					if err != nil {
						return err
					}
					bcw.Add(b.Elapsed)
				}
				fprintf(w, "%-8d %-8d %-12v %-12v %-8.2f\n",
					x, y,
					dyn.Median().Round(time.Millisecond), bcw.Median().Round(time.Millisecond),
					float64(bcw.Median())/float64(dyn.Median()))
			}
		}
		fprintf(w, "\n")
	}
	return nil
}

// AblatePartition sweeps the processor-level grid side at a fixed
// deployment, exposing the block-size trade-off between DAG width (load
// balance) and per-task overhead (messages, scheduling).
func (o Options) AblatePartition(w io.Writer) error {
	app := o.SWGGApp()
	const x, y = 4, 25
	fprintf(w, "Ablation: proc grid side sweep, SWGG n=%d, Experiment_%d_%d\n", app.Len, x, y)
	fprintf(w, "%-10s %-10s %-12s %-10s %-10s\n", "grid", "tasks", "elapsed", "msgs", "bytes")
	for _, grid := range []int{4, 8, 16, 24, 40} {
		oo := o
		oo.GridSide = grid
		pt, err := oo.Run(app, x, y, core.PolicyDynamic)
		if err != nil {
			return err
		}
		fprintf(w, "%-10d %-10d %-12v %-10d %-10d\n",
			grid, pt.Stats.Tasks, pt.Elapsed.Round(time.Millisecond),
			pt.Stats.Messages, pt.Stats.PayloadBytes)
	}
	fprintf(w, "\n")
	return nil
}

// AblateLatency reruns the Fig. 15 crossover with a free interconnect: the
// node-count effects collapse when communication costs nothing.
func (o Options) AblateLatency(w io.Writer) error {
	app := o.SWGGApp()
	fprintf(w, "Ablation: interconnect latency on/off, SWGG n=%d, %d cores\n", app.Len, Fig15Cores[1])
	fprintf(w, "%-8s %-14s %-14s\n", "nodes", "with latency", "zero latency")
	for x := 2; x <= 5; x++ {
		if _, err := o.Config(app, x, Fig15Cores[1], core.PolicyDynamic); err != nil {
			fprintf(w, "%-8d %-14s %-14s\n", x, "-", "-")
			continue
		}
		with, err := o.Run(app, x, Fig15Cores[1], core.PolicyDynamic)
		if err != nil {
			return err
		}
		oo := o
		oo.Latency = comm.LatencyModel{Base: 1} // effectively free but non-zero to defeat defaulting
		without, err := oo.Run(app, x, Fig15Cores[1], core.PolicyDynamic)
		if err != nil {
			return err
		}
		fprintf(w, "%-8d %-14v %-14v\n", x,
			with.Elapsed.Round(time.Millisecond), without.Elapsed.Round(time.Millisecond))
	}
	fprintf(w, "\n")
	return nil
}

// AblateSingleLevel compares the multilevel deployment against single-level
// scheduling (thread partition = proc partition, so each sub-task is one
// sub-sub-task and thread-level parallelism disappears) at the same core
// budget.
func (o Options) AblateSingleLevel(w io.Writer) error {
	app := o.SWGGApp()
	const x, y = 4, 37
	fprintf(w, "Ablation: multilevel vs single-level, SWGG n=%d, Experiment_%d_%d\n", app.Len, x, y)
	multi, err := o.Run(app, x, y, core.PolicyDynamic)
	if err != nil {
		return err
	}
	cfg, err := o.Config(app, x, y, core.PolicyDynamic)
	if err != nil {
		return err
	}
	cfg.ThreadPartition = cfg.ProcPartition // one sub-sub-task per sub-task
	res, err := core.Run(app.Problem(), cfg)
	if err != nil {
		return err
	}
	fprintf(w, "%-14s %-12v\n", "multilevel", multi.Elapsed.Round(time.Millisecond))
	fprintf(w, "%-14s %-12v\n\n", "single-level", res.Stats.Elapsed.Round(time.Millisecond))
	return nil
}

// AblateDelta compares full data-region shipping against delta shipping
// (slave-side block caching) on SWGG, whose 2D/1D data regions repeat the
// same row/column blocks across tasks: traffic should collapse.
func (o Options) AblateDelta(w io.Writer) error {
	app := o.SWGGApp()
	const x, y = 4, 25
	fprintf(w, "Ablation: delta shipping, SWGG n=%d, Experiment_%d_%d\n", app.Len, x, y)
	fprintf(w, "%-10s %-12s %-14s %-14s %-10s\n", "mode", "elapsed", "payloadMB", "shipped", "skipped")
	for _, delta := range []bool{false, true} {
		cfg, err := o.Config(app, x, y, core.PolicyDynamic)
		if err != nil {
			return err
		}
		cfg.DeltaShipping = delta
		res, err := core.Run(app.Problem(), cfg)
		if err != nil {
			return err
		}
		mode := "full"
		if delta {
			mode = "delta"
		}
		fprintf(w, "%-10s %-12v %-14.1f %-14d %-10d\n",
			mode, res.Stats.Elapsed.Round(time.Millisecond),
			float64(res.Stats.PayloadBytes)/(1<<20),
			res.Stats.BlocksShipped, res.Stats.BlocksSkipped)
	}
	fprintf(w, "\n")
	return nil
}

// AblateAffinity compares the three master-side policies at equal
// resources: dynamic (paper), dynamic with delta shipping, and the
// locality-aware affinity policy. Payload traffic is the interesting
// column.
func (o Options) AblateAffinity(w io.Writer) error {
	app := o.SWGGApp()
	const x, y = 4, 25
	fprintf(w, "Ablation: scheduling policy vs traffic, SWGG n=%d, Experiment_%d_%d\n", app.Len, x, y)
	fprintf(w, "%-16s %-12s %-12s %-12s %-10s\n", "policy", "elapsed", "payloadMB", "shipped", "skipped")
	for _, row := range []struct {
		name   string
		policy core.Policy
		delta  bool
	}{
		{"dynamic", core.PolicyDynamic, false},
		{"dynamic+delta", core.PolicyDynamic, true},
		{"affinity", core.PolicyAffinity, true},
	} {
		cfg, err := o.Config(app, x, y, row.policy)
		if err != nil {
			return err
		}
		cfg.DeltaShipping = row.delta
		res, err := core.Run(app.Problem(), cfg)
		if err != nil {
			return err
		}
		fprintf(w, "%-16s %-12v %-12.1f %-12d %-10d\n",
			row.name, res.Stats.Elapsed.Round(time.Millisecond),
			float64(res.Stats.PayloadBytes)/(1<<20),
			res.Stats.BlocksShipped, res.Stats.BlocksSkipped)
	}
	fprintf(w, "\n")
	return nil
}

// IdleWhileComputable measures the paper's qualitative claim behind
// Fig. 17 directly: under BCW there are moments with computable sub-tasks
// and idle workers, which "never happens" under the dynamic pool. It runs
// both policies with a trace recorder and reports the idle-while-computable
// worker-time at the processor level.
func (o Options) IdleWhileComputable(w io.Writer) error {
	app := o.SWGGApp()
	const x, y = 5, 25
	fprintf(w, "Trace: idle-while-computable worker-time, SWGG n=%d, Experiment_%d_%d\n", app.Len, x, y)
	for _, policy := range []core.Policy{core.PolicyDynamic, core.PolicyBlockCyclic} {
		cfg, err := o.Config(app, x, y, policy)
		if err != nil {
			return err
		}
		rec := trace.New()
		cfg.Trace = rec
		res, err := core.Run(app.Problem(), cfg)
		if err != nil {
			return err
		}
		s := rec.Summarize()
		fprintf(w, "%-10s elapsed=%-10v idleWhileComputable=%-12v utilization=%.2f\n",
			policy, res.Stats.Elapsed.Round(time.Millisecond),
			s.IdleWhileReady.Round(time.Millisecond), s.Utilization())
	}
	fprintf(w, "\n")
	return nil
}

// Verify checks, for a small instance of each app, that the parallel run
// reproduces the sequential matrix bit-for-bit — run before benchmarking.
func (o Options) Verify(w io.Writer) error {
	a := dp.RandomDNA(48, o.Seed)
	b := dp.MutateSeq(a, dp.DNAAlphabet, 0.3, o.Seed+1)
	swgg := dp.NewSWGG(a, b)
	nuss := dp.NewNussinov(dp.RandomRNA(48, o.Seed+2))
	checks := []struct {
		name string
		want [][]int32
		prob core.Problem[int32]
	}{
		{"SWGG", swgg.Sequential(), swgg.Problem()},
		{"Nussinov", nuss.Sequential(), nuss.Problem()},
	}
	for _, c := range checks {
		cfg := core.Config{
			Slaves:          2,
			Threads:         3,
			ProcPartition:   dag.Square(8),
			ThreadPartition: dag.Square(3),
			RunTimeout:      2 * time.Minute,
		}
		res, err := core.Run(c.prob, cfg)
		if err != nil {
			return err
		}
		got := res.Matrix()
		for i := range c.want {
			for j := range c.want[i] {
				if got[i][j] != c.want[i][j] {
					return fmt.Errorf("bench: %s verification failed at (%d,%d): %d != %d", c.name, i, j, got[i][j], c.want[i][j])
				}
			}
		}
		fprintf(w, "verify %-10s OK (48x48 parallel == sequential)\n", c.name)
	}
	fprintf(w, "\n")
	return nil
}
