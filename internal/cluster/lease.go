package cluster

import (
	"time"

	"repro/internal/sched"
)

// Lease binds one dispatched attempt of a DAG vertex to one member
// incarnation. It is the unit of work-loss accounting: when the member
// dies or leaves, every lease it holds is revoked and the uncovered
// vertices go back on the ready stack. Timeout expiry (the overtime
// queue) and result acceptance (the register table) release leases
// individually. Lease.Worker carries the member id.
//
// Since the straggler-mitigation work the table is sched.LeaseTable —
// shared with the fixed master — and a vertex may hold several
// concurrent leases: the original attempt plus a speculative backup.
type Lease = sched.Lease

// leaseTable adapts sched.LeaseTable to the master's clock so grant
// stamps and age queries follow the injectable time source.
type leaseTable struct {
	t     *sched.LeaseTable
	clock sched.Clock
}

func newLeaseTable(clock sched.Clock) *leaseTable {
	if clock == nil {
		clock = sched.Wall
	}
	return &leaseTable{t: sched.NewLeaseTable(), clock: clock}
}

// grant records a lease for vertex v held by member with the given
// attempt, superseding any prior lease on v (a redistribution).
func (t *leaseTable) grant(v int32, member int, attempt int32) {
	t.t.Grant(v, member, attempt, t.clock.Now())
}

// add records a concurrent speculative lease on v without superseding
// the original.
func (t *leaseTable) add(v int32, member int, attempt int32) {
	t.t.Add(v, member, attempt, t.clock.Now())
}

// release drops every lease on vertex v (result accepted — winner and
// speculative losers retire together) and returns them.
func (t *leaseTable) release(v int32) []Lease { return t.t.Release(v) }

// releaseAttempt drops the single lease (v, attempt), leaving any
// concurrent leases intact.
func (t *leaseTable) releaseAttempt(v, attempt int32) (Lease, bool) {
	return t.t.ReleaseAttempt(v, attempt)
}

// revokeMember drops every lease held by member and returns them — the
// attempts the master must cancel (and requeue where no concurrent
// attempt survives).
func (t *leaseTable) revokeMember(member int) []Lease { return t.t.RevokeWorker(member) }

// holders reports the live leases on vertex v.
func (t *leaseTable) holders(v int32) []Lease { return t.t.Holders(v) }

// find returns the lease (v, attempt), if live.
func (t *leaseTable) find(v, attempt int32) (Lease, bool) { return t.t.Find(v, attempt) }

// len returns the number of live leases.
func (t *leaseTable) len() int { return t.t.Len() }

// olderThan returns the leases that have been running longer than age on
// the table's clock — the speculation candidates — oldest first.
func (t *leaseTable) olderThan(age time.Duration) []Lease {
	return t.t.OlderThan(t.clock.Now().Add(-age))
}

// loads returns per-member lease counts for members holding work.
func (t *leaseTable) loads() map[int]int { return t.t.Loads() }

// load returns the number of leases member holds.
func (t *leaseTable) load(member int) int { return t.t.Load(member) }

// memberLeases returns member's leases in grant order, oldest first.
func (t *leaseTable) memberLeases(member int) []Lease { return t.t.WorkerLeases(member) }
