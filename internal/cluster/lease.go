package cluster

import (
	"sync"
	"time"
)

// Lease binds one dispatched DAG vertex to one member incarnation for one
// attempt. It is the unit of work-loss accounting: when the member dies
// or leaves, every lease it holds is revoked and the vertices go back on
// the ready stack. Timeout expiry (the overtime queue) and result
// acceptance (the register table) release leases individually.
type Lease struct {
	Vertex  int32
	Member  int
	Attempt int32
	Granted time.Time
}

// leaseTable indexes live leases by vertex and by member.
type leaseTable struct {
	mu       sync.Mutex
	byVertex map[int32]Lease
	byMember map[int]map[int32]struct{}
}

func newLeaseTable() *leaseTable {
	return &leaseTable{
		byVertex: make(map[int32]Lease),
		byMember: make(map[int]map[int32]struct{}),
	}
}

// grant records a lease for vertex v held by member with the given
// attempt, superseding any prior lease on v (a redistribution).
func (t *leaseTable) grant(v int32, member int, attempt int32) {
	t.mu.Lock()
	if old, ok := t.byVertex[v]; ok {
		if set := t.byMember[old.Member]; set != nil {
			delete(set, v)
		}
	}
	t.byVertex[v] = Lease{Vertex: v, Member: member, Attempt: attempt, Granted: time.Now()}
	set := t.byMember[member]
	if set == nil {
		set = make(map[int32]struct{})
		t.byMember[member] = set
	}
	set[v] = struct{}{}
	t.mu.Unlock()
}

// release drops the lease on vertex v (result accepted, or overtime
// expiry superseding it) and returns it.
func (t *leaseTable) release(v int32) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byVertex[v]
	if !ok {
		return Lease{}, false
	}
	delete(t.byVertex, v)
	if set := t.byMember[l.Member]; set != nil {
		delete(set, v)
	}
	return l, true
}

// revokeMember drops every lease held by member and returns them — the
// vertices the master must reassign.
func (t *leaseTable) revokeMember(member int) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.byMember[member]
	if len(set) == 0 {
		delete(t.byMember, member)
		return nil
	}
	out := make([]Lease, 0, len(set))
	for v := range set {
		out = append(out, t.byVertex[v])
		delete(t.byVertex, v)
	}
	delete(t.byMember, member)
	return out
}

// holder reports the live lease on vertex v, if any.
func (t *leaseTable) holder(v int32) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byVertex[v]
	return l, ok
}

// len returns the number of live leases.
func (t *leaseTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byVertex)
}
