package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/tune"
)

// An -auto master over real TCP: no speculation/steal/batch knobs are
// set by hand, yet the run completes bit-identically to the sequential
// reference, both mitigation mechanisms are armed, the controller makes
// at least one adjustment (a run this size has dozens of progress ticks
// to grow the batch cap on), every recommendation respects the default
// limits, and each adjustment is visible as an EvTune trace event.
func TestAutoTunesOverTCP(t *testing.T) {
	prob, want, spec := testProblem(t)
	opts := testOptions(spec, 3)
	opts.Auto = true
	opts.CheckInterval = 10 * time.Millisecond
	tr := trace.New()
	opts.Trace = tr

	m, err := cluster.NewMaster(prob, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := cluster.NewHarness(prob, m.Addr(), testWorkerOptions(spec, 200*time.Microsecond))
	defer h.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := h.Add(ctx); err != nil {
			t.Fatal(err)
		}
	}

	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	equalMatrices(t, "auto", res.Matrix(), want)
	if res.Stats.Tasks != 64 {
		t.Fatalf("tasks = %d, want 64", res.Stats.Tasks)
	}

	snap, ok := m.TuneSnapshot()
	if !ok {
		t.Fatal("Auto master reports no tune snapshot")
	}
	lim := tune.DefaultLimits()
	if snap.BatchCap < lim.MinBatch || snap.BatchCap > lim.MaxBatch {
		t.Fatalf("batch cap %d outside [%d, %d]", snap.BatchCap, lim.MinBatch, lim.MaxBatch)
	}
	if snap.SpecQuantile < lim.MinQuantile || snap.SpecQuantile > lim.MaxQuantile {
		t.Fatalf("spec quantile %.3f outside [%.2f, %.2f]", snap.SpecQuantile, lim.MinQuantile, lim.MaxQuantile)
	}
	if snap.SpecMultiplier < lim.MinMultiplier || snap.SpecMultiplier > lim.MaxMultiplier {
		t.Fatalf("spec multiplier %.2f outside [%.1f, %.1f]", snap.SpecMultiplier, lim.MinMultiplier, lim.MaxMultiplier)
	}
	if snap.Adjustments == 0 {
		t.Fatal("controller made no adjustments over the whole run")
	}

	var tunes int64
	for _, ev := range tr.Events() {
		if ev.Kind == trace.EvTune {
			tunes++
			if ev.Ready < lim.MinBatch || ev.Ready > lim.MaxBatch {
				t.Fatalf("EvTune batch cap %d outside [%d, %d]", ev.Ready, lim.MinBatch, lim.MaxBatch)
			}
		}
	}
	if tunes != snap.Adjustments {
		t.Fatalf("EvTune events = %d, adjustments = %d; every adjustment must be traced", tunes, snap.Adjustments)
	}
}
